// DP-based automatic test pattern generation: Difference Propagation
// returns the COMPLETE test set of every fault, so ATPG reduces to vector
// selection. This tool generates a compact test set for the collapsed
// checkpoint faults of a circuit, then independently fault-grades it with
// the parallel-pattern simulator.
//
//   $ ./atpg_tool             # defaults to c95
//   $ ./atpg_tool c432
//   $ ./atpg_tool c432 --jobs 4   # fault-parallel analysis sweep
//   $ ./atpg_tool c432 --metrics-json atpg.json --trace
//   $ ./atpg_tool c432 --cache-dir .dpcache
//       # first run serializes the per-fault test-set forest; a warm
//       # rerun loads it and skips BDD construction and DP entirely
//   $ ./atpg_tool c432 --hybrid [--prefilter-patterns N]
//       # two-phase ATPG: the wide random-pattern prefilter detects the
//       # easy faults and keeps each fault's first detecting vector; DP
//       # then analyzes and covers only the resistant remainder. The
//       # final grade still covers every fault.
//   $ ./atpg_tool c1908 --ndetect 3 [--ndetect-json PATH]
//       # n-detection: after the 1-detect compaction, mint top-up
//       # vectors from each fault's residual CTS BDD until every
//       # detectable fault has >= min(N, |CTS|) distinct detecting
//       # vectors, reporting the vector-count growth curve n = 1..N.
//       # The counts are verified by an independent wide-simulator
//       # recount (exact ==). --ndetect-json writes the dp.ndetect.v1
//       # document (validated by bench/validate_metrics).
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/ndetect.hpp"
#include "cli_common.hpp"
#include "dp/parallel_engine.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"
#include "sim/fault_sim.hpp"
#include "sim/wide_sim.hpp"
#include "store/bdd_io.hpp"
#include "store/hash.hpp"

using namespace dp;

namespace {

/// Fixed prefilter stream seed so hybrid runs are reproducible.
constexpr std::uint64_t kPrefilterSeed = 0x5eedb10cull;

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  cli::handle_version_flag(args, "atpg_tool");
  cli::Telemetry tel;
  tel.strip_flags(args);

  std::string arg = "c95";
  std::size_t jobs = 1;
  bool hybrid = false;
  std::size_t prefilter_patterns = 1024;
  std::size_t ndetect = 0;  // 0 = classic 1-detect ATPG
  std::string ndetect_json;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--jobs" || args[i] == "--prefilter-patterns" ||
        args[i] == "--ndetect") {
      if (i + 1 >= args.size()) {
        std::cerr << "error: " << args[i] << " requires a value\n";
        return 2;
      }
      const std::string flag = args[i];
      const std::size_t value = cli::parse_count(flag, args[++i]);
      if (flag == "--jobs") {
        jobs = value;
      } else if (flag == "--ndetect") {
        ndetect = value;
      } else {
        prefilter_patterns = value;
      }
    } else if (args[i] == "--ndetect-json") {
      if (i + 1 >= args.size()) {
        std::cerr << "error: --ndetect-json requires a value\n";
        return 2;
      }
      ndetect_json = args[++i];
    } else if (args[i] == "--hybrid") {
      hybrid = true;
    } else {
      arg = args[i];
    }
  }
  const auto& names = netlist::benchmark_names();
  netlist::Circuit circuit =
      std::find(names.begin(), names.end(), arg) != names.end()
          ? netlist::make_benchmark(arg)
          : netlist::read_bench_file(arg);
  netlist::Structure structure(circuit);

  const auto faults = fault::collapse_checkpoint_faults(circuit);
  std::cout << "ATPG for " << circuit.name() << ": " << faults.size()
            << " collapsed checkpoint faults\n";

  // Phase 1 (hybrid only): random-pattern prefilter. Every detected fault
  // contributes its first detecting pattern, reconstructed from the
  // deterministic stream, so the random phase's coverage claims are backed
  // by concrete vectors in the emitted set.
  std::vector<std::vector<bool>> vectors;
  std::vector<fault::StuckAtFault> dp_faults = faults;
  if (hybrid) {
    const sim::WideFaultSimulator wide(circuit);
    const sim::WideFaultSimulator::Grade grade =
        wide.grade_random(faults, prefilter_patterns, kPrefilterSeed);
    std::vector<std::uint64_t> picks;
    dp_faults.clear();
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (grade.first_detection[i] == sim::WideFaultSimulator::kNotDetected) {
        dp_faults.push_back(faults[i]);
      } else {
        picks.push_back(grade.first_detection[i]);
      }
    }
    std::sort(picks.begin(), picks.end());
    picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
    const auto stream =
        wide.random_patterns(prefilter_patterns, kPrefilterSeed);
    for (const std::uint64_t p : picks) {
      vectors.push_back(stream[static_cast<std::size_t>(p)]);
    }
    std::cout << "Prefilter (" << prefilter_patterns << " random patterns): "
              << faults.size() - dp_faults.size() << " faults detected, "
              << vectors.size() << " witness vectors kept, "
              << dp_faults.size() << " faults left for DP\n";
  }

  // Test-set forest cache: with --cache-dir the complete per-fault test
  // sets are serialized after the sweep, keyed on the circuit's
  // structural content. A warm rerun reloads them into `cache_mgr` and
  // skips BDD construction and the DP sweep entirely; every downstream
  // number is bit-identical because detectability is exactly the test
  // set's density and the reconstructed BDDs are canonical. The hybrid
  // remainder depends on the prefilter stream, so its key includes the
  // prefilter parameters.
  bdd::Manager cache_mgr(0);
  std::string forest_key;
  if (tel.store()) {
    store::KeyBuilder kb;
    kb.str("dp.atpg.tests.v1");
    kb.str(store::circuit_content_hash(circuit));
    kb.u64(dp_faults.size());
    if (hybrid) {
      kb.str("hybrid");
      kb.u64(prefilter_patterns);
      kb.u64(kPrefilterSeed);
    }
    forest_key = kb.hex();
  }

  struct Entry {
    const fault::StuckAtFault* fault;
    bdd::Bdd test_set;
    double detectability;
  };
  std::vector<Entry> entries;
  std::size_t redundant = 0;

  // On the cold path the engine must stay alive until vector minting is
  // done: the test-set BDDs live in its worker managers.
  std::optional<core::ParallelEngine> engine;
  bool from_cache = false;
  if (tel.store()) {
    if (auto roots =
            tel.store()->load_forest(forest_key, "tests", cache_mgr)) {
      if (roots->size() == dp_faults.size()) {
        from_cache = true;
        std::cout << "[cache] test-set forest hit in " << tel.store()->dir()
                  << "\n";
        for (std::size_t i = 0; i < dp_faults.size(); ++i) {
          const bdd::Bdd& ts = (*roots)[i];
          if (!ts.valid() || ts.is_zero()) {
            ++redundant;  // stored as an absent/empty test set
            continue;
          }
          entries.push_back({&dp_faults[i], ts,
                             ts.density(circuit.num_inputs())});
        }
      }
    }
  }
  if (!from_cache && !dp_faults.empty()) {
    // Analyze every fault (sharded over --jobs workers); sort hardest
    // (smallest test set) first so scarce vectors are placed before
    // flexible ones.
    core::ParallelEngine::Options popt;
    popt.jobs = jobs;
    popt.dp.trace = tel.trace();
    engine.emplace(circuit, structure, popt);
    std::vector<core::FaultAnalysis> analyses = engine->analyze_all(dp_faults);
    engine->stats().export_metrics(tel.metrics());

    std::vector<bdd::Bdd> roots(dp_faults.size());
    for (std::size_t i = 0; i < dp_faults.size(); ++i) {
      if (!analyses[i].detectable) {
        ++redundant;  // proven untestable: excluded, not abandoned
        continue;
      }
      if (tel.store()) {
        roots[i] = store::transfer(cache_mgr, analyses[i].test_set);
      }
      const double det = analyses[i].detectability;
      entries.push_back({&dp_faults[i], std::move(analyses[i].test_set), det});
    }
    if (tel.store()) {
      tel.store()->store_forest(forest_key, "tests", cache_mgr, roots);
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.detectability < b.detectability;
  });
  std::cout << "Provably redundant faults: " << redundant << "\n";

  // Greedy compaction: reuse an existing vector whenever the fault's test
  // set already contains one (a BDD evaluation), else mint a new vector
  // from the test set's satisfying cube (don't-cares filled with zeros).
  // In hybrid mode the prefilter's witness vectors are already in the set,
  // so DP-phase faults reuse them when possible.
  const std::size_t random_vectors = vectors.size();
  std::size_t reused = 0;
  for (const Entry& e : entries) {
    bool covered = false;
    for (const auto& v : vectors) {
      if (e.test_set.eval(v)) {
        covered = true;
        ++reused;
        break;
      }
    }
    if (covered) continue;
    const auto cube = e.test_set.sat_one();
    std::vector<bool> v(circuit.num_inputs(), false);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = cube[i] == 1;
    vectors.push_back(std::move(v));
  }
  std::cout << "Generated vectors: " << vectors.size() << " ("
            << reused << " faults covered by reuse";
  if (hybrid) {
    std::cout << "; " << random_vectors << " random-phase + "
              << vectors.size() - random_vectors << " DP-phase";
  }
  std::cout << ")\n";

  // Independent verification: grade the vector set with the simulator,
  // over the FULL fault list (prefilter-covered faults included).
  sim::FaultSimulator fs(circuit);
  const auto cov = fs.grade_vectors(faults, vectors);
  std::cout << "Simulator-graded coverage: " << cov.detected << "/"
            << cov.total << " = " << 100.0 * cov.fraction() << "%"
            << " (expected: all but the " << redundant
            << " redundant faults)\n";

  // Comparison: how many random patterns reach the same coverage?
  std::size_t budget = 64;
  while (budget < 65536) {
    if (fs.grade_random(faults, budget, 7).detected >= cov.detected) break;
    budget *= 2;
  }
  std::cout << "Random patterns needed for equal coverage: ~" << budget
            << " vs " << vectors.size() << " deterministic vectors\n";

  bool ok = cov.detected + redundant == cov.total;
  std::cout << (ok ? "OK: complete coverage of all testable faults\n"
                   : "WARNING: coverage gap\n");

  // Phase 3 (--ndetect N): top up the compacted set until every
  // detectable fault has min(N, |CTS|) distinct detecting vectors. The
  // analyzer runs its own DP sweep over the FULL collapsed fault list
  // (in hybrid mode the pipeline above analyzed only the resistant
  // remainder), then mints witnesses from each fault's residual CTS BDD,
  // hardest fault first. Every reported count is then re-derived by the
  // wide simulator and compared with exact ==.
  if (ndetect > 0) {
    // The n-detect algebra counts DISTINCT vectors; drop any duplicates
    // (possible between hybrid witness patterns) so the per-pattern
    // simulator recount below matches the satcounts exactly.
    {
      std::set<std::vector<bool>> seen;
      std::vector<std::vector<bool>> distinct;
      distinct.reserve(vectors.size());
      for (auto& v : vectors) {
        if (seen.insert(v).second) distinct.push_back(std::move(v));
      }
      vectors.swap(distinct);
    }
    analysis::NDetectOptions nopt;
    nopt.jobs = jobs;
    analysis::NDetectAnalyzer analyzer(circuit, faults, nopt);
    analyzer.stats().export_metrics(tel.metrics(), "ndetect");

    std::cout << "\nn-detect top-up (target N=" << ndetect << "):\n"
              << "  n=0: " << vectors.size() << " vectors (1-detect set)\n";
    std::size_t minted_total = 0;
    for (std::size_t k = 1; k <= ndetect; ++k) {
      minted_total += analyzer.top_up(vectors, k);
      std::cout << "  n=" << k << ": " << vectors.size() << " vectors ("
                << minted_total << " minted)\n";
    }
    analysis::NDetectReport report = analyzer.report(vectors, ndetect);
    report.minted_vectors = minted_total;

    sim::WideFaultSimulator wide(circuit);
    sim::WideFaultSimulator::Options wopt;
    wopt.drop_detected = false;
    const auto regrade = wide.grade_vectors(faults, vectors, wopt);
    std::size_t mismatches = 0;
    std::size_t below = 0;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (regrade.detection_counts[i] != report.faults[i].detections) {
        ++mismatches;
      }
      if (!report.faults[i].meets_target()) ++below;
    }
    std::cout << "Simulator recount: " << mismatches
              << " detection-count mismatches, " << below
              << " faults below quota\n"
              << "Mean CTS coverage at N=" << ndetect << ": "
              << report.mean_cts_coverage() << "\n";
    const bool ndetect_ok = mismatches == 0 && report.complete();
    std::cout << (ndetect_ok
                      ? "OK: every detectable fault meets its n-detect quota\n"
                      : "WARNING: n-detect verification failed\n");
    ok = ok && ndetect_ok;

    if (!ndetect_json.empty()) {
      std::ofstream out(ndetect_json);
      if (!out) {
        std::cerr << "error: cannot write " << ndetect_json << "\n";
        ok = false;
      } else {
        out << analysis::ndetect_report_to_json(report).dump(2) << "\n";
        std::cout << "Wrote " << ndetect_json << "\n";
      }
    }
  }
  // Always shown (even serial) so refcount underflows can never hide.
  // A warm-cache run has no engine (that is the point), so nothing to show.
  if (engine) std::cout << "\n" << engine->stats();
  const bool wrote = tel.write("atpg_tool");
  return ok && wrote ? 0 : 1;
}
