// DP-based automatic test pattern generation: Difference Propagation
// returns the COMPLETE test set of every fault, so ATPG reduces to vector
// selection. This tool generates a compact test set for the collapsed
// checkpoint faults of a circuit, then independently fault-grades it with
// the parallel-pattern simulator.
//
//   $ ./atpg_tool             # defaults to c95
//   $ ./atpg_tool c432
#include <algorithm>
#include <iostream>
#include <string>

#include "dp/engine.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"
#include "sim/fault_sim.hpp"

using namespace dp;

int main(int argc, char** argv) {
  const std::string arg = argc > 1 ? argv[1] : "c95";
  const auto& names = netlist::benchmark_names();
  netlist::Circuit circuit =
      std::find(names.begin(), names.end(), arg) != names.end()
          ? netlist::make_benchmark(arg)
          : netlist::read_bench_file(arg);
  netlist::Structure structure(circuit);
  bdd::Manager manager(0);
  core::GoodFunctions good(manager, circuit);
  core::DifferencePropagator dp(good, structure);

  const auto faults = fault::collapse_checkpoint_faults(circuit);
  std::cout << "ATPG for " << circuit.name() << ": " << faults.size()
            << " collapsed checkpoint faults\n";

  // Analyze every fault; sort hardest (smallest test set) first so scarce
  // vectors are placed before flexible ones.
  struct Entry {
    const fault::StuckAtFault* fault;
    core::FaultAnalysis analysis;
  };
  std::vector<Entry> entries;
  std::size_t redundant = 0;
  for (const auto& f : faults) {
    core::FaultAnalysis a = dp.analyze(f);
    if (!a.detectable) {
      ++redundant;  // proven untestable: excluded, not abandoned
      continue;
    }
    entries.push_back({&f, std::move(a)});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.analysis.detectability < b.analysis.detectability;
  });
  std::cout << "Provably redundant faults: " << redundant << "\n";

  // Greedy compaction: reuse an existing vector whenever the fault's test
  // set already contains one (a BDD evaluation), else mint a new vector
  // from the test set's satisfying cube (don't-cares filled with zeros).
  std::vector<std::vector<bool>> vectors;
  std::size_t reused = 0;
  for (const Entry& e : entries) {
    bool covered = false;
    for (const auto& v : vectors) {
      if (e.analysis.test_set.eval(v)) {
        covered = true;
        ++reused;
        break;
      }
    }
    if (covered) continue;
    const auto cube = e.analysis.test_set.sat_one();
    std::vector<bool> v(circuit.num_inputs(), false);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = cube[i] == 1;
    vectors.push_back(std::move(v));
  }
  std::cout << "Generated vectors: " << vectors.size() << " ("
            << reused << " faults covered by reuse)\n";

  // Independent verification: grade the vector set with the simulator.
  sim::FaultSimulator fs(circuit);
  const auto cov = fs.grade_vectors(faults, vectors);
  std::cout << "Simulator-graded coverage: " << cov.detected << "/"
            << cov.total << " = " << 100.0 * cov.fraction() << "%"
            << " (expected: all but the " << redundant
            << " redundant faults)\n";

  // Comparison: how many random patterns reach the same coverage?
  std::size_t budget = 64;
  while (budget < 65536) {
    if (fs.grade_random(faults, budget, 7).detected >= cov.detected) break;
    budget *= 2;
  }
  std::cout << "Random patterns needed for equal coverage: ~" << budget
            << " vs " << vectors.size() << " deterministic vectors\n";

  const bool ok = cov.detected + redundant == cov.total;
  std::cout << (ok ? "OK: complete coverage of all testable faults\n"
                   : "WARNING: coverage gap\n");
  return ok ? 0 : 1;
}
