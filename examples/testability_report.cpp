// Full stuck-at testability report for a circuit: detectability profile,
// adherence profile, bathtub curve, undetectable (redundant) checkpoint
// faults, and the hardest-to-test faults.
//
//   $ ./testability_report                # defaults to alu181
//   $ ./testability_report c432           # any built-in benchmark
//   $ ./testability_report path/to.bench  # or an ISCAS-85 netlist file
//   $ ./testability_report c432 --jobs 4  # fault-parallel sweep
//                                         # (bit-identical to serial)
//   $ ./testability_report c432 --metrics-json report.json --trace
//   $ ./testability_report c432 --cache-dir .dpcache
//                                         # reuse a cached profile /
//                                         # resume an interrupted sweep
//   $ ./testability_report c432 --hybrid [--prefilter-patterns N]
//                                         # random-pattern prefilter, then
//                                         # exact DP on the remainder only
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/hybrid.hpp"
#include "analysis/profiles.hpp"
#include "analysis/report.hpp"
#include "cli_common.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/generators.hpp"

using namespace dp;

namespace {

netlist::Circuit load(const std::string& arg) {
  const auto& names = netlist::benchmark_names();
  if (std::find(names.begin(), names.end(), arg) != names.end()) {
    return netlist::make_benchmark(arg);
  }
  return netlist::read_bench_file(arg);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  cli::handle_version_flag(args, "testability_report");
  cli::Telemetry tel;
  tel.strip_flags(args);

  std::string arg = "alu181";
  analysis::AnalysisOptions opt;
  bool hybrid = false;
  analysis::HybridOptions hopt;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--jobs" || args[i] == "--prefilter-patterns") {
      if (i + 1 >= args.size()) {
        std::cerr << "error: " << args[i] << " requires a value\n";
        return 2;
      }
      const std::string flag = args[i];
      const std::size_t value = cli::parse_count(flag, args[++i]);
      if (flag == "--jobs") {
        opt.jobs = value;
      } else {
        hopt.prefilter_patterns = value;
      }
    } else if (args[i] == "--hybrid") {
      hybrid = true;
    } else {
      arg = args[i];
    }
  }
  opt.dp.trace = tel.trace();
  opt.persistence.store = tel.store();
  opt.persistence.resume = tel.resume();
  netlist::Circuit circuit = load(arg);

  std::cout << "Stuck-at testability report: " << circuit.name() << "\n";
  std::cout << "  " << circuit.num_gates() << " gates, "
            << circuit.num_inputs() << " PIs, " << circuit.num_outputs()
            << " POs\n\n";

  if (hybrid) {
    const analysis::HybridProfile hp =
        analysis::analyze_stuck_at_hybrid(circuit, opt, hopt);
    hp.engine_stats.export_metrics(tel.metrics());
    hp.export_metrics(tel.metrics());
    std::cout << "Hybrid pipeline (" << hp.prefilter_patterns
              << " random patterns, then exact DP on the remainder)\n";
    std::cout << "Collapsed checkpoint faults : " << hp.faults.size() << "\n";
    std::cout << "Prefilter resolved          : " << hp.prefilter_resolved()
              << " (" << analysis::TextTable::num(hp.prefilter_fraction())
              << ")\n";
    std::cout << "Exact DP remainder          : " << hp.dp_resolved() << "\n";
    std::cout << "Undetectable (redundant)    : " << hp.redundant_count()
              << "\n";
    std::cout << "Phase seconds               : prefilter "
              << analysis::TextTable::num(hp.prefilter_seconds) << ", DP "
              << analysis::TextTable::num(hp.dp_seconds) << "\n";

    // The DP remainder is exactly the random-pattern-resistant set, so its
    // exact detectabilities rank the deterministic-ATPG workload.
    std::vector<const analysis::HybridFaultRecord*> hard;
    for (const auto& f : hp.faults) {
      if (f.resolved_by == analysis::ResolvedBy::ExactDp && f.detectable) {
        hard.push_back(&f);
      }
    }
    std::sort(hard.begin(), hard.end(), [](const auto* a, const auto* b) {
      return a->dp.detectability < b->dp.detectability;
    });
    std::cout << "\nHardest random-pattern-resistant faults (exact DP):\n";
    analysis::TextTable t({"detectability", "upper bound", "adherence",
                           "max levels to PO"});
    for (std::size_t i = 0; i < std::min<std::size_t>(8, hard.size()); ++i) {
      t.add_row({analysis::TextTable::num(hard[i]->dp.detectability, 6),
                 analysis::TextTable::num(hard[i]->dp.upper_bound, 6),
                 analysis::TextTable::num(hard[i]->dp.adherence),
                 std::to_string(hard[i]->dp.max_levels_to_po)});
    }
    t.print(std::cout);
    // Always shown (even serial) so refcount underflows can never hide.
    std::cout << "\n" << hp.engine_stats;
    return tel.write("testability_report") ? 0 : 1;
  }

  const analysis::CircuitProfile p = analysis::analyze_stuck_at(circuit, opt);
  p.engine_stats.export_metrics(tel.metrics());
  const std::size_t undetectable = p.faults.size() - p.detectable_count();

  std::cout << "Collapsed checkpoint faults : " << p.faults.size() << "\n";
  std::cout << "Detectable                  : " << p.detectable_count()
            << "\n";
  std::cout << "Undetectable (redundant)    : " << undetectable << "\n";
  std::cout << "Mean detectability          : "
            << analysis::TextTable::num(p.mean_detectability_detectable())
            << "\n";
  std::cout << "Mean detectability / #POs   : "
            << analysis::TextTable::num(p.mean_detectability_per_po(), 5)
            << "\n\n";

  analysis::print_histogram(std::cout, p.detectability_histogram(20),
                            "Detectability profile", "detection probability");
  std::cout << "\n";
  analysis::print_histogram(std::cout, p.adherence_histogram(20),
                            "Adherence profile", "adherence");
  std::cout << "\n";
  analysis::print_series(std::cout, p.detectability_by_po_distance(),
                         "Bathtub curve", "max levels to PO",
                         "mean detectability");

  // Hardest detectable faults: lowest detection probability first. These
  // are where deterministic test generation effort concentrates (§4.1).
  std::vector<const analysis::FaultRecord*> hard;
  for (const auto& f : p.faults) {
    if (f.detectable) hard.push_back(&f);
  }
  std::sort(hard.begin(), hard.end(),
            [](const auto* a, const auto* b) {
              return a->detectability < b->detectability;
            });
  std::cout << "\nHardest faults (lowest exact detectability):\n";
  analysis::TextTable t({"detectability", "upper bound", "adherence",
                         "max levels to PO"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, hard.size()); ++i) {
    t.add_row({analysis::TextTable::num(hard[i]->detectability, 6),
               analysis::TextTable::num(hard[i]->upper_bound, 6),
               analysis::TextTable::num(hard[i]->adherence),
               std::to_string(hard[i]->max_levels_to_po)});
  }
  t.print(std::cout);

  std::cout << "\nDFT hint: faults concentrate in the curve's middle -- "
               "target observation points at the circuit center (paper §4.1)."
            << "\n";
  // Always shown (even serial) so refcount underflows can never hide.
  std::cout << "\n" << p.engine_stats;
  return tel.write("testability_report") ? 0 : 1;
}
