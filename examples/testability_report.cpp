// Full stuck-at testability report for a circuit: detectability profile,
// adherence profile, bathtub curve, undetectable (redundant) checkpoint
// faults, and the hardest-to-test faults.
//
//   $ ./testability_report                # defaults to alu181
//   $ ./testability_report c432           # any built-in benchmark
//   $ ./testability_report path/to.bench  # or an ISCAS-85 netlist file
//   $ ./testability_report c432 --jobs 4  # fault-parallel sweep
//                                         # (bit-identical to serial)
//   $ ./testability_report c432 --metrics-json report.json --trace
//   $ ./testability_report c432 --cache-dir .dpcache
//                                         # reuse a cached profile /
//                                         # resume an interrupted sweep
//   $ ./testability_report c432 --hybrid [--prefilter-patterns N]
//                                         # random-pattern prefilter, then
//                                         # exact DP on the remainder only
//   $ ./testability_report c432 --ndetect 5 [--ndetect-patterns K]
//                                         # random-pattern n-detect
//                                         # resistance: faults still below
//                                         # N detections after K random
//                                         # patterns, simulator counts
//                                         # cross-checked exactly against
//                                         # the DP satcounts
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "analysis/hybrid.hpp"
#include "analysis/ndetect.hpp"
#include "analysis/profiles.hpp"
#include "analysis/report.hpp"
#include "cli_common.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/generators.hpp"
#include "sim/wide_sim.hpp"

using namespace dp;

namespace {

netlist::Circuit load(const std::string& arg) {
  const auto& names = netlist::benchmark_names();
  if (std::find(names.begin(), names.end(), arg) != names.end()) {
    return netlist::make_benchmark(arg);
  }
  return netlist::read_bench_file(arg);
}

/// Fixed stream seed so resistance tables are reproducible run to run.
constexpr std::uint64_t kNDetectSeed = 0xd37ec7ull;

/// Random-pattern n-detect resistance: which faults are still below N
/// detections after K random patterns? The wide simulator counts
/// detections over the distinct patterns, DP recounts the same set as
/// satcount(CTS ∧ B(V)), and the two must agree exactly -- the table is
/// only printed once that cross-check passes. Returns false on any
/// count disagreement (a bug, never roundoff: both sides are integers).
bool print_ndetect_resistance(const netlist::Circuit& circuit,
                              std::size_t jobs, std::size_t n,
                              std::size_t num_patterns) {
  const auto faults = fault::collapse_checkpoint_faults(circuit);
  const sim::WideFaultSimulator wide(circuit);

  // Materialize the stream and collapse duplicate patterns: the n-detect
  // algebra is over vector SETS, so the simulator must grade the same
  // distinct vectors DP intersects.
  std::vector<std::vector<bool>> patterns;
  {
    std::set<std::vector<bool>> seen;
    for (auto& v : wide.random_patterns(num_patterns, kNDetectSeed)) {
      if (seen.insert(v).second) patterns.push_back(std::move(v));
    }
  }

  sim::WideFaultSimulator::Options wopt;
  wopt.drop_detected = false;
  const auto grade = wide.grade_vectors(faults, patterns, wopt);

  analysis::NDetectOptions nopt;
  nopt.jobs = jobs;
  analysis::NDetectAnalyzer analyzer(circuit, faults, nopt);
  const auto exact = analyzer.detection_counts(patterns);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (exact[i] != grade.detection_counts[i]) ++mismatches;
  }

  std::cout << "\nRandom-pattern n-detect resistance (N=" << n << ", "
            << num_patterns << " patterns, " << patterns.size()
            << " distinct):\n";
  std::cout << "Simulator vs DP satcount    : " << mismatches
            << " mismatches over " << faults.size() << " faults\n";
  if (mismatches != 0) {
    std::cout << "ERROR: exact cross-check failed\n";
    return false;
  }

  // The resistant set: detectable faults below their quota min(N, |CTS|).
  struct Row {
    std::size_t index;
    std::uint64_t detections;
  };
  std::vector<Row> resistant;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (!analyzer.detectable(i)) continue;
    if (exact[i] < analyzer.quota(i, n)) resistant.push_back({i, exact[i]});
  }
  std::sort(resistant.begin(), resistant.end(), [](const Row& a, const Row& b) {
    return a.detections != b.detections ? a.detections < b.detections
                                        : a.index < b.index;
  });
  std::cout << "Faults below quota          : " << resistant.size() << " of "
            << faults.size() << "\n";
  if (resistant.empty()) {
    std::cout << "Every detectable fault already has its " << n
              << " detections.\n";
    return true;
  }
  analysis::TextTable t({"fault", "detections", "quota", "|CTS|",
                         "CTS coverage"});
  for (std::size_t r = 0; r < std::min<std::size_t>(12, resistant.size());
       ++r) {
    const std::size_t i = resistant[r].index;
    t.add_row({fault::describe(faults[i], circuit),
               std::to_string(exact[i]),
               std::to_string(analyzer.quota(i, n)),
               analysis::TextTable::num(analyzer.cts_size(i), 0),
               analysis::TextTable::num(
                   static_cast<double>(exact[i]) / analyzer.cts_size(i), 6)});
  }
  t.print(std::cout);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  cli::handle_version_flag(args, "testability_report");
  cli::Telemetry tel;
  tel.strip_flags(args);

  std::string arg = "alu181";
  analysis::AnalysisOptions opt;
  bool hybrid = false;
  analysis::HybridOptions hopt;
  std::size_t ndetect = 0;  // 0 = no resistance table
  std::size_t ndetect_patterns = 256;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--jobs" || args[i] == "--prefilter-patterns" ||
        args[i] == "--ndetect" || args[i] == "--ndetect-patterns") {
      if (i + 1 >= args.size()) {
        std::cerr << "error: " << args[i] << " requires a value\n";
        return 2;
      }
      const std::string flag = args[i];
      const std::size_t value = cli::parse_count(flag, args[++i]);
      if (flag == "--jobs") {
        opt.jobs = value;
      } else if (flag == "--ndetect") {
        ndetect = value;
      } else if (flag == "--ndetect-patterns") {
        ndetect_patterns = value;
      } else {
        hopt.prefilter_patterns = value;
      }
    } else if (args[i] == "--hybrid") {
      hybrid = true;
    } else {
      arg = args[i];
    }
  }
  opt.dp.trace = tel.trace();
  opt.persistence.store = tel.store();
  opt.persistence.resume = tel.resume();
  netlist::Circuit circuit = load(arg);

  std::cout << "Stuck-at testability report: " << circuit.name() << "\n";
  std::cout << "  " << circuit.num_gates() << " gates, "
            << circuit.num_inputs() << " PIs, " << circuit.num_outputs()
            << " POs\n\n";

  if (hybrid) {
    const analysis::HybridProfile hp =
        analysis::analyze_stuck_at_hybrid(circuit, opt, hopt);
    hp.engine_stats.export_metrics(tel.metrics());
    hp.export_metrics(tel.metrics());
    std::cout << "Hybrid pipeline (" << hp.prefilter_patterns
              << " random patterns, then exact DP on the remainder)\n";
    std::cout << "Collapsed checkpoint faults : " << hp.faults.size() << "\n";
    std::cout << "Prefilter resolved          : " << hp.prefilter_resolved()
              << " (" << analysis::TextTable::num(hp.prefilter_fraction())
              << ")\n";
    std::cout << "Exact DP remainder          : " << hp.dp_resolved() << "\n";
    std::cout << "Undetectable (redundant)    : " << hp.redundant_count()
              << "\n";
    std::cout << "Phase seconds               : prefilter "
              << analysis::TextTable::num(hp.prefilter_seconds) << ", DP "
              << analysis::TextTable::num(hp.dp_seconds) << "\n";

    // The DP remainder is exactly the random-pattern-resistant set, so its
    // exact detectabilities rank the deterministic-ATPG workload.
    std::vector<const analysis::HybridFaultRecord*> hard;
    for (const auto& f : hp.faults) {
      if (f.resolved_by == analysis::ResolvedBy::ExactDp && f.detectable) {
        hard.push_back(&f);
      }
    }
    std::sort(hard.begin(), hard.end(), [](const auto* a, const auto* b) {
      return a->dp.detectability < b->dp.detectability;
    });
    std::cout << "\nHardest random-pattern-resistant faults (exact DP):\n";
    analysis::TextTable t({"detectability", "upper bound", "adherence",
                           "max levels to PO"});
    for (std::size_t i = 0; i < std::min<std::size_t>(8, hard.size()); ++i) {
      t.add_row({analysis::TextTable::num(hard[i]->dp.detectability, 6),
                 analysis::TextTable::num(hard[i]->dp.upper_bound, 6),
                 analysis::TextTable::num(hard[i]->dp.adherence),
                 std::to_string(hard[i]->dp.max_levels_to_po)});
    }
    t.print(std::cout);
    bool ndetect_ok = true;
    if (ndetect > 0) {
      ndetect_ok = print_ndetect_resistance(circuit, opt.jobs, ndetect,
                                            ndetect_patterns);
    }
    // Always shown (even serial) so refcount underflows can never hide.
    std::cout << "\n" << hp.engine_stats;
    return tel.write("testability_report") && ndetect_ok ? 0 : 1;
  }

  const analysis::CircuitProfile p = analysis::analyze_stuck_at(circuit, opt);
  p.engine_stats.export_metrics(tel.metrics());
  const std::size_t undetectable = p.faults.size() - p.detectable_count();

  std::cout << "Collapsed checkpoint faults : " << p.faults.size() << "\n";
  std::cout << "Detectable                  : " << p.detectable_count()
            << "\n";
  std::cout << "Undetectable (redundant)    : " << undetectable << "\n";
  std::cout << "Mean detectability          : "
            << analysis::TextTable::num(p.mean_detectability_detectable())
            << "\n";
  std::cout << "Mean detectability / #POs   : "
            << analysis::TextTable::num(p.mean_detectability_per_po(), 5)
            << "\n\n";

  analysis::print_histogram(std::cout, p.detectability_histogram(20),
                            "Detectability profile", "detection probability");
  std::cout << "\n";
  analysis::print_histogram(std::cout, p.adherence_histogram(20),
                            "Adherence profile", "adherence");
  std::cout << "\n";
  analysis::print_series(std::cout, p.detectability_by_po_distance(),
                         "Bathtub curve", "max levels to PO",
                         "mean detectability");

  // Hardest detectable faults: lowest detection probability first. These
  // are where deterministic test generation effort concentrates (§4.1).
  std::vector<const analysis::FaultRecord*> hard;
  for (const auto& f : p.faults) {
    if (f.detectable) hard.push_back(&f);
  }
  std::sort(hard.begin(), hard.end(),
            [](const auto* a, const auto* b) {
              return a->detectability < b->detectability;
            });
  std::cout << "\nHardest faults (lowest exact detectability):\n";
  analysis::TextTable t({"detectability", "upper bound", "adherence",
                         "max levels to PO"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, hard.size()); ++i) {
    t.add_row({analysis::TextTable::num(hard[i]->detectability, 6),
               analysis::TextTable::num(hard[i]->upper_bound, 6),
               analysis::TextTable::num(hard[i]->adherence),
               std::to_string(hard[i]->max_levels_to_po)});
  }
  t.print(std::cout);

  std::cout << "\nDFT hint: faults concentrate in the curve's middle -- "
               "target observation points at the circuit center (paper §4.1)."
            << "\n";
  bool ndetect_ok = true;
  if (ndetect > 0) {
    ndetect_ok = print_ndetect_resistance(circuit, opt.jobs, ndetect,
                                          ndetect_patterns);
  }
  // Always shown (even serial) so refcount underflows can never hide.
  std::cout << "\n" << p.engine_stats;
  return tel.write("testability_report") && ndetect_ok ? 0 : 1;
}
