// Bridging-fault study of one circuit: enumerates potentially detectable
// non-feedback bridging faults, samples them with the paper's
// distance-weighted policy, and reports exact detectabilities, stuck-at
// equivalence, and the AND/OR comparison.
//
//   $ ./bridging_analysis                 # defaults to c95
//   $ ./bridging_analysis c432 500       # circuit, sample size
#include <algorithm>
#include <iostream>
#include <string>

#include "analysis/profiles.hpp"
#include "analysis/report.hpp"
#include "cli_common.hpp"
#include "fault/sampling.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/generators.hpp"

using namespace dp;

int main(int argc, char** argv) {
  cli::handle_version_flag(std::vector<std::string>(argv + 1, argv + argc),
                           "bridging_analysis");
  const std::string arg = argc > 1 ? argv[1] : "c95";
  const std::size_t count = argc > 2 ? std::stoul(argv[2]) : 1000;

  const auto& names = netlist::benchmark_names();
  netlist::Circuit circuit =
      std::find(names.begin(), names.end(), arg) != names.end()
          ? netlist::make_benchmark(arg)
          : netlist::read_bench_file(arg);
  netlist::Structure structure(circuit);
  netlist::LayoutEstimate layout(circuit, structure);

  std::cout << "Bridging-fault analysis: " << circuit.name() << "\n\n";

  analysis::AnalysisOptions opt;
  opt.sampling.target_count = count;

  analysis::TextTable table({"type", "enumerated NFBFs", "analyzed",
                             "detectable", "mean det", "stuck-at-like"});
  for (fault::BridgeType type :
       {fault::BridgeType::And, fault::BridgeType::Or}) {
    const auto all = fault::enumerate_nfbfs(circuit, structure, type);
    const analysis::CircuitProfile p =
        analysis::analyze_bridging(circuit, type, opt);
    table.add_row(
        {fault::to_string(type), std::to_string(all.size()),
         std::to_string(p.faults.size()), std::to_string(p.detectable_count()),
         analysis::TextTable::num(p.mean_detectability_detectable()),
         analysis::TextTable::num(p.bridge_stuck_at_fraction())});

    if (type == fault::BridgeType::And) {
      std::cout << "Sampling policy: normalized layout distance z, weight "
                   "exp(-z/theta), theta = "
                << opt.sampling.theta << " (paper section 2.2)\n\n";
    }
  }
  table.print(std::cout);

  // Detail: the individual bridges with the highest detection probability.
  const analysis::CircuitProfile pa =
      analysis::analyze_bridging(circuit, fault::BridgeType::And, opt);
  analysis::print_histogram(std::cout, pa.detectability_histogram(20),
                            "\nAND NFBF detectability profile",
                            "detection probability");

  std::cout << "\nInterpretation (paper §4.2): low stuck-at-like fractions "
               "mean single stuck-at test sets do not automatically cover "
               "bridges; mean bridge detectability slightly exceeds the "
               "stuck-at mean.\n";
  return 0;
}
