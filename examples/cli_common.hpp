// Shared telemetry and persistence flags for the example CLIs:
// `--metrics-json PATH`, `--trace`, `--trace-out PATH`, `--cache-dir
// PATH`, and `--resume`/`--no-resume` behave identically across dpcli,
// testability_report and atpg_tool. The written document mirrors the
// bench schema (dp.metrics.v1) so one validator handles both:
//
//   { "tool": "<name>", "command": "<subcommand>",   // command optional
//     "schema": "dp.metrics.v1",
//     "metrics": { counters, gauges, timers, histograms },
//     "trace": { ... } }                             // only with --trace
//
// `--trace-out PATH` additionally records hierarchical spans plus
// sampling-profiler gauge series and writes a separate dp.trace.v1
// document (Perfetto / chrome://tracing loadable) beside the run.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "store/artifact_store.hpp"

namespace dp::cli {

/// Build identity every CLI reports: the `git describe` of the tree the
/// binary was configured from, baked in by examples/CMakeLists.txt.
/// "unknown" only when the build ran outside a git checkout.
inline const char* version_string() {
#ifdef DP_GIT_DESCRIBE
  return DP_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

/// Uniform `--version` across every example CLI: when the flag appears
/// anywhere in `args`, print "<tool> <version>" and exit 0. Call before
/// any other argument parsing so `--version` wins over usage errors.
inline void handle_version_flag(const std::vector<std::string>& args,
                                const std::string& tool) {
  for (const std::string& a : args) {
    if (a == "--version") {
      std::cout << tool << " " << version_string() << "\n";
      std::exit(0);
    }
  }
}

/// Strict flag-value parser: exits 2 on anything but a non-negative
/// integer, so `--jobs` can never silently fall back to a default.
inline std::size_t parse_count(const std::string& flag,
                               const std::string& text) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < 0) {
    std::cerr << "error: " << flag
              << " expects a non-negative integer, got '" << text << "'\n";
    std::exit(2);
  }
  return static_cast<std::size_t>(v);
}

/// Owns the metrics registry and the optional trace buffer for one CLI
/// invocation. strip_flags() removes the telemetry flags from argv before
/// the tool's own positional parsing; write() emits the JSON document.
class Telemetry {
 public:
  /// Removes the shared flags from `args`, exiting 2 when a flag that
  /// needs a value is the final token (a missing value must not be
  /// swallowed as a path). Handled: `--metrics-json PATH`, `--trace`,
  /// `--trace-out PATH` (installs the span collector and starts the
  /// sampling profiler), `--cache-dir PATH` (opens the artifact store),
  /// `--resume` / `--no-resume` (checkpoint consumption; on by default).
  void strip_flags(std::vector<std::string>& args) {
    auto take_value = [&](std::size_t i) -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "error: " << args[i] << " requires a value\n";
        std::exit(2);
      }
      std::string v = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return v;
    };
    for (std::size_t i = 0; i < args.size();) {
      if (args[i] == "--metrics-json") {
        path_ = take_value(i);
      } else if (args[i] == "--trace-out") {
        trace_out_ = take_value(i);
      } else if (args[i] == "--cache-dir") {
        cache_dir_ = take_value(i);
      } else if (args[i] == "--trace") {
        if (!buffer_) buffer_ = std::make_unique<obs::TraceBuffer>(1u << 16);
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (args[i] == "--resume" || args[i] == "--no-resume") {
        resume_ = args[i] == "--resume";
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    if (!cache_dir_.empty()) {
      store_ = std::make_unique<store::ArtifactStore>(
          cache_dir_, store::ArtifactStore::Options{}, &metrics_);
    }
    if (!trace_out_.empty()) {
      spans_ = std::make_unique<obs::SpanCollector>();
      obs::SpanCollector::install(spans_.get());
      profiler_ = std::make_unique<obs::SamplingProfiler>();
      profiler_->start();
    }
  }

  obs::MetricsRegistry& metrics() { return metrics_; }
  /// Non-null only with --trace; wire into DifferencePropagator options.
  obs::TraceBuffer* trace() { return buffer_.get(); }
  /// Non-null only with --cache-dir; wire into
  /// AnalysisOptions::persistence (or use directly for forest caching).
  store::ArtifactStore* store() { return store_.get(); }
  /// Whether --cache-dir runs may consume existing checkpoints
  /// (--no-resume turns a warm start into a full recompute).
  bool resume() const { return resume_; }
  /// The raw --cache-dir value (empty when absent), for tools that
  /// construct their own store on the directory (dpserved's Service).
  const std::string& cache_dir() const { return cache_dir_; }
  bool requested() const { return !path_.empty(); }
  /// Non-null only with --trace-out (already installed process-wide).
  obs::SpanCollector* spans() { return spans_.get(); }

  /// Writes the document when --metrics-json was given. Returns false
  /// only when a requested write failed (callers fold that into their
  /// exit code so scripts notice the missing file).
  bool write(const std::string& tool, const std::string& command = "") {
    bool ok = true;
    if (spans_) {
      if (obs::SpanCollector::current() == spans_.get()) {
        obs::SpanCollector::install(nullptr);
      }
      profiler_->stop();
      obs::JsonValue tdoc = obs::make_trace_document(
          "tool", tool, /*jobs=*/0, *spans_, profiler_->to_json(),
          spans_->elapsed_seconds());
      std::string error;
      if (!obs::write_json_file_atomic(trace_out_, tdoc, &error)) {
        std::cerr << "[trace] FAILED to write " << trace_out_ << ": "
                  << error << "\n";
        ok = false;
      } else {
        std::cout << "[trace] wrote " << trace_out_ << "\n";
      }
    }
    if (path_.empty()) return ok;
    obs::JsonValue doc = obs::JsonValue::object();
    doc["tool"] = tool;
    if (!command.empty()) doc["command"] = command;
    doc["schema"] = "dp.metrics.v1";
    doc["metrics"] = metrics_.to_json();
    if (buffer_) doc["trace"] = buffer_->to_json();
    std::string error;
    if (!obs::write_json_file_atomic(path_, doc, &error)) {
      std::cerr << "[metrics] FAILED to write " << path_ << ": " << error
                << "\n";
      return false;
    }
    std::cout << "[metrics] wrote " << path_ << "\n";
    return ok;
  }

 private:
  std::string path_;
  std::string trace_out_;
  std::string cache_dir_;
  bool resume_ = true;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceBuffer> buffer_;
  std::unique_ptr<obs::SpanCollector> spans_;
  std::unique_ptr<obs::SamplingProfiler> profiler_;
  std::unique_ptr<store::ArtifactStore> store_;
};

}  // namespace dp::cli
