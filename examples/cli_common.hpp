// Shared telemetry flags for the example CLIs: `--metrics-json PATH` and
// `--trace` behave identically across dpcli, testability_report and
// atpg_tool. The written document mirrors the bench schema
// (dp.metrics.v1) so one validator handles both:
//
//   { "tool": "<name>", "command": "<subcommand>",   // command optional
//     "schema": "dp.metrics.v1",
//     "metrics": { counters, gauges, timers, histograms },
//     "trace": { ... } }                             // only with --trace
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dp::cli {

/// Strict flag-value parser: exits 2 on anything but a non-negative
/// integer, so `--jobs` can never silently fall back to a default.
inline std::size_t parse_count(const std::string& flag,
                               const std::string& text) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < 0) {
    std::cerr << "error: " << flag
              << " expects a non-negative integer, got '" << text << "'\n";
    std::exit(2);
  }
  return static_cast<std::size_t>(v);
}

/// Owns the metrics registry and the optional trace buffer for one CLI
/// invocation. strip_flags() removes the telemetry flags from argv before
/// the tool's own positional parsing; write() emits the JSON document.
class Telemetry {
 public:
  /// Removes `--metrics-json PATH` and `--trace` from `args`, exiting 2
  /// when `--metrics-json` is the final token (a missing value must not
  /// be swallowed as a path).
  void strip_flags(std::vector<std::string>& args) {
    for (std::size_t i = 0; i < args.size();) {
      if (args[i] == "--metrics-json") {
        if (i + 1 >= args.size()) {
          std::cerr << "error: --metrics-json requires a value\n";
          std::exit(2);
        }
        path_ = args[i + 1];
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                   args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      } else if (args[i] == "--trace") {
        if (!buffer_) buffer_ = std::make_unique<obs::TraceBuffer>(1u << 16);
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  obs::MetricsRegistry& metrics() { return metrics_; }
  /// Non-null only with --trace; wire into DifferencePropagator options.
  obs::TraceBuffer* trace() { return buffer_.get(); }
  bool requested() const { return !path_.empty(); }

  /// Writes the document when --metrics-json was given. Returns false
  /// only when a requested write failed (callers fold that into their
  /// exit code so scripts notice the missing file).
  bool write(const std::string& tool, const std::string& command = "") {
    if (path_.empty()) return true;
    obs::JsonValue doc = obs::JsonValue::object();
    doc["tool"] = tool;
    if (!command.empty()) doc["command"] = command;
    doc["schema"] = "dp.metrics.v1";
    doc["metrics"] = metrics_.to_json();
    if (buffer_) doc["trace"] = buffer_->to_json();
    std::string error;
    if (!obs::write_json_file(path_, doc, &error)) {
      std::cerr << "[metrics] FAILED to write " << path_ << ": " << error
                << "\n";
      return false;
    }
    std::cout << "[metrics] wrote " << path_ << "\n";
    return true;
  }

 private:
  std::string path_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceBuffer> buffer_;
};

}  // namespace dp::cli
