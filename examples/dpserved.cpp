// dpserved -- resident fault-analysis service.
//
// Keeps parsed circuits, analysis profiles and (optionally) an artifact
// store hot in one long-lived process, and serves analyze / ndetect /
// grade / hash / evict / metrics requests over a length-prefixed JSON
// protocol
// (see src/serve/protocol.hpp). Companion load generator: dpload.
//
//   dpserved --unix /tmp/dp.sock [flags]     Unix-domain socket
//   dpserved --port 0 [flags]                TCP on 127.0.0.1 (0 = pick)
//
//   --workers N        request-level worker threads (default 1)
//   --jobs N           default per-request engine jobs (default 1;
//                      a request's options.jobs overrides)
//   --queue-depth N    admission queue capacity (default 64)
//   --deadline-ms N    default per-request deadline (default 0 = none)
//   --cache-entries N  in-memory profile LRU capacity (default 64)
//   --quiet            no startup/shutdown chatter on stdout
//
// Shared telemetry flags: --metrics-json PATH, --trace-out PATH,
// --cache-dir PATH (persistent artifact store). --version prints the
// build id.
//
// SIGTERM/SIGINT (or a "shutdown" request) drain: in-flight and queued
// requests finish, late arrivals get {"error":{"code":"shutting_down"}},
// then the process exits 0. The metrics document is written after the
// drain so it covers the whole run.
#include <csignal>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cli_common.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

int usage() {
  std::cerr << "usage: dpserved (--unix PATH | --port N) [--workers N]\n"
               "                [--jobs N] [--queue-depth N] [--deadline-ms N]\n"
               "                [--cache-entries N] [--quiet]\n"
               "                [--metrics-json PATH] [--trace-out PATH]\n"
               "                [--cache-dir PATH] [--version]\n";
  return 2;
}

// Self-pipe: the signal handler writes one byte; a watcher thread turns
// that into an orderly drain (signal handlers must not take locks).
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  dp::cli::handle_version_flag(args, "dpserved");
  dp::cli::Telemetry telemetry;
  telemetry.strip_flags(args);

  dp::serve::ServerOptions server_opts;
  dp::serve::ServiceOptions service_opts;
  bool quiet = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "error: " << flag << " requires a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (args[i] == "--unix") {
      server_opts.unix_path = value("--unix");
    } else if (args[i] == "--port") {
      server_opts.tcp_port =
          static_cast<int>(dp::cli::parse_count("--port", value("--port")));
    } else if (args[i] == "--workers") {
      server_opts.workers =
          dp::cli::parse_count("--workers", value("--workers"));
    } else if (args[i] == "--jobs") {
      service_opts.jobs = dp::cli::parse_count("--jobs", value("--jobs"));
    } else if (args[i] == "--queue-depth") {
      server_opts.queue_depth =
          dp::cli::parse_count("--queue-depth", value("--queue-depth"));
    } else if (args[i] == "--deadline-ms") {
      server_opts.default_deadline_ms =
          dp::cli::parse_count("--deadline-ms", value("--deadline-ms"));
    } else if (args[i] == "--cache-entries") {
      service_opts.profile_cache_entries =
          dp::cli::parse_count("--cache-entries", value("--cache-entries"));
    } else if (args[i] == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "error: unknown flag '" << args[i] << "'\n";
      return usage();
    }
  }
  if (server_opts.unix_path.empty() && server_opts.tcp_port < 0) {
    return usage();
  }

  // --cache-dir means what it means to dpcli: persistent profiles and
  // checkpoint/resume, here shared by every request. The service opens
  // its own store on the directory and shares the telemetry registry,
  // so --metrics-json and the "metrics" request expose one view.
  service_opts.cache_dir = telemetry.cache_dir();
  dp::serve::Service service(service_opts, &telemetry.metrics());
  dp::serve::Server server(server_opts, &service, &telemetry.metrics());
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "dpserved: " << error << "\n";
    return 1;
  }
  if (!quiet) {
    if (!server_opts.unix_path.empty()) {
      std::cout << "dpserved: listening on " << server_opts.unix_path << "\n";
    } else {
      std::cout << "dpserved: listening on 127.0.0.1:" << server.tcp_port()
                << "\n";
    }
    std::cout.flush();
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::cerr << "dpserved: pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::thread watcher([&server] {
    char byte;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    server.initiate_drain();
  });

  server.wait();  // returns when drained (signal or "shutdown" request)
  // Unblock the watcher if the drain came from a "shutdown" request.
  on_signal(0);
  watcher.join();
  if (!quiet) std::cout << "dpserved: drained, exiting\n";
  return telemetry.write("dpserved") ? 0 : 1;
}
