// dptrace: offline analyzer for dp.trace.v1 span/profile documents
// (written by the benches and CLIs via --trace-out).
//
//   $ ./dptrace TRACE.json                   # full report
//   $ ./dptrace A.json B.json                # two-run diff
//   $ ./dptrace TRACE.json --top 5           # top-k slowest faults
//   $ ./dptrace TRACE.json --assert-coverage 0.95
//
// The report attributes wall time to top-level phases, folds the span
// tree into flamegraph-style paths (inclusive + self time), tabulates
// per-worker busy time and end skew, and summarizes per-fault latency
// (p50/p90/p99, ASCII histogram, slowest sites with topology class).
// --assert-coverage F exits 1 unless the root spans cover at least
// fraction F of the run's wall clock -- the CI hook that keeps the
// instrumentation honest. Diff mode prints per-phase and per-quantile
// deltas between two runs of the same workload.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "cli_common.hpp"
#include "obs/json.hpp"

using dp::obs::JsonValue;

namespace {

struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::string name;
  const JsonValue* args = nullptr;  ///< into the loaded document
};

struct Trace {
  std::string id;       ///< bench/tool name
  std::size_t jobs = 0;
  double wall_seconds = 0.0;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::size_t threads = 0;
  std::vector<Span> spans;
  const JsonValue* profile = nullptr;
  JsonValue doc;  ///< owns everything the pointers reference
};

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "dptrace: " << message << "\n";
  std::exit(1);
}

double num_or(const JsonValue* v, double fallback) {
  return v && v->is_number() ? v->as_double() : fallback;
}

/// Integer attr lookup on a span's args ({} -> fallback).
long long arg_int(const Span& s, const std::string& key, long long fallback) {
  if (!s.args) return fallback;
  const JsonValue* v = s.args->find(key);
  return v && v->is_number() ? v->as_int() : fallback;
}

std::string arg_text(const Span& s, const std::string& key) {
  if (!s.args) return "";
  const JsonValue* v = s.args->find(key);
  return v && v->is_string() ? v->as_string() : "";
}

Trace load_trace(const std::string& path) {
  Trace t;
  try {
    t.doc = dp::obs::read_json_file(path);
  } catch (const std::exception& e) {
    fail(std::string("cannot read ") + path + ": " + e.what());
  }
  const JsonValue* schema = t.doc.find("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != "dp.trace.v1") {
    fail(path + ": not a dp.trace.v1 document (schema is " +
         (schema && schema->is_string() ? "'" + schema->as_string() + "'"
                                        : "missing") +
         ")");
  }
  if (const JsonValue* id = t.doc.find("bench")) {
    t.id = id->as_string();
  } else if (const JsonValue* id2 = t.doc.find("tool")) {
    t.id = id2->as_string();
  }
  t.jobs = static_cast<std::size_t>(num_or(t.doc.find("jobs"), 0));
  t.wall_seconds = num_or(t.doc.find("wall_seconds"), 0.0);

  const JsonValue* spans = t.doc.find("spans");
  if (!spans || !spans->is_object()) fail(path + ": missing spans section");
  t.recorded = static_cast<std::uint64_t>(num_or(spans->find("recorded"), 0));
  t.dropped = static_cast<std::uint64_t>(num_or(spans->find("dropped"), 0));
  t.threads = static_cast<std::size_t>(num_or(spans->find("threads"), 0));
  const JsonValue* events = spans->find("events");
  if (!events || !events->is_array()) fail(path + ": missing spans.events");
  t.spans.reserve(events->size());
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    Span s;
    s.id = static_cast<std::uint64_t>(num_or(e.find("id"), 0));
    s.parent = static_cast<std::uint64_t>(num_or(e.find("parent"), 0));
    s.tid = static_cast<std::uint32_t>(num_or(e.find("tid"), 0));
    s.ts_us = num_or(e.find("ts_us"), 0.0);
    s.dur_us = num_or(e.find("dur_us"), 0.0);
    if (const JsonValue* name = e.find("name")) s.name = name->as_string();
    s.args = e.find("args");
    t.spans.push_back(std::move(s));
  }
  t.profile = t.doc.find("profile");
  return t;
}

/// Nearest-rank quantile over a sorted vector (empty -> 0).
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank > 0) --rank;
  return sorted[rank];
}

std::string fmt_us(double us) {
  std::ostringstream os;
  os << std::fixed;
  if (us >= 1e6) {
    os << std::setprecision(3) << us * 1e-6 << " s";
  } else if (us >= 1e3) {
    os << std::setprecision(2) << us * 1e-3 << " ms";
  } else {
    os << std::setprecision(1) << us << " us";
  }
  return os.str();
}

std::string fmt_frac(double f) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << 100.0 * f << "%";
  return os.str();
}

/// Phase attribution over ROOT spans (parent == 0), grouped by name.
struct PhaseRow {
  double total_us = 0.0;
  std::size_t count = 0;
};
std::map<std::string, PhaseRow> phase_rows(const Trace& t) {
  std::map<std::string, PhaseRow> rows;
  for (const Span& s : t.spans) {
    if (s.parent != 0) continue;
    PhaseRow& r = rows[s.name];
    r.total_us += s.dur_us;
    ++r.count;
  }
  return rows;
}

double root_total_us(const std::map<std::string, PhaseRow>& rows) {
  double total = 0.0;
  for (const auto& [name, r] : rows) total += r.total_us;
  return total;
}

void print_phases(const Trace& t) {
  const auto rows = phase_rows(t);
  const double wall_us = t.wall_seconds * 1e6;
  std::cout << "Per-phase attribution (root spans):\n";
  std::cout << "  " << std::left << std::setw(26) << "phase" << std::right
            << std::setw(12) << "total" << std::setw(8) << "count"
            << std::setw(9) << "of wall" << "\n";
  for (const auto& [name, r] : rows) {
    std::cout << "  " << std::left << std::setw(26) << name << std::right
              << std::setw(12) << fmt_us(r.total_us) << std::setw(8)
              << r.count << std::setw(9)
              << (wall_us > 0 ? fmt_frac(r.total_us / wall_us) : "-")
              << "\n";
  }
  const double covered = root_total_us(rows);
  std::cout << "  " << std::left << std::setw(26) << "== coverage"
            << std::right << std::setw(12) << fmt_us(covered) << std::setw(8)
            << "" << std::setw(9)
            << (wall_us > 0 ? fmt_frac(covered / wall_us) : "-") << "\n\n";
}

/// Flamegraph-style fold: each span's path is the ';'-joined chain of
/// ancestor names. A parent that fell out of its ring shows up as the
/// "(dropped)" path head instead of silently re-rooting the subtree.
void print_flame(const Trace& t, std::size_t top_k) {
  std::unordered_map<std::uint64_t, const Span*> by_id;
  by_id.reserve(t.spans.size());
  for (const Span& s : t.spans) by_id[s.id] = &s;

  struct Agg {
    double inclusive_us = 0.0;
    double child_us = 0.0;
    std::size_t count = 0;
  };
  std::unordered_map<std::uint64_t, std::string> path_of;
  path_of.reserve(t.spans.size());
  std::map<std::string, Agg> agg;

  // Spans are chronological, but a child can START before its parent is
  // RECORDED -- ordering by id is not reliable either, so resolve each
  // path recursively with memoization.
  std::function<const std::string&(const Span&)> path =
      [&](const Span& s) -> const std::string& {
    auto it = path_of.find(s.id);
    if (it != path_of.end()) return it->second;
    std::string p;
    if (s.parent == 0) {
      p = s.name;
    } else {
      auto parent = by_id.find(s.parent);
      p = (parent == by_id.end() ? "(dropped);" : path(*parent->second) + ";") +
          s.name;
    }
    return path_of.emplace(s.id, std::move(p)).first->second;
  };

  for (const Span& s : t.spans) {
    Agg& a = agg[path(s)];
    a.inclusive_us += s.dur_us;
    ++a.count;
    if (s.parent != 0) {
      auto parent = by_id.find(s.parent);
      if (parent != by_id.end()) {
        agg[path(*parent->second)].child_us += s.dur_us;
      }
    }
  }

  std::vector<std::pair<std::string, Agg>> sorted(agg.begin(), agg.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.inclusive_us > b.second.inclusive_us;
  });

  std::cout << "Span tree (top " << std::min(top_k, sorted.size())
            << " paths by inclusive time; self = inclusive - children):\n";
  std::cout << "  " << std::right << std::setw(12) << "inclusive"
            << std::setw(12) << "self" << std::setw(9) << "count"
            << "  path\n";
  for (std::size_t i = 0; i < sorted.size() && i < top_k; ++i) {
    const auto& [p, a] = sorted[i];
    const double self = std::max(0.0, a.inclusive_us - a.child_us);
    std::cout << "  " << std::setw(12) << fmt_us(a.inclusive_us)
              << std::setw(12) << fmt_us(self) << std::setw(9) << a.count
              << "  " << p << "\n";
  }
  std::cout << "\n";
}

void print_workers(const Trace& t) {
  std::vector<const Span*> workers;
  for (const Span& s : t.spans) {
    if (s.name == "dp.worker") workers.push_back(&s);
  }
  if (workers.empty()) return;
  std::sort(workers.begin(), workers.end(), [](const Span* a, const Span* b) {
    return arg_int(*a, "worker", 0) < arg_int(*b, "worker", 0);
  });
  double min_end = 0.0, max_end = 0.0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const double end = workers[i]->ts_us + workers[i]->dur_us;
    if (i == 0) {
      min_end = max_end = end;
    } else {
      min_end = std::min(min_end, end);
      max_end = std::max(max_end, end);
    }
  }
  std::cout << "Workers (dp.worker spans; skew = slowest end - fastest "
               "end):\n";
  std::cout << "  " << std::right << std::setw(8) << "worker" << std::setw(9)
            << "faults" << std::setw(12) << "span" << std::setw(12) << "busy"
            << "\n";
  for (const Span* w : workers) {
    const long long busy_s_attr = arg_int(*w, "busy_seconds", -1);
    double busy_us = static_cast<double>(busy_s_attr) * 1e6;
    if (w->args) {
      if (const JsonValue* b = w->args->find("busy_seconds")) {
        busy_us = b->as_double() * 1e6;
      }
    }
    std::cout << "  " << std::setw(8) << arg_int(*w, "worker", -1)
              << std::setw(9) << arg_int(*w, "faults", 0) << std::setw(12)
              << fmt_us(w->dur_us) << std::setw(12)
              << (busy_us >= 0 ? fmt_us(busy_us) : "-") << "\n";
  }
  std::cout << "  end skew: " << fmt_us(max_end - min_end) << "\n\n";
}

std::vector<const Span*> fault_spans(const Trace& t) {
  std::vector<const Span*> faults;
  for (const Span& s : t.spans) {
    if (s.name == "dp.fault") faults.push_back(&s);
  }
  return faults;
}

std::vector<double> sorted_fault_us(const std::vector<const Span*>& faults) {
  std::vector<double> us;
  us.reserve(faults.size());
  for (const Span* f : faults) us.push_back(f->dur_us);
  std::sort(us.begin(), us.end());
  return us;
}

void print_fault_latency(const Trace& t, std::size_t top_k) {
  std::vector<const Span*> faults = fault_spans(t);
  if (faults.empty()) return;
  const std::vector<double> sorted = sorted_fault_us(faults);

  std::cout << "Per-fault latency (" << faults.size() << " dp.fault spans): "
            << "p50 " << fmt_us(quantile_sorted(sorted, 0.50)) << ", p90 "
            << fmt_us(quantile_sorted(sorted, 0.90)) << ", p99 "
            << fmt_us(quantile_sorted(sorted, 0.99)) << ", max "
            << fmt_us(sorted.back()) << "\n";

  // Log2 histogram from 1us up; one row per occupied decade-ish bucket.
  std::map<int, std::size_t> buckets;
  for (const double us : sorted) {
    const int b = us < 1.0
                      ? 0
                      : 1 + static_cast<int>(std::floor(std::log2(us)));
    ++buckets[b];
  }
  std::size_t max_count = 0;
  for (const auto& [b, n] : buckets) max_count = std::max(max_count, n);
  for (const auto& [b, n] : buckets) {
    const double lo = b == 0 ? 0.0 : std::exp2(b - 1);
    const double hi = std::exp2(b);
    const std::size_t bar =
        max_count > 0 ? (n * 40 + max_count - 1) / max_count : 0;
    std::cout << "  " << std::right << std::setw(10) << fmt_us(lo) << " .. "
              << std::left << std::setw(10) << fmt_us(hi) << std::right
              << std::setw(8) << n << "  " << std::string(bar, '#') << "\n";
  }

  std::sort(faults.begin(), faults.end(), [](const Span* a, const Span* b) {
    return a->dur_us > b->dur_us;
  });
  std::cout << "Slowest faults (site, topology, work):\n";
  for (std::size_t i = 0; i < faults.size() && i < top_k; ++i) {
    const Span& f = *faults[i];
    const std::string site = arg_text(f, "site");
    const long long branch = arg_int(f, "branch", -1);
    std::cout << "  " << std::right << std::setw(12) << fmt_us(f.dur_us)
              << "  " << (site.empty() ? "(no attrs)" : site);
    if (branch >= 0) {
      std::cout << (branch ? "  [fanout branch]" : "  [stem]");
    }
    std::cout << "  po_distance=" << arg_int(f, "po_distance", -1)
              << " gates=" << arg_int(f, "gates_evaluated", 0) << "+"
              << arg_int(f, "gates_skipped", 0) << " skipped"
              << (arg_int(f, "detectable", -1) == 0 ? "  REDUNDANT" : "")
              << "\n";
  }
  std::cout << "\n";
}

void print_profile(const Trace& t) {
  if (!t.profile) return;
  const JsonValue* series = t.profile->find("series");
  if (!series || !series->is_array() || series->size() == 0) return;
  std::cout << "Profiler series ("
            << static_cast<long long>(num_or(t.profile->find("ticks"), 0))
            << " ticks @ "
            << static_cast<long long>(num_or(t.profile->find("period_ms"), 0))
            << " ms):\n";
  for (std::size_t i = 0; i < series->size(); ++i) {
    const JsonValue& s = series->at(i);
    const JsonValue* name = s.find("name");
    const JsonValue* samples = s.find("samples");
    if (!name || !samples || !samples->is_array() || samples->size() == 0) {
      continue;
    }
    double lo = 0.0, hi = 0.0, last = 0.0;
    for (std::size_t k = 0; k < samples->size(); ++k) {
      const JsonValue& sample = samples->at(k);
      if (!sample.is_array() || sample.size() != 2) continue;
      const double v = sample.at(std::size_t{1}).as_double();
      if (k == 0) {
        lo = hi = v;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      last = v;
    }
    std::cout << "  " << std::left << std::setw(32) << name->as_string()
              << std::right << "  min " << lo << "  max " << hi << "  last "
              << last << " (" << samples->size() << " samples)\n";
  }
  std::cout << "\n";
}

double print_report(const Trace& t, std::size_t top_k) {
  std::cout << "Trace: " << t.id << " (jobs " << t.jobs << ", wall "
            << std::fixed << std::setprecision(3) << t.wall_seconds
            << " s; spans " << t.recorded << " recorded / " << t.dropped
            << " dropped on " << t.threads << " threads)\n\n";
  if (t.dropped > 0) {
    std::cout << "  WARNING: " << t.dropped
              << " spans dropped (ring wrap) -- attribution is partial\n\n";
  }
  print_phases(t);
  print_flame(t, top_k);
  print_workers(t);
  print_fault_latency(t, top_k);
  print_profile(t);
  const double wall_us = t.wall_seconds * 1e6;
  return wall_us > 0 ? root_total_us(phase_rows(t)) / wall_us : 0.0;
}

void print_diff(const Trace& a, const Trace& b) {
  std::cout << "Diff: " << a.id << " (wall " << std::fixed
            << std::setprecision(3) << a.wall_seconds << " s) vs " << b.id
            << " (wall " << b.wall_seconds << " s)\n\n";

  const auto ra = phase_rows(a);
  const auto rb = phase_rows(b);
  std::map<std::string, std::pair<double, double>> merged;
  for (const auto& [name, r] : ra) merged[name].first = r.total_us;
  for (const auto& [name, r] : rb) merged[name].second = r.total_us;
  std::cout << "Per-phase totals (A, B, delta):\n";
  for (const auto& [name, v] : merged) {
    const double delta = v.second - v.first;
    std::cout << "  " << std::left << std::setw(26) << name << std::right
              << std::setw(12) << fmt_us(v.first) << std::setw(12)
              << fmt_us(v.second) << std::setw(13)
              << (delta >= 0 ? "+" : "-") + fmt_us(std::fabs(delta));
    if (v.first > 0) {
      std::cout << "  (" << std::showpos << std::setprecision(1)
                << 100.0 * delta / v.first << std::noshowpos << "%)";
    }
    std::cout << "\n";
  }

  const std::vector<double> fa = sorted_fault_us(fault_spans(a));
  const std::vector<double> fb = sorted_fault_us(fault_spans(b));
  if (!fa.empty() || !fb.empty()) {
    std::cout << "\nPer-fault latency quantiles (A -> B):\n";
    for (const double q : {0.50, 0.90, 0.99}) {
      std::cout << "  p" << static_cast<int>(q * 100) << ": "
                << fmt_us(quantile_sorted(fa, q)) << " -> "
                << fmt_us(quantile_sorted(fb, q)) << "\n";
    }
    std::cout << "  faults: " << fa.size() << " -> " << fb.size() << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  dp::cli::handle_version_flag(
      std::vector<std::string>(argv + 1, argv + argc), "dptrace");
  std::vector<std::string> files;
  std::size_t top_k = 10;
  double assert_coverage = -1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value_of = [&]() -> std::string {
      if (i + 1 >= argc) fail(a + " requires a value");
      return argv[++i];
    };
    if (a == "--top") {
      top_k = static_cast<std::size_t>(std::atoll(value_of().c_str()));
    } else if (a == "--assert-coverage") {
      assert_coverage = std::atof(value_of().c_str());
    } else if (a == "--help" || a == "-h") {
      std::cout << "usage: dptrace FILE [FILE2] [--top K] "
                   "[--assert-coverage FRACTION]\n"
                   "  FILE            dp.trace.v1 document (--trace-out)\n"
                   "  FILE2           second document: print a two-run diff\n"
                   "  --top K         slowest-fault / span-path rows "
                   "(default 10)\n"
                   "  --assert-coverage F  exit 1 unless root spans cover\n"
                   "                  >= F of the run's wall clock\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      fail("unknown option '" + a + "'");
    } else {
      files.push_back(a);
    }
  }
  if (files.empty() || files.size() > 2) {
    fail("expected one or two trace files (see --help)");
  }

  const Trace t = load_trace(files[0]);
  if (files.size() == 2) {
    const Trace u = load_trace(files[1]);
    print_diff(t, u);
    return 0;
  }

  const double coverage = print_report(t, top_k);
  if (assert_coverage >= 0.0) {
    std::cout << "coverage check: root spans cover " << fmt_frac(coverage)
              << " of wall (require >= " << fmt_frac(assert_coverage)
              << "): " << (coverage >= assert_coverage ? "OK" : "FAIL")
              << "\n";
    if (coverage < assert_coverage) return 1;
  }
  return 0;
}
