// dpload -- open-loop load generator for dpserved.
//
// Fires analyze requests at a target QPS from a fixed schedule (open
// loop: a slow server does not slow the arrival process, it just gets
// deeper queues -- which is exactly the admission-control behavior the
// bench measures), records per-request latency split into COLD (the
// server computed the profile) and WARM (served from the resident
// cache, per the response's "cached" flag), and writes a dp.served.v1
// document that bench/validate_metrics accepts.
//
//   dpload --unix PATH | --host IP --port N   attach to a running server
//   dpload --spawn PATH/TO/dpserved           fork+exec a private server
//                                             on a temp socket, SIGTERM
//                                             it at the end, and require
//                                             a clean drain (exit 0)
//
//   --qps Q           target arrival rate (default 20)
//   --requests N      schedule length (default 60)
//   --connections C   sender threads = max in-flight (default 4)
//   --circuits LIST   comma-separated round-robin mix (default
//                     c17,alu181)
//   --model M         sa | bf.and | bf.or | hybrid (default sa)
//   --jobs N          per-request engine jobs (default 1)
//   --deadline-ms N   attach a deadline to every request (default none)
//   --out PATH        output document (default BENCH_served.json)
//   --assert-warm-faster   exit 1 unless warm p50/p99 < cold p50/p99
//   --workers/--queue-depth/--cache-dir  forwarded to --spawn'd server
//   --quiet / --version
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cli_common.hpp"
#include "obs/json.hpp"
#include "serve/client.hpp"

using dp::obs::JsonValue;
using Clock = std::chrono::steady_clock;

namespace {

int usage() {
  std::cerr
      << "usage: dpload (--unix PATH | --host IP --port N | --spawn "
         "DPSERVED)\n"
         "              [--qps Q] [--requests N] [--connections C]\n"
         "              [--circuits a,b,c] [--model sa|bf.and|bf.or|hybrid]\n"
         "              [--jobs N] [--deadline-ms N] [--out PATH]\n"
         "              [--workers N] [--queue-depth N] [--cache-dir PATH]\n"
         "              [--assert-warm-faster] [--quiet] [--version]\n";
  return 2;
}

struct Sample {
  double latency_ms = 0.0;
  bool ok = false;
  bool cached = false;
  std::string error_code;  ///< non-empty for ok=false responses
};

/// Nearest-rank percentile over an unsorted copy.
double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t rank = std::min(
      v.size() - 1,
      static_cast<std::size_t>(p / 100.0 * static_cast<double>(v.size())));
  return v[rank];
}

JsonValue latency_block(const std::vector<double>& v) {
  JsonValue j = JsonValue::object();
  j["count"] = v.size();
  j["p50_ms"] = percentile(v, 50.0);
  j["p90_ms"] = percentile(v, 90.0);
  j["p99_ms"] = percentile(v, 99.0);
  j["max_ms"] = v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  dp::cli::handle_version_flag(args, "dpload");

  std::string unix_path, host = "127.0.0.1", spawn, out = "BENCH_served.json";
  std::string circuits_arg = "c17,alu181", model = "sa";
  std::string spawn_cache_dir;
  int port = -1;
  double qps = 20.0;
  std::size_t requests = 60, connections = 4, jobs = 1;
  std::size_t spawn_workers = 2, spawn_queue_depth = 64;
  std::uint64_t deadline_ms = 0;
  bool assert_warm_faster = false, quiet = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "error: " << flag << " requires a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (args[i] == "--unix") {
      unix_path = value("--unix");
    } else if (args[i] == "--host") {
      host = value("--host");
    } else if (args[i] == "--port") {
      port = static_cast<int>(dp::cli::parse_count("--port", value("--port")));
    } else if (args[i] == "--spawn") {
      spawn = value("--spawn");
    } else if (args[i] == "--qps") {
      const std::string v = value("--qps");
      char* end = nullptr;
      qps = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || qps <= 0.0) {
        std::cerr << "error: --qps expects a positive number\n";
        return 2;
      }
    } else if (args[i] == "--requests") {
      requests = dp::cli::parse_count("--requests", value("--requests"));
    } else if (args[i] == "--connections") {
      connections =
          dp::cli::parse_count("--connections", value("--connections"));
    } else if (args[i] == "--circuits") {
      circuits_arg = value("--circuits");
    } else if (args[i] == "--model") {
      model = value("--model");
    } else if (args[i] == "--jobs") {
      jobs = dp::cli::parse_count("--jobs", value("--jobs"));
    } else if (args[i] == "--deadline-ms") {
      deadline_ms =
          dp::cli::parse_count("--deadline-ms", value("--deadline-ms"));
    } else if (args[i] == "--out") {
      out = value("--out");
    } else if (args[i] == "--workers") {
      spawn_workers = dp::cli::parse_count("--workers", value("--workers"));
    } else if (args[i] == "--queue-depth") {
      spawn_queue_depth =
          dp::cli::parse_count("--queue-depth", value("--queue-depth"));
    } else if (args[i] == "--cache-dir") {
      spawn_cache_dir = value("--cache-dir");
    } else if (args[i] == "--assert-warm-faster") {
      assert_warm_faster = true;
    } else if (args[i] == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "error: unknown flag '" << args[i] << "'\n";
      return usage();
    }
  }
  if (connections == 0) connections = 1;

  std::vector<std::string> circuits;
  for (std::size_t start = 0; start <= circuits_arg.size();) {
    const std::size_t comma = circuits_arg.find(',', start);
    const std::string name = circuits_arg.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    if (!name.empty()) circuits.push_back(name);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (circuits.empty()) {
    std::cerr << "error: --circuits needs at least one name\n";
    return 2;
  }

  // --spawn: run a private dpserved on a temp Unix socket. The socket
  // lives in /tmp because sun_path caps at ~107 bytes -- a build-tree
  // path can exceed that.
  pid_t child = -1;
  if (!spawn.empty()) {
    if (!unix_path.empty() || port >= 0) {
      std::cerr << "error: --spawn conflicts with --unix/--port\n";
      return 2;
    }
    unix_path = "/tmp/dpload." + std::to_string(::getpid()) + ".sock";
    child = ::fork();
    if (child < 0) {
      std::cerr << "dpload: fork: " << std::strerror(errno) << "\n";
      return 1;
    }
    if (child == 0) {
      std::vector<std::string> cargs = {
          spawn,          "--unix",        unix_path,
          "--workers",    std::to_string(spawn_workers),
          "--queue-depth", std::to_string(spawn_queue_depth),
          "--jobs",       std::to_string(jobs),
          "--quiet"};
      if (!spawn_cache_dir.empty()) {
        cargs.push_back("--cache-dir");
        cargs.push_back(spawn_cache_dir);
      }
      std::vector<char*> cargv;
      for (std::string& a : cargs) cargv.push_back(a.data());
      cargv.push_back(nullptr);
      ::execv(spawn.c_str(), cargv.data());
      std::cerr << "dpload: exec " << spawn << ": " << std::strerror(errno)
                << "\n";
      ::_exit(127);
    }
    // Readiness: poll-connect until the socket answers a ping.
    bool up = false;
    for (int attempt = 0; attempt < 300; ++attempt) {
      std::string err;
      if (auto probe = dp::serve::Client::connect_unix(unix_path, &err)) {
        JsonValue ping = JsonValue::object();
        ping["type"] = "ping";
        JsonValue resp;
        if (probe->call(ping, &resp, &err)) {
          up = true;
          break;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (!up) {
      std::cerr << "dpload: spawned server never became ready\n";
      ::kill(child, SIGKILL);
      return 1;
    }
  }
  if (unix_path.empty() && port < 0) return usage();

  auto connect = [&](std::string* err) {
    return unix_path.empty()
               ? dp::serve::Client::connect_tcp(host, port, err)
               : dp::serve::Client::connect_unix(unix_path, err);
  };

  // Open-loop schedule: request i is DUE at start + i/qps; sender
  // threads claim indices atomically and sleep until the due time, so
  // lateness never compresses later arrivals.
  std::vector<Sample> samples(requests);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> transport_failed{false};
  const auto start_time = Clock::now() + std::chrono::milliseconds(50);
  std::vector<std::thread> senders;
  senders.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    senders.emplace_back([&] {
      std::string err;
      auto client = connect(&err);
      if (!client) {
        std::cerr << "dpload: " << err << "\n";
        transport_failed.store(true);
        return;
      }
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= requests) return;
        const auto due =
            start_time + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 static_cast<double>(i) / qps));
        std::this_thread::sleep_until(due);
        JsonValue req = JsonValue::object();
        req["id"] = static_cast<long long>(i);
        req["type"] = "analyze";
        req["circuit"] = circuits[i % circuits.size()];
        if (deadline_ms > 0) req["deadline_ms"] = deadline_ms;
        JsonValue opts = JsonValue::object();
        opts["model"] = model;
        opts["jobs"] = jobs;
        req["options"] = std::move(opts);
        const auto t0 = Clock::now();
        JsonValue resp;
        if (!client->call(req, &resp, &err)) {
          samples[i].error_code = "transport:" + err;
          transport_failed.store(true);
          return;
        }
        samples[i].latency_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        samples[i].ok = resp.is_object() && resp.find("ok") &&
                        resp.at("ok").as_bool();
        if (samples[i].ok) {
          samples[i].cached = resp.find("cached") != nullptr &&
                              resp.at("cached").as_bool();
        } else if (const JsonValue* e = resp.find("error")) {
          samples[i].error_code = e->at("code").as_string();
        }
      }
    });
  }
  for (std::thread& t : senders) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start_time).count();

  // Pull the server's own counters (queue high-water, rejections,
  // cache hits) into the document, then shut a spawned server down and
  // require a clean drain.
  JsonValue server_metrics;
  {
    std::string err;
    if (auto client = connect(&err)) {
      JsonValue req = JsonValue::object();
      req["type"] = "metrics";
      JsonValue resp;
      if (client->call(req, &resp, &err) && resp.find("document")) {
        server_metrics = resp.at("document");
      }
    }
  }
  int server_exit = -1;
  if (child > 0) {
    ::kill(child, SIGTERM);
    int status = 0;
    if (::waitpid(child, &status, 0) == child && WIFEXITED(status)) {
      server_exit = WEXITSTATUS(status);
    }
    ::unlink(unix_path.c_str());
  }

  // Aggregate.
  std::vector<double> cold, warm;
  std::size_t ok_count = 0;
  std::map<std::string, std::size_t> errors;
  for (const Sample& s : samples) {
    if (s.ok) {
      ++ok_count;
      (s.cached ? warm : cold).push_back(s.latency_ms);
    } else if (!s.error_code.empty()) {
      ++errors[s.error_code];
    }
  }

  JsonValue doc = JsonValue::object();
  doc["schema"] = "dp.served.v1";
  doc["tool"] = "dpload";
  doc["model"] = model;
  JsonValue mix = JsonValue::array();
  for (const std::string& c : circuits) mix.push_back(c);
  doc["circuits"] = std::move(mix);
  doc["connections"] = connections;
  doc["target_qps"] = qps;
  doc["requests"] = requests;
  doc["ok"] = ok_count;
  doc["achieved_qps"] =
      elapsed_s > 0.0 ? static_cast<double>(ok_count) / elapsed_s : 0.0;
  JsonValue latency = JsonValue::object();
  latency["cold"] = latency_block(cold);
  latency["warm"] = latency_block(warm);
  doc["latency"] = std::move(latency);
  JsonValue errs = JsonValue::object();
  for (const auto& [code, n] : errors) errs[code] = n;
  doc["errors"] = std::move(errs);
  if (!server_metrics.is_null()) doc["server"] = server_metrics;
  if (child > 0) doc["server_exit"] = server_exit;

  std::string werr;
  if (!dp::obs::write_json_file_atomic(out, doc, &werr)) {
    std::cerr << "dpload: FAILED to write " << out << ": " << werr << "\n";
    return 1;
  }
  if (!quiet) {
    std::cout << "dpload: " << ok_count << "/" << requests << " ok, "
              << doc.at("achieved_qps").as_double() << " qps achieved "
              << "(target " << qps << ")\n"
              << "  cold: n=" << cold.size() << " p50="
              << percentile(cold, 50.0) << "ms p99="
              << percentile(cold, 99.0) << "ms\n"
              << "  warm: n=" << warm.size() << " p50="
              << percentile(warm, 50.0) << "ms p99="
              << percentile(warm, 99.0) << "ms\n"
              << "  wrote " << out << "\n";
    for (const auto& [code, n] : errors) {
      std::cout << "  error " << code << ": " << n << "\n";
    }
  }

  int rc = 0;
  if (transport_failed.load()) {
    std::cerr << "dpload: transport failure during the run\n";
    rc = 1;
  }
  if (child > 0 && server_exit != 0) {
    std::cerr << "dpload: spawned server exited " << server_exit
              << " (expected a clean drain)\n";
    rc = 1;
  }
  if (assert_warm_faster) {
    const bool have = !cold.empty() && !warm.empty();
    const bool faster = have &&
                        percentile(warm, 50.0) < percentile(cold, 50.0) &&
                        percentile(warm, 99.0) < percentile(cold, 99.0);
    if (!faster) {
      std::cerr << "dpload: --assert-warm-faster FAILED (cold n="
                << cold.size() << " warm n=" << warm.size() << ")\n";
      rc = 1;
    }
  }
  return rc;
}
