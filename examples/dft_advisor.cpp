// Design-for-testability advisor: applies the paper's testable-design
// conclusions. It locates the circuit-center nets the bathtub curve says
// are hardest, then compares two equal-cost DFT edits:
//   * observation points (extra POs on those nets), and
//   * control points (an extra PI XOR-ed into each net),
// re-running the exact analysis on each modified design. The paper's
// claim: "detectability is best increased through enhanced observability".
//
//   $ ./dft_advisor            # defaults to c1355, 4 test points
//   $ ./dft_advisor c432 6
#include <algorithm>
#include <iostream>
#include <string>

#include "analysis/profiles.hpp"
#include "analysis/report.hpp"
#include "cli_common.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"
#include "netlist/testpoints.hpp"

using namespace dp;

namespace {

/// Center nets: maximize min(level from PI, levels to PO); tie-break by
/// fanout (a well-connected center net influences more faults).
std::vector<netlist::NetId> pick_center_nets(const netlist::Circuit& c,
                                             const netlist::Structure& s,
                                             std::size_t k) {
  std::vector<netlist::NetId> nets;
  for (netlist::NetId id = 0; id < c.num_nets(); ++id) {
    if (c.type(id) == netlist::GateType::Input) continue;
    if (netlist::is_constant(c.type(id))) continue;
    if (s.max_levels_to_po(id) < 0) continue;
    nets.push_back(id);
  }
  std::sort(nets.begin(), nets.end(), [&](netlist::NetId a, netlist::NetId b) {
    const int ca = std::min(s.level_from_pi(a), s.max_levels_to_po(a));
    const int cb = std::min(s.level_from_pi(b), s.max_levels_to_po(b));
    if (ca != cb) return ca > cb;
    return c.fanout_count(a) > c.fanout_count(b);
  });
  nets.resize(std::min(k, nets.size()));
  return nets;
}

void report_row(analysis::TextTable& t, const std::string& label,
                const analysis::CircuitProfile& p) {
  t.add_row({label, std::to_string(p.faults.size()),
             std::to_string(p.faults.size() - p.detectable_count()),
             analysis::TextTable::num(p.mean_detectability_detectable()),
             analysis::TextTable::num(p.mean_detectability_per_po(), 5)});
}

}  // namespace

int main(int argc, char** argv) {
  cli::handle_version_flag(std::vector<std::string>(argv + 1, argv + argc),
                           "dft_advisor");
  const std::string arg = argc > 1 ? argv[1] : "c1355";
  const std::size_t k = argc > 2 ? std::stoul(argv[2]) : 4;

  netlist::Circuit base = netlist::make_benchmark(arg);
  netlist::Structure structure(base);
  const auto taps = pick_center_nets(base, structure, k);

  std::cout << "DFT advisor for " << base.name() << " -- " << taps.size()
            << " test points at the circuit center:\n";
  for (netlist::NetId id : taps) {
    std::cout << "  " << base.net_name(id) << " (from-PI "
              << structure.level_from_pi(id) << ", to-PO "
              << structure.max_levels_to_po(id) << ", fanout "
              << base.fanout_count(id) << ")\n";
  }
  std::cout << "\n";

  const analysis::CircuitProfile p_base = analysis::analyze_stuck_at(base);
  const analysis::CircuitProfile p_obs =
      analysis::analyze_stuck_at(netlist::add_observation_points(base, taps));
  const analysis::CircuitProfile p_ctl =
      analysis::analyze_stuck_at(netlist::add_control_points(base, taps));

  analysis::TextTable t({"design", "faults", "undetectable", "mean det",
                         "mean det/#POs"});
  report_row(t, "baseline", p_base);
  report_row(t, "+" + std::to_string(taps.size()) + " observe points", p_obs);
  report_row(t, "+" + std::to_string(taps.size()) + " control points", p_ctl);
  t.print(std::cout);

  const double gain_obs = p_obs.mean_detectability_detectable() -
                          p_base.mean_detectability_detectable();
  const double gain_ctl = p_ctl.mean_detectability_detectable() -
                          p_base.mean_detectability_detectable();
  std::cout << "\nMean-detectability gain: observation points "
            << analysis::TextTable::num(gain_obs, 5) << ", control points "
            << analysis::TextTable::num(gain_ctl, 5) << "\n";
  std::cout << (gain_obs >= gain_ctl
                    ? "Consistent with the paper: enhance observability first."
                    : "Note: control points won here; the paper expects "
                      "observability to dominate on average.")
            << "\n";
  return 0;
}
