// Quickstart: build C17, analyze one stuck-at fault and one bridging
// fault with Difference Propagation, print everything the library derives.
//
//   $ ./quickstart
#include <iostream>

#include "cli_common.hpp"
#include "dp/engine.hpp"
#include "fault/stuck_at.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"

int main(int argc, char** argv) {
  dp::cli::handle_version_flag(
      std::vector<std::string>(argv + 1, argv + argc), "quickstart");
  using namespace dp;

  // 1. A circuit. Generators cover the paper's suite; read_bench_file()
  //    loads ISCAS-85 netlists if you have them.
  netlist::Circuit c17 = netlist::make_c17();
  netlist::Structure structure(c17);

  // 2. Good functions: one OBDD per net over the PI variables.
  bdd::Manager manager(0);
  core::GoodFunctions good(manager, c17);
  std::cout << "Circuit " << c17.name() << ": " << c17.num_gates()
            << " gates, " << c17.num_inputs() << " PIs, " << c17.num_outputs()
            << " POs\n";
  std::cout << "Syndrome of net 16 (signal probability): "
            << good.syndrome(*c17.find_net("16")) << "\n\n";

  // 3. Difference Propagation.
  core::DifferencePropagator dp(good, structure);

  // A stuck-at fault on the fanout branch of net 11 into gate 16.
  fault::StuckAtFault sa{*c17.find_net("11"),
                         netlist::PinRef{*c17.find_net("16"), 1}, true};
  core::FaultAnalysis a = dp.analyze(sa);
  std::cout << "Fault " << describe(sa, c17) << ":\n";
  std::cout << "  detectable      : " << (a.detectable ? "yes" : "no") << "\n";
  std::cout << "  detectability   : " << a.detectability
            << " (exact, = |test set| / 2^" << c17.num_inputs() << ")\n";
  std::cout << "  excitation bound: " << a.upper_bound << "\n";
  std::cout << "  adherence       : " << a.adherence << "\n";
  std::cout << "  POs fed/observed: " << a.pos_fed << "/" << a.pos_observable
            << "\n";

  // The complete test set is a Boolean function; pull one test vector.
  const auto cube = a.test_set.sat_one();
  std::cout << "  one test vector : ";
  for (std::size_t i = 0; i < cube.size(); ++i) {
    std::cout << c17.net_name(c17.inputs()[i]) << "="
              << (cube[i] < 0 ? 'x' : static_cast<char>('0' + cube[i]))
              << (i + 1 < cube.size() ? ' ' : '\n');
  }
  std::cout << "  test vectors    : "
            << a.test_set.sat_count(c17.num_inputs()) << " of "
            << (1u << c17.num_inputs()) << "\n\n";

  // 4. A bridging fault between two internal wires.
  fault::BridgingFault bf{*c17.find_net("10"), *c17.find_net("19"),
                          fault::BridgeType::And};
  core::FaultAnalysis b = dp.analyze(bf);
  std::cout << "Fault " << describe(bf, c17) << ":\n";
  std::cout << "  detectability   : " << b.detectability << "\n";
  std::cout << "  stuck-at-like   : " << (b.bridge_stuck_at ? "yes" : "no")
            << "\n";
  return 0;
}
