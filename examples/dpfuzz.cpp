// dpfuzz -- budgeted differential-fuzzing campaigns over the oracle
// matrix (DP vs exhaustive simulation, serial vs parallel, cold vs warm
// vs resumed cache). Exit 0: campaign clean. Exit 1: discrepancies found
// (reproducers written), self-test failure, or a failed report write.
//
//   dpfuzz [--seed N] [--cases N] [--max-gates N] [--max-inputs N]
//          [--jobs N] [--shapes a,b,...] [--no-bridging] [--no-parallel]
//          [--no-shared-forest] [--no-store] [--no-hybrid] [--no-ndetect]
//          [--no-shrink] [--scratch-dir PATH] [--repro-dir PATH]
//          [--metrics-json PATH] [--max-failures N] [--self-test] [--quiet]
//
// --no-shared-forest is the escape hatch for the parallel arm: the
// engine falls back to per-worker good-function builds and the
// sharing-mode A/B comparison is skipped.
//
// --metrics-json writes the dp.fuzzreport.v1 document (validated by
// bench/validate_metrics alongside the dp.metrics.v1 bench documents).
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "verify/fuzzer.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: dpfuzz [--seed N] [--cases N] [--max-gates N]\n"
         "              [--max-inputs N] [--jobs N] [--shapes a,b,...]\n"
         "              [--no-bridging] [--no-parallel]\n"
         "              [--no-shared-forest] [--no-store]\n"
         "              [--no-hybrid] [--no-ndetect] [--no-shrink]\n"
         "              [--scratch-dir PATH]\n"
         "              [--repro-dir PATH] [--metrics-json PATH]\n"
         "              [--max-failures N] [--self-test] [--quiet]\n"
         "shapes: mixed fanout xor reconvergent chain (default: all)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  dp::cli::handle_version_flag(
      std::vector<std::string>(argv + 1, argv + argc), "dpfuzz");
  using dp::cli::parse_count;
  namespace fs = std::filesystem;

  dp::verify::CampaignConfig config;
  config.num_cases = 100;
  config.progress = &std::cout;
  std::string metrics_path, scratch_dir;
  bool self_test = false;

  std::vector<std::string> args(argv + 1, argv + argc);
  auto take_value = [&](std::size_t& i) -> std::string {
    if (i + 1 >= args.size()) {
      std::cerr << "error: " << args[i] << " requires a value\n";
      std::exit(2);
    }
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--seed") {
      config.cases.seed = parse_count(a, take_value(i));
    } else if (a == "--cases") {
      config.num_cases = parse_count(a, take_value(i));
    } else if (a == "--max-gates") {
      config.cases.max_gates = static_cast<int>(parse_count(a, take_value(i)));
    } else if (a == "--max-inputs") {
      config.cases.max_inputs =
          static_cast<int>(parse_count(a, take_value(i)));
    } else if (a == "--jobs") {
      config.oracle.jobs = parse_count(a, take_value(i));
    } else if (a == "--max-failures") {
      config.max_failures = parse_count(a, take_value(i));
    } else if (a == "--shapes") {
      std::stringstream ss(take_value(i));
      std::string token;
      while (std::getline(ss, token, ',')) {
        const auto shape = dp::netlist::circuit_shape_from_string(token);
        if (!shape) {
          std::cerr << "error: unknown shape '" << token << "'\n";
          return usage();
        }
        config.cases.shapes.push_back(*shape);
      }
    } else if (a == "--no-bridging") {
      config.cases.include_bridging = false;
    } else if (a == "--no-parallel") {
      config.oracle.check_parallel = false;
    } else if (a == "--no-shared-forest") {
      config.oracle.shared_forest = false;
      config.oracle.check_shared_forest = false;
    } else if (a == "--no-store") {
      config.oracle.check_store = false;
    } else if (a == "--no-hybrid") {
      config.oracle.check_hybrid = false;
    } else if (a == "--no-ndetect") {
      config.oracle.check_ndetect = false;
    } else if (a == "--no-shrink") {
      config.shrink = false;
    } else if (a == "--scratch-dir") {
      scratch_dir = take_value(i);
    } else if (a == "--repro-dir") {
      config.repro_dir = take_value(i);
    } else if (a == "--metrics-json") {
      metrics_path = take_value(i);
    } else if (a == "--self-test") {
      self_test = true;
    } else if (a == "--quiet") {
      config.progress = nullptr;
    } else {
      std::cerr << "error: unknown argument '" << a << "'\n";
      return usage();
    }
  }
  if (config.cases.max_inputs < config.cases.min_inputs ||
      config.cases.max_gates < config.cases.min_gates) {
    std::cerr << "error: --max-inputs >= " << config.cases.min_inputs
              << " and --max-gates >= " << config.cases.min_gates
              << " required\n";
    return 2;
  }

  // The store arm needs a scratch directory; default to a per-process
  // temp dir (concurrent ctest invocations must not collide) and remove
  // it on the way out unless the user pointed us somewhere.
  bool own_scratch = false;
  if (config.oracle.check_store && scratch_dir.empty()) {
    std::ostringstream os;
    os << fs::temp_directory_path().string() << "/dpfuzz_scratch_"
       << ::getpid();
    scratch_dir = os.str();
    own_scratch = true;
  }
  config.oracle.scratch_dir = scratch_dir;

  int exit_code = 0;
  if (self_test) {
    dp::verify::CampaignConfig st = config;
    st.num_cases = std::min<std::size_t>(st.num_cases, 4);
    if (!dp::verify::run_self_test(st, std::cout)) exit_code = 1;
  }

  dp::verify::CampaignResult result;
  if (exit_code == 0) {
    result = dp::verify::run_campaign(config);
    std::cout << "[dpfuzz] " << result.cases_run << "/" << result.num_cases
              << " cases, " << result.faults_checked << " faults, "
              << result.vectors_checked << " vectors checked, "
              << result.discrepancy_count << " discrepancies ("
              << result.wall_seconds << " s, jobs " << result.jobs
              << ", parallel " << (result.checked_parallel ? "on" : "off")
              << ", store " << (result.checked_store ? "on" : "off")
              << ", hybrid " << (result.checked_hybrid ? "on" : "off")
              << ", ndetect " << (result.checked_ndetect ? "on" : "off")
              << ")\n";
    for (const dp::verify::CaseFailure& f : result.failures) {
      std::cout << "[dpfuzz] FAILURE case " << f.case_index << " seed "
                << std::hex << f.case_seed << std::dec << " shape "
                << f.shape << ": " << f.discrepancies.size()
                << " discrepancies, shrunk to " << f.shrunk_gates
                << " gates";
      if (!f.repro_bench_path.empty()) {
        std::cout << " (repro: " << f.repro_bench_path << ")";
      }
      std::cout << "\n";
      for (const dp::verify::Discrepancy& d : f.discrepancies) {
        std::cout << "[dpfuzz]   " << d.oracle << " @ " << d.subject << ": "
                  << d.detail << "\n";
      }
    }
    if (!result.ok()) exit_code = 1;

    if (!metrics_path.empty()) {
      std::string error;
      if (!dp::verify::write_report(metrics_path, result, &error)) {
        std::cerr << "[dpfuzz] FAILED to write " << metrics_path << ": "
                  << error << "\n";
        exit_code = 1;
      } else {
        std::cout << "[metrics] wrote " << metrics_path << "\n";
      }
    }
  }

  if (own_scratch) {
    std::error_code ec;
    fs::remove_all(scratch_dir, ec);
  }
  return exit_code;
}
