// dpcli -- command-line front end for the Difference Propagation library.
//
//   dpcli list                          built-in benchmark circuits
//   dpcli info <circuit>                netlist statistics + structure
//   dpcli sa <circuit> [--full]         stuck-at testability profile
//   dpcli bf <circuit> [--count N]      bridging-fault study (AND + OR)
//
// sa and bf accept --jobs N to shard the sweep over N worker threads
// (0 = all hardware threads); results are bit-identical to --jobs 1.
//   dpcli fault <circuit> <net> <0|1>   analyze one stem stuck-at fault
//   dpcli syndrome <circuit>            per-net syndromes (signal probs)
//   dpcli atpg <circuit>                compact test set + coverage
//   dpcli diagnose <circuit> <net> <0|1>  locate an injected fault via
//                                         the exact fault dictionary
//   dpcli write <circuit>               emit the netlist as .bench text
//   dpcli dot <circuit> <net>           good-function BDD in dot syntax
//   dpcli hash <circuit>                structural content hash (the
//                                       artifact-cache key component);
//                                       `dpcli <circuit> --hash` works too
//
// sa and bf also accept --cache-dir PATH (reuse cached profiles, resume
// interrupted sweeps) and --resume/--no-resume.
//
// <circuit> is a built-in benchmark name or a path to a .bench file.
#include <iostream>
#include <string>
#include <vector>

#include "analysis/diagnosis.hpp"
#include "cli_common.hpp"
#include "analysis/hybrid.hpp"
#include "analysis/profiles.hpp"
#include "analysis/random_pattern.hpp"
#include "analysis/report.hpp"
#include "bdd/dot_export.hpp"
#include "dp/engine.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"
#include "sim/fault_sim.hpp"
#include "store/hash.hpp"

using namespace dp;

namespace {

int usage() {
  std::cerr
      << "usage: dpcli <command> [args]\n"
         "  list | info C | sa C [--full] | bf C [--count N]\n"
         "  fault C NET 0|1 | diagnose C NET 0|1 | syndrome C | atpg C\n"
         "  write C | dot C NET | hash C (or: C --hash)\n"
         "  (C = benchmark name or .bench path; sa and bf take --jobs N)\n"
         "  sa also takes --hybrid [--prefilter-patterns N]: random-pattern\n"
         "  prefilter first, exact DP only on the undetected remainder\n"
         "  global: --metrics-json PATH (dp.metrics.v1 document), --trace,\n"
         "          --cache-dir PATH (artifact cache), --resume/--no-resume\n";
  return 2;
}

netlist::Circuit load(const std::string& arg) {
  for (const std::string& name : netlist::benchmark_names()) {
    if (name == arg) return netlist::make_benchmark(arg);
  }
  return netlist::read_bench_file(arg);
}

int cmd_list() {
  for (const std::string& name : netlist::benchmark_names()) {
    const netlist::Circuit c = netlist::make_benchmark(name);
    std::cout << name << ": " << c.num_inputs() << " PI, " << c.num_outputs()
              << " PO, " << c.num_gates() << " gates\n";
  }
  return 0;
}

int cmd_info(const netlist::Circuit& c) {
  netlist::Structure st(c);
  std::cout << "circuit " << c.name() << "\n";
  std::cout << "  inputs  : " << c.num_inputs() << "\n";
  std::cout << "  outputs : " << c.num_outputs() << "\n";
  std::cout << "  gates   : " << c.num_gates() << "\n";
  std::cout << "  depth   : " << st.depth() << " levels\n";
  std::size_t fanout_stems = 0, max_fanout = 0;
  for (netlist::NetId id = 0; id < c.num_nets(); ++id) {
    const std::size_t fo = c.fanout_count(id);
    if (fo > 1) ++fanout_stems;
    max_fanout = std::max(max_fanout, fo);
  }
  std::cout << "  fanout stems: " << fanout_stems
            << " (max fanout " << max_fanout << ")\n";
  std::cout << "  checkpoint faults: " << fault::checkpoint_faults(c).size()
            << " (collapsed: " << fault::collapse_checkpoint_faults(c).size()
            << ")\n";
  return 0;
}

int cmd_sa_hybrid(const netlist::Circuit& c, bool full, std::size_t jobs,
                  std::size_t prefilter_patterns, cli::Telemetry& tel) {
  analysis::AnalysisOptions opt;
  opt.collapse = !full;
  opt.jobs = jobs;
  opt.dp.trace = tel.trace();
  analysis::HybridOptions hopt;
  hopt.prefilter_patterns = prefilter_patterns;
  const analysis::HybridProfile p = analysis::analyze_stuck_at_hybrid(c, opt, hopt);
  p.engine_stats.export_metrics(tel.metrics());
  p.export_metrics(tel.metrics());
  std::cout << "hybrid stuck-at analysis of " << c.name() << " ("
            << (full ? "uncollapsed" : "collapsed") << " checkpoints)\n";
  std::cout << "  faults            : " << p.faults.size() << "\n";
  std::cout << "  prefilter resolved: " << p.prefilter_resolved() << " ("
            << analysis::TextTable::num(p.prefilter_fraction()) << " of all, "
            << p.prefilter_patterns << " random patterns)\n";
  std::cout << "  exact DP remainder: " << p.dp_resolved() << " analyzed, "
            << p.redundant_count() << " undetectable\n";
  std::cout << "  phase seconds     : prefilter "
            << analysis::TextTable::num(p.prefilter_seconds) << ", DP "
            << analysis::TextTable::num(p.dp_seconds) << "\n";
  // Always shown (even serial) so refcount underflows can never hide.
  std::cout << "\n" << p.engine_stats;
  return 0;
}

int cmd_sa(const netlist::Circuit& c, bool full, std::size_t jobs,
           cli::Telemetry& tel) {
  analysis::AnalysisOptions opt;
  opt.collapse = !full;
  opt.jobs = jobs;
  opt.dp.trace = tel.trace();
  opt.persistence.store = tel.store();
  opt.persistence.resume = tel.resume();
  const analysis::CircuitProfile p = analysis::analyze_stuck_at(c, opt);
  p.engine_stats.export_metrics(tel.metrics());
  std::cout << "stuck-at profile of " << c.name() << " ("
            << (full ? "uncollapsed" : "collapsed") << " checkpoints)\n";
  std::cout << "  faults       : " << p.faults.size() << "\n";
  std::cout << "  undetectable : " << p.faults.size() - p.detectable_count()
            << "\n";
  std::cout << "  mean det     : "
            << analysis::TextTable::num(p.mean_detectability_detectable())
            << "\n";
  std::cout << "  patterns for 95%/99% random coverage: "
            << analysis::patterns_for_coverage(p, 0.95) << " / "
            << analysis::patterns_for_coverage(p, 0.99) << "\n\n";
  analysis::print_histogram(std::cout, p.detectability_histogram(20),
                            "detectability profile", "detection probability");
  std::cout << "\n";
  analysis::print_series(std::cout, p.detectability_by_po_distance(),
                         "bathtub curve", "max levels to PO",
                         "mean detectability");
  // Always shown (even serial) so refcount underflows can never hide.
  std::cout << "\n" << p.engine_stats;
  return 0;
}

int cmd_bf(const netlist::Circuit& c, std::size_t count, std::size_t jobs,
           cli::Telemetry& tel) {
  analysis::AnalysisOptions opt;
  opt.sampling.target_count = count;
  opt.jobs = jobs;
  opt.dp.trace = tel.trace();
  opt.persistence.store = tel.store();
  opt.persistence.resume = tel.resume();
  analysis::TextTable t({"type", "faults", "detectable", "mean det",
                         "stuck-at-like"});
  analysis::CircuitProfile last;
  for (fault::BridgeType type :
       {fault::BridgeType::And, fault::BridgeType::Or}) {
    analysis::CircuitProfile p = analysis::analyze_bridging(c, type, opt);
    p.engine_stats.export_metrics(tel.metrics());
    t.add_row({fault::to_string(type), std::to_string(p.faults.size()),
               std::to_string(p.detectable_count()),
               analysis::TextTable::num(p.mean_detectability_detectable()),
               analysis::TextTable::num(p.bridge_stuck_at_fraction())});
    last = std::move(p);
  }
  std::cout << "bridging-fault study of " << c.name() << "\n";
  t.print(std::cout);
  // Always shown (even serial) so refcount underflows can never hide.
  std::cout << "\n" << last.engine_stats;
  return 0;
}

int cmd_fault(const netlist::Circuit& c, const std::string& net,
              const std::string& value, cli::Telemetry& tel) {
  if (value != "0" && value != "1") {
    std::cerr << "stuck value must be 0 or 1, got '" << value << "'\n";
    return 2;
  }
  const auto id = c.find_net(net);
  if (!id) {
    std::cerr << "no net named '" << net << "'\n";
    return 1;
  }
  netlist::Structure st(c);
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c);
  core::DifferencePropagator::Options dpo;
  dpo.trace = tel.trace();
  core::DifferencePropagator dp(good, st, dpo);
  const fault::StuckAtFault f{*id, std::nullopt, value == "1"};
  const core::FaultAnalysis a = dp.analyze(f);
  mgr.export_metrics(tel.metrics());
  std::cout << describe(f, c) << ":\n";
  std::cout << "  detectable     : " << (a.detectable ? "yes" : "no") << "\n";
  std::cout << "  detectability  : " << a.detectability << "\n";
  std::cout << "  syndrome bound : " << a.upper_bound << "\n";
  std::cout << "  adherence      : " << a.adherence << "\n";
  std::cout << "  POs fed/obsrvd : " << a.pos_fed << "/" << a.pos_observable
            << "\n";
  std::cout << "  gates eval/skip: " << a.stats.gates_evaluated << "/"
            << a.stats.gates_skipped << "  (ref underflows "
            << mgr.stats().ref_underflows << ")\n";
  if (a.detectable) {
    const auto cube = a.test_set.sat_one();
    std::cout << "  a test vector  : ";
    for (std::size_t i = 0; i < c.num_inputs(); ++i) {
      std::cout << (cube[i] < 0 ? 'x' : static_cast<char>('0' + cube[i]));
    }
    std::cout << "  (PIs in order";
    for (std::size_t i = 0; i < std::min<std::size_t>(c.num_inputs(), 8); ++i) {
      std::cout << " " << c.net_name(c.inputs()[i]);
    }
    std::cout << (c.num_inputs() > 8 ? " ...)\n" : ")\n");
  }
  return 0;
}

int cmd_syndrome(const netlist::Circuit& c, cli::Telemetry& tel) {
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c);
  analysis::TextTable t({"net", "type", "syndrome", "bdd nodes"});
  for (netlist::NetId id : c.topo_order()) {
    t.add_row({c.net_name(id), std::string(netlist::to_string(c.type(id))),
               analysis::TextTable::num(good.syndrome(id)),
               std::to_string(good.at(id).dag_size())});
  }
  t.print(std::cout);
  mgr.export_metrics(tel.metrics());
  return 0;
}

/// Greedy compact vector set covering every detectable collapsed fault
/// (shared by the atpg and diagnose subcommands).
std::vector<std::vector<bool>> build_compact_vectors(
    const netlist::Circuit& c, core::DifferencePropagator& dp,
    std::size_t* redundant_out = nullptr) {
  std::vector<std::vector<bool>> vectors;
  std::size_t redundant = 0;
  for (const auto& f : fault::collapse_checkpoint_faults(c)) {
    const core::FaultAnalysis a = dp.analyze(f);
    if (!a.detectable) {
      ++redundant;
      continue;
    }
    bool covered = false;
    for (const auto& v : vectors) {
      if (a.test_set.eval(v)) {
        covered = true;
        break;
      }
    }
    if (covered) continue;
    const auto cube = a.test_set.sat_one();
    std::vector<bool> v(c.num_inputs(), false);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = cube[i] == 1;
    vectors.push_back(std::move(v));
  }
  if (redundant_out) *redundant_out = redundant;
  return vectors;
}

int cmd_atpg(const netlist::Circuit& c, cli::Telemetry& tel) {
  netlist::Structure st(c);
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c);
  core::DifferencePropagator::Options dpo;
  dpo.trace = tel.trace();
  core::DifferencePropagator dp(good, st, dpo);
  sim::FaultSimulator fs(c);

  const auto faults = fault::collapse_checkpoint_faults(c);
  std::size_t redundant = 0;
  const auto vectors = build_compact_vectors(c, dp, &redundant);
  mgr.export_metrics(tel.metrics());
  const auto cov = fs.grade_vectors(faults, vectors);
  std::cout << "# " << c.name() << ": " << vectors.size() << " vectors, "
            << cov.detected << "/" << cov.total << " faults detected, "
            << redundant << " redundant\n";
  for (const auto& v : vectors) {
    for (bool b : v) std::cout << (b ? '1' : '0');
    std::cout << "\n";
  }
  return 0;
}

int cmd_diagnose(const netlist::Circuit& c, const std::string& net,
                 const std::string& value, cli::Telemetry& tel) {
  if (value != "0" && value != "1") {
    std::cerr << "stuck value must be 0 or 1, got '" << value << "'\n";
    return 2;
  }
  const auto id = c.find_net(net);
  if (!id) {
    std::cerr << "no net named '" << net << "'\n";
    return 1;
  }

  netlist::Structure st(c);
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c);
  core::DifferencePropagator::Options dpo;
  dpo.trace = tel.trace();
  core::DifferencePropagator dp(good, st, dpo);
  sim::FaultSimulator fs(c);

  // Dictionary over a compact ATPG vector set.
  const auto faults = fault::collapse_checkpoint_faults(c);
  const auto vectors = build_compact_vectors(c, dp);
  const analysis::FaultDictionary dict(dp, faults, vectors);

  // "Defective unit": simulate the requested fault and collect its
  // failing-PO signatures on the same vectors.
  const fault::StuckAtFault injected{*id, std::nullopt, value == "1"};
  std::vector<analysis::PoSignature> observed;
  for (const auto& v : vectors) {
    std::vector<sim::Word> goodv(c.num_nets(), 0), badv(c.num_nets(), 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      goodv[c.inputs()[i]] = badv[c.inputs()[i]] = v[i] ? ~sim::Word{0} : 0;
    }
    fs.good_values(goodv);
    fs.faulty_values(badv, injected);
    analysis::PoSignature sig = 0;
    for (std::size_t p = 0; p < c.num_outputs(); ++p) {
      if ((goodv[c.outputs()[p]] ^ badv[c.outputs()[p]]) & 1) {
        sig |= analysis::PoSignature{1} << p;
      }
    }
    observed.push_back(sig);
  }

  const auto ranked = dict.diagnose(observed);
  std::cout << "injected " << describe(injected, c) << "; dictionary over "
            << vectors.size() << " vectors, resolution "
            << analysis::TextTable::num(dict.resolution()) << "\n";
  std::cout << "top candidates (distance 0 = perfect match):\n";
  for (std::size_t k = 0; k < std::min<std::size_t>(5, ranked.size()); ++k) {
    const auto& cand = ranked[k];
    std::cout << "  " << describe(dict.fault_at(cand.fault_index), c)
              << "  distance " << cand.distance << "\n";
  }
  mgr.export_metrics(tel.metrics());
  return 0;
}

int cmd_dot(const netlist::Circuit& c, const std::string& net) {
  const auto id = c.find_net(net);
  if (!id) {
    std::cerr << "no net named '" << net << "'\n";
    return 1;
  }
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c);
  write_dot(std::cout, good.at(*id), [&](bdd::Var v) {
    return c.net_name(c.inputs()[v]);
  });
  return 0;
}

}  // namespace

namespace {

int cmd_hash(const netlist::Circuit& c) {
  std::cout << store::circuit_content_hash(c) << "\n";
  return 0;
}

struct HybridFlags {
  bool enabled = false;
  std::size_t prefilter_patterns = 4096;
};

int dispatch(const std::vector<std::string>& args, std::size_t jobs,
             const HybridFlags& hybrid, cli::Telemetry& tel) {
  const std::string cmd = args[0];
  if (cmd == "list") return cmd_list();
  // `dpcli <circuit> --hash`: flag form of the hash command.
  if (args.size() == 2 && args[1] == "--hash") {
    return cmd_hash(load(args[0]));
  }
  if (args.size() < 2) return usage();
  const netlist::Circuit circuit = load(args[1]);

  if (cmd == "hash") return cmd_hash(circuit);

  if (cmd == "info") return cmd_info(circuit);
  if (cmd == "sa") {
    const bool full = args.size() > 2 && args[2] == "--full";
    if (hybrid.enabled) {
      return cmd_sa_hybrid(circuit, full, jobs, hybrid.prefilter_patterns,
                           tel);
    }
    return cmd_sa(circuit, full, jobs, tel);
  }
  if (cmd == "bf") {
    std::size_t count = 1000;
    if (args.size() > 3 && args[2] == "--count") {
      count = cli::parse_count("--count", args[3]);
    }
    return cmd_bf(circuit, count, jobs, tel);
  }
  if (cmd == "fault" && args.size() == 4) {
    return cmd_fault(circuit, args[2], args[3], tel);
  }
  if (cmd == "diagnose" && args.size() == 4) {
    return cmd_diagnose(circuit, args[2], args[3], tel);
  }
  if (cmd == "syndrome") return cmd_syndrome(circuit, tel);
  if (cmd == "atpg") return cmd_atpg(circuit, tel);
  if (cmd == "write") {
    netlist::write_bench(std::cout, circuit);
    return 0;
  }
  if (cmd == "dot" && args.size() == 3) return cmd_dot(circuit, args[2]);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  cli::handle_version_flag(args, "dpcli");
  if (args.empty()) return usage();

  cli::Telemetry tel;
  tel.strip_flags(args);
  if (args.empty()) return usage();

  // `--jobs N` may appear anywhere after the command; strip it here so
  // the per-command positional parsing below stays simple. A trailing
  // `--jobs` with no value is a hard error, never a silent default.
  std::size_t jobs = 1;
  HybridFlags hybrid;
  for (std::size_t i = 1; i < args.size();) {
    if (args[i] == "--hybrid") {
      hybrid.enabled = true;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    if (args[i] == "--jobs" || args[i] == "--prefilter-patterns") {
      if (i + 1 >= args.size()) {
        std::cerr << "error: " << args[i] << " requires a value\n";
        return 2;
      }
      const std::size_t value = cli::parse_count(args[i], args[i + 1]);
      if (args[i] == "--jobs") {
        jobs = value;
      } else {
        hybrid.prefilter_patterns = value;
      }
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      continue;
    }
    ++i;
  }

  int rc;
  try {
    rc = dispatch(args, jobs, hybrid, tel);
  } catch (const std::exception& e) {
    std::cerr << "dpcli: " << e.what() << "\n";
    return 1;
  }
  if (!tel.write("dpcli", args[0]) && rc == 0) rc = 1;
  return rc;
}
