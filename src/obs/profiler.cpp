#include "obs/profiler.hpp"

#include <algorithm>

#ifdef __linux__
#include <unistd.h>

#include <cstdio>
#endif

namespace dp::obs {

SourceRegistry& SourceRegistry::instance() {
  static SourceRegistry registry;
  return registry;
}

void SourceRegistry::add(const ProfileSource* source) {
  std::lock_guard<std::mutex> lock(mutex_);
  sources_.push_back(source);
}

void SourceRegistry::remove(const ProfileSource* source) {
  std::lock_guard<std::mutex> lock(mutex_);
  sources_.erase(std::remove(sources_.begin(), sources_.end(), source),
                 sources_.end());
}

void SourceRegistry::collect(
    std::vector<std::pair<std::string, double>>& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const ProfileSource* s : sources_) s->profile_sample(out);
}

std::size_t SourceRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sources_.size();
}

SamplingProfiler::SamplingProfiler(std::chrono::milliseconds period)
    : period_(std::max(std::chrono::milliseconds(1), period)),
      epoch_(std::chrono::steady_clock::now()) {}

SamplingProfiler::~SamplingProfiler() { stop(); }

void SamplingProfiler::start() {
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void SamplingProfiler::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(cv_mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_ = false;
}

void SamplingProfiler::run() {
  std::unique_lock<std::mutex> lock(cv_mutex_);
  for (;;) {
    if (cv_.wait_for(lock, period_, [this] { return stop_requested_; })) {
      // One final sample so a short phase right before stop() still
      // shows up in the series.
      lock.unlock();
      sample_now();
      return;
    }
    lock.unlock();
    sample_now();
    lock.lock();
  }
}

void SamplingProfiler::sample_now() {
  std::vector<std::pair<std::string, double>> values;
  SourceRegistry::instance().collect(values);

  // Aggregate gauge: total live BDD nodes across all managers, so the
  // timeline shows overall node pressure even when per-manager series
  // come and go with worker lifetimes.
  double total_live = 0.0;
  bool any_live = false;
  for (const auto& [name, v] : values) {
    const std::string suffix = ".live_nodes";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      total_live += v;
      any_live = true;
    }
  }
  if (any_live) values.emplace_back("bdd.total_live_nodes", total_live);
  const double rss = rss_megabytes();
  if (rss >= 0.0) values.emplace_back("process.rss_mb", rss);

  const std::uint64_t t_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());

  std::lock_guard<std::mutex> lock(series_mutex_);
  ++ticks_;
  for (auto& [name, v] : values) {
    auto it = series_.find(name);
    if (it == series_.end()) {
      if (series_.size() >= kMaxSeries) {
        ++dropped_samples_;
        continue;
      }
      it = series_.emplace(name, decltype(series_)::mapped_type{}).first;
    }
    if (it->second.size() >= kMaxSamplesPerSeries) {
      ++dropped_samples_;
      continue;
    }
    it->second.emplace_back(t_us, v);
  }
}

JsonValue SamplingProfiler::to_json() const {
  std::lock_guard<std::mutex> lock(series_mutex_);
  JsonValue root = JsonValue::object();
  root["period_ms"] = period_.count();
  root["ticks"] = ticks_;
  root["dropped_samples"] = dropped_samples_;
  JsonValue& series = root["series"];
  series = JsonValue::array();
  for (const auto& [name, samples] : series_) {
    JsonValue s = JsonValue::object();
    s["name"] = name;
    JsonValue& arr = s["samples"];
    arr = JsonValue::array();
    for (const auto& [t_us, v] : samples) {
      JsonValue pair = JsonValue::array();
      pair.push_back(static_cast<double>(t_us));
      pair.push_back(v);
      arr.push_back(std::move(pair));
    }
    series.push_back(std::move(s));
  }
  return root;
}

double SamplingProfiler::rss_megabytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return -1.0;
  long long pages_total = 0, pages_resident = 0;
  const int matched =
      std::fscanf(f, "%lld %lld", &pages_total, &pages_resident);
  std::fclose(f);
  if (matched != 2) return -1.0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<double>(pages_resident) * static_cast<double>(page) /
         (1024.0 * 1024.0);
#else
  return -1.0;
#endif
}

}  // namespace dp::obs
