#include "obs/json.hpp"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace dp::obs {

JsonValue::JsonValue(unsigned long v) : kind_(Kind::Int) {
  if (v > static_cast<unsigned long>(std::numeric_limits<long long>::max())) {
    kind_ = Kind::Double;
    double_ = static_cast<double>(v);
  } else {
    int_ = static_cast<long long>(v);
  }
}

JsonValue::JsonValue(unsigned long long v) : kind_(Kind::Int) {
  if (v > static_cast<unsigned long long>(
              std::numeric_limits<long long>::max())) {
    kind_ = Kind::Double;
    double_ = static_cast<double>(v);
  } else {
    int_ = static_cast<long long>(v);
  }
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) throw JsonError("not a bool");
  return bool_;
}

long long JsonValue::as_int() const {
  if (kind_ == Kind::Int) return int_;
  if (kind_ == Kind::Double) return static_cast<long long>(double_);
  throw JsonError("not a number");
}

double JsonValue::as_double() const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  if (kind_ == Kind::Double) return double_;
  throw JsonError("not a number");
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) throw JsonError("not a string");
  return string_;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  if (kind_ != Kind::Array) throw JsonError("push_back on non-array");
  array_.push_back(std::move(v));
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::Array) return array_.size();
  if (kind_ == Kind::Object) return object_.size();
  throw JsonError("size() on non-container");
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (kind_ != Kind::Array) throw JsonError("at(index) on non-array");
  if (i >= array_.size()) throw JsonError("array index out of range");
  return array_[i];
}

JsonValue& JsonValue::operator[](std::string_view key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) throw JsonError("operator[] on non-object");
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(std::string(key), JsonValue());
  return object_.back().second;
}

bool JsonValue::contains(std::string_view key) const {
  return find(key) != nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (const JsonValue* v = find(key)) return *v;
  throw JsonError("missing key '" + std::string(key) + "'");
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::Object) throw JsonError("members() on non-object");
  return object_;
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

namespace {

void write_double(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan literals; null is the conventional stand-in.
    os << "null";
    return;
  }
  char buf[32];
  const auto [end, ec] =
      std::to_chars(buf, buf + sizeof buf, d);  // shortest round-trip form
  os.write(buf, end - buf);
}

void write_newline_indent(std::ostream& os, int indent, int depth) {
  if (indent <= 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void JsonValue::write_rec(std::ostream& os, int indent, int depth) const {
  switch (kind_) {
    case Kind::Null: os << "null"; break;
    case Kind::Bool: os << (bool_ ? "true" : "false"); break;
    case Kind::Int: os << int_; break;
    case Kind::Double: write_double(os, double_); break;
    case Kind::String: write_json_string(os, string_); break;
    case Kind::Array: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) os << ',';
        write_newline_indent(os, indent, depth + 1);
        array_[i].write_rec(os, indent, depth + 1);
      }
      write_newline_indent(os, indent, depth);
      os << ']';
      break;
    }
    case Kind::Object: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) os << ',';
        write_newline_indent(os, indent, depth + 1);
        write_json_string(os, object_[i].first);
        os << (indent > 0 ? ": " : ":");
        object_[i].second.write_rec(os, indent, depth + 1);
      }
      write_newline_indent(os, indent, depth);
      os << '}';
      break;
    }
  }
}

void JsonValue::write(std::ostream& os, int indent) const {
  write_rec(os, indent, 0);
}

std::string JsonValue::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

// ---- parser ------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  /// Containers may nest at most this deep. The parser recurses once per
  /// level, so without a bound a hostile document ("[[[[..." from a
  /// network peer -- the serve protocol feeds frames straight in here)
  /// turns into stack exhaustion instead of a clean JsonError.
  static constexpr int kMaxDepth = 192;

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) +
                    ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case 'N':
      case 'I':
      case 'i':
        // "NaN" / "Infinity" / "inf": some printf-style writers emit
        // these, but they are not JSON; name them in the error instead of
        // the generic bad-number path ("-Infinity" still lands there).
        fail("NaN/Infinity literals are not valid JSON");
      case '-':
        if (pos_ + 1 < text_.size() &&
            (text_[pos_ + 1] == 'I' || text_[pos_ + 1] == 'i')) {
          fail("NaN/Infinity literals are not valid JSON");
        }
        return parse_number();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  /// RAII depth tick for the two recursive productions.
  struct DepthGuard {
    explicit DepthGuard(Parser& p) : p_(p) {
      if (++p_.depth_ > kMaxDepth) p_.fail("containers nested too deeply");
    }
    ~DepthGuard() { --p_.depth_; }
    Parser& p_;
  };

  JsonValue parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writer; decode them permissively as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("bad number");
    const char* tb = tok.data();
    const char* te = tok.data() + tok.size();
    if (integral) {
      long long v = 0;
      const auto [p, ec] = std::from_chars(tb, te, v);
      if (ec == std::errc() && p == te) return JsonValue(v);
      // fall through to double on overflow
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(tb, te, d);
    if (ec != std::errc() || p != te) fail("bad number");
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool write_json_file(const std::string& path, const JsonValue& value,
                     std::string* error) {
  std::ofstream os(path);
  if (!os) {
    if (error) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  value.write(os, 2);
  os << '\n';
  os.flush();
  if (!os) {
    if (error) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

bool atomic_write_file(const std::string& path, std::string_view bytes,
                       std::string* error) {
  // Unique per process AND per call, so two concurrent writers of the
  // same destination each stage their own temp file; the final renames
  // race benignly (one complete file wins, never a torn mix).
  static std::atomic<std::uint64_t> serial{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(serial.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      if (error) *error = "cannot open '" + tmp + "' for writing";
      return false;
    }
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) {
      if (error) *error = "write to '" + tmp + "' failed";
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = "rename '" + tmp + "' -> '" + path + "' failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool write_json_file_atomic(const std::string& path, const JsonValue& value,
                            std::string* error) {
  std::ostringstream os;
  value.write(os, 2);
  os << '\n';
  return atomic_write_file(path, os.str(), error);
}

JsonValue read_json_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw JsonError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << is.rdbuf();
  return JsonValue::parse(buf.str());
}

}  // namespace dp::obs
