// Structured telemetry for the BDD manager and the DP engines: a
// registry of named instruments plus RAII phase timers, serializable to
// JSON (obs/json.hpp).
//
// Instrument taxonomy -- chosen so serial and parallel sweeps can be
// compared field by field:
//
//   Counter    monotonic uint64 event count. Everything exported as a
//              counter is DETERMINISTIC: identical for --jobs 1 and
//              --jobs N runs of the same workload (faults analyzed,
//              gates evaluated/skipped, ...).
//   Gauge      double level/snapshot (live nodes, unique-table load,
//              cache hit rate). May legitimately differ run to run or
//              with the worker count -- never asserted deterministic.
//   Timer      phase wall-clock accumulator: count / total / min / max
//              seconds, fed by ScopedTimer.
//   Histogram  bucketed distribution of double samples (upper-bound
//              buckets plus overflow), with count / sum / min / max.
//
// Thread safety: instrument handles returned by the registry are stable
// for the registry's lifetime, and every mutation (Counter::add,
// Gauge::set, Timer::record, Histogram::observe) is safe to call
// concurrently. Lookups by name take the registry mutex; hot paths
// should hold the returned reference instead of re-looking-up.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/span.hpp"

namespace dp::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (high-water-mark semantics).
  void set_max(double v);
  /// Atomic add (accumulating gauges, e.g. summed live nodes).
  void add(double v);
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Wall-clock accumulator for one named phase.
class Timer {
 public:
  void record(double seconds);

  struct Snapshot {
    std::uint64_t count = 0;
    double total = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  Snapshot snapshot() const;
  /// Folds another timer's aggregate in (registry merge).
  void merge(const Snapshot& s);

 private:
  mutable std::mutex mutex_;
  Snapshot s_;
};

/// Bucketed distribution. Bucket i counts samples <= bounds[i]; one
/// implicit overflow bucket counts the rest. Raw samples are retained
/// (up to kMaxSamples) alongside the buckets so quantiles are EXACT and
/// merge exactly: merging concatenates the sample sets, so p50/p90/p99
/// of a merged registry equal the quantiles over the union of samples,
/// not an interpolation over coarse buckets.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  /// Raw samples kept per histogram; beyond this the buckets/sum/extrema
  /// stay exact but quantiles are computed over the first kMaxSamples.
  static constexpr std::size_t kMaxSamples = 1u << 20;

  struct Snapshot {
    std::vector<double> bounds;        ///< upper bounds, ascending
    std::vector<std::uint64_t> counts; ///< bounds.size() + 1 entries
    std::vector<double> samples;       ///< raw samples (insertion order)
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    /// Exact q-quantile (0 <= q <= 1) over the retained samples by the
    /// nearest-rank rule; 0.0 when no samples were retained.
    double quantile(double q) const;
  };
  Snapshot snapshot() const;
  /// Bucket-wise fold of another histogram with identical bounds
  /// (samples concatenate); throws std::invalid_argument on a bounds
  /// mismatch.
  void merge(const Snapshot& s);

 private:
  mutable std::mutex mutex_;
  Snapshot s_;
};

/// RAII phase timer: records the elapsed wall clock into a Timer when it
/// goes out of scope (or at an explicit stop()). Optionally carries a
/// ScopedSpan so one `phase(...)` call site feeds both the timer
/// aggregate and the span timeline; the span stops with the timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(&timer), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(Timer& timer, ScopedSpan&& span)
      : timer_(&timer),
        span_(std::move(span)),
        start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(ScopedTimer&& other) noexcept
      : timer_(other.timer_),
        span_(std::move(other.span_)),
        start_(other.start_) {
    other.timer_ = nullptr;
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ScopedTimer& operator=(ScopedTimer&&) = delete;
  ~ScopedTimer() { stop(); }

  /// Records now and disarms; returns the elapsed seconds (0 if already
  /// stopped).
  double stop();

 private:
  Timer* timer_;
  ScopedSpan span_;
  std::chrono::steady_clock::time_point start_;
};

/// Named instrument store. Instruments are created on first use and live
/// as long as the registry; names are exported in sorted order so the
/// JSON document is deterministic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Timer& timer(const std::string& name);
  /// `bounds` is honored on first creation only; later calls return the
  /// existing instrument.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = default_bounds());

  /// RAII timer feeding timer(name).
  ScopedTimer scoped_timer(const std::string& name) {
    return ScopedTimer(timer(name));
  }

  /// Deterministic export: sections in fixed order, names sorted.
  /// Shape: {"counters": {name: int}, "gauges": {name: num},
  ///         "timers": {name: {count,total_s,min_s,max_s}},
  ///         "histograms": {name: {count,sum,min,max,p50,p90,p99,
  ///                                buckets:[{le,count}]}}
  JsonValue to_json() const;

  /// Fold another registry in: counters add, timers merge, gauges take
  /// the maximum (snapshot-style gauges keep their high-water mark),
  /// histograms merge bucket-wise when the bounds agree (and are
  /// replaced otherwise).
  void merge_from(const MetricsRegistry& other);

  static std::vector<double> default_bounds();

 private:
  mutable std::mutex mutex_;
  // std::map: stable addresses for handed-out references AND sorted
  // iteration for deterministic JSON output.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Timer> timers_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dp::obs
