#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace dp::obs {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::Fault: return "fault";
    case TraceKind::Phase: return "phase";
    case TraceKind::Mark: return "mark";
  }
  return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)),
      start_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

void TraceBuffer::record(TraceKind kind, std::string label, std::int64_t a,
                         std::int64_t b, std::int64_t c, std::int64_t d) {
  TraceEvent ev;
  ev.t = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
             .count();
  ev.kind = kind;
  ev.label = std::move(label);
  ev.a = a;
  ev.b = b;
  ev.c = c;
  ev.d = d;

  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = std::find(thread_ids_.begin(), thread_ids_.end(), self);
  if (it == thread_ids_.end()) {
    thread_ids_.push_back(self);
    it = thread_ids_.end() - 1;
  }
  ev.thread = static_cast<std::uint32_t>(it - thread_ids_.begin());

  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[next_] = std::move(ev);
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // The ring is full: next_ points at the oldest event.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  // Timestamps are taken BEFORE the recording lock, so concurrent
  // recorders can land in the ring slightly out of time order; the
  // snapshot guarantees chronological output regardless (stable, so
  // same-timestamp events keep their insertion order).
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t < b.t;
                   });
  return out;
}

std::uint64_t TraceBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ - std::min<std::uint64_t>(total_, ring_.size());
}

JsonValue TraceBuffer::to_json() const {
  const std::vector<TraceEvent> events = snapshot();
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    total = total_;
  }
  JsonValue root = JsonValue::object();
  root["capacity"] = capacity_;
  root["recorded"] = total;
  root["dropped"] = total - events.size();
  JsonValue& arr = root["events"];
  arr = JsonValue::array();
  for (const TraceEvent& ev : events) {
    JsonValue e = JsonValue::object();
    e["t"] = ev.t;
    e["thread"] = ev.thread;
    e["kind"] = to_string(ev.kind);
    e["label"] = ev.label;
    e["a"] = ev.a;
    e["b"] = ev.b;
    e["c"] = ev.c;
    e["d"] = ev.d;
    arr.push_back(std::move(e));
  }
  return root;
}

}  // namespace dp::obs
