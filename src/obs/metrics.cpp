#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace dp::obs {

void Gauge::set_max(double v) {
  double cur = v_.load(std::memory_order_relaxed);
  while (cur < v &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Gauge::add(double v) {
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void Timer::record(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (s_.count == 0) {
    s_.min = s_.max = seconds;
  } else {
    s_.min = std::min(s_.min, seconds);
    s_.max = std::max(s_.max, seconds);
  }
  ++s_.count;
  s_.total += seconds;
}

Timer::Snapshot Timer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return s_;
}

void Timer::merge(const Snapshot& s) {
  if (s.count == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (s_.count == 0) {
    s_.min = s.min;
    s_.max = s.max;
  } else {
    s_.min = std::min(s_.min, s.min);
    s_.max = std::max(s_.max, s.max);
  }
  s_.count += s.count;
  s_.total += s.total;
}

Histogram::Histogram(std::vector<double> bounds) {
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  if (bounds.empty()) {
    throw std::invalid_argument("Histogram needs at least one bucket bound");
  }
  s_.bounds = std::move(bounds);
  s_.counts.assign(s_.bounds.size() + 1, 0);
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::lower_bound(s_.bounds.begin(), s_.bounds.end(), v);
  ++s_.counts[static_cast<std::size_t>(it - s_.bounds.begin())];
  if (s_.samples.size() < kMaxSamples) s_.samples.push_back(v);
  if (s_.count == 0) {
    s_.min = s_.max = v;
  } else {
    s_.min = std::min(s_.min, v);
    s_.max = std::max(s_.max, v);
  }
  ++s_.count;
  s_.sum += v;
}

double Histogram::Snapshot::quantile(double q) const {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest sample with cumulative fraction >= q.
  std::vector<double> sorted = samples;
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank > 0) --rank;
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(rank),
                   sorted.end());
  return sorted[rank];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return s_;
}

void Histogram::merge(const Snapshot& s) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (s.bounds != s_.bounds) {
    throw std::invalid_argument("Histogram::merge: bucket bounds differ");
  }
  for (std::size_t i = 0; i < s.counts.size(); ++i) {
    s_.counts[i] += s.counts[i];
  }
  const std::size_t room =
      kMaxSamples - std::min(kMaxSamples, s_.samples.size());
  s_.samples.insert(
      s_.samples.end(), s.samples.begin(),
      s.samples.begin() +
          static_cast<std::ptrdiff_t>(std::min(room, s.samples.size())));
  if (s.count > 0) {
    if (s_.count == 0) {
      s_.min = s.min;
      s_.max = s.max;
    } else {
      s_.min = std::min(s_.min, s.min);
      s_.max = std::max(s_.max, s.max);
    }
    s_.count += s.count;
    s_.sum += s.sum;
  }
}

double ScopedTimer::stop() {
  span_.stop();
  if (!timer_) return 0.0;
  const double dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  timer_->record(dt);
  timer_ = nullptr;
  return dt;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

Timer& MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return timers_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(name, std::move(bounds)).first->second;
}

std::vector<double> MetricsRegistry::default_bounds() {
  // Decade-ish spread suited to both seconds and small counts.
  return {0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0};
}

JsonValue MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue root = JsonValue::object();

  JsonValue& counters = root["counters"];
  counters = JsonValue::object();
  for (const auto& [name, c] : counters_) counters[name] = c.value();

  JsonValue& gauges = root["gauges"];
  gauges = JsonValue::object();
  for (const auto& [name, g] : gauges_) gauges[name] = g.value();

  JsonValue& timers = root["timers"];
  timers = JsonValue::object();
  for (const auto& [name, t] : timers_) {
    const Timer::Snapshot s = t.snapshot();
    JsonValue& tv = timers[name];
    tv["count"] = s.count;
    tv["total_s"] = s.total;
    tv["min_s"] = s.min;
    tv["max_s"] = s.max;
  }

  JsonValue& hists = root["histograms"];
  hists = JsonValue::object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h.snapshot();
    JsonValue& hv = hists[name];
    hv["count"] = s.count;
    hv["sum"] = s.sum;
    hv["min"] = s.min;
    hv["max"] = s.max;
    hv["p50"] = s.quantile(0.50);
    hv["p90"] = s.quantile(0.90);
    hv["p99"] = s.quantile(0.99);
    JsonValue& buckets = hv["buckets"];
    buckets = JsonValue::array();
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      JsonValue b = JsonValue::object();
      if (i < s.bounds.size()) {
        b["le"] = s.bounds[i];
      } else {
        b["le"] = "inf";
      }
      b["count"] = s.counts[i];
      buckets.push_back(std::move(b));
    }
  }
  return root;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Snapshot `other` first so the two registry locks never nest.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Timer::Snapshot> timers;
  std::map<std::string, Histogram::Snapshot> hists;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    for (const auto& [name, c] : other.counters_) counters[name] = c.value();
    for (const auto& [name, g] : other.gauges_) gauges[name] = g.value();
    for (const auto& [name, t] : other.timers_) timers[name] = t.snapshot();
    for (const auto& [name, h] : other.histograms_) {
      hists[name] = h.snapshot();
    }
  }

  for (const auto& [name, v] : counters) counter(name).add(v);
  for (const auto& [name, v] : gauges) gauge(name).set_max(v);
  for (const auto& [name, s] : timers) timer(name).merge(s);
  for (const auto& [name, s] : hists) {
    Histogram* h = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = histograms_.find(name);
      if (it == histograms_.end() ||
          it->second.snapshot().bounds != s.bounds) {
        histograms_.erase(name);
        it = histograms_.try_emplace(name, s.bounds).first;
      }
      h = &it->second;
    }
    h->merge(s);
  }
}

}  // namespace dp::obs
