// Sampling profiler: a background thread that periodically polls every
// registered ProfileSource (each bdd::Manager self-registers) plus the
// process RSS, and accumulates timestamped gauge series for the
// dp.trace.v1 "profile" section (and its Chrome counter-track mirror).
//
// Thread-safety contract: SourceRegistry::collect() holds the registry
// mutex for the whole poll, and sources unregister in their destructor
// (taking the same mutex), so a source can never be destroyed mid-
// sample. The values a source reports are plain reads of word-sized
// counters that the owning thread may be mutating concurrently -- a
// deliberately benign race: a sample may be one update stale, which is
// irrelevant for a 10ms-resolution gauge series and never dereferences
// freed memory. Do not report values whose reads require consistency
// across multiple fields.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace dp::obs {

/// Something the profiler can poll. Implementations append (series name,
/// value) pairs; names should be stable across calls so samples line up
/// into series.
class ProfileSource {
 public:
  virtual ~ProfileSource() = default;
  virtual void profile_sample(
      std::vector<std::pair<std::string, double>>& out) const = 0;
};

/// Process-wide registry of live ProfileSources. add() in the source's
/// constructor, remove() FIRST THING in its destructor (before any state
/// the sample reads is torn down).
class SourceRegistry {
 public:
  static SourceRegistry& instance();

  void add(const ProfileSource* source);
  void remove(const ProfileSource* source);
  /// Polls every registered source under the registry lock.
  void collect(std::vector<std::pair<std::string, double>>& out) const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<const ProfileSource*> sources_;
};

/// Periodic sampler thread. start() spawns it, stop() (or the
/// destructor) joins it; to_json() exports the accumulated series as
///   {"period_ms":P,"ticks":N,"series":[{"name":S,
///     "samples":[[t_us,value],...]},...]}.
/// Series and sample counts are capped so a runaway run cannot grow the
/// document without bound; truncation is reported via "dropped_samples".
class SamplingProfiler {
 public:
  explicit SamplingProfiler(
      std::chrono::milliseconds period = std::chrono::milliseconds(10));
  ~SamplingProfiler();
  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

  /// Takes one sample immediately on the calling thread (also used by
  /// the sampler thread; public so tests need not race the clock).
  void sample_now();

  JsonValue to_json() const;

  /// Resident set size in MiB from /proc/self/statm; -1.0 when the
  /// platform does not expose it.
  static double rss_megabytes();

  static constexpr std::size_t kMaxSeries = 256;
  static constexpr std::size_t kMaxSamplesPerSeries = 1u << 14;

 private:
  void run();

  const std::chrono::milliseconds period_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex series_mutex_;
  std::map<std::string, std::vector<std::pair<std::uint64_t, double>>>
      series_;
  std::uint64_t ticks_ = 0;
  std::uint64_t dropped_samples_ = 0;

  std::mutex cv_mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace dp::obs
