#include "obs/span.hpp"

#include <algorithm>

namespace dp::obs {

namespace {

std::atomic<SpanCollector*> g_current{nullptr};
std::atomic<std::uint64_t> g_serial{0};

/// Per-thread cache of "my ring in the current collector". Keyed by the
/// collector's serial (not its address) so a collector destroyed and
/// another constructed at the same address can never alias a stale ring.
struct RingCache {
  std::uint64_t serial = 0;
  void* ring = nullptr;
};
thread_local RingCache t_ring_cache;

/// Per-thread stack of open span ids, for automatic parenting. Also
/// keyed by collector serial: ids from a previous collector must not
/// leak in as parents of the next one's spans.
struct OpenStack {
  std::uint64_t serial = 0;
  std::vector<std::uint64_t> ids;
};
thread_local OpenStack t_open;

std::vector<std::uint64_t>& open_stack_for(std::uint64_t serial) {
  if (t_open.serial != serial) {
    t_open.serial = serial;
    t_open.ids.clear();
  }
  return t_open.ids;
}

}  // namespace

SpanCollector::SpanCollector(std::size_t per_thread_capacity)
    : capacity_(std::max<std::size_t>(1, per_thread_capacity)),
      serial_(g_serial.fetch_add(1, std::memory_order_relaxed) + 1),
      epoch_(std::chrono::steady_clock::now()) {}

SpanCollector::~SpanCollector() {
  SpanCollector* self = this;
  g_current.compare_exchange_strong(self, nullptr,
                                    std::memory_order_relaxed);
}

SpanCollector* SpanCollector::current() {
  return g_current.load(std::memory_order_relaxed);
}

void SpanCollector::install(SpanCollector* collector) {
  g_current.store(collector, std::memory_order_relaxed);
}

std::uint64_t SpanCollector::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

double SpanCollector::elapsed_seconds() const {
  return static_cast<double>(now_ns()) * 1e-9;
}

SpanCollector::Ring& SpanCollector::ring_for_this_thread() {
  if (t_ring_cache.serial == serial_) {
    return *static_cast<Ring*>(t_ring_cache.ring);
  }
  std::lock_guard<std::mutex> lock(rings_mutex_);
  auto ring = std::make_unique<Ring>();
  ring->tid = static_cast<std::uint32_t>(rings_.size());
  ring->events.reserve(std::min<std::size_t>(capacity_, 1024));
  rings_.push_back(std::move(ring));
  Ring& r = *rings_.back();
  t_ring_cache.serial = serial_;
  t_ring_cache.ring = &r;
  return r;
}

void SpanCollector::record(SpanRecord&& rec) {
  Ring& r = ring_for_this_thread();
  rec.tid = r.tid;
  std::lock_guard<std::mutex> lock(r.mutex);
  if (r.events.size() < capacity_) {
    r.events.push_back(std::move(rec));
  } else {
    r.events[r.next] = std::move(rec);
    r.next = (r.next + 1) % capacity_;
  }
  ++r.total;
}

SpanCollector::Snapshot SpanCollector::snapshot() const {
  std::vector<const Ring*> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }

  Snapshot out;
  out.threads = rings.size();
  for (const Ring* r : rings) {
    std::lock_guard<std::mutex> lock(r->mutex);
    out.recorded += r->total;
    out.dropped += r->total - std::min<std::uint64_t>(r->total,
                                                      r->events.size());
    if (r->events.size() < capacity_) {
      out.spans.insert(out.spans.end(), r->events.begin(), r->events.end());
    } else {
      // Full ring: next points at the oldest slot.
      out.spans.insert(out.spans.end(),
                       r->events.begin() +
                           static_cast<std::ptrdiff_t>(r->next),
                       r->events.end());
      out.spans.insert(out.spans.end(), r->events.begin(),
                       r->events.begin() +
                           static_cast<std::ptrdiff_t>(r->next));
    }
  }
  // Chronological merge across threads. stable_sort keeps same-timestamp
  // spans in ring order, so the output is deterministic for a fixed set
  // of recorded spans.
  std::stable_sort(out.spans.begin(), out.spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

namespace {

void append_args(JsonValue& args, const std::vector<SpanAttr>& attrs) {
  for (const SpanAttr& a : attrs) {
    switch (a.kind) {
      case SpanAttr::Kind::Int: args[a.key] = a.i; break;
      case SpanAttr::Kind::Float: args[a.key] = a.f; break;
      case SpanAttr::Kind::Text: args[a.key] = a.text; break;
    }
  }
}

JsonValue span_section(const SpanCollector::Snapshot& snap,
                       std::size_t capacity) {
  JsonValue root = JsonValue::object();
  root["capacity"] = capacity;
  root["threads"] = snap.threads;
  root["recorded"] = snap.recorded;
  root["dropped"] = snap.dropped;
  JsonValue& arr = root["events"];
  arr = JsonValue::array();
  for (const SpanRecord& s : snap.spans) {
    JsonValue e = JsonValue::object();
    e["id"] = s.id;
    e["parent"] = s.parent;
    e["tid"] = s.tid;
    e["name"] = s.name;
    e["ts_us"] = static_cast<double>(s.start_ns) * 1e-3;
    e["dur_us"] = static_cast<double>(s.dur_ns) * 1e-3;
    if (!s.attrs.empty()) {
      JsonValue& args = e["args"];
      args = JsonValue::object();
      append_args(args, s.attrs);
    }
    arr.push_back(std::move(e));
  }
  return root;
}

}  // namespace

JsonValue SpanCollector::to_json() const {
  return span_section(snapshot(), capacity_);
}

ScopedSpan::ScopedSpan(SpanCollector* collector, std::string_view name) {
  open(collector, name, 0, /*infer_parent=*/true);
}

ScopedSpan::ScopedSpan(SpanCollector* collector, std::string_view name,
                       std::uint64_t parent_id) {
  open(collector, name, parent_id, /*infer_parent=*/false);
}

void ScopedSpan::open(SpanCollector* collector, std::string_view name,
                      std::uint64_t parent_id, bool infer_parent) {
  if (!collector) return;
  collector_ = collector;
  rec_.id = collector->next_id();
  rec_.name.assign(name);
  std::vector<std::uint64_t>& stack = open_stack_for(collector->serial());
  rec_.parent = infer_parent ? (stack.empty() ? 0 : stack.back()) : parent_id;
  stack.push_back(rec_.id);
  rec_.start_ns = collector->now_ns();
}

ScopedSpan::ScopedSpan(ScopedSpan&& other) noexcept
    : collector_(other.collector_), rec_(std::move(other.rec_)) {
  other.collector_ = nullptr;
  other.rec_ = SpanRecord{};  // id() == 0 on the moved-from span
}

ScopedSpan& ScopedSpan::attr_int(std::string_view key, std::int64_t v) {
  if (collector_) {
    SpanAttr a;
    a.key.assign(key);
    a.kind = SpanAttr::Kind::Int;
    a.i = v;
    rec_.attrs.push_back(std::move(a));
  }
  return *this;
}

ScopedSpan& ScopedSpan::attr(std::string_view key, double v) {
  if (collector_) {
    SpanAttr a;
    a.key.assign(key);
    a.kind = SpanAttr::Kind::Float;
    a.f = v;
    rec_.attrs.push_back(std::move(a));
  }
  return *this;
}

ScopedSpan& ScopedSpan::attr(std::string_view key, std::string_view v) {
  if (collector_) {
    SpanAttr a;
    a.key.assign(key);
    a.kind = SpanAttr::Kind::Text;
    a.text.assign(v);
    rec_.attrs.push_back(std::move(a));
  }
  return *this;
}

void ScopedSpan::stop() {
  if (!collector_) return;
  rec_.dur_ns = collector_->now_ns() - rec_.start_ns;
  // Erase our id from this thread's open stack (search from the top: the
  // common case is perfectly nested scopes, where it IS the top; a span
  // moved within the thread and stopped out of order is still found).
  std::vector<std::uint64_t>& stack = open_stack_for(collector_->serial());
  for (std::size_t i = stack.size(); i-- > 0;) {
    if (stack[i] == rec_.id) {
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  SpanCollector* c = collector_;
  collector_ = nullptr;
  c->record(std::move(rec_));
}

JsonValue make_trace_document(const std::string& id_key, const std::string& id,
                              std::size_t jobs, const SpanCollector& spans,
                              JsonValue profile, double wall_seconds) {
  const SpanCollector::Snapshot snap = spans.snapshot();

  JsonValue doc = JsonValue::object();
  doc["schema"] = "dp.trace.v1";
  doc[id_key] = id;
  doc["jobs"] = jobs;
  doc["wall_seconds"] = wall_seconds;
  doc["spans"] = span_section(snap, spans.per_thread_capacity());
  if (!profile.is_null()) doc["profile"] = std::move(profile);

  // Chrome trace-event mirror: "M" thread-name metadata, one "X"
  // complete event per span, and "C" counter events for every profiler
  // series. Viewers ignore the other top-level keys.
  JsonValue& events = doc["traceEvents"];
  events = JsonValue::array();
  for (std::size_t t = 0; t < snap.threads; ++t) {
    JsonValue m = JsonValue::object();
    m["name"] = "thread_name";
    m["ph"] = "M";
    m["pid"] = 1;
    m["tid"] = t;
    JsonValue& args = m["args"];
    args["name"] = t == 0 ? std::string("main") : "t" + std::to_string(t);
    events.push_back(std::move(m));
  }
  for (const SpanRecord& s : snap.spans) {
    JsonValue e = JsonValue::object();
    e["name"] = s.name;
    e["cat"] = "span";
    e["ph"] = "X";
    e["ts"] = static_cast<double>(s.start_ns) * 1e-3;
    e["dur"] = static_cast<double>(s.dur_ns) * 1e-3;
    e["pid"] = 1;
    e["tid"] = s.tid;
    JsonValue& args = e["args"];
    args = JsonValue::object();
    args["id"] = s.id;
    args["parent"] = s.parent;
    append_args(args, s.attrs);
    events.push_back(std::move(e));
  }
  if (const JsonValue* prof = doc.find("profile")) {
    if (const JsonValue* series = prof->find("series")) {
      for (std::size_t i = 0; series->is_array() && i < series->size(); ++i) {
        const JsonValue& s = series->at(i);
        const JsonValue* name = s.find("name");
        const JsonValue* samples = s.find("samples");
        if (!name || !samples || !samples->is_array()) continue;
        for (std::size_t k = 0; k < samples->size(); ++k) {
          const JsonValue& sample = samples->at(k);
          if (!sample.is_array() || sample.size() != 2) continue;
          JsonValue e = JsonValue::object();
          e["name"] = *name;
          e["ph"] = "C";
          e["ts"] = sample.at(std::size_t{0}).as_double();
          e["pid"] = 1;
          JsonValue& args = e["args"];
          args["value"] = sample.at(std::size_t{1}).as_double();
          events.push_back(std::move(e));
        }
      }
    }
  }
  return doc;
}

}  // namespace dp::obs
