// Event-trace ring buffer: a bounded, thread-safe log of structured
// events (per-fault propagation summaries, phase marks) that costs a
// mutexed struct copy per event and never grows. When the buffer wraps,
// the oldest events are dropped and counted, so a --trace run over a
// million faults keeps the tail -- usually the interesting part -- and
// reports exactly how much history it shed.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace dp::obs {

/// Event kinds and the meaning of the generic payload slots a..d.
/// The schema is documented in DESIGN.md §9; summary:
///   Fault  one DP fault analysis. label = fault site description;
///          a = gates evaluated, b = gates skipped (selective trace),
///          c = difference-seed sites, d = POs where observable.
///   Phase  a phase boundary. label = phase name; a = 0 begin / 1 end.
///   Mark   free-form annotation from a tool; payload caller-defined.
enum class TraceKind : std::uint8_t { Fault = 0, Phase = 1, Mark = 2 };

const char* to_string(TraceKind kind);

struct TraceEvent {
  double t = 0.0;             ///< seconds since the buffer was created
  std::uint32_t thread = 0;   ///< dense per-buffer thread id
  TraceKind kind = TraceKind::Mark;
  std::string label;
  std::int64_t a = 0, b = 0, c = 0, d = 0;
};

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 4096);
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void record(TraceKind kind, std::string label, std::int64_t a = 0,
              std::int64_t b = 0, std::int64_t c = 0, std::int64_t d = 0);

  /// Events in chronological order (at most capacity() of them; the
  /// oldest are the ones a wrap sheds). Guaranteed sorted by t even when
  /// concurrent recorders interleaved out of insertion order.
  std::vector<TraceEvent> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  /// Total events ever recorded, including dropped ones.
  std::uint64_t total_recorded() const;
  std::uint64_t dropped() const;

  /// {"capacity":N,"recorded":N,"dropped":N,"events":[{t,thread,kind,
  ///  label,a,b,c,d}...]} -- events oldest-first.
  JsonValue to_json() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;           ///< slot the next event lands in
  std::uint64_t total_ = 0;
  std::vector<std::thread::id> thread_ids_;  ///< index = dense id
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dp::obs
