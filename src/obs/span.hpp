// Hierarchical span tracing: structured wall-clock intervals with parent
// links, thread ids and key=value attributes, recorded into per-thread
// rings and merged chronologically at export.
//
// Design goals, in order:
//   1. Near-zero cost when disabled. Instrumented code asks
//      SpanCollector::current() -- one relaxed atomic load -- and a
//      ScopedSpan built from a null collector does nothing at all, so
//      the hot engines stay un-plumbed: no options threading, no #ifdef.
//   2. No cross-thread contention when enabled. Every recording thread
//      owns a private ring; the ring's mutex is only ever contended by
//      the exporter at snapshot time, so workers never serialize on each
//      other (lock-free in effect on the hot path).
//   3. Bounded memory. Rings are fixed-capacity; when one wraps, the
//      oldest spans on that thread are dropped and counted, mirroring
//      TraceBuffer's drop accounting.
//
// Parenting: each thread keeps a stack of open span ids, so nested
// ScopedSpans parent automatically. A span that logically belongs under
// a parent on ANOTHER thread (a worker under its sweep) takes the parent
// id explicitly; its own children then nest under it via the local
// stack. Moving a ScopedSpan across threads is not supported (the open
// stack is thread-local); moving within a thread is.
//
// Export: dp.trace.v1 (make_trace_document) embeds the merged spans plus
// an optional profiler section, and mirrors every span into a Chrome
// trace-event array ("traceEvents", ph "X"/"C"/"M") so the same file
// loads directly in about:tracing and ui.perfetto.dev.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/json.hpp"

namespace dp::obs {

/// One key=value span annotation (small closed variant -- spans are
/// recorded on hot paths, JsonValue would be needless weight there).
struct SpanAttr {
  enum class Kind : std::uint8_t { Int, Float, Text };
  std::string key;
  Kind kind = Kind::Int;
  std::int64_t i = 0;
  double f = 0.0;
  std::string text;
};

/// One finished span. Timestamps are nanoseconds since the collector's
/// epoch (its construction time).
struct SpanRecord {
  std::uint64_t id = 0;      ///< unique per collector, 1-based
  std::uint64_t parent = 0;  ///< 0 = root
  std::uint32_t tid = 0;     ///< dense per-collector thread id
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::string name;
  std::vector<SpanAttr> attrs;
};

/// Owns the per-thread rings and the id allocator. Install one as the
/// process-wide current() collector to turn tracing on; instrumentation
/// sites pick it up with no plumbing.
class SpanCollector {
 public:
  /// `per_thread_capacity` bounds each thread's ring (spans, not bytes).
  explicit SpanCollector(std::size_t per_thread_capacity = 1u << 16);
  ~SpanCollector();
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// The installed collector, or nullptr when tracing is off. One
  /// relaxed atomic load -- cheap enough for per-fault hot paths.
  static SpanCollector* current();
  /// Installs `collector` as current() (nullptr turns tracing off). The
  /// destructor uninstalls itself automatically if still current.
  static void install(SpanCollector* collector);

  std::uint64_t next_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Nanoseconds since this collector's epoch.
  std::uint64_t now_ns() const;
  double elapsed_seconds() const;

  /// Appends one finished span to the calling thread's ring (assigning
  /// rec.tid). Thread-safe; uncontended except against snapshot().
  void record(SpanRecord&& rec);

  struct Snapshot {
    std::vector<SpanRecord> spans;  ///< merged, start_ns ascending
    std::uint64_t recorded = 0;     ///< spans ever recorded (incl. dropped)
    std::uint64_t dropped = 0;      ///< lost to ring wrap, summed over rings
    std::size_t threads = 0;        ///< rings (== distinct recording threads)
  };
  Snapshot snapshot() const;

  std::size_t per_thread_capacity() const { return capacity_; }
  /// Unique per collector instance; guards thread-local caches against
  /// address reuse after a collector is destroyed.
  std::uint64_t serial() const { return serial_; }

  /// {"capacity":N,"threads":N,"recorded":N,"dropped":N,"events":[
  ///   {"id","parent","tid","name","ts_us","dur_us","args":{...}}...]}
  /// -- events chronological by start time.
  JsonValue to_json() const;

 private:
  friend class ScopedSpan;

  struct Ring {
    std::uint32_t tid = 0;
    mutable std::mutex mutex;
    std::vector<SpanRecord> events;
    std::size_t next = 0;  ///< slot the next span lands in once full
    std::uint64_t total = 0;
  };

  Ring& ring_for_this_thread();

  const std::size_t capacity_;
  const std::uint64_t serial_;
  std::atomic<std::uint64_t> next_id_{0};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex rings_mutex_;  ///< guards the ring list, not the rings
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII span: opens on construction, records into the collector when it
/// goes out of scope (or at an explicit stop()). Move-only; a moved-from
/// span is disarmed, and stop() is idempotent -- mirroring ScopedTimer.
/// Built from a null collector it is a no-op with id() == 0.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  /// Parent inferred from this thread's innermost open span.
  ScopedSpan(SpanCollector* collector, std::string_view name);
  /// Explicit parent id, for spans whose logical parent lives on another
  /// thread (a worker span under the main thread's sweep span).
  ScopedSpan(SpanCollector* collector, std::string_view name,
             std::uint64_t parent_id);
  ScopedSpan(ScopedSpan&& other) noexcept;
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan& operator=(ScopedSpan&&) = delete;
  ~ScopedSpan() { stop(); }

  /// True when a collector is attached (attrs will actually be kept).
  bool enabled() const { return collector_ != nullptr; }
  /// 0 when disabled or moved-from.
  std::uint64_t id() const { return rec_.id; }

  ScopedSpan& attr(std::string_view key, double v);
  ScopedSpan& attr(std::string_view key, std::string_view v);
  ScopedSpan& attr(std::string_view key, const char* v) {
    return attr(key, std::string_view(v));
  }
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T>>>
  ScopedSpan& attr(std::string_view key, T v) {
    return attr_int(key, static_cast<std::int64_t>(v));
  }

  /// Records now and disarms (no-op when disabled or already stopped).
  void stop();

 private:
  ScopedSpan& attr_int(std::string_view key, std::int64_t v);
  void open(SpanCollector* collector, std::string_view name,
            std::uint64_t parent_id, bool infer_parent);

  SpanCollector* collector_ = nullptr;
  SpanRecord rec_;
};

/// Assembles the dp.trace.v1 document: identity, the merged span section,
/// an optional sampling-profiler section (pass a null JsonValue to omit),
/// and a Chrome trace-event mirror under "traceEvents" -- extra top-level
/// keys are ignored by Perfetto/about:tracing, so one file serves both
/// the dptrace tooling and interactive timeline viewers.
JsonValue make_trace_document(const std::string& id_key, const std::string& id,
                              std::size_t jobs, const SpanCollector& spans,
                              JsonValue profile, double wall_seconds);

}  // namespace dp::obs
