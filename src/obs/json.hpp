// Minimal JSON document model for the observability layer: an ordered
// value tree, a writer with full string escaping, and a strict
// recursive-descent parser. Hand-rolled on purpose -- the repo takes no
// third-party dependencies, and the metrics exporter plus the bench_smoke
// validator need both directions (write and parse) of the same dialect.
#pragma once

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dp::obs {

/// Thrown by JsonValue::parse on malformed input (message carries the
/// byte offset) and by the typed accessors on kind mismatches.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One JSON value. Objects preserve insertion order so exported metric
/// documents are deterministic and diffable run to run.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default;                      // null
  JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  JsonValue(int v) : kind_(Kind::Int), int_(v) {}
  JsonValue(long v) : kind_(Kind::Int), int_(v) {}
  JsonValue(long long v) : kind_(Kind::Int), int_(v) {}
  JsonValue(unsigned v) : kind_(Kind::Int), int_(static_cast<long long>(v)) {}
  JsonValue(unsigned long v);
  JsonValue(unsigned long long v);
  JsonValue(double v) : kind_(Kind::Double), double_(v) {}
  JsonValue(const char* s) : kind_(Kind::String), string_(s) {}
  JsonValue(std::string s) : kind_(Kind::String), string_(std::move(s)) {}

  static JsonValue array() { return JsonValue(Kind::Array); }
  static JsonValue object() { return JsonValue(Kind::Object); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_number() const {
    return kind_ == Kind::Int || kind_ == Kind::Double;
  }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_string() const { return kind_ == Kind::String; }

  bool as_bool() const;
  /// Int values convert exactly; Double values truncate.
  long long as_int() const;
  double as_double() const;
  const std::string& as_string() const;

  // ---- array interface -------------------------------------------------
  void push_back(JsonValue v);
  std::size_t size() const;  ///< element count (array) or member count (object)
  const JsonValue& at(std::size_t i) const;

  // ---- object interface ------------------------------------------------
  /// Insert-or-fetch a member; turns a Null value into an Object first.
  JsonValue& operator[](std::string_view key);
  bool contains(std::string_view key) const;
  /// Throws JsonError when the key is absent.
  const JsonValue& at(std::string_view key) const;
  /// nullptr when absent (no throw).
  const JsonValue* find(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  // ---- serialization ---------------------------------------------------
  /// Pretty-prints with `indent` spaces per level; indent 0 = compact.
  void write(std::ostream& os, int indent = 2) const;
  std::string dump(int indent = 2) const;

  /// Strict parser: exactly one JSON value plus trailing whitespace.
  /// Rejects NaN/Infinity literals (not JSON) and containers nested
  /// deeper than 192 levels (the recursion bound that keeps a hostile
  /// "[[[[..." document -- e.g. a malicious serve-protocol frame -- from
  /// exhausting the stack).
  static JsonValue parse(std::string_view text);

 private:
  explicit JsonValue(Kind k) : kind_(k) {}
  void write_rec(std::ostream& os, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  long long int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Writes `"..."` with JSON escaping to the stream.
void write_json_string(std::ostream& os, std::string_view s);

/// Serializes `value` to `path`; returns false (and fills `error`) on I/O
/// failure instead of throwing, so CLI exit paths stay simple.
bool write_json_file(const std::string& path, const JsonValue& value,
                     std::string* error = nullptr);

/// Writes `bytes` to `path` crash-safely: the content goes to a unique
/// temp file in the same directory (so the rename cannot cross
/// filesystems) and is moved into place with one atomic rename. Readers
/// -- and concurrent writers of the same path -- therefore never observe
/// a torn file; the worst outcome of a crash is a leftover *.tmp.* file.
bool atomic_write_file(const std::string& path, std::string_view bytes,
                       std::string* error = nullptr);

/// write_json_file via the atomic temp-file + rename path above. Used by
/// every writer whose output may be read by another process (the bench
/// metrics documents, the artifact store, sweep checkpoints).
bool write_json_file_atomic(const std::string& path, const JsonValue& value,
                            std::string* error = nullptr);

/// Reads and parses `path`; throws JsonError on I/O or parse failure.
JsonValue read_json_file(const std::string& path);

}  // namespace dp::obs
