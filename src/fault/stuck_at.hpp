// Single stuck-at fault model: checkpoint faults and equivalence collapsing.
//
// Paper §2.1: the stuck-at fault sets are checkpoint faults (primary inputs
// plus fanout branches, Bossen & Hong 1971), further reduced by fault
// equivalence at gate inputs (McCluskey & Clegg 1971) so each equivalence
// class contributes one representative.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace dp::fault {

using netlist::Circuit;
using netlist::NetId;
using netlist::PinRef;

struct StuckAtFault {
  /// The faulted line: the stem of `net`, or -- when `branch` is set -- the
  /// fanout branch of `net` entering gate `branch->gate` at `branch->pin`.
  NetId net = netlist::kInvalidNet;
  std::optional<PinRef> branch;
  bool stuck_value = false;

  bool is_branch() const { return branch.has_value(); }

  friend bool operator==(const StuckAtFault&, const StuckAtFault&) = default;
};

std::string describe(const StuckAtFault& fault, const Circuit& circuit);

/// Both polarities on every PI stem and on every fanout branch (branches
/// exist where the source net drives more than one pin).
std::vector<StuckAtFault> checkpoint_faults(const Circuit& circuit);

/// Checkpoint set reduced by gate-input equivalence: all inputs of an
/// AND/NAND stuck at 0 are one class, all inputs of an OR/NOR stuck at 1
/// are one class (the lowest-numbered pin represents the class). Faults on
/// XOR/XNOR inputs and non-controlling values collapse nothing.
std::vector<StuckAtFault> collapse_checkpoint_faults(const Circuit& circuit);

/// Convenience: every class removed by collapsing, keyed by representative
/// (used by tests to verify detection-equivalence of collapsed faults).
struct EquivalenceClass {
  StuckAtFault representative;
  std::vector<StuckAtFault> collapsed;  ///< removed members (not the rep)
};
std::vector<EquivalenceClass> checkpoint_equivalence_classes(
    const Circuit& circuit);

}  // namespace dp::fault
