// Two-wire bridging fault model (paper §2.2).
//
// AND bridges drive both wires to a & b (zero-dominant / wired-AND logic);
// OR bridges drive both to a | b (one-dominant / wired-OR). Only
// non-feedback bridges (no structural path between the two wires) are
// modeled, and trivially undetectable bridges -- e.g. an AND bridge between
// two inputs whose only fanout is one common AND gate -- are screened out
// during enumeration, exactly as in the paper's fault-set generation.
#pragma once

#include <string>
#include <vector>

#include "netlist/circuit.hpp"
#include "netlist/structure.hpp"

namespace dp::fault {

using netlist::Circuit;
using netlist::NetId;
using netlist::Structure;

enum class BridgeType : std::uint8_t { And, Or };

inline const char* to_string(BridgeType t) {
  return t == BridgeType::And ? "AND" : "OR";
}

struct BridgingFault {
  NetId a = netlist::kInvalidNet;
  NetId b = netlist::kInvalidNet;
  BridgeType type = BridgeType::And;

  friend bool operator==(const BridgingFault&, const BridgingFault&) = default;
};

std::string describe(const BridgingFault& fault, const Circuit& circuit);

/// True if bridging `a` and `b` would close a structural loop.
bool is_feedback_bridge(const Structure& structure, NetId a, NetId b);

/// True for the screened "trivially undetectable" pattern: both wires feed
/// exactly one pin, of the same gate, and the gate's base type absorbs the
/// bridge (AND/NAND for AND bridges, OR/NOR for OR bridges).
bool is_trivially_undetectable(const Circuit& circuit,
                               const BridgingFault& fault);

/// All potentially detectable non-feedback bridging faults of one type:
/// distinct non-constant net pairs (a < b), non-feedback, not trivially
/// undetectable.
std::vector<BridgingFault> enumerate_nfbfs(const Circuit& circuit,
                                           const Structure& structure,
                                           BridgeType type);

}  // namespace dp::fault
