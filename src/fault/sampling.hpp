// Distance-weighted random sampling of bridging faults (paper §2.2).
//
// Layout information for the benchmarks is unavailable, so the paper
// estimates each gate's position (netlist/layout.hpp), normalizes each
// candidate bridge's wire distance z to the maximum over all potentially
// detectable NFBFs, and samples assuming z is exponentially distributed
// with density f(z) = (1/theta) exp(-z/theta). Theta is tuned so fault
// sets come out around 1000 faults; here the caller passes the target
// count directly and theta shapes the distance bias.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/bridging.hpp"
#include "netlist/layout.hpp"

namespace dp::fault {

struct SamplingOptions {
  std::size_t target_count = 1000;  ///< "reasonable sizes (~1000 faults)"
  double theta = 0.1;               ///< exponential scale on z in [0, 1]
  std::uint64_t seed = 1990;        ///< reproducible draws
};

/// Weighted sampling without replacement from `candidates`, with weight
/// exp(-z / theta) where z is the normalized estimated wire distance.
/// Returns min(target_count, candidates.size()) faults. Deterministic for
/// a fixed seed (Efraimidis-Spirakis exponential race).
std::vector<BridgingFault> sample_bridging_faults(
    const Circuit& circuit, const netlist::LayoutEstimate& layout,
    const std::vector<BridgingFault>& candidates,
    const SamplingOptions& options);

/// Convenience: enumerate + (if larger than the target) sample. The paper
/// uses the entire NFBF set for the four smallest circuits and sampled
/// sets for C432 and larger; this helper reproduces that policy.
std::vector<BridgingFault> nfbf_fault_set(const Circuit& circuit,
                                          const Structure& structure,
                                          const netlist::LayoutEstimate& layout,
                                          BridgeType type,
                                          const SamplingOptions& options);

}  // namespace dp::fault
