#include "fault/multiple.hpp"

#include <algorithm>
#include <random>
#include <set>

namespace dp::fault {

std::string describe(const MultipleStuckAtFault& fault,
                     const Circuit& circuit) {
  std::string s = "{";
  for (std::size_t i = 0; i < fault.components.size(); ++i) {
    if (i) s += ", ";
    s += describe(fault.components[i], circuit);
  }
  return s + "}";
}

bool same_line(const StuckAtFault& a, const StuckAtFault& b) {
  return a.net == b.net && a.branch == b.branch;
}

std::vector<MultipleStuckAtFault> sample_multiple_faults(
    const Circuit& circuit, std::size_t multiplicity, std::size_t count,
    std::uint64_t seed) {
  if (multiplicity < 2) {
    throw netlist::NetlistError(
        "sample_multiple_faults: multiplicity must be >= 2");
  }
  const std::vector<StuckAtFault> universe = checkpoint_faults(circuit);
  if (universe.size() < multiplicity) {
    throw netlist::NetlistError(
        "sample_multiple_faults: circuit has too few checkpoint lines");
  }

  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, universe.size() - 1);
  std::set<std::vector<std::size_t>> seen;
  std::vector<MultipleStuckAtFault> result;
  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 200 + 1000;

  while (result.size() < count && ++attempts < max_attempts) {
    std::vector<std::size_t> indices;
    MultipleStuckAtFault mf;
    bool ok = true;
    while (mf.components.size() < multiplicity) {
      const std::size_t idx = pick(rng);
      const StuckAtFault& cand = universe[idx];
      bool clash = false;
      for (const StuckAtFault& existing : mf.components) {
        if (same_line(existing, cand)) clash = true;
      }
      if (clash) {
        ok = false;
        break;
      }
      indices.push_back(idx);
      mf.components.push_back(cand);
    }
    if (!ok) continue;
    std::sort(indices.begin(), indices.end());
    if (!seen.insert(indices).second) continue;  // duplicate combination
    result.push_back(std::move(mf));
  }
  return result;
}

}  // namespace dp::fault
