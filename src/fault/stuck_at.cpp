#include "fault/stuck_at.hpp"

#include <map>

namespace dp::fault {

using netlist::GateType;

std::string describe(const StuckAtFault& fault, const Circuit& circuit) {
  std::string s = circuit.net_name(fault.net);
  if (fault.branch) {
    s += "->" + circuit.net_name(fault.branch->gate) + "[" +
         std::to_string(fault.branch->pin) + "]";
  }
  s += fault.stuck_value ? " sa1" : " sa0";
  return s;
}

std::vector<StuckAtFault> checkpoint_faults(const Circuit& circuit) {
  std::vector<StuckAtFault> faults;
  auto add_both = [&](NetId net, std::optional<PinRef> branch) {
    faults.push_back({net, branch, false});
    faults.push_back({net, branch, true});
  };

  for (NetId pi : circuit.inputs()) {
    add_both(pi, std::nullopt);
  }
  for (NetId net = 0; net < circuit.num_nets(); ++net) {
    if (netlist::is_constant(circuit.type(net))) continue;
    const auto& fo = circuit.fanouts(net);
    if (fo.size() <= 1) continue;
    for (const PinRef& pin : fo) {
      add_both(net, pin);
    }
  }
  return faults;
}

namespace {

/// The pin a checkpoint fault sits on, if it is unambiguously on one pin:
/// branch faults are on their pin; a stem fault whose net drives exactly
/// one pin is effectively on that pin. Multi-fanout stems return nullopt.
std::optional<PinRef> effective_pin(const Circuit& circuit,
                                    const StuckAtFault& fault) {
  if (fault.branch) return fault.branch;
  const auto& fo = circuit.fanouts(fault.net);
  if (fo.size() == 1) return fo.front();
  return std::nullopt;
}

/// Controlling value of a gate type, if any: 0 for AND/NAND, 1 for OR/NOR.
std::optional<bool> controlling_value(GateType t) {
  switch (netlist::base_of(t)) {
    case GateType::And: return false;
    case GateType::Or: return true;
    default: return std::nullopt;
  }
}

}  // namespace

std::vector<EquivalenceClass> checkpoint_equivalence_classes(
    const Circuit& circuit) {
  // Group checkpoint faults by (gate fed, stuck value) when the value is
  // the controlling value of that gate; each group is one equivalence
  // class. Everything else is a singleton class.
  std::vector<StuckAtFault> all = checkpoint_faults(circuit);
  std::map<std::pair<NetId, bool>, std::vector<StuckAtFault>> groups;
  std::vector<EquivalenceClass> classes;

  for (const StuckAtFault& f : all) {
    std::optional<PinRef> pin = effective_pin(circuit, f);
    if (pin) {
      auto cv = controlling_value(circuit.type(pin->gate));
      if (cv && *cv == f.stuck_value) {
        groups[{pin->gate, f.stuck_value}].push_back(f);
        continue;
      }
    }
    classes.push_back({f, {}});
  }

  for (auto& [key, members] : groups) {
    EquivalenceClass cls;
    cls.representative = members.front();
    cls.collapsed.assign(members.begin() + 1, members.end());
    classes.push_back(std::move(cls));
  }
  return classes;
}

std::vector<StuckAtFault> collapse_checkpoint_faults(const Circuit& circuit) {
  std::vector<StuckAtFault> result;
  for (const EquivalenceClass& cls : checkpoint_equivalence_classes(circuit)) {
    result.push_back(cls.representative);
  }
  return result;
}

}  // namespace dp::fault
