// Multiple stuck-at faults (paper §3: "since the relationships above are
// derived independently of the fault type, ANY fault whose effects are
// restricted to the logical domain can be addressed by Difference
// Propagation"). This module supplies the fault type and the sampled
// populations used to revisit Hughes & McCluskey's question [2] -- how
// well single-stuck-at test sets cover multiple stuck-at faults -- with
// exact functional analysis instead of simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/stuck_at.hpp"

namespace dp::fault {

struct MultipleStuckAtFault {
  /// Simultaneous components; sites must be pairwise distinct lines
  /// (a stem and one of its branches are distinct lines).
  std::vector<StuckAtFault> components;

  friend bool operator==(const MultipleStuckAtFault&,
                         const MultipleStuckAtFault&) = default;
};

std::string describe(const MultipleStuckAtFault& fault,
                     const Circuit& circuit);

/// True if two single faults occupy the same line (same stem, or same
/// branch pin) -- such pairs are not a well-formed multiple fault.
bool same_line(const StuckAtFault& a, const StuckAtFault& b);

/// Uniformly samples up to `count` distinct multiple faults of the given
/// `multiplicity` from the circuit's checkpoint-fault universe.
/// Deterministic in `seed`. May return fewer than `count` when the
/// universe is too small to yield that many distinct line-disjoint
/// combinations (callers should use the returned size, not `count`).
std::vector<MultipleStuckAtFault> sample_multiple_faults(
    const Circuit& circuit, std::size_t multiplicity, std::size_t count,
    std::uint64_t seed);

}  // namespace dp::fault
