#include "fault/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

namespace dp::fault {

std::vector<BridgingFault> sample_bridging_faults(
    const Circuit& circuit, const netlist::LayoutEstimate& layout,
    const std::vector<BridgingFault>& candidates,
    const SamplingOptions& options) {
  (void)circuit;
  if (candidates.size() <= options.target_count) return candidates;
  if (options.theta <= 0.0) {
    throw netlist::NetlistError("sample_bridging_faults: theta must be > 0");
  }

  // Normalize distances to the maximum over all candidates.
  std::vector<double> dist(candidates.size());
  double max_dist = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    dist[i] = layout.distance(candidates[i].a, candidates[i].b);
    max_dist = std::max(max_dist, dist[i]);
  }
  if (max_dist == 0.0) max_dist = 1.0;

  // Efraimidis-Spirakis: draw key_i = -log(u_i) / w_i and keep the
  // target_count smallest keys; equivalent to sequential weighted sampling
  // without replacement with weights w_i.
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> uni(
      std::numeric_limits<double>::min(), 1.0);
  std::vector<std::pair<double, std::size_t>> keyed(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double z = dist[i] / max_dist;
    const double w = std::exp(-z / options.theta);
    keyed[i] = {-std::log(uni(rng)) / w, i};
  }
  std::nth_element(keyed.begin(), keyed.begin() + options.target_count,
                   keyed.end());
  keyed.resize(options.target_count);
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  std::vector<BridgingFault> sample;
  sample.reserve(keyed.size());
  for (const auto& [key, idx] : keyed) sample.push_back(candidates[idx]);
  return sample;
}

std::vector<BridgingFault> nfbf_fault_set(const Circuit& circuit,
                                          const Structure& structure,
                                          const netlist::LayoutEstimate& layout,
                                          BridgeType type,
                                          const SamplingOptions& options) {
  std::vector<BridgingFault> all = enumerate_nfbfs(circuit, structure, type);
  return sample_bridging_faults(circuit, layout, all, options);
}

}  // namespace dp::fault
