#include "fault/bridging.hpp"

namespace dp::fault {

using netlist::GateType;

std::string describe(const BridgingFault& fault, const Circuit& circuit) {
  return std::string(to_string(fault.type)) + "(" +
         circuit.net_name(fault.a) + ", " + circuit.net_name(fault.b) + ")";
}

bool is_feedback_bridge(const Structure& structure, NetId a, NetId b) {
  // reaches() is reflexive, but a bridge of a net with itself is not a
  // fault at all; callers never pass a == b.
  return structure.reaches(a, b) || structure.reaches(b, a);
}

bool is_trivially_undetectable(const Circuit& circuit,
                               const BridgingFault& fault) {
  const auto& fa = circuit.fanouts(fault.a);
  const auto& fb = circuit.fanouts(fault.b);
  if (fa.size() != 1 || fb.size() != 1) return false;
  if (fa.front().gate != fb.front().gate) return false;
  const GateType base = netlist::base_of(circuit.type(fa.front().gate));
  if (fault.type == BridgeType::And) return base == GateType::And;
  return base == GateType::Or;
}

std::vector<BridgingFault> enumerate_nfbfs(const Circuit& circuit,
                                           const Structure& structure,
                                           BridgeType type) {
  std::vector<BridgingFault> faults;
  const NetId n = static_cast<NetId>(circuit.num_nets());
  for (NetId a = 0; a < n; ++a) {
    if (netlist::is_constant(circuit.type(a))) continue;
    for (NetId b = a + 1; b < n; ++b) {
      if (netlist::is_constant(circuit.type(b))) continue;
      if (is_feedback_bridge(structure, a, b)) continue;
      BridgingFault f{a, b, type};
      if (is_trivially_undetectable(circuit, f)) continue;
      faults.push_back(f);
    }
  }
  return faults;
}

}  // namespace dp::fault
