// Per-circuit fault-population studies: run Difference Propagation over a
// whole fault set and keep the scalar metrics the paper's figures plot.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/histogram.hpp"
#include "dp/engine.hpp"
#include "dp/parallel_engine.hpp"
#include "fault/sampling.hpp"
#include "fault/stuck_at.hpp"
#include "store/artifact_store.hpp"

namespace dp::analysis {

/// Scalar per-fault record (the test-set BDD itself is dropped so large
/// populations do not pin manager nodes).
struct FaultRecord {
  bool detectable = false;
  double detectability = 0.0;
  double upper_bound = 0.0;
  double adherence = 0.0;
  std::size_t pos_fed = 0;
  std::size_t pos_observable = 0;
  int max_levels_to_po = -1;  ///< site distance for the bathtub curves
  int level_from_pi = 0;      ///< site controllability-side distance
  /// Stuck-at only: the site is a fanout branch. pos_fed then counts the
  /// STEM's structural reach while the difference only travels through the
  /// fed gate, so fed-vs-observed comparisons skip these records.
  bool branch_site = false;
  bool bridge_stuck_at = false;
  std::uint64_t gates_evaluated = 0;
  std::uint64_t gates_skipped = 0;
};

struct CircuitProfile {
  std::string circuit;
  std::size_t netlist_size = 0;  ///< gate count (paper's size axis)
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  std::vector<FaultRecord> faults;
  /// Worker-pool observability for the sweep that built this profile
  /// (with jobs == 1 the sweep ran inline on one worker).
  core::ParallelStats engine_stats;

  std::size_t detectable_count() const;
  /// "Overall mean detectability of detectable faults" (figure 2/7 solid).
  double mean_detectability_detectable() const;
  /// The same normalized by PO count (figure 2/7 dotted).
  double mean_detectability_per_po() const;

  Histogram detectability_histogram(std::size_t bins = 20) const;
  /// Adherence histogram over detectable faults (figure 4).
  Histogram adherence_histogram(std::size_t bins = 20) const;

  /// Mean detectability of detectable faults grouped by the site's maximum
  /// distance to a PO (figures 3 and 8 -- the "bathtub" curves).
  std::map<int, double> detectability_by_po_distance() const;
  /// Controllability-side counterpart (paper: "much more random").
  std::map<int, double> detectability_by_pi_distance() const;

  /// Fraction of faults whose fed and observable PO counts coincide
  /// ("these numbers are almost always the same", §4.1). Branch-site
  /// faults are excluded: their fed count refers to the checkpoint stem,
  /// not to the cone the injected difference can travel through.
  double po_fed_equals_observed_fraction() const;

  /// Bridging only: fraction behaving as double stuck-at (figure 5).
  double bridge_stuck_at_fraction() const;
};

/// Durable-artifact wiring for one sweep. With a store attached the
/// sweep (1) returns a cached dp.profile.v1 result when one exists for
/// the derived cache key -- skipping BDD construction and DP entirely --
/// (2) writes a dp.checkpoint.v1 document after every completed fault
/// batch, and (3) on start consumes a matching checkpoint so an
/// interrupted sweep resumes at the last completed batch. Per-fault
/// results are independent and deterministically ordered, so a resumed
/// sweep is bit-identical to an uninterrupted one.
struct PersistenceOptions {
  /// Not owned; nullptr disables all persistence (the default).
  store::ArtifactStore* store = nullptr;
  /// Faults per checkpoint batch (the resume granularity: at most this
  /// many faults are recomputed after a crash).
  std::size_t checkpoint_interval = 64;
  /// When false, existing checkpoints are ignored (but still written).
  bool resume = true;
};

struct AnalysisOptions {
  bool collapse = true;          ///< collapse the checkpoint set (paper §2.1)
  std::size_t bdd_node_limit = 32u * 1024 * 1024;
  /// Fault-parallel worker count: 1 = serial (inline), 0 = all hardware
  /// threads, N = N workers, each with a private BDD manager. Results are
  /// bit-identical to the serial sweep for any value.
  std::size_t jobs = 1;
  core::DifferencePropagator::Options dp;
  fault::SamplingOptions sampling;  ///< bridging-fault sampling policy
  PersistenceOptions persistence;   ///< artifact cache + checkpoint/resume
  /// Build good functions once and share them frozen across workers (see
  /// parallel_engine.hpp). Results are bit-identical either way, so this
  /// does not enter the profile cache key.
  bool shared_forest = true;
  /// Pre-built universe to adopt (serve::Service passes its resident
  /// forest here); nullptr = build per sweep.
  std::shared_ptr<const core::SharedGoodFunctions> shared_good;
};

/// Builds the scalar record for one stuck-at DP result exactly as
/// analyze_stuck_at does. Shared with the hybrid pipeline
/// (analysis/hybrid.hpp) so a DP-resolved hybrid record is field-identical
/// to the record a pure sweep produces for the same fault.
FaultRecord make_stuck_at_record(const netlist::Structure& structure,
                                 const fault::StuckAtFault& fault,
                                 const core::FaultAnalysis& analysis);

/// Full stuck-at study of one circuit (checkpoint faults, collapsed).
CircuitProfile analyze_stuck_at(const netlist::Circuit& circuit,
                                const AnalysisOptions& options = {});

/// Full bridging study of one circuit: enumerate potentially detectable
/// NFBFs, sample per the paper's distance-weighted policy when the set
/// exceeds the target, analyze each.
CircuitProfile analyze_bridging(const netlist::Circuit& circuit,
                                fault::BridgeType type,
                                const AnalysisOptions& options = {});

}  // namespace dp::analysis
