#include "analysis/random_pattern.hpp"

#include <cmath>
#include <stdexcept>

namespace dp::analysis {

double expected_random_coverage(const CircuitProfile& profile,
                                std::size_t num_patterns) {
  double escape_sum = 0.0;
  std::size_t detectable = 0;
  for (const FaultRecord& f : profile.faults) {
    if (!f.detectable) continue;
    ++detectable;
    // (1-d)^N via expm1/log1p for numerical stability at small d.
    escape_sum += std::exp(static_cast<double>(num_patterns) *
                           std::log1p(-f.detectability));
  }
  if (detectable == 0) return 0.0;
  return 1.0 - escape_sum / static_cast<double>(detectable);
}

std::size_t patterns_for_coverage(const CircuitProfile& profile,
                                  double target, std::size_t limit) {
  if (!(target > 0.0 && target < 1.0)) {
    throw std::invalid_argument("patterns_for_coverage: target in (0,1)");
  }
  // Exponential search then bisection on the monotone coverage curve.
  std::size_t hi = 1;
  while (hi < limit && expected_random_coverage(profile, hi) < target) {
    hi *= 2;
  }
  if (hi >= limit) return limit;
  std::size_t lo = hi / 2;
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (expected_random_coverage(profile, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

}  // namespace dp::analysis
