// Fixed-range histogram with fault-proportion normalization.
//
// The paper's profiles (figures 1, 4, 6) report the *proportion* of the
// fault set in each detectability/adherence bin rather than raw counts.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace dp::analysis {

class Histogram {
 public:
  /// Bins partition [lo, hi]; values outside are clamped to the end bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);

  std::size_t num_bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }

  /// Fraction of all added values landing in `bin` (0 when empty).
  double proportion(std::size_t bin) const;

  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }
  double bin_center(std::size_t bin) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace dp::analysis
