#include "analysis/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace dp::analysis {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: need lo < hi");
}

void Histogram::add(double value) {
  if (std::isnan(value)) {
    throw std::invalid_argument("Histogram::add: NaN value");
  }
  const double t = (value - lo_) / (hi_ - lo_);
  auto bin = static_cast<long long>(std::floor(t * static_cast<double>(counts_.size())));
  bin = std::clamp<long long>(bin, 0, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::proportion(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_center(std::size_t bin) const {
  return (bin_lo(bin) + bin_hi(bin)) / 2.0;
}

}  // namespace dp::analysis
