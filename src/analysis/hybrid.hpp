// Hybrid bit-parallel-simulation / Difference-Propagation pipeline.
//
// Phase 1 (prefilter) runs the levelized wide fault simulator over a fixed
// random-pattern stream: any fault a pattern exposes at a PO is detectable
// by construction (the witness vector is concrete), so it never needs a
// BDD. Phase 2 hands only the undetected remainder to the exact DP engine.
//
// The handoff contract:
//   * Partition identity -- the detectable/undetectable split over the
//     whole fault list equals a pure DP sweep's exactly. A prefilter
//     detection is sound (witnessed), and the remainder is decided by the
//     same exact engine a pure sweep uses.
//   * Record identity on the remainder -- a fault the prefilter misses
//     gets a FaultRecord field-identical to the one analyze_stuck_at
//     would produce (same engine, same per-fault independence, built via
//     the shared make_stuck_at_record).
//   * A prefilter-resolved fault carries detection counts and its first
//     detecting pattern index instead of a DP record; exact detectability
//     for those faults is intentionally not computed.
//
// Persistence (AnalysisOptions::persistence) is ignored here: the hybrid
// pipeline is the cheap path, and its DP remainder is not keyed like a
// full-population dp.profile.v1 sweep.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/profiles.hpp"
#include "sim/wide_sim.hpp"

namespace dp::analysis {

struct HybridOptions {
  /// Random patterns the prefilter applies before DP takes over.
  std::size_t prefilter_patterns = 4096;
  std::uint64_t prefilter_seed = 0x5eedb10cull;
  /// Forwarded to the wide engine: drop a fault after its first detecting
  /// block (keep off for full n-detect counts).
  bool drop_detected = true;
};

enum class ResolvedBy : std::uint8_t {
  Prefilter,  ///< a random pattern exposed the fault; no DP ran
  ExactDp,    ///< DP analyzed it (detectable or proven redundant)
};

struct HybridFaultRecord {
  ResolvedBy resolved_by = ResolvedBy::ExactDp;
  bool detectable = false;
  /// Prefilter detections observed (0 for DP-resolved faults).
  std::uint64_t detection_count = 0;
  /// First detecting pattern index in the prefilter stream.
  std::uint64_t first_detection = sim::WideFaultSimulator::kNotDetected;
  /// Valid only when resolved_by == ExactDp; field-identical to the
  /// record a pure analyze_stuck_at sweep produces for the same fault.
  FaultRecord dp;
};

struct HybridProfile {
  std::string circuit;
  std::size_t netlist_size = 0;
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  std::size_t prefilter_patterns = 0;
  std::uint64_t prefilter_seed = 0;
  /// One record per input fault, input order preserved.
  std::vector<HybridFaultRecord> faults;
  /// DP-remainder sweep telemetry (zero when the prefilter resolved all).
  core::ParallelStats engine_stats;
  double prefilter_seconds = 0.0;
  double dp_seconds = 0.0;
  /// Wide-sim faulty-value evaluations during the prefilter, total and per
  /// circuit level (copied from Grade::level_events; deterministic for a
  /// fixed fault list / pattern budget / seed).
  std::uint64_t sim_events = 0;
  std::vector<std::uint64_t> sim_level_events;

  std::size_t prefilter_resolved() const;
  std::size_t dp_resolved() const;
  std::size_t detectable_count() const;
  std::size_t redundant_count() const;
  /// Fraction of faults the prefilter resolved (0 on an empty list).
  double prefilter_fraction() const;

  /// Folds this run's pipeline-level instruments into `registry`: timers
  /// phase.prefilter / phase.dp_remainder plus deterministic counters
  /// (hybrid.faults, hybrid.prefilter_resolved, hybrid.dp_resolved,
  /// sim.patterns, sim.events, per-level sim.level_events.NNN) -- all
  /// identical across --jobs 1/N runs of the same workload. The DP
  /// remainder's engine telemetry is NOT included; export engine_stats
  /// separately (callers like bench::Session::record_engine already do)
  /// so the dp.* instruments are never double-counted.
  void export_metrics(obs::MetricsRegistry& registry) const;
};

/// Runs the pipeline over an explicit fault list (the fuzzer's oracle and
/// ATPG use this form).
HybridProfile analyze_hybrid(const netlist::Circuit& circuit,
                             const std::vector<fault::StuckAtFault>& faults,
                             const AnalysisOptions& options = {},
                             const HybridOptions& hybrid = {});

/// Checkpoint-fault counterpart of analyze_stuck_at (collapse honoured).
HybridProfile analyze_stuck_at_hybrid(const netlist::Circuit& circuit,
                                      const AnalysisOptions& options = {},
                                      const HybridOptions& hybrid = {});

}  // namespace dp::analysis
