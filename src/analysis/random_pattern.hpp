// Random-pattern test economics from exact detectabilities.
//
// The detection-probability profiles (paper figures 1 and 6) determine
// random-pattern behavior exactly: a fault with detectability d escapes N
// independent uniform patterns with probability (1-d)^N, so
//   expected coverage(N)   = 1 - mean over detectable faults of (1-d)^N
//   patterns for coverage C = smallest N with expected coverage >= C.
// This is the quantitative link between the paper's exact profiles and
// test length (cf. its PPM quality-level motivation and the
// probabilistically-guided generation it cites [19]).
#pragma once

#include <cstddef>

#include "analysis/profiles.hpp"

namespace dp::analysis {

/// Expected fraction of the profile's detectable faults covered by
/// `num_patterns` independent uniform random patterns.
double expected_random_coverage(const CircuitProfile& profile,
                                std::size_t num_patterns);

/// Smallest pattern count whose expected coverage reaches `target`
/// (0 < target < 1). Returns `limit` if not reached by then (e.g. when
/// redundant-adjacent faults have tiny detectabilities).
std::size_t patterns_for_coverage(const CircuitProfile& profile,
                                  double target,
                                  std::size_t limit = 1u << 24);

}  // namespace dp::analysis
