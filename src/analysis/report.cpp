#include "analysis/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace dp::analysis {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width != header width");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void print_histogram(std::ostream& os, const Histogram& h,
                     const std::string& title, const std::string& x_label,
                     int width) {
  os << title << "  (n = " << h.total() << ")\n";
  double max_prop = 0.0;
  for (std::size_t b = 0; b < h.num_bins(); ++b) {
    max_prop = std::max(max_prop, h.proportion(b));
  }
  if (max_prop == 0.0) max_prop = 1.0;
  for (std::size_t b = 0; b < h.num_bins(); ++b) {
    const double p = h.proportion(b);
    const int bar = static_cast<int>(std::lround(p / max_prop * width));
    os << "  " << std::fixed << std::setprecision(2) << std::setw(5)
       << h.bin_lo(b) << "-" << std::setw(4) << h.bin_hi(b) << " |"
       << std::string(static_cast<std::size_t>(bar), '#') << " "
       << std::setprecision(4) << p << "\n";
  }
  os << "  (" << x_label << " on rows, fault proportion on bars)\n";
}

void print_series(std::ostream& os, const std::map<int, double>& series,
                  const std::string& title, const std::string& x_label,
                  const std::string& y_label, int width) {
  os << title << "\n";
  double max_v = 0.0;
  for (const auto& [k, v] : series) max_v = std::max(max_v, v);
  if (max_v == 0.0) max_v = 1.0;
  for (const auto& [k, v] : series) {
    const int bar = static_cast<int>(std::lround(v / max_v * width));
    os << "  " << std::setw(4) << k << " |"
       << std::string(static_cast<std::size_t>(bar), '#') << " " << std::fixed
       << std::setprecision(4) << v << "\n";
  }
  os << "  (" << x_label << " on rows, " << y_label << " on bars)\n";
}

namespace {

void write_csv_line(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os << ",";
    os << cells[i];
  }
  os << "\n";
}

}  // namespace

void write_csv_header(std::ostream& os, const std::vector<std::string>& cols) {
  write_csv_line(os, cols);
}

void write_csv_row(std::ostream& os, const std::vector<std::string>& cells) {
  write_csv_line(os, cells);
}

}  // namespace dp::analysis
