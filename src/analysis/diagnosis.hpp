// Fault dictionaries and cause-effect diagnosis.
//
// Difference Propagation yields, for every fault, the exact set of vectors
// that fail at each PO -- which is precisely a full-response fault
// dictionary (the cause-effect framework of Bossen & Hong [6], whose
// checkpoint faults the paper adopts). Given the observed failing
// (vector, PO) pairs from a defective unit, candidates are ranked by exact
// signature match, making location of modeled faults a lookup.
#pragma once

#include <cstdint>
#include <vector>

#include "dp/engine.hpp"
#include "fault/stuck_at.hpp"

namespace dp::analysis {

/// Failing-PO signature of one fault under one test vector: bit p set
/// means PO p shows the wrong value.
using PoSignature = std::uint64_t;

/// Dictionary over a fixed vector set: per fault, per vector, the failing
/// POs. Circuits with more than 64 POs are not supported (signature word).
class FaultDictionary {
 public:
  /// Builds the dictionary by analyzing every fault with the engine:
  /// entry(f, v) has bit p set iff vector v is in fault f's test set at
  /// PO p (the per-PO difference function evaluates true). Requires exact
  /// good functions (no cut-point decomposition): difference functions
  /// over cut variables cannot be evaluated on PI vectors alone.
  FaultDictionary(const core::DifferencePropagator& engine,
                  const std::vector<fault::StuckAtFault>& faults,
                  const std::vector<std::vector<bool>>& vectors);

  std::size_t num_faults() const { return signatures_.size(); }
  std::size_t num_vectors() const { return num_vectors_; }

  const fault::StuckAtFault& fault_at(std::size_t i) const {
    return faults_.at(i);
  }
  PoSignature signature(std::size_t fault_index,
                        std::size_t vector_index) const {
    return signatures_.at(fault_index).at(vector_index);
  }

  /// Observed behavior of a unit under test: failing POs per vector
  /// (all-zero rows mean the vector passed).
  struct Candidate {
    std::size_t fault_index = 0;
    /// Hamming distance between observed and dictionary signatures,
    /// summed over vectors; 0 is a perfect match.
    std::size_t distance = 0;
  };

  /// Ranks all faults by signature distance to the observation
  /// (ascending; ties keep dictionary order). Perfect matches first.
  std::vector<Candidate> diagnose(
      const std::vector<PoSignature>& observed) const;

  /// Faults whose dictionary signatures are identical across all vectors
  /// (indistinguishable by this vector set), grouped.
  std::vector<std::vector<std::size_t>> indistinguishable_groups() const;

  /// Diagnostic resolution: fraction of faults uniquely distinguishable.
  double resolution() const;

 private:
  std::vector<fault::StuckAtFault> faults_;
  std::vector<std::vector<PoSignature>> signatures_;
  std::size_t num_vectors_ = 0;
};

}  // namespace dp::analysis
