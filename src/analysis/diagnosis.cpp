#include "analysis/diagnosis.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <stdexcept>

namespace dp::analysis {

FaultDictionary::FaultDictionary(
    const core::DifferencePropagator& engine,
    const std::vector<fault::StuckAtFault>& faults,
    const std::vector<std::vector<bool>>& vectors)
    : faults_(faults), num_vectors_(vectors.size()) {
  const netlist::Circuit& c = engine.good().circuit();
  if (c.num_outputs() > 64) {
    throw std::invalid_argument(
        "FaultDictionary: more than 64 POs (signature word too small)");
  }
  for (const auto& v : vectors) {
    if (v.size() != c.num_inputs()) {
      throw std::invalid_argument("FaultDictionary: vector width != #PIs");
    }
  }

  signatures_.reserve(faults.size());
  for (const fault::StuckAtFault& f : faults) {
    const core::FaultAnalysis a = engine.analyze(f);
    std::vector<PoSignature> row(vectors.size(), 0);
    for (std::size_t p = 0; p < c.num_outputs(); ++p) {
      const bdd::Bdd& d = a.po_differences[p];
      if (!d.valid()) continue;
      for (std::size_t v = 0; v < vectors.size(); ++v) {
        if (d.eval(vectors[v])) row[v] |= PoSignature{1} << p;
      }
    }
    signatures_.push_back(std::move(row));
  }
}

std::vector<FaultDictionary::Candidate> FaultDictionary::diagnose(
    const std::vector<PoSignature>& observed) const {
  if (observed.size() != num_vectors_) {
    throw std::invalid_argument(
        "diagnose: observation length != dictionary vector count");
  }
  std::vector<Candidate> ranked;
  ranked.reserve(signatures_.size());
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    Candidate cand;
    cand.fault_index = i;
    for (std::size_t v = 0; v < num_vectors_; ++v) {
      cand.distance += static_cast<std::size_t>(
          std::popcount(signatures_[i][v] ^ observed[v]));
    }
    ranked.push_back(cand);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.distance < b.distance;
                   });
  return ranked;
}

std::vector<std::vector<std::size_t>>
FaultDictionary::indistinguishable_groups() const {
  std::map<std::vector<PoSignature>, std::vector<std::size_t>> by_signature;
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    by_signature[signatures_[i]].push_back(i);
  }
  std::vector<std::vector<std::size_t>> groups;
  for (auto& [sig, members] : by_signature) {
    groups.push_back(std::move(members));
  }
  return groups;
}

double FaultDictionary::resolution() const {
  if (signatures_.empty()) return 0.0;
  std::size_t unique = 0;
  for (const auto& group : indistinguishable_groups()) {
    if (group.size() == 1) ++unique;
  }
  return static_cast<double>(unique) / static_cast<double>(signatures_.size());
}

}  // namespace dp::analysis
