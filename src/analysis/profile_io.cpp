#include "analysis/profile_io.hpp"

#include "store/hash.hpp"

namespace dp::analysis {

using obs::JsonValue;

std::string profile_cache_key(const netlist::Circuit& circuit,
                              const std::string& kind,
                              const AnalysisOptions& options) {
  store::KeyBuilder k;
  k.str(kProfileSchema);  // format-version salt
  k.str(store::circuit_content_hash(circuit));
  k.str(kind);
  k.flag(options.collapse);
  k.flag(options.dp.selective_trace);
  // Sampling shapes the bridging fault set; harmless extra entropy for
  // stuck-at sweeps (constant given constant options).
  k.u64(options.sampling.target_count);
  k.f64(options.sampling.theta);
  k.u64(options.sampling.seed);
  return k.hex();
}

namespace {

JsonValue record_to_json(const FaultRecord& r) {
  JsonValue j = JsonValue::object();
  j["detectable"] = r.detectable;
  j["detectability"] = r.detectability;
  j["upper_bound"] = r.upper_bound;
  j["adherence"] = r.adherence;
  j["pos_fed"] = r.pos_fed;
  j["pos_observable"] = r.pos_observable;
  j["max_levels_to_po"] = r.max_levels_to_po;
  j["level_from_pi"] = r.level_from_pi;
  j["branch_site"] = r.branch_site;
  j["bridge_stuck_at"] = r.bridge_stuck_at;
  j["gates_evaluated"] = r.gates_evaluated;
  j["gates_skipped"] = r.gates_skipped;
  return j;
}

FaultRecord record_from_json(const JsonValue& j) {
  FaultRecord r;
  r.detectable = j.at("detectable").as_bool();
  r.detectability = j.at("detectability").as_double();
  r.upper_bound = j.at("upper_bound").as_double();
  r.adherence = j.at("adherence").as_double();
  r.pos_fed = static_cast<std::size_t>(j.at("pos_fed").as_int());
  r.pos_observable = static_cast<std::size_t>(j.at("pos_observable").as_int());
  r.max_levels_to_po = static_cast<int>(j.at("max_levels_to_po").as_int());
  r.level_from_pi = static_cast<int>(j.at("level_from_pi").as_int());
  r.branch_site = j.at("branch_site").as_bool();
  r.bridge_stuck_at = j.at("bridge_stuck_at").as_bool();
  r.gates_evaluated =
      static_cast<std::uint64_t>(j.at("gates_evaluated").as_int());
  r.gates_skipped = static_cast<std::uint64_t>(j.at("gates_skipped").as_int());
  return r;
}

JsonValue records_to_json(const std::vector<FaultRecord>& records) {
  JsonValue arr = JsonValue::array();
  for (const FaultRecord& r : records) arr.push_back(record_to_json(r));
  return arr;
}

std::vector<FaultRecord> records_from_json(const JsonValue& arr) {
  if (!arr.is_array()) throw obs::JsonError("fault records: not an array");
  std::vector<FaultRecord> records;
  records.reserve(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) {
    records.push_back(record_from_json(arr.at(i)));
  }
  return records;
}

}  // namespace

JsonValue profile_to_json(const CircuitProfile& profile,
                          const std::string& key) {
  JsonValue doc = JsonValue::object();
  doc["schema"] = kProfileSchema;
  doc["key"] = key;
  doc["circuit"] = profile.circuit;
  doc["netlist_size"] = profile.netlist_size;
  doc["num_inputs"] = profile.num_inputs;
  doc["num_outputs"] = profile.num_outputs;
  doc["faults"] = records_to_json(profile.faults);
  return doc;
}

std::optional<CircuitProfile> profile_from_json(const JsonValue& doc,
                                                const std::string& key) {
  try {
    if (!doc.is_object()) return std::nullopt;
    const JsonValue* schema = doc.find("schema");
    if (!schema || !schema->is_string() ||
        schema->as_string() != kProfileSchema) {
      return std::nullopt;
    }
    if (doc.at("key").as_string() != key) return std::nullopt;
    CircuitProfile p;
    p.circuit = doc.at("circuit").as_string();
    p.netlist_size = static_cast<std::size_t>(doc.at("netlist_size").as_int());
    p.num_inputs = static_cast<std::size_t>(doc.at("num_inputs").as_int());
    p.num_outputs = static_cast<std::size_t>(doc.at("num_outputs").as_int());
    p.faults = records_from_json(doc.at("faults"));
    return p;
  } catch (const obs::JsonError&) {
    return std::nullopt;
  }
}

JsonValue hybrid_profile_to_json(const HybridProfile& profile) {
  JsonValue doc = JsonValue::object();
  doc["schema"] = kHybridProfileSchema;
  doc["circuit"] = profile.circuit;
  doc["netlist_size"] = profile.netlist_size;
  doc["num_inputs"] = profile.num_inputs;
  doc["num_outputs"] = profile.num_outputs;
  doc["prefilter_patterns"] = profile.prefilter_patterns;
  doc["prefilter_seed"] = profile.prefilter_seed;
  doc["sim_events"] = profile.sim_events;
  JsonValue levels = JsonValue::array();
  for (const std::uint64_t n : profile.sim_level_events) levels.push_back(n);
  doc["sim_level_events"] = std::move(levels);
  JsonValue faults = JsonValue::array();
  for (const HybridFaultRecord& r : profile.faults) {
    JsonValue j = JsonValue::object();
    j["resolved_by"] =
        r.resolved_by == ResolvedBy::Prefilter ? "prefilter" : "dp";
    j["detectable"] = r.detectable;
    j["detection_count"] = r.detection_count;
    // kNotDetected is ~0ull, which does not fit a JSON int exactly;
    // the wire form of "never detected" is -1.
    j["first_detection"] =
        r.first_detection == sim::WideFaultSimulator::kNotDetected
            ? static_cast<long long>(-1)
            : static_cast<long long>(r.first_detection);
    if (r.resolved_by == ResolvedBy::ExactDp) j["dp"] = record_to_json(r.dp);
    faults.push_back(std::move(j));
  }
  doc["faults"] = std::move(faults);
  return doc;
}

std::optional<HybridProfile> hybrid_profile_from_json(const JsonValue& doc) {
  try {
    if (!doc.is_object()) return std::nullopt;
    const JsonValue* schema = doc.find("schema");
    if (!schema || !schema->is_string() ||
        schema->as_string() != kHybridProfileSchema) {
      return std::nullopt;
    }
    HybridProfile p;
    p.circuit = doc.at("circuit").as_string();
    p.netlist_size = static_cast<std::size_t>(doc.at("netlist_size").as_int());
    p.num_inputs = static_cast<std::size_t>(doc.at("num_inputs").as_int());
    p.num_outputs = static_cast<std::size_t>(doc.at("num_outputs").as_int());
    p.prefilter_patterns =
        static_cast<std::size_t>(doc.at("prefilter_patterns").as_int());
    p.prefilter_seed =
        static_cast<std::uint64_t>(doc.at("prefilter_seed").as_int());
    p.sim_events = static_cast<std::uint64_t>(doc.at("sim_events").as_int());
    const JsonValue& levels = doc.at("sim_level_events");
    if (!levels.is_array()) return std::nullopt;
    for (std::size_t i = 0; i < levels.size(); ++i) {
      p.sim_level_events.push_back(
          static_cast<std::uint64_t>(levels.at(i).as_int()));
    }
    const JsonValue& faults = doc.at("faults");
    if (!faults.is_array()) return std::nullopt;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const JsonValue& j = faults.at(i);
      HybridFaultRecord r;
      const std::string& by = j.at("resolved_by").as_string();
      if (by == "prefilter") {
        r.resolved_by = ResolvedBy::Prefilter;
      } else if (by == "dp") {
        r.resolved_by = ResolvedBy::ExactDp;
      } else {
        return std::nullopt;
      }
      r.detectable = j.at("detectable").as_bool();
      r.detection_count =
          static_cast<std::uint64_t>(j.at("detection_count").as_int());
      const long long first = j.at("first_detection").as_int();
      r.first_detection = first < 0
                              ? sim::WideFaultSimulator::kNotDetected
                              : static_cast<std::uint64_t>(first);
      if (r.resolved_by == ResolvedBy::ExactDp) {
        r.dp = record_from_json(j.at("dp"));
      }
      p.faults.push_back(std::move(r));
    }
    return p;
  } catch (const obs::JsonError&) {
    return std::nullopt;
  }
}

JsonValue checkpoint_to_json(const SweepCheckpoint& ckpt) {
  JsonValue doc = JsonValue::object();
  doc["schema"] = kCheckpointSchema;
  doc["key"] = ckpt.key;
  doc["total_faults"] = ckpt.total_faults;
  doc["completed"] = ckpt.completed.size();
  doc["faults"] = records_to_json(ckpt.completed);
  return doc;
}

std::optional<SweepCheckpoint> checkpoint_from_json(const JsonValue& doc,
                                                    const std::string& key,
                                                    std::size_t total_faults) {
  try {
    if (!doc.is_object()) return std::nullopt;
    const JsonValue* schema = doc.find("schema");
    if (!schema || !schema->is_string() ||
        schema->as_string() != kCheckpointSchema) {
      return std::nullopt;
    }
    if (doc.at("key").as_string() != key) return std::nullopt;
    SweepCheckpoint ckpt;
    ckpt.key = key;
    ckpt.total_faults =
        static_cast<std::size_t>(doc.at("total_faults").as_int());
    if (ckpt.total_faults != total_faults) return std::nullopt;
    const std::size_t completed =
        static_cast<std::size_t>(doc.at("completed").as_int());
    ckpt.completed = records_from_json(doc.at("faults"));
    if (ckpt.completed.size() != completed ||
        ckpt.completed.size() > ckpt.total_faults) {
      return std::nullopt;
    }
    return ckpt;
  } catch (const obs::JsonError&) {
    return std::nullopt;
  }
}

}  // namespace dp::analysis
