#include "analysis/hybrid.hpp"

#include <chrono>
#include <string>

#include "obs/span.hpp"

namespace dp::analysis {

using netlist::Circuit;
using netlist::Structure;

std::size_t HybridProfile::prefilter_resolved() const {
  std::size_t n = 0;
  for (const HybridFaultRecord& r : faults) {
    n += r.resolved_by == ResolvedBy::Prefilter;
  }
  return n;
}

std::size_t HybridProfile::dp_resolved() const {
  return faults.size() - prefilter_resolved();
}

std::size_t HybridProfile::detectable_count() const {
  std::size_t n = 0;
  for (const HybridFaultRecord& r : faults) n += r.detectable;
  return n;
}

std::size_t HybridProfile::redundant_count() const {
  return faults.size() - detectable_count();
}

double HybridProfile::prefilter_fraction() const {
  return faults.empty() ? 0.0
                        : static_cast<double>(prefilter_resolved()) /
                              static_cast<double>(faults.size());
}

void HybridProfile::export_metrics(obs::MetricsRegistry& registry) const {
  registry.timer("phase.prefilter").record(prefilter_seconds);
  registry.timer("phase.dp_remainder").record(dp_seconds);
  registry.counter("hybrid.faults").add(faults.size());
  registry.counter("hybrid.prefilter_resolved").add(prefilter_resolved());
  registry.counter("hybrid.dp_resolved").add(dp_resolved());
  registry.counter("sim.patterns").add(prefilter_patterns);
  registry.counter("sim.events").add(sim_events);
  for (std::size_t level = 0; level < sim_level_events.size(); ++level) {
    if (sim_level_events[level] == 0) continue;
    // Zero-padded so the registry's sorted export lists levels in order.
    std::string suffix = std::to_string(level);
    while (suffix.size() < 3) suffix.insert(suffix.begin(), '0');
    registry.counter("sim.level_events." + suffix)
        .add(sim_level_events[level]);
  }
}

HybridProfile analyze_hybrid(const Circuit& circuit,
                             const std::vector<fault::StuckAtFault>& faults,
                             const AnalysisOptions& options,
                             const HybridOptions& hybrid) {
  using clock = std::chrono::steady_clock;

  HybridProfile p;
  p.circuit = circuit.name();
  p.netlist_size = circuit.num_gates();
  p.num_inputs = circuit.num_inputs();
  p.num_outputs = circuit.num_outputs();
  p.prefilter_patterns = hybrid.prefilter_patterns;
  p.prefilter_seed = hybrid.prefilter_seed;
  p.faults.resize(faults.size());

  obs::SpanCollector* const spans = obs::SpanCollector::current();
  const auto t0 = clock::now();
  sim::WideFaultSimulator::Grade grade;
  {
    obs::ScopedSpan span(spans, "hybrid.prefilter");
    span.attr("faults", faults.size());
    span.attr("patterns", hybrid.prefilter_patterns);
    const sim::WideFaultSimulator wide(circuit);
    sim::WideSimOptions wopt;
    wopt.drop_detected = hybrid.drop_detected;
    grade = wide.grade_random(faults, hybrid.prefilter_patterns,
                              hybrid.prefilter_seed, wopt);
    span.attr("resolved", grade.detected());
  }
  const auto t1 = clock::now();
  p.prefilter_seconds = std::chrono::duration<double>(t1 - t0).count();
  p.sim_events = grade.events();
  p.sim_level_events = grade.level_events;

  std::vector<std::size_t> remainder;
  std::vector<fault::StuckAtFault> remainder_faults;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    HybridFaultRecord& r = p.faults[i];
    r.detection_count = grade.detection_counts[i];
    r.first_detection = grade.first_detection[i];
    if (r.detection_count > 0) {
      // Sound by construction: a concrete pattern flipped a PO.
      r.resolved_by = ResolvedBy::Prefilter;
      r.detectable = true;
    } else {
      r.resolved_by = ResolvedBy::ExactDp;
      remainder.push_back(i);
      remainder_faults.push_back(faults[i]);
    }
  }

  if (!remainder_faults.empty()) {
    obs::ScopedSpan span(spans, "hybrid.dp_remainder");
    span.attr("faults", remainder_faults.size());
    const Structure structure(circuit);
    core::ParallelEngine::Options popt;
    popt.jobs = options.jobs;
    popt.bdd_node_limit = options.bdd_node_limit;
    popt.dp = options.dp;
    popt.shared_forest = options.shared_forest;
    popt.shared_good = options.shared_good;
    core::ParallelEngine engine(circuit, structure, popt);
    core::ParallelStats totals = engine.stats();
    // Distinct indices into the pre-sized vector, so the concurrent sink
    // writes are safe (same shape as run_sweep in profiles.cpp).
    engine.analyze_each(
        remainder_faults, [&](std::size_t k, core::FaultAnalysis&& a) {
          HybridFaultRecord& r = p.faults[remainder[k]];
          r.detectable = a.detectable;
          r.dp = make_stuck_at_record(structure, remainder_faults[k], a);
        });
    totals.merge(engine.stats());
    p.engine_stats = totals;
  }
  p.dp_seconds = std::chrono::duration<double>(clock::now() - t1).count();
  return p;
}

HybridProfile analyze_stuck_at_hybrid(const Circuit& circuit,
                                      const AnalysisOptions& options,
                                      const HybridOptions& hybrid) {
  const std::vector<fault::StuckAtFault> faults =
      options.collapse ? fault::collapse_checkpoint_faults(circuit)
                       : fault::checkpoint_faults(circuit);
  return analyze_hybrid(circuit, faults, options, hybrid);
}

}  // namespace dp::analysis
