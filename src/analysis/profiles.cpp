#include "analysis/profiles.hpp"

#include <algorithm>

#include "analysis/profile_io.hpp"
#include "netlist/layout.hpp"

namespace dp::analysis {

using core::FaultAnalysis;
using netlist::Circuit;
using netlist::Structure;

std::size_t CircuitProfile::detectable_count() const {
  return static_cast<std::size_t>(
      std::count_if(faults.begin(), faults.end(),
                    [](const FaultRecord& f) { return f.detectable; }));
}

double CircuitProfile::mean_detectability_detectable() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const FaultRecord& f : faults) {
    if (f.detectable) {
      sum += f.detectability;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double CircuitProfile::mean_detectability_per_po() const {
  return num_outputs ? mean_detectability_detectable() /
                           static_cast<double>(num_outputs)
                     : 0.0;
}

Histogram CircuitProfile::detectability_histogram(std::size_t bins) const {
  Histogram h(0.0, 1.0, bins);
  for (const FaultRecord& f : faults) {
    if (f.detectable) h.add(f.detectability);
  }
  return h;
}

Histogram CircuitProfile::adherence_histogram(std::size_t bins) const {
  Histogram h(0.0, 1.0, bins);
  for (const FaultRecord& f : faults) {
    if (f.detectable) h.add(f.adherence);
  }
  return h;
}

namespace {

std::map<int, double> mean_by_key(const std::vector<FaultRecord>& faults,
                                  int FaultRecord::* key) {
  std::map<int, std::pair<double, std::size_t>> acc;
  for (const FaultRecord& f : faults) {
    if (!f.detectable) continue;
    auto& [sum, n] = acc[f.*key];
    sum += f.detectability;
    ++n;
  }
  std::map<int, double> result;
  for (const auto& [k, v] : acc) {
    result[k] = v.first / static_cast<double>(v.second);
  }
  return result;
}

}  // namespace

std::map<int, double> CircuitProfile::detectability_by_po_distance() const {
  return mean_by_key(faults, &FaultRecord::max_levels_to_po);
}

std::map<int, double> CircuitProfile::detectability_by_pi_distance() const {
  return mean_by_key(faults, &FaultRecord::level_from_pi);
}

double CircuitProfile::po_fed_equals_observed_fraction() const {
  std::size_t eq = 0, n = 0;
  for (const FaultRecord& f : faults) {
    if (!f.detectable || f.branch_site) continue;
    ++n;
    if (f.pos_fed == f.pos_observable) ++eq;
  }
  return n ? static_cast<double>(eq) / static_cast<double>(n) : 0.0;
}

double CircuitProfile::bridge_stuck_at_fraction() const {
  if (faults.empty()) return 0.0;
  std::size_t n = 0;
  for (const FaultRecord& f : faults) n += f.bridge_stuck_at;
  return static_cast<double>(n) / static_cast<double>(faults.size());
}

namespace {

FaultRecord to_record(const FaultAnalysis& a, int max_levels_to_po,
                      int level_from_pi) {
  FaultRecord r;
  r.detectable = a.detectable;
  r.detectability = a.detectability;
  r.upper_bound = a.upper_bound;
  r.adherence = a.adherence;
  r.pos_fed = a.pos_fed;
  r.pos_observable = a.pos_observable;
  r.max_levels_to_po = max_levels_to_po;
  r.level_from_pi = level_from_pi;
  r.bridge_stuck_at = a.bridge_stuck_at;
  r.gates_evaluated = a.stats.gates_evaluated;
  r.gates_skipped = a.stats.gates_skipped;
  return r;
}

CircuitProfile make_profile(const Circuit& circuit) {
  CircuitProfile p;
  p.circuit = circuit.name();
  p.netlist_size = circuit.num_gates();
  p.num_inputs = circuit.num_inputs();
  p.num_outputs = circuit.num_outputs();
  return p;
}

/// Site distances for a stuck-at fault: a branch sits one level before the
/// gate it enters; a stem sits on its net.
std::pair<int, int> sa_site_distances(const Structure& s,
                                      const fault::StuckAtFault& f) {
  if (f.branch) {
    const int to_po = s.max_levels_to_po(f.branch->gate);
    return {to_po < 0 ? -1 : to_po + 1, s.level_from_pi(f.net)};
  }
  return {s.max_levels_to_po(f.net), s.level_from_pi(f.net)};
}

}  // namespace

FaultRecord make_stuck_at_record(const Structure& structure,
                                 const fault::StuckAtFault& fault,
                                 const core::FaultAnalysis& analysis) {
  const auto [to_po, from_pi] = sa_site_distances(structure, fault);
  FaultRecord r = to_record(analysis, to_po, from_pi);
  r.branch_site = fault.branch.has_value();
  return r;
}

namespace {

core::ParallelEngine::Options engine_options(const AnalysisOptions& options) {
  core::ParallelEngine::Options popt;
  popt.jobs = options.jobs;
  popt.bdd_node_limit = options.bdd_node_limit;
  popt.dp = options.dp;
  popt.shared_forest = options.shared_forest;
  popt.shared_good = options.shared_good;
  return popt;
}

/// Runs the fault sweep for `profile`, honoring options.persistence:
/// serve a cached dp.profile.v1 when one matches, otherwise sweep in
/// checkpoint_interval batches, durably recording the completed prefix
/// after each batch and consuming a matching checkpoint on entry. With
/// no store attached this degenerates to one batch over all faults.
/// `make_record` maps (fault index, analysis) to the stored record; it
/// runs concurrently for distinct indices.
template <typename Fault, typename MakeRecord>
void run_sweep(const Circuit& circuit, const Structure& structure,
               const std::vector<Fault>& faults, const AnalysisOptions& options,
               const std::string& kind, CircuitProfile& profile,
               MakeRecord&& make_record) {
  profile.faults.resize(faults.size());

  store::ArtifactStore* cache = options.persistence.store;
  std::string key;
  if (cache) {
    key = profile_cache_key(circuit, kind, options);
    if (auto doc = cache->load_document(key, "profile")) {
      if (auto cached = profile_from_json(*doc, key)) {
        if (cached->faults.size() == faults.size()) {
          // Hit: no engine, no BDDs. engine_stats stays default (zero
          // faults analyzed), which downstream reporting prints as-is.
          profile.faults = std::move(cached->faults);
          return;
        }
      }
    }
  }

  std::size_t completed = 0;
  if (cache && options.persistence.resume) {
    if (auto doc = cache->load_document(key, "ckpt")) {
      if (auto ckpt = checkpoint_from_json(*doc, key, faults.size())) {
        completed = ckpt->completed.size();
        std::move(ckpt->completed.begin(), ckpt->completed.end(),
                  profile.faults.begin());
      }
    }
  }

  core::ParallelEngine engine(circuit, structure, engine_options(options));
  // Seed the totals with the freshly-built engine's stats so worker
  // build telemetry survives the per-batch merges.
  core::ParallelStats totals = engine.stats();
  const std::size_t interval =
      cache ? std::max<std::size_t>(1, options.persistence.checkpoint_interval)
            : faults.size();
  while (completed < faults.size()) {
    const std::size_t end = std::min(faults.size(), completed + interval);
    const std::size_t base = completed;
    const std::vector<Fault> batch(faults.begin() + base, faults.begin() + end);
    // Streaming sink: the test-set BDDs are dropped fault by fault
    // (distinct indices, so concurrent writes into the pre-sized vector
    // are safe).
    engine.analyze_each(batch, [&](std::size_t i, core::FaultAnalysis&& a) {
      profile.faults[base + i] = make_record(base + i, a);
    });
    totals.merge(engine.stats());
    completed = end;
    if (cache && completed < faults.size()) {
      SweepCheckpoint ckpt;
      ckpt.key = key;
      ckpt.total_faults = faults.size();
      ckpt.completed.assign(profile.faults.begin(),
                            profile.faults.begin() + completed);
      cache->store_document(key, "ckpt", checkpoint_to_json(ckpt));
    }
  }
  profile.engine_stats = totals;
  if (cache) {
    cache->store_document(key, "profile", profile_to_json(profile, key));
    cache->remove(key, "ckpt");  // the profile supersedes the checkpoint
  }
}

}  // namespace

CircuitProfile analyze_stuck_at(const Circuit& circuit,
                                const AnalysisOptions& options) {
  Structure structure(circuit);
  const std::vector<fault::StuckAtFault> faults =
      options.collapse ? fault::collapse_checkpoint_faults(circuit)
                       : fault::checkpoint_faults(circuit);

  CircuitProfile profile = make_profile(circuit);
  run_sweep(circuit, structure, faults, options, "sa", profile,
            [&](std::size_t i, const core::FaultAnalysis& a) {
              return make_stuck_at_record(structure, faults[i], a);
            });
  return profile;
}

CircuitProfile analyze_bridging(const Circuit& circuit,
                                fault::BridgeType type,
                                const AnalysisOptions& options) {
  Structure structure(circuit);
  netlist::LayoutEstimate layout(circuit, structure);
  const std::vector<fault::BridgingFault> faults = fault::nfbf_fault_set(
      circuit, structure, layout, type, options.sampling);

  CircuitProfile profile = make_profile(circuit);
  const std::string kind =
      type == fault::BridgeType::And ? "bf.and" : "bf.or";
  run_sweep(circuit, structure, faults, options, kind, profile,
            [&](std::size_t i, const core::FaultAnalysis& a) {
              const fault::BridgingFault& f = faults[i];
              const int to_po = std::max(structure.max_levels_to_po(f.a),
                                         structure.max_levels_to_po(f.b));
              const int from_pi = std::max(structure.level_from_pi(f.a),
                                           structure.level_from_pi(f.b));
              return to_record(a, to_po, from_pi);
            });
  return profile;
}

}  // namespace dp::analysis
