// Text reporting shared by the benches and examples: aligned tables,
// ASCII bar charts / XY plots, and CSV emission.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/histogram.hpp"

namespace dp::analysis {

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  static std::string num(double v, int precision = 4);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Horizontal bar chart of bin proportions (one row per bin).
void print_histogram(std::ostream& os, const Histogram& h,
                     const std::string& title, const std::string& x_label,
                     int width = 50);

/// Simple XY series plot: keys ascending, bars proportional to value.
void print_series(std::ostream& os, const std::map<int, double>& series,
                  const std::string& title, const std::string& x_label,
                  const std::string& y_label, int width = 50);

/// CSV helpers (series land next to the ASCII plots so results can be
/// re-plotted outside).
void write_csv_header(std::ostream& os, const std::vector<std::string>& cols);
void write_csv_row(std::ostream& os, const std::vector<std::string>& cells);

}  // namespace dp::analysis
