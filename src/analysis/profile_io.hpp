// Durable formats for sweep results: the `dp.profile.v1` document (one
// complete CircuitProfile), the `dp.checkpoint.v1` document (a completed
// prefix of a sweep's fault records), and the cache-key derivation that
// addresses both in the artifact store.
//
// What a key covers -- and deliberately does not
// ----------------------------------------------
// profile_cache_key() hashes everything that influences the VALUES in a
// profile: the circuit's structural content hash, the fault-model kind,
// collapse, selective trace (it changes the per-fault gates
// evaluated/skipped records), decomposition and variable-order options,
// and (for bridging) the full sampling policy. It excludes knobs that
// are proven value-neutral: the worker count (sweeps are bit-identical
// for any --jobs) and the BDD node budget (exceeding it throws instead
// of changing results). A format-version salt makes every key change
// when the schema does.
//
// Determinism contract: profile -> JSON -> profile is exact, doubles
// included (the writer emits shortest-round-trip forms), so a profile
// served from cache is bit-identical to the sweep that produced it.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "analysis/hybrid.hpp"
#include "analysis/profiles.hpp"
#include "obs/json.hpp"

namespace dp::analysis {

inline constexpr const char* kProfileSchema = "dp.profile.v1";
inline constexpr const char* kCheckpointSchema = "dp.checkpoint.v1";
inline constexpr const char* kHybridProfileSchema = "dp.hybrid_profile.v1";

/// Stable artifact key for one (circuit, fault model, options) sweep.
/// `kind` is "sa", "bf.and", or "bf.or" (callers may mint new kinds).
std::string profile_cache_key(const netlist::Circuit& circuit,
                              const std::string& kind,
                              const AnalysisOptions& options);

/// Serializes everything except engine_stats (wall clock and worker
/// telemetry are observations of one run, not properties of the result).
obs::JsonValue profile_to_json(const CircuitProfile& profile,
                               const std::string& key);

/// Strict parse; nullopt when the document is not a well-formed
/// dp.profile.v1 for `key` (wrong schema, wrong key, missing fields).
std::optional<CircuitProfile> profile_from_json(const obs::JsonValue& doc,
                                                const std::string& key);

/// Serializes a hybrid sim/DP pipeline result (dp.hybrid_profile.v1).
/// Like profile_to_json, run observations are excluded: engine_stats and
/// the prefilter/dp wall-clock seconds are properties of one execution,
/// so two runs of the same workload -- any worker count, served or
/// in-process -- serialize to byte-identical documents. That identity is
/// what the serve layer's field-identity tests compare.
obs::JsonValue hybrid_profile_to_json(const HybridProfile& profile);

/// Strict parse; nullopt when `doc` is not a well-formed
/// dp.hybrid_profile.v1 document.
std::optional<HybridProfile> hybrid_profile_from_json(
    const obs::JsonValue& doc);

/// A checkpoint is the contiguous completed prefix of a sweep.
struct SweepCheckpoint {
  std::string key;
  std::size_t total_faults = 0;
  std::vector<FaultRecord> completed;  ///< records [0, completed.size())
};

obs::JsonValue checkpoint_to_json(const SweepCheckpoint& ckpt);

/// Strict parse + staleness check: nullopt unless the schema matches,
/// the embedded key equals `key`, the totals equal `total_faults`, and
/// the prefix is no longer than the total. A stale or corrupt
/// checkpoint therefore degrades to a full recompute, never to a crash
/// or a mixed result.
std::optional<SweepCheckpoint> checkpoint_from_json(const obs::JsonValue& doc,
                                                    const std::string& key,
                                                    std::size_t total_faults);

}  // namespace dp::analysis
