#include "analysis/ndetect.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace dp::analysis {

namespace {

/// Distinct vectors of `vectors`, first occurrence order.
std::vector<std::vector<bool>> dedupe(
    const std::vector<std::vector<bool>>& vectors) {
  std::vector<std::vector<bool>> out;
  std::set<std::vector<bool>> seen;
  out.reserve(vectors.size());
  for (const auto& v : vectors) {
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

/// The minterm of `v` over variables [0, v.size()), built bottom-up.
/// PI i is BDD variable i -- the identity mapping every engine in the
/// repo uses for undecomposed good functions.
bdd::Bdd minterm(bdd::Manager& manager, const std::vector<bool>& v) {
  bdd::Bdd f = manager.one();
  for (std::size_t i = v.size(); i-- > 0;) {
    const bdd::Var var = static_cast<bdd::Var>(i);
    f = (v[i] ? manager.var(var) : manager.nvar(var)) & f;
  }
  return f;
}

/// B(V): the union of V's minterms -- the vector set as a function.
bdd::Bdd vector_set_bdd(bdd::Manager& manager,
                        const std::vector<std::vector<bool>>& vectors) {
  bdd::Bdd f = manager.zero();
  for (const auto& v : vectors) f = f | minterm(manager, v);
  return f;
}

std::vector<bool> vector_of_cube(const std::vector<signed char>& cube,
                                 std::size_t num_inputs) {
  std::vector<bool> v(num_inputs, false);
  for (std::size_t i = 0; i < num_inputs && i < cube.size(); ++i) {
    v[i] = cube[i] == 1;
  }
  return v;
}

}  // namespace

std::size_t NDetectReport::detectable_faults() const {
  std::size_t count = 0;
  for (const NDetectFaultRecord& r : faults) count += r.detectable ? 1 : 0;
  return count;
}

std::size_t NDetectReport::faults_meeting_target() const {
  std::size_t count = 0;
  for (const NDetectFaultRecord& r : faults) count += r.meets_target() ? 1 : 0;
  return count;
}

std::uint64_t NDetectReport::total_detections() const {
  std::uint64_t sum = 0;
  for (const NDetectFaultRecord& r : faults) sum += r.detections;
  return sum;
}

double NDetectReport::mean_cts_coverage() const {
  double sum = 0.0;
  std::size_t detectable = 0;
  for (const NDetectFaultRecord& r : faults) {
    if (!r.detectable) continue;
    sum += r.cts_coverage;
    ++detectable;
  }
  return detectable ? sum / static_cast<double>(detectable) : 0.0;
}

bool NDetectReport::complete() const {
  return faults_meeting_target() == faults.size();
}

NDetectAnalyzer::NDetectAnalyzer(const netlist::Circuit& circuit,
                                 std::vector<fault::StuckAtFault> faults,
                                 const NDetectOptions& options)
    : circuit_(&circuit),
      faults_(std::move(faults)),
      structure_(circuit),
      engine_(circuit, structure_, [&] {
        core::ParallelEngine::Options popt;
        popt.jobs = options.jobs;
        popt.bdd_node_limit = options.bdd_node_limit;
        popt.shared_forest = options.shared_forest;
        popt.shared_good = options.shared_good;
        return popt;
      }()) {
  analyses_ = engine_.analyze_all(faults_);
  const std::size_t n = circuit_->num_inputs();
  cts_sizes_.reserve(analyses_.size());
  for (const core::FaultAnalysis& a : analyses_) {
    cts_sizes_.push_back(a.detectable ? a.test_set.sat_count(n) : 0.0);
  }
  order_.resize(faults_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  std::stable_sort(order_.begin(), order_.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cts_sizes_[a] < cts_sizes_[b];
                   });
}

bool NDetectAnalyzer::detectable(std::size_t i) const {
  return analyses_.at(i).detectable;
}

double NDetectAnalyzer::cts_size(std::size_t i) const {
  return cts_sizes_.at(i);
}

std::uint64_t NDetectAnalyzer::quota(std::size_t i, std::size_t n) const {
  const double cts = cts_sizes_.at(i);
  if (!analyses_.at(i).detectable || cts <= 0.0) return 0;
  return static_cast<double>(n) <= cts ? static_cast<std::uint64_t>(n)
                                       : static_cast<std::uint64_t>(cts);
}

std::vector<std::uint64_t> NDetectAnalyzer::detection_counts(
    const std::vector<std::vector<bool>>& vectors) {
  std::vector<std::uint64_t> counts(faults_.size(), 0);
  const auto distinct = dedupe(vectors);
  if (distinct.empty() || faults_.empty()) return counts;

  const std::size_t n = circuit_->num_inputs();
  // One vector-set BDD per worker manager: the handful of managers the
  // engine sharded the faults across each host B(V) once, and every
  // resident fault intersects against its manager's copy.
  std::unordered_map<bdd::Manager*, bdd::Bdd> sets;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    bdd::Manager* m = analyses_[i].test_set.manager();
    auto it = sets.find(m);
    if (it == sets.end()) {
      it = sets.emplace(m, vector_set_bdd(*m, distinct)).first;
    }
    counts[i] = static_cast<std::uint64_t>(
        (analyses_[i].test_set & it->second).sat_count(n));
  }
  return counts;
}

std::size_t NDetectAnalyzer::top_up(std::vector<std::vector<bool>>& vectors,
                                    std::size_t n) {
  if (n == 0 || faults_.empty()) return 0;
  const std::size_t num_inputs = circuit_->num_inputs();
  auto distinct = dedupe(vectors);

  // B(V) per worker manager, kept current as vectors are minted so every
  // later fault's count and residual see the full working set.
  std::unordered_map<bdd::Manager*, bdd::Bdd> sets;
  auto set_for = [&](bdd::Manager* m) -> bdd::Bdd& {
    auto it = sets.find(m);
    if (it == sets.end()) {
      it = sets.emplace(m, vector_set_bdd(*m, distinct)).first;
    }
    return it->second;
  };

  std::size_t minted = 0;
  for (const std::size_t idx : order_) {
    const core::FaultAnalysis& a = analyses_[idx];
    const std::uint64_t target = quota(idx, n);
    if (target == 0) continue;
    bdd::Manager* m = a.test_set.manager();
    bdd::Bdd& used = set_for(m);
    std::uint64_t count = static_cast<std::uint64_t>(
        (a.test_set & used).sat_count(num_inputs));
    if (count >= target) continue;
    // Residual: vectors the CTS accepts that the set does not yet
    // contain. Its satcount is |CTS| - count > 0 while count < target,
    // so sat_one always has a cube to mint.
    bdd::Bdd residual = a.test_set & !used;
    while (count < target) {
      const std::vector<bool> v =
          vector_of_cube(residual.sat_one(), num_inputs);
      vectors.push_back(v);
      distinct.push_back(v);
      ++minted;
      ++count;
      for (auto& [manager, set] : sets) {
        set = set | minterm(*manager, v);
      }
      residual = residual & !minterm(*m, v);
    }
  }
  return minted;
}

NDetectReport NDetectAnalyzer::report(
    const std::vector<std::vector<bool>>& vectors, std::size_t n) {
  NDetectReport r;
  r.circuit = circuit_->name();
  r.n = n;
  r.num_inputs = circuit_->num_inputs();
  r.num_vectors = dedupe(vectors).size();
  const std::vector<std::uint64_t> counts = detection_counts(vectors);
  r.faults.reserve(faults_.size());
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    NDetectFaultRecord rec;
    rec.fault = faults_[i];
    rec.name = fault::describe(faults_[i], *circuit_);
    rec.detectable = analyses_[i].detectable;
    rec.cts_size = cts_sizes_[i];
    rec.detections = counts[i];
    rec.target = quota(i, n);
    rec.cts_coverage = rec.detectable && rec.cts_size > 0.0
                           ? static_cast<double>(rec.detections) / rec.cts_size
                           : 0.0;
    r.faults.push_back(std::move(rec));
  }
  return r;
}

NDetectReport analyze_ndetect(const netlist::Circuit& circuit,
                              const std::vector<fault::StuckAtFault>& faults,
                              const std::vector<std::vector<bool>>& vectors,
                              std::size_t n, const NDetectOptions& options) {
  NDetectAnalyzer analyzer(circuit, faults, options);
  return analyzer.report(vectors, n);
}

obs::JsonValue ndetect_report_to_json(const NDetectReport& report,
                                      const std::string& key) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = kNDetectSchema;
  doc["circuit"] = report.circuit;
  doc["n"] = report.n;
  doc["num_inputs"] = report.num_inputs;
  doc["vectors"] = report.num_vectors;
  doc["minted"] = report.minted_vectors;
  if (!key.empty()) doc["key"] = key;

  obs::JsonValue summary = obs::JsonValue::object();
  summary["faults"] = report.faults.size();
  summary["detectable"] = report.detectable_faults();
  summary["meeting_target"] = report.faults_meeting_target();
  summary["detections"] = report.total_detections();
  summary["mean_cts_coverage"] = report.mean_cts_coverage();
  summary["complete"] = report.complete();
  doc["summary"] = std::move(summary);

  obs::JsonValue faults = obs::JsonValue::array();
  for (const NDetectFaultRecord& r : report.faults) {
    obs::JsonValue rec = obs::JsonValue::object();
    rec["fault"] = r.name;
    rec["detectable"] = r.detectable;
    rec["cts_size"] = r.cts_size;
    rec["detections"] = r.detections;
    rec["target"] = r.target;
    rec["coverage"] = r.cts_coverage;
    faults.push_back(std::move(rec));
  }
  doc["faults"] = std::move(faults);
  return doc;
}

}  // namespace dp::analysis
