// Exact n-detection analytics over Difference Propagation test sets.
//
// DP yields every fault's COMPLETE test set (CTS) as a canonical BDD, so
// the questions modern test quality asks -- how many of my vectors detect
// each fault (n-detect, Pomeranz & Reddy), and how close a sampled test
// set gets to the complete one (Goldberg's approximation quality) -- have
// exact answers here instead of the simulation estimates everyone else
// settles for:
//
//   detections(f, V) = satcount(CTS_f ∧ B(V))     B(V) = OR of V's minterms
//   coverage(f, V)   = detections(f, V) / satcount(CTS_f)
//
// Both numerators and denominators are integer sat counts, so every
// cross-check against a simulator recount is an exact == comparison.
// A vector SET is what the algebra intersects: duplicate vectors in the
// input collapse into one minterm and are counted once.
//
// Top-up generation closes the loop: for each detectable fault below its
// quota min(n, |CTS_f|), witnesses are minted from the residual BDD
// CTS_f ∧ ¬B(V) -- vectors the fault still accepts and the set does not
// yet contain -- hardest (smallest CTS) fault first, so scarce vectors
// are placed before flexible ones and every minted vector is live for all
// later faults. The DP sweep itself runs once through the ParallelEngine
// (frozen good-function forest shared across workers by default); the
// analyzer keeps the engine alive so the test-set BDDs stay valid across
// any number of counting and top-up passes. Results are bit-identical
// for any worker count: the analyses are jobs-invariant and every count
// is a sat count of a canonical function.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dp/parallel_engine.hpp"
#include "fault/stuck_at.hpp"
#include "netlist/circuit.hpp"
#include "netlist/structure.hpp"
#include "obs/json.hpp"

namespace dp::analysis {

inline constexpr const char* kNDetectSchema = "dp.ndetect.v1";

struct NDetectOptions {
  /// Fault-parallel workers for the DP sweep; 0 = all hardware threads.
  std::size_t jobs = 1;
  std::size_t bdd_node_limit = 32u * 1024 * 1024;
  /// Share one frozen good-function forest across workers (the production
  /// default; off = per-worker rebuilds, the oracle's foil).
  bool shared_forest = true;
  /// Pre-built universe to adopt (serve's resident forest); must match
  /// the circuit. Ignored when shared_forest is false.
  std::shared_ptr<const core::SharedGoodFunctions> shared_good;
};

/// One fault's n-detect standing against a vector set.
struct NDetectFaultRecord {
  fault::StuckAtFault fault;
  /// describe(fault, circuit): stable human-readable identity, also the
  /// per-fault key in the dp.ndetect.v1 document.
  std::string name;
  bool detectable = false;
  /// |CTS|: exact satcount of the complete test set (integer in a double,
  /// exact up to 2^53).
  double cts_size = 0.0;
  /// Distinct vectors of the set inside the CTS -- the exact n-detect
  /// count.
  std::uint64_t detections = 0;
  /// min(n, |CTS|): the achievable quota for this fault.
  std::uint64_t target = 0;
  /// detections / |CTS| -- Goldberg's approximation quality, exact.
  double cts_coverage = 0.0;

  bool meets_target() const { return detections >= target; }
};

struct NDetectReport {
  std::string circuit;
  std::size_t n = 0;
  std::size_t num_inputs = 0;
  /// Distinct vectors analyzed (duplicates collapse).
  std::size_t num_vectors = 0;
  /// Vectors minted by top_up to reach the quota (0 for pure analysis).
  std::size_t minted_vectors = 0;
  std::vector<NDetectFaultRecord> faults;

  std::size_t detectable_faults() const;
  std::size_t faults_meeting_target() const;
  /// Sum of per-fault detection counts (the --summary total).
  std::uint64_t total_detections() const;
  /// Mean CTS coverage over detectable faults (0 when none).
  double mean_cts_coverage() const;
  /// Every detectable fault meets its quota.
  bool complete() const;
};

/// Runs the DP sweep once, then answers any number of counting / top-up
/// queries against the resident test-set forest. Not thread-safe: the
/// queries build vector-set BDDs inside the worker managers.
class NDetectAnalyzer {
 public:
  /// `circuit` must outlive the analyzer (the engine and structure hold
  /// references). The sweep runs in the constructor.
  NDetectAnalyzer(const netlist::Circuit& circuit,
                  std::vector<fault::StuckAtFault> faults,
                  const NDetectOptions& options = {});

  const netlist::Circuit& circuit() const { return *circuit_; }
  const std::vector<fault::StuckAtFault>& faults() const { return faults_; }
  std::size_t num_faults() const { return faults_.size(); }
  bool detectable(std::size_t i) const;
  double cts_size(std::size_t i) const;
  /// min(n, |CTS_i|); 0 for undetectable faults.
  std::uint64_t quota(std::size_t i, std::size_t n) const;

  /// Exact per-fault detection counts of the DISTINCT vectors in
  /// `vectors`: counts[i] = satcount(CTS_i ∧ B(vectors)).
  std::vector<std::uint64_t> detection_counts(
      const std::vector<std::vector<bool>>& vectors);

  /// Greedy top-up: appends minted vectors to `vectors` until every
  /// detectable fault reaches quota(i, n). Returns the number minted.
  /// Deterministic: hardest fault first, witnesses from the canonical
  /// residual's first satisfying cube (don't-cares filled with 0).
  std::size_t top_up(std::vector<std::vector<bool>>& vectors, std::size_t n);

  /// Full report of `vectors` against target `n` (no top-up; set
  /// minted_vectors yourself if you topped up beforehand).
  NDetectReport report(const std::vector<std::vector<bool>>& vectors,
                       std::size_t n);

  /// Stats of the constructor's DP sweep.
  const core::ParallelStats& stats() const { return engine_.stats(); }

 private:
  const netlist::Circuit* circuit_;
  std::vector<fault::StuckAtFault> faults_;
  netlist::Structure structure_;
  core::ParallelEngine engine_;
  std::vector<core::FaultAnalysis> analyses_;
  std::vector<double> cts_sizes_;
  /// Fault indices sorted hardest (smallest CTS) first; ties by index.
  std::vector<std::size_t> order_;
};

/// One-shot analysis (no top-up): sweep + report(vectors, n).
NDetectReport analyze_ndetect(const netlist::Circuit& circuit,
                              const std::vector<fault::StuckAtFault>& faults,
                              const std::vector<std::vector<bool>>& vectors,
                              std::size_t n,
                              const NDetectOptions& options = {});

/// The dp.ndetect.v1 document. Excludes run observations (engine stats),
/// so serialized reports are byte-identical for any worker count --
/// the contract tests/serve_test.cpp pins for the served `ndetect`
/// request. `key` (the profile-cache / store key) is recorded when
/// non-empty.
obs::JsonValue ndetect_report_to_json(const NDetectReport& report,
                                      const std::string& key = "");

}  // namespace dp::analysis
