#include "dp/ordering.hpp"

#include <algorithm>
#include <numeric>
#include <random>

namespace dp::core {

using netlist::Circuit;
using netlist::NetId;

std::vector<std::size_t> compute_variable_order(const Circuit& circuit,
                                                VarOrderKind kind,
                                                std::uint64_t seed) {
  const std::size_t n = circuit.num_inputs();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  switch (kind) {
    case VarOrderKind::PiOrder:
      return order;
    case VarOrderKind::Reverse:
      std::reverse(order.begin(), order.end());
      return order;
    case VarOrderKind::Random: {
      std::mt19937_64 rng(seed);
      std::shuffle(order.begin(), order.end(), rng);
      return order;
    }
    case VarOrderKind::FaninDfs:
      break;
  }

  // Fanin DFS: walk each PO cone depth-first; a PI gets the next variable
  // id the first time it is reached. PIs never reached keep their relative
  // stated order at the tail.
  std::vector<bool> visited(circuit.num_nets(), false);
  std::size_t next_var = 0;
  std::vector<std::size_t> assigned(n, SIZE_MAX);
  std::vector<NetId> stack;
  for (NetId po : circuit.outputs()) {
    stack.push_back(po);
    while (!stack.empty()) {
      const NetId id = stack.back();
      stack.pop_back();
      if (visited[id]) continue;
      visited[id] = true;
      if (circuit.type(id) == netlist::GateType::Input) {
        const std::size_t pi = *circuit.input_index(id);
        assigned[pi] = next_var++;
        continue;
      }
      const auto& fi = circuit.fanins(id);
      // Push in reverse so the first-listed fanin is explored first.
      for (auto it = fi.rbegin(); it != fi.rend(); ++it) {
        if (!visited[*it]) stack.push_back(*it);
      }
    }
  }
  for (std::size_t pi = 0; pi < n; ++pi) {
    if (assigned[pi] == SIZE_MAX) assigned[pi] = next_var++;
  }
  return assigned;
}

}  // namespace dp::core
