#include "dp/symbolic_sim.hpp"

#include <algorithm>

namespace dp::core {

using netlist::GateType;
using netlist::NetId;

SymbolicFaultSimulator::SymbolicFaultSimulator(
    const GoodFunctions& good, const netlist::Structure& structure)
    : good_(good), structure_(structure) {}

PropagationStats SymbolicFaultSimulator::propagate(
    std::vector<bdd::Bdd>& faulty, const PinSeed* pin_seed) const {
  const netlist::Circuit& c = good_.circuit();
  bdd::Manager& mgr = good_.manager();
  PropagationStats st;

  for (NetId id : c.topo_order()) {
    const GateType t = c.type(id);
    if (t == GateType::Input || netlist::is_constant(t)) continue;
    const auto& fi = c.fanins(id);

    const bool seeded_here = pin_seed && pin_seed->gate == id;
    bool in_cone = seeded_here;
    if (!in_cone) {
      in_cone = std::any_of(fi.begin(), fi.end(),
                            [&](NetId f) { return faulty[f].valid(); });
    }
    if (!in_cone) continue;

    std::vector<bdd::Bdd> inputs;
    inputs.reserve(fi.size());
    for (std::uint32_t pin = 0; pin < fi.size(); ++pin) {
      if (seeded_here && pin_seed->pin == pin) {
        inputs.push_back(pin_seed->value);
      } else if (faulty[fi[pin]].valid()) {
        inputs.push_back(faulty[fi[pin]]);
      } else {
        inputs.push_back(good_.at(fi[pin]));
      }
    }
    bdd::Bdd result = build_gate_function(mgr, t, inputs);
    ++st.gates_evaluated;
    // Canonicity: a cone gate whose faulty function collapses back to the
    // good one stops the trace here (F == f is a pointer comparison).
    if (result != good_.at(id)) faulty[id] = std::move(result);
  }
  st.gates_skipped = c.num_gates() - st.gates_evaluated;
  return st;
}

FaultAnalysis SymbolicFaultSimulator::finish(
    const std::vector<bdd::Bdd>& faulty,
    const std::vector<NetId>& site_nets, double upper_bound,
    PropagationStats stats) const {
  const netlist::Circuit& c = good_.circuit();
  bdd::Manager& mgr = good_.manager();

  FaultAnalysis out;
  out.stats = stats;
  out.upper_bound = upper_bound;
  out.test_set = mgr.zero();
  out.po_observable.assign(c.num_outputs(), false);
  for (std::size_t i = 0; i < c.num_outputs(); ++i) {
    const NetId po = c.outputs()[i];
    if (!faulty[po].valid()) continue;
    const bdd::Bdd diff = good_.at(po) ^ faulty[po];
    if (diff.is_zero()) continue;
    out.po_observable[i] = true;
    ++out.pos_observable;
    out.test_set = out.test_set | diff;
  }
  out.detectable = !out.test_set.is_zero();
  out.detectability = out.test_set.density(good_.num_vars());
  out.adherence = upper_bound > 0.0
                      ? std::clamp(out.detectability / upper_bound, 0.0, 1.0)
                      : 0.0;
  for (std::size_t i = 0; i < c.num_outputs(); ++i) {
    for (NetId site : site_nets) {
      if (structure_.po_reachable(site, i)) {
        ++out.pos_fed;
        break;
      }
    }
  }
  return out;
}

FaultAnalysis SymbolicFaultSimulator::analyze(
    const fault::StuckAtFault& fault) const {
  const netlist::Circuit& c = good_.circuit();
  bdd::Manager& mgr = good_.manager();
  std::vector<bdd::Bdd> faulty(c.num_nets());

  const bdd::Bdd forced = fault.stuck_value ? mgr.one() : mgr.zero();
  const double syn = good_.syndrome(fault.net);
  const double upper = fault.stuck_value ? 1.0 - syn : syn;

  PropagationStats st;
  if (fault.branch) {
    PinSeed pin{fault.branch->gate, fault.branch->pin, forced};
    st = propagate(faulty, &pin);
  } else {
    if (good_.at(fault.net) != forced) faulty[fault.net] = forced;
    st = propagate(faulty, nullptr);
  }
  // pos_fed is measured from the checkpoint line's stem (see engine.cpp).
  return finish(faulty, {fault.net}, upper, st);
}

SymbolicFaultSimulator::SyndromeTest SymbolicFaultSimulator::syndrome_test(
    const fault::StuckAtFault& fault) const {
  const netlist::Circuit& c = good_.circuit();
  bdd::Manager& mgr = good_.manager();
  std::vector<bdd::Bdd> faulty(c.num_nets());

  const bdd::Bdd forced = fault.stuck_value ? mgr.one() : mgr.zero();
  if (fault.branch) {
    PinSeed pin{fault.branch->gate, fault.branch->pin, forced};
    propagate(faulty, &pin);
  } else {
    if (good_.at(fault.net) != forced) faulty[fault.net] = forced;
    propagate(faulty, nullptr);
  }

  SyndromeTest out;
  for (netlist::NetId po : c.outputs()) {
    const double good_syn = good_.syndrome(po);
    const double faulty_syn = faulty[po].valid()
                                  ? faulty[po].density(good_.num_vars())
                                  : good_syn;
    out.good_syndromes.push_back(good_syn);
    out.faulty_syndromes.push_back(faulty_syn);
    if (good_syn != faulty_syn) out.syndrome_detectable = true;
  }
  return out;
}

FaultAnalysis SymbolicFaultSimulator::analyze(
    const fault::BridgingFault& fault) const {
  const netlist::Circuit& c = good_.circuit();
  std::vector<bdd::Bdd> faulty(c.num_nets());

  const bdd::Bdd& fa = good_.at(fault.a);
  const bdd::Bdd& fb = good_.at(fault.b);
  // Non-feedback: the driven values are the good functions, so both wires
  // carry the wired combination of the good functions.
  const bdd::Bdd wired =
      fault.type == fault::BridgeType::And ? (fa & fb) : (fa | fb);
  if (wired != fa) faulty[fault.a] = wired;
  if (wired != fb) faulty[fault.b] = wired;

  const double upper = (fa ^ fb).density(good_.num_vars());

  PropagationStats st = propagate(faulty, nullptr);
  FaultAnalysis out = finish(faulty, {fault.a, fault.b}, upper, st);
  out.bridge_stuck_at = wired.is_constant();
  return out;
}

}  // namespace dp::core
