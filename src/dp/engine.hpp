// The Difference Propagation engine (paper §3).
//
// Given the good functions of a circuit, the engine injects a fault's
// initial difference function(s) at the fault site and propagates
// differences toward the POs in topological order, evaluating a gate only
// while difference information exists ("selective trace"). The OR of the
// PO differences IS the complete test set of the fault; from it and the
// line syndromes come the exact detectability, the excitation upper bound,
// and the adherence (paper §4.1, eq. 3).
#pragma once

#include <cstdint>
#include <vector>

#include "bdd/bdd.hpp"
#include "dp/good_functions.hpp"
#include "fault/bridging.hpp"
#include "fault/multiple.hpp"
#include "fault/stuck_at.hpp"
#include "netlist/structure.hpp"
#include "obs/trace.hpp"

namespace dp::core {

struct PropagationStats {
  std::uint64_t gates_evaluated = 0;  ///< gates whose difference was computed
  std::uint64_t gates_skipped = 0;    ///< gates skipped (no input difference)
};

/// Everything the paper derives per fault.
struct FaultAnalysis {
  bdd::Bdd test_set;          ///< complete test set over the PI variables
  bool detectable = false;
  double detectability = 0.0; ///< |test set| / 2^n (exact)
  double upper_bound = 0.0;   ///< excitation bound u_i (syndrome-derived)
  double adherence = 0.0;     ///< a_i = detectability / u_i; 0 when u_i = 0

  std::vector<bool> po_observable;  ///< per PO: difference not identically 0
  /// Per-PO difference functions (invalid handle == identically zero);
  /// the fault dictionary machinery evaluates these per test vector.
  std::vector<bdd::Bdd> po_differences;
  std::size_t pos_observable = 0;
  /// POs structurally fed by the faulted line's stem (for a branch fault
  /// this is the fanout stem, not the fed gate's output).
  std::size_t pos_fed = 0;

  /// Bridging only: the wired (faulty) site function is constant, i.e. the
  /// bridge is functionally a double stuck-at fault (paper §4.2).
  bool bridge_stuck_at = false;

  PropagationStats stats;
};

class DifferencePropagator {
 public:
  struct Options {
    /// When false, every gate in the circuit is evaluated for every fault
    /// (the ablation baseline for the selective-trace optimization).
    bool selective_trace = true;
    /// When set, every analyze() call records one TraceKind::Fault event
    /// (gates evaluated/skipped, seed sites, POs observable). The buffer
    /// is thread-safe, so parallel workers may share one instance. Not
    /// owned; must outlive the propagator.
    obs::TraceBuffer* trace = nullptr;
  };

  DifferencePropagator(const GoodFunctions& good,
                       const netlist::Structure& structure)
      : DifferencePropagator(good, structure, Options{}) {}
  DifferencePropagator(const GoodFunctions& good,
                       const netlist::Structure& structure, Options options);

  FaultAnalysis analyze(const fault::StuckAtFault& fault) const;
  FaultAnalysis analyze(const fault::BridgingFault& fault) const;
  /// Multiple stuck-at faults: every component forces its line at once.
  /// A forced line clips any difference arriving from upstream components
  /// (the line's value is pinned, so its difference is always f XOR v).
  FaultAnalysis analyze(const fault::MultipleStuckAtFault& fault) const;

  const GoodFunctions& good() const { return good_; }

 private:
  /// One per-gate pin-difference override (branch-fault seeding).
  struct PinSeed {
    netlist::NetId gate = netlist::kInvalidNet;
    std::uint32_t pin = 0;
    bdd::Bdd diff;
  };
  /// One forced stem difference (the line's difference is pinned to
  /// `diff` no matter what arrives from upstream).
  struct NetSeed {
    netlist::NetId net = netlist::kInvalidNet;
    bdd::Bdd diff;
  };

  /// Core sweep: seeds are net-level differences (`diff` indexed by net,
  /// invalid == zero) plus an optional pin override; returns stats.
  PropagationStats propagate(std::vector<bdd::Bdd>& diff,
                             const PinSeed* pin_seed) const;

  /// Generalized sweep for multiple faults: any number of pin and stem
  /// overrides applied simultaneously.
  PropagationStats propagate_multi(std::vector<bdd::Bdd>& diff,
                                   const std::vector<PinSeed>& pins,
                                   const std::vector<NetSeed>& nets) const;

  FaultAnalysis finish(std::vector<bdd::Bdd>& diff,
                       const std::vector<netlist::NetId>& site_nets,
                       double upper_bound, PropagationStats stats) const;

  /// Records one TraceKind::Fault event when options_.trace is set
  /// (no-op otherwise). `seed_sites` = number of Δ-seed injection sites.
  void trace_fault(std::string label, std::size_t seed_sites,
                   const FaultAnalysis& out) const;

  const GoodFunctions& good_;
  const netlist::Structure& structure_;
  Options options_;
};

}  // namespace dp::core
