// Static OBDD variable-ordering heuristics.
//
// The paper keeps the benchmark's stated PI order as the variable order,
// noting that "our work with variable ordering in OBDDs indicates that
// this assumption is probably valid" (§2.2). This module makes that claim
// testable: it provides the identity order, a pessimistic reversal, a
// random shuffle, and the classic fanin-DFS heuristic (depth-first from
// the POs, recording PIs in first-visit order), so BDD sizes under each
// can be compared (bench/obs_variable_order).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"

namespace dp::core {

enum class VarOrderKind {
  PiOrder,   ///< the netlist's stated PI order (the paper's choice)
  Reverse,   ///< stated order reversed
  FaninDfs,  ///< DFS from the POs, PIs ordered by first visit
  Random,    ///< seeded shuffle (pessimistic baseline)
};

/// Returns a permutation `order` with order[pi_index] = BDD variable id.
std::vector<std::size_t> compute_variable_order(
    const netlist::Circuit& circuit, VarOrderKind kind,
    std::uint64_t seed = 1990);

}  // namespace dp::core
