#include "dp/good_functions.hpp"

#include <chrono>
#include <numeric>

namespace dp::core {

using netlist::GateType;

bdd::Bdd build_gate_function(bdd::Manager& manager, GateType type,
                             const std::vector<bdd::Bdd>& fanins) {
  switch (type) {
    case GateType::Const0: return manager.zero();
    case GateType::Const1: return manager.one();
    case GateType::Input:
      throw netlist::NetlistError("build_gate_function: PI has no gate");
    default: break;
  }
  if (fanins.empty()) {
    throw netlist::NetlistError("build_gate_function: gate with no fanins");
  }
  bdd::Bdd acc = fanins[0];
  const GateType base = netlist::base_of(type);
  for (std::size_t i = 1; i < fanins.size(); ++i) {
    switch (base) {
      case GateType::And: acc = acc & fanins[i]; break;
      case GateType::Or: acc = acc | fanins[i]; break;
      case GateType::Xor: acc = acc ^ fanins[i]; break;
      case GateType::Buf: break;  // single-input; loop never runs
      default:
        throw netlist::NetlistError("build_gate_function: unexpected type");
    }
  }
  if (netlist::is_inverting(type)) acc = !acc;
  return acc;
}

GoodFunctions::GoodFunctions(bdd::Manager& manager, const Circuit& circuit)
    : GoodFunctions(manager, circuit, GoodFunctionOptions{}) {}

GoodFunctions::GoodFunctions(bdd::Manager& manager, const Circuit& circuit,
                             const GoodFunctionOptions& options)
    : manager_(manager), circuit_(circuit) {
  if (!circuit.finalized()) {
    throw netlist::NetlistError("GoodFunctions: circuit must be finalized");
  }
  if (manager.num_vars() != 0) {
    throw bdd::BddError("GoodFunctions: manager must start with no variables");
  }

  const std::size_t n = circuit.num_inputs();
  order_ = options.variable_order;
  if (order_.empty()) {
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0);
  }
  if (order_.size() != n) {
    throw bdd::BddError("GoodFunctions: variable order size != #PIs");
  }
  std::vector<bool> seen(n, false);
  for (std::size_t v : order_) {
    if (v >= n || seen[v]) {
      throw bdd::BddError("GoodFunctions: variable order is not a permutation");
    }
    seen[v] = true;
  }
  for (std::size_t i = 0; i < n; ++i) manager.new_var();

  functions_.assign(circuit.num_nets(), bdd::Bdd{});
  for (std::size_t i = 0; i < n; ++i) {
    functions_[circuit.inputs()[i]] =
        manager.var(static_cast<bdd::Var>(order_[i]));
  }
  for (NetId id : circuit.topo_order()) {
    if (circuit.type(id) == GateType::Input) continue;
    std::vector<bdd::Bdd> fi;
    fi.reserve(circuit.fanins(id).size());
    for (NetId f : circuit.fanins(id)) fi.push_back(functions_[f]);
    bdd::Bdd built = build_gate_function(manager, circuit.type(id), fi);
    if (options.cut_threshold > 0 &&
        built.dag_size() > options.cut_threshold) {
      // Functional decomposition: downstream logic sees a free variable
      // in place of this net's (too large) function.
      const bdd::Var cut = manager.new_var();
      built = manager.var(cut);
      cut_nets_.push_back(id);
    }
    functions_[id] = std::move(built);
  }
}

GoodFunctions::GoodFunctions(bdd::Manager& manager, const Circuit& circuit,
                             const SharedGoodFunctions& shared)
    : manager_(manager), circuit_(circuit) {
  if (!circuit.finalized()) {
    throw netlist::NetlistError("GoodFunctions: circuit must be finalized");
  }
  if (manager.frozen_forest().get() != shared.forest().get()) {
    throw bdd::BddError(
        "GoodFunctions: manager does not adopt the shared forest");
  }
  if (shared.roots().size() != circuit.num_nets()) {
    throw bdd::BddError(
        "GoodFunctions: shared forest built from a different circuit");
  }
  order_ = shared.order();
  cut_nets_ = shared.cut_nets();
  functions_.reserve(shared.roots().size());
  // Frozen handles are immortal, so make() costs nothing beyond the wrap.
  for (bdd::NodeIndex root : shared.roots()) {
    functions_.push_back(manager.make(root));
  }
}

std::size_t GoodFunctions::total_nodes() const {
  std::size_t total = 0;
  for (const bdd::Bdd& f : functions_) total += f.dag_size();
  return total;
}

SharedGoodFunctions::SharedGoodFunctions(const Circuit& circuit,
                                         const GoodFunctionOptions& options,
                                         std::size_t max_nodes) {
  const auto start = std::chrono::steady_clock::now();
  // The scaffold manager exists only for the build; freeze() packs the
  // reachable cone and everything else is dropped with the manager.
  bdd::Manager scaffold(0, max_nodes);
  GoodFunctions good(scaffold, circuit, options);
  std::vector<bdd::NodeIndex> build_roots;
  build_roots.reserve(circuit.num_nets());
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    build_roots.push_back(good.at(id).index());
  }
  forest_ = scaffold.freeze(build_roots, &roots_);
  order_ = std::vector<std::size_t>(good.circuit().num_inputs());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    order_[i] = good.var_of_input(i);
  }
  cut_nets_ = good.cut_nets();
  num_vars_ = good.num_vars();
  build_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

}  // namespace dp::core
