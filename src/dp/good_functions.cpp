#include "dp/good_functions.hpp"

#include <numeric>

namespace dp::core {

using netlist::GateType;

bdd::Bdd build_gate_function(bdd::Manager& manager, GateType type,
                             const std::vector<bdd::Bdd>& fanins) {
  switch (type) {
    case GateType::Const0: return manager.zero();
    case GateType::Const1: return manager.one();
    case GateType::Input:
      throw netlist::NetlistError("build_gate_function: PI has no gate");
    default: break;
  }
  if (fanins.empty()) {
    throw netlist::NetlistError("build_gate_function: gate with no fanins");
  }
  bdd::Bdd acc = fanins[0];
  const GateType base = netlist::base_of(type);
  for (std::size_t i = 1; i < fanins.size(); ++i) {
    switch (base) {
      case GateType::And: acc = acc & fanins[i]; break;
      case GateType::Or: acc = acc | fanins[i]; break;
      case GateType::Xor: acc = acc ^ fanins[i]; break;
      case GateType::Buf: break;  // single-input; loop never runs
      default:
        throw netlist::NetlistError("build_gate_function: unexpected type");
    }
  }
  if (netlist::is_inverting(type)) acc = !acc;
  return acc;
}

GoodFunctions::GoodFunctions(bdd::Manager& manager, const Circuit& circuit)
    : GoodFunctions(manager, circuit, GoodFunctionOptions{}) {}

GoodFunctions::GoodFunctions(bdd::Manager& manager, const Circuit& circuit,
                             const GoodFunctionOptions& options)
    : manager_(manager), circuit_(circuit) {
  if (!circuit.finalized()) {
    throw netlist::NetlistError("GoodFunctions: circuit must be finalized");
  }
  if (manager.num_vars() != 0) {
    throw bdd::BddError("GoodFunctions: manager must start with no variables");
  }

  const std::size_t n = circuit.num_inputs();
  order_ = options.variable_order;
  if (order_.empty()) {
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0);
  }
  if (order_.size() != n) {
    throw bdd::BddError("GoodFunctions: variable order size != #PIs");
  }
  std::vector<bool> seen(n, false);
  for (std::size_t v : order_) {
    if (v >= n || seen[v]) {
      throw bdd::BddError("GoodFunctions: variable order is not a permutation");
    }
    seen[v] = true;
  }
  for (std::size_t i = 0; i < n; ++i) manager.new_var();

  functions_.assign(circuit.num_nets(), bdd::Bdd{});
  for (std::size_t i = 0; i < n; ++i) {
    functions_[circuit.inputs()[i]] =
        manager.var(static_cast<bdd::Var>(order_[i]));
  }
  for (NetId id : circuit.topo_order()) {
    if (circuit.type(id) == GateType::Input) continue;
    std::vector<bdd::Bdd> fi;
    fi.reserve(circuit.fanins(id).size());
    for (NetId f : circuit.fanins(id)) fi.push_back(functions_[f]);
    bdd::Bdd built = build_gate_function(manager, circuit.type(id), fi);
    if (options.cut_threshold > 0 &&
        built.dag_size() > options.cut_threshold) {
      // Functional decomposition: downstream logic sees a free variable
      // in place of this net's (too large) function.
      const bdd::Var cut = manager.new_var();
      built = manager.var(cut);
      cut_nets_.push_back(id);
    }
    functions_[id] = std::move(built);
  }
}

std::size_t GoodFunctions::total_nodes() const {
  std::size_t total = 0;
  for (const bdd::Bdd& f : functions_) total += f.dag_size();
  return total;
}

}  // namespace dp::core
