#include "dp/engine.hpp"

#include <algorithm>

#include "dp/difference.hpp"

namespace dp::core {

using netlist::GateType;
using netlist::NetId;

DifferencePropagator::DifferencePropagator(const GoodFunctions& good,
                                           const netlist::Structure& structure,
                                           Options options)
    : good_(good), structure_(structure), options_(options) {}

void DifferencePropagator::trace_fault(std::string label,
                                       std::size_t seed_sites,
                                       const FaultAnalysis& out) const {
  if (!options_.trace) return;
  options_.trace->record(obs::TraceKind::Fault, std::move(label),
                         static_cast<std::int64_t>(out.stats.gates_evaluated),
                         static_cast<std::int64_t>(out.stats.gates_skipped),
                         static_cast<std::int64_t>(seed_sites),
                         static_cast<std::int64_t>(out.pos_observable));
}

PropagationStats DifferencePropagator::propagate(std::vector<bdd::Bdd>& diff,
                                                 const PinSeed* pin_seed) const {
  const Circuit& c = good_.circuit();
  bdd::Manager& mgr = good_.manager();
  PropagationStats st;

  for (NetId id : c.topo_order()) {
    const GateType t = c.type(id);
    if (t == GateType::Input || netlist::is_constant(t)) continue;
    const auto& fi = c.fanins(id);

    const bool seeded_here = pin_seed && pin_seed->gate == id;
    // A zero-valued seed is no difference at all: an unexcitable fault must
    // not defeat selective trace and drag the whole downstream cone through
    // gate_difference.
    bool has_diff = seeded_here && !pin_seed->diff.is_zero();
    if (!has_diff) {
      for (NetId f : fi) {
        if (diff[f].valid()) {
          has_diff = true;
          break;
        }
      }
    }
    if (!has_diff && options_.selective_trace) {
      ++st.gates_skipped;
      continue;
    }

    std::vector<bdd::Bdd> goods, diffs;
    goods.reserve(fi.size());
    diffs.reserve(fi.size());
    for (std::uint32_t i = 0; i < fi.size(); ++i) {
      goods.push_back(good_.at(fi[i]));
      if (seeded_here && pin_seed->pin == i) {
        diffs.push_back(pin_seed->diff);
      } else {
        diffs.push_back(diff[fi[i]].valid() ? diff[fi[i]] : mgr.zero());
      }
    }
    bdd::Bdd result = gate_difference(mgr, t, goods, diffs);
    ++st.gates_evaluated;
    if (!result.is_zero()) diff[id] = std::move(result);
  }
  return st;
}

PropagationStats DifferencePropagator::propagate_multi(
    std::vector<bdd::Bdd>& diff, const std::vector<PinSeed>& pins,
    const std::vector<NetSeed>& nets) const {
  const Circuit& c = good_.circuit();
  bdd::Manager& mgr = good_.manager();
  PropagationStats st;

  // Index the overrides for O(1) lookup during the sweep.
  std::vector<const bdd::Bdd*> net_override(c.num_nets(), nullptr);
  for (const NetSeed& seed : nets) net_override[seed.net] = &seed.diff;
  std::vector<std::vector<const PinSeed*>> pin_override(c.num_nets());
  for (const PinSeed& seed : pins) pin_override[seed.gate].push_back(&seed);

  // Forced PI stems take effect before the sweep.
  for (const NetSeed& seed : nets) {
    if (c.type(seed.net) == GateType::Input && !seed.diff.is_zero()) {
      diff[seed.net] = seed.diff;
    }
  }

  for (NetId id : c.topo_order()) {
    const GateType t = c.type(id);
    if (t == GateType::Input || netlist::is_constant(t)) continue;

    // A forced stem never needs its gate evaluated: its difference is
    // pinned regardless of what the gate would produce.
    if (net_override[id]) {
      if (!net_override[id]->is_zero()) diff[id] = *net_override[id];
      ++st.gates_skipped;
      continue;
    }

    const auto& fi = c.fanins(id);
    const auto& pin_seeds = pin_override[id];
    auto pin_seed_at = [&](std::uint32_t pin) -> const PinSeed* {
      for (const PinSeed* p : pin_seeds) {
        if (p->pin == pin) return p;
      }
      return nullptr;
    };

    bool has_diff = false;
    for (std::uint32_t pin = 0; pin < fi.size() && !has_diff; ++pin) {
      const PinSeed* p = pin_seed_at(pin);
      has_diff = p ? !p->diff.is_zero() : diff[fi[pin]].valid();
    }
    if (!has_diff && options_.selective_trace) {
      ++st.gates_skipped;
      continue;
    }

    std::vector<bdd::Bdd> goods, diffs;
    goods.reserve(fi.size());
    diffs.reserve(fi.size());
    for (std::uint32_t pin = 0; pin < fi.size(); ++pin) {
      goods.push_back(good_.at(fi[pin]));
      const PinSeed* p = pin_seed_at(pin);
      if (p) {
        diffs.push_back(p->diff);
      } else {
        diffs.push_back(diff[fi[pin]].valid() ? diff[fi[pin]] : mgr.zero());
      }
    }
    bdd::Bdd result = gate_difference(mgr, t, goods, diffs);
    ++st.gates_evaluated;
    if (!result.is_zero()) diff[id] = std::move(result);
  }
  return st;
}

FaultAnalysis DifferencePropagator::analyze(
    const fault::MultipleStuckAtFault& fault) const {
  obs::ScopedSpan span(obs::SpanCollector::current(), "dp.fault");
  if (fault.components.empty()) {
    throw netlist::NetlistError("analyze: multiple fault with no components");
  }
  for (std::size_t i = 0; i < fault.components.size(); ++i) {
    for (std::size_t j = i + 1; j < fault.components.size(); ++j) {
      if (fault::same_line(fault.components[i], fault.components[j])) {
        throw netlist::NetlistError(
            "analyze: multiple fault components share a line");
      }
    }
  }

  const Circuit& c = good_.circuit();
  bdd::Manager& mgr = good_.manager();
  std::vector<bdd::Bdd> diff(c.num_nets());

  std::vector<PinSeed> pins;
  std::vector<NetSeed> nets;
  std::vector<NetId> site_nets;
  bdd::Bdd excitation = mgr.zero();
  for (const fault::StuckAtFault& f : fault.components) {
    const bdd::Bdd& f_site = good_.at(f.net);
    bdd::Bdd seed = f.stuck_value ? !f_site : f_site;
    excitation = excitation | seed;
    if (f.branch) {
      pins.push_back(PinSeed{f.branch->gate, f.branch->pin, std::move(seed)});
      site_nets.push_back(f.net);
    } else {
      nets.push_back(NetSeed{f.net, std::move(seed)});
      site_nets.push_back(f.net);
    }
  }

  // Excitation (some line differing) is necessary for detection, so its
  // density upper-bounds the detectability exactly as for single faults.
  const double upper = excitation.density(good_.num_vars());

  PropagationStats st = propagate_multi(diff, pins, nets);
  FaultAnalysis out = finish(diff, site_nets, upper, st);
  trace_fault(fault::describe(fault, c), site_nets.size(), out);
  if (span.enabled()) {
    span.attr("site", fault::describe(fault, c));
    int po_distance = 0;
    for (const NetId net : site_nets) {
      po_distance = std::max(po_distance, structure_.max_levels_to_po(net));
    }
    span.attr("po_distance", po_distance);
    span.attr("gates_evaluated", out.stats.gates_evaluated);
    span.attr("gates_skipped", out.stats.gates_skipped);
    span.attr("detectable", out.detectable ? 1 : 0);
  }
  return out;
}

FaultAnalysis DifferencePropagator::finish(
    std::vector<bdd::Bdd>& diff, const std::vector<NetId>& site_nets,
    double upper_bound, PropagationStats stats) const {
  const Circuit& c = good_.circuit();
  bdd::Manager& mgr = good_.manager();
  FaultAnalysis out;
  out.stats = stats;
  out.upper_bound = upper_bound;

  out.test_set = mgr.zero();
  out.po_observable.assign(c.num_outputs(), false);
  out.po_differences.resize(c.num_outputs());
  for (std::size_t i = 0; i < c.num_outputs(); ++i) {
    const bdd::Bdd& d = diff[c.outputs()[i]];
    if (d.valid() && !d.is_zero()) {
      out.po_observable[i] = true;
      out.po_differences[i] = d;
      ++out.pos_observable;
      out.test_set = out.test_set | d;
    }
  }
  out.detectable = !out.test_set.is_zero();
  out.detectability = out.test_set.density(good_.num_vars());
  out.adherence =
      upper_bound > 0.0
          ? std::clamp(out.detectability / upper_bound, 0.0, 1.0)
          : 0.0;

  for (std::size_t i = 0; i < c.num_outputs(); ++i) {
    for (NetId site : site_nets) {
      if (structure_.po_reachable(site, i)) {
        ++out.pos_fed;
        break;
      }
    }
  }
  return out;
}

FaultAnalysis DifferencePropagator::analyze(
    const fault::StuckAtFault& fault) const {
  obs::ScopedSpan span(obs::SpanCollector::current(), "dp.fault");
  const Circuit& c = good_.circuit();
  std::vector<bdd::Bdd> diff(c.num_nets());

  const bdd::Bdd& f_site = good_.at(fault.net);
  // Delta = f XOR v : the inputs on which the forced value differs.
  bdd::Bdd seed = fault.stuck_value ? !f_site : f_site;

  const double syn = good_.syndrome(fault.net);
  const double upper = fault.stuck_value ? 1.0 - syn : syn;

  PropagationStats st;
  if (fault.branch) {
    PinSeed pin{fault.branch->gate, fault.branch->pin, seed};
    st = propagate(diff, &pin);
  } else {
    if (!seed.is_zero()) diff[fault.net] = seed;
    st = propagate(diff, nullptr);
  }
  // PO reachability is measured from the checkpoint line's stem: a branch
  // fault lives on the fanout branch of `fault.net`, not on the fed gate's
  // output, so pos_fed counts the POs the stem feeds.
  FaultAnalysis out = finish(diff, {fault.net}, upper, st);
  trace_fault(fault::describe(fault, c), 1, out);
  if (span.enabled()) {
    span.attr("site", fault::describe(fault, c));
    span.attr("branch", fault.branch ? 1 : 0);
    span.attr("po_distance", structure_.max_levels_to_po(fault.net));
    span.attr("gates_evaluated", out.stats.gates_evaluated);
    span.attr("gates_skipped", out.stats.gates_skipped);
    span.attr("detectable", out.detectable ? 1 : 0);
  }
  return out;
}

FaultAnalysis DifferencePropagator::analyze(
    const fault::BridgingFault& fault) const {
  obs::ScopedSpan span(obs::SpanCollector::current(), "dp.fault");
  const Circuit& c = good_.circuit();
  bdd::Manager& mgr = good_.manager();
  std::vector<bdd::Bdd> diff(c.num_nets());

  const bdd::Bdd& fa = good_.at(fault.a);
  const bdd::Bdd& fb = good_.at(fault.b);
  const bdd::Bdd wired =
      fault.type == fault::BridgeType::And ? (fa & fb) : (fa | fb);

  // Both wires take the wired value; their differences seed together.
  bdd::Bdd da = fa ^ wired;
  bdd::Bdd db = fb ^ wired;
  if (!da.is_zero()) diff[fault.a] = da;
  if (!db.is_zero()) diff[fault.b] = db;

  // Excitation bound: the bridge disturbs some wire iff the wires disagree.
  const double upper = (fa ^ fb).density(good_.num_vars());

  PropagationStats st = propagate(diff, nullptr);
  FaultAnalysis out = finish(diff, {fault.a, fault.b}, upper, st);
  out.bridge_stuck_at = wired.is_constant();
  trace_fault(fault::describe(fault, c), 2, out);
  if (span.enabled()) {
    span.attr("site", fault::describe(fault, c));
    span.attr("po_distance", std::max(structure_.max_levels_to_po(fault.a),
                                      structure_.max_levels_to_po(fault.b)));
    span.attr("gates_evaluated", out.stats.gates_evaluated);
    span.attr("gates_skipped", out.stats.gates_skipped);
    span.attr("detectable", out.detectable ? 1 : 0);
  }
  (void)mgr;
  return out;
}

}  // namespace dp::core
