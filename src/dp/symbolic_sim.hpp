// Symbolic fault simulation (Cho & Bryant, DAC 1989) -- the second method
// the paper relates Difference Propagation to: "it can be seen to be
// similar in approach to the symbolic fault simulation system developed by
// Cho and Bryant [16]".
//
// Instead of propagating difference functions, the FAULTY function F of
// every net in the fault's cone is propagated directly (F = f outside the
// cone, by canonicity a pointer comparison), and the complete test set is
// recovered at the outputs as OR over POs of (f_po XOR F_po). Results are
// bit-identical to Difference Propagation; the cost profile differs (one
// gate evaluation per cone gate, but PO-sized XORs at the end).
#pragma once

#include "dp/engine.hpp"
#include "dp/good_functions.hpp"
#include "netlist/structure.hpp"

namespace dp::core {

class SymbolicFaultSimulator {
 public:
  SymbolicFaultSimulator(const GoodFunctions& good,
                         const netlist::Structure& structure);

  /// Same results contract as DifferencePropagator::analyze.
  FaultAnalysis analyze(const fault::StuckAtFault& fault) const;
  FaultAnalysis analyze(const fault::BridgingFault& fault) const;

  /// Syndrome testing (Savir 1980, the paper's ref [11]): a fault is
  /// syndrome-detectable when the faulty circuit changes the ones-count
  /// (the syndrome) of at least one PO. Because this engine carries the
  /// faulty functions explicitly, faulty syndromes are exact by-products.
  struct SyndromeTest {
    bool syndrome_detectable = false;
    std::vector<double> good_syndromes;    ///< per PO
    std::vector<double> faulty_syndromes;  ///< per PO
  };
  SyndromeTest syndrome_test(const fault::StuckAtFault& fault) const;

  const GoodFunctions& good() const { return good_; }

 private:
  struct PinSeed {
    netlist::NetId gate = netlist::kInvalidNet;
    std::uint32_t pin = 0;
    bdd::Bdd value;
  };

  /// Propagates faulty functions from the seeds; faulty[id] stays invalid
  /// for nets outside the cone (meaning F == f).
  PropagationStats propagate(std::vector<bdd::Bdd>& faulty,
                             const PinSeed* pin_seed) const;

  FaultAnalysis finish(const std::vector<bdd::Bdd>& faulty,
                       const std::vector<netlist::NetId>& site_nets,
                       double upper_bound, PropagationStats stats) const;

  const GoodFunctions& good_;
  const netlist::Structure& structure_;
};

}  // namespace dp::core
