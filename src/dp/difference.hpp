// The Difference Propagation gate algebra (paper §3, Table 1).
//
// For a node i, f_i is the good function, F_i the faulty function, and the
// difference function is Delta f_i = f_i XOR F_i (ring sum over GF(2)).
// For a two-input gate C = g(A, B) the output difference depends only on
// the input good functions and input differences:
//
//     AND / NAND :  Delta fC = fA.DfB  ^  fB.DfA  ^  DfA.DfB
//     OR  / NOR  :  Delta fC = ~fA.DfB ^  ~fB.DfA ^  DfA.DfB
//     XOR / XNOR :  Delta fC = DfA ^ DfB
//     NOT / BUF  :  Delta fC = DfA
//
// An output inversion never changes the difference. Gates with more than
// two inputs are folded as n-1 two-input gates (paper §3's device for
// avoiding the exponential pair/triple enumeration).
#pragma once

#include <vector>

#include "bdd/bdd.hpp"
#include "netlist/gate.hpp"

namespace dp::core {

/// Table 1, binary form. `base` must be And, Or, Xor or Buf (apply
/// netlist::base_of first); fa/fb are the input good functions, da/db the
/// input differences.
bdd::Bdd gate_difference2(netlist::GateType base, const bdd::Bdd& fa,
                          const bdd::Bdd& fb, const bdd::Bdd& da,
                          const bdd::Bdd& db);

/// n-ary fold: computes the output difference of an n-input gate of `type`
/// given the fanin good functions and fanin differences (same order).
/// A default-constructed (invalid) Bdd in `diffs` means "identically 0";
/// the fold exploits that to skip work, mirroring the paper's observation
/// that terms with zero difference functions vanish from the calculation.
bdd::Bdd gate_difference(bdd::Manager& manager, netlist::GateType type,
                         const std::vector<bdd::Bdd>& goods,
                         const std::vector<bdd::Bdd>& diffs);

/// The GENERAL n-ary form from §3: for an n-input AND,
///   Delta fC = XOR over nonempty subsets S of { prod_{i in S} Dfi .
///                                               prod_{i not in S} fi }
/// (for OR, the good factors complement; for XOR it degenerates to the
/// ring sum of the differences). The number of product terms is 2^n - 1 --
/// "operations whose number grows exponentially with the number of gate
/// inputs" -- which is why the engine folds n-1 two-input gates instead.
/// Provided for validation and for the ablation bench that demonstrates
/// the blow-up. `ops` (optional) accumulates the number of product terms.
bdd::Bdd gate_difference_general(bdd::Manager& manager,
                                 netlist::GateType type,
                                 const std::vector<bdd::Bdd>& goods,
                                 const std::vector<bdd::Bdd>& diffs,
                                 std::uint64_t* ops = nullptr);

}  // namespace dp::core
