#include "dp/difference.hpp"

namespace dp::core {

using netlist::GateType;

bdd::Bdd gate_difference2(GateType base, const bdd::Bdd& fa,
                          const bdd::Bdd& fb, const bdd::Bdd& da,
                          const bdd::Bdd& db) {
  switch (base) {
    case GateType::And:
      // fA.DfB ^ fB.DfA ^ DfA.DfB  (terms with a zero Df vanish)
      if (da.is_zero()) return fa & db;
      if (db.is_zero()) return fb & da;
      return (fa & db) ^ (fb & da) ^ (da & db);
    case GateType::Or:
      if (da.is_zero()) return (!fa) & db;
      if (db.is_zero()) return (!fb) & da;
      return ((!fa) & db) ^ ((!fb) & da) ^ (da & db);
    case GateType::Xor:
      return da ^ db;
    case GateType::Buf:
      return da;
    default:
      throw bdd::BddError("gate_difference2: pass a base gate type");
  }
}

bdd::Bdd gate_difference(bdd::Manager& manager, GateType type,
                         const std::vector<bdd::Bdd>& goods,
                         const std::vector<bdd::Bdd>& diffs) {
  if (goods.empty() || goods.size() != diffs.size()) {
    throw bdd::BddError("gate_difference: fanin vectors empty or mismatched");
  }
  auto diff_at = [&](std::size_t i) {
    return diffs[i].valid() ? diffs[i] : manager.zero();
  };

  const GateType base = netlist::base_of(type);
  if (base == GateType::Buf) return diff_at(0);

  // Fold as n-1 two-input gates of the base type; the output inversion
  // (NAND/NOR/XNOR) does not alter the difference.
  bdd::Bdd acc_good = goods[0];
  bdd::Bdd acc_diff = diff_at(0);
  for (std::size_t i = 1; i < goods.size(); ++i) {
    const bdd::Bdd di = diff_at(i);
    if (acc_diff.is_zero() && di.is_zero()) {
      acc_diff = manager.zero();  // both clean: difference stays 0
    } else {
      acc_diff = gate_difference2(base, acc_good, goods[i], acc_diff, di);
    }
    if (i + 1 < goods.size()) {
      switch (base) {
        case GateType::And: acc_good = acc_good & goods[i]; break;
        case GateType::Or: acc_good = acc_good | goods[i]; break;
        case GateType::Xor: acc_good = acc_good ^ goods[i]; break;
        default: break;
      }
    }
  }
  return acc_diff;
}

bdd::Bdd gate_difference_general(bdd::Manager& manager,
                                 netlist::GateType type,
                                 const std::vector<bdd::Bdd>& goods,
                                 const std::vector<bdd::Bdd>& diffs,
                                 std::uint64_t* ops) {
  if (goods.empty() || goods.size() != diffs.size()) {
    throw bdd::BddError(
        "gate_difference_general: fanin vectors empty or mismatched");
  }
  const std::size_t n = goods.size();
  if (n > 20) {
    throw bdd::BddError(
        "gate_difference_general: refusing 2^n explosion beyond n = 20");
  }
  auto diff_at = [&](std::size_t i) {
    return diffs[i].valid() ? diffs[i] : manager.zero();
  };

  const GateType base = netlist::base_of(type);
  if (base == GateType::Buf) return diff_at(0);
  if (base == GateType::Xor) {
    // Parity: the general form collapses to the ring sum of differences.
    bdd::Bdd acc = diff_at(0);
    for (std::size_t i = 1; i < n; ++i) acc = acc ^ diff_at(i);
    if (ops) *ops += n;
    return acc;
  }
  if (base != GateType::And && base != GateType::Or) {
    throw bdd::BddError("gate_difference_general: unexpected gate type");
  }

  // XOR over all 2^n - 1 nonempty subsets of product terms.
  bdd::Bdd result = manager.zero();
  for (std::uint64_t subset = 1; subset < (1ull << n); ++subset) {
    bdd::Bdd term = manager.one();
    for (std::size_t i = 0; i < n && !term.is_zero(); ++i) {
      if ((subset >> i) & 1) {
        term = term & diff_at(i);
      } else {
        term = term & (base == GateType::And ? goods[i] : !goods[i]);
      }
    }
    result = result ^ term;
    if (ops) ++*ops;
  }
  return result;
}

}  // namespace dp::core
