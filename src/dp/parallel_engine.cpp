#include "dp/parallel_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <iomanip>
#include <limits>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

namespace dp::core {

namespace {

using Clock = std::chrono::steady_clock;

/// GC trigger floor for sweep-worker managers (see build_one): small
/// enough that per-fault churn is collected, large enough that the
/// trigger's adaptive max(floor, 2x live) term governs real circuits.
constexpr std::size_t kWorkerGcFloor = 1u << 16;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string human_count(std::uint64_t n) {
  std::ostringstream os;
  os << std::fixed;
  if (n >= 10'000'000ull) {
    os << std::setprecision(1) << static_cast<double>(n) / 1e6 << "M";
  } else if (n >= 10'000ull) {
    os << std::setprecision(1) << static_cast<double>(n) / 1e3 << "k";
  } else {
    os << n;
  }
  return os.str();
}

/// Nearest-rank quantile; reorders `v` in place. 0.0 when empty.
double quantile_of(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(v.size())));
  if (rank > 0) --rank;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(rank),
                   v.end());
  return v[rank];
}

}  // namespace

double ParallelStats::total_analyze_seconds() const {
  double s = 0.0;
  for (const WorkerStats& w : workers) s += w.analyze_seconds;
  return s;
}

double ParallelStats::faults_per_second() const {
  return wall_seconds > 0.0 ? static_cast<double>(faults) / wall_seconds : 0.0;
}

std::uint64_t ParallelStats::total_gates_evaluated() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.gates_evaluated;
  return n;
}

std::uint64_t ParallelStats::total_gates_skipped() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.gates_skipped;
  return n;
}

std::uint64_t ParallelStats::total_gc_runs() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.gc_runs;
  return n;
}

std::uint64_t ParallelStats::total_apply_calls() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.apply_calls;
  return n;
}

std::uint64_t ParallelStats::total_cache_hits() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.cache_hits;
  return n;
}

std::uint64_t ParallelStats::total_negations_constant_time() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.negations_constant_time;
  return n;
}

std::uint64_t ParallelStats::total_cache_canonical_swaps() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.cache_canonical_swaps;
  return n;
}

std::uint64_t ParallelStats::total_ref_underflows() const {
  std::uint64_t n = 0;
  for (const WorkerStats& w : workers) n += w.ref_underflows;
  return n;
}

double ParallelStats::cache_hit_rate() const {
  const std::uint64_t calls = total_apply_calls();
  return calls > 0
             ? static_cast<double>(total_cache_hits()) /
                   static_cast<double>(calls)
             : 0.0;
}

std::vector<double> ParallelStats::all_fault_seconds() const {
  std::vector<double> all;
  for (const WorkerStats& w : workers) {
    all.insert(all.end(), w.fault_seconds.begin(), w.fault_seconds.end());
  }
  return all;
}

void ParallelStats::merge(const ParallelStats& other) {
  jobs = std::max(jobs, other.jobs);
  faults += other.faults;
  wall_seconds += other.wall_seconds;
  // One shared forest serves every batch of a chunked sweep: built once,
  // same size throughout -- both fold with max, not sum.
  shared_build_seconds = std::max(shared_build_seconds,
                                  other.shared_build_seconds);
  frozen_nodes = std::max(frozen_nodes, other.frozen_nodes);
  if (workers.size() < other.workers.size()) {
    workers.resize(other.workers.size());
  }
  for (std::size_t i = 0; i < other.workers.size(); ++i) {
    WorkerStats& w = workers[i];
    const WorkerStats& o = other.workers[i];
    w.faults_analyzed += o.faults_analyzed;
    w.gates_evaluated += o.gates_evaluated;
    w.gates_skipped += o.gates_skipped;
    w.analyze_seconds += o.analyze_seconds;
    w.max_fault_seconds = std::max(w.max_fault_seconds, o.max_fault_seconds);
    w.build_seconds = std::max(w.build_seconds, o.build_seconds);
    w.fault_seconds.insert(w.fault_seconds.end(), o.fault_seconds.begin(),
                           o.fault_seconds.end());
    w.live_nodes = o.live_nodes;  // end-of-sweep gauge: latest wins
    w.peak_live_nodes = std::max(w.peak_live_nodes, o.peak_live_nodes);
    w.gc_runs += o.gc_runs;
    w.apply_calls += o.apply_calls;
    w.cache_hits += o.cache_hits;
    w.negations_constant_time += o.negations_constant_time;
    w.cache_canonical_swaps += o.cache_canonical_swaps;
    w.ref_underflows += o.ref_underflows;
  }
}

void ParallelStats::print(std::ostream& os) const {
  os << "parallel DP sweep: " << faults << " faults on " << jobs
     << (jobs == 1 ? " worker, " : " workers, ") << std::fixed
     << std::setprecision(3) << wall_seconds << " s wall ("
     << std::setprecision(1) << faults_per_second() << " faults/s, busy "
     << std::setprecision(3) << total_analyze_seconds() << " s, cache hit "
     << std::setprecision(1) << 100.0 * cache_hit_rate() << "%, "
     << total_gc_runs() << " GC runs, gates " << human_count(
            total_gates_evaluated()) << " eval / "
     << human_count(total_gates_skipped()) << " skip, "
     << total_ref_underflows() << " ref underflows)\n";
  if (frozen_nodes > 0) {
    os << "  shared forest: " << human_count(frozen_nodes)
       << " frozen nodes, built once in " << std::setprecision(3)
       << shared_build_seconds << " s\n";
  }
  std::vector<double> lat = all_fault_seconds();
  if (!lat.empty()) {
    os << "  fault latency: p50 " << std::setprecision(3)
       << 1e3 * quantile_of(lat, 0.50) << " ms, p90 "
       << 1e3 * quantile_of(lat, 0.90) << " ms, p99 "
       << 1e3 * quantile_of(lat, 0.99) << " ms over " << lat.size()
       << " faults\n";
  }
  os << "  worker   faults   busy(s)   max(ms)   build(s)  peak nodes  "
        "gc   apply    cache-hit\n";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerStats& w = workers[i];
    os << "  " << std::left << std::setw(9) << i << std::setw(9)
       << w.faults_analyzed << std::right << std::setw(8)
       << std::setprecision(3) << w.analyze_seconds << std::setw(10)
       << std::setprecision(2) << 1e3 * w.max_fault_seconds << std::setw(10)
       << std::setprecision(3) << w.build_seconds << std::setw(11)
       << w.peak_live_nodes << std::setw(5) << w.gc_runs << std::setw(9)
       << human_count(w.apply_calls) << std::setw(10) << std::setprecision(1)
       << 100.0 * w.cache_hit_rate() << "%\n";
  }
  if (total_ref_underflows() > 0) {
    os << "  WARNING: " << total_ref_underflows()
       << " refcount underflows (double releases) detected\n";
  }
  os.unsetf(std::ios::floatfield);
}

std::ostream& operator<<(std::ostream& os, const ParallelStats& stats) {
  stats.print(os);
  return os;
}

void ParallelStats::export_metrics(obs::MetricsRegistry& registry,
                                   const std::string& prefix) const {
  // Deterministic workload totals -> counters (see the header comment).
  registry.counter(prefix + ".faults_analyzed")
      .add(static_cast<std::uint64_t>(faults));
  registry.counter(prefix + ".gates_evaluated").add(total_gates_evaluated());
  registry.counter(prefix + ".gates_skipped").add(total_gates_skipped());

  // Schedule/machine-dependent values -> gauges. Accumulating gauges use
  // add() so repeated sweeps (multi-circuit benches) sum up; level gauges
  // use set()/set_max().
  registry.gauge(prefix + ".jobs")
      .set_max(static_cast<double>(jobs));
  obs::Gauge& apply = registry.gauge(prefix + ".apply_calls");
  obs::Gauge& hits = registry.gauge(prefix + ".cache_hits");
  apply.add(static_cast<double>(total_apply_calls()));
  hits.add(static_cast<double>(total_cache_hits()));
  registry.gauge(prefix + ".cache_hit_rate")
      .set(apply.value() > 0.0 ? hits.value() / apply.value() : 0.0);
  registry.gauge(prefix + ".negations_constant_time")
      .add(static_cast<double>(total_negations_constant_time()));
  registry.gauge(prefix + ".cache_canonical_swaps")
      .add(static_cast<double>(total_cache_canonical_swaps()));
  registry.gauge(prefix + ".gc_runs")
      .add(static_cast<double>(total_gc_runs()));
  registry.gauge(prefix + ".ref_underflows")
      .add(static_cast<double>(total_ref_underflows()));

  double worker_peak_max = 0.0, peak_total = 0.0, live = 0.0;
  for (const WorkerStats& w : workers) {
    worker_peak_max =
        std::max(worker_peak_max, static_cast<double>(w.peak_live_nodes));
    peak_total += static_cast<double>(w.peak_live_nodes);
    live += static_cast<double>(w.live_nodes);
    registry.histogram(prefix + ".worker_busy_seconds")
        .observe(w.analyze_seconds);
    obs::Histogram& lat = registry.histogram(prefix + ".fault_seconds");
    for (const double dt : w.fault_seconds) lat.observe(dt);
  }
  // Memory gauges of the sweep. peak_live_nodes is the engine's whole
  // footprint -- the shared frozen prefix (counted once) plus every
  // worker's private high-water mark -- so a shared-vs-unshared A/B of
  // the same workload compares like for like. The per-worker max and the
  // frozen size are broken out so a regression in either side is
  // attributable on its own.
  registry.gauge(prefix + ".peak_live_nodes")
      .set_max(static_cast<double>(frozen_nodes) + peak_total);
  registry.gauge(prefix + ".frozen_nodes")
      .set_max(static_cast<double>(frozen_nodes));
  registry.gauge(prefix + ".private_nodes_per_worker_max")
      .set_max(worker_peak_max);
  registry.gauge(prefix + ".live_nodes").set(live);

  registry.timer(prefix + ".sweep").record(wall_seconds);
  if (shared_build_seconds > 0.0) {
    registry.timer(prefix + ".shared_build").record(shared_build_seconds);
  }
  registry.timer(prefix + ".worker_build")
      .record(workers.empty()
                  ? 0.0
                  : std::max_element(workers.begin(), workers.end(),
                                     [](const WorkerStats& a,
                                        const WorkerStats& b) {
                                       return a.build_seconds <
                                              b.build_seconds;
                                     })
                        ->build_seconds);
}

/// A worker owns the full private analysis stack: no BDD state is shared
/// between workers, so no locks are needed anywhere on the hot path.
struct ParallelEngine::Worker {
  std::unique_ptr<bdd::Manager> manager;
  std::unique_ptr<GoodFunctions> good;
  std::unique_ptr<DifferencePropagator> propagator;
  double build_seconds = 0.0;
};

ParallelEngine::ParallelEngine(const netlist::Circuit& circuit,
                               const netlist::Structure& structure,
                               Options options)
    : circuit_(circuit), structure_(structure), options_(options) {
  std::size_t jobs = options_.jobs;
  if (jobs == 0) {
    jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.resize(jobs);

  obs::SpanCollector* const spans = obs::SpanCollector::current();
  obs::ScopedSpan build_span(spans, "dp.build");
  build_span.attr("jobs", jobs);

  // Shared-forest path: build (or adopt) the good-function universe once
  // on the calling thread, then every worker splices it in read-only and
  // the per-worker "build" is just wrapping root handles. Exceptions from
  // the one-time build (e.g. OutOfNodes) propagate directly -- same
  // surface the per-worker build path has.
  if (options_.shared_forest) {
    obs::ScopedSpan freeze_span(spans, "dp.shared_build", build_span.id());
    shared_good_ = options_.shared_good;
    if (!shared_good_) {
      shared_good_ = std::make_shared<SharedGoodFunctions>(
          circuit_, options_.good, options_.bdd_node_limit);
    }
    freeze_span.attr("frozen_nodes", shared_good_->frozen_nodes());
  }

  // Build the private managers concurrently; every build runs the same
  // deterministic topological sweep (or the same adoption of the same
  // forest), so all workers end up with structurally identical BDDs
  // (same node budget, same variable order).
  std::mutex error_mutex;
  std::exception_ptr build_error;
  auto build_one = [&](std::size_t slot) {
    // Parent is passed explicitly: worker threads have no TLS span stack.
    obs::ScopedSpan span(spans, "dp.build_worker", build_span.id());
    span.attr("worker", slot);
    const auto start = Clock::now();
    try {
      auto w = std::make_unique<Worker>();
      if (shared_good_) {
        w->manager = std::make_unique<bdd::Manager>(shared_good_->forest(),
                                                    options_.bdd_node_limit);
        w->good = std::make_unique<GoodFunctions>(*w->manager, circuit_,
                                                  *shared_good_);
      } else {
        w->manager =
            std::make_unique<bdd::Manager>(0, options_.bdd_node_limit);
        w->good = std::make_unique<GoodFunctions>(*w->manager, circuit_,
                                                  options_.good);
      }
      // Sweep workers build and drop one test-set BDD per fault; with the
      // default (throughput-oriented) GC floor that churn is never
      // collected, so a worker's memory footprint -- and its
      // peak_live_nodes accounting -- would grow with the fault count
      // instead of the working set. An aggressive floor keeps both
      // tracking the live data. Results are unaffected (GC is invisible
      // to canonical BDD semantics).
      w->manager->set_gc_floor(kWorkerGcFloor);
      w->propagator = std::make_unique<DifferencePropagator>(
          *w->good, structure_, options_.dp);
      w->build_seconds = seconds_since(start);
      workers_[slot] = std::move(w);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!build_error) build_error = std::current_exception();
    }
  };

  if (jobs == 1) {
    build_one(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) threads.emplace_back(build_one, i);
    for (std::thread& t : threads) t.join();
  }
  if (build_error) {
    workers_.clear();
    std::rethrow_exception(build_error);
  }

  stats_.jobs = jobs;
  stats_.workers.resize(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    stats_.workers[i].build_seconds = workers_[i]->build_seconds;
  }
  if (shared_good_) {
    stats_.shared_build_seconds = shared_good_->build_seconds();
    stats_.frozen_nodes = shared_good_->frozen_nodes();
  }
}

ParallelEngine::~ParallelEngine() = default;

template <typename Fault>
void ParallelEngine::run(const std::vector<Fault>& faults,
                         const ResultSink& sink) {
  const auto sweep_start = Clock::now();
  obs::SpanCollector* const spans = obs::SpanCollector::current();
  obs::ScopedSpan sweep_span(spans, "dp.sweep");
  sweep_span.attr("jobs", workers_.size());
  sweep_span.attr("faults", faults.size());

  // Dynamic sharding: workers pull the next unclaimed fault index, so an
  // expensive fault does not stall the rest of the list. Each index is
  // claimed by exactly one worker, so a sink that writes slot i of a
  // pre-sized vector yields a deterministic input-order merge for free.
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  auto work = [&](std::size_t slot) {
    // Explicit parent: the sweep span lives on the calling thread's stack,
    // not this worker thread's. Per-fault dp.fault spans (opened inside
    // the propagator) nest under this one via the worker's own TLS stack.
    obs::ScopedSpan worker_span(spans, "dp.worker", sweep_span.id());
    worker_span.attr("worker", slot);
    Worker& w = *workers_[slot];
    WorkerStats& ws = stats_.workers[slot];
    ws.faults_analyzed = 0;
    ws.gates_evaluated = 0;
    ws.gates_skipped = 0;
    ws.analyze_seconds = 0.0;
    ws.max_fault_seconds = 0.0;
    ws.fault_seconds.clear();
    const bdd::ManagerStats before = w.manager->stats();
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= faults.size()) break;
      const auto fault_start = Clock::now();
      try {
        FaultAnalysis a = w.propagator->analyze(faults[i]);
        ws.gates_evaluated += a.stats.gates_evaluated;
        ws.gates_skipped += a.stats.gates_skipped;
        sink(i, std::move(a));
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
        // Stop handing out work; indices already claimed finish normally.
        next.store(faults.size(), std::memory_order_relaxed);
        break;
      }
      const double dt = seconds_since(fault_start);
      ++ws.faults_analyzed;
      ws.analyze_seconds += dt;
      ws.max_fault_seconds = std::max(ws.max_fault_seconds, dt);
      ws.fault_seconds.push_back(dt);
    }
    const bdd::ManagerStats after = w.manager->stats();
    ws.gc_runs = after.gc_runs - before.gc_runs;
    ws.apply_calls = after.apply_calls - before.apply_calls;
    ws.cache_hits = after.cache_hits - before.cache_hits;
    ws.negations_constant_time =
        after.negations_constant_time - before.negations_constant_time;
    ws.cache_canonical_swaps =
        after.cache_canonical_swaps - before.cache_canonical_swaps;
    ws.ref_underflows = after.ref_underflows - before.ref_underflows;
    ws.live_nodes = w.manager->live_nodes();
    ws.peak_live_nodes = after.peak_live_nodes;
    worker_span.attr("faults", ws.faults_analyzed);
    worker_span.attr("busy_seconds", ws.analyze_seconds);
  };

  if (workers_.size() == 1) {
    work(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      threads.emplace_back(work, i);
    }
    // The barrier span measures how long the calling thread sat waiting
    // for the slowest worker -- end-of-sweep skew shows up as its width.
    obs::ScopedSpan barrier(spans, "dp.merge_barrier", sweep_span.id());
    for (std::thread& t : threads) t.join();
  }

  stats_.faults = faults.size();
  stats_.wall_seconds = seconds_since(sweep_start);
  if (error) std::rethrow_exception(error);
}

template <typename Fault>
std::vector<FaultAnalysis> ParallelEngine::run_collect(
    const std::vector<Fault>& faults) {
  std::vector<FaultAnalysis> results(faults.size());
  run(faults, [&results](std::size_t i, FaultAnalysis&& a) {
    results[i] = std::move(a);
  });
  return results;
}

std::vector<FaultAnalysis> ParallelEngine::analyze_all(
    const std::vector<fault::StuckAtFault>& faults) {
  return run_collect(faults);
}

std::vector<FaultAnalysis> ParallelEngine::analyze_all(
    const std::vector<fault::BridgingFault>& faults) {
  return run_collect(faults);
}

std::vector<FaultAnalysis> ParallelEngine::analyze_all(
    const std::vector<fault::MultipleStuckAtFault>& faults) {
  return run_collect(faults);
}

void ParallelEngine::analyze_each(
    const std::vector<fault::StuckAtFault>& faults, const ResultSink& sink) {
  run(faults, sink);
}

void ParallelEngine::analyze_each(
    const std::vector<fault::BridgingFault>& faults, const ResultSink& sink) {
  run(faults, sink);
}

void ParallelEngine::analyze_each(
    const std::vector<fault::MultipleStuckAtFault>& faults,
    const ResultSink& sink) {
  run(faults, sink);
}

}  // namespace dp::core
