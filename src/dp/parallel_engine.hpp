// Fault-parallel Difference Propagation (the paper's headline sweeps).
//
// Every per-fault analysis in the paper's experiments is independent of
// every other one, so the sweep parallelizes at the fault granularity:
// a worker pool runs the serial DifferencePropagator per fault and writes
// its result into the slot of the fault's input position. Results are
// therefore merged deterministically in input order, and detectability,
// adherence, and observability are bit-identical to the serial engine no
// matter how faults are scheduled.
//
// By default (Options::shared_forest) the good-function universe is built
// ONCE, frozen into an immutable bdd::FrozenForest, and adopted by every
// worker's private manager as a read-only node prefix: workers host only
// their Δ/fault-site functions privately, so sweep memory is
// O(forest + jobs x Δ) instead of O(jobs x forest) and the per-worker
// build cost collapses to a handle wrap. With sharing off each worker
// builds its own full GoodFunctions copy (the pre-freeze behavior); both
// paths produce bit-identical FaultAnalysis values because every field is
// a value of a canonical Boolean function, invariant under the slot
// renumbering freeze() applies.
//
// The engine owns the workers: FaultAnalysis results hold Bdd handles into
// the worker managers and stay valid for the engine's lifetime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "dp/engine.hpp"
#include "dp/good_functions.hpp"
#include "obs/metrics.hpp"

namespace dp::core {

/// Per-worker observability: how much BDD work this worker's private
/// manager did during the last sweep (deltas over the sweep, except the
/// node gauges which are end-of-sweep values).
struct WorkerStats {
  std::size_t faults_analyzed = 0;
  std::uint64_t gates_evaluated = 0;  ///< summed PropagationStats
  std::uint64_t gates_skipped = 0;    ///< summed PropagationStats
  double analyze_seconds = 0.0;     ///< summed per-fault wall clock
  double max_fault_seconds = 0.0;   ///< slowest single fault
  /// Wall clock of every fault this worker analyzed, in claim order --
  /// the raw material for the sweep's per-fault latency quantiles.
  std::vector<double> fault_seconds;
  double build_seconds = 0.0;       ///< good-function construction
  std::size_t live_nodes = 0;       ///< manager gauge after the sweep
  std::size_t peak_live_nodes = 0;  ///< manager high-water mark
  std::uint64_t gc_runs = 0;
  std::uint64_t apply_calls = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t negations_constant_time = 0;
  std::uint64_t cache_canonical_swaps = 0;
  std::uint64_t ref_underflows = 0;

  double cache_hit_rate() const {
    return apply_calls > 0 ? static_cast<double>(cache_hits) /
                                 static_cast<double>(apply_calls)
                           : 0.0;
  }
};

/// Aggregated engine-level stats for one analyze_all() sweep.
struct ParallelStats {
  std::size_t jobs = 0;
  std::size_t faults = 0;
  double wall_seconds = 0.0;  ///< end-to-end sweep time (fan-out to join)
  /// One-time build+freeze cost of the shared forest (0 when sharing is
  /// off). Merge takes the max: a batched sweep pays it once.
  double shared_build_seconds = 0.0;
  /// Size of the shared frozen forest (0 when sharing is off).
  std::size_t frozen_nodes = 0;
  std::vector<WorkerStats> workers;

  double total_analyze_seconds() const;
  double faults_per_second() const;
  std::uint64_t total_gates_evaluated() const;
  std::uint64_t total_gates_skipped() const;
  std::uint64_t total_gc_runs() const;
  std::uint64_t total_apply_calls() const;
  std::uint64_t total_cache_hits() const;
  std::uint64_t total_negations_constant_time() const;
  std::uint64_t total_cache_canonical_swaps() const;
  std::uint64_t total_ref_underflows() const;
  double cache_hit_rate() const;
  /// Concatenation of every worker's per-fault wall clocks (worker-index
  /// order). Feeds latency quantiles in print()/export_metrics().
  std::vector<double> all_fault_seconds() const;

  /// Folds another sweep's stats into this one (per-worker fields sum,
  /// peaks take the max, node gauges take the latest) so a batched sweep
  /// -- e.g. one checkpointed in fault-batch chunks -- reports one
  /// aggregate indistinguishable in its deterministic totals from a
  /// single uninterrupted sweep. Worker lists are matched by index;
  /// `other` may have more workers than `this` (the list grows).
  void merge(const ParallelStats& other);

  /// Human-readable block: one summary line plus one row per worker.
  void print(std::ostream& os) const;

  /// Folds this sweep into `registry` under `<prefix>.`. Per-worker
  /// snapshots are aggregated in worker-index order (deterministic).
  /// Deterministic totals (faults analyzed, gates evaluated/skipped)
  /// become counters -- identical for --jobs 1 and --jobs N sweeps of the
  /// same workload; schedule-dependent values (apply calls, cache hits,
  /// node counts) become gauges. Repeated calls accumulate, so one
  /// registry can absorb a whole multi-circuit bench.
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "dp") const;
};

std::ostream& operator<<(std::ostream& os, const ParallelStats& stats);

/// Shards a fault list across a worker pool and merges the per-fault
/// analyses back in input order.
class ParallelEngine {
 public:
  struct Options {
    /// Worker count; 0 = std::thread::hardware_concurrency(). With one
    /// worker the sweep runs inline on the calling thread (no pool).
    std::size_t jobs = 0;
    std::size_t bdd_node_limit = 32u * 1024 * 1024;
    DifferencePropagator::Options dp;
    /// Shared by every worker, so all managers agree on the variable
    /// order and detectabilities are bit-identical to the serial path.
    GoodFunctionOptions good;
    /// Build the good functions once and share them frozen across all
    /// workers (see the file comment). Off = the pre-freeze per-worker
    /// rebuild path, kept as an escape hatch and as the oracle's foil.
    bool shared_forest = true;
    /// Pre-built universe to adopt instead of building one (must match
    /// `circuit` and `good`); used by serve::Service to share one forest
    /// across requests. Ignored when shared_forest is false.
    std::shared_ptr<const SharedGoodFunctions> shared_good;
  };

  /// Builds one Manager + GoodFunctions + DifferencePropagator per worker
  /// (concurrently). `circuit` and `structure` must outlive the engine.
  ParallelEngine(const netlist::Circuit& circuit,
                 const netlist::Structure& structure)
      : ParallelEngine(circuit, structure, Options{}) {}
  ParallelEngine(const netlist::Circuit& circuit,
                 const netlist::Structure& structure, Options options);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// Analyzes every fault; result i is fault i's analysis (input order).
  /// The returned Bdd handles live in worker managers: they are valid only
  /// while the engine is alive. The first per-fault exception (by fault
  /// index) is rethrown after all workers drain.
  std::vector<FaultAnalysis> analyze_all(
      const std::vector<fault::StuckAtFault>& faults);
  std::vector<FaultAnalysis> analyze_all(
      const std::vector<fault::BridgingFault>& faults);
  std::vector<FaultAnalysis> analyze_all(
      const std::vector<fault::MultipleStuckAtFault>& faults);

  /// Streaming variant: each analysis is handed to `sink(index, analysis)`
  /// as soon as its fault finishes, and the BDD handles are released right
  /// after the call -- node pressure stays flat over arbitrarily long
  /// fault lists. The sink runs on worker threads, each index exactly
  /// once; it must be safe to call concurrently for DISTINCT indices
  /// (writing record i into a pre-sized vector qualifies).
  using ResultSink = std::function<void(std::size_t, FaultAnalysis&&)>;
  void analyze_each(const std::vector<fault::StuckAtFault>& faults,
                    const ResultSink& sink);
  void analyze_each(const std::vector<fault::BridgingFault>& faults,
                    const ResultSink& sink);
  void analyze_each(const std::vector<fault::MultipleStuckAtFault>& faults,
                    const ResultSink& sink);

  std::size_t jobs() const { return workers_.size(); }
  /// Stats of the most recent analyze_all() sweep.
  const ParallelStats& stats() const { return stats_; }
  /// The shared universe in use, or nullptr when sharing is off.
  const std::shared_ptr<const SharedGoodFunctions>& shared_good() const {
    return shared_good_;
  }

 private:
  struct Worker;

  template <typename Fault>
  void run(const std::vector<Fault>& faults, const ResultSink& sink);

  template <typename Fault>
  std::vector<FaultAnalysis> run_collect(const std::vector<Fault>& faults);

  const netlist::Circuit& circuit_;
  const netlist::Structure& structure_;
  Options options_;
  std::shared_ptr<const SharedGoodFunctions> shared_good_;
  std::vector<std::unique_ptr<Worker>> workers_;
  ParallelStats stats_;
};

}  // namespace dp::core
