// Good-circuit function computation: one OBDD per net, over one variable
// per primary input, in the PI order stated by the netlist (the paper keeps
// the benchmark's PI order as the OBDD variable order).
//
// Two optional mechanisms from the paper are supported:
//   * an alternative static variable order (ordering.hpp), and
//   * cut-point functional decomposition -- "for the circuits C499 and
//     larger, functional decomposition was used to speed up Difference
//     Propagation" [21]: any net whose BDD exceeds a node threshold is
//     replaced by a fresh cut variable. Downstream results then average
//     over the cut variables, which is exactly the paper's caveat that
//     the decomposition "may mask some functional interactions".
#pragma once

#include <memory>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/frozen_forest.hpp"
#include "netlist/circuit.hpp"

namespace dp::core {

using netlist::Circuit;
using netlist::NetId;

struct GoodFunctionOptions {
  /// order[pi_index] = BDD variable id; empty = identity (stated PI order).
  std::vector<std::size_t> variable_order;
  /// Replace a net's function with a fresh cut variable when its BDD
  /// exceeds this many nodes. 0 disables decomposition (exact analysis).
  std::size_t cut_threshold = 0;
};

class SharedGoodFunctions;

class GoodFunctions {
 public:
  /// Creates the input variables in `manager` (which must be fresh) and
  /// builds every net's function with a single topological sweep.
  GoodFunctions(bdd::Manager& manager, const Circuit& circuit);
  GoodFunctions(bdd::Manager& manager, const Circuit& circuit,
                const GoodFunctionOptions& options);

  /// Adoption: wraps the per-net roots of a pre-built shared forest in
  /// handles of `manager`, which must have been constructed over
  /// `shared.forest()`. No BDD work happens here -- this is the cheap
  /// per-worker path of the shared-kernel split. `circuit` must be the
  /// circuit `shared` was built from (net count is checked).
  GoodFunctions(bdd::Manager& manager, const Circuit& circuit,
                const SharedGoodFunctions& shared);

  const Circuit& circuit() const { return circuit_; }
  bdd::Manager& manager() const { return manager_; }

  /// Total variables the functions range over: the PIs plus any cut
  /// variables introduced by decomposition. Densities and detectabilities
  /// normalize by 2^num_vars(); with cuts they are averaged over the cut
  /// variables (approximate, per the paper's caveat).
  std::size_t num_vars() const { return manager_.num_vars(); }

  const bdd::Bdd& at(NetId id) const { return functions_.at(id); }

  /// BDD variable id assigned to PI position `pi_index`.
  bdd::Var var_of_input(std::size_t pi_index) const {
    return static_cast<bdd::Var>(order_.at(pi_index));
  }

  /// Exact signal probability: the paper's "syndrome" of a line
  /// (Savir 1980) -- the proportion of ones in the function's K-map.
  double syndrome(NetId id) const {
    return functions_.at(id).density(num_vars());
  }

  /// Nets replaced by cut variables (empty when cut_threshold == 0).
  const std::vector<NetId>& cut_nets() const { return cut_nets_; }
  bool exact() const { return cut_nets_.empty(); }

  /// Sum of BDD sizes over all nets (diagnostics / benchmarks).
  std::size_t total_nodes() const;

 private:
  bdd::Manager& manager_;
  const Circuit& circuit_;
  std::vector<bdd::Bdd> functions_;
  std::vector<std::size_t> order_;
  std::vector<NetId> cut_nets_;
};

/// Evaluates a single gate's function from fanin BDDs (n-ary fold of the
/// base type, then the output inversion if any).
bdd::Bdd build_gate_function(bdd::Manager& manager, netlist::GateType type,
                             const std::vector<bdd::Bdd>& fanins);

/// The build-once half of the shared-kernel split: constructs the
/// good-function universe for a circuit in a throwaway manager, freezes
/// it, and keeps only the immutable forest plus the per-net root edges
/// (in forest numbering). The result is safe to share across threads --
/// every reader either queries the forest directly or adopts it through
/// a private Manager -- and holds no reference to the source circuit, so
/// a serving cache can keep it alive past the request that built it.
class SharedGoodFunctions {
 public:
  explicit SharedGoodFunctions(const Circuit& circuit,
                               const GoodFunctionOptions& options = {},
                               std::size_t max_nodes = 32u * 1024 * 1024);

  const std::shared_ptr<const bdd::FrozenForest>& forest() const {
    return forest_;
  }
  /// roots()[net] = the net's function as an edge in forest numbering.
  const std::vector<bdd::NodeIndex>& roots() const { return roots_; }
  /// PIs plus cut variables, mirroring GoodFunctions::num_vars().
  std::size_t num_vars() const { return num_vars_; }
  const std::vector<std::size_t>& order() const { return order_; }
  const std::vector<NetId>& cut_nets() const { return cut_nets_; }
  std::size_t frozen_nodes() const { return forest_->size(); }
  /// Wall-clock cost of the one-time build+freeze.
  double build_seconds() const { return build_seconds_; }

 private:
  std::shared_ptr<const bdd::FrozenForest> forest_;
  std::vector<bdd::NodeIndex> roots_;
  std::vector<std::size_t> order_;
  std::vector<NetId> cut_nets_;
  std::size_t num_vars_ = 0;
  double build_seconds_ = 0.0;
};

}  // namespace dp::core
