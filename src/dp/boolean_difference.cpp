#include "dp/boolean_difference.hpp"

#include <algorithm>

namespace dp::core {

using netlist::GateType;
using netlist::NetId;

BooleanDifferenceEngine::BooleanDifferenceEngine(
    const GoodFunctions& good, const netlist::Structure& structure)
    : good_(good), structure_(structure) {
  // One shared cut variable, ordered after every input (and after any
  // decomposition variables the good functions introduced).
  cut_var_ = static_cast<bdd::Var>(good_.manager().new_var());
}

std::vector<bdd::Bdd> BooleanDifferenceEngine::cone_functions(
    NetId site_net, const netlist::PinRef* branch,
    PropagationStats& stats) const {
  const netlist::Circuit& c = good_.circuit();
  bdd::Manager& mgr = good_.manager();
  const bdd::Bdd z = mgr.var(cut_var_);

  // rebuilt[id] is valid only for nets whose function changed (the cone).
  std::vector<bdd::Bdd> rebuilt(c.num_nets());
  if (!branch) rebuilt[site_net] = z;

  for (NetId id : c.topo_order()) {
    const GateType t = c.type(id);
    if (t == GateType::Input || netlist::is_constant(t)) continue;

    const bool seeded_here = branch && branch->gate == id;
    const auto& fi = c.fanins(id);
    bool in_cone = seeded_here;
    if (!in_cone) {
      in_cone = std::any_of(fi.begin(), fi.end(), [&](NetId f) {
        return rebuilt[f].valid();
      });
    }
    if (!in_cone) continue;

    std::vector<bdd::Bdd> inputs;
    inputs.reserve(fi.size());
    for (std::uint32_t pin = 0; pin < fi.size(); ++pin) {
      if (seeded_here && branch->pin == pin) {
        inputs.push_back(z);
      } else if (rebuilt[fi[pin]].valid()) {
        inputs.push_back(rebuilt[fi[pin]]);
      } else {
        inputs.push_back(good_.at(fi[pin]));
      }
    }
    rebuilt[id] = build_gate_function(mgr, t, inputs);
    ++stats.gates_evaluated;
  }

  std::vector<bdd::Bdd> po_functions;
  po_functions.reserve(c.num_outputs());
  for (NetId po : c.outputs()) {
    po_functions.push_back(rebuilt[po].valid() ? rebuilt[po] : good_.at(po));
  }
  stats.gates_skipped = c.num_gates() - stats.gates_evaluated;
  return po_functions;
}

FaultAnalysis BooleanDifferenceEngine::analyze(
    const fault::StuckAtFault& fault) const {
  const netlist::Circuit& c = good_.circuit();

  PropagationStats stats;
  std::vector<bdd::Bdd> po_fn = cone_functions(
      fault.net, fault.branch ? &*fault.branch : nullptr, stats);

  // Controllability (excitation): the site's good function must take the
  // value opposite the stuck value.
  const bdd::Bdd& f_site = good_.at(fault.net);
  const bdd::Bdd excitation = fault.stuck_value ? !f_site : f_site;
  const double syn = good_.syndrome(fault.net);

  FaultAnalysis out;
  out.stats = stats;
  out.upper_bound = fault.stuck_value ? 1.0 - syn : syn;
  out.po_observable.assign(c.num_outputs(), false);

  // Observability per PO: the explicit Boolean difference dF_p/dz, then
  // T = excitation AND (OR of the differences) -- the "disjoint" scheme.
  bdd::Bdd observable = good_.manager().zero();
  for (std::size_t i = 0; i < po_fn.size(); ++i) {
    const bdd::Bdd d =
        po_fn[i].restrict_var(cut_var_, true) ^
        po_fn[i].restrict_var(cut_var_, false);
    if (!d.is_zero() && !(excitation & d).is_zero()) {
      out.po_observable[i] = true;
      ++out.pos_observable;
    }
    observable = observable | d;
  }
  out.test_set = excitation & observable;
  out.detectable = !out.test_set.is_zero();
  out.detectability = out.test_set.density(good_.num_vars());
  out.adherence = out.upper_bound > 0.0
                      ? std::clamp(out.detectability / out.upper_bound, 0.0, 1.0)
                      : 0.0;

  // As in the DP engine, pos_fed counts POs reachable from the checkpoint
  // line's stem (branch faults included).
  for (std::size_t i = 0; i < c.num_outputs(); ++i) {
    if (structure_.po_reachable(fault.net, i)) ++out.pos_fed;
  }
  return out;
}

}  // namespace dp::core
