// CATAPULT-style baseline: disjoint controllability / observability
// analysis via the explicit Boolean difference (Akers 1959).
//
// The paper positions Difference Propagation against this scheme:
// "Difference Propagation was originally developed primarily as an
// alternative for comparison to CATAPULT [13]. ... Unlike CATAPULT,
// Difference Propagation does not derive its observability functions
// disjointly from the control information, thus eliminating the need for
// explicit use of the Boolean difference."
//
// Here the classic method is implemented exactly so the comparison can be
// run: a fresh cut variable z is placed at the fault site, every function
// in the site's fanout cone is rebuilt over z, and the observability at
// PO p is the Boolean difference  dF_p/dz = F_p|z=1 XOR F_p|z=0.  The
// complete test set of stuck-at-v is then
//     T = (controllability of ~v at the site)  AND  (OR over POs of dF_p/dz)
// which must coincide exactly with Difference Propagation's test set.
#pragma once

#include "dp/engine.hpp"
#include "dp/good_functions.hpp"
#include "netlist/structure.hpp"

namespace dp::core {

class BooleanDifferenceEngine {
 public:
  /// Shares the manager (and hence the computed cache) with `good`.
  /// Reserves one extra BDD variable used as the cut point z.
  BooleanDifferenceEngine(const GoodFunctions& good,
                          const netlist::Structure& structure);

  /// Same results contract as DifferencePropagator::analyze (stats count
  /// the cone rebuild's gate evaluations).
  FaultAnalysis analyze(const fault::StuckAtFault& fault) const;

  const GoodFunctions& good() const { return good_; }

 private:
  /// Rebuilds the fanout cone of the site over the cut variable and
  /// returns the per-PO functions F_p(PIs, z); `stats` counts gates.
  std::vector<bdd::Bdd> cone_functions(netlist::NetId site_net,
                                       const netlist::PinRef* branch,
                                       PropagationStats& stats) const;

  const GoodFunctions& good_;
  const netlist::Structure& structure_;
  bdd::Var cut_var_;
};

}  // namespace dp::core
