// FrozenForest queries and Manager::freeze(), the pack-and-publish step
// of the shared-kernel split. freeze() renumbers reachable slots into a
// dense ascending range (deterministic for a given pool state: the remap
// preserves slot order, terminal -> 0) so the packed array is cache-dense
// and the remapped roots are reproducible across runs.
#include "bdd/frozen_forest.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "bdd/manager.hpp"

namespace dp::bdd {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

double pow2(std::uint64_t e) {
  double r = 1.0;
  while (e--) r *= 2.0;
  return r;
}

}  // namespace

std::size_t FrozenForest::bucket(Var v, NodeIndex lo_child,
                                 NodeIndex hi_child) const {
  std::uint64_t key = static_cast<std::uint64_t>(v);
  key = key * 0x100000001b3ull ^ lo_child;
  key = key * 0x100000001b3ull ^ hi_child;
  key *= 0x9e3779b97f4a7c15ull;
  return static_cast<std::size_t>(key >> 32) & bucket_mask_;
}

NodeIndex FrozenForest::find(Var v, NodeIndex lo_child,
                             NodeIndex hi_child) const {
  if (buckets_.empty()) return kInvalidNode;
  for (NodeIndex i = buckets_[bucket(v, lo_child, hi_child)];
       i != kInvalidNode; i = nodes_[i].next) {
    const Node& n = nodes_[i];
    if (n.var == v && n.lo == lo_child && n.hi == hi_child) return i;
  }
  return kInvalidNode;
}

double FrozenForest::sat_count(NodeIndex f, std::size_t nvars) const {
  // Same algorithm as Manager::sat_count: iterative post-order with a
  // full-edge memo (the two polarities of a slot count complementary
  // solution sets), level gaps contribute powers of two.
  std::unordered_map<NodeIndex, double> memo;
  memo.reserve(256);

  auto level_of = [&](NodeIndex e) -> std::uint64_t {
    Var v = nodes_[edge_slot(e)].var;
    return v == kTerminalVar ? nvars : level_of_var_[v];
  };

  std::vector<NodeIndex> stack{f};
  while (!stack.empty()) {
    NodeIndex n = stack.back();
    if (memo.count(n)) {
      stack.pop_back();
      continue;
    }
    if (n == kFalseNode) {
      memo[n] = 0.0;
      stack.pop_back();
      continue;
    }
    if (n == kTrueNode) {
      memo[n] = 1.0;
      stack.pop_back();
      continue;
    }
    const Node& nd = nodes_[edge_slot(n)];
    if (nd.var >= nvars) {
      throw BddError("sat_count(): function depends on a variable >= nvars");
    }
    const NodeIndex lo_e = nd.lo ^ edge_complemented(n);
    const NodeIndex hi_e = nd.hi ^ edge_complemented(n);
    auto it_lo = memo.find(lo_e);
    auto it_hi = memo.find(hi_e);
    if (it_lo != memo.end() && it_hi != memo.end()) {
      const std::uint64_t lvl = level_of(n);
      double lo_c = it_lo->second * pow2(level_of(lo_e) - lvl - 1);
      double hi_c = it_hi->second * pow2(level_of(hi_e) - lvl - 1);
      memo[n] = lo_c + hi_c;
      stack.pop_back();
    } else {
      if (it_lo == memo.end()) stack.push_back(lo_e);
      if (it_hi == memo.end()) stack.push_back(hi_e);
    }
  }
  return memo[f] * pow2(level_of(f));
}

bool FrozenForest::eval(NodeIndex f,
                        const std::vector<bool>& assignment) const {
  NodeIndex e = f;
  while (!edge_is_terminal(e)) {
    const Node& nd = nodes_[edge_slot(e)];
    if (nd.var >= assignment.size()) {
      throw BddError("eval(): assignment shorter than function support");
    }
    e = (assignment[nd.var] ? nd.hi : nd.lo) ^ edge_complemented(e);
  }
  return e == kTrueNode;
}

std::vector<Var> FrozenForest::support(NodeIndex f) const {
  std::vector<bool> present(num_vars_, false);
  std::unordered_set<NodeIndex> visited;
  std::vector<NodeIndex> stack{edge_slot(f)};
  while (!stack.empty()) {
    NodeIndex s = stack.back();
    stack.pop_back();
    if (s == 0 || !visited.insert(s).second) continue;
    const Node& nd = nodes_[s];
    present[nd.var] = true;
    stack.push_back(edge_slot(nd.lo));
    stack.push_back(edge_slot(nd.hi));
  }
  std::vector<Var> result;
  for (Var v = 0; v < num_vars_; ++v) {
    if (present[v]) result.push_back(v);
  }
  return result;
}

std::size_t FrozenForest::dag_size(NodeIndex f) const {
  std::unordered_set<NodeIndex> visited;
  std::vector<NodeIndex> stack{edge_slot(f)};
  while (!stack.empty()) {
    NodeIndex s = stack.back();
    stack.pop_back();
    if (!visited.insert(s).second) continue;
    if (s == 0) continue;
    stack.push_back(edge_slot(nodes_[s].lo));
    stack.push_back(edge_slot(nodes_[s].hi));
  }
  return visited.size();
}

void FrozenForest::check_canonical() const {
  if (nodes_.empty() || nodes_[0].var != kTerminalVar) {
    throw BddError("check_canonical(): frozen slot 0 is not the terminal");
  }
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(nodes_.size() * 2);
  for (NodeIndex i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const std::string at = " (frozen slot " + std::to_string(i) + ")";
    if (n.var == kTerminalVar) {
      throw BddError("check_canonical(): free-list slot in frozen pack" + at);
    }
    if (n.var >= num_vars_) {
      throw BddError("check_canonical(): variable id out of range" + at);
    }
    if (edge_complemented(n.lo)) {
      throw BddError("check_canonical(): stored else-edge is complemented" +
                     at);
    }
    if (n.lo == n.hi) {
      throw BddError("check_canonical(): unreduced node (lo == hi)" + at);
    }
    if (edge_slot(n.lo) >= nodes_.size() ||
        edge_slot(n.hi) >= nodes_.size()) {
      throw BddError("check_canonical(): dangling child slot" + at);
    }
    for (const NodeIndex child : {n.lo, n.hi}) {
      const Var cv = nodes_[edge_slot(child)].var;
      if (cv != kTerminalVar && level_of_var_[cv] <= level_of_var_[n.var]) {
        throw BddError(
            "check_canonical(): child level not below parent level" + at);
      }
    }
    std::uint64_t key = static_cast<std::uint64_t>(n.var);
    key = key * 0x100000001b3ull ^ n.lo;
    key = key * 0x100000001b3ull ^ n.hi;
    key *= 0x9e3779b97f4a7c15ull;
    if (!seen.insert(key).second) {
      throw BddError("check_canonical(): duplicate (var, lo, hi) triple" + at);
    }
  }
}

std::shared_ptr<const FrozenForest> Manager::freeze(
    const std::vector<NodeIndex>& roots,
    std::vector<NodeIndex>* remapped_roots) const {
  if (frozen_base_ != 0) {
    throw BddError("freeze(): manager already adopts a frozen forest");
  }

  // Polarity-blind reachability over slots: both edges into a slot freeze
  // the same node.
  std::vector<bool> reach(nodes_.size(), false);
  reach[0] = true;  // terminal always packs (to slot 0)
  std::vector<NodeIndex> stack;
  for (NodeIndex r : roots) {
    const NodeIndex s = edge_slot(r);
    if (s >= nodes_.size()) throw BddError("freeze(): root edge out of range");
    if (nodes_[s].var == kTerminalVar && s != 0) {
      throw BddError("freeze(): root edge into a free-list slot");
    }
    if (!reach[s]) {
      reach[s] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const NodeIndex s = stack.back();
    stack.pop_back();
    const Node& n = nodes_[s];
    if (n.var == kTerminalVar) continue;
    for (const NodeIndex child : {n.lo, n.hi}) {
      const NodeIndex cs = edge_slot(child);
      if (!reach[cs]) {
        reach[cs] = true;
        stack.push_back(cs);
      }
    }
  }

  // Pack in ascending slot order: the remap is monotone, the terminal
  // lands at 0, and the result is deterministic for a given pool state.
  auto forest = std::shared_ptr<FrozenForest>(new FrozenForest());
  forest->num_vars_ = num_vars_;
  forest->var_at_level_ = var_at_level_;
  forest->level_of_var_ = level_of_var_;

  std::vector<NodeIndex> remap(nodes_.size(), kInvalidNode);
  for (NodeIndex s = 0; s < nodes_.size(); ++s) {
    if (!reach[s]) continue;
    remap[s] = static_cast<NodeIndex>(forest->nodes_.size());
    forest->nodes_.push_back(nodes_[s]);
  }

  // Rewrite children into frozen numbering (complement bits ride along)
  // and thread the forest's own hash chains through Node::next.
  forest->nodes_[0] = Node{kTerminalVar, kTrueNode, kTrueNode, kInvalidNode};
  const std::size_t bucket_count =
      next_pow2(std::max<std::size_t>(16, forest->nodes_.size()));
  forest->buckets_.assign(bucket_count, kInvalidNode);
  forest->bucket_mask_ = bucket_count - 1;
  for (NodeIndex i = 1; i < forest->nodes_.size(); ++i) {
    Node& n = forest->nodes_[i];
    n.lo = make_edge(remap[edge_slot(n.lo)], edge_complemented(n.lo));
    n.hi = make_edge(remap[edge_slot(n.hi)], edge_complemented(n.hi));
    const std::size_t b = forest->bucket(n.var, n.lo, n.hi);
    n.next = forest->buckets_[b];
    forest->buckets_[b] = i;
  }

  if (remapped_roots) {
    remapped_roots->clear();
    remapped_roots->reserve(roots.size());
    for (NodeIndex r : roots) {
      remapped_roots->push_back(
          make_edge(remap[edge_slot(r)], edge_complemented(r)));
    }
  }
  return forest;
}

}  // namespace dp::bdd
