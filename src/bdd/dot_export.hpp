// Graphviz export for BDDs -- debugging and documentation aid.
#pragma once

#include <functional>
#include <ostream>
#include <string>

#include "bdd/bdd.hpp"

namespace dp::bdd {

/// Writes the DAG rooted at `f` in Graphviz dot syntax. `var_name` maps a
/// variable id to a label; defaults to "x<id>". Dashed edges are the
/// lo (var = 0) branches, solid edges the hi branches; complemented edges
/// carry an odot arrowhead and there is a single terminal box "1" (the
/// constant 0 is a complemented arc into it).
void write_dot(std::ostream& os, const Bdd& f,
               const std::function<std::string(Var)>& var_name = {});

}  // namespace dp::bdd
