// ROBDD manager: node pool, unique table, computed cache, mark-sweep GC.
//
// All BDDs live inside one Manager and are identified by NodeIndex *edges*
// ((slot << 1) | complement, see bdd_types.hpp); the strong-reduction
// invariant (no node with lo == hi, no duplicate (var, lo, hi) triples)
// plus the regular-else canonical rule make function equality a single
// edge comparison and negation a single bit flip. User code should hold
// nodes through the RAII `Bdd` handle (bdd.hpp), which keeps them alive
// across garbage collections.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bdd/bdd_types.hpp"
#include "bdd/computed_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace dp::bdd {

class Bdd;

class Manager : public obs::ProfileSource {
 public:
  /// `max_nodes` bounds the pool; exceeding it throws OutOfNodes so callers
  /// (e.g. cut-point decomposition in the DP engine) can react.
  explicit Manager(std::size_t num_vars = 0,
                   std::size_t max_nodes = 32u * 1024 * 1024);
  ~Manager() override;

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  // ---- variables -----------------------------------------------------

  /// Appends a new variable at the end of the order; returns its id.
  Var new_var();
  std::size_t num_vars() const { return num_vars_; }

  // ---- variable order (dynamic reordering) -----------------------------
  // Variable ids are stable names; their placement in the decision order
  // is a permutation that sifting rearranges in place. Node indices --
  // and therefore all live Bdd handles -- survive reordering.

  std::size_t level_of(Var v) const { return level_of_var_.at(v); }
  Var var_at_level(std::size_t level) const { return var_at_level_.at(level); }
  /// order[level] = variable id.
  const std::vector<Var>& variable_order() const { return var_at_level_; }

  /// Exchanges the variables at `level` and `level + 1` in place
  /// (Rudell's adjacent-swap). All node indices remain valid.
  void swap_adjacent_levels(std::size_t level);

  /// Rudell sifting: moves every variable through all positions and pins
  /// it where the live node count is smallest. `max_growth` aborts a
  /// direction when the graph exceeds best * max_growth. Returns the live
  /// node count after reordering.
  std::size_t sift_reorder(double max_growth = 2.0);

  /// Nodes reachable from externally referenced roots (terminal incl.).
  std::size_t count_live_from_roots() const;

  /// Test/debug oracle: walks every live pool slot and throws BddError on
  /// the first violation of the canonical complement-edge invariants --
  /// a complemented stored else-edge, lo == hi, a child at a level not
  /// strictly below its parent, a dangling child slot, or a duplicate
  /// (var, lo, hi) triple.
  void check_canonical() const;

  // ---- handle factories ----------------------------------------------

  Bdd zero();
  Bdd one();
  Bdd var(Var v);   ///< the function "v"
  Bdd nvar(Var v);  ///< the function "not v"
  Bdd make(NodeIndex idx);  ///< wrap an existing edge in a handle

  // ---- raw node-level operations (top-level entry points) -------------
  // These may trigger garbage collection before doing any work; operands
  // must be protected by external references (automatic via Bdd handles).

  NodeIndex apply(Op op, NodeIndex a, NodeIndex b);
  /// O(1): flips the complement bit. Never allocates, never collects.
  NodeIndex negate(NodeIndex f);
  NodeIndex ite(NodeIndex f, NodeIndex g, NodeIndex h);
  NodeIndex restrict_var(NodeIndex f, Var v, bool value);
  NodeIndex exists_var(NodeIndex f, Var v);
  NodeIndex compose(NodeIndex f, Var v, NodeIndex g);

  // ---- queries (never allocate nodes) ---------------------------------

  /// Number of satisfying assignments over variables [0, nvars).
  /// Exact for nvars <= 52 (double holds the integer exactly).
  double sat_count(NodeIndex f, std::size_t nvars) const;

  /// Variables the function actually depends on, ascending.
  std::vector<Var> support(NodeIndex f) const;

  /// Nodes in the DAG rooted at f (pool slots, terminal included) --
  /// complement polarity does not change the count.
  std::size_t dag_size(NodeIndex f) const;

  /// Evaluate under a complete assignment (indexed by Var).
  bool eval(NodeIndex f, const std::vector<bool>& assignment) const;

  /// One satisfying cube, or empty vector if f == false.
  /// Entry v is 0, 1, or -1 (don't-care). Size == num_vars().
  std::vector<signed char> sat_one(NodeIndex f) const;

  // ---- memory management ----------------------------------------------

  void inc_ref(NodeIndex idx);
  void dec_ref(NodeIndex idx);

  /// Mark-sweep collection from externally referenced roots.
  /// Returns the number of nodes reclaimed.
  std::size_t gc();

  std::size_t live_nodes() const { return live_nodes_; }
  std::size_t pool_size() const { return nodes_.size(); }
  std::size_t unique_bucket_count() const { return unique_.size(); }
  const ManagerStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ManagerStats{}; }

  /// Publishes the manager's current state as live gauges named
  /// `<prefix>.<metric>`: node counts, GC activity, unique-table load
  /// (live nodes per hash bucket), and the computed-cache hit rate.
  /// Snapshot values, not deltas -- call again to refresh.
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "bdd") const;

  /// SamplingProfiler hook (obs::ProfileSource): emits
  /// `bdd.mgr<N>.live_nodes`, `.unique_load`, and `.cache_hit_rate`
  /// where N is this manager's process-unique id. Reads are word-sized
  /// and unsynchronized -- a sample racing a mutation may be one update
  /// stale, which is fine for a 10ms-period gauge series.
  void profile_sample(
      std::vector<std::pair<std::string, double>>& out) const override;

  // ---- edge accessors --------------------------------------------------
  // All three child/label accessors take *edges* and fold the edge's
  // complement bit into the children, so lo(e)/hi(e) are the true cofactor
  // edges of the function e denotes. Raw stored fields (canonical form,
  // else always regular) are reachable via node(edge_slot(e)).

  const Node& node(NodeIndex slot) const { return nodes_[slot]; }
  Var var_of(NodeIndex e) const { return nodes_[edge_slot(e)].var; }
  NodeIndex lo(NodeIndex e) const {
    return nodes_[edge_slot(e)].lo ^ edge_complemented(e);
  }
  NodeIndex hi(NodeIndex e) const {
    return nodes_[edge_slot(e)].hi ^ edge_complemented(e);
  }
  bool is_terminal(NodeIndex e) const { return edge_is_terminal(e); }

 private:
  friend class Bdd;

  /// Find-or-insert the reduced node for cofactor edges (v, lo, hi);
  /// canonicalizes so the stored else-edge is regular and returns the
  /// (possibly complemented) edge denoting ite(v, hi, lo).
  NodeIndex mk(Var v, NodeIndex lo_child, NodeIndex hi_child);

  NodeIndex allocate_node();
  void rehash_unique(std::size_t bucket_count);
  std::size_t unique_bucket(Var v, NodeIndex lo_child, NodeIndex hi_child) const;
  void maybe_gc();

  // Recursive workers (no GC inside).
  std::size_t level_of_node(NodeIndex e) const {
    const Var v = nodes_[edge_slot(e)].var;
    return v == kTerminalVar ? num_vars_ : level_of_var_[v];
  }
  void mark_from_roots(std::vector<bool>& marked) const;
  void sift_one_var(Var v, double max_growth);

  NodeIndex apply_rec(Op op, NodeIndex a, NodeIndex b);
  NodeIndex and_rec(NodeIndex a, NodeIndex b);
  NodeIndex xor_rec(NodeIndex a, NodeIndex b);
  NodeIndex restrict_rec(NodeIndex f, Var v, bool value);
  NodeIndex exists_rec(NodeIndex f, Var v);

  std::size_t num_vars_ = 0;
  std::size_t max_nodes_ = 0;
  std::size_t live_nodes_ = 0;
  std::size_t gc_threshold_ = 0;
  std::size_t gc_threshold_floor_ = 0;

  std::vector<Var> var_at_level_;        ///< level -> variable id
  std::vector<std::size_t> level_of_var_;  ///< variable id -> level

  std::vector<Node> nodes_;              ///< indexed by slot
  std::vector<std::uint32_t> ext_refs_;  ///< external refcount per slot
  std::vector<NodeIndex> unique_;        ///< unique-table bucket heads (slots)
  std::size_t unique_mask_ = 0;
  NodeIndex free_list_ = kInvalidNode;

  ComputedCache cache_;

  ManagerStats stats_;

  std::uint64_t profile_id_ = 0;  ///< process-unique id for profiler series

};

}  // namespace dp::bdd
