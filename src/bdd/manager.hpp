// ROBDD manager: node pool, unique table, computed cache, mark-sweep GC.
//
// All BDDs live inside one Manager and are identified by NodeIndex; the
// strong-reduction invariant (no node with lo == hi, no duplicate
// (var, lo, hi) triples) makes function equality a pointer comparison.
// User code should hold nodes through the RAII `Bdd` handle (bdd.hpp),
// which keeps them alive across garbage collections.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bdd/bdd_types.hpp"
#include "bdd/computed_cache.hpp"
#include "obs/metrics.hpp"

namespace dp::bdd {

class Bdd;

class Manager {
 public:
  /// `max_nodes` bounds the pool; exceeding it throws OutOfNodes so callers
  /// (e.g. cut-point decomposition in the DP engine) can react.
  explicit Manager(std::size_t num_vars = 0,
                   std::size_t max_nodes = 32u * 1024 * 1024);

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  // ---- variables -----------------------------------------------------

  /// Appends a new variable at the end of the order; returns its id.
  Var new_var();
  std::size_t num_vars() const { return num_vars_; }

  // ---- variable order (dynamic reordering) -----------------------------
  // Variable ids are stable names; their placement in the decision order
  // is a permutation that sifting rearranges in place. Node indices --
  // and therefore all live Bdd handles -- survive reordering.

  std::size_t level_of(Var v) const { return level_of_var_.at(v); }
  Var var_at_level(std::size_t level) const { return var_at_level_.at(level); }
  /// order[level] = variable id.
  const std::vector<Var>& variable_order() const { return var_at_level_; }

  /// Exchanges the variables at `level` and `level + 1` in place
  /// (Rudell's adjacent-swap). All node indices remain valid.
  void swap_adjacent_levels(std::size_t level);

  /// Rudell sifting: moves every variable through all positions and pins
  /// it where the live node count is smallest. `max_growth` aborts a
  /// direction when the graph exceeds best * max_growth. Returns the live
  /// node count after reordering.
  std::size_t sift_reorder(double max_growth = 2.0);

  /// Nodes reachable from externally referenced roots (terminals incl.).
  std::size_t count_live_from_roots() const;

  // ---- handle factories ----------------------------------------------

  Bdd zero();
  Bdd one();
  Bdd var(Var v);   ///< the function "v"
  Bdd nvar(Var v);  ///< the function "not v"
  Bdd make(NodeIndex idx);  ///< wrap an existing node in a handle

  // ---- raw node-level operations (top-level entry points) -------------
  // These may trigger garbage collection before doing any work; operands
  // must be protected by external references (automatic via Bdd handles).

  NodeIndex apply(Op op, NodeIndex a, NodeIndex b);
  NodeIndex negate(NodeIndex f);
  NodeIndex ite(NodeIndex f, NodeIndex g, NodeIndex h);
  NodeIndex restrict_var(NodeIndex f, Var v, bool value);
  NodeIndex exists_var(NodeIndex f, Var v);
  NodeIndex compose(NodeIndex f, Var v, NodeIndex g);

  // ---- queries (never allocate nodes) ---------------------------------

  /// Number of satisfying assignments over variables [0, nvars).
  /// Exact for nvars <= 52 (double holds the integer exactly).
  double sat_count(NodeIndex f, std::size_t nvars) const;

  /// Variables the function actually depends on, ascending.
  std::vector<Var> support(NodeIndex f) const;

  /// Nodes in the DAG rooted at f, terminals included.
  std::size_t dag_size(NodeIndex f) const;

  /// Evaluate under a complete assignment (indexed by Var).
  bool eval(NodeIndex f, const std::vector<bool>& assignment) const;

  /// One satisfying cube, or empty vector if f == false.
  /// Entry v is 0, 1, or -1 (don't-care). Size == num_vars().
  std::vector<signed char> sat_one(NodeIndex f) const;

  // ---- memory management ----------------------------------------------

  void inc_ref(NodeIndex idx);
  void dec_ref(NodeIndex idx);

  /// Mark-sweep collection from externally referenced roots.
  /// Returns the number of nodes reclaimed.
  std::size_t gc();

  std::size_t live_nodes() const { return live_nodes_; }
  std::size_t pool_size() const { return nodes_.size(); }
  std::size_t unique_bucket_count() const { return unique_.size(); }
  const ManagerStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ManagerStats{}; }

  /// Publishes the manager's current state as live gauges named
  /// `<prefix>.<metric>`: node counts, GC activity, unique-table load
  /// (live nodes per hash bucket), and the computed-cache hit rate.
  /// Snapshot values, not deltas -- call again to refresh.
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "bdd") const;

  // ---- node accessors --------------------------------------------------

  const Node& node(NodeIndex idx) const { return nodes_[idx]; }
  Var var_of(NodeIndex idx) const { return nodes_[idx].var; }
  NodeIndex lo(NodeIndex idx) const { return nodes_[idx].lo; }
  NodeIndex hi(NodeIndex idx) const { return nodes_[idx].hi; }
  bool is_terminal(NodeIndex idx) const { return idx <= kTrueNode; }

 private:
  friend class Bdd;

  /// Find-or-insert the reduced node (v, lo_child, hi_child).
  NodeIndex mk(Var v, NodeIndex lo_child, NodeIndex hi_child);

  NodeIndex allocate_node();
  void rehash_unique(std::size_t bucket_count);
  std::size_t unique_bucket(Var v, NodeIndex lo_child, NodeIndex hi_child) const;
  void maybe_gc();

  // Recursive workers (no GC inside).
  std::size_t level_of_node(NodeIndex idx) const {
    const Var v = nodes_[idx].var;
    return v == kTerminalVar ? num_vars_ : level_of_var_[v];
  }
  void mark_from_roots(std::vector<bool>& marked) const;
  void sift_one_var(Var v, double max_growth);

  NodeIndex apply_rec(Op op, NodeIndex a, NodeIndex b);
  NodeIndex negate_rec(NodeIndex f);
  NodeIndex restrict_rec(NodeIndex f, Var v, bool value);
  NodeIndex exists_rec(NodeIndex f, Var v);

  std::size_t num_vars_ = 0;
  std::size_t max_nodes_ = 0;
  std::size_t live_nodes_ = 0;
  std::size_t gc_threshold_ = 0;
  std::size_t gc_threshold_floor_ = 0;

  std::vector<Var> var_at_level_;        ///< level -> variable id
  std::vector<std::size_t> level_of_var_;  ///< variable id -> level

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> ext_refs_;  ///< external refcount per node
  std::vector<NodeIndex> unique_;        ///< unique-table bucket heads
  std::size_t unique_mask_ = 0;
  NodeIndex free_list_ = kInvalidNode;

  ComputedCache cache_;

  ManagerStats stats_;
};

}  // namespace dp::bdd
