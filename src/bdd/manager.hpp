// ROBDD manager: node pool, unique table, computed cache, mark-sweep GC.
//
// All BDDs live inside one Manager and are identified by NodeIndex *edges*
// ((slot << 1) | complement, see bdd_types.hpp); the strong-reduction
// invariant (no node with lo == hi, no duplicate (var, lo, hi) triples)
// plus the regular-else canonical rule make function equality a single
// edge comparison and negation a single bit flip. User code should hold
// nodes through the RAII `Bdd` handle (bdd.hpp), which keeps them alive
// across garbage collections.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "bdd/bdd_types.hpp"
#include "bdd/computed_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace dp::bdd {

class Bdd;
class FrozenForest;

class Manager : public obs::ProfileSource {
 public:
  /// `max_nodes` bounds the pool; exceeding it throws OutOfNodes so callers
  /// (e.g. cut-point decomposition in the DP engine) can react.
  explicit Manager(std::size_t num_vars = 0,
                   std::size_t max_nodes = 32u * 1024 * 1024);

  /// Adopting constructor: splices `frozen` in as a read-only node prefix
  /// occupying slots [0, frozen->size()) and hosts only private nodes
  /// above it. Frozen handles are valid edges of this manager (they keep
  /// their numeric values), frozen nodes are immortal (ref counting and
  /// GC ignore them), and mk() probes the frozen unique index first so
  /// the combined node space stays strongly reduced. The variable count
  /// and order are inherited from the forest. `max_nodes` is the budget
  /// for the COMBINED space (frozen prefix + private pool), so a
  /// `bdd_node_limit` keeps meaning "total nodes in this analysis
  /// universe" whether or not the universe is shared.
  explicit Manager(std::shared_ptr<const FrozenForest> frozen,
                   std::size_t max_nodes = 32u * 1024 * 1024);

  ~Manager() override;

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  // ---- variables -----------------------------------------------------

  /// Appends a new variable at the end of the order; returns its id.
  Var new_var();
  std::size_t num_vars() const { return num_vars_; }

  // ---- variable order (dynamic reordering) -----------------------------
  // Variable ids are stable names; their placement in the decision order
  // is a permutation that sifting rearranges in place. Node indices --
  // and therefore all live Bdd handles -- survive reordering.

  std::size_t level_of(Var v) const { return level_of_var_.at(v); }
  Var var_at_level(std::size_t level) const { return var_at_level_.at(level); }
  /// order[level] = variable id.
  const std::vector<Var>& variable_order() const { return var_at_level_; }

  /// Exchanges the variables at `level` and `level + 1` in place
  /// (Rudell's adjacent-swap). All node indices remain valid.
  void swap_adjacent_levels(std::size_t level);

  /// Rudell sifting: moves every variable through all positions and pins
  /// it where the live node count is smallest. `max_growth` aborts a
  /// direction when the graph exceeds best * max_growth. Returns the live
  /// node count after reordering.
  std::size_t sift_reorder(double max_growth = 2.0);

  /// Nodes reachable from externally referenced roots (terminal incl.).
  std::size_t count_live_from_roots() const;

  /// Test/debug oracle: walks every live pool slot and throws BddError on
  /// the first violation of the canonical complement-edge invariants --
  /// a complemented stored else-edge, lo == hi, a child at a level not
  /// strictly below its parent, a dangling child slot, or a duplicate
  /// (var, lo, hi) triple. In an adopting manager the duplicate check
  /// also probes the frozen index: a private node replicating a frozen
  /// triple breaks strong reduction of the combined space.
  void check_canonical() const;

  // ---- frozen forest ---------------------------------------------------

  /// Packs every node reachable from `roots` (terminal included) into an
  /// immutable FrozenForest readable lock-free by any thread. Slots are
  /// renumbered densely in ascending order (terminal -> 0); the edges
  /// denoting the same functions in forest numbering are written to
  /// `remapped_roots` when non-null, preserving complement bits. The
  /// source manager is not modified. Throws if this manager itself
  /// adopts a frozen forest (no stacking).
  std::shared_ptr<const FrozenForest> freeze(
      const std::vector<NodeIndex>& roots,
      std::vector<NodeIndex>* remapped_roots = nullptr) const;

  /// Number of slots occupied by the adopted frozen prefix (0 when this
  /// manager owns its whole pool).
  std::size_t frozen_nodes() const { return frozen_base_; }
  bool has_frozen_base() const { return frozen_base_ != 0; }
  /// The adopted forest, or nullptr.
  const std::shared_ptr<const FrozenForest>& frozen_forest() const {
    return frozen_;
  }

  // ---- handle factories ----------------------------------------------

  Bdd zero();
  Bdd one();
  Bdd var(Var v);   ///< the function "v"
  Bdd nvar(Var v);  ///< the function "not v"
  Bdd make(NodeIndex idx);  ///< wrap an existing edge in a handle

  // ---- raw node-level operations (top-level entry points) -------------
  // These may trigger garbage collection before doing any work; operands
  // must be protected by external references (automatic via Bdd handles).

  NodeIndex apply(Op op, NodeIndex a, NodeIndex b);
  /// O(1): flips the complement bit. Never allocates, never collects.
  NodeIndex negate(NodeIndex f);
  NodeIndex ite(NodeIndex f, NodeIndex g, NodeIndex h);
  NodeIndex restrict_var(NodeIndex f, Var v, bool value);
  NodeIndex exists_var(NodeIndex f, Var v);
  NodeIndex compose(NodeIndex f, Var v, NodeIndex g);

  // ---- queries (never allocate nodes) ---------------------------------

  /// Number of satisfying assignments over variables [0, nvars).
  /// Exact for nvars <= 52 (double holds the integer exactly).
  double sat_count(NodeIndex f, std::size_t nvars) const;

  /// Variables the function actually depends on, ascending.
  std::vector<Var> support(NodeIndex f) const;

  /// Nodes in the DAG rooted at f (pool slots, terminal included) --
  /// complement polarity does not change the count.
  std::size_t dag_size(NodeIndex f) const;

  /// Evaluate under a complete assignment (indexed by Var).
  bool eval(NodeIndex f, const std::vector<bool>& assignment) const;

  /// One satisfying cube, or empty vector if f == false.
  /// Entry v is 0, 1, or -1 (don't-care). Size == num_vars().
  std::vector<signed char> sat_one(NodeIndex f) const;

  // ---- memory management ----------------------------------------------

  void inc_ref(NodeIndex idx);
  void dec_ref(NodeIndex idx);

  /// Mark-sweep collection from externally referenced roots.
  /// Returns the number of nodes reclaimed.
  std::size_t gc();

  /// Adjusts the adaptive GC trigger floor. The default (1 << 22 nodes)
  /// favors throughput: small workloads never collect, at the price of
  /// live-node accounting that includes dropped intermediates. Churn-heavy
  /// workloads -- a fault sweep builds and drops one test-set BDD per
  /// fault -- set a small floor so collections track the true working set;
  /// after each collection the trigger re-arms at max(floor, 2x live)
  /// either way. Purely a space/time policy: results are unaffected.
  void set_gc_floor(std::size_t floor_nodes) {
    gc_threshold_floor_ = std::max<std::size_t>(1, floor_nodes);
    gc_threshold_ = std::max(gc_threshold_floor_, live_nodes_ * 2);
  }

  /// Private live nodes (the frozen prefix, being immortal, is not
  /// included -- see frozen_nodes() for that side).
  std::size_t live_nodes() const { return live_nodes_; }
  /// Combined slot-space size: frozen prefix + private pool.
  std::size_t pool_size() const { return frozen_base_ + nodes_.size(); }
  std::size_t unique_bucket_count() const { return unique_.size(); }
  const ManagerStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ManagerStats{}; }

  /// Publishes the manager's current state as live gauges named
  /// `<prefix>.<metric>`: node counts, GC activity, unique-table load
  /// (live nodes per hash bucket), and the computed-cache hit rate.
  /// Snapshot values, not deltas -- call again to refresh.
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "bdd") const;

  /// SamplingProfiler hook (obs::ProfileSource): emits
  /// `bdd.mgr<N>.live_nodes`, `.unique_load`, and `.cache_hit_rate`
  /// where N is this manager's process-unique id. Reads are word-sized
  /// and unsynchronized -- a sample racing a mutation may be one update
  /// stale, which is fine for a 10ms-period gauge series.
  void profile_sample(
      std::vector<std::pair<std::string, double>>& out) const override;

  // ---- edge accessors --------------------------------------------------
  // All three child/label accessors take *edges* and fold the edge's
  // complement bit into the children, so lo(e)/hi(e) are the true cofactor
  // edges of the function e denotes. Raw stored fields (canonical form,
  // else always regular) are reachable via node(edge_slot(e)).
  // Slots below frozen_base_ resolve into the adopted forest's packed
  // array (read-only, shared across threads); the rest into the private
  // pool. A standalone manager has frozen_base_ == 0 and the test below
  // is never true, so the hot path costs one always-false compare.

  const Node& node(NodeIndex slot) const {
    return slot < frozen_base_ ? frozen_nodes_data_[slot]
                               : nodes_[slot - frozen_base_];
  }
  Var var_of(NodeIndex e) const { return node(edge_slot(e)).var; }
  NodeIndex lo(NodeIndex e) const {
    return node(edge_slot(e)).lo ^ edge_complemented(e);
  }
  NodeIndex hi(NodeIndex e) const {
    return node(edge_slot(e)).hi ^ edge_complemented(e);
  }
  bool is_terminal(NodeIndex e) const { return edge_is_terminal(e); }

 private:
  friend class Bdd;

  /// Find-or-insert the reduced node for cofactor edges (v, lo, hi);
  /// canonicalizes so the stored else-edge is regular and returns the
  /// (possibly complemented) edge denoting ite(v, hi, lo).
  NodeIndex mk(Var v, NodeIndex lo_child, NodeIndex hi_child);

  NodeIndex allocate_node();
  void rehash_unique(std::size_t bucket_count);
  std::size_t unique_bucket(Var v, NodeIndex lo_child, NodeIndex hi_child) const;
  void maybe_gc();

  /// Mutable private-node access (global slot; must be >= frozen_base_).
  Node& node_mut(NodeIndex slot) { return nodes_[slot - frozen_base_]; }
  /// First private *index* worth sweeping: a standalone manager's index 0
  /// is the terminal (never swept/rehashed); an adopting manager's pool
  /// holds only decision nodes.
  NodeIndex first_private_index() const { return frozen_base_ == 0 ? 1 : 0; }

  // Recursive workers (no GC inside).
  std::size_t level_of_node(NodeIndex e) const {
    const Var v = node(edge_slot(e)).var;
    return v == kTerminalVar ? num_vars_ : level_of_var_[v];
  }
  void mark_from_roots(std::vector<bool>& marked) const;
  void sift_one_var(Var v, double max_growth);

  NodeIndex apply_rec(Op op, NodeIndex a, NodeIndex b);
  NodeIndex and_rec(NodeIndex a, NodeIndex b);
  NodeIndex xor_rec(NodeIndex a, NodeIndex b);
  NodeIndex restrict_rec(NodeIndex f, Var v, bool value);
  NodeIndex exists_rec(NodeIndex f, Var v);

  std::size_t num_vars_ = 0;
  std::size_t max_nodes_ = 0;
  std::size_t live_nodes_ = 0;
  std::size_t gc_threshold_ = 0;
  std::size_t gc_threshold_floor_ = 0;

  std::vector<Var> var_at_level_;        ///< level -> variable id
  std::vector<std::size_t> level_of_var_;  ///< variable id -> level

  std::vector<Node> nodes_;  ///< private nodes, indexed by slot - frozen_base_
  std::vector<std::uint32_t> ext_refs_;  ///< external refcount, same indexing
  std::vector<NodeIndex> unique_;  ///< bucket heads (global slots, private only)
  std::size_t unique_mask_ = 0;
  NodeIndex free_list_ = kInvalidNode;  ///< global slots

  // Adopted read-only prefix (empty in a standalone manager). The raw
  // pointer caches frozen_->nodes_data() so node() stays branch+load.
  std::shared_ptr<const FrozenForest> frozen_;
  const Node* frozen_nodes_data_ = nullptr;
  NodeIndex frozen_base_ = 0;

  ComputedCache cache_;

  ManagerStats stats_;

  std::uint64_t profile_id_ = 0;  ///< process-unique id for profiler series

};

}  // namespace dp::bdd
