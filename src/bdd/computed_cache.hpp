// Direct-mapped computed table for BDD operations (CUDD-style).
//
// Collisions silently evict: the cache is an accelerator, never a source of
// truth, so a lost entry only costs recomputation.
#pragma once

#include <cstddef>
#include <vector>

#include "bdd/bdd_types.hpp"

namespace dp::bdd {

class ComputedCache {
 public:
  /// `slots` is rounded up to a power of two.
  explicit ComputedCache(std::size_t slots = 1u << 20) { resize(slots); }

  void resize(std::size_t slots) {
    std::size_t n = 1;
    while (n < slots) n <<= 1;
    mask_ = n - 1;
    entries_.assign(n, Entry{});
  }

  /// Returns kInvalidNode on miss.
  NodeIndex lookup(Op op, NodeIndex a, NodeIndex b) const {
    const Entry& e = entries_[slot(op, a, b)];
    if (e.op == op && e.a == a && e.b == b) return e.result;
    return kInvalidNode;
  }

  void insert(Op op, NodeIndex a, NodeIndex b, NodeIndex result) {
    entries_[slot(op, a, b)] = Entry{a, b, result, op};
  }

  void clear() { entries_.assign(entries_.size(), Entry{}); }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    NodeIndex a = kInvalidNode;
    NodeIndex b = kInvalidNode;
    NodeIndex result = kInvalidNode;
    Op op = Op::And;
  };

  std::size_t slot(Op op, NodeIndex a, NodeIndex b) const {
    // Fibonacci hashing over the packed triple.
    std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) ^
                        (static_cast<std::uint64_t>(b) << 8) ^
                        static_cast<std::uint64_t>(op);
    key *= 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(key >> 40) & mask_;
  }

  std::vector<Entry> entries_;
  std::size_t mask_ = 0;
};

}  // namespace dp::bdd
