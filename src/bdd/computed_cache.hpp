// Direct-mapped computed table for BDD operations (CUDD-style).
//
// Collisions silently evict: the cache is an accelerator, never a source of
// truth, so a lost entry only costs recomputation.
//
// Keys are (op, a, b) with a and b full *edges* -- the complement bit is
// part of the key, so f&g and f&¬g occupy distinct entries. Callers
// canonicalize commutative operands (a <= b) before keying; the slot mix
// below keeps `op` in its own bit range so an op id can never alias into
// an operand's bits (the old packing XORed op into b's low byte, which
// collided (op=And, b) with (op=Xor, b^2) systematically).
#pragma once

#include <cstddef>
#include <vector>

#include "bdd/bdd_types.hpp"

namespace dp::bdd {

class ComputedCache {
 public:
  /// `slots` is rounded up to a power of two.
  explicit ComputedCache(std::size_t slots = 1u << 20) { resize(slots); }

  void resize(std::size_t slots) {
    std::size_t n = 1;
    while (n < slots) n <<= 1;
    mask_ = n - 1;
    entries_.assign(n, Entry{});
  }

  /// Returns kInvalidNode on miss.
  NodeIndex lookup(Op op, NodeIndex a, NodeIndex b) const {
    const Entry& e = entries_[slot(op, a, b)];
    if (e.op == op && e.a == a && e.b == b) return e.result;
    return kInvalidNode;
  }

  void insert(Op op, NodeIndex a, NodeIndex b, NodeIndex result) {
    entries_[slot(op, a, b)] = Entry{a, b, result, op};
  }

  void clear() { entries_.assign(entries_.size(), Entry{}); }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    NodeIndex a = kInvalidNode;
    NodeIndex b = kInvalidNode;
    NodeIndex result = kInvalidNode;
    Op op = Op::And;
  };

  std::size_t slot(Op op, NodeIndex a, NodeIndex b) const {
    // The operands fill the low 64 bits; a first multiplicative mix
    // diffuses them, then `op` lands in bits 56..63 -- a range no operand
    // bit occupies pre-mix -- and a second multiply spreads it. Two
    // finalizer-style rounds keep the high bits (the ones the slot index
    // is drawn from) sensitive to every key bit.
    std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) |
                        static_cast<std::uint64_t>(b);
    key *= 0x9e3779b97f4a7c15ull;
    key ^= static_cast<std::uint64_t>(op) << 56;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return static_cast<std::size_t>(key >> 32) & mask_;
  }

  std::vector<Entry> entries_;
  std::size_t mask_ = 0;
};

}  // namespace dp::bdd
