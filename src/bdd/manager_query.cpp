// Read-only queries: satisfying-assignment counting, support, DAG size,
// evaluation, and cube extraction. None of these allocate BDD nodes.
//
// Every traversal interprets complement parity along the path: an edge's
// sign bit is folded into the children it exposes (Manager::lo/hi do this),
// so a function and its negation share the same slots but enumerate
// complementary terminals.
#include <unordered_map>
#include <unordered_set>

#include "bdd/manager.hpp"

namespace dp::bdd {

namespace {

double pow2(std::uint64_t e) {
  double r = 1.0;
  while (e--) r *= 2.0;
  return r;
}

}  // namespace

double Manager::sat_count(NodeIndex f, std::size_t nvars) const {
  // c(e) = number of solutions over the variables strictly below e's level,
  // with the terminal sitting at level `nvars`. The memo is keyed on full
  // edges: the two polarities of a slot count complementary sets, so they
  // get independent entries.
  std::unordered_map<NodeIndex, double> memo;
  memo.reserve(256);

  // Levels follow the current (possibly sifted) order; counting over
  // levels is equivalent to counting over variables since the order is a
  // permutation of [0, nvars).
  auto level_of = [&](NodeIndex e) -> std::uint64_t {
    Var v = node(edge_slot(e)).var;
    return v == kTerminalVar ? nvars : level_of_var_[v];
  };

  // Iterative post-order to avoid deep recursion on path-shaped BDDs.
  std::vector<NodeIndex> stack{f};
  while (!stack.empty()) {
    NodeIndex n = stack.back();
    if (memo.count(n)) {
      stack.pop_back();
      continue;
    }
    if (n == kFalseNode) {
      memo[n] = 0.0;
      stack.pop_back();
      continue;
    }
    if (n == kTrueNode) {
      memo[n] = 1.0;
      stack.pop_back();
      continue;
    }
    const Node& nd = node(edge_slot(n));
    if (nd.var >= nvars) {
      throw BddError("sat_count(): function depends on a variable >= nvars");
    }
    const NodeIndex lo_e = lo(n);
    const NodeIndex hi_e = hi(n);
    auto it_lo = memo.find(lo_e);
    auto it_hi = memo.find(hi_e);
    if (it_lo != memo.end() && it_hi != memo.end()) {
      const std::uint64_t lvl = level_of(n);
      double lo_c = it_lo->second * pow2(level_of(lo_e) - lvl - 1);
      double hi_c = it_hi->second * pow2(level_of(hi_e) - lvl - 1);
      memo[n] = lo_c + hi_c;
      stack.pop_back();
    } else {
      if (it_lo == memo.end()) stack.push_back(lo_e);
      if (it_hi == memo.end()) stack.push_back(hi_e);
    }
  }
  return memo[f] * pow2(level_of(f));
}

std::vector<Var> Manager::support(NodeIndex f) const {
  // Polarity cannot change the support; walk slots.
  std::vector<bool> present(num_vars_, false);
  std::unordered_set<NodeIndex> visited;
  std::vector<NodeIndex> stack{edge_slot(f)};
  while (!stack.empty()) {
    NodeIndex s = stack.back();
    stack.pop_back();
    if (s == 0 || !visited.insert(s).second) continue;
    const Node& nd = node(s);
    present[nd.var] = true;
    stack.push_back(edge_slot(nd.lo));
    stack.push_back(edge_slot(nd.hi));
  }
  std::vector<Var> result;
  for (Var v = 0; v < num_vars_; ++v) {
    if (present[v]) result.push_back(v);
  }
  return result;
}

std::size_t Manager::dag_size(NodeIndex f) const {
  // Shared-structure size: distinct pool slots (terminal included), i.e.
  // what the DAG costs in memory -- both polarities of a child count once.
  std::unordered_set<NodeIndex> visited;
  std::vector<NodeIndex> stack{edge_slot(f)};
  while (!stack.empty()) {
    NodeIndex s = stack.back();
    stack.pop_back();
    if (!visited.insert(s).second) continue;
    if (s == 0) continue;
    stack.push_back(edge_slot(node(s).lo));
    stack.push_back(edge_slot(node(s).hi));
  }
  return visited.size();
}

bool Manager::eval(NodeIndex f, const std::vector<bool>& assignment) const {
  NodeIndex e = f;
  while (!edge_is_terminal(e)) {
    const Node& nd = node(edge_slot(e));
    if (nd.var >= assignment.size()) {
      throw BddError("eval(): assignment shorter than function support");
    }
    e = (assignment[nd.var] ? nd.hi : nd.lo) ^ edge_complemented(e);
  }
  return e == kTrueNode;
}

std::vector<signed char> Manager::sat_one(NodeIndex f) const {
  if (f == kFalseNode) return {};
  std::vector<signed char> cube(num_vars_, -1);
  NodeIndex e = f;
  while (!edge_is_terminal(e)) {
    const Node& nd = node(edge_slot(e));
    // In a canonical complement-edge BDD every edge other than the FALSE
    // constant is satisfiable (lo != hi bars both cofactors from being
    // FALSE at once), so any non-false child works.
    const NodeIndex hi_e = nd.hi ^ edge_complemented(e);
    if (hi_e != kFalseNode) {
      cube[nd.var] = 1;
      e = hi_e;
    } else {
      cube[nd.var] = 0;
      e = nd.lo ^ edge_complemented(e);
    }
  }
  return cube;
}

void Manager::export_metrics(obs::MetricsRegistry& registry,
                             const std::string& prefix) const {
  auto g = [&](const char* name, double v) {
    registry.gauge(prefix + "." + name).set(v);
  };
  g("live_nodes", static_cast<double>(live_nodes_));
  g("pool_size", static_cast<double>(pool_size()));
  g("frozen_nodes", static_cast<double>(frozen_base_));
  g("peak_live_nodes", static_cast<double>(stats_.peak_live_nodes));
  g("nodes_created", static_cast<double>(stats_.nodes_created));
  g("unique_table_buckets", static_cast<double>(unique_.size()));
  g("unique_table_load",
    unique_.empty() ? 0.0
                    : static_cast<double>(live_nodes_) /
                          static_cast<double>(unique_.size()));
  g("unique_lookups", static_cast<double>(stats_.unique_lookups));
  g("apply_calls", static_cast<double>(stats_.apply_calls));
  g("cache_hits", static_cast<double>(stats_.cache_hits));
  g("cache_hit_rate", stats_.cache_hit_rate());
  g("negations_constant_time",
    static_cast<double>(stats_.negations_constant_time));
  g("cache_canonical_swaps",
    static_cast<double>(stats_.cache_canonical_swaps));
  g("gc_runs", static_cast<double>(stats_.gc_runs));
  g("gc_reclaimed", static_cast<double>(stats_.gc_reclaimed));
  g("ref_underflows", static_cast<double>(stats_.ref_underflows));
}

}  // namespace dp::bdd
