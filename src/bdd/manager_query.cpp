// Read-only queries: satisfying-assignment counting, support, DAG size,
// evaluation, and cube extraction. None of these allocate BDD nodes.
#include <unordered_map>
#include <unordered_set>

#include "bdd/manager.hpp"

namespace dp::bdd {

namespace {

double pow2(std::uint64_t e) {
  double r = 1.0;
  while (e--) r *= 2.0;
  return r;
}

}  // namespace

double Manager::sat_count(NodeIndex f, std::size_t nvars) const {
  // c(n) = number of solutions over the variables strictly below n's level,
  // with terminals sitting at level `nvars`.
  std::unordered_map<NodeIndex, double> memo;
  memo.reserve(256);

  // Levels follow the current (possibly sifted) order; counting over
  // levels is equivalent to counting over variables since the order is a
  // permutation of [0, nvars).
  auto level_of = [&](NodeIndex n) -> std::uint64_t {
    Var v = nodes_[n].var;
    return v == kTerminalVar ? nvars : level_of_var_[v];
  };

  // Iterative post-order to avoid deep recursion on path-shaped BDDs.
  std::vector<NodeIndex> stack{f};
  while (!stack.empty()) {
    NodeIndex n = stack.back();
    if (memo.count(n)) {
      stack.pop_back();
      continue;
    }
    if (n == kFalseNode) {
      memo[n] = 0.0;
      stack.pop_back();
      continue;
    }
    if (n == kTrueNode) {
      memo[n] = 1.0;
      stack.pop_back();
      continue;
    }
    const Node& nd = nodes_[n];
    if (nd.var >= nvars) {
      throw BddError("sat_count(): function depends on a variable >= nvars");
    }
    auto it_lo = memo.find(nd.lo);
    auto it_hi = memo.find(nd.hi);
    if (it_lo != memo.end() && it_hi != memo.end()) {
      const std::uint64_t lvl = level_of(n);
      double lo_c = it_lo->second * pow2(level_of(nd.lo) - lvl - 1);
      double hi_c = it_hi->second * pow2(level_of(nd.hi) - lvl - 1);
      memo[n] = lo_c + hi_c;
      stack.pop_back();
    } else {
      if (it_lo == memo.end()) stack.push_back(nd.lo);
      if (it_hi == memo.end()) stack.push_back(nd.hi);
    }
  }
  return memo[f] * pow2(level_of(f));
}

std::vector<Var> Manager::support(NodeIndex f) const {
  std::vector<bool> present(num_vars_, false);
  std::unordered_set<NodeIndex> visited;
  std::vector<NodeIndex> stack{f};
  while (!stack.empty()) {
    NodeIndex n = stack.back();
    stack.pop_back();
    if (n <= kTrueNode || !visited.insert(n).second) continue;
    const Node& nd = nodes_[n];
    present[nd.var] = true;
    stack.push_back(nd.lo);
    stack.push_back(nd.hi);
  }
  std::vector<Var> result;
  for (Var v = 0; v < num_vars_; ++v) {
    if (present[v]) result.push_back(v);
  }
  return result;
}

std::size_t Manager::dag_size(NodeIndex f) const {
  std::unordered_set<NodeIndex> visited;
  std::vector<NodeIndex> stack{f};
  while (!stack.empty()) {
    NodeIndex n = stack.back();
    stack.pop_back();
    if (!visited.insert(n).second) continue;
    if (n <= kTrueNode) continue;
    stack.push_back(nodes_[n].lo);
    stack.push_back(nodes_[n].hi);
  }
  return visited.size();
}

bool Manager::eval(NodeIndex f, const std::vector<bool>& assignment) const {
  NodeIndex n = f;
  while (n > kTrueNode) {
    const Node& nd = nodes_[n];
    if (nd.var >= assignment.size()) {
      throw BddError("eval(): assignment shorter than function support");
    }
    n = assignment[nd.var] ? nd.hi : nd.lo;
  }
  return n == kTrueNode;
}

std::vector<signed char> Manager::sat_one(NodeIndex f) const {
  if (f == kFalseNode) return {};
  std::vector<signed char> cube(num_vars_, -1);
  NodeIndex n = f;
  while (n > kTrueNode) {
    const Node& nd = nodes_[n];
    // In a reduced BDD every node distinct from the false terminal has a
    // path to true, so any non-false child works.
    if (nd.hi != kFalseNode) {
      cube[nd.var] = 1;
      n = nd.hi;
    } else {
      cube[nd.var] = 0;
      n = nd.lo;
    }
  }
  return cube;
}

void Manager::export_metrics(obs::MetricsRegistry& registry,
                             const std::string& prefix) const {
  auto g = [&](const char* name, double v) {
    registry.gauge(prefix + "." + name).set(v);
  };
  g("live_nodes", static_cast<double>(live_nodes_));
  g("pool_size", static_cast<double>(nodes_.size()));
  g("peak_live_nodes", static_cast<double>(stats_.peak_live_nodes));
  g("nodes_created", static_cast<double>(stats_.nodes_created));
  g("unique_table_buckets", static_cast<double>(unique_.size()));
  g("unique_table_load",
    unique_.empty() ? 0.0
                    : static_cast<double>(live_nodes_) /
                          static_cast<double>(unique_.size()));
  g("unique_lookups", static_cast<double>(stats_.unique_lookups));
  g("apply_calls", static_cast<double>(stats_.apply_calls));
  g("cache_hits", static_cast<double>(stats_.cache_hits));
  g("cache_hit_rate", stats_.cache_hit_rate());
  g("gc_runs", static_cast<double>(stats_.gc_runs));
  g("gc_reclaimed", static_cast<double>(stats_.gc_reclaimed));
  g("ref_underflows", static_cast<double>(stats_.ref_underflows));
}

}  // namespace dp::bdd
