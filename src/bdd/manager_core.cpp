// Manager construction, unique table, allocation, references, garbage
// collection. The Boolean operations live in manager_ops.cpp; read-only
// queries live in manager_query.cpp.
#include "bdd/manager.hpp"

#include <algorithm>
#include <atomic>
#include <string>
#include <unordered_set>

#include "bdd/bdd.hpp"
#include "bdd/frozen_forest.hpp"

namespace dp::bdd {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Process-wide manager id sequence for profiler series names.
std::atomic<std::uint64_t> g_next_profile_id{0};

}  // namespace

Manager::Manager(std::size_t num_vars, std::size_t max_nodes)
    : num_vars_(num_vars), max_nodes_(max_nodes) {
  var_at_level_.resize(num_vars_);
  level_of_var_.resize(num_vars_);
  for (std::size_t i = 0; i < num_vars_; ++i) {
    var_at_level_[i] = static_cast<Var>(i);
    level_of_var_[i] = i;
  }
  if (max_nodes_ < 16) max_nodes_ = 16;
  // Edges spend one bit on the complement flag; slots must fit in 31 bits.
  max_nodes_ = std::min<std::size_t>(max_nodes_, edge_slot(kInvalidNode));
  nodes_.reserve(1024);
  ext_refs_.reserve(1024);

  // The single terminal (TRUE) occupies slot 0; FALSE is its complemented
  // edge. It is labelled with kTerminalVar so every real variable tests
  // before it, and it is never entered in the unique table nor swept.
  nodes_.push_back(Node{kTerminalVar, kTrueNode, kTrueNode, kInvalidNode});
  ext_refs_.assign(1, 0);
  live_nodes_ = 1;
  gc_threshold_floor_ = 1u << 22;
  gc_threshold_ = gc_threshold_floor_;

  rehash_unique(1u << 12);

  profile_id_ = g_next_profile_id.fetch_add(1, std::memory_order_relaxed);
  obs::SourceRegistry::instance().add(this);
}

Manager::Manager(std::shared_ptr<const FrozenForest> frozen,
                 std::size_t max_nodes)
    : max_nodes_(max_nodes), frozen_(std::move(frozen)) {
  if (!frozen_) {
    throw BddError("Manager(frozen): null forest");
  }
  // The frozen prefix occupies slots [0, frozen_base_), terminal included,
  // so the private pool starts empty: slot g maps to private index
  // g - frozen_base_ and every formula below degenerates to the standalone
  // case when frozen_base_ == 0.
  frozen_nodes_data_ = frozen_->nodes_data();
  frozen_base_ = static_cast<NodeIndex>(frozen_->size());
  num_vars_ = frozen_->num_vars();
  var_at_level_ = frozen_->variable_order();
  level_of_var_.resize(num_vars_);
  for (std::size_t level = 0; level < num_vars_; ++level) {
    level_of_var_[var_at_level_[level]] = level;
  }
  if (max_nodes_ < 16) max_nodes_ = 16;
  max_nodes_ = std::min<std::size_t>(max_nodes_, edge_slot(kInvalidNode));
  nodes_.reserve(1024);
  ext_refs_.reserve(1024);
  live_nodes_ = 0;
  gc_threshold_floor_ = 1u << 22;
  gc_threshold_ = gc_threshold_floor_;

  rehash_unique(1u << 12);

  profile_id_ = g_next_profile_id.fetch_add(1, std::memory_order_relaxed);
  obs::SourceRegistry::instance().add(this);
}

Manager::~Manager() {
  // Unregister before any member is torn down: the profiler thread holds
  // the registry mutex across collect(), so after remove() returns no
  // sample can still be reading this manager.
  obs::SourceRegistry::instance().remove(this);
}

void Manager::profile_sample(
    std::vector<std::pair<std::string, double>>& out) const {
  const std::string prefix = "bdd.mgr" + std::to_string(profile_id_);
  const double live = static_cast<double>(live_nodes_);
  out.emplace_back(prefix + ".live_nodes", live);
  if (!unique_.empty()) {
    out.emplace_back(prefix + ".unique_load",
                     live / static_cast<double>(unique_.size()));
  }
  if (stats_.apply_calls > 0) {
    out.emplace_back(prefix + ".cache_hit_rate",
                     static_cast<double>(stats_.cache_hits) /
                         static_cast<double>(stats_.apply_calls));
  }
}

Var Manager::new_var() {
  const Var v = static_cast<Var>(num_vars_++);
  var_at_level_.push_back(v);
  level_of_var_.push_back(level_of_var_.size());
  return v;
}

Bdd Manager::var(Var v) {
  if (v >= num_vars_) throw BddError("var(): variable id out of range");
  return make(mk(v, kFalseNode, kTrueNode));
}

Bdd Manager::nvar(Var v) {
  if (v >= num_vars_) throw BddError("nvar(): variable id out of range");
  return make(mk(v, kTrueNode, kFalseNode));
}

std::size_t Manager::unique_bucket(Var v, NodeIndex lo_child,
                                   NodeIndex hi_child) const {
  std::uint64_t key = static_cast<std::uint64_t>(v);
  key = key * 0x100000001b3ull ^ lo_child;
  key = key * 0x100000001b3ull ^ hi_child;
  key *= 0x9e3779b97f4a7c15ull;
  return static_cast<std::size_t>(key >> 32) & unique_mask_;
}

void Manager::rehash_unique(std::size_t bucket_count) {
  // Only private nodes are chained; frozen nodes are found through the
  // forest's own immutable index (FrozenForest::find), which mk() probes
  // first. Heads and chains store global slots.
  bucket_count = next_pow2(std::max<std::size_t>(bucket_count, 16));
  unique_.assign(bucket_count, kInvalidNode);
  unique_mask_ = bucket_count - 1;
  for (NodeIndex i = first_private_index(); i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.var == kTerminalVar) continue;  // free-list entry
    std::size_t b = unique_bucket(n.var, n.lo, n.hi);
    n.next = unique_[b];
    unique_[b] = frozen_base_ + i;
  }
}

NodeIndex Manager::allocate_node() {
  if (free_list_ != kInvalidNode) {
    NodeIndex idx = free_list_;
    free_list_ = node_mut(idx).next;
    ++live_nodes_;
    return idx;
  }
  // max_nodes_ budgets the combined space, so the frozen prefix counts
  // against it: a shared universe must not grow past the same ceiling an
  // unshared one would have hit.
  if (frozen_base_ + nodes_.size() >= max_nodes_) throw OutOfNodes(max_nodes_);
  nodes_.push_back(Node{});
  ext_refs_.push_back(0);
  ++live_nodes_;
  return frozen_base_ + static_cast<NodeIndex>(nodes_.size() - 1);
}

NodeIndex Manager::mk(Var v, NodeIndex lo_child, NodeIndex hi_child) {
  if (lo_child == hi_child) return lo_child;  // reduction rule

  // Canonical regular-else form: a complemented else cofactor is factored
  // out of the node -- ite(v, h, ¬l') = ¬ite(v, ¬h, l') -- so exactly one
  // stored triple (and one complement bit) represents each function pair.
  const NodeIndex out_c = edge_complemented(lo_child);
  lo_child ^= out_c;
  hi_child ^= out_c;

  ++stats_.unique_lookups;

  // A node whose children both live in the frozen prefix may itself be
  // frozen; probing the forest's immutable index first keeps the combined
  // space strongly reduced and lets Δ functions reuse shared structure
  // instead of duplicating it privately. (Children outside the prefix
  // cannot appear in the forest, so the probe is skipped.)
  if (frozen_base_ != 0 && edge_slot(lo_child) < frozen_base_ &&
      edge_slot(hi_child) < frozen_base_) {
    const NodeIndex f = frozen_->find(v, lo_child, hi_child);
    if (f != kInvalidNode) return make_edge(f, out_c);
  }

  std::size_t b = unique_bucket(v, lo_child, hi_child);
  for (NodeIndex i = unique_[b]; i != kInvalidNode; i = node(i).next) {
    const Node& n = node(i);
    if (n.var == v && n.lo == lo_child && n.hi == hi_child) {
      return make_edge(i, out_c);
    }
  }

  NodeIndex idx = allocate_node();
  Node& n = node_mut(idx);
  n.var = v;
  n.lo = lo_child;
  n.hi = hi_child;
  n.next = unique_[b];
  unique_[b] = idx;
  ++stats_.nodes_created;
  stats_.peak_live_nodes = std::max(stats_.peak_live_nodes, live_nodes_);

  if (live_nodes_ > unique_.size()) {
    rehash_unique(unique_.size() * 2);
  }
  return make_edge(idx, out_c);
}

void Manager::inc_ref(NodeIndex idx) {
  const NodeIndex slot = edge_slot(idx);
  if (slot < frozen_base_) return;  // frozen prefix is immortal
  const NodeIndex pi = slot - frozen_base_;
  if (pi >= nodes_.size()) throw BddError("inc_ref(): bad node index");
  ++ext_refs_[pi];
}

void Manager::dec_ref(NodeIndex idx) {
  const NodeIndex slot = edge_slot(idx);
  if (slot < frozen_base_) return;  // frozen prefix is immortal
  const NodeIndex pi = slot - frozen_base_;
  if (pi >= nodes_.size()) throw BddError("dec_ref(): bad node index");
  // A release without a matching reference is a caller bug (double
  // release). The unsigned counter must never wrap: an underflowed
  // refcount pins the node -- and its whole cone -- forever, silently
  // leaking pool capacity. Clamp at zero and count the incident so tests
  // and the engine stats layer can fail loudly; dec_ref runs inside Bdd
  // destructors, where throwing would terminate during unwinding.
  if (ext_refs_[pi] == 0) {
    ++stats_.ref_underflows;
    return;
  }
  --ext_refs_[pi];
}

void Manager::mark_from_roots(std::vector<bool>& marked) const {
  // Reachability is polarity-blind, so marking works on slots: both edges
  // into a slot keep the same node alive. `marked` is indexed by private
  // index; the frozen prefix is immortal and never enters the walk.
  marked.assign(nodes_.size(), false);
  if (frozen_base_ == 0) marked[0] = true;  // terminal
  std::vector<NodeIndex> stack;
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (ext_refs_[i] > 0 && !marked[i]) {
      stack.push_back(i);
      marked[i] = true;
    }
  }
  while (!stack.empty()) {
    NodeIndex i = stack.back();
    stack.pop_back();
    const Node& n = nodes_[i];
    if (n.var == kTerminalVar) continue;
    for (const NodeIndex child : {n.lo, n.hi}) {
      const NodeIndex slot = edge_slot(child);
      if (slot < frozen_base_) continue;  // frozen children never die
      const NodeIndex pi = slot - frozen_base_;
      if (!marked[pi]) {
        marked[pi] = true;
        stack.push_back(pi);
      }
    }
  }
}

std::size_t Manager::count_live_from_roots() const {
  std::vector<bool> marked;
  mark_from_roots(marked);
  // The frozen prefix is reachable by construction (freeze() packed
  // exactly the reachable cone), so it counts in full.
  std::size_t count = frozen_base_;
  for (bool m : marked) count += m;
  return count;
}

void Manager::check_canonical() const {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(live_nodes_ * 2);
  const std::size_t total = pool_size();
  for (NodeIndex i = first_private_index(); i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.var == kTerminalVar) continue;  // free-list entry
    const std::string at =
        " (slot " + std::to_string(frozen_base_ + i) + ")";
    if (n.var >= num_vars_) {
      throw BddError("check_canonical(): variable id out of range" + at);
    }
    if (edge_complemented(n.lo)) {
      throw BddError("check_canonical(): stored else-edge is complemented" +
                     at);
    }
    if (n.lo == n.hi) {
      throw BddError("check_canonical(): unreduced node (lo == hi)" + at);
    }
    if (edge_slot(n.lo) >= total || edge_slot(n.hi) >= total) {
      throw BddError("check_canonical(): dangling child slot" + at);
    }
    for (const NodeIndex child : {n.lo, n.hi}) {
      const Var cv = node(edge_slot(child)).var;
      if (cv != kTerminalVar && level_of_var_[cv] <= level_of_var_[n.var]) {
        throw BddError(
            "check_canonical(): child level not below parent level" + at);
      }
      if (cv == kTerminalVar && edge_slot(child) != 0) {
        throw BddError("check_canonical(): edge into a free-list slot" + at);
      }
    }
    // A private node whose triple already exists in the frozen prefix
    // breaks strong reduction of the combined space: mk() should have
    // returned the frozen slot.
    if (frozen_base_ != 0 && edge_slot(n.lo) < frozen_base_ &&
        edge_slot(n.hi) < frozen_base_ &&
        frozen_->find(n.var, n.lo, n.hi) != kInvalidNode) {
      throw BddError(
          "check_canonical(): private node duplicates a frozen triple" + at);
    }
    // Triple uniqueness: hash the (var, lo, hi) triple; a collision on the
    // 64-bit digest across a pool this size is vanishingly unlikely and
    // only yields a spurious test failure, never a missed corruption.
    std::uint64_t key = static_cast<std::uint64_t>(n.var);
    key = key * 0x100000001b3ull ^ n.lo;
    key = key * 0x100000001b3ull ^ n.hi;
    key *= 0x9e3779b97f4a7c15ull;
    if (!seen.insert(key).second) {
      throw BddError("check_canonical(): duplicate (var, lo, hi) triple" + at);
    }
  }
}

std::size_t Manager::gc() {
  ++stats_.gc_runs;

  // Mark phase: every node reachable from an externally referenced root.
  std::vector<bool> marked;
  mark_from_roots(marked);

  // Sweep phase: unmarked private decision nodes go to the free list
  // (global slots). The frozen prefix is excluded by construction: it is
  // not in `marked`'s index space and no tombstone can ever land there.
  std::size_t reclaimed = 0;
  free_list_ = kInvalidNode;
  for (NodeIndex i = first_private_index(); i < nodes_.size(); ++i) {
    if (marked[i] || nodes_[i].var == kTerminalVar) {
      // Still live, or already on the (old) free list.
      if (!marked[i] && nodes_[i].var == kTerminalVar) {
        nodes_[i].next = free_list_;
        free_list_ = frozen_base_ + i;
      }
      continue;
    }
    nodes_[i].var = kTerminalVar;  // tombstone marks free-list membership
    nodes_[i].lo = nodes_[i].hi = kInvalidNode;
    nodes_[i].next = free_list_;
    free_list_ = frozen_base_ + i;
    ++reclaimed;
  }
  live_nodes_ -= reclaimed;
  stats_.gc_reclaimed += reclaimed;

  // Caches may reference dead nodes; the unique table must drop them.
  // Scale the computed cache with the surviving working set (capped) --
  // a cache much smaller than the pool thrashes on collisions.
  std::size_t want_cache = next_pow2(live_nodes_);
  want_cache = std::min<std::size_t>(want_cache, 1u << 22);
  if (want_cache > cache_.size()) {
    cache_.resize(want_cache);
  } else {
    cache_.clear();
  }
  rehash_unique(unique_.size());

  // Re-arm the trigger well above the live baseline so collections happen
  // when a real fraction of the pool is garbage, not every few operations.
  gc_threshold_ = std::max(gc_threshold_floor_, live_nodes_ * 2);
  return reclaimed;
}

void Manager::maybe_gc() {
  // Collect when the adaptive trigger fires, or when the pool approaches
  // the hard budget (so OutOfNodes is only thrown once garbage is gone).
  // The budget covers the combined space, so the immortal frozen prefix
  // counts toward "near".
  const bool near_budget =
      frozen_base_ + live_nodes_ + (max_nodes_ >> 3) >= max_nodes_;
  if (live_nodes_ < gc_threshold_ && !near_budget) return;
  gc();
}

}  // namespace dp::bdd
