// RAII handle to a BDD node.
//
// A live Bdd pins its root (and thus the whole DAG under it) across garbage
// collections. Handles are cheap to copy (one refcount bump) and compare by
// canonical node identity, so `a == b` means functional equality.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "bdd/bdd_types.hpp"
#include "bdd/manager.hpp"

namespace dp::bdd {

class Bdd {
 public:
  Bdd() = default;

  Bdd(Manager& mgr, NodeIndex idx) : mgr_(&mgr), idx_(idx) {
    mgr_->inc_ref(idx_);
  }

  Bdd(const Bdd& other) : mgr_(other.mgr_), idx_(other.idx_) {
    if (mgr_) mgr_->inc_ref(idx_);
  }

  Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), idx_(other.idx_) {
    other.mgr_ = nullptr;
    other.idx_ = kInvalidNode;
  }

  Bdd& operator=(const Bdd& other) {
    Bdd tmp(other);
    swap(tmp);
    return *this;
  }

  Bdd& operator=(Bdd&& other) noexcept {
    swap(other);
    return *this;
  }

  ~Bdd() {
    if (mgr_) mgr_->dec_ref(idx_);
  }

  void swap(Bdd& other) noexcept {
    std::swap(mgr_, other.mgr_);
    std::swap(idx_, other.idx_);
  }

  // ---- state -----------------------------------------------------------

  bool valid() const { return mgr_ != nullptr; }
  bool is_zero() const { return valid() && idx_ == kFalseNode; }
  bool is_one() const { return valid() && idx_ == kTrueNode; }
  bool is_constant() const { return valid() && edge_is_terminal(idx_); }
  NodeIndex index() const { return idx_; }
  Manager* manager() const { return mgr_; }

  /// Variable labelling the root node (kTerminalVar for constants).
  Var top_var() const { return check()->var_of(idx_); }

  // ---- Boolean algebra ---------------------------------------------------

  Bdd operator&(const Bdd& rhs) const {
    Manager* m = same(rhs);
    return Bdd(*m, m->apply(Op::And, idx_, rhs.idx_));
  }
  Bdd operator|(const Bdd& rhs) const {
    Manager* m = same(rhs);
    return Bdd(*m, m->apply(Op::Or, idx_, rhs.idx_));
  }
  Bdd operator^(const Bdd& rhs) const {
    Manager* m = same(rhs);
    return Bdd(*m, m->apply(Op::Xor, idx_, rhs.idx_));
  }
  Bdd operator!() const {
    Manager* m = check();
    return Bdd(*m, m->negate(idx_));
  }
  Bdd operator~() const { return !*this; }

  Bdd& operator&=(const Bdd& rhs) { return *this = *this & rhs; }
  Bdd& operator|=(const Bdd& rhs) { return *this = *this | rhs; }
  Bdd& operator^=(const Bdd& rhs) { return *this = *this ^ rhs; }

  /// if-then-else: (*this & g) | (!*this & h), computed in one pass.
  Bdd ite(const Bdd& g, const Bdd& h) const {
    Manager* m = same(g);
    if (h.mgr_ != m) throw BddError("mixing BDDs from different managers");
    return Bdd(*m, m->ite(idx_, g.idx_, h.idx_));
  }

  Bdd restrict_var(Var v, bool value) const {
    Manager* m = check();
    return Bdd(*m, m->restrict_var(idx_, v, value));
  }
  Bdd exists(Var v) const {
    Manager* m = check();
    return Bdd(*m, m->exists_var(idx_, v));
  }
  Bdd compose(Var v, const Bdd& g) const {
    Manager* m = same(g);
    return Bdd(*m, m->compose(idx_, v, g.idx_));
  }

  /// Implication as a predicate: (*this -> rhs) is a tautology?
  bool implies(const Bdd& rhs) const { return (*this & !rhs).is_zero(); }

  // ---- queries ------------------------------------------------------------

  double sat_count(std::size_t nvars) const {
    return check()->sat_count(idx_, nvars);
  }
  /// Fraction of the 2^nvars input space that satisfies the function.
  double density(std::size_t nvars) const {
    double total = 1.0;
    for (std::size_t i = 0; i < nvars; ++i) total *= 2.0;
    return sat_count(nvars) / total;
  }
  std::vector<Var> support() const { return check()->support(idx_); }
  std::size_t dag_size() const { return check()->dag_size(idx_); }
  bool eval(const std::vector<bool>& assignment) const {
    return check()->eval(idx_, assignment);
  }
  std::vector<signed char> sat_one() const { return check()->sat_one(idx_); }

  friend bool operator==(const Bdd& a, const Bdd& b) {
    return a.mgr_ == b.mgr_ && a.idx_ == b.idx_;
  }
  friend bool operator!=(const Bdd& a, const Bdd& b) { return !(a == b); }

 private:
  Manager* check() const {
    if (!mgr_) throw BddError("operation on empty Bdd handle");
    return mgr_;
  }
  Manager* same(const Bdd& other) const {
    check();
    if (other.mgr_ != mgr_) throw BddError("mixing BDDs from different managers");
    return mgr_;
  }

  Manager* mgr_ = nullptr;
  NodeIndex idx_ = kInvalidNode;
};

inline Bdd Manager::zero() { return Bdd(*this, kFalseNode); }
inline Bdd Manager::one() { return Bdd(*this, kTrueNode); }
inline Bdd Manager::make(NodeIndex idx) { return Bdd(*this, idx); }

}  // namespace dp::bdd
