// Immutable, contiguously packed ROBDD forest produced by
// Manager::freeze().
//
// A FrozenForest is the read-only half of the shared-kernel split: one
// thread builds the good-function universe in a private Manager, freezes
// it, and from then on any number of threads read the packed node array
// lock-free -- there is no mutation anywhere in this class after freeze()
// returns. Complement-edge handles are already canonical, so a frozen
// edge means exactly what it meant in the source manager (modulo the slot
// renumbering freeze() applies, which it reports back through
// `remapped_roots`).
//
// Adopting managers (Manager's frozen-forest constructor) splice the
// packed array in as a read-only slot prefix [0, size()): global slot g
// of such a manager resolves to frozen node g when g < size() and to the
// manager's private pool otherwise. The terminal always packs to slot 0,
// so kTrueNode/kFalseNode keep their values across the freeze boundary.
//
// Node::next is repurposed here as the forest's own hash-chain link (the
// source manager's unique-table chains are meaningless after packing), so
// adopting managers can probe `find()` before allocating a private node
// and keep the combined node space strongly reduced.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "bdd/bdd_types.hpp"

namespace dp::bdd {

class Manager;

class FrozenForest {
 public:
  FrozenForest(const FrozenForest&) = delete;
  FrozenForest& operator=(const FrozenForest&) = delete;

  /// Packed node count (terminal included). Doubles as the adopting
  /// manager's frozen_base_: private slots start here.
  std::size_t size() const { return nodes_.size(); }

  std::size_t num_vars() const { return num_vars_; }
  /// order[level] = variable id, copied verbatim from the source manager.
  const std::vector<Var>& variable_order() const { return var_at_level_; }
  std::size_t level_of(Var v) const { return level_of_var_.at(v); }

  const Node& node(NodeIndex slot) const { return nodes_[slot]; }
  const Node* nodes_data() const { return nodes_.data(); }

  /// Unique-table probe over the frozen space: returns the slot of the
  /// canonical node (v, lo, hi) -- children in frozen numbering, stored
  /// (regular-else) form -- or kInvalidNode. Lock-free and const; this is
  /// what lets adopting managers reuse frozen structure instead of
  /// duplicating it privately.
  NodeIndex find(Var v, NodeIndex lo_child, NodeIndex hi_child) const;

  // ---- standalone read-only queries ------------------------------------
  // Mirrors of the Manager queries, so frozen handles can be counted and
  // evaluated without any manager at all (e.g. by concurrent served
  // requests). Semantics are identical to Manager's.

  /// Satisfying assignments over variables [0, nvars).
  double sat_count(NodeIndex f, std::size_t nvars) const;
  /// Evaluate under a complete assignment (indexed by Var).
  bool eval(NodeIndex f, const std::vector<bool>& assignment) const;
  /// Variables the function depends on, ascending.
  std::vector<Var> support(NodeIndex f) const;
  /// Distinct pool slots in the DAG rooted at f (terminal included).
  std::size_t dag_size(NodeIndex f) const;

  /// Test/debug oracle: throws BddError on the first violation of the
  /// canonical invariants inside the packed array (complemented stored
  /// else, lo == hi, level order, dangling slot, duplicate triple).
  void check_canonical() const;

 private:
  friend class Manager;  // freeze() builds and populates the forest
  FrozenForest() = default;

  std::size_t bucket(Var v, NodeIndex lo_child, NodeIndex hi_child) const;

  std::size_t num_vars_ = 0;
  std::vector<Var> var_at_level_;          ///< level -> variable id
  std::vector<std::size_t> level_of_var_;  ///< variable id -> level
  std::vector<Node> nodes_;                ///< packed, terminal at slot 0
  std::vector<NodeIndex> buckets_;         ///< hash heads for find()
  std::size_t bucket_mask_ = 0;
};

}  // namespace dp::bdd
