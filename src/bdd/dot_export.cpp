#include "bdd/dot_export.hpp"

#include <unordered_set>
#include <vector>

namespace dp::bdd {

void write_dot(std::ostream& os, const Bdd& f,
               const std::function<std::string(Var)>& var_name) {
  const Manager* mgr = f.manager();
  if (!mgr) throw BddError("write_dot(): empty handle");

  auto name = [&](Var v) {
    return var_name ? var_name(v) : "x" + std::to_string(v);
  };

  os << "digraph bdd {\n";
  os << "  rankdir=TB;\n";
  os << "  n0 [shape=box,label=\"0\"];\n";
  os << "  n1 [shape=box,label=\"1\"];\n";

  std::unordered_set<NodeIndex> visited{kFalseNode, kTrueNode};
  std::vector<NodeIndex> stack{f.index()};
  while (!stack.empty()) {
    NodeIndex n = stack.back();
    stack.pop_back();
    if (!visited.insert(n).second) continue;
    const Node& nd = mgr->node(n);
    os << "  n" << n << " [label=\"" << name(nd.var) << "\"];\n";
    os << "  n" << n << " -> n" << nd.lo << " [style=dashed];\n";
    os << "  n" << n << " -> n" << nd.hi << ";\n";
    stack.push_back(nd.lo);
    stack.push_back(nd.hi);
  }
  os << "}\n";
}

}  // namespace dp::bdd
