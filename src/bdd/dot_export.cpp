#include "bdd/dot_export.hpp"

#include <unordered_set>
#include <vector>

namespace dp::bdd {

void write_dot(std::ostream& os, const Bdd& f,
               const std::function<std::string(Var)>& var_name) {
  const Manager* mgr = f.manager();
  if (!mgr) throw BddError("write_dot(): empty handle");

  auto name = [&](Var v) {
    return var_name ? var_name(v) : "x" + std::to_string(v);
  };

  os << "digraph bdd {\n";
  os << "  rankdir=TB;\n";
  // Single terminal; the constant FALSE is a complemented (dotted) arc
  // into it. The root pseudo-node makes the root edge's own polarity
  // visible.
  os << "  n0 [shape=box,label=\"1\"];\n";
  os << "  f [shape=plaintext,label=\"f\"];\n";

  auto arc = [&](std::ostream& o, const std::string& from, NodeIndex e,
                 const char* base_style) {
    o << "  " << from << " -> n" << edge_slot(e);
    const bool dashed = base_style && *base_style;
    const bool dotted = edge_complemented(e) != 0;
    if (dashed || dotted) {
      o << " [";
      if (dashed) o << "style=dashed";
      if (dashed && dotted) o << ",";
      // Complement arcs render dotted (CUDD convention); a complemented
      // else-arc never occurs below the root by the canonical form, but
      // the attribute applies uniformly so the invariant is visible.
      if (dotted) o << "arrowhead=odot";
      o << "]";
    }
    o << ";\n";
  };

  arc(os, "f", f.index(), "");

  std::unordered_set<NodeIndex> visited{0};
  std::vector<NodeIndex> stack{edge_slot(f.index())};
  while (!stack.empty()) {
    NodeIndex s = stack.back();
    stack.pop_back();
    if (!visited.insert(s).second) continue;
    const Node& nd = mgr->node(s);
    os << "  n" << s << " [label=\"" << name(nd.var) << "\"];\n";
    arc(os, "n" + std::to_string(s), nd.lo, "dashed");
    arc(os, "n" + std::to_string(s), nd.hi, "");
    stack.push_back(edge_slot(nd.lo));
    stack.push_back(edge_slot(nd.hi));
  }
  os << "}\n";
}

}  // namespace dp::bdd
