// Basic types and constants shared by the OBDD package.
//
// The package implements reduced ordered binary decision diagrams (ROBDDs)
// after Bryant, "Graph-based algorithms for Boolean function manipulation",
// IEEE Trans. Comput. C-35(8), 1986 -- the representation used by
// Difference Propagation (Butler & Mercer, DAC 1990) -- extended with
// CUDD-style complement edges (Brace/Rudell/Bryant, DAC 1990).
//
// Edge encoding: a NodeIndex is an *edge*, not a pool slot. The low bit is
// the complement flag, the remaining bits select the pool slot:
//
//   edge = (slot << 1) | complement
//
// There is a single terminal node at slot 0 denoting TRUE; the constant
// FALSE is its complemented edge. Negation is therefore `edge ^ 1` -- O(1),
// no traversal, no cache traffic. Canonicity requires one extra invariant
// beyond strong reduction: the *else* (lo) edge stored in a node is always
// regular (complement bit clear). `Manager::mk` enforces it by flipping
// both children and returning a complemented edge when the else cofactor
// arrives complemented.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace dp::bdd {

/// An edge into a Manager's node pool: (slot << 1) | complement.
using NodeIndex = std::uint32_t;

/// Variable identifier. Variables are ordered by their numeric value:
/// smaller ids appear closer to the root of every BDD in the manager.
using Var = std::uint32_t;

/// The constants are the two edges into the single terminal at slot 0.
/// TRUE is the regular edge, FALSE its complement.
inline constexpr NodeIndex kTrueNode = 0;
inline constexpr NodeIndex kFalseNode = 1;

/// Sentinel for "no node".
inline constexpr NodeIndex kInvalidNode = std::numeric_limits<NodeIndex>::max();

/// Variable id used for the terminal node; orders after every real variable.
inline constexpr Var kTerminalVar = std::numeric_limits<Var>::max();

/// Sentinel for "no variable".
inline constexpr Var kInvalidVar = std::numeric_limits<Var>::max();

// ---- edge arithmetic ----------------------------------------------------

/// Pool slot an edge points to.
inline constexpr NodeIndex edge_slot(NodeIndex e) { return e >> 1; }

/// 1 when the edge carries a complement, else 0.
inline constexpr NodeIndex edge_complemented(NodeIndex e) { return e & 1u; }

/// The edge with its complement bit cleared.
inline constexpr NodeIndex edge_regular(NodeIndex e) { return e & ~1u; }

/// O(1) negation: flip the complement bit.
inline constexpr NodeIndex edge_negate(NodeIndex e) { return e ^ 1u; }

/// Builds an edge from a pool slot and a complement bit (0 or 1).
inline constexpr NodeIndex make_edge(NodeIndex slot, NodeIndex complement) {
  return (slot << 1) | complement;
}

/// True for both edges into the terminal (kTrueNode / kFalseNode).
inline constexpr bool edge_is_terminal(NodeIndex e) { return e <= kFalseNode; }

/// Thrown when an operation would exceed the manager's node budget.
class OutOfNodes : public std::runtime_error {
 public:
  explicit OutOfNodes(std::size_t limit)
      : std::runtime_error("BDD node budget exceeded (limit = " +
                           std::to_string(limit) + " nodes)") {}
};

/// Thrown on API misuse (mixing managers, invalid variable ids, ...).
class BddError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// One decision node. `lo` is the cofactor edge for var=0, `hi` for var=1;
/// both are edges (complement bit in the low bit), and the canonical form
/// keeps `lo` regular. `next` threads the node's *slot* into its
/// unique-table hash chain.
struct Node {
  Var var = kTerminalVar;
  NodeIndex lo = kInvalidNode;
  NodeIndex hi = kInvalidNode;
  NodeIndex next = kInvalidNode;
};

/// Operation codes for the binary apply cache. With complement edges all
/// OR traffic is folded into AND entries (De Morgan) and negation never
/// touches the cache, so only And/Xor/Exists/Restrict key it.
enum class Op : std::uint8_t {
  And = 0,
  Or = 1,   // public API only; rewritten to ¬(¬a & ¬b) before caching
  Xor = 2,
  Exists = 3,   // f, var id
  Restrict = 4  // f, packed (var, value)
};

/// Counters exposed for benchmarking and regression tests.
struct ManagerStats {
  std::uint64_t apply_calls = 0;      ///< recursive apply invocations
  std::uint64_t cache_hits = 0;       ///< computed-cache hits
  std::uint64_t unique_lookups = 0;   ///< unique-table probes
  std::uint64_t nodes_created = 0;    ///< total nodes ever allocated
  std::uint64_t gc_runs = 0;          ///< mark-sweep executions
  std::uint64_t gc_reclaimed = 0;     ///< nodes reclaimed across all GCs
  std::size_t peak_live_nodes = 0;    ///< high-water mark of live nodes
  /// dec_ref() calls on a node whose external refcount was already zero.
  /// A nonzero value means a double-release bug in the caller; the manager
  /// clamps instead of underflowing so no node becomes immortal.
  std::uint64_t ref_underflows = 0;
  /// negate() calls served by the O(1) complement-bit flip. Under the
  /// complement-edge kernel this is *every* negation; the counter exists so
  /// metrics documents can show the traversal-free win explicitly.
  std::uint64_t negations_constant_time = 0;
  /// Commutative operand pairs reordered (a <= b) before keying the
  /// computed cache; each swap is a collision class merged.
  std::uint64_t cache_canonical_swaps = 0;

  /// Computed-cache hits as a fraction of recursive operation entries.
  double cache_hit_rate() const {
    return apply_calls > 0
               ? static_cast<double>(cache_hits) /
                     static_cast<double>(apply_calls)
               : 0.0;
  }
};

}  // namespace dp::bdd
