// Basic types and constants shared by the OBDD package.
//
// The package implements reduced ordered binary decision diagrams (ROBDDs)
// after Bryant, "Graph-based algorithms for Boolean function manipulation",
// IEEE Trans. Comput. C-35(8), 1986 -- the representation used by
// Difference Propagation (Butler & Mercer, DAC 1990).
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace dp::bdd {

/// Index of a node inside a Manager's node pool.
using NodeIndex = std::uint32_t;

/// Variable identifier. Variables are ordered by their numeric value:
/// smaller ids appear closer to the root of every BDD in the manager.
using Var = std::uint32_t;

/// The two terminal nodes occupy fixed slots in every manager.
inline constexpr NodeIndex kFalseNode = 0;
inline constexpr NodeIndex kTrueNode = 1;

/// Sentinel for "no node".
inline constexpr NodeIndex kInvalidNode = std::numeric_limits<NodeIndex>::max();

/// Variable id used for terminal nodes; orders after every real variable.
inline constexpr Var kTerminalVar = std::numeric_limits<Var>::max();

/// Sentinel for "no variable".
inline constexpr Var kInvalidVar = std::numeric_limits<Var>::max();

/// Thrown when an operation would exceed the manager's node budget.
class OutOfNodes : public std::runtime_error {
 public:
  explicit OutOfNodes(std::size_t limit)
      : std::runtime_error("BDD node budget exceeded (limit = " +
                           std::to_string(limit) + " nodes)") {}
};

/// Thrown on API misuse (mixing managers, invalid variable ids, ...).
class BddError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// One decision node. `lo` is the cofactor for var=0, `hi` for var=1.
/// `next` threads the node into its unique-table hash chain.
struct Node {
  Var var = kTerminalVar;
  NodeIndex lo = kInvalidNode;
  NodeIndex hi = kInvalidNode;
  NodeIndex next = kInvalidNode;
};

/// Operation codes for the binary apply cache.
enum class Op : std::uint8_t {
  And = 0,
  Or = 1,
  Xor = 2,
  Not = 3,      // unary; second operand slot unused
  Exists = 4,   // f, var-cube index
  Restrict = 5  // f, packed (var, value)
};

/// Counters exposed for benchmarking and regression tests.
struct ManagerStats {
  std::uint64_t apply_calls = 0;      ///< recursive apply/negate invocations
  std::uint64_t cache_hits = 0;       ///< computed-cache hits
  std::uint64_t unique_lookups = 0;   ///< unique-table probes
  std::uint64_t nodes_created = 0;    ///< total nodes ever allocated
  std::uint64_t gc_runs = 0;          ///< mark-sweep executions
  std::uint64_t gc_reclaimed = 0;     ///< nodes reclaimed across all GCs
  std::size_t peak_live_nodes = 0;    ///< high-water mark of live nodes
  /// dec_ref() calls on a node whose external refcount was already zero.
  /// A nonzero value means a double-release bug in the caller; the manager
  /// clamps instead of underflowing so no node becomes immortal.
  std::uint64_t ref_underflows = 0;

  /// Computed-cache hits as a fraction of recursive operation entries.
  double cache_hit_rate() const {
    return apply_calls > 0
               ? static_cast<double>(cache_hits) /
                     static_cast<double>(apply_calls)
               : 0.0;
  }
};

}  // namespace dp::bdd
