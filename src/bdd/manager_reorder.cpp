// Dynamic variable reordering: Rudell-style adjacent-level swap and
// sifting. Node indices are stable across reordering -- a rewritten node
// keeps its slot and its function, only its (var, lo, hi) representation
// changes -- so every live Bdd handle stays valid.
//
// Complement edges add one obligation: a rewritten node's stored else-edge
// must stay regular. The swap preserves it structurally -- the new else
// child is built from w=0 cofactors of the node's *stored* children, and
// the stored else of a canonical node is regular, so the polarity folded
// into those cofactors is always 0 (see the derivation at get_or_make_u).
#include <algorithm>
#include <unordered_map>
#include <vector>

#include "bdd/manager.hpp"

namespace dp::bdd {

namespace {

std::uint64_t child_key(NodeIndex lo, NodeIndex hi) {
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace

void Manager::swap_adjacent_levels(std::size_t level) {
  if (frozen_base_ != 0) {
    // Reordering rewrites nodes in place; the frozen prefix is shared and
    // immutable, and rewriting private nodes alone would break the level
    // invariant against frozen children.
    throw BddError(
        "swap_adjacent_levels(): manager adopts a frozen forest "
        "(reordering must happen before freeze())");
  }
  if (level + 1 >= num_vars_) {
    throw BddError("swap_adjacent_levels(): level out of range");
  }
  const Var u = var_at_level_[level];      // moves down to level + 1
  const Var w = var_at_level_[level + 1];  // moves up to level

  // Exception safety: all allocation happens before any node is mutated.
  // Reserve the worst case (two fresh children per rewritten node) up
  // front so an OutOfNodes can only fire while the manager is still
  // consistent; collect first if the pool is close to the budget.

  // Partition the u-labeled slots: those with a w-labeled child must be
  // rewritten; the rest keep their representation (u simply sits one
  // level lower now). The map below gives canonical u-nodes by their
  // stored (already regular-else) child pair.
  std::vector<NodeIndex> touched;
  std::unordered_map<std::uint64_t, NodeIndex> u_nodes;  // key -> slot
  auto collect = [&] {
    touched.clear();
    u_nodes.clear();
    for (NodeIndex i = 1; i < nodes_.size(); ++i) {
      const Node& n = nodes_[i];
      if (n.var != u) continue;
      if (nodes_[edge_slot(n.lo)].var == w ||
          nodes_[edge_slot(n.hi)].var == w) {
        touched.push_back(i);
      } else {
        u_nodes.emplace(child_key(n.lo, n.hi), i);
      }
    }
  };
  collect();

  // Fresh u-nodes bypass the global unique table (it is stale during the
  // swap); canonicity within level u is kept through u_nodes, including
  // the regular-else rule: a complemented else cofactor is factored out
  // exactly as mk() would.
  auto get_or_make_u = [&](NodeIndex lo_child,
                           NodeIndex hi_child) -> NodeIndex {
    if (lo_child == hi_child) return lo_child;
    const NodeIndex out_c = edge_complemented(lo_child);
    lo_child ^= out_c;
    hi_child ^= out_c;
    const std::uint64_t key = child_key(lo_child, hi_child);
    auto it = u_nodes.find(key);
    if (it != u_nodes.end()) return make_edge(it->second, out_c);
    const NodeIndex idx = allocate_node();
    nodes_[idx] = Node{u, lo_child, hi_child, kInvalidNode};
    ++stats_.nodes_created;
    u_nodes.emplace(key, idx);
    return make_edge(idx, out_c);
  };

  if (nodes_.size() + 2 * touched.size() > max_nodes_) {
    gc();
    // gc() rebuilt the free list; if even reclaiming garbage cannot
    // guarantee room for the worst case, fail before mutating anything.
    std::size_t free_slots = 0;
    for (NodeIndex i = free_list_; i != kInvalidNode; i = nodes_[i].next) {
      ++free_slots;
    }
    if (nodes_.size() - free_slots + 2 * touched.size() > max_nodes_) {
      throw OutOfNodes(max_nodes_);
    }
    // Some collected nodes may have been in our snapshots; re-collect.
    collect();
  }

  for (NodeIndex t : touched) {
    const Node old = nodes_[t];
    const bool lo_w = nodes_[edge_slot(old.lo)].var == w;
    const bool hi_w = nodes_[edge_slot(old.hi)].var == w;
    // Cofactors of the two children on w, with the child edge's polarity
    // folded in. old.lo is regular (canonical form), so the lo-side
    // cofactors are the w-child's stored edges unmodified -- in particular
    // lo0 inherits a regular else, which keeps c0 below regular.
    const NodeIndex lo_c = edge_complemented(old.lo);   // always 0
    const NodeIndex hi_c = edge_complemented(old.hi);
    const NodeIndex lo0 =
        lo_w ? nodes_[edge_slot(old.lo)].lo ^ lo_c : old.lo;
    const NodeIndex lo1 =
        lo_w ? nodes_[edge_slot(old.lo)].hi ^ lo_c : old.lo;
    const NodeIndex hi0 =
        hi_w ? nodes_[edge_slot(old.hi)].lo ^ hi_c : old.hi;
    const NodeIndex hi1 =
        hi_w ? nodes_[edge_slot(old.hi)].hi ^ hi_c : old.hi;
    // f = ite(u, H, L) = ite(w, ite(u, H|w=1, L|w=1), ite(u, H|w=0, L|w=0)).
    const NodeIndex c0 = get_or_make_u(lo0, hi0);
    const NodeIndex c1 = get_or_make_u(lo1, hi1);
    // A node labeled u depends on u, and neither old w-child cofactor can
    // restore independence from w's side without also collapsing on u's,
    // so the rewrite never degenerates (c0 != c1). c0 is regular: lo0 is
    // regular (shown above), so get_or_make_u factored out polarity 0.
    Node& n = nodes_[t];
    n.var = w;
    n.lo = c0;
    n.hi = c1;
  }

  std::swap(var_at_level_[level], var_at_level_[level + 1]);
  std::swap(level_of_var_[u], level_of_var_[w]);

  // Labels and children changed: rebuild the unique table. Cached results
  // still denote the same functions (edges are stable), but drop them
  // for hygiene -- reordering already dwarfs a cache refill.
  rehash_unique(unique_.size());
  cache_.clear();
}

void Manager::sift_one_var(Var v, double max_growth) {
  const std::size_t start = level_of_var_[v];
  std::size_t best_level = start;
  std::size_t best_size = count_live_from_roots();
  const std::size_t limit = static_cast<std::size_t>(
      static_cast<double>(best_size) * max_growth);

  std::size_t level = start;
  // Phase 1: sift down to the bottom.
  while (level + 1 < num_vars_) {
    swap_adjacent_levels(level);
    ++level;
    const std::size_t size = count_live_from_roots();
    if (size < best_size) {
      best_size = size;
      best_level = level;
    }
    if (size > limit) break;
  }
  // Phase 2: sift up to the top.
  while (level > 0) {
    swap_adjacent_levels(level - 1);
    --level;
    const std::size_t size = count_live_from_roots();
    if (size < best_size) {
      best_size = size;
      best_level = level;
    }
    if (level < start && size > limit) break;
  }
  // Phase 3: park at the best position seen.
  while (level < best_level) {
    swap_adjacent_levels(level);
    ++level;
  }
  while (level > best_level) {
    swap_adjacent_levels(level - 1);
    --level;
  }
}

std::size_t Manager::sift_reorder(double max_growth) {
  if (frozen_base_ != 0) {
    throw BddError(
        "sift_reorder(): manager adopts a frozen forest "
        "(reordering must happen before freeze())");
  }
  if (max_growth < 1.0) {
    throw BddError("sift_reorder(): max_growth must be >= 1");
  }
  if (num_vars_ < 2) return count_live_from_roots();
  gc();

  // Process variables from the most populated level first (Rudell).
  std::vector<std::size_t> population(num_vars_, 0);
  std::vector<bool> marked;
  mark_from_roots(marked);
  for (NodeIndex i = 1; i < nodes_.size(); ++i) {
    if (marked[i] && nodes_[i].var != kTerminalVar) {
      ++population[level_of_var_[nodes_[i].var]];
    }
  }
  std::vector<Var> order(var_at_level_);
  std::sort(order.begin(), order.end(), [&](Var a, Var b) {
    return population[level_of_var_[a]] > population[level_of_var_[b]];
  });

  for (Var v : order) {
    sift_one_var(v, max_growth);
    gc();  // swaps strand garbage; keep the pool tight while sifting
  }
  return count_live_from_roots();
}

}  // namespace dp::bdd
