// Boolean operations: apply (AND/OR/XOR), negation, ITE, restriction,
// existential quantification, and composition.
#include <unordered_map>
#include <utility>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"

namespace dp::bdd {

namespace {

/// Terminal-case evaluation for the binary apply. Returns kInvalidNode when
/// the pair is not a terminal case. `negate_needed` is set when the result
/// is the negation of the node stored in the return slot (XOR against one).
struct TerminalHit {
  NodeIndex result = kInvalidNode;
  NodeIndex to_negate = kInvalidNode;
};

TerminalHit apply_terminal(Op op, NodeIndex a, NodeIndex b) {
  TerminalHit hit;
  switch (op) {
    case Op::And:
      if (a == kFalseNode || b == kFalseNode) hit.result = kFalseNode;
      else if (a == kTrueNode) hit.result = b;
      else if (b == kTrueNode) hit.result = a;
      else if (a == b) hit.result = a;
      break;
    case Op::Or:
      if (a == kTrueNode || b == kTrueNode) hit.result = kTrueNode;
      else if (a == kFalseNode) hit.result = b;
      else if (b == kFalseNode) hit.result = a;
      else if (a == b) hit.result = a;
      break;
    case Op::Xor:
      if (a == b) hit.result = kFalseNode;
      else if (a == kFalseNode) hit.result = b;
      else if (b == kFalseNode) hit.result = a;
      else if (a == kTrueNode) hit.to_negate = b;
      else if (b == kTrueNode) hit.to_negate = a;
      break;
    default:
      throw BddError("apply(): not a binary Boolean op");
  }
  return hit;
}

}  // namespace

NodeIndex Manager::apply(Op op, NodeIndex a, NodeIndex b) {
  maybe_gc();
  return apply_rec(op, a, b);
}

NodeIndex Manager::apply_rec(Op op, NodeIndex a, NodeIndex b) {
  ++stats_.apply_calls;

  TerminalHit hit = apply_terminal(op, a, b);
  if (hit.result != kInvalidNode) return hit.result;
  if (hit.to_negate != kInvalidNode) return negate_rec(hit.to_negate);

  // All three ops are commutative; canonicalize for better cache reuse.
  if (a > b) std::swap(a, b);

  NodeIndex cached = cache_.lookup(op, a, b);
  if (cached != kInvalidNode) {
    ++stats_.cache_hits;
    return cached;
  }

  // The top variable is the one earlier in the (possibly sifted) order.
  const std::size_t la = level_of_node(a);
  const std::size_t lb = level_of_node(b);
  const Var v = la <= lb ? nodes_[a].var : nodes_[b].var;

  const NodeIndex a0 = la <= lb ? nodes_[a].lo : a;
  const NodeIndex a1 = la <= lb ? nodes_[a].hi : a;
  const NodeIndex b0 = lb <= la ? nodes_[b].lo : b;
  const NodeIndex b1 = lb <= la ? nodes_[b].hi : b;

  const NodeIndex lo_res = apply_rec(op, a0, b0);
  const NodeIndex hi_res = apply_rec(op, a1, b1);
  const NodeIndex result = mk(v, lo_res, hi_res);

  cache_.insert(op, a, b, result);
  return result;
}

NodeIndex Manager::negate(NodeIndex f) {
  maybe_gc();
  return negate_rec(f);
}

NodeIndex Manager::negate_rec(NodeIndex f) {
  ++stats_.apply_calls;
  if (f == kFalseNode) return kTrueNode;
  if (f == kTrueNode) return kFalseNode;

  NodeIndex cached = cache_.lookup(Op::Not, f, 0);
  if (cached != kInvalidNode) {
    ++stats_.cache_hits;
    return cached;
  }

  // Copy: recursive calls can reallocate the node pool.
  const Node n = nodes_[f];
  const NodeIndex neg_lo = negate_rec(n.lo);
  const NodeIndex neg_hi = negate_rec(n.hi);
  const NodeIndex result = mk(n.var, neg_lo, neg_hi);
  cache_.insert(Op::Not, f, 0, result);
  // Negation is an involution; prime the cache in the other direction too.
  cache_.insert(Op::Not, result, 0, f);
  return result;
}

NodeIndex Manager::ite(NodeIndex f, NodeIndex g, NodeIndex h) {
  maybe_gc();
  if (f == kTrueNode) return g;
  if (f == kFalseNode) return h;
  if (g == h) return g;
  // (f & g) | (!f & h). Intermediates are pinned with handles so a GC
  // triggered between the applies cannot reclaim them.
  Bdd fg = make(apply_rec(Op::And, f, g));
  Bdd nf = make(negate_rec(f));
  Bdd nfh = make(apply_rec(Op::And, nf.index(), h));
  return apply_rec(Op::Or, fg.index(), nfh.index());
}

NodeIndex Manager::restrict_var(NodeIndex f, Var v, bool value) {
  if (v >= num_vars_) throw BddError("restrict_var(): variable out of range");
  maybe_gc();
  return restrict_rec(f, v, value);
}

NodeIndex Manager::restrict_rec(NodeIndex f, Var v, bool value) {
  // Copy: recursive calls can reallocate the node pool.
  const Node n = nodes_[f];
  if (level_of_node(f) > level_of_var_[v]) return f;  // v cannot occur below
  if (n.var == v) return value ? n.hi : n.lo;

  const NodeIndex key_b = static_cast<NodeIndex>(v * 2 + (value ? 1 : 0));
  NodeIndex cached = cache_.lookup(Op::Restrict, f, key_b);
  if (cached != kInvalidNode) {
    ++stats_.cache_hits;
    return cached;
  }

  const NodeIndex lo_res = restrict_rec(n.lo, v, value);
  const NodeIndex hi_res = restrict_rec(n.hi, v, value);
  const NodeIndex result = mk(n.var, lo_res, hi_res);
  cache_.insert(Op::Restrict, f, key_b, result);
  return result;
}

NodeIndex Manager::exists_var(NodeIndex f, Var v) {
  if (v >= num_vars_) throw BddError("exists_var(): variable out of range");
  maybe_gc();
  return exists_rec(f, v);
}

NodeIndex Manager::exists_rec(NodeIndex f, Var v) {
  // Copy: recursive calls can reallocate the node pool.
  const Node n = nodes_[f];
  if (level_of_node(f) > level_of_var_[v]) return f;
  if (n.var == v) return apply_rec(Op::Or, n.lo, n.hi);

  NodeIndex cached = cache_.lookup(Op::Exists, f, static_cast<NodeIndex>(v));
  if (cached != kInvalidNode) {
    ++stats_.cache_hits;
    return cached;
  }

  const NodeIndex lo_res = exists_rec(n.lo, v);
  const NodeIndex hi_res = exists_rec(n.hi, v);
  const NodeIndex result = mk(n.var, lo_res, hi_res);
  cache_.insert(Op::Exists, f, static_cast<NodeIndex>(v), result);
  return result;
}

NodeIndex Manager::compose(NodeIndex f, Var v, NodeIndex g) {
  if (v >= num_vars_) throw BddError("compose(): variable out of range");
  maybe_gc();

  // Shannon expansion on v: f[v <- g] = (g & f|v=1) | (!g & f|v=0).
  // The cofactors never mention v, so plain apply calls finish the job.
  Bdd f1 = make(restrict_rec(f, v, true));
  Bdd f0 = make(restrict_rec(f, v, false));
  Bdd gh = make(g);
  Bdd t1 = make(apply_rec(Op::And, gh.index(), f1.index()));
  Bdd ng = make(negate_rec(g));
  Bdd t0 = make(apply_rec(Op::And, ng.index(), f0.index()));
  return apply_rec(Op::Or, t1.index(), t0.index());
}

}  // namespace dp::bdd
