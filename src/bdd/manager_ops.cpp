// Boolean operations: apply (AND/OR/XOR), O(1) negation, ITE, restriction,
// existential quantification, and composition.
//
// Complement edges concentrate all binary work into two recursions:
//
//   * and_rec -- AND over full edges. OR folds into it by De Morgan
//     (a|b = ¬(¬a & ¬b)), so every OR the DP engine issues reuses the AND
//     computed table instead of keying a second operation.
//   * xor_rec -- XOR with operand complements stripped up front
//     ((¬a)^b = ¬(a^b)): the cache is keyed on regular edges only and the
//     result's polarity is recovered with one bit flip, collapsing the
//     four polarity variants of every XOR pair into a single entry.
//
// Negation itself never recurses and never touches the cache.
#include <utility>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"

namespace dp::bdd {

NodeIndex Manager::apply(Op op, NodeIndex a, NodeIndex b) {
  maybe_gc();
  return apply_rec(op, a, b);
}

NodeIndex Manager::apply_rec(Op op, NodeIndex a, NodeIndex b) {
  switch (op) {
    case Op::And:
      return and_rec(a, b);
    case Op::Or:
      return edge_negate(and_rec(edge_negate(a), edge_negate(b)));
    case Op::Xor:
      return xor_rec(a, b);
    default:
      throw BddError("apply(): not a binary Boolean op");
  }
}

NodeIndex Manager::and_rec(NodeIndex a, NodeIndex b) {
  ++stats_.apply_calls;

  // Terminal and identity rules over full edges. `a == ¬b` is the rule
  // the recursive kernel could never see cheaply: with complement edges
  // it is one XOR against the sign bit.
  if (a == kFalseNode || b == kFalseNode) return kFalseNode;
  if (a == kTrueNode) return b;
  if (b == kTrueNode) return a;
  if (a == b) return a;
  if (a == edge_negate(b)) return kFalseNode;

  // AND is commutative; canonicalize the operand order so (f, g) and
  // (g, f) share one computed-table entry.
  if (a > b) {
    std::swap(a, b);
    ++stats_.cache_canonical_swaps;
  }

  NodeIndex cached = cache_.lookup(Op::And, a, b);
  if (cached != kInvalidNode) {
    ++stats_.cache_hits;
    return cached;
  }

  // The top variable is the one earlier in the (possibly sifted) order.
  const std::size_t la = level_of_node(a);
  const std::size_t lb = level_of_node(b);
  const Var v = la <= lb ? var_of(a) : var_of(b);

  const NodeIndex a0 = la <= lb ? lo(a) : a;
  const NodeIndex a1 = la <= lb ? hi(a) : a;
  const NodeIndex b0 = lb <= la ? lo(b) : b;
  const NodeIndex b1 = lb <= la ? hi(b) : b;

  const NodeIndex lo_res = and_rec(a0, b0);
  const NodeIndex hi_res = and_rec(a1, b1);
  const NodeIndex result = mk(v, lo_res, hi_res);

  cache_.insert(Op::And, a, b, result);
  return result;
}

NodeIndex Manager::xor_rec(NodeIndex a, NodeIndex b) {
  ++stats_.apply_calls;

  // XOR commutes with complement on either operand: (¬a)^b = ¬(a^b).
  // Strip both sign bits, recurse on regular edges, and re-apply the
  // combined polarity to the result -- the cache only ever sees regular
  // operand pairs.
  const NodeIndex out_c = (a ^ b) & 1u;
  a = edge_regular(a);
  b = edge_regular(b);

  if (a == b) return kFalseNode ^ out_c;
  // The only regular terminal edge is TRUE; x ^ 1 = ¬x.
  if (a == kTrueNode) return edge_negate(b) ^ out_c;
  if (b == kTrueNode) return edge_negate(a) ^ out_c;

  if (a > b) {
    std::swap(a, b);
    ++stats_.cache_canonical_swaps;
  }

  NodeIndex cached = cache_.lookup(Op::Xor, a, b);
  if (cached != kInvalidNode) {
    ++stats_.cache_hits;
    return cached ^ out_c;
  }

  const std::size_t la = level_of_node(a);
  const std::size_t lb = level_of_node(b);
  const Var v = la <= lb ? var_of(a) : var_of(b);

  const NodeIndex a0 = la <= lb ? lo(a) : a;
  const NodeIndex a1 = la <= lb ? hi(a) : a;
  const NodeIndex b0 = lb <= la ? lo(b) : b;
  const NodeIndex b1 = lb <= la ? hi(b) : b;

  const NodeIndex lo_res = xor_rec(a0, b0);
  const NodeIndex hi_res = xor_rec(a1, b1);
  const NodeIndex result = mk(v, lo_res, hi_res);

  cache_.insert(Op::Xor, a, b, result);
  return result ^ out_c;
}

NodeIndex Manager::negate(NodeIndex f) {
  ++stats_.negations_constant_time;
  return edge_negate(f);
}

NodeIndex Manager::ite(NodeIndex f, NodeIndex g, NodeIndex h) {
  maybe_gc();
  if (f == kTrueNode) return g;
  if (f == kFalseNode) return h;
  if (g == h) return g;
  if (g == kTrueNode && h == kFalseNode) return f;
  if (g == kFalseNode && h == kTrueNode) return edge_negate(f);
  // Standard-triple normalization: a regular predicate, so ite(¬f, g, h)
  // and ite(f, h, g) resolve to the same recursion.
  if (edge_complemented(f)) {
    f = edge_negate(f);
    std::swap(g, h);
  }
  // (f & g) | (!f & h). Intermediates are pinned with handles so a GC
  // triggered between the applies cannot reclaim them.
  Bdd fg = make(and_rec(f, g));
  Bdd nfh = make(and_rec(edge_negate(f), h));
  return edge_negate(
      and_rec(edge_negate(fg.index()), edge_negate(nfh.index())));
}

NodeIndex Manager::restrict_var(NodeIndex f, Var v, bool value) {
  if (v >= num_vars_) throw BddError("restrict_var(): variable out of range");
  maybe_gc();
  return restrict_rec(f, v, value);
}

NodeIndex Manager::restrict_rec(NodeIndex f, Var v, bool value) {
  // Restriction commutes with complement, so recurse and cache on the
  // regular edge and re-apply the polarity on the way out: both polarities
  // of a function share every cache entry below.
  const NodeIndex c = edge_complemented(f);
  const NodeIndex fr = edge_regular(f);
  if (level_of_node(fr) > level_of_var_[v]) return f;  // v cannot occur below
  // Copy: recursive calls can reallocate the node pool.
  const Node n = node(edge_slot(fr));
  if (n.var == v) return (value ? n.hi : n.lo) ^ c;

  const NodeIndex key_b = static_cast<NodeIndex>(v * 2 + (value ? 1 : 0));
  NodeIndex cached = cache_.lookup(Op::Restrict, fr, key_b);
  if (cached != kInvalidNode) {
    ++stats_.cache_hits;
    return cached ^ c;
  }

  const NodeIndex lo_res = restrict_rec(n.lo, v, value);
  const NodeIndex hi_res = restrict_rec(n.hi, v, value);
  const NodeIndex result = mk(n.var, lo_res, hi_res);
  cache_.insert(Op::Restrict, fr, key_b, result);
  return result ^ c;
}

NodeIndex Manager::exists_var(NodeIndex f, Var v) {
  if (v >= num_vars_) throw BddError("exists_var(): variable out of range");
  maybe_gc();
  return exists_rec(f, v);
}

NodeIndex Manager::exists_rec(NodeIndex f, Var v) {
  // Quantification does NOT commute with complement (∃v.¬f ≠ ¬∃v.f), so
  // the cache key must carry the full edge including its polarity.
  if (level_of_node(f) > level_of_var_[v]) return f;
  const NodeIndex c = edge_complemented(f);
  // Copy: recursive calls can reallocate the node pool.
  const Node n = node(edge_slot(f));
  if (n.var == v) return apply_rec(Op::Or, n.lo ^ c, n.hi ^ c);

  NodeIndex cached = cache_.lookup(Op::Exists, f, static_cast<NodeIndex>(v));
  if (cached != kInvalidNode) {
    ++stats_.cache_hits;
    return cached;
  }

  const NodeIndex lo_res = exists_rec(n.lo ^ c, v);
  const NodeIndex hi_res = exists_rec(n.hi ^ c, v);
  const NodeIndex result = mk(n.var, lo_res, hi_res);
  cache_.insert(Op::Exists, f, static_cast<NodeIndex>(v), result);
  return result;
}

NodeIndex Manager::compose(NodeIndex f, Var v, NodeIndex g) {
  if (v >= num_vars_) throw BddError("compose(): variable out of range");
  maybe_gc();

  // Shannon expansion on v: f[v <- g] = (g & f|v=1) | (!g & f|v=0).
  // The cofactors never mention v, so plain apply calls finish the job.
  Bdd f1 = make(restrict_rec(f, v, true));
  Bdd f0 = make(restrict_rec(f, v, false));
  Bdd gh = make(g);
  Bdd t1 = make(and_rec(gh.index(), f1.index()));
  Bdd t0 = make(and_rec(edge_negate(g), f0.index()));
  return apply_rec(Op::Or, t1.index(), t0.index());
}

}  // namespace dp::bdd
