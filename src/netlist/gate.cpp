#include "netlist/gate.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace dp::netlist {

std::string_view to_string(GateType t) {
  switch (t) {
    case GateType::Input: return "INPUT";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
  }
  return "?";
}

std::optional<GateType> gate_type_from_string(std::string_view s) {
  std::string up(s.size(), '\0');
  std::transform(s.begin(), s.end(), up.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  struct Pair {
    std::string_view name;
    GateType type;
  };
  static constexpr std::array<Pair, 13> table{{
      {"INPUT", GateType::Input},
      {"BUF", GateType::Buf},
      {"BUFF", GateType::Buf},
      {"NOT", GateType::Not},
      {"INV", GateType::Not},
      {"AND", GateType::And},
      {"NAND", GateType::Nand},
      {"OR", GateType::Or},
      {"NOR", GateType::Nor},
      {"XOR", GateType::Xor},
      {"XNOR", GateType::Xnor},
      {"CONST0", GateType::Const0},
      {"CONST1", GateType::Const1},
  }};
  for (const auto& p : table) {
    if (p.name == up) return p.type;
  }
  return std::nullopt;
}

}  // namespace dp::netlist
