// Function-preserving netlist transforms.
//
// expand_xor_to_nand reproduces exactly the relationship between the ISCAS
// circuits C499 and C1355: "C1355 is identical to C499 except with
// Exclusive-ORs expanded into their four-NAND equivalents" (paper, §4.1).
#pragma once

#include <string>

#include "netlist/circuit.hpp"

namespace dp::netlist {

/// Rewrites every XOR/XNOR into 2-input NAND logic:
///   a XOR b  ->  NAND(NAND(a, NAND(a,b)), NAND(b, NAND(a,b)))
/// XNOR adds an inverter on top. Gates with more than two inputs are first
/// decomposed into a balanced 2-input tree. The result computes the same
/// functions at the same-named POs. Returns a finalized circuit.
Circuit expand_xor_to_nand(const Circuit& circuit, const std::string& name);

/// Decomposes every gate with more than two inputs into a balanced tree of
/// 2-input gates of the base type, keeping any output inversion on the root
/// (NAND3 -> AND2 + NAND2, ...). DP's Table-1 equations are binary, so this
/// is the "model an n-input gate as n-1 two-input gates" device from §3.
Circuit decompose_to_two_input(const Circuit& circuit, const std::string& name);

}  // namespace dp::netlist
