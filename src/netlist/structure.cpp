#include "netlist/structure.hpp"

#include <algorithm>
#include <bit>

namespace dp::netlist {

Structure::Structure(const Circuit& circuit) : circuit_(circuit) {
  if (!circuit.finalized()) {
    throw NetlistError("Structure: circuit must be finalized");
  }
  const std::size_t n = circuit.num_nets();
  const auto& topo = circuit.topo_order();

  // Levels from PIs: forward pass over the topological order.
  level_from_pi_.assign(n, 0);
  for (NetId id : topo) {
    int lvl = 0;
    for (NetId f : circuit.fanins(id)) {
      lvl = std::max(lvl, level_from_pi_[f] + 1);
    }
    level_from_pi_[id] = lvl;
    depth_ = std::max(depth_, lvl);
  }

  // Max levels to PO and PO masks: backward pass.
  max_levels_to_po_.assign(n, -1);
  po_words_ = (circuit.num_outputs() + 63) / 64;
  po_mask_.assign(n * po_words_, 0);
  for (std::size_t i = 0; i < circuit.outputs().size(); ++i) {
    NetId po = circuit.outputs()[i];
    max_levels_to_po_[po] = 0;
    po_mask_[po * po_words_ + i / 64] |= 1ull << (i % 64);
  }
  net_words_ = (n + 63) / 64;
  desc_mask_.assign(n * net_words_, 0);
  for (NetId id = 0; id < n; ++id) {
    desc_mask_[id * net_words_ + id / 64] |= 1ull << (id % 64);
  }

  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NetId id = *it;
    for (NetId f : circuit.fanins(id)) {
      if (max_levels_to_po_[id] >= 0) {
        max_levels_to_po_[f] =
            std::max(max_levels_to_po_[f], max_levels_to_po_[id] + 1);
      }
      for (std::size_t w = 0; w < po_words_; ++w) {
        po_mask_[f * po_words_ + w] |= po_mask_[id * po_words_ + w];
      }
      for (std::size_t w = 0; w < net_words_; ++w) {
        desc_mask_[f * net_words_ + w] |= desc_mask_[id * net_words_ + w];
      }
    }
  }
}

std::size_t Structure::reachable_po_count(NetId id) const {
  std::size_t count = 0;
  for (std::size_t w = 0; w < po_words_; ++w) {
    count += std::popcount(po_mask_[id * po_words_ + w]);
  }
  return count;
}

bool Structure::po_reachable(NetId id, std::size_t po_index) const {
  if (po_index >= circuit_.num_outputs()) {
    throw NetlistError("po_reachable(): PO index out of range");
  }
  return (po_mask_[id * po_words_ + po_index / 64] >>
          (po_index % 64)) & 1ull;
}

bool Structure::reaches(NetId src, NetId dst) const {
  if (src >= circuit_.num_nets() || dst >= circuit_.num_nets()) {
    throw NetlistError("reaches(): net id out of range");
  }
  return (desc_mask_[src * net_words_ + dst / 64] >> (dst % 64)) & 1ull;
}

}  // namespace dp::netlist
