// C432-class analog: a 27-line, three-channel priority / interrupt
// controller with 9 per-line enables (36 PI, 7 PO), mirroring the size and
// the priority-decoding role of ISCAS-85 C432.
#include "netlist/generators.hpp"

namespace dp::netlist {

namespace {

NetId or_tree(Circuit& c, std::vector<NetId> leaves, const std::string& tag) {
  int counter = 0;
  while (leaves.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
      next.push_back(c.add_gate(GateType::Or, {leaves[i], leaves[i + 1]},
                                tag + "$o" + std::to_string(counter++)));
    }
    if (leaves.size() % 2) next.push_back(leaves.back());
    leaves = std::move(next);
  }
  return leaves.front();
}

}  // namespace

Circuit make_c432_analog() {
  constexpr int kLines = 9;
  Circuit c("c432");
  std::vector<NetId> e(kLines), a(kLines), b(kLines), d(kLines);
  for (int i = 0; i < kLines; ++i) e[i] = c.add_input("e" + std::to_string(i));
  for (int i = 0; i < kLines; ++i) a[i] = c.add_input("a" + std::to_string(i));
  for (int i = 0; i < kLines; ++i) b[i] = c.add_input("b" + std::to_string(i));
  for (int i = 0; i < kLines; ++i) d[i] = c.add_input("c" + std::to_string(i));

  // Gated requests per channel.
  std::vector<NetId> ra(kLines), rb(kLines), rc(kLines);
  for (int i = 0; i < kLines; ++i) {
    const std::string t = std::to_string(i);
    ra[i] = c.add_gate(GateType::And, {a[i], e[i]}, "ra" + t);
    rb[i] = c.add_gate(GateType::And, {b[i], e[i]}, "rb" + t);
    rc[i] = c.add_gate(GateType::And, {d[i], e[i]}, "rc" + t);
  }

  // Channel arbitration: A beats B beats C.
  NetId any_a = or_tree(c, ra, "anya");
  NetId any_b = or_tree(c, rb, "anyb");
  NetId any_c = or_tree(c, rc, "anyc");
  NetId no_a = c.add_gate(GateType::Not, {any_a}, "noa");
  NetId no_b = c.add_gate(GateType::Not, {any_b}, "nob");
  NetId grant_b = c.add_gate(GateType::And, {any_b, no_a}, "grantb");
  NetId gc_en = c.add_gate(GateType::And, {no_a, no_b}, "gcen");
  NetId grant_c = c.add_gate(GateType::And, {any_c, gc_en}, "grantc");

  // Winning request per line: the granted channel's request.
  std::vector<NetId> w(kLines);
  for (int i = 0; i < kLines; ++i) {
    const std::string t = std::to_string(i);
    NetId wb = c.add_gate(GateType::And, {rb[i], no_a}, "wb" + t);
    NetId wc = c.add_gate(GateType::And, {rc[i], gc_en}, "wc" + t);
    w[i] = c.add_gate(GateType::Or, {ra[i], wb, wc}, "w" + t);
  }

  // Priority encode (line 0 highest): sel_i = w_i & none of w_0..w_{i-1}.
  std::vector<NetId> sel(kLines);
  sel[0] = w[0];
  NetId none_above = c.add_gate(GateType::Not, {w[0]}, "n0");
  for (int i = 1; i < kLines; ++i) {
    const std::string t = std::to_string(i);
    sel[i] = c.add_gate(GateType::And, {w[i], none_above}, "sel" + t);
    if (i + 1 < kLines) {
      NetId nw = c.add_gate(GateType::Not, {w[i]}, "nw" + t);
      none_above = c.add_gate(GateType::And, {none_above, nw}, "n" + t);
    }
  }

  // 4-bit binary index of the selected line.
  std::vector<NetId> enc;
  for (int bit = 0; bit < 4; ++bit) {
    std::vector<NetId> terms;
    for (int i = 0; i < kLines; ++i) {
      if ((i >> bit) & 1) terms.push_back(sel[i]);
    }
    enc.push_back(or_tree(c, terms, "enc" + std::to_string(bit)));
  }

  c.mark_output(any_a);   // grant to channel A
  c.mark_output(grant_b);
  c.mark_output(grant_c);
  for (NetId n : enc) c.mark_output(n);
  c.finalize();
  return c;
}

}  // namespace dp::netlist
