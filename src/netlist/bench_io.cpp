#include "netlist/bench_io.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <sstream>
#include <vector>

namespace dp::netlist {

namespace {

std::string strip(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// Parses "KEYWORD(arg1, arg2, ...)"; returns {keyword, args} or throws.
struct Call {
  std::string keyword;
  std::vector<std::string> args;
};

Call parse_call(const std::string& text, std::size_t line) {
  const auto open = text.find('(');
  const auto close = text.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    throw BenchParseError(line, "expected KEYWORD(args): '" + text + "'");
  }
  Call call;
  call.keyword = strip(text.substr(0, open));
  const std::string args = text.substr(open + 1, close - open - 1);
  // Manual split so dangling separators ("AND(a,)") are caught.
  if (!strip(args).empty()) {
    std::size_t start = 0;
    while (true) {
      const std::size_t comma = args.find(',', start);
      std::string a = strip(args.substr(start, comma - start));
      if (a.empty()) {
        throw BenchParseError(line, "empty argument in '" + text + "'");
      }
      call.args.push_back(std::move(a));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  if (call.keyword.empty()) {
    throw BenchParseError(line, "missing keyword in '" + text + "'");
  }
  return call;
}

}  // namespace

namespace {

/// Reads one logical line, accepting Unix (\n), DOS (\r\n) and classic
/// Mac (\r) terminators. Plain std::getline splits on \n only: a CR-only
/// file then arrives as ONE line whose inner \r bytes survive into net
/// names, silently declaring garbage nets instead of failing loudly.
/// Trailing \r from CRLF endings is dropped here; any other surrounding
/// whitespace is handled by strip() as before.
bool getline_any_ending(std::istream& is, std::string& out) {
  out.clear();
  std::istream::sentry sentry(is, /*noskipws=*/true);
  if (!sentry) return false;
  std::streambuf* buf = is.rdbuf();
  for (;;) {
    const int c = buf->sbumpc();
    if (c == std::streambuf::traits_type::eof()) {
      if (out.empty()) is.setstate(std::ios::eofbit | std::ios::failbit);
      return !out.empty();
    }
    if (c == '\n') return true;
    if (c == '\r') {
      if (buf->sgetc() == '\n') buf->sbumpc();  // swallow the LF of CRLF
      return true;
    }
    out += static_cast<char>(c);
  }
}

}  // namespace

Circuit read_bench(std::istream& is, const std::string& name) {
  Circuit circuit(name);
  std::vector<NetId> output_ids;

  std::string raw;
  std::size_t line_no = 0;
  bool first_line = true;
  while (getline_any_ending(is, raw)) {
    ++line_no;
    if (first_line) {
      first_line = false;
      // Tolerate a UTF-8 byte-order mark from Windows editors.
      if (raw.size() >= 3 && raw.compare(0, 3, "\xEF\xBB\xBF") == 0) {
        raw.erase(0, 3);
      }
    }
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::string line = strip(raw);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(x)
      Call call = parse_call(line, line_no);
      if (call.args.size() != 1) {
        throw BenchParseError(line_no, call.keyword + " takes one net name");
      }
      if (call.keyword == "INPUT") {
        NetId id = circuit.declare(call.args[0]);
        try {
          circuit.define_input(id);
        } catch (const NetlistError& e) {
          // e.g. duplicate INPUT(x): keep the line number in the report.
          throw BenchParseError(line_no, e.what());
        }
      } else if (call.keyword == "OUTPUT") {
        output_ids.push_back(circuit.declare(call.args[0]));
      } else {
        throw BenchParseError(line_no, "unknown directive '" + call.keyword + "'");
      }
      continue;
    }

    const std::string target = strip(line.substr(0, eq));
    if (target.empty()) throw BenchParseError(line_no, "missing target net");
    Call call = parse_call(line.substr(eq + 1), line_no);
    auto type = gate_type_from_string(call.keyword);
    if (!type) {
      throw BenchParseError(line_no, "unknown gate type '" + call.keyword + "'");
    }
    NetId id = circuit.declare(target);
    std::vector<NetId> fanins;
    fanins.reserve(call.args.size());
    for (const std::string& a : call.args) {
      fanins.push_back(circuit.declare(a));
    }
    try {
      if (is_constant(*type)) {
        circuit.define_const(id, *type == GateType::Const1);
      } else {
        circuit.define_gate(id, *type, std::move(fanins));
      }
    } catch (const NetlistError& e) {
      throw BenchParseError(line_no, e.what());
    }
  }

  for (NetId id : output_ids) circuit.mark_output(id);
  circuit.finalize();  // throws NetlistError on undefined nets / loops
  return circuit;
}

Circuit read_bench_string(const std::string& text, const std::string& name) {
  std::istringstream is(text);
  return read_bench(is, name);
}

Circuit read_bench_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw NetlistError("cannot open bench file: " + path);
  std::string name = path;
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name.erase(0, slash + 1);
  const auto dot = name.find_last_of('.');
  if (dot != std::string::npos) name.erase(dot);
  return read_bench(is, name);
}

void write_bench(std::ostream& os, const Circuit& circuit) {
  os << "# " << circuit.name() << "\n";
  os << "# " << circuit.num_inputs() << " inputs, " << circuit.num_outputs()
     << " outputs, " << circuit.num_gates() << " gates\n";
  for (NetId id : circuit.inputs()) {
    os << "INPUT(" << circuit.net_name(id) << ")\n";
  }
  for (NetId id : circuit.outputs()) {
    os << "OUTPUT(" << circuit.net_name(id) << ")\n";
  }
  os << "\n";
  // Emit in id order (construction order), skipping PIs.
  for (NetId id = 0; id < circuit.num_nets(); ++id) {
    const GateType t = circuit.type(id);
    if (t == GateType::Input) continue;
    os << circuit.net_name(id) << " = " << to_string(t) << "(";
    const auto& fi = circuit.fanins(id);
    for (std::size_t i = 0; i < fi.size(); ++i) {
      if (i) os << ", ";
      os << circuit.net_name(fi[i]);
    }
    os << ")\n";
  }
}

std::string write_bench_string(const Circuit& circuit) {
  std::ostringstream os;
  write_bench(os, circuit);
  return os.str();
}

}  // namespace dp::netlist
