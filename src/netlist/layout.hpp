// Approximate layout coordinates (paper §2.2).
//
// Without real layouts for the benchmarks, the paper estimates wire
// positions: each gate's X coordinate is its distance in levels from the
// primary inputs; the n PIs get Y coordinates 0..n-1 in their stated order,
// and every gate's Y coordinate is the average of the Y coordinates of the
// gates feeding it -- "the aggregate of all possible layouts for that PI
// ordering". Euclidean distance between two nets then weights the bridging-
// fault sampling distribution.
#pragma once

#include <vector>

#include "netlist/circuit.hpp"
#include "netlist/structure.hpp"

namespace dp::netlist {

class LayoutEstimate {
 public:
  LayoutEstimate(const Circuit& circuit, const Structure& structure);

  double x(NetId id) const { return x_.at(id); }
  double y(NetId id) const { return y_.at(id); }

  /// Euclidean distance between the (estimated) positions of two nets.
  double distance(NetId a, NetId b) const;

 private:
  std::vector<double> x_;
  std::vector<double> y_;
};

}  // namespace dp::netlist
