#include "netlist/testpoints.hpp"

#include <algorithm>

namespace dp::netlist {

namespace {

void check_taps(const Circuit& circuit, const std::vector<NetId>& taps) {
  for (NetId tap : taps) {
    if (tap >= circuit.num_nets()) {
      throw NetlistError("test point: net id out of range");
    }
    if (is_constant(circuit.type(tap))) {
      throw NetlistError("test point on a constant net is useless");
    }
  }
}

}  // namespace

Circuit add_observation_points(const Circuit& circuit,
                               const std::vector<NetId>& taps) {
  check_taps(circuit, taps);
  Circuit out(circuit.name() + "+obs");
  std::vector<NetId> map(circuit.num_nets(), kInvalidNet);
  for (NetId pi : circuit.inputs()) map[pi] = out.add_input(circuit.net_name(pi));
  for (NetId id : circuit.topo_order()) {
    const GateType t = circuit.type(id);
    if (t == GateType::Input) continue;
    if (is_constant(t)) {
      map[id] = out.add_const(t == GateType::Const1, circuit.net_name(id));
      continue;
    }
    std::vector<NetId> fi;
    fi.reserve(circuit.fanins(id).size());
    for (NetId f : circuit.fanins(id)) fi.push_back(map[f]);
    map[id] = out.add_gate(t, std::move(fi), circuit.net_name(id));
  }
  for (NetId po : circuit.outputs()) out.mark_output(map[po]);
  for (NetId tap : taps) out.mark_output(map[tap]);
  out.finalize();
  return out;
}

Circuit add_control_points(const Circuit& circuit,
                           const std::vector<NetId>& taps) {
  check_taps(circuit, taps);
  Circuit out(circuit.name() + "+ctl");
  std::vector<NetId> map(circuit.num_nets(), kInvalidNet);
  for (NetId pi : circuit.inputs()) map[pi] = out.add_input(circuit.net_name(pi));
  std::vector<NetId> ctl;
  ctl.reserve(taps.size());
  for (std::size_t i = 0; i < taps.size(); ++i) {
    ctl.push_back(out.add_input("cp" + std::to_string(i)));
  }
  for (NetId id : circuit.topo_order()) {
    const GateType t = circuit.type(id);
    NetId built;
    if (t == GateType::Input) {
      built = map[id];
    } else if (is_constant(t)) {
      built = out.add_const(t == GateType::Const1, circuit.net_name(id));
    } else {
      std::vector<NetId> fi;
      fi.reserve(circuit.fanins(id).size());
      for (NetId f : circuit.fanins(id)) fi.push_back(map[f]);
      built = out.add_gate(t, std::move(fi), circuit.net_name(id));
    }
    const auto it = std::find(taps.begin(), taps.end(), id);
    if (it != taps.end()) {
      const std::size_t k = static_cast<std::size_t>(it - taps.begin());
      built = out.add_gate(GateType::Xor, {built, ctl[k]},
                           circuit.net_name(id) + "$cp");
    }
    map[id] = built;
  }
  for (NetId po : circuit.outputs()) out.mark_output(map[po]);
  out.finalize();
  return out;
}

}  // namespace dp::netlist
