// "C95" stand-in: a 4x4 unsigned array multiplier.
//
// 16 partial-product ANDs reduced by a carry-save array of half/full
// adders; ~90 gates, 8 PIs, 8 POs -- the same size class as the paper's
// C95 benchmark.
#include "netlist/generators.hpp"

namespace dp::netlist {

namespace {

struct AdderOut {
  NetId sum;
  NetId carry;
};

AdderOut half_adder(Circuit& c, NetId a, NetId b, const std::string& tag) {
  return {c.add_gate(GateType::Xor, {a, b}, "hs" + tag),
          c.add_gate(GateType::And, {a, b}, "hc" + tag)};
}

AdderOut full_adder(Circuit& c, NetId a, NetId b, NetId cin,
                    const std::string& tag) {
  NetId axb = c.add_gate(GateType::Xor, {a, b}, "fp" + tag);
  NetId sum = c.add_gate(GateType::Xor, {axb, cin}, "fs" + tag);
  NetId g = c.add_gate(GateType::And, {a, b}, "fg" + tag);
  NetId pc = c.add_gate(GateType::And, {axb, cin}, "fq" + tag);
  NetId carry = c.add_gate(GateType::Or, {g, pc}, "fc" + tag);
  return {sum, carry};
}

}  // namespace

Circuit make_multiplier(int bits) {
  if (bits < 2) throw NetlistError("make_multiplier: bits must be >= 2");
  const int kBits = bits;
  Circuit c(bits == 4 ? "c95" : "mult" + std::to_string(bits));
  std::vector<NetId> a(static_cast<std::size_t>(kBits)), b(static_cast<std::size_t>(kBits));
  for (int i = 0; i < kBits; ++i) a[i] = c.add_input("a" + std::to_string(i));
  for (int i = 0; i < kBits; ++i) b[i] = c.add_input("b" + std::to_string(i));

  // Partial products pp[i][j] = a[i] & b[j], weight i + j.
  std::vector<std::vector<NetId>> columns(static_cast<std::size_t>(2 * kBits));
  for (int i = 0; i < kBits; ++i) {
    for (int j = 0; j < kBits; ++j) {
      NetId pp = c.add_gate(GateType::And, {a[i], b[j]},
                            "pp" + std::to_string(i) + "_" + std::to_string(j));
      columns[i + j].push_back(pp);
    }
  }

  // Ripple carry-save reduction column by column.
  int tag = 0;
  std::vector<NetId> product;
  for (std::size_t col = 0; col < columns.size(); ++col) {
    auto& column = columns[col];
    while (column.size() > 1) {
      if (column.size() == 2) {
        AdderOut out =
            half_adder(c, column[0], column[1], std::to_string(tag++));
        column = {out.sum};
        if (col + 1 < columns.size()) columns[col + 1].push_back(out.carry);
        break;
      }
      AdderOut out = full_adder(c, column[0], column[1], column[2],
                                std::to_string(tag++));
      column.erase(column.begin(), column.begin() + 3);
      column.push_back(out.sum);
      if (col + 1 < columns.size()) columns[col + 1].push_back(out.carry);
    }
    // Empty high column (no carries arrived): emit a constant 0.
    NetId out_bit = column.empty()
                        ? c.add_const(false, "z" + std::to_string(col))
                        : column[0];
    product.push_back(out_bit);
  }

  for (std::size_t k = 0; k < product.size(); ++k) {
    c.mark_output(product[k]);
  }
  c.finalize();
  return c;
}

Circuit make_c95_analog() { return make_multiplier(4); }

}  // namespace dp::netlist
