#include "netlist/circuit.hpp"

#include <algorithm>

namespace dp::netlist {

NetId Circuit::declare_or_new(const std::string& net_name) {
  if (finalized_) throw NetlistError("circuit already finalized");
  std::string n = net_name;
  if (n.empty()) n = "n" + std::to_string(types_.size());
  auto [it, inserted] = by_name_.emplace(n, static_cast<NetId>(types_.size()));
  if (!inserted) return it->second;

  types_.push_back(GateType::Buf);  // placeholder until defined
  fanins_.emplace_back();
  names_.push_back(std::move(n));
  states_.push_back(DefState::Declared);
  is_output_.push_back(false);
  return it->second;
}

NetId Circuit::declare(const std::string& net_name) {
  return declare_or_new(net_name);
}

NetId Circuit::add_input(const std::string& net_name) {
  NetId id = declare_or_new(net_name);
  define_input(id);
  return id;
}

NetId Circuit::add_const(bool value, const std::string& net_name) {
  NetId id = declare_or_new(net_name);
  define_const(id, value);
  return id;
}

NetId Circuit::add_gate(GateType type, std::vector<NetId> gate_fanins,
                        const std::string& net_name) {
  NetId id = declare_or_new(net_name);
  define_gate(id, type, std::move(gate_fanins));
  return id;
}

void Circuit::define_input(NetId id) {
  if (states_.at(id) == DefState::Defined) {
    throw NetlistError("net '" + names_[id] + "' defined twice");
  }
  types_[id] = GateType::Input;
  states_[id] = DefState::Defined;
  inputs_.push_back(id);
}

void Circuit::define_const(NetId id, bool value) {
  if (states_.at(id) == DefState::Defined) {
    throw NetlistError("net '" + names_[id] + "' defined twice");
  }
  types_[id] = value ? GateType::Const1 : GateType::Const0;
  states_[id] = DefState::Defined;
}

void Circuit::define_gate(NetId id, GateType type,
                          std::vector<NetId> gate_fanins) {
  if (states_.at(id) == DefState::Defined) {
    throw NetlistError("net '" + names_[id] + "' defined twice");
  }
  if (type == GateType::Input || is_constant(type)) {
    throw NetlistError("define_gate(): use define_input/define_const");
  }
  const int arity = fixed_arity(type);
  if (arity == -1 && !gate_fanins.empty()) {
    throw NetlistError("gate '" + names_[id] + "': type takes no fanins");
  }
  if (arity == 1 && gate_fanins.size() != 1) {
    throw NetlistError("gate '" + names_[id] + "': needs exactly one fanin");
  }
  if (arity == 0 && gate_fanins.empty()) {
    throw NetlistError("gate '" + names_[id] + "': needs at least one fanin");
  }
  for (NetId f : gate_fanins) {
    if (f >= types_.size()) {
      throw NetlistError("gate '" + names_[id] + "': fanin id out of range");
    }
  }
  types_[id] = type;
  fanins_[id] = std::move(gate_fanins);
  states_[id] = DefState::Defined;
}

void Circuit::mark_output(NetId id) {
  if (id >= types_.size()) throw NetlistError("mark_output(): bad net id");
  if (is_output_[id]) return;
  is_output_[id] = true;
  outputs_.push_back(id);
}

std::optional<NetId> Circuit::find_net(const std::string& net_name) const {
  auto it = by_name_.find(net_name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::size_t> Circuit::input_index(NetId id) const {
  auto it = std::find(inputs_.begin(), inputs_.end(), id);
  if (it == inputs_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - inputs_.begin());
}

std::size_t Circuit::num_gates() const {
  std::size_t n = 0;
  for (GateType t : types_) {
    if (t != GateType::Input && !is_constant(t)) ++n;
  }
  return n;
}

void Circuit::check_defined_all() const {
  for (NetId i = 0; i < types_.size(); ++i) {
    if (states_[i] != DefState::Defined) {
      throw NetlistError("net '" + names_[i] + "' referenced but never defined");
    }
  }
}

void Circuit::compute_topo_order() {
  // Iterative DFS with colors; detects combinational loops.
  enum : std::uint8_t { White, Grey, Black };
  std::vector<std::uint8_t> color(types_.size(), White);
  topo_order_.clear();
  topo_order_.reserve(types_.size());

  struct Frame {
    NetId net;
    std::size_t child;
  };
  std::vector<Frame> stack;
  for (NetId root = 0; root < types_.size(); ++root) {
    if (color[root] != White) continue;
    stack.push_back({root, 0});
    color[root] = Grey;
    while (!stack.empty()) {
      Frame& fr = stack.back();
      const auto& fi = fanins_[fr.net];
      if (fr.child < fi.size()) {
        NetId next = fi[fr.child++];
        if (color[next] == Grey) {
          throw NetlistError("combinational loop through net '" +
                             names_[next] + "'");
        }
        if (color[next] == White) {
          color[next] = Grey;
          stack.push_back({next, 0});
        }
      } else {
        color[fr.net] = Black;
        topo_order_.push_back(fr.net);
        stack.pop_back();
      }
    }
  }
}

void Circuit::finalize() {
  if (finalized_) return;
  check_defined_all();
  if (outputs_.empty()) throw NetlistError("circuit has no primary outputs");
  if (inputs_.empty()) throw NetlistError("circuit has no primary inputs");

  compute_topo_order();

  fanouts_.assign(types_.size(), {});
  for (NetId g = 0; g < types_.size(); ++g) {
    const auto& fi = fanins_[g];
    for (std::uint32_t pin = 0; pin < fi.size(); ++pin) {
      fanouts_[fi[pin]].push_back(PinRef{g, pin});
    }
  }
  finalized_ = true;
}

const std::vector<PinRef>& Circuit::fanouts(NetId id) const {
  if (!finalized_) throw NetlistError("fanouts(): call finalize() first");
  return fanouts_.at(id);
}

const std::vector<NetId>& Circuit::topo_order() const {
  if (!finalized_) throw NetlistError("topo_order(): call finalize() first");
  return topo_order_;
}

}  // namespace dp::netlist
