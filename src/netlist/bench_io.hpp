// Reader/writer for the ISCAS-85 ".bench" netlist format
// (Brglez & Fujiwara, ISCAS 1985):
//
//   # comment
//   INPUT(G1)
//   OUTPUT(G22)
//   G10 = NAND(G1, G3)
//
// PI order in the file is preserved; it becomes the OBDD variable order.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"

namespace dp::netlist {

class BenchParseError : public NetlistError {
 public:
  BenchParseError(std::size_t line, const std::string& what)
      : NetlistError("bench parse error at line " + std::to_string(line) +
                     ": " + what) {}
};

/// Parses a circuit from .bench text. The returned circuit is finalized.
Circuit read_bench(std::istream& is, const std::string& name = "bench");
Circuit read_bench_string(const std::string& text,
                          const std::string& name = "bench");
Circuit read_bench_file(const std::string& path);

/// Writes .bench text; read_bench(write_bench(c)) reproduces the netlist.
void write_bench(std::ostream& os, const Circuit& circuit);
std::string write_bench_string(const Circuit& circuit);

}  // namespace dp::netlist
