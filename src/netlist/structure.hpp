// Structural (purely topological) circuit analysis: levelization,
// PO reachability, and net-to-net reachability.
//
// The paper uses these quantities directly:
//   * level from PIs            -> X layout coordinate (section 2.2)
//   * maximum levels to a PO    -> the "bathtub" curves (figures 3, 8)
//   * POs fed by a net          -> the "#POs fed vs #POs observable" study
//   * net-to-net reachability   -> feedback-bridging-fault screening
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"

namespace dp::netlist {

class Structure {
 public:
  explicit Structure(const Circuit& circuit);

  /// Longest path (in gate levels) from any PI; PIs are level 0.
  int level_from_pi(NetId id) const { return level_from_pi_.at(id); }

  /// Longest path (in gate levels) to any reachable PO; a PO net is 0.
  /// -1 when no PO is reachable (dangling logic).
  int max_levels_to_po(NetId id) const { return max_levels_to_po_.at(id); }

  /// Depth of the circuit: max level over all nets.
  int depth() const { return depth_; }

  /// Number of distinct POs in the transitive fanout of `id`
  /// (a net that is itself a PO counts).
  std::size_t reachable_po_count(NetId id) const;

  /// True if PO number `po_index` (index into circuit.outputs()) is in the
  /// transitive fanout of `id`.
  bool po_reachable(NetId id, std::size_t po_index) const;

  /// True if there is a directed path from `src` to `dst` (src == dst
  /// counts as reachable). Used to classify feedback bridging faults.
  bool reaches(NetId src, NetId dst) const;

 private:
  const Circuit& circuit_;
  std::vector<int> level_from_pi_;
  std::vector<int> max_levels_to_po_;
  int depth_ = 0;

  std::size_t po_words_ = 0;
  std::vector<std::uint64_t> po_mask_;  ///< num_nets x po_words bitsets

  std::size_t net_words_ = 0;
  std::vector<std::uint64_t> desc_mask_;  ///< num_nets x net_words bitsets
};

}  // namespace dp::netlist
