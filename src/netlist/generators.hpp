// Benchmark-circuit generators.
//
// The paper's suite is: C17, a full adder, C95, the 74LS181 ALU, C432,
// C499, C1355 and C1908. C17 and the full adder are reproduced exactly.
// The remaining ISCAS-85 netlists are not redistributable here, so we
// generate functional analogs of matching size class and structure (see
// DESIGN.md §2); real `.bench` files drop in via read_bench_file() when
// available. Crucially, the C499 <-> C1355 relationship is preserved in
// kind: c1355_analog is c499_analog with every XOR expanded into its
// four-NAND equivalent.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/circuit.hpp"

namespace dp::netlist {

/// Exact ISCAS-85 C17 (5 PI, 2 PO, 6 NAND gates).
Circuit make_c17();

/// Exact textbook full adder (3 PI, 2 PO; XOR/AND/OR form).
Circuit make_full_adder();

/// "C95" stand-in: 4x4 array multiplier (8 PI, 8 PO, ~90 gates).
Circuit make_c95_analog();

/// 74LS181-class 4-bit ALU: A[4], B[4], S[4], M, Cn -> F[4], Cout, P, G,
/// EQ (14 PI, 8 PO, ~90 gates). Carry-lookahead arithmetic core with an
/// S-selected logic unit; same interface, size and role as the 74181.
Circuit make_alu181();

/// C432-class: 27-line, 3-channel priority/interrupt controller with
/// 9 enables (36 PI, 7 PO, ~220 gates).
Circuit make_c432_analog();

/// C499-class: 32-data/8-check single-error-correcting code circuit with a
/// correction-enable input (41 PI, 32 PO, XOR-rich, ~250 gates).
Circuit make_c499_analog();

/// C1355-class: identical function to c499_analog, XORs expanded to NANDs.
Circuit make_c1355_analog();

/// C1908-class: 24-data/8-check SEC-DED corrector, chain-shaped parity
/// (deep), fully NAND-expanded (33 PI, 25 PO, ~900 gates).
Circuit make_c1908_analog();

// ---- generic generators (tests, examples, extra workloads) --------------

Circuit make_ripple_adder(int bits);
Circuit make_parity_tree(int bits, bool balanced);

/// n x n unsigned array multiplier (2n PI, 2n PO). make_multiplier(4) is
/// the "C95" stand-in; make_multiplier(16) is a C6288-class stress
/// workload whose product-output BDDs blow up -- the classic case for the
/// node budget and cut-point decomposition.
Circuit make_multiplier(int bits);

/// Topology presets for make_random_circuit. Mixed is the historical
/// recency-biased DAG; the others steer the generator toward circuit
/// shapes the fixed benchmark suite under-represents (the differential
/// fuzzer sweeps all of them):
///   FanoutHeavy  -- a small hub set of nets collects very large fanout,
///                   so branch faults and checkpoint stems dominate.
///   XorRich      -- ~60% XOR/XNOR gates (C499-like parity logic, the
///                   worst case for difference propagation shortcuts).
///   Reconvergent -- gates come in stem/branch/branch/merge quadruples,
///                   maximizing reconvergent fanout per gate.
///   DeepChain    -- every gate consumes the previous gate's output, so
///                   depth grows linearly with gate count.
enum class CircuitShape : std::uint8_t {
  Mixed,
  FanoutHeavy,
  XorRich,
  Reconvergent,
  DeepChain,
};

std::string_view to_string(CircuitShape shape);
/// Accepts the to_string() names ("mixed", "fanout", "xor",
/// "reconvergent", "chain"); nullopt for anything else.
std::optional<CircuitShape> circuit_shape_from_string(std::string_view s);
/// Every preset, in declaration order.
const std::vector<CircuitShape>& all_circuit_shapes();

/// Seeded random combinational DAG with mixed gate types; every net is
/// reachable from some PI, and all sink nets become POs.
Circuit make_random_circuit(std::uint64_t seed, int num_inputs, int num_gates,
                            int num_outputs);
/// Shape-steered variant. Identical seeds give identical circuits per
/// shape; Mixed reproduces the four-argument overload exactly.
Circuit make_random_circuit(std::uint64_t seed, int num_inputs, int num_gates,
                            int num_outputs, CircuitShape shape);

// ---- suite ---------------------------------------------------------------

/// Names accepted by make_benchmark(), in increasing netlist size:
/// c17, fulladder, c95, alu181, c432, c499, c1355, c1908.
const std::vector<std::string>& benchmark_names();
Circuit make_benchmark(std::string_view name);
std::vector<Circuit> benchmark_suite();

}  // namespace dp::netlist
