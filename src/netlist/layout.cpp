#include "netlist/layout.hpp"

#include <cmath>

namespace dp::netlist {

LayoutEstimate::LayoutEstimate(const Circuit& circuit,
                               const Structure& structure) {
  const std::size_t n = circuit.num_nets();
  x_.assign(n, 0.0);
  y_.assign(n, 0.0);

  for (NetId id = 0; id < n; ++id) {
    x_[id] = static_cast<double>(structure.level_from_pi(id));
  }

  // PIs: Y = position in the stated input order.
  for (std::size_t i = 0; i < circuit.inputs().size(); ++i) {
    y_[circuit.inputs()[i]] = static_cast<double>(i);
  }

  // Gates, in topological order (== level by level for this recurrence):
  // Y = mean of the Y coordinates of the feeding gates.
  for (NetId id : circuit.topo_order()) {
    const auto& fi = circuit.fanins(id);
    if (fi.empty()) continue;  // PI or constant
    double sum = 0.0;
    for (NetId f : fi) sum += y_[f];
    y_[id] = sum / static_cast<double>(fi.size());
  }
}

double LayoutEstimate::distance(NetId a, NetId b) const {
  const double dx = x_.at(a) - x_.at(b);
  const double dy = y_.at(a) - y_.at(b);
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace dp::netlist
