// Benchmark-suite registry: the paper's circuit set, in increasing size.
#include <functional>

#include "netlist/generators.hpp"

namespace dp::netlist {

namespace {

struct Entry {
  std::string name;
  std::function<Circuit()> make;
};

const std::vector<Entry>& registry() {
  static const std::vector<Entry> entries = {
      {"fulladder", make_full_adder},
      {"c17", make_c17},
      {"c95", make_c95_analog},
      {"alu181", make_alu181},
      {"c432", make_c432_analog},
      {"c499", make_c499_analog},
      {"c1355", make_c1355_analog},
      {"c1908", make_c1908_analog},
  };
  return entries;
}

}  // namespace

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n;
    for (const auto& e : registry()) n.push_back(e.name);
    return n;
  }();
  return names;
}

Circuit make_benchmark(std::string_view name) {
  for (const auto& e : registry()) {
    if (e.name == name) return e.make();
  }
  throw NetlistError("unknown benchmark circuit: " + std::string(name));
}

std::vector<Circuit> benchmark_suite() {
  std::vector<Circuit> suite;
  suite.reserve(registry().size());
  for (const auto& e : registry()) suite.push_back(e.make());
  return suite;
}

}  // namespace dp::netlist
