// Combinational gate-level netlist.
//
// One node per net, ISCAS-85 style: a node is a primary input, a constant,
// or a gate driving the net. Primary-output-ness is a flag on a net, and PI
// order is preserved because it doubles as the OBDD variable order (the
// paper relies on the benchmark's stated PI order being "meaningful").
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate.hpp"

namespace dp::netlist {

class NetlistError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A gate input pin, identified by the gate (net it drives) and the fanin
/// position. Fault sites and fanout lists both use this addressing.
struct PinRef {
  NetId gate = kInvalidNet;
  std::uint32_t pin = 0;

  friend bool operator==(const PinRef&, const PinRef&) = default;
};

class Circuit {
 public:
  explicit Circuit(std::string name) : name_(std::move(name)) {}

  // ---- construction ----------------------------------------------------

  /// Registers a name without defining its driver (two-pass parsing).
  NetId declare(const std::string& net_name);

  NetId add_input(const std::string& net_name);
  NetId add_const(bool value, const std::string& net_name);
  NetId add_gate(GateType type, std::vector<NetId> fanins,
                 const std::string& net_name = "");

  void define_input(NetId id);
  void define_const(NetId id, bool value);
  void define_gate(NetId id, GateType type, std::vector<NetId> fanins);

  void mark_output(NetId id);

  /// Validates (all nets defined, arities legal, acyclic, >= 1 PO),
  /// computes fanouts and a topological order. Must be called once after
  /// construction; structural accessors below require it.
  void finalize();
  bool finalized() const { return finalized_; }

  // ---- basic accessors ----------------------------------------------------

  const std::string& name() const { return name_; }
  std::size_t num_nets() const { return types_.size(); }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  /// Paper's "netlist size" axis: gate count (constants and PIs excluded).
  std::size_t num_gates() const;

  const std::vector<NetId>& inputs() const { return inputs_; }
  const std::vector<NetId>& outputs() const { return outputs_; }

  GateType type(NetId id) const { return types_.at(id); }
  const std::vector<NetId>& fanins(NetId id) const { return fanins_.at(id); }
  const std::string& net_name(NetId id) const { return names_.at(id); }
  bool is_output(NetId id) const { return is_output_.at(id); }

  std::optional<NetId> find_net(const std::string& net_name) const;

  /// Position of a PI in the input list (== its OBDD variable id).
  std::optional<std::size_t> input_index(NetId id) const;

  // ---- structure (after finalize) ------------------------------------------

  const std::vector<PinRef>& fanouts(NetId id) const;
  std::size_t fanout_count(NetId id) const { return fanouts(id).size(); }
  /// Nets in topological order (fanins before fanouts).
  const std::vector<NetId>& topo_order() const;

 private:
  enum class DefState : std::uint8_t { Declared, Defined };

  NetId declare_or_new(const std::string& net_name);
  void check_defined_all() const;
  void compute_topo_order();

  std::string name_;
  std::vector<GateType> types_;
  std::vector<std::vector<NetId>> fanins_;
  std::vector<std::string> names_;
  std::vector<DefState> states_;
  std::vector<bool> is_output_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::unordered_map<std::string, NetId> by_name_;

  bool finalized_ = false;
  std::vector<std::vector<PinRef>> fanouts_;
  std::vector<NetId> topo_order_;
};

}  // namespace dp::netlist
