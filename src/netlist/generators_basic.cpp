// Small exact circuits and generic generators.
#include <algorithm>
#include <random>

#include "netlist/generators.hpp"

namespace dp::netlist {

Circuit make_c17() {
  // The classic ISCAS-85 C17 netlist, verbatim.
  Circuit c("c17");
  NetId g1 = c.add_input("1");
  NetId g2 = c.add_input("2");
  NetId g3 = c.add_input("3");
  NetId g6 = c.add_input("6");
  NetId g7 = c.add_input("7");
  NetId g10 = c.add_gate(GateType::Nand, {g1, g3}, "10");
  NetId g11 = c.add_gate(GateType::Nand, {g3, g6}, "11");
  NetId g16 = c.add_gate(GateType::Nand, {g2, g11}, "16");
  NetId g19 = c.add_gate(GateType::Nand, {g11, g7}, "19");
  NetId g22 = c.add_gate(GateType::Nand, {g10, g16}, "22");
  NetId g23 = c.add_gate(GateType::Nand, {g16, g19}, "23");
  c.mark_output(g22);
  c.mark_output(g23);
  c.finalize();
  return c;
}

Circuit make_full_adder() {
  Circuit c("fulladder");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId cin = c.add_input("cin");
  NetId axb = c.add_gate(GateType::Xor, {a, b}, "axb");
  NetId sum = c.add_gate(GateType::Xor, {axb, cin}, "sum");
  NetId ab = c.add_gate(GateType::And, {a, b}, "ab");
  NetId pc = c.add_gate(GateType::And, {axb, cin}, "pc");
  NetId cout = c.add_gate(GateType::Or, {ab, pc}, "cout");
  c.mark_output(sum);
  c.mark_output(cout);
  c.finalize();
  return c;
}

Circuit make_ripple_adder(int bits) {
  if (bits < 1) throw NetlistError("make_ripple_adder: bits must be >= 1");
  Circuit c("ripple" + std::to_string(bits));
  std::vector<NetId> a(bits), b(bits);
  for (int i = 0; i < bits; ++i) a[i] = c.add_input("a" + std::to_string(i));
  for (int i = 0; i < bits; ++i) b[i] = c.add_input("b" + std::to_string(i));
  NetId carry = c.add_input("cin");
  for (int i = 0; i < bits; ++i) {
    const std::string s = std::to_string(i);
    NetId axb = c.add_gate(GateType::Xor, {a[i], b[i]}, "p" + s);
    NetId sum = c.add_gate(GateType::Xor, {axb, carry}, "s" + s);
    NetId g = c.add_gate(GateType::And, {a[i], b[i]}, "g" + s);
    NetId pc = c.add_gate(GateType::And, {axb, carry}, "pc" + s);
    carry = c.add_gate(GateType::Or, {g, pc}, "c" + std::to_string(i + 1));
    c.mark_output(sum);
  }
  c.mark_output(carry);
  c.finalize();
  return c;
}

Circuit make_parity_tree(int bits, bool balanced) {
  if (bits < 2) throw NetlistError("make_parity_tree: bits must be >= 2");
  Circuit c(std::string("parity") + (balanced ? "bal" : "chain") +
            std::to_string(bits));
  std::vector<NetId> leaves(bits);
  for (int i = 0; i < bits; ++i) {
    leaves[i] = c.add_input("d" + std::to_string(i));
  }
  int counter = 0;
  auto fresh = [&] { return "x" + std::to_string(counter++); };
  if (balanced) {
    while (leaves.size() > 1) {
      std::vector<NetId> next;
      for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
        next.push_back(
            c.add_gate(GateType::Xor, {leaves[i], leaves[i + 1]}, fresh()));
      }
      if (leaves.size() % 2) next.push_back(leaves.back());
      leaves = std::move(next);
    }
  } else {
    NetId acc = leaves[0];
    for (std::size_t i = 1; i < leaves.size(); ++i) {
      acc = c.add_gate(GateType::Xor, {acc, leaves[i]}, fresh());
    }
    leaves = {acc};
  }
  c.mark_output(leaves[0]);
  c.finalize();
  return c;
}

Circuit make_random_circuit(std::uint64_t seed, int num_inputs, int num_gates,
                            int num_outputs) {
  if (num_inputs < 1 || num_gates < 1 || num_outputs < 1) {
    throw NetlistError("make_random_circuit: all counts must be >= 1");
  }
  std::mt19937_64 rng(seed);
  Circuit c("rand" + std::to_string(seed));

  std::vector<NetId> nets;
  for (int i = 0; i < num_inputs; ++i) {
    nets.push_back(c.add_input("i" + std::to_string(i)));
  }

  static constexpr GateType kTypes[] = {
      GateType::And, GateType::Nand, GateType::Or,  GateType::Nor,
      GateType::Xor, GateType::Xnor, GateType::Not, GateType::Buf};
  std::uniform_int_distribution<int> type_dist(0, 7);

  for (int g = 0; g < num_gates; ++g) {
    GateType t = kTypes[type_dist(rng)];
    // Bias fanins toward recent nets so depth grows with gate count.
    auto pick = [&]() -> NetId {
      std::uniform_int_distribution<std::size_t> d(0, nets.size() - 1);
      std::size_t a = d(rng), b = d(rng);
      return nets[std::max(a, b)];
    };
    std::vector<NetId> fi;
    if (fixed_arity(t) == 1) {
      fi = {pick()};
    } else {
      std::uniform_int_distribution<int> nfi(2, 3);
      int k = nfi(rng);
      for (int i = 0; i < k; ++i) fi.push_back(pick());
      // Same net twice in an XOR cancels to a constant; keep fanins distinct.
      std::sort(fi.begin(), fi.end());
      fi.erase(std::unique(fi.begin(), fi.end()), fi.end());
      if (fi.size() < 2) fi.push_back(nets[rng() % nets.size()]);
      if (fi.size() < 2 || fi[fi.size() - 1] == fi[fi.size() - 2]) {
        fi.resize(1);
        t = GateType::Not;
      }
    }
    nets.push_back(c.add_gate(t, fi, "g" + std::to_string(g)));
  }

  // Sinks (nets with no fanout yet) become POs first; top up from the back.
  std::vector<bool> used(c.num_nets(), false);
  for (NetId id = 0; id < c.num_nets(); ++id) {
    for (NetId f : c.fanins(id)) used[f] = true;
  }
  std::vector<NetId> pos;
  for (NetId id = c.num_nets(); id-- > 0;) {
    if (!used[id] && c.type(id) != GateType::Input) pos.push_back(id);
  }
  for (NetId id = c.num_nets();
       id-- > 0 && pos.size() < static_cast<std::size_t>(num_outputs);) {
    if (c.type(id) != GateType::Input &&
        std::find(pos.begin(), pos.end(), id) == pos.end()) {
      pos.push_back(id);
    }
  }
  for (NetId id : pos) c.mark_output(id);
  c.finalize();
  return c;
}

}  // namespace dp::netlist
