// Small exact circuits and generic generators.
#include <algorithm>
#include <random>

#include "netlist/generators.hpp"

namespace dp::netlist {

Circuit make_c17() {
  // The classic ISCAS-85 C17 netlist, verbatim.
  Circuit c("c17");
  NetId g1 = c.add_input("1");
  NetId g2 = c.add_input("2");
  NetId g3 = c.add_input("3");
  NetId g6 = c.add_input("6");
  NetId g7 = c.add_input("7");
  NetId g10 = c.add_gate(GateType::Nand, {g1, g3}, "10");
  NetId g11 = c.add_gate(GateType::Nand, {g3, g6}, "11");
  NetId g16 = c.add_gate(GateType::Nand, {g2, g11}, "16");
  NetId g19 = c.add_gate(GateType::Nand, {g11, g7}, "19");
  NetId g22 = c.add_gate(GateType::Nand, {g10, g16}, "22");
  NetId g23 = c.add_gate(GateType::Nand, {g16, g19}, "23");
  c.mark_output(g22);
  c.mark_output(g23);
  c.finalize();
  return c;
}

Circuit make_full_adder() {
  Circuit c("fulladder");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId cin = c.add_input("cin");
  NetId axb = c.add_gate(GateType::Xor, {a, b}, "axb");
  NetId sum = c.add_gate(GateType::Xor, {axb, cin}, "sum");
  NetId ab = c.add_gate(GateType::And, {a, b}, "ab");
  NetId pc = c.add_gate(GateType::And, {axb, cin}, "pc");
  NetId cout = c.add_gate(GateType::Or, {ab, pc}, "cout");
  c.mark_output(sum);
  c.mark_output(cout);
  c.finalize();
  return c;
}

Circuit make_ripple_adder(int bits) {
  if (bits < 1) throw NetlistError("make_ripple_adder: bits must be >= 1");
  Circuit c("ripple" + std::to_string(bits));
  std::vector<NetId> a(bits), b(bits);
  for (int i = 0; i < bits; ++i) a[i] = c.add_input("a" + std::to_string(i));
  for (int i = 0; i < bits; ++i) b[i] = c.add_input("b" + std::to_string(i));
  NetId carry = c.add_input("cin");
  for (int i = 0; i < bits; ++i) {
    const std::string s = std::to_string(i);
    NetId axb = c.add_gate(GateType::Xor, {a[i], b[i]}, "p" + s);
    NetId sum = c.add_gate(GateType::Xor, {axb, carry}, "s" + s);
    NetId g = c.add_gate(GateType::And, {a[i], b[i]}, "g" + s);
    NetId pc = c.add_gate(GateType::And, {axb, carry}, "pc" + s);
    carry = c.add_gate(GateType::Or, {g, pc}, "c" + std::to_string(i + 1));
    c.mark_output(sum);
  }
  c.mark_output(carry);
  c.finalize();
  return c;
}

Circuit make_parity_tree(int bits, bool balanced) {
  if (bits < 2) throw NetlistError("make_parity_tree: bits must be >= 2");
  Circuit c(std::string("parity") + (balanced ? "bal" : "chain") +
            std::to_string(bits));
  std::vector<NetId> leaves(bits);
  for (int i = 0; i < bits; ++i) {
    leaves[i] = c.add_input("d" + std::to_string(i));
  }
  int counter = 0;
  auto fresh = [&] { return "x" + std::to_string(counter++); };
  if (balanced) {
    while (leaves.size() > 1) {
      std::vector<NetId> next;
      for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
        next.push_back(
            c.add_gate(GateType::Xor, {leaves[i], leaves[i + 1]}, fresh()));
      }
      if (leaves.size() % 2) next.push_back(leaves.back());
      leaves = std::move(next);
    }
  } else {
    NetId acc = leaves[0];
    for (std::size_t i = 1; i < leaves.size(); ++i) {
      acc = c.add_gate(GateType::Xor, {acc, leaves[i]}, fresh());
    }
    leaves = {acc};
  }
  c.mark_output(leaves[0]);
  c.finalize();
  return c;
}

std::string_view to_string(CircuitShape shape) {
  switch (shape) {
    case CircuitShape::Mixed: return "mixed";
    case CircuitShape::FanoutHeavy: return "fanout";
    case CircuitShape::XorRich: return "xor";
    case CircuitShape::Reconvergent: return "reconvergent";
    case CircuitShape::DeepChain: return "chain";
  }
  return "mixed";
}

std::optional<CircuitShape> circuit_shape_from_string(std::string_view s) {
  for (CircuitShape shape : all_circuit_shapes()) {
    if (s == to_string(shape)) return shape;
  }
  return std::nullopt;
}

const std::vector<CircuitShape>& all_circuit_shapes() {
  static const std::vector<CircuitShape> kShapes = {
      CircuitShape::Mixed, CircuitShape::FanoutHeavy, CircuitShape::XorRich,
      CircuitShape::Reconvergent, CircuitShape::DeepChain};
  return kShapes;
}

namespace {

/// Marks POs (sinks first, topped up from the back) and finalizes.
void finish_random_circuit(Circuit& c, int num_outputs) {
  std::vector<bool> used(c.num_nets(), false);
  for (NetId id = 0; id < c.num_nets(); ++id) {
    for (NetId f : c.fanins(id)) used[f] = true;
  }
  std::vector<NetId> pos;
  for (NetId id = c.num_nets(); id-- > 0;) {
    if (!used[id] && c.type(id) != GateType::Input) pos.push_back(id);
  }
  for (NetId id = c.num_nets();
       id-- > 0 && pos.size() < static_cast<std::size_t>(num_outputs);) {
    if (c.type(id) != GateType::Input &&
        std::find(pos.begin(), pos.end(), id) == pos.end()) {
      pos.push_back(id);
    }
  }
  for (NetId id : pos) c.mark_output(id);
  c.finalize();
}

constexpr GateType kRandomTypes[] = {
    GateType::And, GateType::Nand, GateType::Or,  GateType::Nor,
    GateType::Xor, GateType::Xnor, GateType::Not, GateType::Buf};

/// The historical generator, unchanged: recency-biased fanin picks over a
/// uniform type mix. Seeds reproduce the exact pre-preset circuits.
void grow_mixed(Circuit& c, std::vector<NetId>& nets, std::mt19937_64& rng,
                int num_gates) {
  std::uniform_int_distribution<int> type_dist(0, 7);
  for (int g = 0; g < num_gates; ++g) {
    GateType t = kRandomTypes[type_dist(rng)];
    // Bias fanins toward recent nets so depth grows with gate count.
    auto pick = [&]() -> NetId {
      std::uniform_int_distribution<std::size_t> d(0, nets.size() - 1);
      std::size_t a = d(rng), b = d(rng);
      return nets[std::max(a, b)];
    };
    std::vector<NetId> fi;
    if (fixed_arity(t) == 1) {
      fi = {pick()};
    } else {
      std::uniform_int_distribution<int> nfi(2, 3);
      int k = nfi(rng);
      for (int i = 0; i < k; ++i) fi.push_back(pick());
      // Same net twice in an XOR cancels to a constant; keep fanins distinct.
      std::sort(fi.begin(), fi.end());
      fi.erase(std::unique(fi.begin(), fi.end()), fi.end());
      if (fi.size() < 2) fi.push_back(nets[rng() % nets.size()]);
      if (fi.size() < 2 || fi[fi.size() - 1] == fi[fi.size() - 2]) {
        fi.resize(1);
        t = GateType::Not;
      }
    }
    nets.push_back(c.add_gate(t, fi, "g" + std::to_string(g)));
  }
}

/// Two distinct fanins, the first fixed to `a` (arity-2 builder shared by
/// the shaped generators; falls back to an inverter when the pool cannot
/// supply a second distinct net).
void add_gate2(Circuit& c, std::vector<NetId>& nets, GateType t, NetId a,
               NetId b, int g) {
  const std::string name = "g" + std::to_string(g);
  if (a == b) {
    nets.push_back(c.add_gate(GateType::Not, {a}, name));
  } else {
    nets.push_back(c.add_gate(t, {a, b}, name));
  }
}

void grow_fanout_heavy(Circuit& c, std::vector<NetId>& nets,
                       std::mt19937_64& rng, int num_gates) {
  std::uniform_int_distribution<int> type_dist(0, 7);
  for (int g = 0; g < num_gates; ++g) {
    GateType t = kRandomTypes[type_dist(rng)];
    // Half of all picks land in a small hub prefix, so those nets
    // accumulate fanout linear in the gate count.
    const std::size_t hubs = std::max<std::size_t>(2, nets.size() / 8);
    auto pick = [&]() -> NetId {
      if (rng() & 1) return nets[rng() % hubs];
      std::uniform_int_distribution<std::size_t> d(0, nets.size() - 1);
      std::size_t a = d(rng), b = d(rng);
      return nets[std::max(a, b)];
    };
    if (fixed_arity(t) == 1) {
      nets.push_back(c.add_gate(t, {pick()}, "g" + std::to_string(g)));
    } else {
      add_gate2(c, nets, t, pick(), pick(), g);
    }
  }
}

void grow_xor_rich(Circuit& c, std::vector<NetId>& nets, std::mt19937_64& rng,
                   int num_gates) {
  std::uniform_int_distribution<int> type_dist(0, 7);
  for (int g = 0; g < num_gates; ++g) {
    // ~60% parity gates, remainder the uniform mix.
    const int roll = static_cast<int>(rng() % 10);
    GateType t = roll < 5   ? GateType::Xor
                 : roll < 6 ? GateType::Xnor
                            : kRandomTypes[type_dist(rng)];
    auto pick = [&]() -> NetId {
      std::uniform_int_distribution<std::size_t> d(0, nets.size() - 1);
      std::size_t a = d(rng), b = d(rng);
      return nets[std::max(a, b)];
    };
    if (fixed_arity(t) == 1) {
      nets.push_back(c.add_gate(t, {pick()}, "g" + std::to_string(g)));
    } else {
      add_gate2(c, nets, t, pick(), pick(), g);
    }
  }
}

void grow_reconvergent(Circuit& c, std::vector<NetId>& nets,
                       std::mt19937_64& rng, int num_gates) {
  std::uniform_int_distribution<int> type_dist(0, 5);  // binary types only
  int g = 0;
  while (g < num_gates) {
    // One quadruple: stem s fans out into two branch gates which
    // reconverge in a merge gate (g3 sees s through both paths).
    std::uniform_int_distribution<std::size_t> d(0, nets.size() - 1);
    const NetId s = nets[std::max(d(rng), d(rng))];
    const NetId x = nets[d(rng)];
    const NetId y = nets[d(rng)];
    add_gate2(c, nets, kRandomTypes[type_dist(rng)], s, x, g++);
    const NetId b1 = nets.back();
    if (g >= num_gates) break;
    add_gate2(c, nets, kRandomTypes[type_dist(rng)], s, y, g++);
    const NetId b2 = nets.back();
    if (g >= num_gates) break;
    add_gate2(c, nets, kRandomTypes[type_dist(rng)], b1, b2, g++);
  }
}

void grow_deep_chain(Circuit& c, std::vector<NetId>& nets,
                     std::mt19937_64& rng, int num_gates) {
  std::uniform_int_distribution<int> type_dist(0, 5);  // binary types only
  for (int g = 0; g < num_gates; ++g) {
    // The previous net is always the first fanin: depth == gate count.
    std::uniform_int_distribution<std::size_t> d(0, nets.size() - 1);
    add_gate2(c, nets, kRandomTypes[type_dist(rng)], nets.back(), nets[d(rng)],
              g);
  }
}

}  // namespace

Circuit make_random_circuit(std::uint64_t seed, int num_inputs, int num_gates,
                            int num_outputs) {
  return make_random_circuit(seed, num_inputs, num_gates, num_outputs,
                             CircuitShape::Mixed);
}

Circuit make_random_circuit(std::uint64_t seed, int num_inputs, int num_gates,
                            int num_outputs, CircuitShape shape) {
  if (num_inputs < 1 || num_gates < 1 || num_outputs < 1) {
    throw NetlistError("make_random_circuit: all counts must be >= 1");
  }
  std::mt19937_64 rng(seed);
  // Mixed keeps the historical "rand<seed>" name (cache keys and test
  // expectations predate the presets); shaped circuits carry the preset.
  const std::string name =
      shape == CircuitShape::Mixed
          ? "rand" + std::to_string(seed)
          : "rand_" + std::string(to_string(shape)) + "_" +
                std::to_string(seed);
  Circuit c(name);

  std::vector<NetId> nets;
  for (int i = 0; i < num_inputs; ++i) {
    nets.push_back(c.add_input("i" + std::to_string(i)));
  }

  switch (shape) {
    case CircuitShape::Mixed: grow_mixed(c, nets, rng, num_gates); break;
    case CircuitShape::FanoutHeavy:
      grow_fanout_heavy(c, nets, rng, num_gates);
      break;
    case CircuitShape::XorRich: grow_xor_rich(c, nets, rng, num_gates); break;
    case CircuitShape::Reconvergent:
      grow_reconvergent(c, nets, rng, num_gates);
      break;
    case CircuitShape::DeepChain:
      grow_deep_chain(c, nets, rng, num_gates);
      break;
  }

  finish_random_circuit(c, num_outputs);
  return c;
}

}  // namespace dp::netlist
