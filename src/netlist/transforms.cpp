#include "netlist/transforms.hpp"

#include <functional>
#include <vector>

namespace dp::netlist {

namespace {

/// Builds a balanced 2-input tree of `type` over `leaves` in `out`,
/// returning the root net. `fresh` mints unique intermediate names.
NetId build_tree(Circuit& out, GateType type, std::vector<NetId> leaves,
                 const std::function<std::string()>& fresh) {
  while (leaves.size() > 1) {
    std::vector<NetId> next;
    next.reserve((leaves.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
      next.push_back(out.add_gate(type, {leaves[i], leaves[i + 1]}, fresh()));
    }
    if (leaves.size() % 2) next.push_back(leaves.back());
    leaves = std::move(next);
  }
  return leaves.front();
}

/// Copies PIs/constants and rewrites each gate through `rewrite`, which maps
/// (old net id, mapped fanins, target name) -> new net id.
Circuit rebuild(
    const Circuit& in, const std::string& name,
    const std::function<NetId(Circuit&, NetId, const std::vector<NetId>&,
                              const std::string&)>& rewrite) {
  Circuit out(name);
  std::vector<NetId> map(in.num_nets(), kInvalidNet);
  for (NetId id : in.topo_order()) {
    const GateType t = in.type(id);
    if (t == GateType::Input) {
      map[id] = out.add_input(in.net_name(id));
      continue;
    }
    if (is_constant(t)) {
      map[id] = out.add_const(t == GateType::Const1, in.net_name(id));
      continue;
    }
    std::vector<NetId> fi;
    fi.reserve(in.fanins(id).size());
    for (NetId f : in.fanins(id)) fi.push_back(map[f]);
    map[id] = rewrite(out, id, fi, in.net_name(id));
  }
  for (NetId po : in.outputs()) out.mark_output(map[po]);
  out.finalize();
  return out;
}

}  // namespace

Circuit decompose_to_two_input(const Circuit& circuit,
                               const std::string& name) {
  std::size_t counter = 0;
  auto rewrite = [&](Circuit& out, NetId id, const std::vector<NetId>& fi,
                     const std::string& target) -> NetId {
    const GateType t = circuit.type(id);
    if (fi.size() <= 2) return out.add_gate(t, fi, target);
    auto fresh = [&] { return target + "$t" + std::to_string(counter++); };
    // Reduce all but the last pair with the non-inverting base type, then
    // apply the original (possibly inverting) type at the root.
    std::vector<NetId> leaves(fi.begin(), fi.end() - 1);
    NetId left = build_tree(out, base_of(t), std::move(leaves), fresh);
    return out.add_gate(t, {left, fi.back()}, target);
  };
  return rebuild(circuit, name, rewrite);
}

Circuit expand_xor_to_nand(const Circuit& circuit, const std::string& name) {
  std::size_t counter = 0;
  auto rewrite = [&](Circuit& out, NetId id, const std::vector<NetId>& fi,
                     const std::string& target) -> NetId {
    const GateType t = circuit.type(id);
    if (t != GateType::Xor && t != GateType::Xnor) {
      return out.add_gate(t, fi, target);
    }
    auto fresh = [&] { return target + "$x" + std::to_string(counter++); };
    auto xor_nand = [&](NetId a, NetId b, const std::string& root) {
      NetId nab = out.add_gate(GateType::Nand, {a, b}, fresh());
      NetId na = out.add_gate(GateType::Nand, {a, nab}, fresh());
      NetId nb = out.add_gate(GateType::Nand, {b, nab}, fresh());
      return out.add_gate(GateType::Nand, {na, nb}, root);
    };
    // Left-fold multi-input parity; the last stage gets the target name.
    NetId acc = fi[0];
    const bool invert = (t == GateType::Xnor);
    for (std::size_t i = 1; i < fi.size(); ++i) {
      const bool last = (i + 1 == fi.size());
      const std::string root = (last && !invert) ? target : fresh();
      acc = xor_nand(acc, fi[i], root);
    }
    if (fi.size() == 1) {
      // Degenerate 1-input parity: XOR == BUF, XNOR == NOT.
      return out.add_gate(invert ? GateType::Not : GateType::Buf, {acc},
                          target);
    }
    if (invert) acc = out.add_gate(GateType::Not, {acc}, target);
    return acc;
  };
  return rebuild(circuit, name, rewrite);
}

}  // namespace dp::netlist
