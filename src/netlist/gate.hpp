// Gate primitives for combinational netlists.
//
// The netlist model follows the ISCAS-85 ".bench" convention: every gate
// drives exactly one named net, so gates and nets are identified 1:1.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dp::netlist {

/// Identifier of a net (== the gate driving it, or a primary input).
using NetId = std::uint32_t;
inline constexpr NetId kInvalidNet = 0xffffffffu;

enum class GateType : std::uint8_t {
  Input,   ///< primary input; no fanins
  Buf,     ///< 1-input buffer
  Not,     ///< 1-input inverter
  And,     ///< n-input AND (n >= 1)
  Nand,    ///< n-input NAND
  Or,      ///< n-input OR
  Nor,     ///< n-input NOR
  Xor,     ///< n-input XOR (odd parity)
  Xnor,    ///< n-input XNOR (even parity)
  Const0,  ///< constant 0, no fanins
  Const1,  ///< constant 1, no fanins
};

/// True for gate types whose output is the complement of the same gate
/// without the bubble (NAND/NOR/XNOR/NOT).
constexpr bool is_inverting(GateType t) {
  return t == GateType::Nand || t == GateType::Nor || t == GateType::Xnor ||
         t == GateType::Not;
}

/// Strips an output bubble: NAND -> AND, NOR -> OR, XNOR -> XOR, NOT -> BUF.
constexpr GateType base_of(GateType t) {
  switch (t) {
    case GateType::Nand: return GateType::And;
    case GateType::Nor: return GateType::Or;
    case GateType::Xnor: return GateType::Xor;
    case GateType::Not: return GateType::Buf;
    default: return t;
  }
}

constexpr bool is_constant(GateType t) {
  return t == GateType::Const0 || t == GateType::Const1;
}

/// Number of fanins the type requires; 0 means "any count >= 1".
constexpr int fixed_arity(GateType t) {
  switch (t) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1: return -1;  // exactly zero fanins
    case GateType::Buf:
    case GateType::Not: return 1;
    default: return 0;  // variadic
  }
}

/// Word-parallel evaluation used by the pattern simulator: each bit lane of
/// the 64-bit words is an independent input vector.
inline std::uint64_t eval_word2(GateType t, std::uint64_t a, std::uint64_t b) {
  switch (t) {
    case GateType::And: return a & b;
    case GateType::Nand: return ~(a & b);
    case GateType::Or: return a | b;
    case GateType::Nor: return ~(a | b);
    case GateType::Xor: return a ^ b;
    case GateType::Xnor: return ~(a ^ b);
    default: return a;
  }
}

/// Scalar evaluation of a 2-input slice (used by tests and brute force).
inline bool eval_bool2(GateType t, bool a, bool b) {
  return (eval_word2(t, a ? ~0ull : 0ull, b ? ~0ull : 0ull) & 1ull) != 0;
}

std::string_view to_string(GateType t);

/// Parses a .bench gate keyword (case-insensitive): "AND", "nand", ...
/// Returns nullopt for unknown keywords.
std::optional<GateType> gate_type_from_string(std::string_view s);

}  // namespace dp::netlist
