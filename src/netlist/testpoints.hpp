// Design-for-testability edits (paper §4.1: "how to best modify circuits
// when adding design for testability hardware -- should the emphasis be
// placed on additional control lines or observation points?").
//
// Both edits preserve the original PO functions; control points add fresh
// PIs (drive them 0 for normal operation).
#pragma once

#include <vector>

#include "netlist/circuit.hpp"

namespace dp::netlist {

/// Copy of `circuit` with each net in `taps` additionally marked as a
/// primary output (an observation point). PI and PO order are preserved;
/// the new POs append in `taps` order.
Circuit add_observation_points(const Circuit& circuit,
                               const std::vector<NetId>& taps);

/// Copy of `circuit` where each net in `taps` is XOR-ed with a fresh
/// control input "cp<i>" before reaching its consumers (and the PO list,
/// if tapped net was a PO). Control PIs append after the functional PIs.
Circuit add_control_points(const Circuit& circuit,
                           const std::vector<NetId>& taps);

}  // namespace dp::netlist
