// 74LS181-class 4-bit ALU (see DESIGN.md for the substitution note).
//
// Two-stage structure mirroring the 74181: an S-programmed input stage
// produces per-bit active-low terms
//     e_i = NOR(A_i, B_i & S0, ~B_i & S1)
//     d_i = NOR(A_i & B_i & S3, A_i & ~B_i & S2)
// from which half-sums x_i = e_i ^ d_i, propagates p_i = ~e_i and
// generates g_i = ~d_i feed a full carry-lookahead network gated by ~M.
// With S = 1001, M = 0 this computes F = A plus B plus Cn exactly as the
// 74181's arithmetic personality; M = 1 suppresses carries and yields the
// 16 S-indexed bitwise personalities. Outputs: F0..F3, Cout, P (carry
// propagate), G (carry generate), EQ (all-ones comparator, like A=B).
#include "netlist/generators.hpp"

namespace dp::netlist {

Circuit make_alu181() {
  Circuit c("alu181");
  std::vector<NetId> a(4), b(4), s(4);
  for (int i = 0; i < 4; ++i) a[i] = c.add_input("a" + std::to_string(i));
  for (int i = 0; i < 4; ++i) b[i] = c.add_input("b" + std::to_string(i));
  for (int i = 0; i < 4; ++i) s[i] = c.add_input("s" + std::to_string(i));
  NetId m = c.add_input("m");
  NetId cn = c.add_input("cn");

  NetId km = c.add_gate(GateType::Not, {m}, "km");  // arithmetic enable

  std::vector<NetId> x(4), p(4), g(4);
  for (int i = 0; i < 4; ++i) {
    const std::string t = std::to_string(i);
    NetId bn = c.add_gate(GateType::Not, {b[i]}, "bn" + t);
    NetId t0 = c.add_gate(GateType::And, {b[i], s[0]}, "e0_" + t);
    NetId t1 = c.add_gate(GateType::And, {bn, s[1]}, "e1_" + t);
    NetId e = c.add_gate(GateType::Nor, {a[i], t0, t1}, "e" + t);
    NetId t2 = c.add_gate(GateType::And, {a[i], b[i], s[3]}, "d3_" + t);
    NetId t3 = c.add_gate(GateType::And, {a[i], bn, s[2]}, "d2_" + t);
    NetId d = c.add_gate(GateType::Nor, {t2, t3}, "d" + t);
    x[i] = c.add_gate(GateType::Xor, {e, d}, "x" + t);
    p[i] = c.add_gate(GateType::Not, {e}, "p" + t);
    g[i] = c.add_gate(GateType::Not, {d}, "g" + t);
  }

  // Carry lookahead: c_{i+1} = g_i + p_i g_{i-1} + ... + p_i..p_0 Cn,
  // gated by ~M so logic mode sees no carries.
  NetId c0 = c.add_gate(GateType::And, {cn, km}, "c0");
  NetId c1t = c.add_gate(GateType::And, {p[0], cn}, "c1t");
  NetId c1u = c.add_gate(GateType::Or, {g[0], c1t}, "c1u");
  NetId c1 = c.add_gate(GateType::And, {c1u, km}, "c1");
  NetId c2a = c.add_gate(GateType::And, {p[1], g[0]}, "c2a");
  NetId c2b = c.add_gate(GateType::And, {p[1], p[0], cn}, "c2b");
  NetId c2u = c.add_gate(GateType::Or, {g[1], c2a, c2b}, "c2u");
  NetId c2 = c.add_gate(GateType::And, {c2u, km}, "c2");
  NetId c3a = c.add_gate(GateType::And, {p[2], g[1]}, "c3a");
  NetId c3b = c.add_gate(GateType::And, {p[2], p[1], g[0]}, "c3b");
  NetId c3c = c.add_gate(GateType::And, {p[2], p[1], p[0], cn}, "c3c");
  NetId c3u = c.add_gate(GateType::Or, {g[2], c3a, c3b, c3c}, "c3u");
  NetId c3 = c.add_gate(GateType::And, {c3u, km}, "c3");

  // Group propagate / generate and carry-out (ungated, as on the 74181).
  NetId pp = c.add_gate(GateType::And, {p[3], p[2], p[1], p[0]}, "pgrp");
  NetId ga = c.add_gate(GateType::And, {p[3], g[2]}, "ga");
  NetId gb = c.add_gate(GateType::And, {p[3], p[2], g[1]}, "gb");
  NetId gc = c.add_gate(GateType::And, {p[3], p[2], p[1], g[0]}, "gc");
  NetId gg = c.add_gate(GateType::Or, {g[3], ga, gb, gc}, "ggrp");
  NetId cot = c.add_gate(GateType::And, {pp, cn}, "cot");
  NetId cout = c.add_gate(GateType::Or, {gg, cot}, "cout");

  std::vector<NetId> f(4);
  const NetId carries[4] = {c0, c1, c2, c3};
  for (int i = 0; i < 4; ++i) {
    f[i] = c.add_gate(GateType::Xor, {x[i], carries[i]},
                      "f" + std::to_string(i));
    c.mark_output(f[i]);
  }
  NetId eq = c.add_gate(GateType::And, {f[0], f[1], f[2], f[3]}, "eq");
  c.mark_output(cout);
  c.mark_output(pp);
  c.mark_output(gg);
  c.mark_output(eq);
  c.finalize();
  return c;
}

}  // namespace dp::netlist
