// C499/C1355/C1908-class analogs: error-correcting-code circuits.
//
// c499_analog : 32 data + 8 received check bits + a correction-enable input
//               (41 PI); recomputes the 8 syndrome bits with balanced XOR
//               trees, matches them against each data bit's code pattern
//               and emits the 32 corrected data bits (32 PO). XOR-rich,
//               exactly the shape of the ISCAS-85 C499 SEC circuit.
// c1355_analog: c499_analog with every XOR expanded into four NANDs --
//               literally the paper's C499 <-> C1355 relationship.
// c1908_analog: 24 data + 8 check + enable (33 PI); chain-shaped (deep)
//               parity, a 25th "uncorrectable error" PO, and a full
//               XOR->NAND expansion (25 PO, ~900 gates, deep).
#include "netlist/generators.hpp"
#include "netlist/transforms.hpp"

namespace dp::netlist {

namespace {

/// Nonzero 8-bit code pattern for data bit i; patterns are pairwise
/// distinct and distinct from the unit vectors (a single-bit syndrome
/// means "check bit i itself is wrong" and must not correct data).
unsigned pattern_for(int i, int base) {
  unsigned p = static_cast<unsigned>(i + base);
  if ((p & (p - 1)) == 0) p |= 0x80;  // move power-of-two codes out of range
  return p;
}

NetId xor_tree(Circuit& c, std::vector<NetId> leaves, const std::string& tag,
               bool balanced) {
  int counter = 0;
  auto fresh = [&] { return tag + "$x" + std::to_string(counter++); };
  if (balanced) {
    while (leaves.size() > 1) {
      std::vector<NetId> next;
      for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
        next.push_back(
            c.add_gate(GateType::Xor, {leaves[i], leaves[i + 1]}, fresh()));
      }
      if (leaves.size() % 2) next.push_back(leaves.back());
      leaves = std::move(next);
    }
    return leaves.front();
  }
  NetId acc = leaves[0];
  for (std::size_t i = 1; i < leaves.size(); ++i) {
    acc = c.add_gate(GateType::Xor, {acc, leaves[i]}, fresh());
  }
  return acc;
}

Circuit make_sec_circuit(const std::string& name, int data_bits,
                         int pattern_base, bool balanced_parity,
                         bool add_error_output) {
  constexpr int kCheck = 8;
  Circuit c(name);
  std::vector<NetId> d(data_bits), r(kCheck);
  for (int i = 0; i < data_bits; ++i) {
    d[i] = c.add_input("d" + std::to_string(i));
  }
  for (int j = 0; j < kCheck; ++j) {
    r[j] = c.add_input("r" + std::to_string(j));
  }
  NetId enable = c.add_input("t");

  // Syndrome bit j: received check bit XOR parity of the covered data bits.
  std::vector<NetId> s(kCheck), sn(kCheck);
  for (int j = 0; j < kCheck; ++j) {
    std::vector<NetId> leaves{r[j]};
    for (int i = 0; i < data_bits; ++i) {
      if ((pattern_for(i, pattern_base) >> j) & 1) leaves.push_back(d[i]);
    }
    s[j] = xor_tree(c, std::move(leaves), "s" + std::to_string(j),
                    balanced_parity);
    sn[j] = c.add_gate(GateType::Not, {s[j]}, "sn" + std::to_string(j));
  }

  // Per-bit pattern matchers and corrected outputs.
  std::vector<NetId> matches(data_bits), corrected(data_bits);
  for (int i = 0; i < data_bits; ++i) {
    const unsigned pat = pattern_for(i, pattern_base);
    std::vector<NetId> literals;
    for (int j = 0; j < kCheck; ++j) {
      literals.push_back(((pat >> j) & 1) ? s[j] : sn[j]);
    }
    literals.push_back(enable);
    matches[i] =
        c.add_gate(GateType::And, literals, "m" + std::to_string(i));
    corrected[i] = c.add_gate(GateType::Xor, {d[i], matches[i]},
                              "f" + std::to_string(i));
    c.mark_output(corrected[i]);
  }

  if (add_error_output) {
    // Uncorrectable-error flag. Two detection legs feed it:
    //  * some syndrome bit set but no data pattern matched;
    //  * the corrected word, re-encoded, disagrees with the received
    //    check bits (a verification chain, like C1908's second stage).
    std::vector<NetId> svec(s.begin(), s.end());
    NetId any_s = svec[0];
    for (std::size_t k = 1; k < svec.size(); ++k) {
      any_s = c.add_gate(GateType::Or, {any_s, svec[k]},
                         "as" + std::to_string(k));
    }
    NetId any_m = matches[0];
    for (std::size_t k = 1; k < matches.size(); ++k) {
      any_m = c.add_gate(GateType::Or, {any_m, matches[k]},
                         "am" + std::to_string(k));
    }
    NetId no_m = c.add_gate(GateType::Not, {any_m}, "nom");

    // Verification chain: an independent, structurally distinct recompute
    // of each parity from the raw data (reversed chain shape). It is
    // functionally redundant with s_j -- deliberate: real correctors carry
    // redundant checking logic, and the redundancy contributes realistic
    // undetectable faults to the population.
    std::vector<NetId> residual(kCheck);
    for (int j = 0; j < kCheck; ++j) {
      std::vector<NetId> leaves;
      for (int i = data_bits - 1; i >= 0; --i) {
        if ((pattern_for(i, pattern_base) >> j) & 1) {
          leaves.push_back(d[i]);
        }
      }
      leaves.push_back(r[j]);
      residual[j] = xor_tree(c, std::move(leaves), "v" + std::to_string(j),
                             balanced_parity);
    }
    NetId any_res = residual[0];
    for (std::size_t k = 1; k < residual.size(); ++k) {
      any_res = c.add_gate(GateType::Or, {any_res, residual[k]},
                           "ar" + std::to_string(k));
    }
    NetId raw = c.add_gate(GateType::Or, {any_s, any_res}, "rawerr");
    NetId err = c.add_gate(GateType::And, {raw, no_m}, "err");
    c.mark_output(err);
  }

  c.finalize();
  return c;
}

}  // namespace

Circuit make_c499_analog() {
  return make_sec_circuit("c499", /*data_bits=*/32, /*pattern_base=*/9,
                          /*balanced_parity=*/true,
                          /*add_error_output=*/false);
}

Circuit make_c1355_analog() {
  return expand_xor_to_nand(make_c499_analog(), "c1355");
}

Circuit make_c1908_analog() {
  Circuit sec = make_sec_circuit("c1908pre", /*data_bits=*/24,
                                 /*pattern_base=*/11,
                                 /*balanced_parity=*/false,
                                 /*add_error_output=*/true);
  return expand_xor_to_nand(sec, "c1908");
}

}  // namespace dp::netlist
