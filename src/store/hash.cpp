#include "store/hash.hpp"

#include <bit>
#include <cstring>

namespace dp::store {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// splitmix64 finalizer: decorrelates the two FNV lanes before they are
/// printed, so lane-local collision patterns do not line up.
std::uint64_t avalanche(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

void append_hex(std::string& out, std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(digits[(v >> shift) & 0xf]);
  }
}

}  // namespace

KeyBuilder& KeyBuilder::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    a_ = (a_ ^ p[i]) * kFnvPrime;
    // Second lane sees the byte XORed with its position, so transposed
    // chunks hash differently even when lane a collides.
    b_ = (b_ ^ (p[i] + 0x9e) ^ (i & 0xff)) * kFnvPrime;
  }
  return *this;
}

KeyBuilder& KeyBuilder::u64(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  return bytes(buf, sizeof buf);
}

KeyBuilder& KeyBuilder::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return u64(bits);
}

KeyBuilder& KeyBuilder::str(std::string_view s) {
  u64(s.size());
  return bytes(s.data(), s.size());
}

std::string KeyBuilder::hex() const {
  std::string out;
  out.reserve(32);
  append_hex(out, avalanche(a_));
  append_hex(out, avalanche(b_ ^ a_));
  return out;
}

std::string circuit_content_hash(const netlist::Circuit& circuit) {
  KeyBuilder k;
  k.str("dp.circuit.v1");
  k.u64(circuit.num_nets());
  for (netlist::NetId id = 0; id < circuit.num_nets(); ++id) {
    k.u64(static_cast<std::uint64_t>(circuit.type(id)));
    const auto& fanins = circuit.fanins(id);
    k.u64(fanins.size());
    for (netlist::NetId fi : fanins) k.u64(fi);
    k.flag(circuit.is_output(id));
  }
  k.u64(circuit.inputs().size());
  for (netlist::NetId id : circuit.inputs()) k.u64(id);
  k.u64(circuit.outputs().size());
  for (netlist::NetId id : circuit.outputs()) k.u64(id);
  return k.hex();
}

}  // namespace dp::store
