// Stable content hashing for the artifact store.
//
// Cache keys must be identical across runs, machines, and worker counts
// for the same logical inputs, and must change whenever anything that
// affects the cached result changes. KeyBuilder is a streaming 128-bit
// hash (two decorrelated FNV-1a-64 lanes with a splitmix finalizer) with
// typed, length-prefixed feeders so field boundaries can never alias;
// circuit_content_hash() derives the canonical structural digest of a
// netlist (names excluded: two netlists that differ only in net or
// circuit names map to the same key, because no cached result depends
// on a name).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "netlist/circuit.hpp"

namespace dp::store {

/// Streaming 128-bit content hash. Not cryptographic -- it guards a
/// cache against accidental key collisions, not against an adversary.
class KeyBuilder {
 public:
  KeyBuilder& bytes(const void* data, std::size_t n);
  KeyBuilder& u64(std::uint64_t v);
  KeyBuilder& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  /// Hashes the exact bit pattern, so -0.0 != +0.0 and NaNs are stable.
  KeyBuilder& f64(double v);
  /// Length-prefixed, so str("ab").str("c") != str("a").str("bc").
  KeyBuilder& str(std::string_view s);
  KeyBuilder& flag(bool b) { return u64(b ? 1 : 0); }

  /// 32 lowercase hex characters (128 bits). Stable across calls.
  std::string hex() const;

 private:
  std::uint64_t a_ = 0xcbf29ce484222325ull;  ///< FNV-1a offset basis
  std::uint64_t b_ = 0xcbf29ce484222325ull ^ 0x9e3779b97f4a7c15ull;
};

/// Canonical structural digest of a finalized-or-not circuit: per-net
/// gate types, fanin lists, PI/PO order and output flags -- everything
/// the fault sets and the good functions are derived from -- and nothing
/// else (no names, no fanout caches, no topological order, which are all
/// derived data).
std::string circuit_content_hash(const netlist::Circuit& circuit);

}  // namespace dp::store
