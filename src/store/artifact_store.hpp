// Content-addressed on-disk artifact cache.
//
// Artifacts are addressed by (key, kind): the key is a stable content
// hash (store/hash.hpp) of everything the artifact depends on, the kind
// names the artifact family ("profile", "ckpt", "tests", ...). Two
// payload shapes are supported -- JSON documents (obs/json.hpp dialect,
// file `<key>.<kind>.json`) and serialized BDD forests (store/bdd_io.hpp,
// file `<key>.<kind>.bdd`). Every write goes through the temp-file +
// atomic-rename path, so a crashed or killed writer can never leave a
// torn artifact; a reader sees either the previous complete version or
// the new one.
//
// Failure policy: a cache must never turn a recoverable problem into a
// wrong answer or a crash. Load returns nullopt on missing, unreadable,
// or corrupt artifacts (counting them), and store reports failure via
// its return value; only programmer errors throw.
//
// Observability: when constructed with a MetricsRegistry the store
// counts hits/misses/corrupt loads per kind (`store.<kind>.hits`, ...),
// bytes moved (`store.bytes_read`/`store.bytes_written`), evictions
// (`store.evictions`), and load/store wall clock (`store.load_seconds`,
// `store.store_seconds` timers).
//
// Thread safety: one ArtifactStore may be shared by concurrent callers
// (the dpserved worker pool hits one store from every worker). Artifact
// accesses are serialized per entry through a fixed pool of striped
// mutexes -- the stripe is chosen by hashing (key, kind), so operations
// on DIFFERENT artifacts proceed in parallel while a load of an entry
// concurrent with a store of the same entry observes either the complete
// old version or the complete new one, never an in-progress write's
// metrics/span attribution interleaved with its own. prune() runs under
// its own mutex so two size-triggered sweeps cannot double-evict. The
// atomic temp-file + rename write path remains the cross-PROCESS
// guarantee; the stripes add the cross-THREAD ordering a resident daemon
// needs.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace dp::store {

class ArtifactStore {
 public:
  struct Options {
    /// Soft size budget for the whole cache directory; 0 = unbounded.
    /// When exceeded after a write, the oldest artifacts (by mtime) are
    /// evicted until the directory fits again.
    std::uintmax_t max_bytes = 0;
  };

  /// Creates `dir` (and parents) when missing. `metrics` is optional and
  /// not owned; it must outlive the store.
  explicit ArtifactStore(std::string dir);
  ArtifactStore(std::string dir, Options options,
                obs::MetricsRegistry* metrics = nullptr);

  const std::string& dir() const { return dir_; }

  // ---- JSON documents --------------------------------------------------

  /// nullopt on miss or corrupt content (never throws on bad files).
  std::optional<obs::JsonValue> load_document(const std::string& key,
                                              const std::string& kind);
  /// Atomic write; false (with a message on stderr-free `error`) on I/O
  /// failure.
  bool store_document(const std::string& key, const std::string& kind,
                      const obs::JsonValue& doc, std::string* error = nullptr);

  // ---- BDD forests -----------------------------------------------------

  /// Loads a forest into `manager` (see bdd_io.hpp for the contract).
  /// nullopt on miss or corrupt content.
  std::optional<std::vector<bdd::Bdd>> load_forest(const std::string& key,
                                                   const std::string& kind,
                                                   bdd::Manager& manager);
  bool store_forest(const std::string& key, const std::string& kind,
                    bdd::Manager& manager, const std::vector<bdd::Bdd>& roots,
                    std::string* error = nullptr);

  // ---- maintenance -----------------------------------------------------

  /// Deletes the artifact if present (used to retire consumed
  /// checkpoints).
  void remove(const std::string& key, const std::string& kind);

  /// Enforces Options::max_bytes now; returns the number of files
  /// evicted. No-op when the budget is 0 or already met.
  std::size_t prune();

  /// Total bytes currently held (regular files only).
  std::uintmax_t size_bytes() const;

  std::string document_path(const std::string& key,
                            const std::string& kind) const;
  std::string forest_path(const std::string& key,
                          const std::string& kind) const;

 private:
  /// Entry-lock stripe count; a power of two comfortably above the
  /// worker counts the daemon runs with, so same-stripe collisions of
  /// distinct artifacts stay rare.
  static constexpr std::size_t kLockStripes = 16;

  void count(const std::string& name, std::uint64_t n = 1);
  std::optional<std::string> read_file(const std::string& path,
                                       const std::string& kind);
  std::mutex& stripe(const std::string& key, const std::string& kind) const;
  std::size_t prune_locked();

  std::string dir_;
  Options options_;
  obs::MetricsRegistry* metrics_;
  mutable std::array<std::mutex, kLockStripes> stripes_;
  mutable std::mutex prune_mutex_;
};

}  // namespace dp::store
