#include "store/bdd_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "obs/json.hpp"  // atomic_write_file

namespace dp::store {

namespace {

constexpr std::uint32_t kMagic = 0x46424450u;      // "DPBF" little-endian
constexpr std::uint32_t kEndianTag = 0x01020304u;  // rejects foreign endianness
constexpr std::uint32_t kVersion = 1u;
constexpr std::uint32_t kInvalidRoot = 0xffffffffu;

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : std::string_view(bytes)) {
    h = (h ^ c) * 0x100000001b3ull;
  }
  return h;
}

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

/// Bounds-checked read cursor over the loaded byte buffer.
class Cursor {
 public:
  explicit Cursor(const std::string& bytes) : bytes_(bytes) {}

  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  std::size_t pos() const { return pos_; }

 private:
  template <typename T>
  T read() {
    if (bytes_.size() - pos_ < sizeof(T)) {
      throw StoreError("BDD forest file truncated at byte " +
                       std::to_string(pos_));
    }
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }

  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

void save_forest(std::ostream& os, bdd::Manager& manager,
                 const std::vector<bdd::Bdd>& roots) {
  for (const bdd::Bdd& r : roots) {
    if (r.valid() && r.manager() != &manager) {
      throw StoreError("save_forest: root from a different manager");
    }
  }

  // Child-before-parent emission order over the shared DAG (iterative
  // post-order; terminals are implicit ids 0 and 1).
  std::unordered_map<bdd::NodeIndex, std::uint32_t> id;
  std::vector<bdd::NodeIndex> order;
  std::vector<bdd::NodeIndex> stack;
  for (const bdd::Bdd& r : roots) {
    if (r.valid() && !manager.is_terminal(r.index())) stack.push_back(r.index());
  }
  while (!stack.empty()) {
    const bdd::NodeIndex n = stack.back();
    if (id.count(n)) {
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (const bdd::NodeIndex c : {manager.lo(n), manager.hi(n)}) {
      if (!manager.is_terminal(c) && !id.count(c)) {
        stack.push_back(c);
        ready = false;
      }
    }
    if (ready) {
      id.emplace(n, static_cast<std::uint32_t>(2 + order.size()));
      order.push_back(n);
      stack.pop_back();
    }
  }

  auto id_of = [&](bdd::NodeIndex n) -> std::uint32_t {
    return manager.is_terminal(n) ? static_cast<std::uint32_t>(n) : id.at(n);
  };

  std::string buf;
  buf.reserve(64 + 4 * manager.num_vars() + 12 * order.size() +
              4 * roots.size());
  put_u32(buf, kMagic);
  put_u32(buf, kEndianTag);
  put_u32(buf, kVersion);
  put_u64(buf, manager.num_vars());
  for (bdd::Var v : manager.variable_order()) put_u32(buf, v);
  put_u64(buf, order.size());
  put_u64(buf, roots.size());
  for (const bdd::NodeIndex n : order) {
    put_u32(buf, manager.var_of(n));
    put_u32(buf, id_of(manager.lo(n)));
    put_u32(buf, id_of(manager.hi(n)));
  }
  for (const bdd::Bdd& r : roots) {
    put_u32(buf, r.valid() ? id_of(r.index()) : kInvalidRoot);
  }
  put_u64(buf, fnv1a(buf));

  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!os) throw StoreError("save_forest: stream write failed");
}

std::vector<bdd::Bdd> load_forest(std::istream& is, bdd::Manager& manager,
                                  const ForestLoadOptions& options) {
  std::ostringstream raw;
  raw << is.rdbuf();
  const std::string bytes = raw.str();

  if (bytes.size() < 8) throw StoreError("BDD forest file truncated (header)");
  const std::string payload = bytes.substr(0, bytes.size() - 8);
  std::uint64_t stored_sum;
  std::memcpy(&stored_sum, bytes.data() + payload.size(), sizeof stored_sum);
  if (fnv1a(payload) != stored_sum) {
    throw StoreError("BDD forest checksum mismatch (corrupt or truncated)");
  }

  Cursor cur(payload);
  if (cur.u32() != kMagic) throw StoreError("not a BDD forest file (bad magic)");
  if (cur.u32() != kEndianTag) {
    throw StoreError("BDD forest written with a different byte order");
  }
  const std::uint32_t version = cur.u32();
  if (version != kVersion) {
    throw StoreError("unsupported BDD forest format version " +
                     std::to_string(version));
  }

  const std::uint64_t num_vars = cur.u64();
  std::vector<bdd::Var> saved_order(num_vars);
  std::vector<std::size_t> saved_level(num_vars, num_vars);
  for (std::uint64_t level = 0; level < num_vars; ++level) {
    const bdd::Var v = cur.u32();
    if (v >= num_vars || saved_level[v] != num_vars) {
      throw StoreError("BDD forest variable order is not a permutation");
    }
    saved_order[level] = v;
    saved_level[v] = level;
  }
  const std::uint64_t node_count = cur.u64();
  const std::uint64_t root_count = cur.u64();

  while (manager.num_vars() < num_vars) manager.new_var();
  if (options.restore_variable_order && num_vars > 0) {
    // The manager may hold more variables than the forest; only impose
    // the saved relative order when the counts match exactly.
    if (manager.num_vars() != num_vars) {
      throw StoreError(
          "restore_variable_order requires a manager with exactly the "
          "forest's variable count");
    }
    apply_variable_order(manager, saved_order);
  }

  // built[id] = reconstructed handle; ids 0/1 are the terminals. ITE
  // through the unique table re-canonicalizes every node under the
  // TARGET manager's order, so functions survive order changes.
  std::vector<bdd::Bdd> built;
  built.reserve(2 + node_count);
  built.push_back(manager.zero());
  built.push_back(manager.one());
  std::vector<bdd::Var> var_of(2 + node_count, bdd::kTerminalVar);
  for (std::uint64_t i = 0; i < node_count; ++i) {
    const std::uint32_t self = static_cast<std::uint32_t>(2 + i);
    const bdd::Var var = cur.u32();
    const std::uint32_t lo = cur.u32();
    const std::uint32_t hi = cur.u32();
    if (var >= num_vars) {
      throw StoreError("BDD forest node " + std::to_string(self) +
                       " has out-of-range variable " + std::to_string(var));
    }
    if (lo >= self || hi >= self) {
      throw StoreError("BDD forest node " + std::to_string(self) +
                       " has a forward or self reference");
    }
    if (lo == hi) {
      throw StoreError("BDD forest node " + std::to_string(self) +
                       " is unreduced (lo == hi)");
    }
    for (const std::uint32_t child : {lo, hi}) {
      if (var_of[child] != bdd::kTerminalVar &&
          saved_level[var_of[child]] <= saved_level[var]) {
        throw StoreError("BDD forest node " + std::to_string(self) +
                         " violates the recorded variable order");
      }
    }
    var_of[self] = var;
    built.push_back(manager.var(var).ite(built[hi], built[lo]));
  }

  std::vector<bdd::Bdd> roots;
  roots.reserve(root_count);
  for (std::uint64_t i = 0; i < root_count; ++i) {
    const std::uint32_t r = cur.u32();
    if (r == kInvalidRoot) {
      roots.emplace_back();
    } else if (r < built.size()) {
      roots.push_back(built[r]);
    } else {
      throw StoreError("BDD forest root " + std::to_string(i) +
                       " references a missing node");
    }
  }
  if (cur.pos() != payload.size()) {
    throw StoreError("BDD forest has trailing bytes after the root table");
  }
  return roots;
}

void save_forest_file(const std::string& path, bdd::Manager& manager,
                      const std::vector<bdd::Bdd>& roots) {
  std::ostringstream os;
  save_forest(os, manager, roots);
  std::string error;
  if (!obs::atomic_write_file(path, os.str(), &error)) {
    throw StoreError("save_forest_file: " + error);
  }
}

std::vector<bdd::Bdd> load_forest_file(const std::string& path,
                                       bdd::Manager& manager,
                                       const ForestLoadOptions& options) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw StoreError("cannot open '" + path + "' for reading");
  return load_forest(is, manager, options);
}

namespace {

bdd::Bdd transfer_rec(bdd::Manager& dst, bdd::Manager& src, bdd::NodeIndex n,
                      std::unordered_map<bdd::NodeIndex, bdd::Bdd>& memo) {
  if (n == bdd::kFalseNode) return dst.zero();
  if (n == bdd::kTrueNode) return dst.one();
  const auto it = memo.find(n);
  if (it != memo.end()) return it->second;
  const bdd::Bdd lo = transfer_rec(dst, src, src.lo(n), memo);
  const bdd::Bdd hi = transfer_rec(dst, src, src.hi(n), memo);
  bdd::Bdd r = dst.var(src.var_of(n)).ite(hi, lo);
  memo.emplace(n, r);
  return r;
}

}  // namespace

bdd::Bdd transfer(bdd::Manager& dst, const bdd::Bdd& src) {
  if (!src.valid()) return {};
  bdd::Manager& sm = *src.manager();
  if (&sm == &dst) return src;
  while (dst.num_vars() < sm.num_vars()) dst.new_var();
  std::unordered_map<bdd::NodeIndex, bdd::Bdd> memo;
  return transfer_rec(dst, sm, src.index(), memo);
}

void apply_variable_order(bdd::Manager& manager,
                          const std::vector<bdd::Var>& order) {
  const std::size_t n = manager.num_vars();
  if (order.size() != n) {
    throw StoreError("apply_variable_order: order size mismatch");
  }
  std::vector<bool> seen(n, false);
  for (bdd::Var v : order) {
    if (v >= n || seen[v]) {
      throw StoreError("apply_variable_order: order is not a permutation");
    }
    seen[v] = true;
  }
  // Selection sort by adjacent swaps: settle each level left to right.
  for (std::size_t level = 0; level < n; ++level) {
    std::size_t from = manager.level_of(order[level]);
    for (; from > level; --from) {
      manager.swap_adjacent_levels(from - 1);
    }
  }
}

}  // namespace dp::store
