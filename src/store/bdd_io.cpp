#include "store/bdd_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "bdd/frozen_forest.hpp"
#include "obs/json.hpp"  // atomic_write_file

namespace dp::store {

namespace {

constexpr std::uint32_t kMagic = 0x46424450u;      // "DPBF" little-endian
constexpr std::uint32_t kEndianTag = 0x01020304u;  // rejects foreign endianness
// v2: complement-edge refs ((id << 1) | complement, single TRUE terminal
// at id 0). v1 files (two-terminal ids) are rejected as unsupported.
constexpr std::uint32_t kVersion = 2u;
constexpr std::uint32_t kInvalidRoot = 0xffffffffu;

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : std::string_view(bytes)) {
    h = (h ^ c) * 0x100000001b3ull;
  }
  return h;
}

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

/// Bounds-checked read cursor over the loaded byte buffer.
class Cursor {
 public:
  explicit Cursor(const std::string& bytes) : bytes_(bytes) {}

  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  std::size_t pos() const { return pos_; }

 private:
  template <typename T>
  T read() {
    if (bytes_.size() - pos_ < sizeof(T)) {
      throw StoreError("BDD forest file truncated at byte " +
                       std::to_string(pos_));
    }
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }

  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

void save_forest(std::ostream& os, bdd::Manager& manager,
                 const std::vector<bdd::Bdd>& roots) {
  for (const bdd::Bdd& r : roots) {
    if (r.valid() && r.manager() != &manager) {
      throw StoreError("save_forest: root from a different manager");
    }
  }

  // Child-before-parent emission order over the shared DAG (iterative
  // post-order). The walk is over *regular* edges -- both polarities of a
  // node serialize once -- and refs re-attach the complement bit, so the
  // file mirrors the in-memory sharing exactly (terminal refs 0/1 equal
  // the in-memory kTrueNode/kFalseNode edges).
  std::unordered_map<bdd::NodeIndex, std::uint32_t> id;  // regular edge -> id
  std::vector<bdd::NodeIndex> order;
  std::vector<bdd::NodeIndex> stack;
  for (const bdd::Bdd& r : roots) {
    if (r.valid() && !manager.is_terminal(r.index())) {
      stack.push_back(bdd::edge_regular(r.index()));
    }
  }
  while (!stack.empty()) {
    const bdd::NodeIndex n = stack.back();
    if (id.count(n)) {
      stack.pop_back();
      continue;
    }
    bool ready = true;
    for (const bdd::NodeIndex c : {manager.lo(n), manager.hi(n)}) {
      const bdd::NodeIndex cr = bdd::edge_regular(c);
      if (!manager.is_terminal(cr) && !id.count(cr)) {
        stack.push_back(cr);
        ready = false;
      }
    }
    if (ready) {
      id.emplace(n, static_cast<std::uint32_t>(1 + order.size()));
      order.push_back(n);
      stack.pop_back();
    }
  }

  auto ref_of = [&](bdd::NodeIndex e) -> std::uint32_t {
    if (manager.is_terminal(e)) return static_cast<std::uint32_t>(e);
    return (id.at(bdd::edge_regular(e)) << 1) | bdd::edge_complemented(e);
  };

  std::string buf;
  buf.reserve(64 + 4 * manager.num_vars() + 12 * order.size() +
              4 * roots.size());
  put_u32(buf, kMagic);
  put_u32(buf, kEndianTag);
  put_u32(buf, kVersion);
  put_u64(buf, manager.num_vars());
  for (bdd::Var v : manager.variable_order()) put_u32(buf, v);
  put_u64(buf, order.size());
  put_u64(buf, roots.size());
  for (const bdd::NodeIndex n : order) {
    // n is regular, so lo(n)/hi(n) are the stored child edges and the lo
    // ref inherits the canonical regular-else form.
    put_u32(buf, manager.var_of(n));
    put_u32(buf, ref_of(manager.lo(n)));
    put_u32(buf, ref_of(manager.hi(n)));
  }
  for (const bdd::Bdd& r : roots) {
    put_u32(buf, r.valid() ? ref_of(r.index()) : kInvalidRoot);
  }
  put_u64(buf, fnv1a(buf));

  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!os) throw StoreError("save_forest: stream write failed");
}

void save_forest(std::ostream& os, const bdd::FrozenForest& forest,
                 const std::vector<bdd::NodeIndex>& roots) {
  for (const bdd::NodeIndex r : roots) {
    if (r != bdd::kInvalidNode && bdd::edge_slot(r) >= forest.size()) {
      throw StoreError("save_forest: root outside the frozen forest");
    }
  }

  // Same child-before-parent emission as the live-manager overload, with
  // reads going through the packed immutable node array (slot 0 is the
  // single TRUE terminal, so terminal edges already ARE file refs).
  std::unordered_map<bdd::NodeIndex, std::uint32_t> id;  // slot -> id
  std::vector<bdd::NodeIndex> order;
  std::vector<bdd::NodeIndex> stack;
  for (const bdd::NodeIndex r : roots) {
    if (r != bdd::kInvalidNode && bdd::edge_slot(r) != 0) {
      stack.push_back(bdd::edge_slot(r));
    }
  }
  while (!stack.empty()) {
    const bdd::NodeIndex s = stack.back();
    if (id.count(s)) {
      stack.pop_back();
      continue;
    }
    const bdd::Node& n = forest.node(s);
    bool ready = true;
    for (const bdd::NodeIndex c : {n.lo, n.hi}) {
      const bdd::NodeIndex cs = bdd::edge_slot(c);
      if (cs != 0 && !id.count(cs)) {
        stack.push_back(cs);
        ready = false;
      }
    }
    if (ready) {
      id.emplace(s, static_cast<std::uint32_t>(1 + order.size()));
      order.push_back(s);
      stack.pop_back();
    }
  }

  auto ref_of = [&](bdd::NodeIndex e) -> std::uint32_t {
    const bdd::NodeIndex s = bdd::edge_slot(e);
    if (s == 0) return static_cast<std::uint32_t>(e);  // TRUE/FALSE edge
    return (id.at(s) << 1) | bdd::edge_complemented(e);
  };

  const std::vector<bdd::Var>& var_order = forest.variable_order();
  std::string buf;
  buf.reserve(64 + 4 * var_order.size() + 12 * order.size() +
              4 * roots.size());
  put_u32(buf, kMagic);
  put_u32(buf, kEndianTag);
  put_u32(buf, kVersion);
  put_u64(buf, forest.num_vars());
  for (bdd::Var v : var_order) put_u32(buf, v);
  put_u64(buf, order.size());
  put_u64(buf, roots.size());
  for (const bdd::NodeIndex s : order) {
    const bdd::Node& n = forest.node(s);
    put_u32(buf, n.var);
    put_u32(buf, ref_of(n.lo));
    put_u32(buf, ref_of(n.hi));
  }
  for (const bdd::NodeIndex r : roots) {
    put_u32(buf, r == bdd::kInvalidNode ? kInvalidRoot : ref_of(r));
  }
  put_u64(buf, fnv1a(buf));

  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!os) throw StoreError("save_forest: stream write failed");
}

std::vector<bdd::Bdd> load_forest(std::istream& is, bdd::Manager& manager,
                                  const ForestLoadOptions& options) {
  std::ostringstream raw;
  raw << is.rdbuf();
  const std::string bytes = raw.str();

  if (bytes.size() < 8) throw StoreError("BDD forest file truncated (header)");
  const std::string payload = bytes.substr(0, bytes.size() - 8);
  std::uint64_t stored_sum;
  std::memcpy(&stored_sum, bytes.data() + payload.size(), sizeof stored_sum);
  if (fnv1a(payload) != stored_sum) {
    throw StoreError("BDD forest checksum mismatch (corrupt or truncated)");
  }

  Cursor cur(payload);
  if (cur.u32() != kMagic) throw StoreError("not a BDD forest file (bad magic)");
  if (cur.u32() != kEndianTag) {
    throw StoreError("BDD forest written with a different byte order");
  }
  const std::uint32_t version = cur.u32();
  if (version != kVersion) {
    throw StoreError("unsupported BDD forest format version " +
                     std::to_string(version));
  }

  const std::uint64_t num_vars = cur.u64();
  std::vector<bdd::Var> saved_order(num_vars);
  std::vector<std::size_t> saved_level(num_vars, num_vars);
  for (std::uint64_t level = 0; level < num_vars; ++level) {
    const bdd::Var v = cur.u32();
    if (v >= num_vars || saved_level[v] != num_vars) {
      throw StoreError("BDD forest variable order is not a permutation");
    }
    saved_order[level] = v;
    saved_level[v] = level;
  }
  const std::uint64_t node_count = cur.u64();
  const std::uint64_t root_count = cur.u64();

  while (manager.num_vars() < num_vars) manager.new_var();
  if (options.restore_variable_order && num_vars > 0) {
    // The manager may hold more variables than the forest; only impose
    // the saved relative order when the counts match exactly.
    if (manager.num_vars() != num_vars) {
      throw StoreError(
          "restore_variable_order requires a manager with exactly the "
          "forest's variable count");
    }
    apply_variable_order(manager, saved_order);
  }

  // built[id] = reconstructed handle for the *regular* polarity; id 0 is
  // the TRUE terminal and a ref's complement bit negates on use (O(1)).
  // ITE through the unique table re-canonicalizes every node under the
  // TARGET manager's order, so functions survive order changes.
  std::vector<bdd::Bdd> built;
  built.reserve(1 + node_count);
  built.push_back(manager.one());
  std::vector<bdd::Var> var_of(1 + node_count, bdd::kTerminalVar);
  auto deref = [&](std::uint32_t ref) -> bdd::Bdd {
    const bdd::Bdd& b = built[ref >> 1];
    return (ref & 1u) ? !b : b;
  };
  for (std::uint64_t i = 0; i < node_count; ++i) {
    const std::uint32_t self = static_cast<std::uint32_t>(1 + i);
    const bdd::Var var = cur.u32();
    const std::uint32_t lo = cur.u32();
    const std::uint32_t hi = cur.u32();
    if (var >= num_vars) {
      throw StoreError("BDD forest node " + std::to_string(self) +
                       " has out-of-range variable " + std::to_string(var));
    }
    if ((lo >> 1) >= self || (hi >> 1) >= self) {
      throw StoreError("BDD forest node " + std::to_string(self) +
                       " has a forward or self reference");
    }
    if ((lo & 1u) != 0) {
      throw StoreError("BDD forest node " + std::to_string(self) +
                       " has a complemented else ref (non-canonical)");
    }
    if (lo == hi) {
      throw StoreError("BDD forest node " + std::to_string(self) +
                       " is unreduced (lo == hi)");
    }
    for (const std::uint32_t child : {lo >> 1, hi >> 1}) {
      if (var_of[child] != bdd::kTerminalVar &&
          saved_level[var_of[child]] <= saved_level[var]) {
        throw StoreError("BDD forest node " + std::to_string(self) +
                         " violates the recorded variable order");
      }
    }
    var_of[self] = var;
    built.push_back(manager.var(var).ite(deref(hi), deref(lo)));
  }

  std::vector<bdd::Bdd> roots;
  roots.reserve(root_count);
  for (std::uint64_t i = 0; i < root_count; ++i) {
    const std::uint32_t r = cur.u32();
    if (r == kInvalidRoot) {
      roots.emplace_back();
    } else if ((r >> 1) < built.size()) {
      roots.push_back(deref(r));
    } else {
      throw StoreError("BDD forest root " + std::to_string(i) +
                       " references a missing node");
    }
  }
  if (cur.pos() != payload.size()) {
    throw StoreError("BDD forest has trailing bytes after the root table");
  }
  return roots;
}

void save_forest_file(const std::string& path, bdd::Manager& manager,
                      const std::vector<bdd::Bdd>& roots) {
  std::ostringstream os;
  save_forest(os, manager, roots);
  std::string error;
  if (!obs::atomic_write_file(path, os.str(), &error)) {
    throw StoreError("save_forest_file: " + error);
  }
}

void save_forest_file(const std::string& path,
                      const bdd::FrozenForest& forest,
                      const std::vector<bdd::NodeIndex>& roots) {
  std::ostringstream os;
  save_forest(os, forest, roots);
  std::string error;
  if (!obs::atomic_write_file(path, os.str(), &error)) {
    throw StoreError("save_forest_file: " + error);
  }
}

std::vector<bdd::Bdd> load_forest_file(const std::string& path,
                                       bdd::Manager& manager,
                                       const ForestLoadOptions& options) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw StoreError("cannot open '" + path + "' for reading");
  return load_forest(is, manager, options);
}

namespace {

bdd::Bdd transfer_rec(bdd::Manager& dst, bdd::Manager& src, bdd::NodeIndex n,
                      std::unordered_map<bdd::NodeIndex, bdd::Bdd>& memo) {
  // Memoize on the regular edge and re-apply the polarity on exit, so
  // both polarities of a shared node translate through one entry.
  const bool c = bdd::edge_complemented(n) != 0;
  const bdd::NodeIndex nr = bdd::edge_regular(n);
  if (nr == bdd::kTrueNode) return c ? dst.zero() : dst.one();
  const auto it = memo.find(nr);
  if (it != memo.end()) return c ? !it->second : it->second;
  const bdd::Bdd lo = transfer_rec(dst, src, src.lo(nr), memo);
  const bdd::Bdd hi = transfer_rec(dst, src, src.hi(nr), memo);
  bdd::Bdd r = dst.var(src.var_of(nr)).ite(hi, lo);
  memo.emplace(nr, r);
  return c ? !r : r;
}

}  // namespace

bdd::Bdd transfer(bdd::Manager& dst, const bdd::Bdd& src) {
  if (!src.valid()) return {};
  bdd::Manager& sm = *src.manager();
  if (&sm == &dst) return src;
  while (dst.num_vars() < sm.num_vars()) dst.new_var();
  std::unordered_map<bdd::NodeIndex, bdd::Bdd> memo;
  return transfer_rec(dst, sm, src.index(), memo);
}

void apply_variable_order(bdd::Manager& manager,
                          const std::vector<bdd::Var>& order) {
  const std::size_t n = manager.num_vars();
  if (order.size() != n) {
    throw StoreError("apply_variable_order: order size mismatch");
  }
  std::vector<bool> seen(n, false);
  for (bdd::Var v : order) {
    if (v >= n || seen[v]) {
      throw StoreError("apply_variable_order: order is not a permutation");
    }
    seen[v] = true;
  }
  // Selection sort by adjacent swaps: settle each level left to right.
  for (std::size_t level = 0; level < n; ++level) {
    std::size_t from = manager.level_of(order[level]);
    for (; from > level; --from) {
      manager.swap_adjacent_levels(from - 1);
    }
  }
}

}  // namespace dp::store
