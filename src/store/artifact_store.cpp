#include "store/artifact_store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "store/bdd_io.hpp"

namespace dp::store {

namespace fs = std::filesystem;

ArtifactStore::ArtifactStore(std::string dir)
    : ArtifactStore(std::move(dir), Options{}, nullptr) {}

ArtifactStore::ArtifactStore(std::string dir, Options options,
                             obs::MetricsRegistry* metrics)
    : dir_(std::move(dir)), options_(options), metrics_(metrics) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  // A failed mkdir surfaces naturally as load misses / store failures;
  // the store itself stays usable (a cache is always optional).
}

std::string ArtifactStore::document_path(const std::string& key,
                                         const std::string& kind) const {
  return dir_ + "/" + key + "." + kind + ".json";
}

std::string ArtifactStore::forest_path(const std::string& key,
                                       const std::string& kind) const {
  return dir_ + "/" + key + "." + kind + ".bdd";
}

void ArtifactStore::count(const std::string& name, std::uint64_t n) {
  if (metrics_) metrics_->counter(name).add(n);
}

std::mutex& ArtifactStore::stripe(const std::string& key,
                                  const std::string& kind) const {
  // '\0' keeps ("ab","c") and ("a","bc") on independent stripes.
  const std::size_t h = std::hash<std::string>{}(key + '\0' + kind);
  return stripes_[h % kLockStripes];
}

std::optional<std::string> ArtifactStore::read_file(const std::string& path,
                                                    const std::string& kind) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    count("store." + kind + ".misses");
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  if (!is && !is.eof()) {
    count("store." + kind + ".corrupt");
    return std::nullopt;
  }
  std::string bytes = buf.str();
  count("store.bytes_read", bytes.size());
  return bytes;
}

std::optional<obs::JsonValue> ArtifactStore::load_document(
    const std::string& key, const std::string& kind) {
  obs::ScopedSpan span(obs::SpanCollector::current(), "store.load");
  span.attr("kind", kind);
  span.attr("key", key);
  std::lock_guard<std::mutex> entry_lock(stripe(key, kind));
  const auto timer =
      metrics_ ? std::optional<obs::ScopedTimer>(
                     metrics_->scoped_timer("store.load_seconds"))
               : std::nullopt;
  const auto bytes = read_file(document_path(key, kind), kind);
  if (!bytes) {
    span.attr("hit", 0);
    return std::nullopt;
  }
  try {
    obs::JsonValue doc = obs::JsonValue::parse(*bytes);
    count("store." + kind + ".hits");
    span.attr("hit", 1);
    span.attr("bytes", bytes->size());
    return doc;
  } catch (const obs::JsonError&) {
    count("store." + kind + ".corrupt");
    span.attr("hit", 0);
    return std::nullopt;
  }
}

bool ArtifactStore::store_document(const std::string& key,
                                   const std::string& kind,
                                   const obs::JsonValue& doc,
                                   std::string* error) {
  obs::ScopedSpan span(obs::SpanCollector::current(), "store.store");
  span.attr("kind", kind);
  span.attr("key", key);
  std::lock_guard<std::mutex> entry_lock(stripe(key, kind));
  const auto timer =
      metrics_ ? std::optional<obs::ScopedTimer>(
                     metrics_->scoped_timer("store.store_seconds"))
               : std::nullopt;
  std::ostringstream os;
  doc.write(os, 2);
  os << '\n';
  const std::string bytes = os.str();
  span.attr("bytes", bytes.size());
  if (!obs::atomic_write_file(document_path(key, kind), bytes, error)) {
    return false;
  }
  count("store.bytes_written", bytes.size());
  count("store." + kind + ".stores");
  prune();
  return true;
}

std::optional<std::vector<bdd::Bdd>> ArtifactStore::load_forest(
    const std::string& key, const std::string& kind, bdd::Manager& manager) {
  obs::ScopedSpan span(obs::SpanCollector::current(), "store.load");
  span.attr("kind", kind);
  span.attr("key", key);
  std::lock_guard<std::mutex> entry_lock(stripe(key, kind));
  const auto timer =
      metrics_ ? std::optional<obs::ScopedTimer>(
                     metrics_->scoped_timer("store.load_seconds"))
               : std::nullopt;
  const std::string path = forest_path(key, kind);
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    count("store." + kind + ".misses");
    span.attr("hit", 0);
    return std::nullopt;
  }
  try {
    std::vector<bdd::Bdd> roots = load_forest_file(path, manager);
    std::error_code ec;
    const auto sz = fs::file_size(path, ec);
    if (!ec) {
      count("store.bytes_read", sz);
      span.attr("bytes", static_cast<std::uint64_t>(sz));
    }
    count("store." + kind + ".hits");
    span.attr("hit", 1);
    return roots;
  } catch (const StoreError&) {
    count("store." + kind + ".corrupt");
    span.attr("hit", 0);
    return std::nullopt;
  }
}

bool ArtifactStore::store_forest(const std::string& key,
                                 const std::string& kind,
                                 bdd::Manager& manager,
                                 const std::vector<bdd::Bdd>& roots,
                                 std::string* error) {
  obs::ScopedSpan span(obs::SpanCollector::current(), "store.store");
  span.attr("kind", kind);
  span.attr("key", key);
  std::lock_guard<std::mutex> entry_lock(stripe(key, kind));
  const auto timer =
      metrics_ ? std::optional<obs::ScopedTimer>(
                     metrics_->scoped_timer("store.store_seconds"))
               : std::nullopt;
  try {
    const std::string path = forest_path(key, kind);
    save_forest_file(path, manager, roots);
    std::error_code ec;
    const auto sz = fs::file_size(path, ec);
    if (!ec) {
      count("store.bytes_written", sz);
      span.attr("bytes", static_cast<std::uint64_t>(sz));
    }
    count("store." + kind + ".stores");
    prune();
    return true;
  } catch (const StoreError& e) {
    if (error) *error = e.what();
    return false;
  }
}

void ArtifactStore::remove(const std::string& key, const std::string& kind) {
  std::lock_guard<std::mutex> entry_lock(stripe(key, kind));
  std::error_code ec;
  fs::remove(document_path(key, kind), ec);
  fs::remove(forest_path(key, kind), ec);
}

std::uintmax_t ArtifactStore::size_bytes() const {
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file(ec)) total += entry.file_size(ec);
  }
  return total;
}

std::size_t ArtifactStore::prune() {
  if (options_.max_bytes == 0) return 0;
  // One sweep at a time: concurrent size-triggered prunes would each
  // compute a stale total and together evict far below the budget.
  std::lock_guard<std::mutex> prune_lock(prune_mutex_);
  return prune_locked();
}

std::size_t ArtifactStore::prune_locked() {
  struct File {
    fs::path path;
    std::uintmax_t size;
    fs::file_time_type mtime;
  };
  std::vector<File> files;
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    File f{entry.path(), entry.file_size(ec), entry.last_write_time(ec)};
    total += f.size;
    files.push_back(std::move(f));
  }
  if (total <= options_.max_bytes) return 0;

  std::sort(files.begin(), files.end(),
            [](const File& a, const File& b) { return a.mtime < b.mtime; });
  std::size_t evicted = 0;
  for (const File& f : files) {
    if (total <= options_.max_bytes) break;
    if (fs::remove(f.path, ec)) {
      total -= f.size;
      ++evicted;
    }
  }
  count("store.evictions", evicted);
  return evicted;
}

}  // namespace dp::store
