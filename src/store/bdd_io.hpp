// Canonical binary serialization of BDD forests.
//
// A forest is any set of root handles from ONE manager; the shared DAG
// under all roots is written once, in child-before-parent order, with a
// header recording the format version and the manager's variable order
// at save time. Loading reconstructs every node with ITE in the target
// manager, so a forest round-trips into a manager with a DIFFERENT
// variable order (e.g. after sift_reorder on either side) and still
// denotes the same functions -- the on-disk order is a witness for
// validation, not a constraint on the reader.
//
// Layout (host-endian; an endianness tag in the header rejects foreign
// files), all integers fixed-width:
//
//   u32 magic 'DPBF'   u32 endian tag 0x01020304   u32 version (=2)
//   u64 num_vars       num_vars x u32 variable order (level -> var)
//   u64 node_count     u64 root_count
//   node_count x { u32 var, u32 lo, u32 hi }   -- lo/hi/root values are
//       *refs* mirroring the in-memory complement-edge encoding:
//       ref = (id << 1) | complement, where id 0 is the single TRUE
//       terminal (so ref 0 = TRUE, ref 1 = FALSE) and ids 1.. are nodes
//       in file order; children always precede parents, and the lo ref
//       of every node is regular (complement bit clear), mirroring the
//       canonical regular-else invariant
//   root_count x u32 refs  -- 0xFFFFFFFF encodes an empty/invalid handle
//   u64 checksum       -- FNV-1a-64 over every preceding byte
//
// Version 1 (two-terminal, polarity-free ids) is NOT readable by this
// loader; it throws the same "unsupported version" StoreError any foreign
// format hits, which the ArtifactStore layer degrades to a counted
// corrupt-miss and a recompute -- stale caches self-heal.
//
// Loading is strict: truncation, checksum mismatch, unknown version,
// non-permutation orders, forward/self references, unreduced nodes
// (lo == hi), complemented else refs, and level-order violations all
// throw StoreError rather than yielding a silently wrong BDD.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"

namespace dp::bdd {
class FrozenForest;
}

namespace dp::store {

/// Thrown on malformed/corrupt artifacts and on save-side I/O failures.
class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ForestLoadOptions {
  /// Re-impose the saved variable order on the target manager (adjacent
  /// swaps) before reconstruction, making the load linear in the node
  /// count. Off by default: the common case is loading into a fresh
  /// manager whose identity order is what downstream code expects.
  bool restore_variable_order = false;
};

/// Serializes `roots` (handles into `manager`; invalid handles allowed
/// and round-trip as invalid). Throws StoreError on stream failure or on
/// a root from a different manager.
void save_forest(std::ostream& os, bdd::Manager& manager,
                 const std::vector<bdd::Bdd>& roots);

/// Reconstructs a forest saved by save_forest. Missing variables are
/// created in `manager` (so a fresh Manager(0) works); a manager that
/// already holds functions is fine too -- the loaded nodes are built
/// through the unique table and share structure with existing BDDs.
std::vector<bdd::Bdd> load_forest(std::istream& is, bdd::Manager& manager,
                                  const ForestLoadOptions& options = {});

/// Serializes a frozen forest (bdd::Manager::freeze) to the same v2
/// format. `roots` are edges in FOREST numbering -- exactly what
/// freeze() / SharedGoodFunctions::roots() hand out; kInvalidNode
/// round-trips as an invalid handle. The file is indistinguishable from
/// a save of the live manager the forest was frozen from, so load_forest
/// reconstructs it into any manager.
void save_forest(std::ostream& os, const bdd::FrozenForest& forest,
                 const std::vector<bdd::NodeIndex>& roots);

/// save_forest to `path` via the crash-safe temp-file + atomic-rename
/// write, so a reader never observes a partially written forest.
void save_forest_file(const std::string& path, bdd::Manager& manager,
                      const std::vector<bdd::Bdd>& roots);

/// Frozen-forest counterpart of save_forest_file.
void save_forest_file(const std::string& path,
                      const bdd::FrozenForest& forest,
                      const std::vector<bdd::NodeIndex>& roots);

/// Throws StoreError when the file is absent, truncated, or corrupt.
std::vector<bdd::Bdd> load_forest_file(const std::string& path,
                                       bdd::Manager& manager,
                                       const ForestLoadOptions& options = {});

/// Copies one function into another manager (memoized over the shared
/// DAG), translating across different variable orders. Invalid handles
/// copy to invalid handles. The managers must agree on what a variable
/// id MEANS; missing variables are created in `dst`.
bdd::Bdd transfer(bdd::Manager& dst, const bdd::Bdd& src);

/// Rearranges `manager` so its level order equals `order` (order[level]
/// = variable id, a permutation of all ids) using adjacent swaps. All
/// live handles remain valid.
void apply_variable_order(bdd::Manager& manager,
                          const std::vector<bdd::Var>& order);

}  // namespace dp::store
