// Request execution for dpserved: maps one parsed protocol request to
// the in-process analysis engines and keeps the expensive state resident
// between requests.
//
// Resident state and what "warm" means
// ------------------------------------
// Four layers stay hot across requests, which is the entire point of a
// daemon over a CLI-per-request workflow:
//   1. Circuits -- parsed netlists (built-in benchmarks or inline .bench
//      text) are constructed once and shared by reference afterwards.
//   2. Frozen forests -- one immutable good-function universe per
//      resident circuit (core::SharedGoodFunctions), built on first
//      analyze and adopted read-only by every subsequent request's
//      engine workers, concurrent ones included: an analyze that misses
//      the profile cache still skips the entire good-function build.
//      Held by shared_ptr, so an evict during an in-flight request only
//      unpins the forest; the request keeps its reference until done.
//   3. Profile cache -- a bounded in-memory LRU of fully serialized
//      analyze responses keyed exactly like the artifact store
//      (profile_cache_key + model-specific extras). A hit skips BDD
//      construction and DP entirely and responds in microseconds; the
//      response's "cached" flag is what dpload uses to split warm from
//      cold latencies.
//   4. Artifact store (optional) -- when a cache directory is attached,
//      sweeps run with persistence enabled, so profiles survive restarts
//      and interrupted sweeps resume from checkpoints. The store is
//      lock-striped (see store/artifact_store.hpp), so concurrent
//      workers use it without external locking.
//
// Identity contract: a served "analyze" response's profile document is
// byte-identical to serializing the corresponding in-process
// analyze_stuck_at / analyze_bridging / analyze_hybrid result, for any
// worker count -- sweeps are jobs-invariant and the serializers emit
// exact round-trip doubles. tests/serve_test.cpp pins this.
//
// handle() never throws: engine exceptions become {"ok":false, code
// "internal"}, option mistakes become "bad_request". Thread safety:
// handle() may be called from any number of worker threads concurrently.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "dp/good_functions.hpp"
#include "netlist/circuit.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "store/artifact_store.hpp"

namespace dp::serve {

struct ServiceOptions {
  /// Default engine worker count for requests that do not send
  /// options.jobs (fault-partition sharding inside one request).
  std::size_t jobs = 1;
  /// Non-empty: open an ArtifactStore here and persist sweeps.
  std::string cache_dir;
  /// In-memory LRU capacity, in cached analyze responses.
  std::size_t profile_cache_entries = 64;
};

class Service {
 public:
  Service(const ServiceOptions& options, obs::MetricsRegistry* metrics);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Executes one request object and returns the response object.
  /// Request types: analyze, ndetect, grade, hash, evict, metrics, sleep,
  /// ping. ("shutdown" is intercepted by the Server before reaching here.)
  obs::JsonValue handle(const obs::JsonValue& request) noexcept;

  /// Current in-memory profile-cache entry count (tests).
  std::size_t profile_cache_size() const;

  /// Current resident frozen-forest count (tests).
  std::size_t resident_forest_count() const;

 private:
  struct CacheEntry;

  struct ForestEntry {
    std::string circuit_name;  ///< for name-scoped evicts
    std::shared_ptr<const core::SharedGoodFunctions> forest;
  };

  std::shared_ptr<const netlist::Circuit> circuit_for(
      const obs::JsonValue& request, std::string* key_out = nullptr);

  /// Returns the resident frozen good-function forest for `key`, building
  /// it on first use. Serialized per service (one build at a time); every
  /// later request for the same circuit adopts the same immutable forest.
  std::shared_ptr<const core::SharedGoodFunctions> forest_for(
      const std::string& key, const netlist::Circuit& circuit);

  obs::JsonValue handle_analyze(long long id, const obs::JsonValue& request);
  obs::JsonValue handle_ndetect(long long id, const obs::JsonValue& request);
  obs::JsonValue handle_grade(long long id, const obs::JsonValue& request);
  obs::JsonValue handle_hash(long long id, const obs::JsonValue& request);
  obs::JsonValue handle_evict(long long id, const obs::JsonValue& request);
  obs::JsonValue handle_metrics(long long id);
  obs::JsonValue handle_sleep(long long id, const obs::JsonValue& request);

  /// False on miss; on hit copies the payload out under the lock and
  /// moves the entry to the LRU head.
  bool cache_lookup(const std::string& key, obs::JsonValue* out);
  void cache_insert(const std::string& key, const std::string& circuit,
                    obs::JsonValue payload);

  ServiceOptions options_;
  obs::MetricsRegistry* metrics_;
  std::unique_ptr<store::ArtifactStore> store_;

  mutable std::mutex circuits_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const netlist::Circuit>>
      circuits_;

  mutable std::mutex forests_mutex_;
  std::unordered_map<std::string, ForestEntry> forests_;

  mutable std::mutex cache_mutex_;
  std::list<CacheEntry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache_;
};

}  // namespace dp::serve
