#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/span.hpp"

namespace dp::serve {

using Clock = std::chrono::steady_clock;
using obs::JsonValue;

/// One client connection. The write mutex serializes response frames
/// from concurrent workers; `open` flips once on close so a worker whose
/// client vanished mid-request drops the response instead of erroring.
struct Server::Connection {
  int fd = -1;
  std::mutex write_mutex;
  std::atomic<bool> open{true};
};

/// One admitted request waiting for (or holding) a worker.
struct Server::Job {
  JsonValue request;
  std::shared_ptr<Connection> conn;
  long long id = 0;
  bool has_deadline = false;
  Clock::time_point deadline{};
};

Server::Server(const ServerOptions& options, Service* service,
               obs::MetricsRegistry* metrics)
    : options_(options), service_(service), metrics_(metrics) {}

Server::~Server() {
  initiate_drain();
  wait();
}

bool Server::start(std::string* error) {
  if (started_.load()) {
    if (error) *error = "server already started";
    return false;
  }
  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      if (error) {
        *error = "unix socket path too long (limit " +
                 std::to_string(sizeof(addr.sun_path) - 1) + " bytes): " +
                 options_.unix_path;
      }
      return false;
    }
    std::memcpy(addr.sun_path, options_.unix_path.c_str(),
                options_.unix_path.size() + 1);
    ::unlink(options_.unix_path.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0 ||
        ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      if (error) {
        *error = "bind " + options_.unix_path + ": " + std::strerror(errno);
      }
      if (listen_fd_ >= 0) ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  } else if (options_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error) *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      if (error) {
        *error = "bind 127.0.0.1:" + std::to_string(options_.tcp_port) +
                 ": " + std::strerror(errno);
      }
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    if (error) *error = "no listen address (set unix_path or tcp_port)";
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    if (error) *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::pipe(wake_pipe_) != 0) {
    if (error) *error = std::string("pipe: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  started_.store(true);
  if (options_.workers == 0) options_.workers = 1;
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return true;
}

void Server::initiate_drain() {
  if (!started_.load()) return;
  if (draining_.exchange(true)) return;  // idempotent
  // Wake the accept poll; readers observe draining_ on their next frame.
  const char byte = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  queue_cv_.notify_all();
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || draining_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(conn);
    conn_threads_.emplace_back(
        [this, conn]() mutable { connection_loop(std::move(conn)); });
    if (metrics_) metrics_->counter("serve.connections").add();
  }
}

void Server::connection_loop(std::shared_ptr<Connection> conn) {
  std::string payload;
  for (;;) {
    std::string err;
    const ReadStatus st =
        read_frame(conn->fd, &payload, options_.max_frame_bytes, &err);
    if (st != ReadStatus::Ok) {
      // Clean EOF or a framing violation: either way the stream is
      // unusable, so the connection ends here.
      break;
    }
    JsonValue request;
    long long id = 0;
    try {
      request = JsonValue::parse(payload);
      if (request.is_object()) {
        if (const JsonValue* idv = request.find("id");
            idv && idv->is_number()) {
          id = idv->as_int();
        }
      }
    } catch (const obs::JsonError& e) {
      send_response(*conn, make_error_response(
                               0, ErrorCode::BadRequest,
                               std::string("request is not JSON: ") +
                                   e.what()));
      continue;  // frame boundaries are intact; the stream survives
    }

    // "shutdown" acts at the server layer: drain, then acknowledge --
    // this order means a client that has the ack can rely on
    // draining() being observable (the response write path is
    // unaffected by the drain flag).
    if (request.is_object()) {
      if (const JsonValue* t = request.find("type");
          t && t->is_string() && t->as_string() == "shutdown") {
        initiate_drain();
        send_response(*conn, make_ok_response(id, "shutdown"));
        continue;
      }
    }

    if (draining_.load()) {
      if (metrics_) metrics_->counter("serve.rejected.shutting_down").add();
      send_response(*conn,
                    make_error_response(id, ErrorCode::ShuttingDown,
                                        "server is draining"));
      continue;
    }

    Job job;
    job.conn = conn;
    job.id = id;
    std::uint64_t deadline_ms = options_.default_deadline_ms;
    if (request.is_object()) {
      if (const JsonValue* d = request.find("deadline_ms")) {
        if (!d->is_number() || d->as_int() < 0) {
          send_response(*conn, make_error_response(
                                   id, ErrorCode::BadRequest,
                                   "'deadline_ms' must be a non-negative "
                                   "integer"));
          continue;
        }
        deadline_ms = static_cast<std::uint64_t>(d->as_int());
      }
    }
    if (deadline_ms > 0) {
      job.has_deadline = true;
      job.deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
    }
    job.request = std::move(request);

    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      // Re-check under the lock: wait() decides "drained" under this
      // mutex, so checking draining_ here closes the race where a job
      // slips in after the final drained check and never runs.
      if (draining_.load()) {
        if (metrics_) metrics_->counter("serve.rejected.shutting_down").add();
        send_response(*conn,
                      make_error_response(id, ErrorCode::ShuttingDown,
                                          "server is draining"));
        continue;
      }
      if (queue_.size() >= options_.queue_depth) {
        if (metrics_) metrics_->counter("serve.rejected.queue_full").add();
        send_response(*conn,
                      make_error_response(id, ErrorCode::QueueFull,
                                          "admission queue is full"));
        continue;
      }
      queue_.push_back(std::move(job));
      if (metrics_) {
        metrics_->counter("serve.admitted").add();
        metrics_->gauge("serve.queue_high_water")
            .set_max(static_cast<double>(queue_.size()));
      }
    }
    queue_cv_.notify_one();
  }
  conn->open.store(false);
  ::close(conn->fd);
}

void Server::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || stop_workers_;
      });
      if (queue_.empty()) {
        if (stop_workers_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }

    JsonValue response;
    if (job.has_deadline && Clock::now() > job.deadline) {
      if (metrics_) metrics_->counter("serve.rejected.deadline").add();
      response = make_error_response(job.id, ErrorCode::DeadlineExceeded,
                                     "deadline expired while queued");
    } else {
      const auto t0 = Clock::now();
      response = service_->handle(job.request);
      if (metrics_) {
        metrics_->timer("serve.request").record(
            std::chrono::duration<double>(Clock::now() - t0).count());
      }
    }
    send_response(*job.conn, response);

    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drained_cv_.notify_all();
    }
  }
}

void Server::send_response(Connection& conn, const JsonValue& response) {
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  if (!conn.open.load()) return;
  std::string err;
  if (!write_frame(conn.fd, response.dump(0), &err)) {
    // Client went away; the reader will notice on its next read.
    conn.open.store(false);
  }
}

void Server::wait() {
  if (!started_.load()) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  // Let the workers finish everything already admitted.
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    drained_cv_.wait(lock,
                     [this] { return queue_.empty() && in_flight_ == 0; });
    stop_workers_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Unblock the readers (their clients may still hold the sockets open).
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& conn : conns_) {
      if (conn->open.load()) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    readers.swap(conn_threads_);
  }
  for (std::thread& t : readers) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  }
  if (wake_pipe_[0] >= 0) {
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
  started_.store(false);
}

}  // namespace dp::serve
