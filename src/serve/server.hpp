// The dpserved network front end: listener, per-connection reader
// threads, a bounded admission queue, and a worker pool executing
// requests through a shared Service.
//
// Threading model
// ---------------
//   * One accept thread polls the listening socket (TCP on 127.0.0.1 or
//     a Unix-domain socket) plus an internal wakeup pipe.
//   * One reader thread per connection parses frames and ADMITS them:
//     try-push onto the bounded queue; a full queue answers queue_full
//     immediately from the reader (backpressure, never blocking the
//     socket), and a draining server answers shutting_down.
//   * N worker threads pop requests and execute Service::handle. A
//     request whose deadline expired while queued is answered
//     deadline_exceeded WITHOUT executing -- the deadline is checked at
//     dequeue, where staleness is actually decidable.
//   * Responses go back over the requester's connection under a
//     per-connection write mutex, so concurrent workers never interleave
//     frame bytes. Clients pipelining multiple requests on one
//     connection correlate out-of-order responses by "id".
//
// Drain semantics (SIGTERM): initiate_drain() stops accepting
// connections and admitting requests, lets the workers finish every
// request already admitted (queued or executing), answers anything that
// arrives meanwhile with shutting_down, then closes all connections.
// wait() returns once all threads are joined. Nothing in flight is
// dropped -- the acceptance test kills a loaded server and checks every
// admitted request got its response.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace dp::serve {

struct ServerOptions {
  /// Non-empty: listen on this Unix-domain socket path (unlinked first).
  std::string unix_path;
  /// >= 0: listen on 127.0.0.1:port (0 picks an ephemeral port; read the
  /// actual one from tcp_port() after start()).
  int tcp_port = -1;
  std::size_t workers = 1;
  /// Admission-queue capacity; the (workers+1)th .. (workers+depth)th
  /// concurrent requests wait here, anything beyond is rejected.
  std::size_t queue_depth = 64;
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Applied to requests that carry no "deadline_ms"; 0 = no deadline.
  std::uint64_t default_deadline_ms = 0;
};

class Server {
 public:
  Server(const ServerOptions& options, Service* service,
         obs::MetricsRegistry* metrics);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and spawns the accept + worker threads. False (error filled)
  /// when the socket cannot be bound.
  bool start(std::string* error);

  /// Port actually bound (TCP mode), -1 otherwise.
  int tcp_port() const { return bound_port_; }

  /// Begins the drain described above. Idempotent, safe from any thread
  /// (call it from a signal-watcher thread, not a signal handler).
  void initiate_drain();

  /// Blocks until the server is fully drained and every thread joined.
  /// Returns immediately if start() was never called.
  void wait();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

 private:
  struct Connection;
  struct Job;

  void accept_loop();
  void connection_loop(std::shared_ptr<Connection> conn);
  void worker_loop();
  void send_response(Connection& conn, const obs::JsonValue& response);

  ServerOptions options_;
  Service* service_;
  obs::MetricsRegistry* metrics_;

  int listen_fd_ = -1;
  int bound_port_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< written by initiate_drain()

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<Job> queue_;
  std::size_t in_flight_ = 0;      ///< guarded by queue_mutex_
  bool stop_workers_ = false;      ///< guarded by queue_mutex_

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> conn_threads_;  ///< joined in wait()
};

}  // namespace dp::serve
