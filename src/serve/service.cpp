#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analysis/hybrid.hpp"
#include "analysis/ndetect.hpp"
#include "analysis/profile_io.hpp"
#include "analysis/profiles.hpp"
#include "fault/stuck_at.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/generators.hpp"
#include "obs/span.hpp"
#include "serve/protocol.hpp"
#include "sim/wide_sim.hpp"
#include "store/hash.hpp"

namespace dp::serve {

using obs::JsonValue;

namespace {

/// Thrown for anything the client got wrong; handle() maps it to a
/// bad_request response (engine exceptions stay "internal").
class BadRequest : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

long long request_id(const JsonValue& request) {
  const JsonValue* id = request.find("id");
  if (!id) return 0;
  if (!id->is_number()) throw BadRequest("'id' must be an integer");
  return id->as_int();
}

std::string require_string(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (!v || !v->is_string()) {
    throw BadRequest(std::string("missing string field '") + key + "'");
  }
  return v->as_string();
}

/// Typed option readers: wrong types are client errors, not crashes.
bool opt_bool(const JsonValue& obj, const char* key, bool fallback) {
  const JsonValue* v = obj.find(key);
  if (!v) return fallback;
  if (v->kind() != JsonValue::Kind::Bool) {
    throw BadRequest(std::string("option '") + key + "' must be a boolean");
  }
  return v->as_bool();
}

std::uint64_t opt_u64(const JsonValue& obj, const char* key,
                      std::uint64_t fallback) {
  const JsonValue* v = obj.find(key);
  if (!v) return fallback;
  if (!v->is_number() || v->as_int() < 0) {
    throw BadRequest(std::string("option '") + key +
                     "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v->as_int());
}

double opt_double(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.find(key);
  if (!v) return fallback;
  if (!v->is_number()) {
    throw BadRequest(std::string("option '") + key + "' must be a number");
  }
  return v->as_double();
}

/// Every option object is closed: an unknown key is a bad_request, so a
/// typo like "colapse" can never silently run with defaults.
void reject_unknown_keys(const JsonValue& obj,
                         std::initializer_list<const char*> allowed) {
  if (obj.is_null()) return;
  if (!obj.is_object()) throw BadRequest("'options' must be an object");
  for (const auto& [key, value] : obj.members()) {
    bool ok = false;
    for (const char* a : allowed) {
      if (key == a) {
        ok = true;
        break;
      }
    }
    if (!ok) throw BadRequest("unknown option '" + key + "'");
  }
}

const JsonValue& options_of(const JsonValue& request) {
  static const JsonValue kNull;
  const JsonValue* v = request.find("options");
  return v ? *v : kNull;
}

/// The optional ndetect "vectors" field: an array of '0'/'1' bit-strings,
/// each exactly the circuit's input count long, character i = PI i.
std::vector<std::vector<bool>> parse_bit_vectors(const JsonValue& request,
                                                 std::size_t num_inputs) {
  std::vector<std::vector<bool>> out;
  const JsonValue* v = request.find("vectors");
  if (!v) return out;
  if (!v->is_array()) {
    throw BadRequest("'vectors' must be an array of bit-strings");
  }
  out.reserve(v->size());
  for (std::size_t i = 0; i < v->size(); ++i) {
    const JsonValue& e = v->at(i);
    if (!e.is_string()) {
      throw BadRequest("'vectors' must be an array of bit-strings");
    }
    const std::string& s = e.as_string();
    if (s.size() != num_inputs) {
      throw BadRequest("vector " + std::to_string(i) + " has length " +
                       std::to_string(s.size()) + ", expected " +
                       std::to_string(num_inputs) +
                       " (one character per primary input)");
    }
    std::vector<bool> bits(num_inputs);
    for (std::size_t c = 0; c < s.size(); ++c) {
      if (s[c] != '0' && s[c] != '1') {
        throw BadRequest("vector " + std::to_string(i) +
                         " must contain only '0' and '1'");
      }
      bits[c] = s[c] == '1';
    }
    out.push_back(std::move(bits));
  }
  return out;
}

std::string bit_string_of(const std::vector<bool>& v) {
  std::string s(v.size(), '0');
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i]) s[i] = '1';
  }
  return s;
}

}  // namespace

/// One cached analyze response: the serialized profile document plus the
/// circuit name (evict-by-circuit) and its key (unlink on LRU eviction).
struct Service::CacheEntry {
  std::string key;
  std::string circuit;
  JsonValue payload;
};

Service::Service(const ServiceOptions& options, obs::MetricsRegistry* metrics)
    : options_(options), metrics_(metrics) {
  if (!options_.cache_dir.empty()) {
    store_ = std::make_unique<store::ArtifactStore>(
        options_.cache_dir, store::ArtifactStore::Options{}, metrics_);
  }
}

Service::~Service() = default;

std::size_t Service::profile_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

std::size_t Service::resident_forest_count() const {
  std::lock_guard<std::mutex> lock(forests_mutex_);
  return forests_.size();
}

bool Service::cache_lookup(const std::string& key, JsonValue* out) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    if (metrics_) metrics_->counter("serve.profile_cache.misses").add();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  if (metrics_) metrics_->counter("serve.profile_cache.hits").add();
  *out = it->second->payload;  // copy out under the lock
  return true;
}

void Service::cache_insert(const std::string& key, const std::string& circuit,
                           JsonValue payload) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // A concurrent request computed the same profile; results are
    // deterministic, so either copy is THE result. Keep the incumbent.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{key, circuit, std::move(payload)});
  cache_[key] = lru_.begin();
  while (cache_.size() > options_.profile_cache_entries && !lru_.empty()) {
    cache_.erase(lru_.back().key);
    lru_.pop_back();
    if (metrics_) metrics_->counter("serve.profile_cache.evictions").add();
  }
}

std::shared_ptr<const netlist::Circuit> Service::circuit_for(
    const JsonValue& request, std::string* key_out) {
  const JsonValue* bench = request.find("bench");
  std::string key;
  if (bench) {
    if (!bench->is_string()) throw BadRequest("'bench' must be a string");
    // Inline netlists are keyed by text hash, so re-sending the same
    // .bench body hits the resident parse.
    key = "bench:" + store::KeyBuilder().str(bench->as_string()).hex();
  } else {
    key = "name:" + require_string(request, "circuit");
  }
  if (key_out) *key_out = key;
  {
    std::lock_guard<std::mutex> lock(circuits_mutex_);
    auto it = circuits_.find(key);
    if (it != circuits_.end()) return it->second;
  }
  // Parse outside the lock; a duplicate racing parse is wasted work but
  // harmless (first insert wins below).
  std::shared_ptr<const netlist::Circuit> circuit;
  try {
    if (bench) {
      circuit = std::make_shared<netlist::Circuit>(
          netlist::read_bench_string(bench->as_string(), "inline"));
    } else {
      const std::string name = require_string(request, "circuit");
      for (const std::string& known : netlist::benchmark_names()) {
        if (known == name) {
          circuit = std::make_shared<netlist::Circuit>(
              netlist::make_benchmark(name));
          break;
        }
      }
      if (!circuit) {
        throw BadRequest("unknown circuit '" + name +
                         "' (send a built-in benchmark name, or the "
                         "netlist text in 'bench')");
      }
    }
  } catch (const netlist::NetlistError& e) {
    throw BadRequest(std::string("netlist: ") + e.what());
  }
  std::lock_guard<std::mutex> lock(circuits_mutex_);
  auto [it, inserted] = circuits_.emplace(key, std::move(circuit));
  return it->second;
}

std::shared_ptr<const core::SharedGoodFunctions> Service::forest_for(
    const std::string& key, const netlist::Circuit& circuit) {
  // The build runs under the map lock: the second of two racing requests
  // for a cold circuit blocks until the first finishes freezing, then
  // adopts that forest instead of building a duplicate universe. Requests
  // for already-resident circuits only pay the lookup.
  std::lock_guard<std::mutex> lock(forests_mutex_);
  auto it = forests_.find(key);
  if (it != forests_.end()) {
    if (metrics_) metrics_->counter("serve.forest.reuses").add();
    return it->second.forest;
  }
  // Defaults mirror what handle_analyze's AnalysisOptions would make the
  // engine build itself: default GoodFunctionOptions and node budget
  // (neither is client-settable), so adoption preserves bit-identity.
  auto forest = std::make_shared<const core::SharedGoodFunctions>(circuit);
  forests_.emplace(key, ForestEntry{circuit.name(), forest});
  if (metrics_) metrics_->counter("serve.forest.builds").add();
  return forest;
}

JsonValue Service::handle(const JsonValue& request) noexcept {
  long long id = 0;
  try {
    if (!request.is_object()) throw BadRequest("request must be an object");
    id = request_id(request);
    const std::string type = require_string(request, "type");
    obs::ScopedSpan span(obs::SpanCollector::current(), "serve." + type);
    if (type == "analyze") return handle_analyze(id, request);
    if (type == "ndetect") return handle_ndetect(id, request);
    if (type == "grade") return handle_grade(id, request);
    if (type == "hash") return handle_hash(id, request);
    if (type == "evict") return handle_evict(id, request);
    if (type == "metrics") return handle_metrics(id);
    if (type == "sleep") return handle_sleep(id, request);
    if (type == "ping") return make_ok_response(id, "ping");
    throw BadRequest("unknown request type '" + type + "'");
  } catch (const BadRequest& e) {
    if (metrics_) metrics_->counter("serve.errors.bad_request").add();
    return make_error_response(id, ErrorCode::BadRequest, e.what());
  } catch (const std::exception& e) {
    if (metrics_) metrics_->counter("serve.errors.internal").add();
    return make_error_response(id, ErrorCode::Internal, e.what());
  }
}

JsonValue Service::handle_analyze(long long id, const JsonValue& request) {
  const JsonValue& opts = options_of(request);
  reject_unknown_keys(opts, {"model", "jobs", "collapse", "bridge_count",
                             "bridge_theta", "bridge_seed",
                             "prefilter_patterns", "prefilter_seed",
                             "persist"});
  std::string circuit_key;
  const std::shared_ptr<const netlist::Circuit> circuit =
      circuit_for(request, &circuit_key);

  std::string model = "sa";
  if (const JsonValue* m = opts.find("model")) {
    if (!m->is_string()) throw BadRequest("option 'model' must be a string");
    model = m->as_string();
  }
  if (model != "sa" && model != "bf.and" && model != "bf.or" &&
      model != "hybrid") {
    throw BadRequest("option 'model' must be sa, bf.and, bf.or or hybrid");
  }

  analysis::AnalysisOptions a;
  a.collapse = opt_bool(opts, "collapse", true);
  a.jobs = static_cast<std::size_t>(opt_u64(opts, "jobs", options_.jobs));
  a.sampling.target_count = static_cast<std::size_t>(
      opt_u64(opts, "bridge_count", a.sampling.target_count));
  a.sampling.theta = opt_double(opts, "bridge_theta", a.sampling.theta);
  a.sampling.seed = opt_u64(opts, "bridge_seed", a.sampling.seed);
  const bool persist = opt_bool(opts, "persist", true);
  if (store_ && persist) a.persistence.store = store_.get();

  analysis::HybridOptions h;
  h.prefilter_patterns = static_cast<std::size_t>(
      opt_u64(opts, "prefilter_patterns", h.prefilter_patterns));
  h.prefilter_seed = opt_u64(opts, "prefilter_seed", h.prefilter_seed);

  // One key addresses both caches. For sa/bf it IS the artifact-store
  // key; hybrid extends it with the prefilter policy (jobs stays
  // excluded -- results are worker-count invariant end to end).
  std::string key;
  if (model == "hybrid") {
    key = store::KeyBuilder()
              .str(analysis::profile_cache_key(*circuit, "sa", a))
              .str("hybrid")
              .u64(h.prefilter_patterns)
              .u64(h.prefilter_seed)
              .flag(h.drop_detected)
              .hex();
  } else {
    key = analysis::profile_cache_key(*circuit, model, a);
  }

  if (metrics_) metrics_->counter("serve.requests.analyze").add();
  JsonValue cached;
  if (cache_lookup(key, &cached)) {
    JsonValue resp = make_ok_response(id, "analyze");
    resp["model"] = model;
    resp["circuit"] = circuit->name();
    resp["cached"] = true;
    resp["key"] = key;
    resp["profile"] = std::move(cached);
    return resp;
  }

  // Cache miss: the sweep will run, so pin (or build) the resident
  // frozen forest and hand it to the engine. Concurrent analyzes of the
  // same circuit adopt the same immutable node pool.
  a.shared_good = forest_for(circuit_key, *circuit);

  JsonValue profile;
  {
    obs::ScopedSpan span(obs::SpanCollector::current(),
                         "serve.analyze." + model);
    span.attr("circuit", circuit->name()).attr("jobs", a.jobs);
    if (model == "sa") {
      profile = analysis::profile_to_json(analysis::analyze_stuck_at(*circuit, a), key);
    } else if (model == "bf.and" || model == "bf.or") {
      const fault::BridgeType bt = model == "bf.and" ? fault::BridgeType::And
                                                     : fault::BridgeType::Or;
      profile = analysis::profile_to_json(
          analysis::analyze_bridging(*circuit, bt, a), key);
    } else {
      profile = analysis::hybrid_profile_to_json(
          analysis::analyze_stuck_at_hybrid(*circuit, a, h));
    }
  }
  cache_insert(key, circuit->name(), profile);

  JsonValue resp = make_ok_response(id, "analyze");
  resp["model"] = model;
  resp["circuit"] = circuit->name();
  resp["cached"] = false;
  resp["key"] = key;
  resp["profile"] = std::move(profile);
  return resp;
}

JsonValue Service::handle_ndetect(long long id, const JsonValue& request) {
  const JsonValue& opts = options_of(request);
  reject_unknown_keys(opts, {"n", "jobs", "topup", "collapse"});
  std::string circuit_key;
  const std::shared_ptr<const netlist::Circuit> circuit =
      circuit_for(request, &circuit_key);

  const std::size_t n = static_cast<std::size_t>(opt_u64(opts, "n", 1));
  const std::size_t jobs =
      static_cast<std::size_t>(opt_u64(opts, "jobs", options_.jobs));
  const bool topup = opt_bool(opts, "topup", true);
  const bool collapse = opt_bool(opts, "collapse", true);
  std::vector<std::vector<bool>> vectors =
      parse_bit_vectors(request, circuit->num_inputs());

  // The key covers everything the result depends on -- circuit content,
  // target n, the top-up/collapse policy, and the client's vector set.
  // jobs stays excluded: counts are satcounts of canonical functions,
  // identical for any worker count.
  store::KeyBuilder kb;
  kb.str(analysis::kNDetectSchema);
  kb.str(store::circuit_content_hash(*circuit));
  kb.u64(n);
  kb.flag(topup);
  kb.flag(collapse);
  kb.u64(vectors.size());
  for (const auto& v : vectors) kb.str(bit_string_of(v));
  const std::string key = kb.hex();

  if (metrics_) metrics_->counter("serve.requests.ndetect").add();
  JsonValue cached;
  if (cache_lookup(key, &cached)) {
    JsonValue resp = make_ok_response(id, "ndetect");
    resp["circuit"] = circuit->name();
    resp["cached"] = true;
    resp["key"] = key;
    resp["report"] = std::move(cached["report"]);
    resp["minted_vectors"] = std::move(cached["minted_vectors"]);
    return resp;
  }

  const std::vector<fault::StuckAtFault> faults =
      collapse ? fault::collapse_checkpoint_faults(*circuit)
               : fault::checkpoint_faults(*circuit);

  analysis::NDetectOptions a;
  a.jobs = jobs;
  a.shared_good = forest_for(circuit_key, *circuit);

  JsonValue payload = JsonValue::object();
  {
    obs::ScopedSpan span(obs::SpanCollector::current(), "serve.ndetect");
    span.attr("circuit", circuit->name()).attr("jobs", jobs);
    analysis::NDetectAnalyzer analyzer(*circuit, faults, a);
    const std::size_t given = vectors.size();
    std::size_t minted = 0;
    if (topup) minted = analyzer.top_up(vectors, n);
    analysis::NDetectReport report = analyzer.report(vectors, n);
    report.minted_vectors = minted;
    payload["report"] = analysis::ndetect_report_to_json(report, key);
    JsonValue minted_vectors = JsonValue::array();
    for (std::size_t i = given; i < vectors.size(); ++i) {
      minted_vectors.push_back(bit_string_of(vectors[i]));
    }
    payload["minted_vectors"] = std::move(minted_vectors);
  }
  cache_insert(key, circuit->name(), payload);

  JsonValue resp = make_ok_response(id, "ndetect");
  resp["circuit"] = circuit->name();
  resp["cached"] = false;
  resp["key"] = key;
  resp["report"] = std::move(payload["report"]);
  resp["minted_vectors"] = std::move(payload["minted_vectors"]);
  return resp;
}

JsonValue Service::handle_grade(long long id, const JsonValue& request) {
  const JsonValue& opts = options_of(request);
  reject_unknown_keys(opts,
                      {"patterns", "seed", "collapse", "drop_detected"});
  const std::shared_ptr<const netlist::Circuit> circuit =
      circuit_for(request);
  const std::size_t patterns =
      static_cast<std::size_t>(opt_u64(opts, "patterns", 1024));
  const std::uint64_t seed = opt_u64(opts, "seed", 0x5eedb10cull);
  const bool collapse = opt_bool(opts, "collapse", true);

  if (metrics_) metrics_->counter("serve.requests.grade").add();
  const std::vector<fault::StuckAtFault> faults =
      collapse ? fault::collapse_checkpoint_faults(*circuit)
               : fault::checkpoint_faults(*circuit);
  sim::WideFaultSimulator sim(*circuit);
  sim::WideSimOptions wopts;
  wopts.drop_detected = opt_bool(opts, "drop_detected", true);
  const auto grade = sim.grade_random(faults, patterns, seed, wopts);

  JsonValue resp = make_ok_response(id, "grade");
  resp["circuit"] = circuit->name();
  resp["total"] = grade.total;
  resp["detected"] = grade.detected();
  resp["num_patterns"] = grade.num_patterns;
  resp["coverage"] =
      grade.total == 0 ? 0.0
                       : static_cast<double>(grade.detected()) /
                             static_cast<double>(grade.total);
  resp["events"] = grade.events();
  return resp;
}

JsonValue Service::handle_hash(long long id, const JsonValue& request) {
  const std::shared_ptr<const netlist::Circuit> circuit =
      circuit_for(request);
  JsonValue resp = make_ok_response(id, "hash");
  resp["circuit"] = circuit->name();
  resp["hash"] = store::circuit_content_hash(*circuit);
  return resp;
}

JsonValue Service::handle_evict(long long id, const JsonValue& request) {
  // With "circuit": drop that circuit's cached profiles and its resident
  // netlist. Without: drop everything (a full cache reset between load
  // phases). The artifact store on disk is never touched.
  std::size_t evicted = 0;
  const JsonValue* which = request.find("circuit");
  if (which && !which->is_string()) {
    throw BadRequest("'circuit' must be a string");
  }
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (!which || it->circuit == which->as_string()) {
        cache_.erase(it->key);
        it = lru_.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  {
    // Dropping the map entry only unpins the forest; any in-flight
    // analyze keeps its shared_ptr until its sweep completes.
    std::lock_guard<std::mutex> lock(forests_mutex_);
    if (!which) {
      forests_.clear();
    } else {
      for (auto it = forests_.begin(); it != forests_.end();) {
        if (it->second.circuit_name == which->as_string()) {
          it = forests_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(circuits_mutex_);
    if (!which) {
      circuits_.clear();
    } else {
      for (auto it = circuits_.begin(); it != circuits_.end();) {
        if ((*it->second).name() == which->as_string()) {
          it = circuits_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  if (metrics_) metrics_->counter("serve.requests.evict").add();
  JsonValue resp = make_ok_response(id, "evict");
  resp["evicted"] = evicted;
  return resp;
}

JsonValue Service::handle_metrics(long long id) {
  JsonValue resp = make_ok_response(id, "metrics");
  // Shaped exactly like a CLI --metrics-json file, so a client can dump
  // it to disk and validate_metrics accepts it unchanged.
  JsonValue doc = JsonValue::object();
  doc["tool"] = "dpserved";
  doc["schema"] = "dp.metrics.v1";
  doc["metrics"] = metrics_ ? metrics_->to_json() : JsonValue::object();
  resp["document"] = std::move(doc);
  return resp;
}

JsonValue Service::handle_sleep(long long id, const JsonValue& request) {
  // Deterministic busy-worker stand-in for deadline/backpressure tests
  // and load shaping; capped so a client cannot park a worker for long.
  const JsonValue& opts = options_of(request);
  reject_unknown_keys(opts, {"ms"});
  const std::uint64_t ms = std::min<std::uint64_t>(
      opt_u64(opts, "ms", 10), 10'000);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  JsonValue resp = make_ok_response(id, "sleep");
  resp["slept_ms"] = ms;
  return resp;
}

}  // namespace dp::serve
