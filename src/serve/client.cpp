#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dp::serve {

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<Client> Client::connect_unix(const std::string& path,
                                           std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error) *error = "unix socket path too long: " + path;
    return std::nullopt;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) *error = "connect " + path + ": " + std::strerror(errno);
    ::close(fd);
    return std::nullopt;
  }
  return Client(fd);
}

std::optional<Client> Client::connect_tcp(const std::string& host, int port,
                                          std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "not an IPv4 address: " + host;
    return std::nullopt;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error) {
      *error = "connect " + host + ":" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    ::close(fd);
    return std::nullopt;
  }
  return Client(fd);
}

bool Client::call(const obs::JsonValue& request, obs::JsonValue* response,
                  std::string* error, std::uint32_t max_frame_bytes) {
  if (fd_ < 0) {
    if (error) *error = "client is not connected";
    return false;
  }
  if (!write_frame(fd_, request.dump(0), error)) return false;
  std::string payload;
  const ReadStatus st = read_frame(fd_, &payload, max_frame_bytes, error);
  if (st == ReadStatus::Eof) {
    if (error) *error = "server closed the connection";
    return false;
  }
  if (st != ReadStatus::Ok) return false;
  try {
    *response = obs::JsonValue::parse(payload);
  } catch (const obs::JsonError& e) {
    if (error) *error = std::string("response is not JSON: ") + e.what();
    return false;
  }
  return true;
}

}  // namespace dp::serve
