#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dp::serve {

namespace {

/// send(2) the whole buffer, retrying short writes and EINTR.
/// MSG_NOSIGNAL turns a peer disappearing mid-write into EPIPE instead
/// of a process-killing SIGPIPE -- every frame fd is a socket.
bool write_all(int fd, const void* data, std::size_t n, std::string* error) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (error) *error = std::string("write: ") + std::strerror(errno);
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// read(2) exactly n bytes. 1 = got them, 0 = clean EOF before the first
/// byte, -1 = error or EOF mid-buffer (truncated frame).
int read_all(int fd, void* data, std::size_t n, std::string* error) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (error) *error = std::string("read: ") + std::strerror(errno);
      return -1;
    }
    if (r == 0) {
      if (got == 0) return 0;
      if (error) *error = "connection closed mid-frame";
      return -1;
    }
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

}  // namespace

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::QueueFull: return "queue_full";
    case ErrorCode::DeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::ShuttingDown: return "shutting_down";
    case ErrorCode::Internal: return "internal";
  }
  return "internal";
}

bool write_frame(int fd, const std::string& payload, std::string* error) {
  if (payload.size() > 0xffffffffu) {
    if (error) *error = "frame payload exceeds protocol limit";
    return false;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char header[kFrameHeaderBytes];
  std::memcpy(header, kFrameMagic, 4);
  header[4] = static_cast<char>(len & 0xff);
  header[5] = static_cast<char>((len >> 8) & 0xff);
  header[6] = static_cast<char>((len >> 16) & 0xff);
  header[7] = static_cast<char>((len >> 24) & 0xff);
  // One write for the common small frame keeps a pipelining client from
  // interleaving header and payload of concurrent calls only when the
  // caller serializes sends; the server's per-connection write mutex
  // handles that -- here we just avoid a needless extra syscall.
  std::string buf;
  buf.reserve(kFrameHeaderBytes + payload.size());
  buf.append(header, kFrameHeaderBytes);
  buf.append(payload);
  return write_all(fd, buf.data(), buf.size(), error);
}

ReadStatus read_frame(int fd, std::string* payload,
                      std::uint32_t max_payload, std::string* error) {
  char header[kFrameHeaderBytes];
  const int h = read_all(fd, header, kFrameHeaderBytes, error);
  if (h == 0) return ReadStatus::Eof;
  if (h < 0) return ReadStatus::Error;
  if (std::memcmp(header, kFrameMagic, 4) != 0) {
    if (error) *error = "bad frame magic (not a dps1 stream)";
    return ReadStatus::Error;
  }
  const std::uint32_t len =
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[4])) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[5])) << 8) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[6]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[7]))
       << 24);
  if (len > max_payload) {
    if (error) {
      *error = "frame of " + std::to_string(len) +
               " bytes exceeds the configured cap of " +
               std::to_string(max_payload);
    }
    return ReadStatus::Error;
  }
  payload->resize(len);
  if (len > 0 && read_all(fd, payload->data(), len, error) <= 0) {
    return ReadStatus::Error;
  }
  return ReadStatus::Ok;
}

obs::JsonValue make_error_response(long long id, ErrorCode code,
                                   const std::string& message) {
  obs::JsonValue resp = obs::JsonValue::object();
  resp["id"] = id;
  resp["ok"] = false;
  obs::JsonValue err = obs::JsonValue::object();
  err["code"] = to_string(code);
  err["message"] = message;
  resp["error"] = std::move(err);
  return resp;
}

obs::JsonValue make_ok_response(long long id, const std::string& type) {
  obs::JsonValue resp = obs::JsonValue::object();
  resp["id"] = id;
  resp["ok"] = true;
  resp["type"] = type;
  return resp;
}

}  // namespace dp::serve
