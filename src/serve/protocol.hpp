// Wire protocol for the dpserved fault-analysis service.
//
// A connection carries a stream of frames in each direction. One frame =
// a 4-byte magic "dps1", a 4-byte little-endian payload length, then
// exactly that many bytes of UTF-8 JSON. The magic makes a stray HTTP
// probe or an endianness bug fail loudly at the first frame instead of
// desynchronizing the stream; the length prefix bounds every read before
// any parsing happens (a frame larger than the configured cap is
// rejected without allocating it).
//
// Requests are JSON objects with a string "type" and an optional integer
// "id" the server echoes back, so a client may keep several requests in
// flight on one connection and correlate out-of-order responses.
// Responses always carry "ok" (bool); failures add
// {"error": {"code": <symbol>, "message": <text>}} where code is one of
// bad_request / queue_full / deadline_exceeded / shutting_down /
// internal. queue_full and deadline_exceeded are the admission-control
// backpressure signals: the request was NOT executed and may be retried.
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.hpp"

namespace dp::serve {

inline constexpr char kFrameMagic[4] = {'d', 'p', 's', '1'};
inline constexpr std::size_t kFrameHeaderBytes = 8;
/// Default cap on one frame's payload. Large enough for a full c1908
/// profile document, small enough that a hostile length field cannot
/// balloon the resident set.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 64u << 20;

/// Structured failure classes a response's error.code may carry.
enum class ErrorCode {
  BadRequest,        ///< malformed JSON / unknown type / bad option value
  QueueFull,         ///< admission queue at capacity; retry after backoff
  DeadlineExceeded,  ///< deadline passed while the request sat queued
  ShuttingDown,      ///< server draining; no new work admitted
  Internal,          ///< engine threw; message carries the what()
};

/// The wire symbol for `code` ("bad_request", "queue_full", ...).
const char* to_string(ErrorCode code);

/// Outcome of read_frame. Eof is a clean close before any header byte --
/// the normal end of a connection, not an error.
enum class ReadStatus { Ok, Eof, Error };

/// Writes one frame (header + payload) to `fd`, looping over short
/// writes and EINTR. Returns false on any I/O error (error filled).
bool write_frame(int fd, const std::string& payload, std::string* error);

/// Reads one frame's payload from `fd`. Returns Error (error filled) on
/// bad magic, a length above `max_payload`, or a stream truncated inside
/// a frame; Eof only on a clean close at a frame boundary.
ReadStatus read_frame(int fd, std::string* payload,
                      std::uint32_t max_payload, std::string* error);

/// {"id": id, "ok": false, "error": {"code","message"}}
obs::JsonValue make_error_response(long long id, ErrorCode code,
                                   const std::string& message);

/// {"id": id, "ok": true, "type": type} -- callers add payload fields.
obs::JsonValue make_ok_response(long long id, const std::string& type);

}  // namespace dp::serve
