// Blocking client for the dpserved protocol: connect, call, done.
// One Client = one connection; call() writes a request frame and reads
// the next response frame, so a single Client is strictly
// request/response ordered. For pipelining, open one Client per
// in-flight request (what dpload's sender threads do).
#pragma once

#include <optional>
#include <string>

#include "obs/json.hpp"
#include "serve/protocol.hpp"

namespace dp::serve {

class Client {
 public:
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// nullopt (error filled) when the socket cannot be connected.
  static std::optional<Client> connect_unix(const std::string& path,
                                            std::string* error);
  static std::optional<Client> connect_tcp(const std::string& host, int port,
                                           std::string* error);

  /// Sends `request`, blocks for the response. False (error filled) on
  /// any transport failure -- a server-side failure is a successful call
  /// whose response has ok=false.
  bool call(const obs::JsonValue& request, obs::JsonValue* response,
            std::string* error,
            std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace dp::serve
