// The differential oracle matrix.
//
// For one FuzzCase, every engine in the repo is run against every other
// engine that must agree with it bit-for-bit:
//
//   dp_vs_sim    serial DifferencePropagator vs the exhaustive 64-way
//                fault simulator: syndromes per net, detectability /
//                detectable flag per fault, and full complete-test-set
//                membership over all 2^n input vectors.
//   parallel     ParallelEngine at jobs N vs the serial engine: every
//                scalar FaultAnalysis field plus the test-set sat count.
//                Runs in both sharing modes (shared frozen forest and
//                per-worker builds); each must match serial bit-for-bit.
//   store        analyze_stuck_at cold (fresh sweep + artifacts written)
//                vs warm (profile cache hit) vs resumed (profile dropped,
//                truncated checkpoint installed): FaultRecord vectors
//                compared field-exact.
//   hybrid       the prefilter+DP pipeline (analysis/hybrid.hpp) vs the
//                serial engine: the detectable/undetectable partition must
//                match exactly, every prefilter resolution must carry a
//                detection witness count, and every DP-resolved fault's
//                record must equal the serial analysis field-for-field.
//   ndetect      the n-detection analytics (analysis/ndetect.hpp) vs the
//                wide fault simulator: a deterministic per-case vector
//                sample is topped up to n = 2, then every fault's exact
//                satcount-based detection count must equal the simulator's
//                per-pattern recount, and every detectable fault must have
//                reached its min(n, |CTS|) quota.
//
// All equality is exact (==, doubles included): every compared quantity
// is an integer sat count <= 2^n divided by a power of two, so any
// difference at all is an engine bug, not float noise.
//
// The mutation hook: OracleConfig::mutate perturbs the DP-side values
// *as seen by the oracle* (a wrapper over the engine results, enabled
// only by the self-test) so the fuzzer can prove it detects and shrinks
// injected engine bugs without shipping a buggy engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/case_gen.hpp"

namespace dp::verify {

/// Injected engine perturbations for the oracle self-test.
enum class Mutation : std::uint8_t {
  None,
  /// DP reports a detectability one vector too high for the first fault.
  InflateDetectability,
  /// DP's test set loses its lowest-numbered member vector (first fault).
  DropTestVector,
  /// The good-function syndrome of the last gate net is off by 2^-n.
  FlipSyndrome,
  /// The parallel engine's merged result diverges from serial on the
  /// first fault (a stand-in for an input-order merge bug).
  PerturbParallelMerge,
  /// The n-detect arm's view of the first fault's exact detection count
  /// is one high (a stand-in for a vector-set BDD intersection bug).
  PerturbNDetectCount,
};

const char* to_string(Mutation m);

struct OracleConfig {
  std::size_t jobs = 4;        ///< worker count of the parallel arm
  bool check_parallel = true;
  /// The parallel arm's engine adopts the shared frozen good-function
  /// forest (the production default). Off = per-worker builds only.
  bool shared_forest = true;
  /// A/B the sharing modes: run a second, unshared engine and require it
  /// to match serial too, so a frozen-adoption bug cannot hide behind a
  /// matching shared-only run (and vice versa). Ignored when
  /// check_parallel is off.
  bool check_shared_forest = true;
  bool check_store = true;
  bool check_hybrid = true;
  bool check_ndetect = true;
  /// Prefilter depth of the hybrid arm; deliberately small (and not a
  /// multiple of the 256-lane block) so fuzz cases routinely exercise both
  /// phases and the tail-lane masking.
  std::size_t hybrid_prefilter_patterns = 192;
  /// Scratch root for the store arm's per-case ArtifactStore; the arm is
  /// skipped when empty. The per-case subdirectory is removed afterwards.
  std::string scratch_dir;
  Mutation mutate = Mutation::None;  ///< self-test only
};

struct Discrepancy {
  std::string oracle;   ///< e.g. "dp_vs_sim.detectability"
  std::string subject;  ///< fault or net description
  std::string detail;   ///< expected-vs-got message
};

struct OracleResult {
  std::size_t faults_checked = 0;
  std::size_t vectors_checked = 0;  ///< test-set membership points compared
  std::vector<Discrepancy> discrepancies;

  bool ok() const { return discrepancies.empty(); }
};

/// Runs the full matrix on one case. Never throws on a mismatch (it
/// records a Discrepancy); engine exceptions are converted into
/// "exception" discrepancies so a crash-inducing case is also shrinkable.
OracleResult run_oracles(const FuzzCase& fuzz_case,
                         const OracleConfig& config);

}  // namespace dp::verify
