// Seeded fuzz-case generation for the differential verifier.
//
// A case is a random circuit (one of the make_random_circuit shape
// presets) plus a random sample of stuck-at and bridging faults on it.
// Case i of a campaign is derived from (campaign seed, i) by a splitmix
// step, so cases are independent of each other and any case can be
// regenerated in isolation from its case_seed alone — the property the
// reproducer files rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/bridging.hpp"
#include "fault/stuck_at.hpp"
#include "netlist/generators.hpp"

namespace dp::verify {

struct CaseConfig {
  std::uint64_t seed = 1;  ///< campaign seed (case_seed derives from it)
  int min_inputs = 4;
  int max_inputs = 9;  ///< exhaustive sweeps are 2^n; keep n small
  int min_gates = 8;
  int max_gates = 40;
  int num_outputs = 3;
  std::size_t max_sa_faults = 24;   ///< sample size from the collapsed set
  std::size_t max_bridges = 8;      ///< sample size from the NFBF set
  bool include_bridging = true;
  /// Presets to draw from; empty = all_circuit_shapes().
  std::vector<netlist::CircuitShape> shapes;
};

struct FuzzCase {
  std::uint64_t case_seed = 0;  ///< regenerates this case by itself
  netlist::CircuitShape shape = netlist::CircuitShape::Mixed;
  netlist::Circuit circuit;
  std::vector<fault::StuckAtFault> sa_faults;
  std::vector<fault::BridgingFault> bridges;

  explicit FuzzCase(netlist::Circuit c) : circuit(std::move(c)) {}
};

/// Derived per-case seed (splitmix64 over campaign seed and index).
std::uint64_t derive_case_seed(std::uint64_t campaign_seed,
                               std::uint64_t index);

/// Case `index` of the campaign described by `config`. Deterministic:
/// the same (config, index) always yields the same circuit and faults.
FuzzCase make_case(const CaseConfig& config, std::uint64_t index);

/// Regenerates a case directly from its derived seed (the reproducer
/// path; `config` supplies the size knobs, which the report records).
FuzzCase make_case_from_seed(const CaseConfig& config,
                             std::uint64_t case_seed);

}  // namespace dp::verify
