#include "verify/shrink.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "netlist/structure.hpp"

namespace dp::verify {

CaseSketch sketch_from_case(const FuzzCase& fc) {
  const netlist::Circuit& c = fc.circuit;
  CaseSketch s;
  for (netlist::NetId id : c.inputs()) s.inputs.push_back(c.net_name(id));
  for (netlist::NetId id : c.topo_order()) {
    if (c.type(id) == netlist::GateType::Input) continue;
    SketchGate g;
    g.name = c.net_name(id);
    g.type = c.type(id);
    for (netlist::NetId f : c.fanins(id)) g.fanins.push_back(c.net_name(f));
    s.gates.push_back(std::move(g));
  }
  for (netlist::NetId id : c.outputs()) s.outputs.push_back(c.net_name(id));
  for (const fault::StuckAtFault& f : fc.sa_faults) {
    SaSpec spec;
    spec.net = c.net_name(f.net);
    spec.stuck_value = f.stuck_value;
    if (f.branch) {
      spec.has_branch = true;
      spec.branch_gate = c.net_name(f.branch->gate);
      spec.branch_pin = f.branch->pin;
    }
    s.sa.push_back(std::move(spec));
  }
  for (const fault::BridgingFault& f : fc.bridges) {
    s.br.push_back({c.net_name(f.a), c.net_name(f.b), f.type});
  }
  return s;
}

std::optional<FuzzCase> build_case(const CaseSketch& s,
                                   std::uint64_t case_seed,
                                   netlist::CircuitShape shape) {
  netlist::Circuit c("shrunk");
  std::unordered_map<std::string, netlist::NetId> by_name;
  try {
    for (const std::string& name : s.inputs) {
      by_name.emplace(name, c.add_input(name));
    }
    for (const SketchGate& g : s.gates) {
      std::vector<netlist::NetId> fanins;
      for (const std::string& f : g.fanins) {
        auto it = by_name.find(f);
        if (it == by_name.end()) return std::nullopt;
        fanins.push_back(it->second);
      }
      by_name.emplace(g.name, c.add_gate(g.type, std::move(fanins), g.name));
    }
    for (const std::string& name : s.outputs) {
      auto it = by_name.find(name);
      if (it == by_name.end()) return std::nullopt;
      c.mark_output(it->second);
    }
    c.finalize();
  } catch (const netlist::NetlistError&) {
    return std::nullopt;
  }

  FuzzCase fc(std::move(c));
  fc.case_seed = case_seed;
  fc.shape = shape;
  const netlist::Structure structure(fc.circuit);
  for (const SaSpec& spec : s.sa) {
    auto net = by_name.find(spec.net);
    if (net == by_name.end()) continue;
    fault::StuckAtFault f;
    f.net = net->second;
    f.stuck_value = spec.stuck_value;
    if (spec.has_branch) {
      auto gate = by_name.find(spec.branch_gate);
      if (gate == by_name.end()) continue;
      const auto& fanins = fc.circuit.fanins(gate->second);
      // The branch must still be the same wire entering the same pin.
      if (spec.branch_pin >= fanins.size() ||
          fanins[spec.branch_pin] != f.net) {
        continue;
      }
      f.branch = netlist::PinRef{gate->second, spec.branch_pin};
    }
    fc.sa_faults.push_back(f);
  }
  for (const BrSpec& spec : s.br) {
    auto a = by_name.find(spec.a);
    auto b = by_name.find(spec.b);
    if (a == by_name.end() || b == by_name.end()) continue;
    if (a->second == b->second) continue;
    // Edits can close a structural loop between the wires; the engines
    // only model non-feedback bridges.
    if (fault::is_feedback_bridge(structure, a->second, b->second)) continue;
    fc.bridges.push_back({a->second, b->second, spec.type});
  }
  return fc;
}

namespace {

struct Shrinker {
  const OracleConfig& config;
  std::uint64_t case_seed;
  netlist::CircuitShape shape;
  std::size_t budget;
  std::size_t runs = 0;

  /// True when the sketch still builds AND still trips the oracle.
  bool fails(const CaseSketch& s) {
    if (runs >= budget) return false;
    auto built = build_case(s, case_seed, shape);
    if (!built) return false;
    ++runs;
    return !run_oracles(*built, config).ok();
  }

  /// Erase-one-at-a-time pass over any vector member of the sketch.
  template <typename T>
  bool drop_elements(CaseSketch& s, std::vector<T> CaseSketch::* member,
                     std::size_t keep_at_least = 0) {
    bool changed = false;
    auto& v = s.*member;
    for (std::size_t i = v.size(); i-- > 0 && v.size() > keep_at_least;) {
      CaseSketch candidate = s;
      auto& cv = candidate.*member;
      cv.erase(cv.begin() + static_cast<std::ptrdiff_t>(i));
      if (fails(candidate)) {
        s = std::move(candidate);
        changed = true;
      }
    }
    return changed;
  }

  bool bypass_gates(CaseSketch& s) {
    bool changed = false;
    for (std::size_t i = s.gates.size(); i-- > 0;) {
      const SketchGate& g = s.gates[i];
      if (g.type == netlist::GateType::Buf && g.fanins.size() == 1) continue;
      CaseSketch candidate = s;
      candidate.gates[i].type = netlist::GateType::Buf;
      candidate.gates[i].fanins.resize(1);
      if (fails(candidate)) {
        s = std::move(candidate);
        changed = true;
      }
    }
    return changed;
  }

  /// Deletes a gate and rewires everything that referenced it to the
  /// gate's first fanin — the reduction that collapses BUF chains (and
  /// whole subtrees) which per-gate deletion alone can never remove,
  /// because every interior gate stays referenced by its successor.
  bool splice_gates(CaseSketch& s) {
    bool changed = false;
    for (std::size_t i = s.gates.size(); i-- > 0;) {
      CaseSketch candidate = s;
      const std::string name = candidate.gates[i].name;
      const std::string repl = candidate.gates[i].fanins.at(0);
      candidate.gates.erase(candidate.gates.begin() +
                            static_cast<std::ptrdiff_t>(i));
      auto rewire = [&](std::string& ref) {
        if (ref == name) ref = repl;
      };
      for (SketchGate& g : candidate.gates) {
        for (std::string& f : g.fanins) rewire(f);
      }
      for (std::string& o : candidate.outputs) rewire(o);
      for (SaSpec& f : candidate.sa) rewire(f.net);
      for (BrSpec& f : candidate.br) {
        rewire(f.a);
        rewire(f.b);
      }
      if (fails(candidate)) {
        s = std::move(candidate);
        changed = true;
      }
    }
    return changed;
  }

  /// Removes logic nothing depends on: gates outside the reverse cone of
  /// the POs and fault sites, then inputs with no remaining reference.
  bool dead_sweep(CaseSketch& s) {
    std::unordered_set<std::string> live;
    for (const std::string& name : s.outputs) live.insert(name);
    for (const SaSpec& f : s.sa) {
      live.insert(f.net);
      if (f.has_branch) live.insert(f.branch_gate);
    }
    for (const BrSpec& f : s.br) {
      live.insert(f.a);
      live.insert(f.b);
    }
    // Gates are topologically ordered, so one reverse pass closes the cone.
    for (std::size_t i = s.gates.size(); i-- > 0;) {
      if (!live.count(s.gates[i].name)) continue;
      for (const std::string& f : s.gates[i].fanins) live.insert(f);
    }
    CaseSketch candidate = s;
    std::erase_if(candidate.gates,
                  [&](const SketchGate& g) { return !live.count(g.name); });
    std::unordered_set<std::string> referenced;
    for (const SketchGate& g : candidate.gates) {
      for (const std::string& f : g.fanins) referenced.insert(f);
    }
    for (const std::string& name : candidate.outputs) referenced.insert(name);
    for (const std::string& name : live) referenced.insert(name);
    std::erase_if(candidate.inputs, [&](const std::string& name) {
      return !referenced.count(name);
    });
    if (candidate.gates.size() == s.gates.size() &&
        candidate.inputs.size() == s.inputs.size()) {
      return false;
    }
    if (!fails(candidate)) return false;
    s = std::move(candidate);
    return true;
  }
};

}  // namespace

ShrinkResult shrink_case(const FuzzCase& failing, const OracleConfig& config,
                         const OracleResult& original,
                         std::size_t max_oracle_runs) {
  // Only the arms that actually reported something need to stay on: the
  // preserved discrepancy lives there, and the store arm in particular
  // costs three sweeps per probe.
  OracleConfig shrink_config = config;
  bool parallel_hit = false, store_hit = false, ndetect_hit = false;
  for (const Discrepancy& d : original.discrepancies) {
    if (d.oracle.rfind("parallel.", 0) == 0) parallel_hit = true;
    if (d.oracle.rfind("store.", 0) == 0) store_hit = true;
    if (d.oracle.rfind("ndetect.", 0) == 0) ndetect_hit = true;
  }
  shrink_config.check_parallel = config.check_parallel && parallel_hit;
  shrink_config.check_store = config.check_store && store_hit;
  shrink_config.check_ndetect = config.check_ndetect && ndetect_hit;

  Shrinker sh{shrink_config, failing.case_seed, failing.shape,
              max_oracle_runs};
  CaseSketch sketch = sketch_from_case(failing);

  bool changed = true;
  while (changed && sh.runs < max_oracle_runs) {
    changed = false;
    changed |= sh.drop_elements(sketch, &CaseSketch::sa);
    changed |= sh.drop_elements(sketch, &CaseSketch::br);
    changed |= sh.drop_elements(sketch, &CaseSketch::outputs, 1);
    changed |= sh.splice_gates(sketch);
    changed |= sh.bypass_gates(sketch);
    changed |= sh.drop_elements(sketch, &CaseSketch::gates);
    changed |= sh.dead_sweep(sketch);
  }

  ShrinkResult result{sketch,
                      *build_case(sketch, failing.case_seed, failing.shape),
                      sh.runs,
                      failing.circuit.num_gates(),
                      0,
                      failing.sa_faults.size() + failing.bridges.size(),
                      0};
  result.gates_after = result.reduced.circuit.num_gates();
  result.faults_after =
      result.reduced.sa_faults.size() + result.reduced.bridges.size();
  return result;
}

}  // namespace dp::verify
