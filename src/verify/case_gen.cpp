#include "verify/case_gen.hpp"

#include <algorithm>
#include <random>

#include "netlist/structure.hpp"

namespace dp::verify {

namespace {

/// splitmix64 finalizer: decorrelates consecutive campaign indices.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform draw in [lo, hi] (inclusive), tolerant of lo == hi.
int draw(std::mt19937_64& rng, int lo, int hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<int>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
}

/// Keeps a random sample of at most `keep` elements, preserving order
/// (deterministic reservoir-free variant: shuffle indices, sort kept).
template <typename T>
void sample_in_place(std::vector<T>& v, std::size_t keep,
                     std::mt19937_64& rng) {
  if (v.size() <= keep) return;
  std::vector<std::size_t> idx(v.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::shuffle(idx.begin(), idx.end(), rng);
  idx.resize(keep);
  std::sort(idx.begin(), idx.end());
  std::vector<T> kept;
  kept.reserve(keep);
  for (std::size_t i : idx) kept.push_back(v[i]);
  v = std::move(kept);
}

}  // namespace

std::uint64_t derive_case_seed(std::uint64_t campaign_seed,
                               std::uint64_t index) {
  return mix(campaign_seed ^ mix(index + 1));
}

FuzzCase make_case(const CaseConfig& config, std::uint64_t index) {
  return make_case_from_seed(config, derive_case_seed(config.seed, index));
}

FuzzCase make_case_from_seed(const CaseConfig& config,
                             std::uint64_t case_seed) {
  std::mt19937_64 rng(case_seed);
  const auto& shapes = config.shapes.empty() ? netlist::all_circuit_shapes()
                                             : config.shapes;
  const netlist::CircuitShape shape = shapes[rng() % shapes.size()];
  const int num_inputs = draw(rng, config.min_inputs, config.max_inputs);
  const int num_gates = draw(rng, config.min_gates, config.max_gates);

  FuzzCase fc(netlist::make_random_circuit(rng(), num_inputs, num_gates,
                                           config.num_outputs, shape));
  fc.case_seed = case_seed;
  fc.shape = shape;

  fc.sa_faults = fault::collapse_checkpoint_faults(fc.circuit);
  sample_in_place(fc.sa_faults, config.max_sa_faults, rng);

  if (config.include_bridging) {
    const netlist::Structure structure(fc.circuit);
    const fault::BridgeType type =
        (rng() & 1) ? fault::BridgeType::Or : fault::BridgeType::And;
    fc.bridges = fault::enumerate_nfbfs(fc.circuit, structure, type);
    sample_in_place(fc.bridges, config.max_bridges, rng);
  }
  return fc;
}

}  // namespace dp::verify
