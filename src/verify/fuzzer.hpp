// Campaign driver for the differential fuzzer: generate cases, run the
// oracle matrix, shrink failures, emit reproducers and a dp.fuzzreport.v1
// JSON document, and prove the whole pipeline works by mutation testing
// it against intentionally perturbed engine views.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "verify/oracle.hpp"
#include "verify/shrink.hpp"

namespace dp::verify {

inline constexpr const char* kFuzzReportSchema = "dp.fuzzreport.v1";

struct CampaignConfig {
  CaseConfig cases;
  OracleConfig oracle;
  std::size_t num_cases = 100;
  bool shrink = true;
  /// Directory for reproducer files ("" = do not write any).
  std::string repro_dir;
  /// Campaign aborts after this many failing cases (0 = unbounded).
  std::size_t max_failures = 5;
  /// Progress lines ("case 12/500 ok ...") go here when set.
  std::ostream* progress = nullptr;
};

/// One failing case, as reported: the original discrepancies plus the
/// shrunk reproducer.
struct CaseFailure {
  std::uint64_t case_index = 0;
  std::uint64_t case_seed = 0;
  std::string shape;
  std::vector<Discrepancy> discrepancies;  ///< from the original case
  std::size_t shrunk_gates = 0;
  std::size_t shrunk_faults = 0;
  std::size_t shrink_oracle_runs = 0;
  std::string shrunk_bench;       ///< the minimized circuit, .bench text
  std::string repro_bench_path;   ///< "" when repro_dir unset
  std::string repro_json_path;
};

struct CampaignResult {
  std::uint64_t seed = 0;
  std::size_t num_cases = 0;  ///< requested
  std::size_t cases_run = 0;
  std::size_t faults_checked = 0;
  std::size_t vectors_checked = 0;
  std::size_t discrepancy_count = 0;  ///< across all failing cases
  std::size_t jobs = 0;
  bool checked_parallel = false;
  bool checked_store = false;
  bool checked_hybrid = false;
  bool checked_ndetect = false;
  double wall_seconds = 0.0;
  std::vector<CaseFailure> failures;

  bool ok() const { return failures.empty(); }
};

CampaignResult run_campaign(const CampaignConfig& config);

/// The dp.fuzzreport.v1 document.
obs::JsonValue report_to_json(const CampaignResult& result);

/// report_to_json + crash-safe write; false (message in *error) on I/O
/// failure.
bool write_report(const std::string& path, const CampaignResult& result,
                  std::string* error = nullptr);

/// Mutation self-test: for every Mutation except None, runs a small
/// fixed-seed campaign against the perturbed engine view and requires
/// (a) the oracle to report the injected bug, and (b) the shrinker to
/// minimize the failing case to at most `max_shrunk_gates` gates.
/// Returns true when every mutation is caught; diagnostics go to `log`.
bool run_self_test(const CampaignConfig& base, std::ostream& log,
                   std::size_t max_shrunk_gates = 10);

}  // namespace dp::verify
