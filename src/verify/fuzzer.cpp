#include "verify/fuzzer.hpp"

#include <chrono>
#include <filesystem>
#include <ostream>
#include <sstream>

#include "netlist/bench_io.hpp"

namespace dp::verify {

namespace {

/// Self-contained reproducer document: everything needed to regenerate
/// and re-fail the case without the campaign that found it.
obs::JsonValue repro_to_json(const FuzzCase& original,
                             const CampaignConfig& config,
                             const CaseFailure& failure,
                             const ShrinkResult& shrunk) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = "dp.fuzzrepro.v1";
  doc["case_seed"] = failure.case_seed;
  doc["shape"] = std::string(netlist::to_string(original.shape));
  obs::JsonValue gen = obs::JsonValue::object();
  gen["min_inputs"] = config.cases.min_inputs;
  gen["max_inputs"] = config.cases.max_inputs;
  gen["min_gates"] = config.cases.min_gates;
  gen["max_gates"] = config.cases.max_gates;
  gen["num_outputs"] = config.cases.num_outputs;
  gen["max_sa_faults"] = config.cases.max_sa_faults;
  gen["max_bridges"] = config.cases.max_bridges;
  gen["include_bridging"] = config.cases.include_bridging;
  doc["generator"] = std::move(gen);
  obs::JsonValue engine = obs::JsonValue::object();
  engine["jobs"] = config.oracle.jobs;
  engine["check_parallel"] = config.oracle.check_parallel;
  engine["check_store"] = config.oracle.check_store;
  engine["check_hybrid"] = config.oracle.check_hybrid;
  engine["check_ndetect"] = config.oracle.check_ndetect;
  engine["mutation"] = to_string(config.oracle.mutate);
  doc["engine"] = std::move(engine);

  obs::JsonValue faults = obs::JsonValue::array();
  for (const fault::StuckAtFault& f : shrunk.reduced.sa_faults) {
    faults.push_back(describe(f, shrunk.reduced.circuit));
  }
  for (const fault::BridgingFault& f : shrunk.reduced.bridges) {
    faults.push_back(describe(f, shrunk.reduced.circuit));
  }
  doc["shrunk_faults"] = std::move(faults);
  doc["shrunk_bench"] = failure.shrunk_bench;

  obs::JsonValue ds = obs::JsonValue::array();
  for (const Discrepancy& d : failure.discrepancies) {
    obs::JsonValue rec = obs::JsonValue::object();
    rec["oracle"] = d.oracle;
    rec["subject"] = d.subject;
    rec["detail"] = d.detail;
    ds.push_back(std::move(rec));
  }
  doc["discrepancies"] = std::move(ds);
  return doc;
}

CaseFailure make_failure(std::uint64_t index, const FuzzCase& fc,
                         const OracleResult& oracle_result,
                         const CampaignConfig& config) {
  CaseFailure failure;
  failure.case_index = index;
  failure.case_seed = fc.case_seed;
  failure.shape = std::string(netlist::to_string(fc.shape));
  failure.discrepancies = oracle_result.discrepancies;

  ShrinkResult shrunk{sketch_from_case(fc), fc, 0, fc.circuit.num_gates(),
                      fc.circuit.num_gates(),
                      fc.sa_faults.size() + fc.bridges.size(),
                      fc.sa_faults.size() + fc.bridges.size()};
  if (config.shrink) {
    shrunk = shrink_case(fc, config.oracle, oracle_result);
  }
  failure.shrunk_gates = shrunk.gates_after;
  failure.shrunk_faults = shrunk.faults_after;
  failure.shrink_oracle_runs = shrunk.oracle_runs;
  failure.shrunk_bench = netlist::write_bench_string(shrunk.reduced.circuit);

  if (!config.repro_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config.repro_dir, ec);
    std::ostringstream stem;
    stem << config.repro_dir << "/case_" << std::hex << fc.case_seed;
    failure.repro_bench_path = stem.str() + ".bench";
    failure.repro_json_path = stem.str() + ".repro.json";
    obs::atomic_write_file(failure.repro_bench_path, failure.shrunk_bench);
    obs::write_json_file_atomic(
        failure.repro_json_path,
        repro_to_json(fc, config, failure, shrunk));
  }
  return failure;
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  CampaignResult result;
  result.seed = config.cases.seed;
  result.num_cases = config.num_cases;
  result.jobs = config.oracle.jobs;
  result.checked_parallel = config.oracle.check_parallel;
  result.checked_store =
      config.oracle.check_store && !config.oracle.scratch_dir.empty();
  result.checked_hybrid = config.oracle.check_hybrid;
  result.checked_ndetect = config.oracle.check_ndetect;

  for (std::uint64_t i = 0; i < config.num_cases; ++i) {
    const FuzzCase fc = make_case(config.cases, i);
    const OracleResult oracle_result = run_oracles(fc, config.oracle);
    ++result.cases_run;
    result.faults_checked += oracle_result.faults_checked;
    result.vectors_checked += oracle_result.vectors_checked;
    if (config.progress) {
      *config.progress << "[dpfuzz] case " << (i + 1) << "/"
                       << config.num_cases << " seed " << std::hex
                       << fc.case_seed << std::dec << " shape "
                       << netlist::to_string(fc.shape) << " gates "
                       << fc.circuit.num_gates() << ": "
                       << (oracle_result.ok()
                               ? "ok"
                               : std::to_string(
                                     oracle_result.discrepancies.size()) +
                                     " DISCREPANCIES")
                       << "\n";
    }
    if (oracle_result.ok()) continue;

    result.discrepancy_count += oracle_result.discrepancies.size();
    result.failures.push_back(make_failure(i, fc, oracle_result, config));
    if (config.progress) {
      const CaseFailure& f = result.failures.back();
      *config.progress << "[dpfuzz]   shrunk to " << f.shrunk_gates
                       << " gates / " << f.shrunk_faults << " faults in "
                       << f.shrink_oracle_runs << " oracle runs\n";
    }
    if (config.max_failures && result.failures.size() >= config.max_failures) {
      break;
    }
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

obs::JsonValue report_to_json(const CampaignResult& result) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = kFuzzReportSchema;
  doc["tool"] = "dpfuzz";
  doc["seed"] = result.seed;
  doc["cases"] = result.num_cases;
  doc["cases_run"] = result.cases_run;
  doc["faults_checked"] = result.faults_checked;
  doc["vectors_checked"] = result.vectors_checked;
  doc["discrepancies"] = result.discrepancy_count;
  doc["jobs"] = result.jobs;
  obs::JsonValue arms = obs::JsonValue::object();
  arms["dp_vs_sim"] = true;  // always on: it is the point
  arms["parallel"] = result.checked_parallel;
  arms["store"] = result.checked_store;
  arms["hybrid"] = result.checked_hybrid;
  arms["ndetect"] = result.checked_ndetect;
  doc["oracles"] = std::move(arms);
  doc["wall_seconds"] = result.wall_seconds;

  obs::JsonValue failures = obs::JsonValue::array();
  for (const CaseFailure& f : result.failures) {
    obs::JsonValue rec = obs::JsonValue::object();
    rec["case_index"] = f.case_index;
    rec["case_seed"] = f.case_seed;
    rec["shape"] = f.shape;
    obs::JsonValue ds = obs::JsonValue::array();
    for (const Discrepancy& d : f.discrepancies) {
      obs::JsonValue dr = obs::JsonValue::object();
      dr["oracle"] = d.oracle;
      dr["subject"] = d.subject;
      dr["detail"] = d.detail;
      ds.push_back(std::move(dr));
    }
    rec["discrepancies"] = std::move(ds);
    obs::JsonValue shrunk = obs::JsonValue::object();
    shrunk["gates"] = f.shrunk_gates;
    shrunk["faults"] = f.shrunk_faults;
    shrunk["oracle_runs"] = f.shrink_oracle_runs;
    shrunk["bench"] = f.shrunk_bench;
    if (!f.repro_bench_path.empty()) {
      shrunk["repro_bench"] = f.repro_bench_path;
      shrunk["repro_json"] = f.repro_json_path;
    }
    rec["shrunk"] = std::move(shrunk);
    failures.push_back(std::move(rec));
  }
  doc["failures"] = std::move(failures);
  return doc;
}

bool write_report(const std::string& path, const CampaignResult& result,
                  std::string* error) {
  return obs::write_json_file_atomic(path, report_to_json(result), error);
}

bool run_self_test(const CampaignConfig& base, std::ostream& log,
                   std::size_t max_shrunk_gates) {
  bool all_ok = true;
  for (Mutation m :
       {Mutation::InflateDetectability, Mutation::DropTestVector,
        Mutation::FlipSyndrome, Mutation::PerturbParallelMerge,
        Mutation::PerturbNDetectCount}) {
    OracleConfig oracle = base.oracle;
    oracle.mutate = m;
    if (m == Mutation::PerturbParallelMerge && !oracle.check_parallel) {
      log << "[self-test] " << to_string(m)
          << ": SKIP (parallel arm disabled)\n";
      continue;
    }
    if (m == Mutation::PerturbNDetectCount && !oracle.check_ndetect) {
      log << "[self-test] " << to_string(m)
          << ": SKIP (ndetect arm disabled)\n";
      continue;
    }
    // The store and hybrid arms are orthogonal to every injected
    // perturbation (both compare against unperturbed serial results);
    // keep the self-test lean. The n-detect arm only needs to run when
    // its own count is the perturbed quantity.
    oracle.check_store = false;
    oracle.check_hybrid = false;
    oracle.check_ndetect = m == Mutation::PerturbNDetectCount;

    // Any case with at least one stuck-at fault trips every mutation
    // (the first fault / last gate is perturbed); probe a few indices in
    // case index 0 drew an empty fault sample.
    bool caught = false;
    for (std::uint64_t index = 0; index < 4 && !caught; ++index) {
      const FuzzCase fc = make_case(base.cases, index);
      if (fc.sa_faults.empty()) continue;
      const OracleResult original = run_oracles(fc, oracle);
      if (original.ok()) {
        log << "[self-test] " << to_string(m) << ": NOT CAUGHT on case "
            << index << " (seed " << std::hex << fc.case_seed << std::dec
            << ")\n";
        all_ok = false;
        break;
      }
      const ShrinkResult shrunk = shrink_case(fc, oracle, original);
      const OracleResult still = run_oracles(shrunk.reduced, oracle);
      if (still.ok()) {
        log << "[self-test] " << to_string(m)
            << ": shrink LOST the failure\n";
        all_ok = false;
      } else if (shrunk.gates_after > max_shrunk_gates) {
        log << "[self-test] " << to_string(m) << ": shrunk to "
            << shrunk.gates_after << " gates (budget " << max_shrunk_gates
            << ")\n";
        all_ok = false;
      } else {
        log << "[self-test] " << to_string(m) << ": caught ("
            << original.discrepancies.size() << " discrepancies), shrunk "
            << shrunk.gates_before << " -> " << shrunk.gates_after
            << " gates, " << shrunk.faults_before << " -> "
            << shrunk.faults_after << " faults in " << shrunk.oracle_runs
            << " oracle runs\n";
      }
      caught = true;
    }
    if (!caught && all_ok) {
      log << "[self-test] " << to_string(m)
          << ": no case with stuck-at faults in probe window\n";
      all_ok = false;
    }
  }
  log << "[self-test] " << (all_ok ? "PASS" : "FAIL") << "\n";
  return all_ok;
}

}  // namespace dp::verify
