#include "verify/oracle.hpp"

#include <cmath>
#include <filesystem>
#include <sstream>

#include <set>

#include "analysis/hybrid.hpp"
#include "analysis/ndetect.hpp"
#include "analysis/profile_io.hpp"
#include "analysis/profiles.hpp"
#include "dp/engine.hpp"
#include "dp/parallel_engine.hpp"
#include "netlist/structure.hpp"
#include "sim/fault_sim.hpp"
#include "sim/wide_sim.hpp"
#include "store/artifact_store.hpp"

namespace dp::verify {

const char* to_string(Mutation m) {
  switch (m) {
    case Mutation::None: return "none";
    case Mutation::InflateDetectability: return "inflate_detectability";
    case Mutation::DropTestVector: return "drop_test_vector";
    case Mutation::FlipSyndrome: return "flip_syndrome";
    case Mutation::PerturbParallelMerge: return "perturb_parallel_merge";
    case Mutation::PerturbNDetectCount: return "perturb_ndetect_count";
  }
  return "none";
}

namespace {

struct Recorder {
  OracleResult* out;

  void mismatch(const std::string& oracle, const std::string& subject,
                const std::string& detail) {
    out->discrepancies.push_back({oracle, subject, detail});
  }

  template <typename T>
  void expect_eq(const std::string& oracle, const std::string& subject,
                 T expected, T got) {
    if (expected == got) return;
    std::ostringstream os;
    os.precision(17);
    os << "expected " << expected << ", got " << got;
    mismatch(oracle, subject, os.str());
  }
};

/// The oracle's view of one serial-DP fault analysis, after the optional
/// self-test mutation has been applied. Membership is a function so
/// DropTestVector can lie about exactly one vector.
struct DpView {
  double detectability = 0.0;
  bool detectable = false;
  const core::FaultAnalysis* analysis = nullptr;
  std::uint64_t dropped_vector = ~0ull;  ///< membership lies here

  bool member(const std::vector<bool>& point, std::uint64_t v) const {
    if (v == dropped_vector) return false;
    return analysis->test_set.eval(point);
  }
};

/// `mutate_pending` is consumed when the perturbation lands on this
/// fault; DropTestVector needs a fault with a non-empty test set and
/// stays pending until it sees one.
DpView make_view(const core::FaultAnalysis& a, bool* mutate_pending,
                 Mutation mutate, std::size_t num_inputs) {
  DpView view;
  view.analysis = &a;
  view.detectability = a.detectability;
  view.detectable = a.detectable;
  if (!mutate_pending || !*mutate_pending) return view;
  const double one_vector = std::ldexp(1.0, -static_cast<int>(num_inputs));
  if (mutate == Mutation::InflateDetectability) {
    view.detectability += one_vector;
    view.detectable = true;
    *mutate_pending = false;
  } else if (mutate == Mutation::DropTestVector) {
    // Lie about the lowest vector the true test set contains.
    const std::uint64_t limit = 1ull << num_inputs;
    for (std::uint64_t v = 0; v < limit; ++v) {
      std::vector<bool> point(num_inputs);
      for (std::size_t i = 0; i < num_inputs; ++i) point[i] = (v >> i) & 1;
      if (a.test_set.eval(point)) {
        view.dropped_vector = v;
        *mutate_pending = false;
        break;
      }
    }
  }
  return view;
}

/// dp_vs_sim arm for one fault (stuck-at or bridging).
template <typename Fault>
void check_fault(const Fault& f, bool* mutate_pending, const FuzzCase& fc,
                 const core::DifferencePropagator& dp,
                 const sim::FaultSimulator& fs, Mutation mutate,
                 Recorder& rec, OracleResult& result,
                 core::FaultAnalysis& serial_out) {
  const std::string what = describe(f, fc.circuit);
  serial_out = dp.analyze(f);
  const std::size_t n = fc.circuit.num_inputs();
  const DpView view = make_view(serial_out, mutate_pending, mutate, n);

  const double sim_det = fs.exhaustive_detectability(f);
  rec.expect_eq("dp_vs_sim.detectability", what, sim_det, view.detectability);
  rec.expect_eq("dp_vs_sim.detectable", what, sim_det > 0.0, view.detectable);

  const auto bitmap = fs.exhaustive_test_set(f);
  for (std::uint64_t v = 0; v < bitmap.size(); ++v) {
    std::vector<bool> point(n);
    for (std::size_t i = 0; i < n; ++i) point[i] = (v >> i) & 1;
    if (view.member(point, v) != bitmap[v]) {
      rec.mismatch("dp_vs_sim.test_set", what,
                   "membership differs at vector " + std::to_string(v));
    }
  }
  result.vectors_checked += bitmap.size();
  ++result.faults_checked;
}

/// Parallel arm: one merged analysis against its serial counterpart.
/// `oracle` names the engine variant ("parallel" or "parallel_unshared")
/// so a sharing-mode-specific divergence is attributable from the report.
void check_parallel_fault(const std::string& oracle, const std::string& what,
                          const core::FaultAnalysis& serial,
                          const core::FaultAnalysis& par, bool first_fault,
                          Mutation mutate, std::size_t num_inputs,
                          Recorder& rec) {
  double par_det = par.detectability;
  if (first_fault && mutate == Mutation::PerturbParallelMerge) {
    par_det += std::ldexp(1.0, -static_cast<int>(num_inputs));
  }
  rec.expect_eq(oracle + ".detectability", what, serial.detectability,
                par_det);
  rec.expect_eq(oracle + ".detectable", what, serial.detectable,
                par.detectable);
  rec.expect_eq(oracle + ".upper_bound", what, serial.upper_bound,
                par.upper_bound);
  rec.expect_eq(oracle + ".adherence", what, serial.adherence, par.adherence);
  rec.expect_eq(oracle + ".pos_observable", what, serial.pos_observable,
                par.pos_observable);
  rec.expect_eq(oracle + ".pos_fed", what, serial.pos_fed, par.pos_fed);
  rec.expect_eq(oracle + ".bridge_stuck_at", what, serial.bridge_stuck_at,
                par.bridge_stuck_at);
  rec.expect_eq(oracle + ".test_set_size", what,
                serial.test_set.sat_count(num_inputs),
                par.test_set.sat_count(num_inputs));
}

/// Field-exact FaultRecord comparison for the store arm.
void check_records(const std::string& oracle,
                   const std::vector<analysis::FaultRecord>& expected,
                   const std::vector<analysis::FaultRecord>& got,
                   Recorder& rec) {
  if (expected.size() != got.size()) {
    rec.expect_eq(oracle + ".fault_count", "profile", expected.size(),
                  got.size());
    return;
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const auto& e = expected[i];
    const auto& g = got[i];
    const std::string subject = "fault record " + std::to_string(i);
    rec.expect_eq(oracle + ".detectable", subject, e.detectable, g.detectable);
    rec.expect_eq(oracle + ".detectability", subject, e.detectability,
                  g.detectability);
    rec.expect_eq(oracle + ".upper_bound", subject, e.upper_bound,
                  g.upper_bound);
    rec.expect_eq(oracle + ".adherence", subject, e.adherence, g.adherence);
    rec.expect_eq(oracle + ".pos_fed", subject, e.pos_fed, g.pos_fed);
    rec.expect_eq(oracle + ".pos_observable", subject, e.pos_observable,
                  g.pos_observable);
    rec.expect_eq(oracle + ".max_levels_to_po", subject, e.max_levels_to_po,
                  g.max_levels_to_po);
    rec.expect_eq(oracle + ".level_from_pi", subject, e.level_from_pi,
                  g.level_from_pi);
    rec.expect_eq(oracle + ".branch_site", subject, e.branch_site,
                  g.branch_site);
  }
}

/// Cold sweep vs profile-cache hit vs checkpoint resume, in a throwaway
/// per-case store directory.
void run_store_arm(const FuzzCase& fc, const std::string& scratch_root,
                   Recorder& rec) {
  namespace fs = std::filesystem;
  std::ostringstream dir;
  dir << scratch_root << "/case_" << std::hex << fc.case_seed;
  store::ArtifactStore store(dir.str());

  analysis::AnalysisOptions options;
  options.jobs = 1;
  options.persistence.store = &store;
  // Deliberately ragged batches: the last checkpoint chunk is partial for
  // most fault-set sizes, exercising the resume boundary.
  options.persistence.checkpoint_interval = 5;

  const analysis::CircuitProfile cold =
      analysis::analyze_stuck_at(fc.circuit, options);
  const analysis::CircuitProfile warm =
      analysis::analyze_stuck_at(fc.circuit, options);
  check_records("store.warm", cold.faults, warm.faults, rec);

  // Simulate an interrupted sweep: drop the finished profile, install a
  // half-done checkpoint, and require the resumed sweep to be identical.
  const std::string key =
      analysis::profile_cache_key(fc.circuit, "sa", options);
  store.remove(key, "profile");
  analysis::SweepCheckpoint ckpt;
  ckpt.key = key;
  ckpt.total_faults = cold.faults.size();
  ckpt.completed.assign(cold.faults.begin(),
                        cold.faults.begin() +
                            static_cast<std::ptrdiff_t>(cold.faults.size() / 2));
  store.store_document(key, "ckpt", analysis::checkpoint_to_json(ckpt));
  const analysis::CircuitProfile resumed =
      analysis::analyze_stuck_at(fc.circuit, options);
  check_records("store.resumed", cold.faults, resumed.faults, rec);

  std::error_code ec;
  fs::remove_all(dir.str(), ec);  // best effort; scratch root is temp
}

}  // namespace

OracleResult run_oracles(const FuzzCase& fc, const OracleConfig& config) {
  OracleResult result;
  Recorder rec{&result};

  try {
    const netlist::Structure structure(fc.circuit);
    bdd::Manager manager(0);
    const core::GoodFunctions good(manager, fc.circuit);
    const core::DifferencePropagator dp(good, structure);
    const sim::FaultSimulator fs(fc.circuit);
    const std::size_t n = fc.circuit.num_inputs();

    // ---- syndromes (every net, exact) ----------------------------------
    netlist::NetId last_gate = netlist::kInvalidNet;
    for (netlist::NetId id = 0; id < fc.circuit.num_nets(); ++id) {
      if (fc.circuit.type(id) != netlist::GateType::Input) last_gate = id;
    }
    for (netlist::NetId id = 0; id < fc.circuit.num_nets(); ++id) {
      double dp_syn = good.syndrome(id);
      if (config.mutate == Mutation::FlipSyndrome && id == last_gate) {
        dp_syn += std::ldexp(1.0, -static_cast<int>(n));
      }
      rec.expect_eq("dp_vs_sim.syndrome", fc.circuit.net_name(id),
                    fs.exhaustive_syndrome(id), dp_syn);
    }

    // ---- serial DP vs exhaustive simulation ----------------------------
    std::vector<core::FaultAnalysis> serial_sa(fc.sa_faults.size());
    std::vector<core::FaultAnalysis> serial_br(fc.bridges.size());
    bool mutate_pending = config.mutate == Mutation::InflateDetectability ||
                          config.mutate == Mutation::DropTestVector;
    for (std::size_t i = 0; i < fc.sa_faults.size(); ++i) {
      check_fault(fc.sa_faults[i], &mutate_pending, fc, dp, fs,
                  config.mutate, rec, result, serial_sa[i]);
    }
    for (std::size_t i = 0; i < fc.bridges.size(); ++i) {
      check_fault(fc.bridges[i], &mutate_pending, fc, dp, fs, config.mutate,
                  rec, result, serial_br[i]);
    }

    // ---- parallel engine vs serial -------------------------------------
    if (config.check_parallel) {
      core::ParallelEngine::Options par_options;
      par_options.jobs = config.jobs;
      par_options.shared_forest = config.shared_forest;
      core::ParallelEngine engine(fc.circuit, structure, par_options);
      const auto par_sa = engine.analyze_all(fc.sa_faults);
      for (std::size_t i = 0; i < fc.sa_faults.size(); ++i) {
        check_parallel_fault("parallel",
                             describe(fc.sa_faults[i], fc.circuit),
                             serial_sa[i], par_sa[i], i == 0, config.mutate,
                             n, rec);
      }
      const auto par_br = engine.analyze_all(fc.bridges);
      for (std::size_t i = 0; i < fc.bridges.size(); ++i) {
        check_parallel_fault("parallel",
                             describe(fc.bridges[i], fc.circuit),
                             serial_br[i], par_br[i], false, config.mutate,
                             n, rec);
      }

      // Sharing A/B: the opposite sharing mode must also match serial, so
      // a divergence between frozen-adoption and per-worker builds cannot
      // hide behind whichever mode the primary arm happened to use. The
      // injected-mutation hook stays on the primary arm only: this arm is
      // a pure engine-vs-engine check.
      if (config.check_shared_forest) {
        core::ParallelEngine::Options ab_options;
        ab_options.jobs = config.jobs;
        ab_options.shared_forest = !config.shared_forest;
        core::ParallelEngine ab_engine(fc.circuit, structure, ab_options);
        const std::string ab_oracle =
            ab_options.shared_forest ? "parallel_shared" : "parallel_unshared";
        const auto ab_sa = ab_engine.analyze_all(fc.sa_faults);
        for (std::size_t i = 0; i < fc.sa_faults.size(); ++i) {
          check_parallel_fault(ab_oracle,
                               describe(fc.sa_faults[i], fc.circuit),
                               serial_sa[i], ab_sa[i], false, Mutation::None,
                               n, rec);
        }
        const auto ab_br = ab_engine.analyze_all(fc.bridges);
        for (std::size_t i = 0; i < fc.bridges.size(); ++i) {
          check_parallel_fault(ab_oracle,
                               describe(fc.bridges[i], fc.circuit),
                               serial_br[i], ab_br[i], false, Mutation::None,
                               n, rec);
        }
      }
    }

    // ---- hybrid prefilter + DP remainder vs pure serial DP -------------
    if (config.check_hybrid) {
      analysis::AnalysisOptions hybrid_analysis;
      hybrid_analysis.jobs = config.jobs;
      analysis::HybridOptions hybrid_options;
      hybrid_options.prefilter_patterns = config.hybrid_prefilter_patterns;
      const analysis::HybridProfile hp = analysis::analyze_hybrid(
          fc.circuit, fc.sa_faults, hybrid_analysis, hybrid_options);
      for (std::size_t i = 0; i < fc.sa_faults.size(); ++i) {
        const std::string what = describe(fc.sa_faults[i], fc.circuit);
        const analysis::HybridFaultRecord& hr = hp.faults[i];
        rec.expect_eq("hybrid.partition", what, serial_sa[i].detectable,
                      hr.detectable);
        if (hr.resolved_by == analysis::ResolvedBy::Prefilter) {
          if (hr.detection_count == 0) {
            rec.mismatch("hybrid.witness", what,
                         "prefilter-resolved fault has zero detections");
          }
        } else {
          rec.expect_eq("hybrid.detectability", what,
                        serial_sa[i].detectability, hr.dp.detectability);
          rec.expect_eq("hybrid.upper_bound", what, serial_sa[i].upper_bound,
                        hr.dp.upper_bound);
          rec.expect_eq("hybrid.adherence", what, serial_sa[i].adherence,
                        hr.dp.adherence);
          rec.expect_eq("hybrid.pos_fed", what, serial_sa[i].pos_fed,
                        hr.dp.pos_fed);
          rec.expect_eq("hybrid.pos_observable", what,
                        serial_sa[i].pos_observable, hr.dp.pos_observable);
        }
      }
    }

    // ---- n-detect analytics vs exhaustive simulation -------------------
    if (config.check_ndetect && !fc.sa_faults.empty()) {
      // A deterministic per-case vector sample (splitmix64 over the case
      // seed; duplicates dropped), topped up to n = 2 so minted witnesses
      // are cross-checked too. Both sides count the same distinct vector
      // set, so every comparison is an exact integer ==.
      std::vector<std::vector<bool>> vectors;
      {
        std::set<std::vector<bool>> seen;
        std::uint64_t x = fc.case_seed ^ 0x6e64657465637400ull;
        for (std::size_t k = 0; k < 8; ++k) {
          x += 0x9e3779b97f4a7c15ull;
          std::uint64_t z = x;
          z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
          z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
          z ^= z >> 31;
          std::vector<bool> v(n);
          for (std::size_t i = 0; i < n; ++i) v[i] = (z >> i) & 1;
          if (seen.insert(v).second) vectors.push_back(std::move(v));
        }
      }
      const std::size_t ndetect_n = 2;
      analysis::NDetectOptions nopt;
      nopt.jobs = config.jobs == 0 ? 1 : config.jobs;
      analysis::NDetectAnalyzer analyzer(fc.circuit, fc.sa_faults, nopt);
      analyzer.top_up(vectors, ndetect_n);
      std::vector<std::uint64_t> counts = analyzer.detection_counts(vectors);
      if (config.mutate == Mutation::PerturbNDetectCount && !counts.empty()) {
        counts[0] += 1;
      }

      const sim::WideFaultSimulator wide(fc.circuit);
      sim::WideFaultSimulator::Options wopt;
      wopt.drop_detected = false;
      const auto grade = wide.grade_vectors(fc.sa_faults, vectors, wopt);
      for (std::size_t i = 0; i < fc.sa_faults.size(); ++i) {
        const std::string what = describe(fc.sa_faults[i], fc.circuit);
        rec.expect_eq("ndetect.count", what, grade.detection_counts[i],
                      counts[i]);
        if (counts[i] < analyzer.quota(i, ndetect_n)) {
          rec.mismatch("ndetect.quota", what,
                       "top-up left " + std::to_string(counts[i]) +
                           " detections, quota " +
                           std::to_string(analyzer.quota(i, ndetect_n)));
        }
      }
      result.vectors_checked += vectors.size() * fc.sa_faults.size();
    }

    // ---- artifact store: cold vs warm vs resumed -----------------------
    if (config.check_store && !config.scratch_dir.empty()) {
      run_store_arm(fc, config.scratch_dir, rec);
    }
  } catch (const std::exception& e) {
    rec.mismatch("exception", "case", e.what());
  }
  return result;
}

}  // namespace dp::verify
