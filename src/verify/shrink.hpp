// Greedy failing-case minimization (delta debugging, one-at-a-time).
//
// A failing FuzzCase is lifted into a name-based CaseSketch so structural
// edits cannot silently corrupt NetId references: every candidate
// reduction is re-built into a fresh finalized Circuit (rejecting edits
// that break validity) and re-run through the SAME oracle configuration;
// a reduction survives only while at least one discrepancy persists.
//
// Reduction passes, iterated to a fixpoint under an oracle-run budget:
//   1. drop fault specs (stuck-at, then bridging)
//   2. drop primary outputs (at least one stays)
//   3. bypass gates (replace a gate by BUF of its first fanin)
//   4. delete gates outright
//   5. dead sweep (drop logic unreachable from the POs and fault sites,
//      and inputs nothing references)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "verify/oracle.hpp"

namespace dp::verify {

struct SaSpec {
  std::string net;
  bool has_branch = false;
  std::string branch_gate;
  std::uint32_t branch_pin = 0;
  bool stuck_value = false;
};

struct BrSpec {
  std::string a;
  std::string b;
  fault::BridgeType type = fault::BridgeType::And;
};

struct SketchGate {
  std::string name;
  netlist::GateType type = netlist::GateType::Buf;
  std::vector<std::string> fanins;
};

/// Name-addressed, edit-friendly form of a FuzzCase.
struct CaseSketch {
  std::vector<std::string> inputs;
  std::vector<SketchGate> gates;  ///< topological order
  std::vector<std::string> outputs;
  std::vector<SaSpec> sa;
  std::vector<BrSpec> br;
};

CaseSketch sketch_from_case(const FuzzCase& fuzz_case);

/// Rebuilds a finalized circuit + fault lists from the sketch. Fault
/// specs invalidated by circuit edits (dangling branch pin, feedback
/// bridge) are dropped; nullopt when the circuit itself is invalid
/// (missing fanin, no PO, cyclic).
std::optional<FuzzCase> build_case(const CaseSketch& sketch,
                                   std::uint64_t case_seed,
                                   netlist::CircuitShape shape);

struct ShrinkResult {
  CaseSketch sketch;  ///< the minimized sketch
  FuzzCase reduced;   ///< built from it (still failing)
  std::size_t oracle_runs = 0;
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t faults_before = 0;
  std::size_t faults_after = 0;
};

/// Minimizes `failing` (which must fail under `config`). The oracle arms
/// that reported no discrepancy on the original case are switched off
/// during shrinking (they cannot be what is being preserved), which is
/// what keeps the store arm's triple sweep out of the hot loop.
ShrinkResult shrink_case(const FuzzCase& failing, const OracleConfig& config,
                         const OracleResult& original,
                         std::size_t max_oracle_runs = 300);

}  // namespace dp::verify
