// 64-way parallel-pattern logic simulation.
//
// Each bit lane of a 64-bit word is an independent input vector, so one
// topological sweep evaluates 64 patterns -- the classic parallel fault
// simulation substrate the paper cites as the alternative it is comparing
// against (exhaustive simulation, Hughes & McCluskey / Millman & McCluskey).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"

namespace dp::sim {

using netlist::Circuit;
using netlist::NetId;

using Word = std::uint64_t;

/// Evaluates all nets for 64 lane-packed patterns.
///
/// `values` must have size circuit.num_nets(); on entry the PI slots hold
/// the input words, on exit every net slot holds its simulated word.
/// `order` defaults to the circuit's topological order; bridging-fault
/// simulation passes a modified order (see fault_sim.cpp).
class PatternSimulator {
 public:
  explicit PatternSimulator(const Circuit& circuit);

  const Circuit& circuit() const { return circuit_; }

  /// Plain good-circuit sweep.
  void eval(std::vector<Word>& values) const;

  /// Evaluates one gate from already-computed fanin words. Exposed so the
  /// fault simulator can inject pin/stem overrides between gates.
  Word eval_gate(NetId id, const std::vector<Word>& values) const;

  /// One forced fanin pin of a gate under evaluation.
  struct PinOverride {
    std::uint32_t pin = 0;
    Word value = 0;
  };

  /// Evaluates gate `id` with the listed fanin pins replaced by forced
  /// words (branch-fault injection). The single shared implementation for
  /// every injection path, so a new gate type cannot silently diverge
  /// between them. Throws NetlistError if `id` has no fanin pins to
  /// override (Input/Const sites) or an override names a pin out of range.
  Word eval_gate_with_overrides(NetId id, const std::vector<Word>& values,
                                const PinOverride* overrides,
                                std::size_t num_overrides) const;

  /// Lane-packs an exhaustive input block: lane L of the returned word for
  /// PI index `pi` is bit `pi` of the input-vector number block*64 + L.
  static Word exhaustive_input_word(std::size_t pi, std::uint64_t block);

  /// Lanes [0, 64) valid-mask for the tail block of a 2^n sweep.
  static Word block_mask(std::uint64_t block, std::size_t num_inputs);

 private:
  const Circuit& circuit_;
};

}  // namespace dp::sim
