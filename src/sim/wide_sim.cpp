#include "sim/wide_sim.hpp"

#include <algorithm>
#include <bit>
#include <random>
#include <stdexcept>

#include "obs/span.hpp"

namespace dp::sim {

using netlist::GateType;

namespace {

inline void wide_apply(GateType base, WideWord& acc, const WideWord& b) {
  switch (base) {
    case GateType::And:
      for (std::size_t j = 0; j < kWideWords; ++j) acc.w[j] &= b.w[j];
      break;
    case GateType::Or:
      for (std::size_t j = 0; j < kWideWords; ++j) acc.w[j] |= b.w[j];
      break;
    case GateType::Xor:
      for (std::size_t j = 0; j < kWideWords; ++j) acc.w[j] ^= b.w[j];
      break;
    default:
      break;  // Buf is unary and never combines two operands
  }
}

}  // namespace

WideFaultSimulator::WideFaultSimulator(const Circuit& circuit)
    : circuit_(&circuit) {
  if (!circuit.finalized()) {
    throw netlist::NetlistError(
        "WideFaultSimulator: circuit must be finalized");
  }
  // Flatten the levelized order once: the topological order lists every
  // gate after its fanins, so a linear walk over `schedule_` is a full
  // good-circuit sweep with no per-gate indirection through the netlist.
  schedule_index_.assign(circuit.num_nets(), kNotScheduled);
  schedule_.reserve(circuit.num_nets());
  net_level_.assign(circuit.num_nets(), 0);
  for (NetId id : circuit.topo_order()) {
    if (circuit.type(id) == GateType::Input) continue;
    const auto& fi = circuit.fanins(id);
    GateRef g;
    g.net = id;
    g.type = circuit.type(id);
    g.fanin_begin = static_cast<std::uint32_t>(fanin_flat_.size());
    g.fanin_count = static_cast<std::uint32_t>(fi.size());
    fanin_flat_.insert(fanin_flat_.end(), fi.begin(), fi.end());
    schedule_index_[id] = static_cast<std::uint32_t>(schedule_.size());
    schedule_.push_back(g);
    std::uint32_t level = 0;
    for (const NetId f : fi) level = std::max(level, net_level_[f] + 1);
    net_level_[id] = level;
    num_levels_ = std::max<std::size_t>(num_levels_, level + 1);
  }
  if (num_levels_ == 0) num_levels_ = 1;  // PI-only circuit
}

template <typename FaninValue>
WideWord WideFaultSimulator::eval_entry(const GateRef& g,
                                        FaninValue&& fanin_value) {
  switch (g.type) {
    case GateType::Const0: return WideWord{};
    case GateType::Const1: {
      WideWord v;
      for (std::size_t j = 0; j < kWideWords; ++j) v.w[j] = ~Word{0};
      return v;
    }
    default: break;
  }
  WideWord acc = fanin_value(0);
  const GateType base = netlist::base_of(g.type);
  for (std::uint32_t k = 1; k < g.fanin_count; ++k) {
    wide_apply(base, acc, fanin_value(k));
  }
  if (netlist::is_inverting(g.type)) {
    for (std::size_t j = 0; j < kWideWords; ++j) acc.w[j] = ~acc.w[j];
  }
  return acc;
}

WideFaultSimulator::FaultPlan WideFaultSimulator::make_plan(
    const StuckAtFault& f) const {
  const Circuit& c = *circuit_;
  FaultPlan plan;
  plan.forced = f.stuck_value ? ~Word{0} : 0;
  if (f.branch) {
    plan.is_branch = true;
    plan.site = f.branch->gate;
    plan.pin = f.branch->pin;
    const std::uint32_t si = schedule_index_[plan.site];
    if (si == kNotScheduled || plan.pin >= schedule_[si].fanin_count) {
      throw netlist::NetlistError(
          "branch fault pin " + std::to_string(plan.pin) +
          " out of range on zero-fanin or input gate '" +
          c.net_name(plan.site) + "'");
    }
  } else {
    plan.site = f.net;
  }

  // Fanout cone: every net a difference at the site can reach. The gates
  // are collected in schedule (== topological) order so the block loop can
  // chase the difference with one linear pass.
  std::vector<bool> in_cone(c.num_nets(), false);
  std::vector<NetId> queue{plan.site};
  in_cone[plan.site] = true;
  while (!queue.empty()) {
    const NetId id = queue.back();
    queue.pop_back();
    for (const netlist::PinRef& pin : c.fanouts(id)) {
      if (!in_cone[pin.gate]) {
        in_cone[pin.gate] = true;
        queue.push_back(pin.gate);
      }
    }
  }
  for (std::size_t si = 0; si < schedule_.size(); ++si) {
    const NetId net = schedule_[si].net;
    if (in_cone[net] && net != plan.site) {
      plan.cone.push_back(static_cast<std::uint32_t>(si));
    }
  }
  for (NetId po : c.outputs()) {
    if (in_cone[po]) plan.observe.push_back(po);
  }
  return plan;
}

template <typename LoadBlock>
WideFaultSimulator::Grade WideFaultSimulator::run(
    const std::vector<StuckAtFault>& faults, std::size_t num_patterns,
    const Options& options, LoadBlock&& load_block) const {
  const Circuit& c = *circuit_;
  obs::ScopedSpan span(obs::SpanCollector::current(), "sim.grade");
  Grade g;
  g.total = faults.size();
  g.num_patterns = num_patterns;
  g.detection_counts.assign(faults.size(), 0);
  g.first_detection.assign(faults.size(), kNotDetected);
  g.level_events.assign(num_levels_, 0);

  std::vector<FaultPlan> plans;
  plans.reserve(faults.size());
  for (const StuckAtFault& f : faults) plans.push_back(make_plan(f));

  // All scratch is allocated once here; the block loop is allocation-free.
  std::vector<WideWord> good(c.num_nets());
  std::vector<WideWord> scratch(c.num_nets());
  std::vector<std::uint32_t> stamp(c.num_nets(), 0);
  std::uint32_t epoch = 0;
  std::vector<std::uint8_t> alive(faults.size(), 1);
  std::size_t num_alive = faults.size();

  for (std::size_t base = 0; base < num_patterns; base += kWideLanes) {
    if (options.drop_detected && num_alive == 0) break;
    load_block(base / kWideLanes, good);

    WideWord mask;
    const std::size_t remaining = num_patterns - base;
    for (std::size_t j = 0; j < kWideWords; ++j) {
      const std::size_t lo = j * 64;
      mask.w[j] = remaining >= lo + 64
                      ? ~Word{0}
                      : remaining <= lo
                            ? 0
                            : ((Word{1} << (remaining - lo)) - 1);
    }

    for (const GateRef& gr : schedule_) {
      good[gr.net] = eval_entry(
          gr, [&](std::uint32_t k) -> const WideWord& {
            return good[fanin_flat_[gr.fanin_begin + k]];
          });
    }

    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (!alive[fi]) continue;
      const FaultPlan& plan = plans[fi];
      if (++epoch == 0) {  // stamp wrap: invalidate everything once
        std::fill(stamp.begin(), stamp.end(), 0u);
        epoch = 1;
      }

      // Inject the difference at the site.
      WideWord forced_wide;
      for (std::size_t j = 0; j < kWideWords; ++j) {
        forced_wide.w[j] = plan.forced;
      }
      WideWord v = forced_wide;
      if (plan.is_branch) {
        const GateRef& gr = schedule_[schedule_index_[plan.site]];
        v = eval_entry(gr, [&](std::uint32_t k) -> const WideWord& {
          return k == plan.pin ? forced_wide
                               : good[fanin_flat_[gr.fanin_begin + k]];
        });
      }
      if (v == good[plan.site]) continue;  // no lane differs under this block
      scratch[plan.site] = v;
      stamp[plan.site] = epoch;
      ++g.level_events[net_level_[plan.site]];

      // Chase the difference through the cone; a gate whose fanins all
      // carry good values is skipped, and a gate whose faulty value equals
      // its good value kills the difference on that path.
      for (const std::uint32_t si : plan.cone) {
        const GateRef& gr = schedule_[si];
        bool touched = false;
        for (std::uint32_t k = 0; k < gr.fanin_count; ++k) {
          if (stamp[fanin_flat_[gr.fanin_begin + k]] == epoch) {
            touched = true;
            break;
          }
        }
        if (!touched) continue;
        ++g.level_events[net_level_[gr.net]];
        const WideWord fv =
            eval_entry(gr, [&](std::uint32_t k) -> const WideWord& {
              const NetId f = fanin_flat_[gr.fanin_begin + k];
              return stamp[f] == epoch ? scratch[f] : good[f];
            });
        if (fv == good[gr.net]) continue;
        scratch[gr.net] = fv;
        stamp[gr.net] = epoch;
      }

      WideWord diff{};
      for (const NetId po : plan.observe) {
        if (stamp[po] != epoch) continue;
        for (std::size_t j = 0; j < kWideWords; ++j) {
          diff.w[j] |= scratch[po].w[j] ^ good[po].w[j];
        }
      }
      std::uint64_t hits = 0;
      for (std::size_t j = 0; j < kWideWords; ++j) {
        hits += static_cast<std::uint64_t>(
            std::popcount(diff.w[j] & mask.w[j]));
      }
      if (hits == 0) continue;
      g.detection_counts[fi] += hits;
      if (g.first_detection[fi] == kNotDetected) {
        for (std::size_t j = 0; j < kWideWords; ++j) {
          const Word masked = diff.w[j] & mask.w[j];
          if (masked) {
            g.first_detection[fi] =
                base + j * 64 +
                static_cast<std::uint64_t>(std::countr_zero(masked));
            break;
          }
        }
      }
      if (options.drop_detected) {
        alive[fi] = 0;
        --num_alive;
      }
    }
  }
  if (span.enabled()) {
    span.attr("faults", g.total);
    span.attr("patterns", g.num_patterns);
    span.attr("events", g.events());
    span.attr("detected", g.detected());
  }
  return g;
}

WideFaultSimulator::Grade WideFaultSimulator::grade_random(
    const std::vector<StuckAtFault>& faults, std::size_t num_patterns,
    std::uint64_t seed, const Options& options) const {
  std::mt19937_64 rng(seed);
  const auto& pis = circuit_->inputs();
  return run(faults, num_patterns, options,
             [&](std::uint64_t /*block*/, std::vector<WideWord>& values) {
               // Draw order matches the legacy 64-wide grader (one word
               // per PI per 64-pattern slice, slices in order), so the
               // detected set is bit-identical to the narrow engine for
               // every pattern count and seed.
               for (std::size_t j = 0; j < kWideWords; ++j) {
                 for (std::size_t i = 0; i < pis.size(); ++i) {
                   values[pis[i]].w[j] = rng();
                 }
               }
             });
}

WideFaultSimulator::Grade WideFaultSimulator::grade_vectors(
    const std::vector<StuckAtFault>& faults,
    const std::vector<std::vector<bool>>& vectors,
    const Options& options) const {
  const auto& pis = circuit_->inputs();
  for (const auto& vec : vectors) {
    if (vec.size() != pis.size()) {
      throw std::invalid_argument("grade_vectors: vector width != #PIs");
    }
  }
  return run(faults, vectors.size(), options,
             [&](std::uint64_t block, std::vector<WideWord>& values) {
               const std::size_t base = block * kWideLanes;
               const std::size_t lanes =
                   std::min(kWideLanes, vectors.size() - base);
               for (std::size_t i = 0; i < pis.size(); ++i) {
                 values[pis[i]] = WideWord{};
               }
               for (std::size_t l = 0; l < lanes; ++l) {
                 const auto& vec = vectors[base + l];
                 for (std::size_t i = 0; i < pis.size(); ++i) {
                   if (vec[i]) {
                     values[pis[i]].w[l / 64] |= Word{1} << (l % 64);
                   }
                 }
               }
             });
}

std::vector<std::vector<bool>> WideFaultSimulator::random_patterns(
    std::size_t num_patterns, std::uint64_t seed) const {
  std::mt19937_64 rng(seed);
  const std::size_t num_pis = circuit_->num_inputs();
  std::vector<std::vector<bool>> vectors(num_patterns,
                                         std::vector<bool>(num_pis, false));
  for (std::size_t base = 0; base < num_patterns; base += kWideLanes) {
    for (std::size_t j = 0; j < kWideWords; ++j) {
      for (std::size_t i = 0; i < num_pis; ++i) {
        const Word word = rng();
        for (std::size_t l = 0; l < 64; ++l) {
          const std::size_t p = base + j * 64 + l;
          if (p < num_patterns && ((word >> l) & 1u)) vectors[p][i] = true;
        }
      }
    }
  }
  return vectors;
}

std::size_t WideFaultSimulator::Grade::detected() const {
  std::size_t n = 0;
  for (const std::uint64_t count : detection_counts) n += count > 0;
  return n;
}

std::uint64_t WideFaultSimulator::Grade::events() const {
  std::uint64_t n = 0;
  for (const std::uint64_t e : level_events) n += e;
  return n;
}

}  // namespace dp::sim
