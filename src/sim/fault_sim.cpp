#include "sim/fault_sim.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "sim/wide_sim.hpp"

namespace dp::sim {

using netlist::GateType;

FaultSimulator::FaultSimulator(const Circuit& circuit,
                               std::size_t max_exhaustive_inputs)
    : sim_(circuit), max_exhaustive_inputs_(max_exhaustive_inputs) {}

void FaultSimulator::faulty_values(std::vector<Word>& values,
                                   const StuckAtFault& f) const {
  const Circuit& c = circuit();
  const Word forced = f.stuck_value ? ~Word{0} : 0;

  for (NetId id : c.topo_order()) {
    if (f.branch && f.branch->gate == id) {
      // Branch fault: the gate sees the forced value on one pin only.
      // Checked before the Input skip so a branch fault addressing a
      // zero-fanin site fails loudly instead of being silently ignored.
      const PatternSimulator::PinOverride ov{f.branch->pin, forced};
      values[id] = sim_.eval_gate_with_overrides(id, values, &ov, 1);
      continue;
    }
    if (c.type(id) != GateType::Input) {
      values[id] = sim_.eval_gate(id, values);
    }
    if (!f.branch && id == f.net) values[id] = forced;  // stem fault
  }
}

FaultSimulator::MultipleFaultPlan FaultSimulator::make_plan(
    const fault::MultipleStuckAtFault& f) const {
  const Circuit& c = circuit();
  MultipleFaultPlan plan;
  plan.stem_forced.assign(c.num_nets(), 0);
  plan.has_stem.assign(c.num_nets(), 0);
  plan.overrides.resize(c.num_nets());
  for (const fault::StuckAtFault& comp : f.components) {
    const Word forced = comp.stuck_value ? ~Word{0} : 0;
    if (comp.branch) {
      plan.overrides[comp.branch->gate].push_back({comp.branch->pin, forced});
    } else {
      plan.stem_forced[comp.net] = forced;
      plan.has_stem[comp.net] = 1;
    }
  }
  return plan;
}

void FaultSimulator::faulty_values(std::vector<Word>& values,
                                   const MultipleFaultPlan& plan) const {
  const Circuit& c = circuit();
  for (NetId id : c.topo_order()) {
    if (c.type(id) != GateType::Input) {
      const auto& ovs = plan.overrides[id];
      values[id] = ovs.empty()
                       ? sim_.eval_gate(id, values)
                       : sim_.eval_gate_with_overrides(id, values, ovs.data(),
                                                       ovs.size());
    }
    if (plan.has_stem[id]) values[id] = plan.stem_forced[id];
  }
}

void FaultSimulator::faulty_values(
    std::vector<Word>& values, const fault::MultipleStuckAtFault& f) const {
  faulty_values(values, make_plan(f));
}

std::vector<NetId> FaultSimulator::bridge_order(const BridgingFault& f) const {
  // Kahn's algorithm over the original dependencies plus the wired node's
  // cross edges: every consumer of a depends on b and vice versa. The
  // non-feedback screen guarantees this stays acyclic.
  const Circuit& c = circuit();
  const std::size_t n = c.num_nets();
  std::vector<std::vector<NetId>> extra_succ(n);
  std::vector<std::uint32_t> indeg(n, 0);

  for (NetId id = 0; id < n; ++id) {
    indeg[id] = static_cast<std::uint32_t>(c.fanins(id).size());
  }
  auto cross = [&](NetId wire, NetId other) {
    for (const netlist::PinRef& pin : c.fanouts(wire)) {
      extra_succ[other].push_back(pin.gate);
      ++indeg[pin.gate];
    }
  };
  cross(f.a, f.b);
  cross(f.b, f.a);

  std::vector<NetId> ready, order;
  order.reserve(n);
  for (NetId id = 0; id < n; ++id) {
    if (indeg[id] == 0) ready.push_back(id);
  }
  while (!ready.empty()) {
    NetId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    auto release = [&](NetId succ) {
      if (--indeg[succ] == 0) ready.push_back(succ);
    };
    for (const netlist::PinRef& pin : c.fanouts(id)) release(pin.gate);
    for (NetId succ : extra_succ[id]) release(succ);
  }
  if (order.size() != n) {
    throw std::logic_error(
        "bridge_order(): feedback bridge passed to the simulator");
  }
  return order;
}

void FaultSimulator::faulty_values(std::vector<Word>& values,
                                   const BridgingFault& f,
                                   const std::vector<NetId>& order) const {
  const Circuit& c = circuit();

  Word driven_a = 0, driven_b = 0;
  bool have_a = false, have_b = false;
  auto fuse = [&]() {
    const Word wired = f.type == fault::BridgeType::And ? (driven_a & driven_b)
                                                        : (driven_a | driven_b);
    values[f.a] = wired;
    values[f.b] = wired;
  };

  for (NetId id : order) {
    if (c.type(id) != GateType::Input) {
      values[id] = sim_.eval_gate(id, values);
    }
    if (id == f.a) {
      driven_a = values[id];
      have_a = true;
      if (have_b) fuse();
    } else if (id == f.b) {
      driven_b = values[id];
      have_b = true;
      if (have_a) fuse();
    }
  }
}

void FaultSimulator::faulty_values(std::vector<Word>& values,
                                   const BridgingFault& f) const {
  faulty_values(values, f, bridge_order(f));
}

Word FaultSimulator::detect_lanes(const std::vector<Word>& good,
                                  const std::vector<Word>& faulty) const {
  Word lanes = 0;
  for (NetId po : circuit().outputs()) {
    lanes |= good[po] ^ faulty[po];
  }
  return lanes;
}

void FaultSimulator::check_exhaustive(std::size_t limit) const {
  if (circuit().num_inputs() > limit) {
    throw std::invalid_argument(
        "exhaustive analysis limited to " + std::to_string(limit) +
        " inputs; circuit '" + circuit().name() + "' has " +
        std::to_string(circuit().num_inputs()));
  }
}

void FaultSimulator::load_exhaustive_inputs(std::vector<Word>& values,
                                            std::uint64_t block) const {
  const auto& pis = circuit().inputs();
  for (std::size_t i = 0; i < pis.size(); ++i) {
    values[pis[i]] = PatternSimulator::exhaustive_input_word(i, block);
  }
}

template <typename Fault>
double FaultSimulator::exhaustive_detectability_impl(const Fault& f) const {
  check_exhaustive(max_exhaustive_inputs_);
  const std::size_t n = circuit().num_inputs();
  const std::uint64_t blocks = n > 6 ? (1ull << (n - 6)) : 1;

  // Everything derivable from the fault alone (bridge evaluation order,
  // multiple-fault injection tables) is prepared once, outside the 2^n
  // block loop.
  const auto prepared = prepare(f);
  std::vector<Word> good(circuit().num_nets());
  std::vector<Word> faulty(circuit().num_nets());
  std::uint64_t detected = 0;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    load_exhaustive_inputs(good, b);
    load_exhaustive_inputs(faulty, b);
    good_values(good);
    faulty_values_prepared(faulty, prepared);
    detected += std::popcount(detect_lanes(good, faulty) &
                              PatternSimulator::block_mask(b, n));
  }
  return static_cast<double>(detected) / static_cast<double>(1ull << n);
}

double FaultSimulator::exhaustive_detectability(const StuckAtFault& f) const {
  return exhaustive_detectability_impl(f);
}
double FaultSimulator::exhaustive_detectability(const BridgingFault& f) const {
  return exhaustive_detectability_impl(f);
}
double FaultSimulator::exhaustive_detectability(
    const fault::MultipleStuckAtFault& f) const {
  return exhaustive_detectability_impl(f);
}

double FaultSimulator::exhaustive_syndrome(NetId net) const {
  check_exhaustive(max_exhaustive_inputs_);
  const std::size_t n = circuit().num_inputs();
  const std::uint64_t blocks = n > 6 ? (1ull << (n - 6)) : 1;
  std::vector<Word> values(circuit().num_nets());
  std::uint64_t ones = 0;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    load_exhaustive_inputs(values, b);
    good_values(values);
    ones += std::popcount(values[net] & PatternSimulator::block_mask(b, n));
  }
  return static_cast<double>(ones) / static_cast<double>(1ull << n);
}

template <typename Fault>
std::vector<bool> FaultSimulator::exhaustive_test_set_impl(
    const Fault& f) const {
  check_exhaustive(std::min<std::size_t>(max_exhaustive_inputs_, 24));
  const std::size_t n = circuit().num_inputs();
  const std::uint64_t blocks = n > 6 ? (1ull << (n - 6)) : 1;

  const auto prepared = prepare(f);
  std::vector<bool> tests(1ull << n, false);
  std::vector<Word> good(circuit().num_nets());
  std::vector<Word> faulty(circuit().num_nets());
  for (std::uint64_t b = 0; b < blocks; ++b) {
    load_exhaustive_inputs(good, b);
    load_exhaustive_inputs(faulty, b);
    good_values(good);
    faulty_values_prepared(faulty, prepared);
    Word lanes =
        detect_lanes(good, faulty) & PatternSimulator::block_mask(b, n);
    while (lanes) {
      const int lane = std::countr_zero(lanes);
      lanes &= lanes - 1;
      tests[b * 64 + static_cast<std::uint64_t>(lane)] = true;
    }
  }
  return tests;
}

std::vector<bool> FaultSimulator::exhaustive_test_set(
    const StuckAtFault& f) const {
  return exhaustive_test_set_impl(f);
}
std::vector<bool> FaultSimulator::exhaustive_test_set(
    const BridgingFault& f) const {
  return exhaustive_test_set_impl(f);
}

FaultSimulator::Coverage FaultSimulator::grade_random(
    const std::vector<StuckAtFault>& faults, std::size_t num_patterns,
    std::uint64_t seed) const {
  const WideFaultSimulator wide(circuit());
  const WideFaultSimulator::Grade g =
      wide.grade_random(faults, num_patterns, seed);
  Coverage cov;
  cov.total = g.total;
  cov.detected = g.detected();
  return cov;
}

FaultSimulator::Coverage FaultSimulator::grade_vectors(
    const std::vector<StuckAtFault>& faults,
    const std::vector<std::vector<bool>>& vectors) const {
  const WideFaultSimulator wide(circuit());
  const WideFaultSimulator::Grade g = wide.grade_vectors(faults, vectors);
  Coverage cov;
  cov.total = g.total;
  cov.detected = g.detected();
  return cov;
}

}  // namespace dp::sim
