#include "sim/pattern_sim.hpp"

namespace dp::sim {

using netlist::GateType;

PatternSimulator::PatternSimulator(const Circuit& circuit)
    : circuit_(circuit) {
  if (!circuit.finalized()) {
    throw netlist::NetlistError("PatternSimulator: circuit must be finalized");
  }
}

Word PatternSimulator::eval_gate(NetId id, const std::vector<Word>& values) const {
  const GateType t = circuit_.type(id);
  switch (t) {
    case GateType::Input: return values[id];
    case GateType::Const0: return 0;
    case GateType::Const1: return ~Word{0};
    default: break;
  }
  const auto& fi = circuit_.fanins(id);
  Word acc = values[fi[0]];
  const GateType base = netlist::base_of(t);
  for (std::size_t i = 1; i < fi.size(); ++i) {
    acc = netlist::eval_word2(base, acc, values[fi[i]]);
  }
  if (netlist::is_inverting(t)) acc = ~acc;
  return acc;
}

Word PatternSimulator::eval_gate_with_overrides(
    NetId id, const std::vector<Word>& values, const PinOverride* overrides,
    std::size_t num_overrides) const {
  const auto& fi = circuit_.fanins(id);
  if (fi.empty()) {
    throw netlist::NetlistError(
        "eval_gate_with_overrides: gate '" + circuit_.net_name(id) +
        "' has no fanin pins to override");
  }
  auto pin_value = [&](std::size_t i) {
    for (std::size_t k = 0; k < num_overrides; ++k) {
      if (overrides[k].pin == i) return overrides[k].value;
    }
    return values[fi[i]];
  };
  for (std::size_t k = 0; k < num_overrides; ++k) {
    if (overrides[k].pin >= fi.size()) {
      throw netlist::NetlistError(
          "eval_gate_with_overrides: pin " + std::to_string(overrides[k].pin) +
          " out of range on gate '" + circuit_.net_name(id) + "'");
    }
  }
  const GateType t = circuit_.type(id);
  const GateType base = netlist::base_of(t);
  Word acc = pin_value(0);
  for (std::size_t i = 1; i < fi.size(); ++i) {
    acc = netlist::eval_word2(base, acc, pin_value(i));
  }
  if (netlist::is_inverting(t)) acc = ~acc;
  return acc;
}

void PatternSimulator::eval(std::vector<Word>& values) const {
  for (NetId id : circuit_.topo_order()) {
    if (circuit_.type(id) == GateType::Input) continue;
    values[id] = eval_gate(id, values);
  }
}

Word PatternSimulator::exhaustive_input_word(std::size_t pi,
                                             std::uint64_t block) {
  // Lanes 0..63 of block B are input vectors B*64 .. B*64+63; PI `pi`
  // contributes bit `pi` of the vector number.
  if (pi < 6) {
    // Bits 0..5 vary within the word: precomputed striping patterns.
    static constexpr Word kStripe[6] = {
        0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
        0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull};
    return kStripe[pi];
  }
  return ((block >> (pi - 6)) & 1ull) ? ~Word{0} : 0;
}

Word PatternSimulator::block_mask(std::uint64_t block, std::size_t num_inputs) {
  if (num_inputs >= 6) return ~Word{0};
  const std::uint64_t total = 1ull << num_inputs;
  (void)block;  // only block 0 exists when num_inputs < 6
  return total >= 64 ? ~Word{0} : ((1ull << total) - 1);
}

}  // namespace dp::sim
