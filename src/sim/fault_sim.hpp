// Fault simulation: stuck-at and bridging injection on top of the
// parallel-pattern simulator, exhaustive exact analysis (ground truth for
// Difference Propagation in the tests and the paper's "exhaustive
// simulation" baseline in the benchmarks), and random-pattern grading.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/bridging.hpp"
#include "fault/multiple.hpp"
#include "fault/stuck_at.hpp"
#include "sim/pattern_sim.hpp"

namespace dp::sim {

using fault::BridgingFault;
using fault::StuckAtFault;

class FaultSimulator {
 public:
  /// `max_exhaustive_inputs` guards the 2^n sweeps (memory/time).
  explicit FaultSimulator(const Circuit& circuit,
                          std::size_t max_exhaustive_inputs = 26);

  const Circuit& circuit() const { return sim_.circuit(); }

  // ---- one 64-pattern block -------------------------------------------
  // `values` carries PI words in the input slots on entry.

  void good_values(std::vector<Word>& values) const { sim_.eval(values); }
  void faulty_values(std::vector<Word>& values, const StuckAtFault& f) const;
  void faulty_values(std::vector<Word>& values, const BridgingFault& f) const;
  /// Bridging sweep with a precomputed evaluation order: `order` must come
  /// from bridge_order(f). The 2^n sweeps prepare the order once per fault
  /// instead of re-running the Kahn sort every block.
  void faulty_values(std::vector<Word>& values, const BridgingFault& f,
                     const std::vector<NetId>& order) const;
  void faulty_values(std::vector<Word>& values,
                     const fault::MultipleStuckAtFault& f) const;

  /// Per-fault injection tables for a multiple stuck-at fault, built once
  /// and reused across blocks (the per-block overload rebuilds them every
  /// call).
  struct MultipleFaultPlan {
    /// Forced stem word per net; valid where has_stem is set.
    std::vector<Word> stem_forced;
    std::vector<std::uint8_t> has_stem;
    /// Branch overrides per fed gate (empty for most nets).
    std::vector<std::vector<PatternSimulator::PinOverride>> overrides;
  };

  MultipleFaultPlan make_plan(const fault::MultipleStuckAtFault& f) const;
  void faulty_values(std::vector<Word>& values,
                     const MultipleFaultPlan& plan) const;

  /// Lanes in which at least one PO differs.
  Word detect_lanes(const std::vector<Word>& good,
                    const std::vector<Word>& faulty) const;

  /// Evaluation order with the bridge's cross-dependencies honoured.
  /// Public so callers looping over blocks can compute it once per fault;
  /// throws std::logic_error on a feedback bridge.
  std::vector<NetId> bridge_order(const BridgingFault& f) const;

  // ---- exhaustive analysis (exact, 2^n sweep) ----------------------------

  double exhaustive_detectability(const StuckAtFault& f) const;
  double exhaustive_detectability(const BridgingFault& f) const;
  double exhaustive_detectability(const fault::MultipleStuckAtFault& f) const;

  /// Exact signal probability of a net: fraction of inputs setting it to 1.
  double exhaustive_syndrome(NetId net) const;

  /// Complete test set as a bitmap over input vectors (index = packed PI
  /// assignment, PI 0 = LSB). Requires <= 24 inputs.
  std::vector<bool> exhaustive_test_set(const StuckAtFault& f) const;
  std::vector<bool> exhaustive_test_set(const BridgingFault& f) const;

  // ---- test-set grading ------------------------------------------------

  struct Coverage {
    std::size_t detected = 0;
    std::size_t total = 0;
    double fraction() const {
      return total ? static_cast<double>(detected) / total : 0.0;
    }
  };

  /// Random-pattern grading with fault dropping. Delegates to the
  /// levelized wide engine (sim/wide_sim.hpp); the detected set is
  /// bit-identical to the historical 64-wide per-fault resimulation.
  Coverage grade_random(const std::vector<StuckAtFault>& faults,
                        std::size_t num_patterns, std::uint64_t seed) const;

  /// Grades an explicit vector set (vectors indexed by PI position).
  Coverage grade_vectors(const std::vector<StuckAtFault>& faults,
                         const std::vector<std::vector<bool>>& vectors) const;

 private:
  // Per-fault prepared injection state: anything derivable from the fault
  // alone (bridge orders, multiple-fault tables) is computed once here and
  // reused across every block of a 2^n sweep.
  struct PreparedStuckAt {
    const StuckAtFault* fault;
  };
  struct PreparedBridge {
    const BridgingFault* fault;
    std::vector<NetId> order;
  };
  struct PreparedMultiple {
    MultipleFaultPlan plan;
  };

  PreparedStuckAt prepare(const StuckAtFault& f) const { return {&f}; }
  PreparedBridge prepare(const BridgingFault& f) const {
    return {&f, bridge_order(f)};
  }
  PreparedMultiple prepare(const fault::MultipleStuckAtFault& f) const {
    return {make_plan(f)};
  }

  void faulty_values_prepared(std::vector<Word>& values,
                              const PreparedStuckAt& p) const {
    faulty_values(values, *p.fault);
  }
  void faulty_values_prepared(std::vector<Word>& values,
                              const PreparedBridge& p) const {
    faulty_values(values, *p.fault, p.order);
  }
  void faulty_values_prepared(std::vector<Word>& values,
                              const PreparedMultiple& p) const {
    faulty_values(values, p.plan);
  }

  template <typename Fault>
  double exhaustive_detectability_impl(const Fault& f) const;
  template <typename Fault>
  std::vector<bool> exhaustive_test_set_impl(const Fault& f) const;

  void load_exhaustive_inputs(std::vector<Word>& values,
                              std::uint64_t block) const;
  void check_exhaustive(std::size_t limit) const;

  PatternSimulator sim_;
  std::size_t max_exhaustive_inputs_;
};

}  // namespace dp::sim
