// Fault simulation: stuck-at and bridging injection on top of the
// parallel-pattern simulator, exhaustive exact analysis (ground truth for
// Difference Propagation in the tests and the paper's "exhaustive
// simulation" baseline in the benchmarks), and random-pattern grading.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/bridging.hpp"
#include "fault/multiple.hpp"
#include "fault/stuck_at.hpp"
#include "sim/pattern_sim.hpp"

namespace dp::sim {

using fault::BridgingFault;
using fault::StuckAtFault;

class FaultSimulator {
 public:
  /// `max_exhaustive_inputs` guards the 2^n sweeps (memory/time).
  explicit FaultSimulator(const Circuit& circuit,
                          std::size_t max_exhaustive_inputs = 26);

  const Circuit& circuit() const { return sim_.circuit(); }

  // ---- one 64-pattern block -------------------------------------------
  // `values` carries PI words in the input slots on entry.

  void good_values(std::vector<Word>& values) const { sim_.eval(values); }
  void faulty_values(std::vector<Word>& values, const StuckAtFault& f) const;
  void faulty_values(std::vector<Word>& values, const BridgingFault& f) const;
  void faulty_values(std::vector<Word>& values,
                     const fault::MultipleStuckAtFault& f) const;

  /// Lanes in which at least one PO differs.
  Word detect_lanes(const std::vector<Word>& good,
                    const std::vector<Word>& faulty) const;

  // ---- exhaustive analysis (exact, 2^n sweep) ----------------------------

  double exhaustive_detectability(const StuckAtFault& f) const;
  double exhaustive_detectability(const BridgingFault& f) const;
  double exhaustive_detectability(const fault::MultipleStuckAtFault& f) const;

  /// Exact signal probability of a net: fraction of inputs setting it to 1.
  double exhaustive_syndrome(NetId net) const;

  /// Complete test set as a bitmap over input vectors (index = packed PI
  /// assignment, PI 0 = LSB). Requires <= 24 inputs.
  std::vector<bool> exhaustive_test_set(const StuckAtFault& f) const;
  std::vector<bool> exhaustive_test_set(const BridgingFault& f) const;

  // ---- test-set grading ------------------------------------------------

  struct Coverage {
    std::size_t detected = 0;
    std::size_t total = 0;
    double fraction() const {
      return total ? static_cast<double>(detected) / total : 0.0;
    }
  };

  /// Random-pattern grading with fault dropping.
  Coverage grade_random(const std::vector<StuckAtFault>& faults,
                        std::size_t num_patterns, std::uint64_t seed) const;

  /// Grades an explicit vector set (vectors indexed by PI position).
  Coverage grade_vectors(const std::vector<StuckAtFault>& faults,
                         const std::vector<std::vector<bool>>& vectors) const;

 private:
  template <typename Fault>
  double exhaustive_detectability_impl(const Fault& f) const;
  template <typename Fault>
  std::vector<bool> exhaustive_test_set_impl(const Fault& f) const;

  /// Evaluation order with the bridge's cross-dependencies honoured.
  std::vector<NetId> bridge_order(const BridgingFault& f) const;

  void load_exhaustive_inputs(std::vector<Word>& values,
                              std::uint64_t block) const;
  void check_exhaustive(std::size_t limit) const;

  PatternSimulator sim_;
  std::size_t max_exhaustive_inputs_;
};

}  // namespace dp::sim
