// Levelized, wide bit-parallel stuck-at fault simulation.
//
// Where PatternSimulator re-evaluates the whole circuit once per fault per
// 64-pattern block, this engine simulates 256 patterns per block (four
// 64-bit words, plain loops the compiler auto-vectorizes) and propagates
// each fault only through its fanout cone: the good-circuit block is
// evaluated once over a flattened levelized schedule, then per fault the
// difference is injected at the site and chased through the cone with
// epoch-stamped scratch values, dying as soon as it stops differing from
// the good value. Combined with fault dropping this is the classic
// parallel-pattern single-fault-propagation design, and it is what makes
// random-pattern prefiltering cheap enough to sit in front of exact DP
// (see analysis/hybrid.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fault/stuck_at.hpp"
#include "sim/pattern_sim.hpp"

namespace dp::sim {

using fault::StuckAtFault;

inline constexpr std::size_t kWideWords = 4;
/// Patterns per simulation block.
inline constexpr std::size_t kWideLanes = 64 * kWideWords;

/// 256 lane-packed patterns: bit L of word W is pattern W*64 + L of the
/// block.
struct WideWord {
  std::array<Word, kWideWords> w{};

  friend bool operator==(const WideWord&, const WideWord&) = default;
};

/// Grading policy for the wide engine.
struct WideSimOptions {
  /// Stop simulating a fault after the block of its first detection.
  /// Turning this off keeps exact detection counts over the whole
  /// pattern set (n-detect analytics) at the cost of simulating every
  /// fault against every block.
  bool drop_detected = true;
};

class WideFaultSimulator {
 public:
  explicit WideFaultSimulator(const Circuit& circuit);

  const Circuit& circuit() const { return *circuit_; }

  using Options = WideSimOptions;

  static constexpr std::uint64_t kNotDetected = ~std::uint64_t{0};

  struct Grade {
    std::size_t total = 0;         ///< faults graded
    std::size_t num_patterns = 0;  ///< patterns applied
    /// Detections observed per fault (pattern granularity). With dropping
    /// on, counting stops at the end of the fault's first detecting block.
    std::vector<std::uint64_t> detection_counts;
    /// Pattern index of the first detection, kNotDetected if none. Exact
    /// regardless of dropping (dropping only skips post-detection blocks).
    std::vector<std::uint64_t> first_detection;
    /// Faulty-value evaluations per circuit level (index = longest path
    /// from a PI; PIs are level 0): one count per difference injection and
    /// per touched cone-gate evaluation. Deterministic for a fixed fault
    /// list / pattern stream, and a direct picture of how deep differences
    /// travel before dying.
    std::vector<std::uint64_t> level_events;

    std::size_t detected() const;
    /// Total faulty-value evaluations (sum of level_events).
    std::uint64_t events() const;
  };

  /// Random-pattern grading; the pattern stream for a given (num_patterns,
  /// seed) is fixed and reproducible via random_patterns().
  Grade grade_random(const std::vector<StuckAtFault>& faults,
                     std::size_t num_patterns, std::uint64_t seed,
                     const Options& options = {}) const;

  /// Grades an explicit vector set (vectors indexed by PI position).
  Grade grade_vectors(const std::vector<StuckAtFault>& faults,
                      const std::vector<std::vector<bool>>& vectors,
                      const Options& options = {}) const;

  /// The exact pattern stream grade_random(n, seed) applies, as explicit
  /// vectors: element p is pattern p of the stream. Lets ATPG materialize
  /// the vectors behind recorded first_detection indices.
  std::vector<std::vector<bool>> random_patterns(std::size_t num_patterns,
                                                 std::uint64_t seed) const;

 private:
  /// One flattened schedule entry: a non-PI net and its fanin slice.
  struct GateRef {
    NetId net = netlist::kInvalidNet;
    netlist::GateType type = netlist::GateType::Input;
    std::uint32_t fanin_begin = 0;
    std::uint32_t fanin_count = 0;
  };

  /// Per-fault propagation plan: injection site plus the cone schedule.
  struct FaultPlan {
    bool is_branch = false;
    NetId site = netlist::kInvalidNet;  ///< stem net, or the fed gate for a branch
    std::uint32_t pin = 0;     ///< branch only
    Word forced = 0;           ///< stuck value replicated across lanes
    std::vector<std::uint32_t> cone;  ///< schedule indices, topo order
    std::vector<NetId> observe;       ///< POs the difference can reach
  };

  FaultPlan make_plan(const StuckAtFault& f) const;

  /// Evaluates one schedule entry; `fanin_value(k)` supplies fanin k.
  template <typename FaninValue>
  static WideWord eval_entry(const GateRef& g, FaninValue&& fanin_value);

  template <typename LoadBlock>
  Grade run(const std::vector<StuckAtFault>& faults, std::size_t num_patterns,
            const Options& options, LoadBlock&& load_block) const;

  const Circuit* circuit_;
  std::vector<GateRef> schedule_;  ///< topo order over non-PI nets
  std::vector<NetId> fanin_flat_;
  /// Per net: its index in schedule_, or kNotScheduled for PIs.
  std::vector<std::uint32_t> schedule_index_;
  /// Per net: longest path (in gate levels) from any PI; PIs are 0.
  std::vector<std::uint32_t> net_level_;
  std::size_t num_levels_ = 0;  ///< deepest level + 1

  static constexpr std::uint32_t kNotScheduled = 0xffffffffu;
};

}  // namespace dp::sim
