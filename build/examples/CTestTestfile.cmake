# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_testability_report "/root/repo/build/examples/testability_report" "c17")
set_tests_properties(example_testability_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bridging_analysis "/root/repo/build/examples/bridging_analysis" "c17" "20")
set_tests_properties(example_bridging_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_atpg_tool "/root/repo/build/examples/atpg_tool" "c17")
set_tests_properties(example_atpg_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dft_advisor "/root/repo/build/examples/dft_advisor" "c17" "1")
set_tests_properties(example_dft_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dpcli_list "/root/repo/build/examples/dpcli" "list")
set_tests_properties(example_dpcli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dpcli_info "/root/repo/build/examples/dpcli" "info" "alu181")
set_tests_properties(example_dpcli_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dpcli_fault "/root/repo/build/examples/dpcli" "fault" "c17" "16" "1")
set_tests_properties(example_dpcli_fault PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dpcli_syndrome "/root/repo/build/examples/dpcli" "syndrome" "c17")
set_tests_properties(example_dpcli_syndrome PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dpcli_atpg "/root/repo/build/examples/dpcli" "atpg" "c95")
set_tests_properties(example_dpcli_atpg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dpcli_write "/root/repo/build/examples/dpcli" "write" "c432")
set_tests_properties(example_dpcli_write PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dpcli_dot "/root/repo/build/examples/dpcli" "dot" "c17" "22")
set_tests_properties(example_dpcli_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dpcli_usage "/root/repo/build/examples/dpcli")
set_tests_properties(example_dpcli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dpcli_diagnose "/root/repo/build/examples/dpcli" "diagnose" "c17" "16" "1")
set_tests_properties(example_dpcli_diagnose PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
