# Empty dependencies file for atpg_tool.
# This may be replaced when dependencies are built.
