file(REMOVE_RECURSE
  "CMakeFiles/atpg_tool.dir/atpg_tool.cpp.o"
  "CMakeFiles/atpg_tool.dir/atpg_tool.cpp.o.d"
  "atpg_tool"
  "atpg_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atpg_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
