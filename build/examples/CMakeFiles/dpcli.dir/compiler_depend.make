# Empty compiler generated dependencies file for dpcli.
# This may be replaced when dependencies are built.
