file(REMOVE_RECURSE
  "CMakeFiles/dpcli.dir/dpcli.cpp.o"
  "CMakeFiles/dpcli.dir/dpcli.cpp.o.d"
  "dpcli"
  "dpcli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpcli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
