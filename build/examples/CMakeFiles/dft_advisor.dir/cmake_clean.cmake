file(REMOVE_RECURSE
  "CMakeFiles/dft_advisor.dir/dft_advisor.cpp.o"
  "CMakeFiles/dft_advisor.dir/dft_advisor.cpp.o.d"
  "dft_advisor"
  "dft_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dft_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
