# Empty dependencies file for dft_advisor.
# This may be replaced when dependencies are built.
