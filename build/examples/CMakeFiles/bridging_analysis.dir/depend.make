# Empty dependencies file for bridging_analysis.
# This may be replaced when dependencies are built.
