file(REMOVE_RECURSE
  "CMakeFiles/bridging_analysis.dir/bridging_analysis.cpp.o"
  "CMakeFiles/bridging_analysis.dir/bridging_analysis.cpp.o.d"
  "bridging_analysis"
  "bridging_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridging_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
