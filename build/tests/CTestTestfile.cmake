# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bdd_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/bench_io_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/transforms_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/difference_test[1]_include.cmake")
include("/root/repo/build/tests/dp_engine_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/testpoints_test[1]_include.cmake")
include("/root/repo/build/tests/ordering_test[1]_include.cmake")
include("/root/repo/build/tests/decomposition_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/engines_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_reorder_test[1]_include.cmake")
include("/root/repo/build/tests/multiple_fault_test[1]_include.cmake")
include("/root/repo/build/tests/syndrome_test_test[1]_include.cmake")
include("/root/repo/build/tests/diagnosis_test[1]_include.cmake")
