file(REMOVE_RECURSE
  "CMakeFiles/multiple_fault_test.dir/multiple_fault_test.cpp.o"
  "CMakeFiles/multiple_fault_test.dir/multiple_fault_test.cpp.o.d"
  "multiple_fault_test"
  "multiple_fault_test.pdb"
  "multiple_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiple_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
