# Empty compiler generated dependencies file for multiple_fault_test.
# This may be replaced when dependencies are built.
