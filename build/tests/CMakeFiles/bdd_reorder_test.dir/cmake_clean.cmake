file(REMOVE_RECURSE
  "CMakeFiles/bdd_reorder_test.dir/bdd_reorder_test.cpp.o"
  "CMakeFiles/bdd_reorder_test.dir/bdd_reorder_test.cpp.o.d"
  "bdd_reorder_test"
  "bdd_reorder_test.pdb"
  "bdd_reorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdd_reorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
