# Empty dependencies file for testpoints_test.
# This may be replaced when dependencies are built.
