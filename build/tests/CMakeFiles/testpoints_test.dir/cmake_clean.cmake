file(REMOVE_RECURSE
  "CMakeFiles/testpoints_test.dir/testpoints_test.cpp.o"
  "CMakeFiles/testpoints_test.dir/testpoints_test.cpp.o.d"
  "testpoints_test"
  "testpoints_test.pdb"
  "testpoints_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testpoints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
