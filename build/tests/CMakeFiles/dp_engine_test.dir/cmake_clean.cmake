file(REMOVE_RECURSE
  "CMakeFiles/dp_engine_test.dir/dp_engine_test.cpp.o"
  "CMakeFiles/dp_engine_test.dir/dp_engine_test.cpp.o.d"
  "dp_engine_test"
  "dp_engine_test.pdb"
  "dp_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
