file(REMOVE_RECURSE
  "CMakeFiles/dp_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/dp_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/circuit.cpp.o"
  "CMakeFiles/dp_netlist.dir/circuit.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/gate.cpp.o"
  "CMakeFiles/dp_netlist.dir/gate.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/generators_alu.cpp.o"
  "CMakeFiles/dp_netlist.dir/generators_alu.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/generators_basic.cpp.o"
  "CMakeFiles/dp_netlist.dir/generators_basic.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/generators_ecc.cpp.o"
  "CMakeFiles/dp_netlist.dir/generators_ecc.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/generators_mult.cpp.o"
  "CMakeFiles/dp_netlist.dir/generators_mult.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/generators_priority.cpp.o"
  "CMakeFiles/dp_netlist.dir/generators_priority.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/generators_suite.cpp.o"
  "CMakeFiles/dp_netlist.dir/generators_suite.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/layout.cpp.o"
  "CMakeFiles/dp_netlist.dir/layout.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/structure.cpp.o"
  "CMakeFiles/dp_netlist.dir/structure.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/testpoints.cpp.o"
  "CMakeFiles/dp_netlist.dir/testpoints.cpp.o.d"
  "CMakeFiles/dp_netlist.dir/transforms.cpp.o"
  "CMakeFiles/dp_netlist.dir/transforms.cpp.o.d"
  "libdp_netlist.a"
  "libdp_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
