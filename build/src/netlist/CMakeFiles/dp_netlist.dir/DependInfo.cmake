
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/bench_io.cpp" "src/netlist/CMakeFiles/dp_netlist.dir/bench_io.cpp.o" "gcc" "src/netlist/CMakeFiles/dp_netlist.dir/bench_io.cpp.o.d"
  "/root/repo/src/netlist/circuit.cpp" "src/netlist/CMakeFiles/dp_netlist.dir/circuit.cpp.o" "gcc" "src/netlist/CMakeFiles/dp_netlist.dir/circuit.cpp.o.d"
  "/root/repo/src/netlist/gate.cpp" "src/netlist/CMakeFiles/dp_netlist.dir/gate.cpp.o" "gcc" "src/netlist/CMakeFiles/dp_netlist.dir/gate.cpp.o.d"
  "/root/repo/src/netlist/generators_alu.cpp" "src/netlist/CMakeFiles/dp_netlist.dir/generators_alu.cpp.o" "gcc" "src/netlist/CMakeFiles/dp_netlist.dir/generators_alu.cpp.o.d"
  "/root/repo/src/netlist/generators_basic.cpp" "src/netlist/CMakeFiles/dp_netlist.dir/generators_basic.cpp.o" "gcc" "src/netlist/CMakeFiles/dp_netlist.dir/generators_basic.cpp.o.d"
  "/root/repo/src/netlist/generators_ecc.cpp" "src/netlist/CMakeFiles/dp_netlist.dir/generators_ecc.cpp.o" "gcc" "src/netlist/CMakeFiles/dp_netlist.dir/generators_ecc.cpp.o.d"
  "/root/repo/src/netlist/generators_mult.cpp" "src/netlist/CMakeFiles/dp_netlist.dir/generators_mult.cpp.o" "gcc" "src/netlist/CMakeFiles/dp_netlist.dir/generators_mult.cpp.o.d"
  "/root/repo/src/netlist/generators_priority.cpp" "src/netlist/CMakeFiles/dp_netlist.dir/generators_priority.cpp.o" "gcc" "src/netlist/CMakeFiles/dp_netlist.dir/generators_priority.cpp.o.d"
  "/root/repo/src/netlist/generators_suite.cpp" "src/netlist/CMakeFiles/dp_netlist.dir/generators_suite.cpp.o" "gcc" "src/netlist/CMakeFiles/dp_netlist.dir/generators_suite.cpp.o.d"
  "/root/repo/src/netlist/layout.cpp" "src/netlist/CMakeFiles/dp_netlist.dir/layout.cpp.o" "gcc" "src/netlist/CMakeFiles/dp_netlist.dir/layout.cpp.o.d"
  "/root/repo/src/netlist/structure.cpp" "src/netlist/CMakeFiles/dp_netlist.dir/structure.cpp.o" "gcc" "src/netlist/CMakeFiles/dp_netlist.dir/structure.cpp.o.d"
  "/root/repo/src/netlist/testpoints.cpp" "src/netlist/CMakeFiles/dp_netlist.dir/testpoints.cpp.o" "gcc" "src/netlist/CMakeFiles/dp_netlist.dir/testpoints.cpp.o.d"
  "/root/repo/src/netlist/transforms.cpp" "src/netlist/CMakeFiles/dp_netlist.dir/transforms.cpp.o" "gcc" "src/netlist/CMakeFiles/dp_netlist.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
