file(REMOVE_RECURSE
  "CMakeFiles/dp_fault.dir/bridging.cpp.o"
  "CMakeFiles/dp_fault.dir/bridging.cpp.o.d"
  "CMakeFiles/dp_fault.dir/multiple.cpp.o"
  "CMakeFiles/dp_fault.dir/multiple.cpp.o.d"
  "CMakeFiles/dp_fault.dir/sampling.cpp.o"
  "CMakeFiles/dp_fault.dir/sampling.cpp.o.d"
  "CMakeFiles/dp_fault.dir/stuck_at.cpp.o"
  "CMakeFiles/dp_fault.dir/stuck_at.cpp.o.d"
  "libdp_fault.a"
  "libdp_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
