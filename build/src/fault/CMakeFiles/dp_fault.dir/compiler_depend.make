# Empty compiler generated dependencies file for dp_fault.
# This may be replaced when dependencies are built.
