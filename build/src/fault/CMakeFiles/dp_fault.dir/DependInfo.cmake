
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/bridging.cpp" "src/fault/CMakeFiles/dp_fault.dir/bridging.cpp.o" "gcc" "src/fault/CMakeFiles/dp_fault.dir/bridging.cpp.o.d"
  "/root/repo/src/fault/multiple.cpp" "src/fault/CMakeFiles/dp_fault.dir/multiple.cpp.o" "gcc" "src/fault/CMakeFiles/dp_fault.dir/multiple.cpp.o.d"
  "/root/repo/src/fault/sampling.cpp" "src/fault/CMakeFiles/dp_fault.dir/sampling.cpp.o" "gcc" "src/fault/CMakeFiles/dp_fault.dir/sampling.cpp.o.d"
  "/root/repo/src/fault/stuck_at.cpp" "src/fault/CMakeFiles/dp_fault.dir/stuck_at.cpp.o" "gcc" "src/fault/CMakeFiles/dp_fault.dir/stuck_at.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/dp_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
