file(REMOVE_RECURSE
  "libdp_fault.a"
)
