
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/boolean_difference.cpp" "src/dp/CMakeFiles/dp_core.dir/boolean_difference.cpp.o" "gcc" "src/dp/CMakeFiles/dp_core.dir/boolean_difference.cpp.o.d"
  "/root/repo/src/dp/difference.cpp" "src/dp/CMakeFiles/dp_core.dir/difference.cpp.o" "gcc" "src/dp/CMakeFiles/dp_core.dir/difference.cpp.o.d"
  "/root/repo/src/dp/engine.cpp" "src/dp/CMakeFiles/dp_core.dir/engine.cpp.o" "gcc" "src/dp/CMakeFiles/dp_core.dir/engine.cpp.o.d"
  "/root/repo/src/dp/good_functions.cpp" "src/dp/CMakeFiles/dp_core.dir/good_functions.cpp.o" "gcc" "src/dp/CMakeFiles/dp_core.dir/good_functions.cpp.o.d"
  "/root/repo/src/dp/ordering.cpp" "src/dp/CMakeFiles/dp_core.dir/ordering.cpp.o" "gcc" "src/dp/CMakeFiles/dp_core.dir/ordering.cpp.o.d"
  "/root/repo/src/dp/symbolic_sim.cpp" "src/dp/CMakeFiles/dp_core.dir/symbolic_sim.cpp.o" "gcc" "src/dp/CMakeFiles/dp_core.dir/symbolic_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdd/CMakeFiles/dp_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/dp_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
