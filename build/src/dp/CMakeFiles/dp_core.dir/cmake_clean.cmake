file(REMOVE_RECURSE
  "CMakeFiles/dp_core.dir/boolean_difference.cpp.o"
  "CMakeFiles/dp_core.dir/boolean_difference.cpp.o.d"
  "CMakeFiles/dp_core.dir/difference.cpp.o"
  "CMakeFiles/dp_core.dir/difference.cpp.o.d"
  "CMakeFiles/dp_core.dir/engine.cpp.o"
  "CMakeFiles/dp_core.dir/engine.cpp.o.d"
  "CMakeFiles/dp_core.dir/good_functions.cpp.o"
  "CMakeFiles/dp_core.dir/good_functions.cpp.o.d"
  "CMakeFiles/dp_core.dir/ordering.cpp.o"
  "CMakeFiles/dp_core.dir/ordering.cpp.o.d"
  "CMakeFiles/dp_core.dir/symbolic_sim.cpp.o"
  "CMakeFiles/dp_core.dir/symbolic_sim.cpp.o.d"
  "libdp_core.a"
  "libdp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
