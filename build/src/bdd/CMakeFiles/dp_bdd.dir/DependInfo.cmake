
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdd/dot_export.cpp" "src/bdd/CMakeFiles/dp_bdd.dir/dot_export.cpp.o" "gcc" "src/bdd/CMakeFiles/dp_bdd.dir/dot_export.cpp.o.d"
  "/root/repo/src/bdd/manager_core.cpp" "src/bdd/CMakeFiles/dp_bdd.dir/manager_core.cpp.o" "gcc" "src/bdd/CMakeFiles/dp_bdd.dir/manager_core.cpp.o.d"
  "/root/repo/src/bdd/manager_ops.cpp" "src/bdd/CMakeFiles/dp_bdd.dir/manager_ops.cpp.o" "gcc" "src/bdd/CMakeFiles/dp_bdd.dir/manager_ops.cpp.o.d"
  "/root/repo/src/bdd/manager_query.cpp" "src/bdd/CMakeFiles/dp_bdd.dir/manager_query.cpp.o" "gcc" "src/bdd/CMakeFiles/dp_bdd.dir/manager_query.cpp.o.d"
  "/root/repo/src/bdd/manager_reorder.cpp" "src/bdd/CMakeFiles/dp_bdd.dir/manager_reorder.cpp.o" "gcc" "src/bdd/CMakeFiles/dp_bdd.dir/manager_reorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
