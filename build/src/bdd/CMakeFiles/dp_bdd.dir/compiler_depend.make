# Empty compiler generated dependencies file for dp_bdd.
# This may be replaced when dependencies are built.
