file(REMOVE_RECURSE
  "libdp_bdd.a"
)
