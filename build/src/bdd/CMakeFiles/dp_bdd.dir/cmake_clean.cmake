file(REMOVE_RECURSE
  "CMakeFiles/dp_bdd.dir/dot_export.cpp.o"
  "CMakeFiles/dp_bdd.dir/dot_export.cpp.o.d"
  "CMakeFiles/dp_bdd.dir/manager_core.cpp.o"
  "CMakeFiles/dp_bdd.dir/manager_core.cpp.o.d"
  "CMakeFiles/dp_bdd.dir/manager_ops.cpp.o"
  "CMakeFiles/dp_bdd.dir/manager_ops.cpp.o.d"
  "CMakeFiles/dp_bdd.dir/manager_query.cpp.o"
  "CMakeFiles/dp_bdd.dir/manager_query.cpp.o.d"
  "CMakeFiles/dp_bdd.dir/manager_reorder.cpp.o"
  "CMakeFiles/dp_bdd.dir/manager_reorder.cpp.o.d"
  "libdp_bdd.a"
  "libdp_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
