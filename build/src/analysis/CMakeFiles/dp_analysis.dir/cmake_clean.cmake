file(REMOVE_RECURSE
  "CMakeFiles/dp_analysis.dir/diagnosis.cpp.o"
  "CMakeFiles/dp_analysis.dir/diagnosis.cpp.o.d"
  "CMakeFiles/dp_analysis.dir/histogram.cpp.o"
  "CMakeFiles/dp_analysis.dir/histogram.cpp.o.d"
  "CMakeFiles/dp_analysis.dir/profiles.cpp.o"
  "CMakeFiles/dp_analysis.dir/profiles.cpp.o.d"
  "CMakeFiles/dp_analysis.dir/random_pattern.cpp.o"
  "CMakeFiles/dp_analysis.dir/random_pattern.cpp.o.d"
  "CMakeFiles/dp_analysis.dir/report.cpp.o"
  "CMakeFiles/dp_analysis.dir/report.cpp.o.d"
  "libdp_analysis.a"
  "libdp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
