file(REMOVE_RECURSE
  "libdp_sim.a"
)
