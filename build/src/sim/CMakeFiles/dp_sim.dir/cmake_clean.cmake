file(REMOVE_RECURSE
  "CMakeFiles/dp_sim.dir/fault_sim.cpp.o"
  "CMakeFiles/dp_sim.dir/fault_sim.cpp.o.d"
  "CMakeFiles/dp_sim.dir/pattern_sim.cpp.o"
  "CMakeFiles/dp_sim.dir/pattern_sim.cpp.o.d"
  "libdp_sim.a"
  "libdp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
