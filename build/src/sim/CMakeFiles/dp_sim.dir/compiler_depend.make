# Empty compiler generated dependencies file for dp_sim.
# This may be replaced when dependencies are built.
