file(REMOVE_RECURSE
  "CMakeFiles/fig1_sa_histograms.dir/fig1_sa_histograms.cpp.o"
  "CMakeFiles/fig1_sa_histograms.dir/fig1_sa_histograms.cpp.o.d"
  "fig1_sa_histograms"
  "fig1_sa_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_sa_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
