# Empty dependencies file for fig1_sa_histograms.
# This may be replaced when dependencies are built.
