# Empty compiler generated dependencies file for fig7_bf_trends.
# This may be replaced when dependencies are built.
