file(REMOVE_RECURSE
  "CMakeFiles/fig7_bf_trends.dir/fig7_bf_trends.cpp.o"
  "CMakeFiles/fig7_bf_trends.dir/fig7_bf_trends.cpp.o.d"
  "fig7_bf_trends"
  "fig7_bf_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_bf_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
