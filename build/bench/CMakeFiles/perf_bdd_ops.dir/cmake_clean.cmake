file(REMOVE_RECURSE
  "CMakeFiles/perf_bdd_ops.dir/perf_bdd_ops.cpp.o"
  "CMakeFiles/perf_bdd_ops.dir/perf_bdd_ops.cpp.o.d"
  "perf_bdd_ops"
  "perf_bdd_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_bdd_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
