# Empty compiler generated dependencies file for perf_bdd_ops.
# This may be replaced when dependencies are built.
