file(REMOVE_RECURSE
  "CMakeFiles/abl_decomposition.dir/abl_decomposition.cpp.o"
  "CMakeFiles/abl_decomposition.dir/abl_decomposition.cpp.o.d"
  "abl_decomposition"
  "abl_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
