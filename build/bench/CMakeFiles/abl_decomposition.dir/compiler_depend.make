# Empty compiler generated dependencies file for abl_decomposition.
# This may be replaced when dependencies are built.
