file(REMOVE_RECURSE
  "CMakeFiles/perf_dp_vs_exhaustive.dir/perf_dp_vs_exhaustive.cpp.o"
  "CMakeFiles/perf_dp_vs_exhaustive.dir/perf_dp_vs_exhaustive.cpp.o.d"
  "perf_dp_vs_exhaustive"
  "perf_dp_vs_exhaustive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_dp_vs_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
