# Empty dependencies file for perf_dp_vs_exhaustive.
# This may be replaced when dependencies are built.
