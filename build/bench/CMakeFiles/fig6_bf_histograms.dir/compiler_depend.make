# Empty compiler generated dependencies file for fig6_bf_histograms.
# This may be replaced when dependencies are built.
