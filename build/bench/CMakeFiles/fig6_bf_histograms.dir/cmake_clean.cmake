file(REMOVE_RECURSE
  "CMakeFiles/fig6_bf_histograms.dir/fig6_bf_histograms.cpp.o"
  "CMakeFiles/fig6_bf_histograms.dir/fig6_bf_histograms.cpp.o.d"
  "fig6_bf_histograms"
  "fig6_bf_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bf_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
