file(REMOVE_RECURSE
  "CMakeFiles/fig8_bf_po_distance.dir/fig8_bf_po_distance.cpp.o"
  "CMakeFiles/fig8_bf_po_distance.dir/fig8_bf_po_distance.cpp.o.d"
  "fig8_bf_po_distance"
  "fig8_bf_po_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bf_po_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
