# Empty compiler generated dependencies file for fig8_bf_po_distance.
# This may be replaced when dependencies are built.
