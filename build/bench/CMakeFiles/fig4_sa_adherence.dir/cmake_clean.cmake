file(REMOVE_RECURSE
  "CMakeFiles/fig4_sa_adherence.dir/fig4_sa_adherence.cpp.o"
  "CMakeFiles/fig4_sa_adherence.dir/fig4_sa_adherence.cpp.o.d"
  "fig4_sa_adherence"
  "fig4_sa_adherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sa_adherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
