# Empty compiler generated dependencies file for fig4_sa_adherence.
# This may be replaced when dependencies are built.
