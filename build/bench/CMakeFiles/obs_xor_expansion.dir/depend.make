# Empty dependencies file for obs_xor_expansion.
# This may be replaced when dependencies are built.
