file(REMOVE_RECURSE
  "CMakeFiles/obs_xor_expansion.dir/obs_xor_expansion.cpp.o"
  "CMakeFiles/obs_xor_expansion.dir/obs_xor_expansion.cpp.o.d"
  "obs_xor_expansion"
  "obs_xor_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_xor_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
