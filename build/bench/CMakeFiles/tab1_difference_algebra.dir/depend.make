# Empty dependencies file for tab1_difference_algebra.
# This may be replaced when dependencies are built.
