file(REMOVE_RECURSE
  "CMakeFiles/tab1_difference_algebra.dir/tab1_difference_algebra.cpp.o"
  "CMakeFiles/tab1_difference_algebra.dir/tab1_difference_algebra.cpp.o.d"
  "tab1_difference_algebra"
  "tab1_difference_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_difference_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
