file(REMOVE_RECURSE
  "CMakeFiles/obs_multiple_fault_coverage.dir/obs_multiple_fault_coverage.cpp.o"
  "CMakeFiles/obs_multiple_fault_coverage.dir/obs_multiple_fault_coverage.cpp.o.d"
  "obs_multiple_fault_coverage"
  "obs_multiple_fault_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_multiple_fault_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
