# Empty dependencies file for obs_multiple_fault_coverage.
# This may be replaced when dependencies are built.
