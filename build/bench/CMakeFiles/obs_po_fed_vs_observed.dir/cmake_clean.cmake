file(REMOVE_RECURSE
  "CMakeFiles/obs_po_fed_vs_observed.dir/obs_po_fed_vs_observed.cpp.o"
  "CMakeFiles/obs_po_fed_vs_observed.dir/obs_po_fed_vs_observed.cpp.o.d"
  "obs_po_fed_vs_observed"
  "obs_po_fed_vs_observed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_po_fed_vs_observed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
