# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for obs_po_fed_vs_observed.
