# Empty compiler generated dependencies file for obs_po_fed_vs_observed.
# This may be replaced when dependencies are built.
