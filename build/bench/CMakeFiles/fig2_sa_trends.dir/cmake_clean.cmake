file(REMOVE_RECURSE
  "CMakeFiles/fig2_sa_trends.dir/fig2_sa_trends.cpp.o"
  "CMakeFiles/fig2_sa_trends.dir/fig2_sa_trends.cpp.o.d"
  "fig2_sa_trends"
  "fig2_sa_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sa_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
