# Empty compiler generated dependencies file for fig2_sa_trends.
# This may be replaced when dependencies are built.
