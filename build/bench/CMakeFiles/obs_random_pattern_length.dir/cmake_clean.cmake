file(REMOVE_RECURSE
  "CMakeFiles/obs_random_pattern_length.dir/obs_random_pattern_length.cpp.o"
  "CMakeFiles/obs_random_pattern_length.dir/obs_random_pattern_length.cpp.o.d"
  "obs_random_pattern_length"
  "obs_random_pattern_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_random_pattern_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
