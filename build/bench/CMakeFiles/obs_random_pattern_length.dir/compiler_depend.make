# Empty compiler generated dependencies file for obs_random_pattern_length.
# This may be replaced when dependencies are built.
