file(REMOVE_RECURSE
  "CMakeFiles/obs_syndrome_testing.dir/obs_syndrome_testing.cpp.o"
  "CMakeFiles/obs_syndrome_testing.dir/obs_syndrome_testing.cpp.o.d"
  "obs_syndrome_testing"
  "obs_syndrome_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_syndrome_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
