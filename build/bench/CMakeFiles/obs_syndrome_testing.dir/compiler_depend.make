# Empty compiler generated dependencies file for obs_syndrome_testing.
# This may be replaced when dependencies are built.
