# Empty dependencies file for fig5_bf_stuckat_proportions.
# This may be replaced when dependencies are built.
