file(REMOVE_RECURSE
  "CMakeFiles/fig5_bf_stuckat_proportions.dir/fig5_bf_stuckat_proportions.cpp.o"
  "CMakeFiles/fig5_bf_stuckat_proportions.dir/fig5_bf_stuckat_proportions.cpp.o.d"
  "fig5_bf_stuckat_proportions"
  "fig5_bf_stuckat_proportions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bf_stuckat_proportions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
