# Empty compiler generated dependencies file for obs_engine_comparison.
# This may be replaced when dependencies are built.
