file(REMOVE_RECURSE
  "CMakeFiles/obs_engine_comparison.dir/obs_engine_comparison.cpp.o"
  "CMakeFiles/obs_engine_comparison.dir/obs_engine_comparison.cpp.o.d"
  "obs_engine_comparison"
  "obs_engine_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_engine_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
