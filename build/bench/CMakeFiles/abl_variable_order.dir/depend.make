# Empty dependencies file for abl_variable_order.
# This may be replaced when dependencies are built.
