file(REMOVE_RECURSE
  "CMakeFiles/abl_variable_order.dir/abl_variable_order.cpp.o"
  "CMakeFiles/abl_variable_order.dir/abl_variable_order.cpp.o.d"
  "abl_variable_order"
  "abl_variable_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_variable_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
