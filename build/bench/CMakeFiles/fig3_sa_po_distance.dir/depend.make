# Empty dependencies file for fig3_sa_po_distance.
# This may be replaced when dependencies are built.
