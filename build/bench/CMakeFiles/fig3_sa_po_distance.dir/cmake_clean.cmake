file(REMOVE_RECURSE
  "CMakeFiles/fig3_sa_po_distance.dir/fig3_sa_po_distance.cpp.o"
  "CMakeFiles/fig3_sa_po_distance.dir/fig3_sa_po_distance.cpp.o.d"
  "fig3_sa_po_distance"
  "fig3_sa_po_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_sa_po_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
