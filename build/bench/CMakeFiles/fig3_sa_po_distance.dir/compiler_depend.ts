# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3_sa_po_distance.
