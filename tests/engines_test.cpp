// Three-way engine equivalence: Difference Propagation, the CATAPULT-style
// Boolean-difference method, and Cho-Bryant-style symbolic fault simulation
// must produce IDENTICAL complete test sets -- they are different
// factorizations of the same exact computation.
#include <gtest/gtest.h>

#include "dp/boolean_difference.hpp"
#include "dp/engine.hpp"
#include "dp/symbolic_sim.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"

namespace dp::core {
namespace {

using fault::BridgeType;
using netlist::Circuit;

struct Engines {
  explicit Engines(Circuit&& c)
      : circuit(std::move(c)),
        structure(circuit),
        manager(0),
        good(manager, circuit),
        dp(good, structure),
        bd(good, structure),
        sym(good, structure) {}

  Circuit circuit;
  netlist::Structure structure;
  bdd::Manager manager;
  GoodFunctions good;
  DifferencePropagator dp;
  BooleanDifferenceEngine bd;
  SymbolicFaultSimulator sym;
};

class EngineEquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineEquivalenceTest, StuckAtTestSetsIdentical) {
  Engines rig(netlist::make_benchmark(GetParam()));
  for (const auto& f : fault::checkpoint_faults(rig.circuit)) {
    const FaultAnalysis a = rig.dp.analyze(f);
    const FaultAnalysis b = rig.bd.analyze(f);
    const FaultAnalysis c = rig.sym.analyze(f);
    const std::string what = describe(f, rig.circuit);
    // Canonical BDDs: equality is pointer equality inside one manager.
    ASSERT_EQ(a.test_set, b.test_set) << "DP vs BD: " << what;
    ASSERT_EQ(a.test_set, c.test_set) << "DP vs SYM: " << what;
    ASSERT_DOUBLE_EQ(a.detectability, b.detectability) << what;
    ASSERT_DOUBLE_EQ(a.detectability, c.detectability) << what;
    ASSERT_EQ(a.po_observable, b.po_observable) << what;
    ASSERT_EQ(a.po_observable, c.po_observable) << what;
    ASSERT_DOUBLE_EQ(a.adherence, b.adherence) << what;
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, EngineEquivalenceTest,
                         ::testing::Values("c17", "fulladder", "c95",
                                           "alu181", "c432"));

TEST(EngineEquivalenceTest, BridgingDpVsSymbolic) {
  Engines rig(netlist::make_c95_analog());
  for (BridgeType type : {BridgeType::And, BridgeType::Or}) {
    const auto faults =
        fault::enumerate_nfbfs(rig.circuit, rig.structure, type);
    std::size_t checked = 0;
    for (const auto& f : faults) {
      const FaultAnalysis a = rig.dp.analyze(f);
      const FaultAnalysis c = rig.sym.analyze(f);
      ASSERT_EQ(a.test_set, c.test_set) << describe(f, rig.circuit);
      ASSERT_EQ(a.bridge_stuck_at, c.bridge_stuck_at);
      ASSERT_DOUBLE_EQ(a.upper_bound, c.upper_bound);
      if (++checked == 120) break;
    }
  }
}

TEST(EngineEquivalenceTest, RandomCircuitsAllThreeAgree) {
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    Engines rig(netlist::make_random_circuit(seed, 8, 35, 4));
    for (const auto& f : fault::collapse_checkpoint_faults(rig.circuit)) {
      const FaultAnalysis a = rig.dp.analyze(f);
      const FaultAnalysis b = rig.bd.analyze(f);
      const FaultAnalysis c = rig.sym.analyze(f);
      ASSERT_EQ(a.test_set, b.test_set)
          << "seed " << seed << " " << describe(f, rig.circuit);
      ASSERT_EQ(a.test_set, c.test_set)
          << "seed " << seed << " " << describe(f, rig.circuit);
    }
  }
}

TEST(EngineCostTest, SymbolicEvaluatesConeGatesOnly) {
  Engines rig(netlist::make_c95_analog());
  // A PO stem fault has a single-gate cone in the symbolic engine.
  const auto po = rig.circuit.outputs()[3];
  const FaultAnalysis s =
      rig.sym.analyze(fault::StuckAtFault{po, std::nullopt, true});
  EXPECT_EQ(s.stats.gates_evaluated, 0u);  // seeded at the net: no gate
  const FaultAnalysis b =
      rig.bd.analyze(fault::StuckAtFault{po, std::nullopt, true});
  EXPECT_EQ(b.stats.gates_evaluated, 0u);
}

TEST(EngineCostTest, BooleanDifferenceRebuildsTheCone) {
  Engines rig(netlist::make_c95_analog());
  // A PI fault's cone covers many gates in all engines.
  const FaultAnalysis b = rig.bd.analyze(
      fault::StuckAtFault{rig.circuit.inputs()[0], std::nullopt, false});
  EXPECT_GT(b.stats.gates_evaluated, 10u);
  EXPECT_EQ(b.stats.gates_evaluated + b.stats.gates_skipped,
            rig.circuit.num_gates());
}

}  // namespace
}  // namespace dp::core
