// The fault-parallel engine's contract: identical results to the serial
// DifferencePropagator -- bit-identical scalars, not just close -- in input
// order, for any worker count, plus deterministic error propagation and
// coherent engine stats.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "dp/parallel_engine.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dp::core {
namespace {

using fault::BridgeType;
using fault::BridgingFault;
using fault::StuckAtFault;
using netlist::Circuit;
using netlist::Structure;

/// Everything the paper reports per fault, compared with operator== so any
/// drift from the serial engine is an exact-equality failure.
struct Scalars {
  bool detectable = false;
  double detectability = 0.0;
  double upper_bound = 0.0;
  double adherence = 0.0;
  std::size_t pos_fed = 0;
  std::size_t pos_observable = 0;
  std::vector<bool> po_observable;
  double test_set_count = 0.0;  ///< manager-independent test-set size

  bool operator==(const Scalars&) const = default;
};

Scalars scalars(const FaultAnalysis& a, std::size_t num_vars) {
  Scalars s;
  s.detectable = a.detectable;
  s.detectability = a.detectability;
  s.upper_bound = a.upper_bound;
  s.adherence = a.adherence;
  s.pos_fed = a.pos_fed;
  s.pos_observable = a.pos_observable;
  s.po_observable = a.po_observable;
  s.test_set_count = a.test_set.sat_count(num_vars);
  return s;
}

/// Serial reference sweep: one manager, one thread, the pre-engine loop.
template <typename Fault>
std::vector<Scalars> serial_sweep(const Circuit& circuit,
                                  const std::vector<Fault>& faults) {
  Structure structure(circuit);
  bdd::Manager manager(0, 32u * 1024 * 1024);
  GoodFunctions good(manager, circuit);
  DifferencePropagator dp(good, structure);
  std::vector<Scalars> out;
  out.reserve(faults.size());
  for (const Fault& f : faults) {
    out.push_back(scalars(dp.analyze(f), circuit.num_inputs()));
  }
  return out;
}

template <typename Fault>
std::vector<Scalars> parallel_sweep(const Circuit& circuit,
                                    const std::vector<Fault>& faults,
                                    std::size_t jobs) {
  Structure structure(circuit);
  ParallelEngine::Options opt;
  opt.jobs = jobs;
  ParallelEngine engine(circuit, structure, opt);
  std::vector<Scalars> out(faults.size());
  engine.analyze_each(faults, [&](std::size_t i, FaultAnalysis&& a) {
    out[i] = scalars(a, circuit.num_inputs());
  });
  return out;
}

class ParallelEngineIdentityTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelEngineIdentityTest, StuckAtSweepIsBitIdenticalToSerial) {
  const Circuit circuit = netlist::make_benchmark(GetParam());
  const std::vector<StuckAtFault> faults = fault::checkpoint_faults(circuit);
  ASSERT_FALSE(faults.empty());

  const std::vector<Scalars> serial = serial_sweep(circuit, faults);
  for (std::size_t jobs : {2u, 4u}) {
    const std::vector<Scalars> par = parallel_sweep(circuit, faults, jobs);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
      EXPECT_EQ(par[i], serial[i])
          << GetParam() << " jobs=" << jobs << " "
          << describe(faults[i], circuit);
    }
  }
}

TEST_P(ParallelEngineIdentityTest, BridgingSweepIsBitIdenticalToSerial) {
  const Circuit circuit = netlist::make_benchmark(GetParam());
  const Structure structure(circuit);
  std::vector<BridgingFault> faults;
  for (BridgeType type : {BridgeType::And, BridgeType::Or}) {
    const auto all = fault::enumerate_nfbfs(circuit, structure, type);
    // C17's NFBF set is checked in full; larger circuits are strided down
    // to keep the exhaustive serial reference fast.
    const std::size_t stride = all.size() > 150 ? all.size() / 75 : 1;
    for (std::size_t i = 0; i < all.size(); i += stride) {
      faults.push_back(all[i]);
    }
  }
  ASSERT_FALSE(faults.empty());

  const std::vector<Scalars> serial = serial_sweep(circuit, faults);
  const std::vector<Scalars> par = parallel_sweep(circuit, faults, 4);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(par[i], serial[i])
        << GetParam() << " " << describe(faults[i], circuit);
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, ParallelEngineIdentityTest,
                         ::testing::Values("c17", "alu181"));

TEST(ParallelEngineTest, RepeatedSweepsAreDeterministic) {
  const Circuit circuit = netlist::make_alu181();
  const std::vector<StuckAtFault> faults =
      fault::collapse_checkpoint_faults(circuit);
  const std::vector<Scalars> first = parallel_sweep(circuit, faults, 3);
  const std::vector<Scalars> second = parallel_sweep(circuit, faults, 3);
  EXPECT_EQ(first, second);
}

TEST(ParallelEngineTest, AnalyzeAllReturnsInputOrderWithLiveHandles) {
  const Circuit circuit = netlist::make_c17();
  const Structure structure(circuit);
  const std::vector<StuckAtFault> faults = fault::checkpoint_faults(circuit);
  ParallelEngine::Options opt;
  opt.jobs = 2;
  ParallelEngine engine(circuit, structure, opt);
  const std::vector<FaultAnalysis> analyses = engine.analyze_all(faults);
  ASSERT_EQ(analyses.size(), faults.size());
  // The engine owns the workers, so the returned test-set handles remain
  // usable after analyze_all returns.
  for (std::size_t i = 0; i < analyses.size(); ++i) {
    if (analyses[i].detectable) {
      const auto cube = analyses[i].test_set.sat_one();
      std::vector<bool> v(circuit.num_inputs(), false);
      for (std::size_t k = 0; k < v.size(); ++k) v[k] = cube[k] == 1;
      EXPECT_TRUE(analyses[i].test_set.eval(v)) << i;
    }
  }
}

TEST(ParallelEngineTest, SinkSeesEveryIndexExactlyOnce) {
  const Circuit circuit = netlist::make_alu181();
  const Structure structure(circuit);
  const std::vector<StuckAtFault> faults =
      fault::collapse_checkpoint_faults(circuit);
  ParallelEngine::Options opt;
  opt.jobs = 4;
  ParallelEngine engine(circuit, structure, opt);
  std::vector<std::atomic<int>> seen(faults.size());
  engine.analyze_each(faults, [&](std::size_t i, FaultAnalysis&&) {
    seen[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].load(), 1) << i;
  }
}

TEST(ParallelEngineTest, StatsAreCoherent) {
  const Circuit circuit = netlist::make_alu181();
  const Structure structure(circuit);
  const std::vector<StuckAtFault> faults =
      fault::collapse_checkpoint_faults(circuit);
  ParallelEngine::Options opt;
  opt.jobs = 4;
  ParallelEngine engine(circuit, structure, opt);
  EXPECT_EQ(engine.jobs(), 4u);
  (void)engine.analyze_all(faults);

  const ParallelStats& st = engine.stats();
  EXPECT_EQ(st.jobs, 4u);
  EXPECT_EQ(st.faults, faults.size());
  ASSERT_EQ(st.workers.size(), 4u);
  std::size_t total = 0;
  for (const WorkerStats& w : st.workers) {
    total += w.faults_analyzed;
    EXPECT_GE(w.analyze_seconds, 0.0);
    EXPECT_GE(w.max_fault_seconds, 0.0);
    EXPECT_GT(w.build_seconds, 0.0);
    EXPECT_GT(w.apply_calls, 0u);
    EXPECT_EQ(w.ref_underflows, 0u);
  }
  EXPECT_EQ(total, faults.size());
  EXPECT_GT(st.wall_seconds, 0.0);
  EXPECT_GT(st.total_apply_calls(), 0u);
  EXPECT_GE(st.cache_hit_rate(), 0.0);
  EXPECT_LE(st.cache_hit_rate(), 1.0);
}

TEST(ParallelEngineTest, ExportedCountersMatchSerialExactly) {
  const Circuit circuit = netlist::make_alu181();
  const Structure structure(circuit);
  const std::vector<StuckAtFault> faults =
      fault::collapse_checkpoint_faults(circuit);

  // Everything exported as a counter is workload-deterministic: the same
  // fault set must yield identical values for --jobs 1 and --jobs N.
  auto sweep_counters = [&](std::size_t jobs) {
    ParallelEngine::Options opt;
    opt.jobs = jobs;
    ParallelEngine engine(circuit, structure, opt);
    (void)engine.analyze_all(faults);
    obs::MetricsRegistry reg;
    engine.stats().export_metrics(reg);
    return std::array<std::uint64_t, 3>{
        reg.counter("dp.faults_analyzed").value(),
        reg.counter("dp.gates_evaluated").value(),
        reg.counter("dp.gates_skipped").value()};
  };

  const auto serial = sweep_counters(1);
  const auto parallel = sweep_counters(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial[0], faults.size());
  EXPECT_GT(serial[1], 0u);
  EXPECT_GT(serial[2], 0u);  // selective trace must be skipping gates
}

TEST(ParallelEngineTest, SharedTraceBufferRecordsEveryFault) {
  const Circuit circuit = netlist::make_alu181();
  const Structure structure(circuit);
  const std::vector<StuckAtFault> faults =
      fault::collapse_checkpoint_faults(circuit);
  obs::TraceBuffer trace(1u << 12);
  ParallelEngine::Options opt;
  opt.jobs = 3;
  opt.dp.trace = &trace;
  ParallelEngine engine(circuit, structure, opt);
  (void)engine.analyze_all(faults);

  EXPECT_EQ(trace.total_recorded(), faults.size());
  EXPECT_EQ(trace.dropped(), 0u);
  // The per-event payloads must reconcile with the engine's own totals.
  std::int64_t evaluated = 0;
  for (const obs::TraceEvent& e : trace.snapshot()) {
    EXPECT_EQ(e.kind, obs::TraceKind::Fault);
    evaluated += e.a;
  }
  EXPECT_EQ(static_cast<std::uint64_t>(evaluated),
            engine.stats().total_gates_evaluated());
}

TEST(ParallelEngineTest, JobsZeroMeansHardwareConcurrency) {
  const Circuit circuit = netlist::make_c17();
  const Structure structure(circuit);
  ParallelEngine::Options opt;
  opt.jobs = 0;
  ParallelEngine engine(circuit, structure, opt);
  const std::size_t expected =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  EXPECT_EQ(engine.jobs(), expected);
}

TEST(ParallelEngineTest, PerFaultFailureIsRethrownAfterTheSweep) {
  // C6288-class pathology: with cut points the good-function build fits
  // the budget but a deep PI fault's difference BDDs cannot. The engine
  // must surface that worker's OutOfNodes from analyze_all.
  const Circuit circuit = netlist::make_multiplier(16);
  const Structure structure(circuit);
  ParallelEngine::Options opt;
  opt.jobs = 2;
  opt.bdd_node_limit = 1000000;
  opt.good.cut_threshold = 500;
  ParallelEngine engine(circuit, structure, opt);

  const std::vector<StuckAtFault> faults{
      {circuit.inputs()[0], std::nullopt, false}};
  EXPECT_THROW((void)engine.analyze_all(faults), bdd::OutOfNodes);
}

TEST(ParallelEngineTest, SharedForestMatchesPerWorkerBuildsExactly) {
  // The shared-frozen-forest engine (production default) and the
  // per-worker-build engine must agree bit for bit on every scalar: the
  // frozen adoption is a memory optimization, never a semantic one.
  const Circuit circuit = netlist::make_alu181();
  const Structure structure(circuit);
  const std::vector<StuckAtFault> faults =
      fault::collapse_checkpoint_faults(circuit);

  ParallelEngine::Options shared_opt;
  shared_opt.jobs = 3;
  ASSERT_TRUE(shared_opt.shared_forest) << "sharing must be the default";
  ParallelEngine shared(circuit, structure, shared_opt);

  ParallelEngine::Options unshared_opt;
  unshared_opt.jobs = 3;
  unshared_opt.shared_forest = false;
  ParallelEngine unshared(circuit, structure, unshared_opt);

  const auto a = shared.analyze_all(faults);
  const auto b = unshared.analyze_all(faults);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(scalars(a[i], circuit.num_inputs()),
              scalars(b[i], circuit.num_inputs()))
        << describe(faults[i], circuit);
  }
  EXPECT_GT(shared.stats().frozen_nodes, 0u);
  EXPECT_EQ(unshared.stats().frozen_nodes, 0u);
}

TEST(ParallelEngineTest, MoreJobsThanFaultsIsExactAndCoherent) {
  // Edge case: a pool wider than the fault list. Idle workers must not
  // disturb the input-order merge, the results, or the stats.
  const Circuit circuit = netlist::make_c17();
  const Structure structure(circuit);
  std::vector<StuckAtFault> faults = fault::collapse_checkpoint_faults(circuit);
  faults.resize(3);
  const std::vector<Scalars> serial = serial_sweep(circuit, faults);

  ParallelEngine::Options opt;
  opt.jobs = 8;
  ParallelEngine engine(circuit, structure, opt);
  std::vector<Scalars> out(faults.size());
  std::atomic<std::size_t> delivered{0};
  engine.analyze_each(faults, [&](std::size_t i, FaultAnalysis&& a) {
    out[i] = scalars(a, circuit.num_inputs());
    delivered.fetch_add(1);
  });
  EXPECT_EQ(delivered.load(), faults.size());
  EXPECT_EQ(out, serial);

  const ParallelStats& stats = engine.stats();
  EXPECT_EQ(stats.jobs, 8u);
  EXPECT_EQ(stats.faults, faults.size());
  ASSERT_EQ(stats.workers.size(), 8u);
  std::size_t busy = 0, total = 0;
  for (const WorkerStats& w : stats.workers) {
    total += w.faults_analyzed;
    if (w.faults_analyzed > 0) ++busy;
  }
  EXPECT_EQ(total, faults.size());
  EXPECT_LE(busy, faults.size());
}

TEST(ParallelEngineTest, BuildFailureIsRethrownFromTheConstructor) {
  // Without cut points the 16x16 multiplier build itself exhausts the
  // budget inside the worker threads; the constructor must rethrow.
  const Circuit circuit = netlist::make_multiplier(16);
  const Structure structure(circuit);
  ParallelEngine::Options opt;
  opt.jobs = 2;
  opt.bdd_node_limit = 1000000;
  EXPECT_THROW((ParallelEngine{circuit, structure, opt}), bdd::OutOfNodes);
}

}  // namespace
}  // namespace dp::core
