// The persistent-artifact contracts: cache keys are stable and
// collision-shy, forests round-trip across managers (and across variable
// reorders) with strict rejection of corrupt bytes, the artifact store
// degrades to a miss instead of crashing, and the dp.profile.v1 /
// dp.checkpoint.v1 documents reproduce every scalar bit-for-bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/profile_io.hpp"
#include "bdd/manager.hpp"
#include "netlist/generators.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "store/artifact_store.hpp"
#include "store/bdd_io.hpp"
#include "store/hash.hpp"

namespace dp::store {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under the ctest working dir.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            ("dp_store_test_" + tag + "_" + info->name());
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

// ---- KeyBuilder / circuit hash ----------------------------------------

TEST(KeyBuilderTest, DeterministicAndBoundaryAware) {
  KeyBuilder a, b;
  a.str("ab").str("c").u64(7);
  b.str("ab").str("c").u64(7);
  EXPECT_EQ(a.hex(), b.hex());
  EXPECT_EQ(a.hex().size(), 32u);

  KeyBuilder shifted;
  shifted.str("a").str("bc").u64(7);  // same bytes, different boundaries
  EXPECT_NE(a.hex(), shifted.hex());

  KeyBuilder other;
  other.str("ab").str("c").u64(8);
  EXPECT_NE(a.hex(), other.hex());
}

TEST(KeyBuilderTest, F64HashesBitPattern) {
  KeyBuilder pos, neg;
  pos.f64(0.0);
  neg.f64(-0.0);
  EXPECT_NE(pos.hex(), neg.hex());
}

TEST(CircuitHashTest, StableAndNameBlind) {
  const netlist::Circuit a = netlist::make_benchmark("c432");
  const netlist::Circuit b = netlist::make_benchmark("c432");
  EXPECT_EQ(circuit_content_hash(a), circuit_content_hash(b));
  // A different structure must hash differently.
  const netlist::Circuit c = netlist::make_benchmark("c17");
  EXPECT_NE(circuit_content_hash(a), circuit_content_hash(c));
}

// ---- forest serialization ---------------------------------------------

/// Exhaustive semantic equality over all assignments of `nvars` inputs.
bool same_function(const bdd::Bdd& f, const bdd::Bdd& g, std::size_t nvars) {
  for (std::size_t bits = 0; bits < (1u << nvars); ++bits) {
    std::vector<bool> v(nvars);
    for (std::size_t i = 0; i < nvars; ++i) v[i] = (bits >> i) & 1;
    if (f.eval(v) != g.eval(v)) return false;
  }
  return true;
}

std::vector<bdd::Bdd> small_forest(bdd::Manager& mgr) {
  const bdd::Bdd x0 = mgr.var(0), x1 = mgr.var(1), x2 = mgr.var(2),
                 x3 = mgr.var(3);
  return {(x0 & x1) | (x2 & x3), x0 ^ (x1 | !x3), mgr.one(), mgr.zero(),
          bdd::Bdd()};  // invalid handle must round-trip as invalid
}

TEST(BddIoTest, RoundTripsAcrossManagers) {
  bdd::Manager src(4);
  const auto roots = small_forest(src);

  std::stringstream buf;
  save_forest(buf, src, roots);

  bdd::Manager dst(0);  // variables created on demand by the loader
  const auto loaded = load_forest(buf, dst);
  ASSERT_EQ(loaded.size(), roots.size());
  EXPECT_FALSE(loaded[4].valid());
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(loaded[i].valid());
    EXPECT_TRUE(same_function(roots[i], loaded[i], 4)) << "root " << i;
  }
}

TEST(BddIoTest, ForestSurvivesSiftReorderOnEitherSide) {
  bdd::Manager src(4);
  auto roots = small_forest(src);

  // Save, then reorder the SOURCE manager: the bytes already written must
  // stay loadable and denote the same functions the source still holds.
  std::stringstream before;
  save_forest(before, src, roots);
  src.sift_reorder();

  bdd::Manager fresh(0);
  const auto loaded = load_forest(before, fresh);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(same_function(roots[i], loaded[i], 4)) << "root " << i;
  }

  // And save AFTER the reorder (non-identity order in the header): a
  // fresh identity-ordered manager must still reconstruct the functions.
  std::stringstream after;
  save_forest(after, src, roots);
  bdd::Manager fresh2(0);
  const auto loaded2 = load_forest(after, fresh2);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(same_function(roots[i], loaded2[i], 4)) << "root " << i;
  }

  // restore_variable_order re-imposes the saved (sifted) order.
  std::stringstream again;
  save_forest(again, src, roots);
  bdd::Manager fresh3(0);
  ForestLoadOptions opt;
  opt.restore_variable_order = true;
  const auto loaded3 = load_forest(again, fresh3, opt);
  EXPECT_EQ(fresh3.variable_order(), src.variable_order());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(same_function(roots[i], loaded3[i], 4)) << "root " << i;
  }
}

TEST(BddIoTest, RejectsTruncationCorruptionAndTrailingBytes) {
  bdd::Manager src(4);
  const auto roots = small_forest(src);
  std::stringstream buf;
  save_forest(buf, src, roots);
  const std::string bytes = buf.str();

  {  // truncation at every prefix length must throw, never misparse
    for (std::size_t cut : {std::size_t{0}, std::size_t{3}, bytes.size() / 2,
                            bytes.size() - 1}) {
      std::stringstream t(bytes.substr(0, cut));
      bdd::Manager m(0);
      EXPECT_THROW(load_forest(t, m), StoreError) << "cut=" << cut;
    }
  }
  {  // single flipped byte fails the checksum
    std::string corrupt = bytes;
    corrupt[corrupt.size() / 2] ^= 0x40;
    std::stringstream t(corrupt);
    bdd::Manager m(0);
    EXPECT_THROW(load_forest(t, m), StoreError);
  }
  {  // trailing garbage is rejected (a concatenated file is not a forest)
    std::stringstream t(bytes + "x");
    bdd::Manager m(0);
    EXPECT_THROW(load_forest(t, m), StoreError);
  }
  {  // wrong magic
    std::string corrupt = bytes;
    corrupt[0] ^= 0xff;
    std::stringstream t(corrupt);
    bdd::Manager m(0);
    EXPECT_THROW(load_forest(t, m), StoreError);
  }
}

/// Rewrites the version field of serialized forest bytes and restamps the
/// trailing FNV-1a checksum, simulating an artifact written by an older
/// kernel (v1 used two-terminal node ids; v2 uses complement-edge refs).
std::string with_format_version(std::string bytes, std::uint32_t version) {
  // Header layout: magic u32, endian u32, version u32 (offset 8).
  std::memcpy(bytes.data() + 8, &version, sizeof version);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i + 8 < bytes.size(); ++i) {
    h = (h ^ static_cast<unsigned char>(bytes[i])) * 0x100000001b3ull;
  }
  std::memcpy(bytes.data() + bytes.size() - 8, &h, sizeof h);
  return bytes;
}

TEST(BddIoTest, RejectsV1FormatVersion) {
  // A v1 artifact's node ids mean something different (two terminals, no
  // complement bit), so the loader must refuse the version outright
  // rather than misinterpret the refs.
  bdd::Manager src(4);
  const auto roots = small_forest(src);
  std::stringstream buf;
  save_forest(buf, src, roots);

  std::stringstream v1(with_format_version(buf.str(), 1));
  bdd::Manager m(0);
  try {
    load_forest(v1, m);
    FAIL() << "v1 forest bytes were accepted";
  } catch (const StoreError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("version 1"), std::string::npos);
  }
}

TEST(ArtifactStoreTest, V1ForestDegradesToCountedCorruptMiss) {
  // A warm cache directory written before the complement-edge kernel must
  // self-heal: the v1 artifact is a counted corrupt miss (no crash), and
  // the recomputed v2 artifact then round-trips.
  TempDir dir("v1cache");
  obs::MetricsRegistry metrics;
  ArtifactStore store(dir.str(), ArtifactStore::Options{}, &metrics);

  bdd::Manager src(4);
  const auto roots = small_forest(src);
  ASSERT_TRUE(store.store_forest("k", "good", src, roots));

  // Downgrade the cached artifact in place to format version 1.
  const std::string path = store.forest_path("k", "good");
  std::ifstream in(path, std::ios::binary);
  std::stringstream raw;
  raw << in.rdbuf();
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << with_format_version(raw.str(), 1);

  bdd::Manager dst(0);
  EXPECT_FALSE(store.load_forest("k", "good", dst).has_value());
  EXPECT_EQ(metrics.counter("store.good.corrupt").value(), 1u);

  // The recompute path overwrites the stale artifact with v2 bytes.
  ASSERT_TRUE(store.store_forest("k", "good", src, roots));
  bdd::Manager dst2(0);
  const auto reloaded = store.load_forest("k", "good", dst2);
  ASSERT_TRUE(reloaded.has_value());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(same_function(roots[i], (*reloaded)[i], 4)) << "root " << i;
  }
}

TEST(BddIoTest, FileRoundTripIsAtomic) {
  TempDir dir("bddio");
  const std::string path = dir.str() + "/forest.bdd";
  bdd::Manager src(4);
  const auto roots = small_forest(src);
  save_forest_file(path, src, roots);

  bdd::Manager dst(0);
  const auto loaded = load_forest_file(path, dst);
  EXPECT_TRUE(same_function(roots[0], loaded[0], 4));

  // No temp droppings next to the artifact.
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);

  EXPECT_THROW(load_forest_file(dir.str() + "/absent.bdd", dst), StoreError);
}

TEST(BddIoTest, TransferCopiesAcrossManagers) {
  bdd::Manager a(4);
  const bdd::Bdd f = (a.var(0) & a.var(1)) ^ a.var(3);
  bdd::Manager b(0);
  const bdd::Bdd g = transfer(b, f);
  EXPECT_EQ(g.manager(), &b);
  EXPECT_TRUE(same_function(f, g, 4));
  EXPECT_FALSE(transfer(b, bdd::Bdd()).valid());
}

// ---- artifact store ----------------------------------------------------

TEST(ArtifactStoreTest, DocumentHitMissCorrupt) {
  TempDir dir("store");
  obs::MetricsRegistry metrics;
  ArtifactStore store(dir.str(), ArtifactStore::Options{}, &metrics);

  EXPECT_FALSE(store.load_document("k1", "profile").has_value());
  EXPECT_EQ(metrics.counter("store.profile.misses").value(), 1u);

  obs::JsonValue doc = obs::JsonValue::object();
  doc["answer"] = 42;
  ASSERT_TRUE(store.store_document("k1", "profile", doc));
  const auto back = store.load_document("k1", "profile");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->at("answer").as_int(), 42);
  EXPECT_EQ(metrics.counter("store.profile.hits").value(), 1u);
  EXPECT_EQ(metrics.counter("store.profile.stores").value(), 1u);

  // Corrupt bytes degrade to a miss, never to a throw.
  std::ofstream(store.document_path("k2", "profile")) << "{not json";
  EXPECT_FALSE(store.load_document("k2", "profile").has_value());
  EXPECT_EQ(metrics.counter("store.profile.corrupt").value(), 1u);

  store.remove("k1", "profile");
  EXPECT_FALSE(store.load_document("k1", "profile").has_value());
}

TEST(ArtifactStoreTest, ForestRoundTripAndCorruptFallback) {
  TempDir dir("forest");
  obs::MetricsRegistry metrics;
  ArtifactStore store(dir.str(), ArtifactStore::Options{}, &metrics);

  bdd::Manager src(4);
  const auto roots = small_forest(src);
  ASSERT_TRUE(store.store_forest("k", "tests", src, roots));

  bdd::Manager dst(0);
  const auto loaded = store.load_forest("k", "tests", dst);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(same_function(roots[0], (*loaded)[0], 4));

  // Flip one byte in place: the next load must be a counted corrupt miss.
  const std::string path = store.forest_path("k", "tests");
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(20);
  f.put('\x7f');
  f.close();
  bdd::Manager dst2(0);
  EXPECT_FALSE(store.load_forest("k", "tests", dst2).has_value());
  EXPECT_EQ(metrics.counter("store.tests.corrupt").value(), 1u);
}

// One shared store hammered by writer, reader, remover and pruner
// threads at once (the dpserved worker-pool access pattern). Every load
// must return either a complete document or a miss -- a torn read would
// surface as a corrupt count or a wrong value -- and the store must not
// crash or deadlock. Run under the tsan preset this is the data-race
// gate for the striped entry locks.
TEST(ArtifactStoreTest, ConcurrentReadersWritersAndPrune) {
  TempDir dir("threads");
  ArtifactStore::Options opt;
  opt.max_bytes = 1u << 20;  // large enough that prune stays a no-op
  obs::MetricsRegistry metrics;
  ArtifactStore store(dir.str(), opt, &metrics);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 120;
  constexpr int kKeys = 5;  // deliberate same-stripe/same-entry collisions
  std::atomic<int> torn_reads{0};
  std::atomic<int> failures{0};

  auto worker = [&](int tid) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      const std::string key = "k" + std::to_string((tid + i) % kKeys);
      switch (i % 4) {
        case 0: {
          obs::JsonValue doc = obs::JsonValue::object();
          // Both members carry the same value so a reader can detect a
          // mixed (torn) document.
          doc["a"] = tid * 1000 + i;
          doc["b"] = tid * 1000 + i;
          if (!store.store_document(key, "profile", doc)) ++failures;
          break;
        }
        case 1: {
          const auto back = store.load_document(key, "profile");
          if (back.has_value()) {
            if (back->at("a").as_int() != back->at("b").as_int()) {
              ++torn_reads;
            }
          }
          break;
        }
        case 2: store.remove(key, "profile"); break;
        case 3: store.prune(); break;
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  // Corrupt loads would mean a reader saw a partial write.
  EXPECT_EQ(metrics.counter("store.profile.corrupt").value(), 0u);
  // The instrument totals must balance: every op was counted exactly once.
  const std::uint64_t loads = metrics.counter("store.profile.hits").value() +
                              metrics.counter("store.profile.misses").value();
  EXPECT_EQ(loads, static_cast<std::uint64_t>(kThreads * kOpsPerThread / 4));
}

TEST(ArtifactStoreTest, ConcurrentForestAccessSameEntry) {
  TempDir dir("forest_threads");
  obs::MetricsRegistry metrics;
  ArtifactStore store(dir.str(), ArtifactStore::Options{}, &metrics);

  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 30;
  std::atomic<int> bad{0};
  auto worker = [&](int tid) {
    bdd::Manager m(4);
    const auto roots = small_forest(m);
    for (int i = 0; i < kOpsPerThread; ++i) {
      if ((tid + i) % 2 == 0) {
        if (!store.store_forest("shared", "tests", m, roots)) ++bad;
      } else {
        bdd::Manager dst(0);
        const auto loaded = store.load_forest("shared", "tests", dst);
        if (loaded.has_value() &&
            !same_function(roots[0], (*loaded)[0], 4)) {
          ++bad;
        }
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(metrics.counter("store.tests.corrupt").value(), 0u);
}

TEST(ArtifactStoreTest, PruneEvictsOldestBeyondBudget) {
  TempDir dir("prune");
  ArtifactStore::Options opt;
  opt.max_bytes = 1;  // everything over one byte is evictable
  obs::MetricsRegistry metrics;
  ArtifactStore store(dir.str(), opt, &metrics);

  obs::JsonValue doc = obs::JsonValue::object();
  doc["x"] = 1;
  // store_document prunes after writing, so after both writes at most the
  // newest artifact survives each pass.
  store.store_document("a", "profile", doc);
  store.store_document("b", "profile", doc);
  EXPECT_LE(store.size_bytes(), static_cast<std::uintmax_t>(64));
  EXPECT_GE(metrics.counter("store.evictions").value(), 1u);
}

// ---- dp.profile.v1 / dp.checkpoint.v1 ---------------------------------

analysis::FaultRecord nasty_record() {
  analysis::FaultRecord r;
  r.detectable = true;
  r.detectability = 1.0 / 3.0;  // not representable in decimal
  r.upper_bound = 0.1 + 0.2;    // classic rounding trap
  r.adherence = 6.1e-17;
  r.pos_fed = 7;
  r.pos_observable = 5;
  r.max_levels_to_po = -1;
  r.level_from_pi = 12;
  r.branch_site = true;
  r.bridge_stuck_at = true;
  r.gates_evaluated = (1ull << 53) + 1;  // beyond exact double integers
  r.gates_skipped = 3;
  return r;
}

TEST(ProfileIoTest, ProfileRoundTripsBitIdentically) {
  analysis::CircuitProfile p;
  p.circuit = "toy";
  p.netlist_size = 9;
  p.num_inputs = 4;
  p.num_outputs = 2;
  p.faults = {nasty_record(), analysis::FaultRecord{}};

  const obs::JsonValue doc = analysis::profile_to_json(p, "key123");
  // Through text: serialize + reparse, as the artifact store does.
  std::ostringstream os;
  doc.write(os, 2);
  const obs::JsonValue reparsed = obs::JsonValue::parse(os.str());
  const auto back = analysis::profile_from_json(reparsed, "key123");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->circuit, p.circuit);
  ASSERT_EQ(back->faults.size(), 2u);
  const analysis::FaultRecord& a = p.faults[0];
  const analysis::FaultRecord& b = back->faults[0];
  EXPECT_EQ(a.detectable, b.detectable);
  EXPECT_EQ(a.detectability, b.detectability);  // exact, not near
  EXPECT_EQ(a.upper_bound, b.upper_bound);
  EXPECT_EQ(a.adherence, b.adherence);
  EXPECT_EQ(a.pos_fed, b.pos_fed);
  EXPECT_EQ(a.pos_observable, b.pos_observable);
  EXPECT_EQ(a.max_levels_to_po, b.max_levels_to_po);
  EXPECT_EQ(a.level_from_pi, b.level_from_pi);
  EXPECT_EQ(a.branch_site, b.branch_site);
  EXPECT_EQ(a.bridge_stuck_at, b.bridge_stuck_at);
  EXPECT_EQ(a.gates_evaluated, b.gates_evaluated);
  EXPECT_EQ(a.gates_skipped, b.gates_skipped);

  // Wrong key and wrong schema are both strict rejections.
  EXPECT_FALSE(analysis::profile_from_json(reparsed, "other").has_value());
  obs::JsonValue wrong = reparsed;
  wrong["schema"] = "dp.profile.v999";
  EXPECT_FALSE(analysis::profile_from_json(wrong, "key123").has_value());
}

TEST(ProfileIoTest, CheckpointRejectsStaleness) {
  analysis::SweepCheckpoint ckpt;
  ckpt.key = "k";
  ckpt.total_faults = 10;
  ckpt.completed = {nasty_record()};
  const obs::JsonValue doc = analysis::checkpoint_to_json(ckpt);

  EXPECT_TRUE(analysis::checkpoint_from_json(doc, "k", 10).has_value());
  // Stale key (options or circuit changed since the checkpoint).
  EXPECT_FALSE(analysis::checkpoint_from_json(doc, "k2", 10).has_value());
  // Stale total (fault model changed).
  EXPECT_FALSE(analysis::checkpoint_from_json(doc, "k", 11).has_value());
  // Wrong schema entirely.
  obs::JsonValue wrong = doc;
  wrong["schema"] = "dp.metrics.v1";
  EXPECT_FALSE(analysis::checkpoint_from_json(wrong, "k", 10).has_value());
}

TEST(ProfileIoTest, CacheKeyTracksResultAffectingOptions) {
  const netlist::Circuit c = netlist::make_benchmark("c17");
  analysis::AnalysisOptions opt;
  const std::string base = analysis::profile_cache_key(c, "sa", opt);
  EXPECT_EQ(base, analysis::profile_cache_key(c, "sa", opt));  // stable

  analysis::AnalysisOptions jobs = opt;
  jobs.jobs = 8;  // value-neutral: results are bit-identical for any jobs
  EXPECT_EQ(base, analysis::profile_cache_key(c, "sa", jobs));

  analysis::AnalysisOptions full = opt;
  full.collapse = !full.collapse;
  EXPECT_NE(base, analysis::profile_cache_key(c, "sa", full));

  analysis::AnalysisOptions seed = opt;
  seed.sampling.seed += 1;
  EXPECT_NE(base, analysis::profile_cache_key(c, "sa", seed));

  EXPECT_NE(base, analysis::profile_cache_key(c, "bf.and", opt));
}

// ---- atomic JSON writes ------------------------------------------------

TEST(AtomicWriteTest, WritesWholeFileAndCleansUp) {
  TempDir dir("atomic");
  const std::string path = dir.str() + "/doc.json";
  ASSERT_TRUE(obs::atomic_write_file(path, "hello"));
  {
    std::ifstream is(path);
    std::string s;
    std::getline(is, s);
    EXPECT_EQ(s, "hello");
  }
  // Overwrite through the same path: the reader sees old or new, and
  // afterwards exactly one file remains (no temp droppings).
  ASSERT_TRUE(obs::atomic_write_file(path, "world"));
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);

  std::string error;
  EXPECT_FALSE(obs::atomic_write_file(
      dir.str() + "/no/such/dir/doc.json", "x", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace dp::store
