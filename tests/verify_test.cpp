// The differential fuzzing subsystem, tested against itself: clean
// engines must fuzz clean, every injected mutation must be caught and
// minimized, and the report/reproducer artifacts must round-trip.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "netlist/bench_io.hpp"
#include "obs/json.hpp"
#include "verify/fuzzer.hpp"

namespace dp::verify {
namespace {

namespace fs = std::filesystem;

/// Unique-per-process scratch root under the build tree's temp dir.
std::string scratch_root(const std::string& tag) {
  std::ostringstream os;
  os << fs::temp_directory_path().string() << "/dpfuzz_test_" << tag << "_"
     << ::getpid();
  return os.str();
}

struct ScratchDir {
  std::string path;
  explicit ScratchDir(const std::string& tag) : path(scratch_root(tag)) {
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

CampaignConfig small_config(std::uint64_t seed, std::size_t cases,
                            const std::string& scratch) {
  CampaignConfig config;
  config.cases.seed = seed;
  config.cases.max_inputs = 7;  // keep the 2^n sweeps quick in debug
  config.cases.max_gates = 25;
  config.num_cases = cases;
  config.oracle.jobs = 2;
  config.oracle.scratch_dir = scratch;
  return config;
}

TEST(CaseGenTest, CasesAreDeterministicAndSelfContained) {
  CaseConfig config;
  config.seed = 7;
  const FuzzCase a = make_case(config, 3);
  const FuzzCase b = make_case(config, 3);
  EXPECT_EQ(a.case_seed, b.case_seed);
  EXPECT_EQ(a.circuit.num_nets(), b.circuit.num_nets());
  EXPECT_EQ(a.sa_faults, b.sa_faults);
  EXPECT_EQ(a.bridges, b.bridges);

  // A case regenerates from its derived seed alone (the reproducer path).
  const FuzzCase c = make_case_from_seed(config, a.case_seed);
  EXPECT_EQ(c.circuit.num_nets(), a.circuit.num_nets());
  EXPECT_EQ(c.sa_faults, a.sa_faults);
  EXPECT_EQ(c.shape, a.shape);

  // Distinct indices give distinct seeds (splitmix decorrelation).
  EXPECT_NE(derive_case_seed(7, 3), derive_case_seed(7, 4));
  EXPECT_NE(derive_case_seed(7, 3), derive_case_seed(8, 3));
}

TEST(CaseGenTest, SampleRespectsConfiguredBounds) {
  CaseConfig config;
  config.seed = 11;
  config.max_sa_faults = 5;
  config.max_bridges = 3;
  for (std::uint64_t i = 0; i < 10; ++i) {
    const FuzzCase fc = make_case(config, i);
    EXPECT_LE(fc.sa_faults.size(), 5u);
    EXPECT_LE(fc.bridges.size(), 3u);
    EXPECT_GE(static_cast<int>(fc.circuit.num_inputs()), config.min_inputs);
    EXPECT_LE(static_cast<int>(fc.circuit.num_inputs()), config.max_inputs);
  }
}

TEST(OracleTest, CleanEnginesProduceNoDiscrepancies) {
  ScratchDir scratch("oracle");
  OracleConfig config;
  config.jobs = 2;
  config.scratch_dir = scratch.path;
  CaseConfig cases;
  cases.seed = 1;
  cases.max_inputs = 7;
  cases.max_gates = 25;
  for (std::uint64_t i = 0; i < 6; ++i) {
    const FuzzCase fc = make_case(cases, i);
    const OracleResult result = run_oracles(fc, config);
    EXPECT_TRUE(result.ok())
        << "case " << i << ": " << result.discrepancies.size()
        << " discrepancies, first: "
        << (result.discrepancies.empty()
                ? ""
                : result.discrepancies[0].oracle + " " +
                      result.discrepancies[0].subject + " " +
                      result.discrepancies[0].detail);
    EXPECT_GT(result.faults_checked, 0u) << "case " << i;
    EXPECT_GT(result.vectors_checked, 0u) << "case " << i;
  }
}

TEST(OracleTest, EveryMutationIsDetected) {
  CaseConfig cases;
  cases.seed = 2;
  cases.max_inputs = 6;
  cases.max_gates = 20;
  const FuzzCase fc = make_case(cases, 0);
  ASSERT_FALSE(fc.sa_faults.empty());
  for (Mutation m :
       {Mutation::InflateDetectability, Mutation::DropTestVector,
        Mutation::FlipSyndrome, Mutation::PerturbParallelMerge}) {
    OracleConfig config;
    config.jobs = 2;
    config.mutate = m;
    const OracleResult result = run_oracles(fc, config);
    EXPECT_FALSE(result.ok()) << to_string(m);
  }
  // And the same case with no mutation is clean (the control).
  OracleConfig config;
  config.jobs = 2;
  EXPECT_TRUE(run_oracles(fc, config).ok());
}

TEST(ShrinkTest, SketchRoundTripsTheOriginalCase) {
  CaseConfig cases;
  cases.seed = 3;
  const FuzzCase fc = make_case(cases, 1);
  const CaseSketch sketch = sketch_from_case(fc);
  const auto rebuilt = build_case(sketch, fc.case_seed, fc.shape);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(rebuilt->circuit.num_nets(), fc.circuit.num_nets());
  EXPECT_EQ(rebuilt->circuit.num_inputs(), fc.circuit.num_inputs());
  EXPECT_EQ(rebuilt->circuit.num_outputs(), fc.circuit.num_outputs());
  EXPECT_EQ(rebuilt->sa_faults.size(), fc.sa_faults.size());
  EXPECT_EQ(rebuilt->bridges.size(), fc.bridges.size());
  for (netlist::NetId id = 0; id < fc.circuit.num_nets(); ++id) {
    EXPECT_EQ(rebuilt->circuit.type(id), fc.circuit.type(id));
  }
}

TEST(ShrinkTest, MutatedCaseShrinksToAFewGates) {
  CaseConfig cases;
  cases.seed = 4;
  cases.max_inputs = 7;
  const FuzzCase fc = make_case(cases, 0);
  ASSERT_FALSE(fc.sa_faults.empty());
  OracleConfig config;
  config.jobs = 2;
  config.mutate = Mutation::InflateDetectability;
  const OracleResult original = run_oracles(fc, config);
  ASSERT_FALSE(original.ok());

  const ShrinkResult shrunk = shrink_case(fc, config, original);
  EXPECT_LE(shrunk.gates_after, 10u);
  EXPECT_LE(shrunk.faults_after, 2u);
  EXPECT_LT(shrunk.gates_after, shrunk.gates_before);
  // The minimized case still fails under the same configuration.
  EXPECT_FALSE(run_oracles(shrunk.reduced, config).ok());
}

TEST(FuzzerTest, CleanCampaignReportsZeroDiscrepancies) {
  ScratchDir scratch("campaign");
  CampaignConfig config = small_config(5, 8, scratch.path);
  const CampaignResult result = run_campaign(config);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.cases_run, 8u);
  EXPECT_EQ(result.discrepancy_count, 0u);
  EXPECT_GT(result.faults_checked, 0u);
  EXPECT_GT(result.vectors_checked, 0u);

  const obs::JsonValue doc = report_to_json(result);
  EXPECT_EQ(doc.at("schema").as_string(), kFuzzReportSchema);
  EXPECT_EQ(doc.at("tool").as_string(), "dpfuzz");
  EXPECT_EQ(doc.at("cases_run").as_int(), 8);
  EXPECT_EQ(doc.at("discrepancies").as_int(), 0);
  EXPECT_EQ(doc.at("failures").size(), 0u);

  // Round-trip through the writer and strict parser.
  const std::string path = scratch.path + "/report.json";
  ASSERT_TRUE(write_report(path, result));
  const obs::JsonValue back = obs::read_json_file(path);
  EXPECT_EQ(back.at("schema").as_string(), kFuzzReportSchema);
  EXPECT_EQ(back.at("vectors_checked").as_int(),
            static_cast<long long>(result.vectors_checked));
}

TEST(FuzzerTest, MutatedCampaignEmitsShrunkReproducers) {
  ScratchDir scratch("repro");
  CampaignConfig config = small_config(6, 4, scratch.path);
  config.oracle.mutate = Mutation::InflateDetectability;
  config.oracle.check_store = false;
  config.repro_dir = scratch.path + "/repro";
  config.max_failures = 1;
  const CampaignResult result = run_campaign(config);
  ASSERT_FALSE(result.failures.empty());
  const CaseFailure& failure = result.failures[0];
  EXPECT_LE(failure.shrunk_gates, 10u);

  // The reproducer .bench parses back into a valid circuit.
  ASSERT_FALSE(failure.repro_bench_path.empty());
  netlist::Circuit repro = netlist::read_bench_file(failure.repro_bench_path);
  EXPECT_EQ(repro.num_gates(), failure.shrunk_gates);

  // The reproducer JSON carries the seed and the engine configuration.
  const obs::JsonValue doc = obs::read_json_file(failure.repro_json_path);
  EXPECT_EQ(doc.at("schema").as_string(), "dp.fuzzrepro.v1");
  EXPECT_EQ(static_cast<std::uint64_t>(doc.at("case_seed").as_int()),
            failure.case_seed);
  EXPECT_EQ(doc.at("engine").at("mutation").as_string(),
            "inflate_detectability");
  EXPECT_GT(doc.at("discrepancies").size(), 0u);

  // The report embeds the same failure.
  const obs::JsonValue report = report_to_json(result);
  EXPECT_GT(report.at("discrepancies").as_int(), 0);
  EXPECT_EQ(report.at("failures").size(), 1u);
}

TEST(FuzzerTest, SelfTestPassesOnEveryMutation) {
  ScratchDir scratch("selftest");
  CampaignConfig config = small_config(1, 4, scratch.path);
  std::ostringstream log;
  EXPECT_TRUE(run_self_test(config, log)) << log.str();
  // One line per mutation plus the verdict.
  EXPECT_NE(log.str().find("inflate_detectability: caught"),
            std::string::npos)
      << log.str();
  EXPECT_NE(log.str().find("PASS"), std::string::npos);
}

}  // namespace
}  // namespace dp::verify
