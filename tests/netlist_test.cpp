// Unit tests for the netlist substrate: construction rules, structural
// analysis (levels, reachability), layout estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "netlist/circuit.hpp"
#include "netlist/generators.hpp"
#include "netlist/layout.hpp"
#include "netlist/structure.hpp"

namespace dp::netlist {
namespace {

Circuit tiny() {
  // a, b -> g1 = AND(a,b); g2 = NOT(g1); POs: g1, g2.
  Circuit c("tiny");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId g1 = c.add_gate(GateType::And, {a, b}, "g1");
  NetId g2 = c.add_gate(GateType::Not, {g1}, "g2");
  c.mark_output(g1);
  c.mark_output(g2);
  c.finalize();
  return c;
}

TEST(CircuitTest, BasicAccessors) {
  Circuit c = tiny();
  EXPECT_EQ(c.num_nets(), 4u);
  EXPECT_EQ(c.num_inputs(), 2u);
  EXPECT_EQ(c.num_outputs(), 2u);
  EXPECT_EQ(c.num_gates(), 2u);
  EXPECT_EQ(c.type(*c.find_net("g1")), GateType::And);
  EXPECT_EQ(c.net_name(c.inputs()[0]), "a");
  EXPECT_FALSE(c.find_net("nope").has_value());
}

TEST(CircuitTest, InputIndexTracksPiOrder) {
  Circuit c = tiny();
  EXPECT_EQ(c.input_index(*c.find_net("a")), 0u);
  EXPECT_EQ(c.input_index(*c.find_net("b")), 1u);
  EXPECT_FALSE(c.input_index(*c.find_net("g1")).has_value());
}

TEST(CircuitTest, FanoutsTrackPins) {
  Circuit c = tiny();
  NetId g1 = *c.find_net("g1");
  ASSERT_EQ(c.fanouts(g1).size(), 1u);
  EXPECT_EQ(c.fanouts(g1)[0].gate, *c.find_net("g2"));
  EXPECT_EQ(c.fanouts(g1)[0].pin, 0u);
  EXPECT_EQ(c.fanout_count(*c.find_net("a")), 1u);
}

TEST(CircuitTest, TopoOrderRespectsDependencies) {
  Circuit c = tiny();
  const auto& topo = c.topo_order();
  std::vector<std::size_t> pos(c.num_nets());
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (NetId id = 0; id < c.num_nets(); ++id) {
    for (NetId f : c.fanins(id)) EXPECT_LT(pos[f], pos[id]);
  }
}

TEST(CircuitTest, DuplicateDefinitionThrows) {
  Circuit c("dup");
  NetId a = c.add_input("a");
  EXPECT_THROW(c.define_input(a), NetlistError);
  EXPECT_THROW(c.add_input("a"), NetlistError);
}

TEST(CircuitTest, UndefinedNetCaughtAtFinalize) {
  Circuit c("undef");
  NetId a = c.add_input("a");
  NetId ghost = c.declare("ghost");
  NetId g = c.add_gate(GateType::And, {a, ghost}, "g");
  c.mark_output(g);
  EXPECT_THROW(c.finalize(), NetlistError);
}

TEST(CircuitTest, CombinationalLoopThrows) {
  Circuit c("loop");
  NetId a = c.add_input("a");
  NetId x = c.declare("x");
  NetId y = c.add_gate(GateType::And, {a, x}, "y");
  c.define_gate(x, GateType::Not, {y});
  c.mark_output(y);
  EXPECT_THROW(c.finalize(), NetlistError);
}

TEST(CircuitTest, ArityViolationsThrow) {
  Circuit c("arity");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  EXPECT_THROW(c.add_gate(GateType::Not, {a, b}, "bad_not"), NetlistError);
  EXPECT_THROW(c.add_gate(GateType::And, {}, "bad_and"), NetlistError);
}

TEST(CircuitTest, NoOutputsThrows) {
  Circuit c("nopo");
  c.add_input("a");
  EXPECT_THROW(c.finalize(), NetlistError);
}

TEST(CircuitTest, NoInputsThrows) {
  Circuit c("nopi");
  NetId k = c.add_const(true, "k");
  c.mark_output(k);
  EXPECT_THROW(c.finalize(), NetlistError);
}

TEST(StructureTest, LevelsFromPi) {
  Circuit c = make_c17();
  Structure s(c);
  for (NetId pi : c.inputs()) EXPECT_EQ(s.level_from_pi(pi), 0);
  EXPECT_EQ(s.level_from_pi(*c.find_net("10")), 1);
  EXPECT_EQ(s.level_from_pi(*c.find_net("16")), 2);
  EXPECT_EQ(s.level_from_pi(*c.find_net("22")), 3);
  EXPECT_EQ(s.depth(), 3);
}

TEST(StructureTest, MaxLevelsToPo) {
  Circuit c = make_c17();
  Structure s(c);
  EXPECT_EQ(s.max_levels_to_po(*c.find_net("22")), 0);
  EXPECT_EQ(s.max_levels_to_po(*c.find_net("16")), 1);
  // Net 11 feeds 16 and 19; the longest path to a PO has 2 levels.
  EXPECT_EQ(s.max_levels_to_po(*c.find_net("11")), 2);
  EXPECT_EQ(s.max_levels_to_po(*c.find_net("3")), 3);
}

TEST(StructureTest, PoReachability) {
  Circuit c = make_c17();
  Structure s(c);
  const NetId n10 = *c.find_net("10");
  // Net 10 only feeds gate 22 (PO index 0).
  EXPECT_TRUE(s.po_reachable(n10, 0));
  EXPECT_FALSE(s.po_reachable(n10, 1));
  EXPECT_EQ(s.reachable_po_count(n10), 1u);
  // Net 11 reaches both POs; PIs 1 reaches only PO 22.
  EXPECT_EQ(s.reachable_po_count(*c.find_net("11")), 2u);
  EXPECT_EQ(s.reachable_po_count(*c.find_net("1")), 1u);
  EXPECT_THROW(s.po_reachable(n10, 99), NetlistError);
}

TEST(StructureTest, NetToNetReachability) {
  Circuit c = make_c17();
  Structure s(c);
  EXPECT_TRUE(s.reaches(*c.find_net("3"), *c.find_net("22")));
  EXPECT_TRUE(s.reaches(*c.find_net("11"), *c.find_net("23")));
  EXPECT_FALSE(s.reaches(*c.find_net("22"), *c.find_net("3")));
  EXPECT_FALSE(s.reaches(*c.find_net("10"), *c.find_net("19")));
  // Reflexive by definition.
  EXPECT_TRUE(s.reaches(*c.find_net("10"), *c.find_net("10")));
}

TEST(StructureTest, DanglingNetHasNoPoDistance) {
  Circuit c("dangle");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId used = c.add_gate(GateType::And, {a, b}, "used");
  c.add_gate(GateType::Or, {a, b}, "unused");
  c.mark_output(used);
  c.finalize();
  Structure s(c);
  EXPECT_EQ(s.max_levels_to_po(*c.find_net("unused")), -1);
  EXPECT_EQ(s.reachable_po_count(*c.find_net("unused")), 0u);
}

TEST(LayoutTest, PiCoordinatesFollowStatedOrder) {
  Circuit c = make_c17();
  Structure s(c);
  LayoutEstimate layout(c, s);
  for (std::size_t i = 0; i < c.num_inputs(); ++i) {
    EXPECT_DOUBLE_EQ(layout.x(c.inputs()[i]), 0.0);
    EXPECT_DOUBLE_EQ(layout.y(c.inputs()[i]), static_cast<double>(i));
  }
}

TEST(LayoutTest, GateYIsMeanOfFanins) {
  Circuit c = make_c17();
  Structure s(c);
  LayoutEstimate layout(c, s);
  // Gate 10 = NAND(1, 3): PIs with Y = 0 and 2 -> Y = 1; X = level 1.
  const NetId g10 = *c.find_net("10");
  EXPECT_DOUBLE_EQ(layout.x(g10), 1.0);
  EXPECT_DOUBLE_EQ(layout.y(g10), 1.0);
  // Gate 16 = NAND(2, 11): Y(2) = 1, Y(11) = mean(2,3) = 2.5 -> 1.75.
  EXPECT_DOUBLE_EQ(layout.y(*c.find_net("16")), 1.75);
}

TEST(LayoutTest, DistanceIsEuclidean) {
  Circuit c = make_c17();
  Structure s(c);
  LayoutEstimate layout(c, s);
  const NetId a = c.inputs()[0];  // (0, 0)
  const NetId g10 = *c.find_net("10");  // (1, 1)
  EXPECT_NEAR(layout.distance(a, g10), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(layout.distance(a, a), 0.0);
}

}  // namespace
}  // namespace dp::netlist
