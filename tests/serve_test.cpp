// dpserved serving-layer tests: protocol framing, request dispatch, the
// field-identity contract between served and in-process analysis,
// admission control (queue_full / deadline_exceeded), the resident
// profile cache, and graceful drain.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/hybrid.hpp"
#include "analysis/ndetect.hpp"
#include "analysis/profile_io.hpp"
#include "analysis/profiles.hpp"
#include "fault/stuck_at.hpp"
#include "netlist/generators.hpp"
#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sim/wide_sim.hpp"
#include "store/hash.hpp"

namespace dp::serve {
namespace {

using obs::JsonValue;

// ---- protocol framing --------------------------------------------------

TEST(ProtocolTest, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string error;
  ASSERT_TRUE(write_frame(fds[0], R"({"type":"ping"})", &error)) << error;
  std::string payload;
  ASSERT_EQ(read_frame(fds[1], &payload, kDefaultMaxFrameBytes, &error),
            ReadStatus::Ok)
      << error;
  EXPECT_EQ(payload, R"({"type":"ping"})");
  // Empty payload is a legal frame.
  ASSERT_TRUE(write_frame(fds[0], "", &error));
  ASSERT_EQ(read_frame(fds[1], &payload, kDefaultMaxFrameBytes, &error),
            ReadStatus::Ok);
  EXPECT_TRUE(payload.empty());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ProtocolTest, CleanCloseIsEofMidFrameIsError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);
  std::string payload, error;
  EXPECT_EQ(read_frame(fds[1], &payload, kDefaultMaxFrameBytes, &error),
            ReadStatus::Eof);
  ::close(fds[1]);

  // Header cut off after 3 bytes: truncation, not clean EOF.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(::send(fds[0], "dps", 3, 0), 3);
  ::close(fds[0]);
  EXPECT_EQ(read_frame(fds[1], &payload, kDefaultMaxFrameBytes, &error),
            ReadStatus::Error);
  ::close(fds[1]);
}

TEST(ProtocolTest, BadMagicAndOversizedLengthRejected) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_EQ(::send(fds[0], "HTTP/1.1", 8, 0), 8);
  std::string payload, error;
  EXPECT_EQ(read_frame(fds[1], &payload, kDefaultMaxFrameBytes, &error),
            ReadStatus::Error);
  EXPECT_NE(error.find("magic"), std::string::npos);
  ::close(fds[0]);
  ::close(fds[1]);

  // Hostile length field: rejected by the cap before any allocation.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char huge[8] = {'d', 'p', 's', '1', 0xff, 0xff, 0xff, 0x7f};
  ASSERT_EQ(::send(fds[0], huge, 8, 0), 8);
  EXPECT_EQ(read_frame(fds[1], &payload, /*max_payload=*/1 << 20, &error),
            ReadStatus::Error);
  EXPECT_NE(error.find("exceeds"), std::string::npos);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---- in-process service dispatch ---------------------------------------

JsonValue req(const char* type, const char* circuit = nullptr) {
  JsonValue r = JsonValue::object();
  r["type"] = type;
  if (circuit) r["circuit"] = circuit;
  return r;
}

TEST(ServiceTest, PingHashAndUnknownType) {
  obs::MetricsRegistry metrics;
  Service service(ServiceOptions{}, &metrics);
  EXPECT_TRUE(service.handle(req("ping")).at("ok").as_bool());

  JsonValue h = service.handle(req("hash", "c17"));
  ASSERT_TRUE(h.at("ok").as_bool());
  EXPECT_EQ(h.at("hash").as_string().size(), 32u);

  JsonValue bad = service.handle(req("frobnicate"));
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_EQ(bad.at("error").at("code").as_string(), "bad_request");
}

TEST(ServiceTest, UnknownCircuitAndUnknownOptionAreBadRequests) {
  obs::MetricsRegistry metrics;
  Service service(ServiceOptions{}, &metrics);
  JsonValue r = service.handle(req("analyze", "not_a_circuit"));
  EXPECT_FALSE(r.at("ok").as_bool());
  EXPECT_EQ(r.at("error").at("code").as_string(), "bad_request");

  JsonValue typo = req("analyze", "c17");
  JsonValue opts = JsonValue::object();
  opts["colapse"] = true;  // misspelled: must fail, not silently default
  typo["options"] = std::move(opts);
  r = service.handle(typo);
  EXPECT_FALSE(r.at("ok").as_bool());
  EXPECT_EQ(r.at("error").at("code").as_string(), "bad_request");
  EXPECT_NE(r.at("error").at("message").as_string().find("colapse"),
            std::string::npos);
}

TEST(ServiceTest, InlineBenchTextIsAccepted) {
  obs::MetricsRegistry metrics;
  Service service(ServiceOptions{}, &metrics);
  JsonValue r = JsonValue::object();
  r["type"] = "analyze";
  r["bench"] = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
  JsonValue resp = service.handle(r);
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump(0);
  EXPECT_GT(resp.at("profile").at("faults").size(), 0u);

  r["bench"] = "INPUT(a\n";  // malformed inline netlist
  resp = service.handle(r);
  EXPECT_FALSE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("error").at("code").as_string(), "bad_request");
}

TEST(ServiceTest, GradeMatchesDirectWideSim) {
  obs::MetricsRegistry metrics;
  Service service(ServiceOptions{}, &metrics);
  JsonValue r = req("grade", "c95");
  JsonValue opts = JsonValue::object();
  opts["patterns"] = 512;
  opts["seed"] = 7;
  r["options"] = std::move(opts);
  JsonValue resp = service.handle(r);
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump(0);

  const netlist::Circuit c = netlist::make_benchmark("c95");
  const auto faults = fault::collapse_checkpoint_faults(c);
  const auto grade =
      sim::WideFaultSimulator(c).grade_random(faults, 512, 7, {});
  EXPECT_EQ(static_cast<std::size_t>(resp.at("total").as_int()),
            grade.total);
  EXPECT_EQ(static_cast<std::size_t>(resp.at("detected").as_int()),
            grade.detected());
  EXPECT_EQ(static_cast<std::uint64_t>(resp.at("events").as_int()),
            grade.events());
}

TEST(ServiceTest, ProfileCacheHitsEvictsAndLruBound) {
  obs::MetricsRegistry metrics;
  ServiceOptions options;
  options.profile_cache_entries = 2;
  Service service(options, &metrics);

  JsonValue r1 = service.handle(req("analyze", "c17"));
  ASSERT_TRUE(r1.at("ok").as_bool());
  EXPECT_FALSE(r1.at("cached").as_bool());
  JsonValue r2 = service.handle(req("analyze", "c17"));
  ASSERT_TRUE(r2.at("ok").as_bool());
  EXPECT_TRUE(r2.at("cached").as_bool());
  // The cached response carries the identical profile document.
  EXPECT_EQ(r1.at("profile").dump(0), r2.at("profile").dump(0));
  EXPECT_EQ(metrics.counter("serve.profile_cache.hits").value(), 1u);

  // Two more distinct keys through a 2-entry LRU evict the c17 profile.
  JsonValue bf = req("analyze", "c17");
  JsonValue opts = JsonValue::object();
  opts["model"] = "bf.and";
  bf["options"] = std::move(opts);
  ASSERT_TRUE(service.handle(bf).at("ok").as_bool());
  ASSERT_TRUE(service.handle(req("analyze", "fulladder")).at("ok").as_bool());
  EXPECT_EQ(service.profile_cache_size(), 2u);
  EXPECT_TRUE(metrics.counter("serve.profile_cache.evictions").value() >= 1u);

  JsonValue r3 = service.handle(req("analyze", "c17"));
  EXPECT_FALSE(r3.at("cached").as_bool());  // was evicted, recomputed
  EXPECT_EQ(r1.at("profile").dump(0), r3.at("profile").dump(0));

  JsonValue ev = service.handle(req("evict"));
  ASSERT_TRUE(ev.at("ok").as_bool());
  EXPECT_EQ(service.profile_cache_size(), 0u);
}

TEST(ServiceTest, ConcurrentAnalyzesShareOneFrozenForest) {
  // Two concurrent requests against the same circuit but different fault
  // models miss the profile cache independently, yet must share one
  // resident frozen forest: exactly one build, at least one reuse.
  obs::MetricsRegistry metrics;
  Service service(ServiceOptions{}, &metrics);

  JsonValue sa = req("analyze", "c17");
  JsonValue bf = req("analyze", "c17");
  JsonValue opts = JsonValue::object();
  opts["model"] = "bf.and";
  bf["options"] = std::move(opts);

  JsonValue resp_sa, resp_bf;
  std::thread t1([&] { resp_sa = service.handle(sa); });
  std::thread t2([&] { resp_bf = service.handle(bf); });
  t1.join();
  t2.join();

  ASSERT_TRUE(resp_sa.at("ok").as_bool());
  ASSERT_TRUE(resp_bf.at("ok").as_bool());
  EXPECT_EQ(metrics.counter("serve.forest.builds").value(), 1u);
  EXPECT_GE(metrics.counter("serve.forest.reuses").value(), 1u);
  EXPECT_EQ(service.resident_forest_count(), 1u);

  // A third model on the same circuit reuses the resident forest again.
  JsonValue hy = req("analyze", "c17");
  JsonValue hopts = JsonValue::object();
  hopts["model"] = "bf.or";
  hy["options"] = std::move(hopts);
  ASSERT_TRUE(service.handle(hy).at("ok").as_bool());
  EXPECT_EQ(metrics.counter("serve.forest.builds").value(), 1u);
  EXPECT_GE(metrics.counter("serve.forest.reuses").value(), 2u);
}

TEST(ServiceTest, EvictDuringInFlightAnalyzeIsSafe) {
  // The forest cache hands out shared_ptrs: evicting a resident circuit
  // mid-request only unpins the cache entry; the in-flight analysis keeps
  // its forest alive and completes normally. (The TSan rerun of this
  // suite is the race check; functionally the response must stay exact.)
  obs::MetricsRegistry metrics;
  Service service(ServiceOptions{}, &metrics);

  // Reference result, computed without any eviction interference.
  JsonValue expected = service.handle(req("analyze", "alu181"));
  ASSERT_TRUE(expected.at("ok").as_bool());
  service.handle(req("evict"));
  ASSERT_EQ(service.resident_forest_count(), 0u);

  std::atomic<bool> done{false};
  JsonValue got;
  std::thread analyzer([&] {
    got = service.handle(req("analyze", "alu181"));
    done.store(true);
  });
  while (!done.load()) {
    service.handle(req("evict"));
    std::this_thread::yield();
  }
  analyzer.join();

  ASSERT_TRUE(got.at("ok").as_bool());
  EXPECT_EQ(expected.at("profile").dump(0), got.at("profile").dump(0));
}

// ---- served vs in-process field identity -------------------------------

/// One in-process server on a Unix socket in /tmp (sun_path caps at ~107
/// bytes; a build-tree path can blow it).
struct TestServer {
  obs::MetricsRegistry metrics;
  std::unique_ptr<Service> service;
  std::unique_ptr<Server> server;
  std::string path;

  explicit TestServer(std::size_t workers, std::size_t queue_depth = 64,
                      std::size_t cache_entries = 64) {
    path = "/tmp/dp_serve_test." + std::to_string(::getpid()) + "." +
           std::to_string(reinterpret_cast<std::uintptr_t>(this) & 0xffff) +
           ".sock";
    ServiceOptions sopts;
    sopts.profile_cache_entries = cache_entries;
    service = std::make_unique<Service>(sopts, &metrics);
    ServerOptions opts;
    opts.unix_path = path;
    opts.workers = workers;
    opts.queue_depth = queue_depth;
    server = std::make_unique<Server>(opts, service.get(), &metrics);
    std::string error;
    if (!server->start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
    }
  }

  Client connect() {
    std::string error;
    auto c = Client::connect_unix(path, &error);
    EXPECT_TRUE(c.has_value()) << error;
    return std::move(*c);
  }

  ~TestServer() {
    server->initiate_drain();
    server->wait();
  }
};

JsonValue call(Client& client, const JsonValue& request) {
  JsonValue resp;
  std::string error;
  EXPECT_TRUE(client.call(request, &resp, &error)) << error;
  return resp;
}

JsonValue analyze_req(const std::string& circuit, const std::string& model,
                      std::size_t jobs) {
  JsonValue r = JsonValue::object();
  r["type"] = "analyze";
  r["circuit"] = circuit;
  JsonValue opts = JsonValue::object();
  opts["model"] = model;
  opts["jobs"] = jobs;
  if (model == "bf.and" || model == "bf.or") opts["bridge_count"] = 40;
  if (model == "hybrid") opts["prefilter_patterns"] = 512;
  r["options"] = std::move(opts);
  return r;
}

/// The acceptance contract: a served analyze response's profile document
/// equals serializing the in-process engine result, byte for byte, at
/// request-level worker counts 1 and 4 (engine jobs follow the worker
/// count; sweeps are jobs-invariant, doubles round-trip exactly).
class FieldIdentityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FieldIdentityTest, ServedEqualsInProcessAtWorkers1And4) {
  const std::string circuit_name = GetParam();
  const netlist::Circuit circuit = netlist::make_benchmark(circuit_name);

  // sa/hybrid requests send no sampling options, so the in-process
  // reference uses default AnalysisOptions; the bridging request caps
  // bridge_count at 40 (test runtime), mirrored here.
  analysis::AnalysisOptions a;
  analysis::AnalysisOptions a_bf;
  a_bf.sampling.target_count = 40;
  analysis::HybridOptions h;
  h.prefilter_patterns = 512;

  const JsonValue expected_sa = analysis::profile_to_json(
      analysis::analyze_stuck_at(circuit, a),
      analysis::profile_cache_key(circuit, "sa", a));
  const JsonValue expected_bf = analysis::profile_to_json(
      analysis::analyze_bridging(circuit, fault::BridgeType::And, a_bf),
      analysis::profile_cache_key(circuit, "bf.and", a_bf));
  const JsonValue expected_hy = analysis::hybrid_profile_to_json(
      analysis::analyze_stuck_at_hybrid(circuit, a, h));

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    TestServer ts(workers);
    Client client = ts.connect();
    JsonValue sa =
        call(client, analyze_req(circuit_name, "sa", workers));
    ASSERT_TRUE(sa.at("ok").as_bool()) << sa.dump(0);
    EXPECT_EQ(sa.at("profile").dump(0), expected_sa.dump(0))
        << circuit_name << " sa, workers=" << workers;

    JsonValue bf =
        call(client, analyze_req(circuit_name, "bf.and", workers));
    ASSERT_TRUE(bf.at("ok").as_bool()) << bf.dump(0);
    EXPECT_EQ(bf.at("profile").dump(0), expected_bf.dump(0))
        << circuit_name << " bf.and, workers=" << workers;

    JsonValue hy =
        call(client, analyze_req(circuit_name, "hybrid", workers));
    ASSERT_TRUE(hy.at("ok").as_bool()) << hy.dump(0);
    EXPECT_EQ(hy.at("profile").dump(0), expected_hy.dump(0))
        << circuit_name << " hybrid, workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, FieldIdentityTest,
                         ::testing::Values("c17", "alu181", "c432"));

TEST(ServeIdentityTest, NDetectServedEqualsInProcessAtWorkers1And4) {
  // The served n-detect report must serialize byte-for-byte to the
  // in-process NDetectAnalyzer result, including the cache key (computed
  // here the way the service computes it: jobs excluded, everything the
  // counts depend on included), at worker counts 1 and 4 -- satcounts of
  // canonical functions are jobs-invariant by construction.
  const std::string circuit_name = "alu181";
  const netlist::Circuit circuit = netlist::make_benchmark(circuit_name);
  const auto faults = fault::collapse_checkpoint_faults(circuit);
  const std::size_t n = 2;

  store::KeyBuilder kb;
  kb.str(analysis::kNDetectSchema);
  kb.str(store::circuit_content_hash(circuit));
  kb.u64(n);
  kb.flag(true);   // topup
  kb.flag(true);   // collapse
  kb.u64(0);       // no client vectors
  const std::string key = kb.hex();

  analysis::NDetectAnalyzer analyzer(circuit, faults);
  std::vector<std::vector<bool>> vectors;
  const std::size_t minted = analyzer.top_up(vectors, n);
  analysis::NDetectReport report = analyzer.report(vectors, n);
  report.minted_vectors = minted;
  const JsonValue expected = analysis::ndetect_report_to_json(report, key);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    TestServer ts(workers);
    Client client = ts.connect();
    JsonValue r = JsonValue::object();
    r["type"] = "ndetect";
    r["circuit"] = circuit_name;
    JsonValue opts = JsonValue::object();
    opts["n"] = static_cast<long long>(n);
    opts["jobs"] = static_cast<long long>(workers);
    r["options"] = std::move(opts);
    JsonValue resp = call(client, r);
    ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump(0);
    EXPECT_EQ(resp.at("key").as_string(), key) << "workers=" << workers;
    EXPECT_EQ(resp.at("report").dump(0), expected.dump(0))
        << "workers=" << workers;
    EXPECT_EQ(resp.at("minted_vectors").size(), minted)
        << "workers=" << workers;

    // Second identical request: a cache hit with the identical payload.
    JsonValue again = JsonValue::object();
    again["type"] = "ndetect";
    again["circuit"] = circuit_name;
    JsonValue opts2 = JsonValue::object();
    opts2["n"] = static_cast<long long>(n);
    opts2["jobs"] = static_cast<long long>(workers);
    again["options"] = std::move(opts2);
    JsonValue resp2 = call(client, again);
    ASSERT_TRUE(resp2.at("ok").as_bool()) << resp2.dump(0);
    EXPECT_TRUE(resp2.at("cached").as_bool());
    EXPECT_EQ(resp2.at("report").dump(0), expected.dump(0))
        << "workers=" << workers;
  }
}

TEST(ServiceTest, NDetectUnknownOptionAndBadVectorsAreBadRequests) {
  obs::MetricsRegistry metrics;
  Service service(ServiceOptions{}, &metrics);

  JsonValue r = req("ndetect", "c17");
  JsonValue opts = JsonValue::object();
  opts["frobnicate"] = true;  // unknown key: reject, never silently ignore
  r["options"] = std::move(opts);
  JsonValue resp = service.handle(r);
  EXPECT_FALSE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("error").at("code").as_string(), "bad_request");
  EXPECT_NE(resp.at("error").at("message").as_string().find("frobnicate"),
            std::string::npos);

  // A vector of the wrong width must bounce before any analysis runs.
  JsonValue bad = req("ndetect", "c17");
  JsonValue vecs = JsonValue::array();
  vecs.push_back(std::string("01"));  // c17 has 5 inputs
  bad["vectors"] = std::move(vecs);
  resp = service.handle(bad);
  EXPECT_FALSE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("error").at("code").as_string(), "bad_request");
}

TEST(ServeIdentityTest, BfOrServedEqualsInProcess) {
  analysis::AnalysisOptions a;
  a.sampling.target_count = 40;
  const netlist::Circuit circuit = netlist::make_benchmark("alu181");
  const JsonValue expected = analysis::profile_to_json(
      analysis::analyze_bridging(circuit, fault::BridgeType::Or, a),
      analysis::profile_cache_key(circuit, "bf.or", a));
  TestServer ts(2);
  Client client = ts.connect();
  JsonValue resp = call(client, analyze_req("alu181", "bf.or", 2));
  ASSERT_TRUE(resp.at("ok").as_bool()) << resp.dump(0);
  EXPECT_EQ(resp.at("profile").dump(0), expected.dump(0));
}

// ---- admission control, deadlines, drain -------------------------------

JsonValue sleep_req(std::uint64_t ms) {
  JsonValue r = JsonValue::object();
  r["type"] = "sleep";
  JsonValue opts = JsonValue::object();
  opts["ms"] = static_cast<long long>(ms);
  r["options"] = std::move(opts);
  return r;
}

TEST(ServeAdmissionTest, QueueFullReturnsStructuredBackpressure) {
  TestServer ts(/*workers=*/1, /*queue_depth=*/1);
  Client blocker = ts.connect();
  Client queued = ts.connect();
  Client rejected = ts.connect();

  // Occupy the only worker...
  std::thread t1([&] {
    JsonValue resp = call(blocker, sleep_req(700));
    EXPECT_TRUE(resp.at("ok").as_bool());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // ...fill the one queue slot...
  std::thread t2([&] {
    JsonValue resp = call(queued, sleep_req(5));
    EXPECT_TRUE(resp.at("ok").as_bool());  // admitted: must complete
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // ...and the next arrival must bounce immediately.
  JsonValue resp = call(rejected, sleep_req(5));
  EXPECT_FALSE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("error").at("code").as_string(), "queue_full");
  t1.join();
  t2.join();
  EXPECT_GE(ts.metrics.counter("serve.rejected.queue_full").value(), 1u);
}

TEST(ServeAdmissionTest, DeadlineExpiredInQueueIsNotExecuted) {
  TestServer ts(/*workers=*/1);
  Client blocker = ts.connect();
  Client impatient = ts.connect();

  std::thread t1([&] {
    JsonValue resp = call(blocker, sleep_req(600));
    EXPECT_TRUE(resp.at("ok").as_bool());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  JsonValue r = sleep_req(5);
  r["deadline_ms"] = 100;  // expires ~350ms before the worker frees up
  JsonValue resp = call(impatient, r);
  EXPECT_FALSE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("error").at("code").as_string(), "deadline_exceeded");
  t1.join();
  EXPECT_GE(ts.metrics.counter("serve.rejected.deadline").value(), 1u);
}

TEST(ServeAdmissionTest, NDetectBehindBlockerHonorsDeadline) {
  // Admission control is request-type agnostic: an ndetect request whose
  // deadline expires while a blocker occupies the only worker must come
  // back deadline_exceeded without ever reaching the analyzer.
  TestServer ts(/*workers=*/1);
  Client blocker = ts.connect();
  Client impatient = ts.connect();

  std::thread t1([&] {
    JsonValue resp = call(blocker, sleep_req(600));
    EXPECT_TRUE(resp.at("ok").as_bool());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  JsonValue r = JsonValue::object();
  r["type"] = "ndetect";
  r["circuit"] = "c432";
  JsonValue opts = JsonValue::object();
  opts["n"] = 3;
  r["options"] = std::move(opts);
  r["deadline_ms"] = 100;  // expires ~350ms before the worker frees up
  JsonValue resp = call(impatient, r);
  EXPECT_FALSE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("error").at("code").as_string(), "deadline_exceeded");
  t1.join();
  EXPECT_EQ(ts.metrics.counter("serve.requests.ndetect").value(), 0u);
}

TEST(ServeDrainTest, ShutdownFinishesInFlightAndRejectsLateArrivals) {
  auto ts = std::make_unique<TestServer>(/*workers=*/1);
  Client worker_conn = ts->connect();
  Client ctl = ts->connect();

  std::thread t1([&] {
    // Admitted before the drain: must complete despite the shutdown.
    JsonValue resp = call(worker_conn, sleep_req(500));
    EXPECT_TRUE(resp.at("ok").as_bool());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  JsonValue shutdown = JsonValue::object();
  shutdown["type"] = "shutdown";
  JsonValue ack = call(ctl, shutdown);
  EXPECT_TRUE(ack.at("ok").as_bool());
  EXPECT_TRUE(ts->server->draining());

  // Late arrival on a still-open connection: structured rejection.
  JsonValue late = call(ctl, sleep_req(5));
  EXPECT_FALSE(late.at("ok").as_bool());
  EXPECT_EQ(late.at("error").at("code").as_string(), "shutting_down");

  t1.join();
  ts->server->wait();  // returns only when drained
  ts.reset();
}

TEST(ServeTransportTest, TcpLoopbackAndEphemeralPort) {
  obs::MetricsRegistry metrics;
  Service service(ServiceOptions{}, &metrics);
  ServerOptions opts;
  opts.tcp_port = 0;  // ephemeral
  opts.workers = 1;
  Server server(opts, &service, &metrics);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_GT(server.tcp_port(), 0);

  auto client = Client::connect_tcp("127.0.0.1", server.tcp_port(), &error);
  ASSERT_TRUE(client.has_value()) << error;
  JsonValue resp = call(*client, req("ping"));
  EXPECT_TRUE(resp.at("ok").as_bool());
  server.initiate_drain();
  server.wait();
}

TEST(ServeTransportTest, MalformedJsonGetsBadRequestAndStreamSurvives) {
  TestServer ts(1);
  Client client = ts.connect();
  std::string error;
  ASSERT_TRUE(write_frame(client.fd(), "{not json", &error)) << error;
  std::string payload;
  ASSERT_EQ(read_frame(client.fd(), &payload, kDefaultMaxFrameBytes, &error),
            ReadStatus::Ok)
      << error;
  JsonValue resp = JsonValue::parse(payload);
  EXPECT_FALSE(resp.at("ok").as_bool());
  EXPECT_EQ(resp.at("error").at("code").as_string(), "bad_request");
  // Frame boundaries were respected, so the connection still works.
  JsonValue pong = call(client, req("ping"));
  EXPECT_TRUE(pong.at("ok").as_bool());
}

TEST(ServeMetricsTest, MetricsRequestReturnsValidatableDocument) {
  TestServer ts(1);
  Client client = ts.connect();
  ASSERT_TRUE(call(client, req("ping")).at("ok").as_bool());
  JsonValue resp = call(client, req("metrics"));
  ASSERT_TRUE(resp.at("ok").as_bool());
  const JsonValue& doc = resp.at("document");
  EXPECT_EQ(doc.at("schema").as_string(), "dp.metrics.v1");
  EXPECT_EQ(doc.at("tool").as_string(), "dpserved");
  EXPECT_TRUE(doc.at("metrics").at("counters").contains("serve.admitted"));
}

}  // namespace
}  // namespace dp::serve
