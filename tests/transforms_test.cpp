// Transform correctness: XOR->NAND expansion and 2-input decomposition
// must preserve every PO function (verified exhaustively or by sampling).
#include <gtest/gtest.h>

#include <random>

#include "netlist/generators.hpp"
#include "netlist/transforms.hpp"
#include "sim/pattern_sim.hpp"

namespace dp::netlist {
namespace {

std::vector<bool> run(const Circuit& c, const std::vector<bool>& in) {
  sim::PatternSimulator ps(c);
  std::vector<sim::Word> values(c.num_nets(), 0);
  for (std::size_t i = 0; i < in.size(); ++i) {
    values[c.inputs()[i]] = in[i] ? ~sim::Word{0} : 0;
  }
  ps.eval(values);
  std::vector<bool> out;
  for (NetId po : c.outputs()) out.push_back(values[po] & 1);
  return out;
}

void expect_equivalent(const Circuit& a, const Circuit& b,
                       std::size_t samples, std::uint64_t seed) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  const std::size_t n = a.num_inputs();
  std::mt19937_64 rng(seed);
  const bool exhaustive = n <= 12;
  const std::uint64_t limit = exhaustive ? (1ull << n) : samples;
  for (std::uint64_t k = 0; k < limit; ++k) {
    std::vector<bool> in(n);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = exhaustive ? ((k >> i) & 1) : (rng() & 1);
    }
    ASSERT_EQ(run(a, in), run(b, in)) << "vector " << k;
  }
}

class XorExpansionTest : public ::testing::TestWithParam<const char*> {};

TEST_P(XorExpansionTest, PreservesFunction) {
  Circuit original = make_benchmark(GetParam());
  Circuit expanded = expand_xor_to_nand(original, "expanded");
  expect_equivalent(original, expanded, 512, 2024);
  // No parity gates survive.
  for (NetId id = 0; id < expanded.num_nets(); ++id) {
    EXPECT_NE(expanded.type(id), GateType::Xor);
    EXPECT_NE(expanded.type(id), GateType::Xnor);
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, XorExpansionTest,
                         ::testing::Values("fulladder", "c95", "alu181",
                                           "c499"));

TEST(XorExpansionTest, XnorGetsInverter) {
  Circuit c("xnor");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  c.mark_output(c.add_gate(GateType::Xnor, {a, b}, "o"));
  c.finalize();
  Circuit e = expand_xor_to_nand(c, "e");
  expect_equivalent(c, e, 4, 1);
}

TEST(XorExpansionTest, MultiInputParityFoldsLeft) {
  Circuit c("par3");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId d = c.add_input("d");
  c.mark_output(c.add_gate(GateType::Xor, {a, b, d}, "o"));
  c.finalize();
  Circuit e = expand_xor_to_nand(c, "e");
  expect_equivalent(c, e, 8, 1);
  EXPECT_EQ(e.num_gates(), 8u);  // two XOR stages x 4 NANDs
}

TEST(XorExpansionTest, GateCountGrowsByThreePerXor) {
  // Paper relationship: each 2-input XOR becomes 4 NANDs (+3 gates).
  Circuit c = make_parity_tree(8, true);
  const std::size_t xors = c.num_gates();  // all gates are XOR
  Circuit e = expand_xor_to_nand(c, "e");
  EXPECT_EQ(e.num_gates(), xors * 4);
}

class DecomposeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DecomposeTest, PreservesFunctionWithTwoInputGates) {
  Circuit original = make_benchmark(GetParam());
  Circuit two = decompose_to_two_input(original, "two");
  expect_equivalent(original, two, 512, 77);
  for (NetId id = 0; id < two.num_nets(); ++id) {
    EXPECT_LE(two.fanins(id).size(), 2u) << two.net_name(id);
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, DecomposeTest,
                         ::testing::Values("c17", "alu181", "c432", "c499"));

TEST(DecomposeTest, KeepsInversionAtRoot) {
  Circuit c("nand3");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId d = c.add_input("d");
  c.mark_output(c.add_gate(GateType::Nand, {a, b, d}, "o"));
  c.finalize();
  Circuit two = decompose_to_two_input(c, "two");
  expect_equivalent(c, two, 8, 1);
  // AND2 feeding a NAND2 root.
  const NetId root = two.outputs()[0];
  EXPECT_EQ(two.type(root), GateType::Nand);
  EXPECT_EQ(two.num_gates(), 2u);
}

}  // namespace
}  // namespace dp::netlist
