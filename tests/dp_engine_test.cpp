// The central cross-validation: Difference Propagation must agree exactly
// with exhaustive fault simulation -- same complete test sets, same
// detectabilities, same syndromes -- for every checkpoint fault and for
// bridging faults, across the small benchmark circuits and random DAGs.
#include <gtest/gtest.h>

#include <string>

#include "dp/engine.hpp"
#include "netlist/generators.hpp"
#include "sim/fault_sim.hpp"

namespace dp::core {
namespace {

using fault::BridgeType;
using fault::BridgingFault;
using fault::StuckAtFault;
using netlist::Circuit;
using netlist::NetId;
using netlist::Structure;

/// Everything needed to run DP and the exhaustive baseline side by side.
struct Rig {
  explicit Rig(Circuit&& c)
      : circuit(std::move(c)),
        structure(circuit),
        manager(0),
        good(manager, circuit),
        dp(good, structure),
        fs(circuit) {}

  Circuit circuit;
  Structure structure;
  bdd::Manager manager;
  GoodFunctions good;
  DifferencePropagator dp;
  sim::FaultSimulator fs;

  /// Compares DP's symbolic test set with the simulator's bitmap.
  template <typename Fault>
  void check_fault(const Fault& f, const std::string& what) {
    const FaultAnalysis a = dp.analyze(f);
    const double sim_det = fs.exhaustive_detectability(f);
    ASSERT_DOUBLE_EQ(a.detectability, sim_det) << what;
    ASSERT_EQ(a.detectable, sim_det > 0.0) << what;

    const auto bitmap = fs.exhaustive_test_set(f);
    const std::size_t n = circuit.num_inputs();
    for (std::uint64_t v = 0; v < bitmap.size(); ++v) {
      std::vector<bool> point(n);
      for (std::size_t i = 0; i < n; ++i) point[i] = (v >> i) & 1;
      ASSERT_EQ(a.test_set.eval(point), bitmap[v])
          << what << " at vector " << v;
    }

    // Invariants: detectability never exceeds the excitation bound, and
    // adherence is the exact ratio (paper §4.1 eq. 3).
    ASSERT_LE(a.detectability, a.upper_bound + 1e-12) << what;
    if (a.upper_bound > 0) {
      ASSERT_NEAR(a.adherence, a.detectability / a.upper_bound, 1e-12);
    }
    // Observability never exceeds structural PO reach.
    ASSERT_LE(a.pos_observable, a.pos_fed) << what;
  }
};

class DpVsExhaustiveSaTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DpVsExhaustiveSaTest, AllCheckpointFaultsAgree) {
  Rig rig(netlist::make_benchmark(GetParam()));
  for (const StuckAtFault& f : fault::checkpoint_faults(rig.circuit)) {
    rig.check_fault(f, describe(f, rig.circuit));
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSuite, DpVsExhaustiveSaTest,
                         ::testing::Values("c17", "fulladder", "c95",
                                           "alu181"));

class DpVsExhaustiveRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpVsExhaustiveRandomTest, RandomDagsAgreeOnStuckAt) {
  Rig rig(netlist::make_random_circuit(GetParam(), 9, 40, 5));
  for (const StuckAtFault& f :
       fault::collapse_checkpoint_faults(rig.circuit)) {
    rig.check_fault(f, describe(f, rig.circuit));
  }
}

TEST_P(DpVsExhaustiveRandomTest, RandomDagsAgreeOnBridging) {
  Rig rig(netlist::make_random_circuit(GetParam() ^ 0x5555, 8, 30, 4));
  for (BridgeType type : {BridgeType::And, BridgeType::Or}) {
    const auto faults =
        fault::enumerate_nfbfs(rig.circuit, rig.structure, type);
    // Cap per circuit to keep the sweep fast; coverage comes from seeds.
    std::size_t checked = 0;
    for (const BridgingFault& f : faults) {
      rig.check_fault(f, describe(f, rig.circuit));
      if (++checked == 60) break;
    }
    EXPECT_GT(checked, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpVsExhaustiveRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DpEngineTest, SyndromesMatchExhaustiveSimulation) {
  Rig rig(netlist::make_c95_analog());
  for (NetId id = 0; id < rig.circuit.num_nets(); ++id) {
    EXPECT_DOUBLE_EQ(rig.good.syndrome(id), rig.fs.exhaustive_syndrome(id))
        << rig.circuit.net_name(id);
  }
}

TEST(DpEngineTest, BridgingFaultsAgreeOnC17AndC95) {
  for (const char* name : {"c17", "c95"}) {
    Rig rig(netlist::make_benchmark(name));
    for (BridgeType type : {BridgeType::And, BridgeType::Or}) {
      const auto faults =
          fault::enumerate_nfbfs(rig.circuit, rig.structure, type);
      std::size_t checked = 0;
      for (const BridgingFault& f : faults) {
        rig.check_fault(f, std::string(name) + " " + describe(f, rig.circuit));
        if (++checked == 80) break;
      }
    }
  }
}

TEST(DpEngineTest, PoFaultsHaveAdherenceOne) {
  // "PO faults always have adherence values of one" (§4.1): a stem fault
  // on a PO is excited iff it is detected there.
  Rig rig(netlist::make_c95_analog());
  for (NetId po : rig.circuit.outputs()) {
    for (bool v : {false, true}) {
      const FaultAnalysis a = rig.dp.analyze(StuckAtFault{po, std::nullopt, v});
      if (a.detectable) {
        EXPECT_GE(a.adherence, 1.0 - 1e-12)
            << rig.circuit.net_name(po) << " sa" << v;
      }
    }
  }
}

TEST(DpEngineTest, UndetectableStuckAtOnRedundantLine) {
  // y = a | !a is constantly 1: sa1 on y is undetectable, sa0 detectable
  // everywhere.
  Circuit c("redundant");
  NetId a = c.add_input("a");
  NetId na = c.add_gate(netlist::GateType::Not, {a}, "na");
  NetId y = c.add_gate(netlist::GateType::Or, {a, na}, "y");
  c.mark_output(y);
  c.finalize();
  Rig rig(std::move(c));
  const NetId yy = *rig.circuit.find_net("y");
  const FaultAnalysis sa1 = rig.dp.analyze(StuckAtFault{yy, std::nullopt, true});
  EXPECT_FALSE(sa1.detectable);
  EXPECT_DOUBLE_EQ(sa1.detectability, 0.0);
  EXPECT_DOUBLE_EQ(sa1.upper_bound, 0.0);  // syndrome is 1 -> 1 - 1 = 0
  const FaultAnalysis sa0 = rig.dp.analyze(StuckAtFault{yy, std::nullopt, false});
  EXPECT_DOUBLE_EQ(sa0.detectability, 1.0);
  EXPECT_DOUBLE_EQ(sa0.adherence, 1.0);
}

TEST(DpEngineTest, BranchFaultDiffersFromStemFault) {
  // In C17 net 11 branches to gates 16 and 19; the branch fault must be
  // observable on strictly fewer POs than the stem fault.
  Rig rig(netlist::make_c17());
  const NetId n11 = *rig.circuit.find_net("11");
  const NetId n16 = *rig.circuit.find_net("16");
  const FaultAnalysis stem =
      rig.dp.analyze(StuckAtFault{n11, std::nullopt, true});
  const FaultAnalysis branch = rig.dp.analyze(
      StuckAtFault{n11, netlist::PinRef{n16, 1}, true});
  EXPECT_NE(stem.test_set, branch.test_set);
  EXPECT_GE(stem.pos_fed, branch.pos_fed);
  // Branch into gate 16 can reach both POs (16 feeds 22 and 23).
  EXPECT_EQ(branch.pos_fed, 2u);
}

TEST(DpEngineTest, UnexcitableBranchFaultSkipsWholeCone) {
  // g = a & !a is constantly 0, so a sa0 branch fault on g's line into h
  // has a zero difference seed: nothing differs anywhere, and selective
  // trace must skip EVERY gate rather than dragging the downstream cone
  // through gate_difference with a zero seed.
  Circuit c("unexcitable");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId na = c.add_gate(netlist::GateType::Not, {a}, "na");
  NetId g = c.add_gate(netlist::GateType::And, {a, na}, "g");
  NetId h = c.add_gate(netlist::GateType::Or, {g, b}, "h");
  NetId k = c.add_gate(netlist::GateType::And, {g, b}, "k");
  c.mark_output(h);
  c.mark_output(k);
  c.finalize();
  Rig rig(std::move(c));

  const FaultAnalysis a1 = rig.dp.analyze(
      StuckAtFault{g, netlist::PinRef{h, 0}, false});
  EXPECT_FALSE(a1.detectable);
  EXPECT_DOUBLE_EQ(a1.upper_bound, 0.0);
  EXPECT_EQ(a1.stats.gates_evaluated, 0u);
  EXPECT_EQ(a1.stats.gates_skipped, rig.circuit.num_gates());
}

TEST(DpEngineTest, BranchFaultPosFedUsesTheStem) {
  // C17's net 11 branches into gates 16 and 19. Gate 19 feeds only PO 23,
  // but the checkpoint line is the BRANCH OF NET 11, whose stem reaches
  // both POs -- pos_fed must count from the stem, not the fed gate.
  Rig rig(netlist::make_c17());
  const NetId n11 = *rig.circuit.find_net("11");
  const NetId n19 = *rig.circuit.find_net("19");
  std::uint32_t pin = 0;
  const auto& fi = rig.circuit.fanins(n19);
  while (pin < fi.size() && fi[pin] != n11) ++pin;
  ASSERT_LT(pin, fi.size()) << "net 11 must feed gate 19";

  const FaultAnalysis branch = rig.dp.analyze(
      StuckAtFault{n11, netlist::PinRef{n19, pin}, true});
  EXPECT_EQ(branch.pos_fed, 2u);  // the stem's reach, not gate 19's
  // The difference itself can only travel through gate 19 -> PO 23.
  EXPECT_LE(branch.pos_observable, 1u);
  ASSERT_EQ(branch.po_observable.size(), 2u);
  EXPECT_FALSE(branch.po_observable[0]);  // PO 22 is not in gate 19's cone
}

TEST(DpEngineTest, BridgeBetweenIdenticalFunctionsIsUndetectable) {
  // Two structurally distinct nets computing the same function: bridging
  // them never disturbs anything.
  Circuit c("same");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId g1 = c.add_gate(netlist::GateType::And, {a, b}, "g1");
  NetId g2 = c.add_gate(netlist::GateType::And, {b, a}, "g2");
  NetId o1 = c.add_gate(netlist::GateType::Not, {g1}, "o1");
  NetId o2 = c.add_gate(netlist::GateType::Not, {g2}, "o2");
  c.mark_output(o1);
  c.mark_output(o2);
  c.finalize();
  Rig rig(std::move(c));
  const BridgingFault f{*rig.circuit.find_net("g1"),
                        *rig.circuit.find_net("g2"), BridgeType::And};
  const FaultAnalysis an = rig.dp.analyze(f);
  EXPECT_FALSE(an.detectable);
  EXPECT_DOUBLE_EQ(an.upper_bound, 0.0);  // wires never disagree
}

TEST(DpEngineTest, BridgeStuckAtClassification) {
  // AND bridge between a and !a wires both to constant 0: a double
  // stuck-at by the paper's "zero variables in the fault function" test.
  Circuit c("bsa");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId na = c.add_gate(netlist::GateType::Not, {a}, "na");
  NetId g = c.add_gate(netlist::GateType::And, {na, b}, "g");
  NetId h = c.add_gate(netlist::GateType::Or, {a, b}, "h");
  c.mark_output(g);
  c.mark_output(h);
  c.finalize();
  Rig rig(std::move(c));
  const NetId aa = *rig.circuit.find_net("a");
  const NetId nna = *rig.circuit.find_net("na");
  const FaultAnalysis and_bridge =
      rig.dp.analyze(BridgingFault{aa, nna, BridgeType::And});
  EXPECT_TRUE(and_bridge.bridge_stuck_at);
  const FaultAnalysis or_bridge =
      rig.dp.analyze(BridgingFault{aa, nna, BridgeType::Or});
  EXPECT_TRUE(or_bridge.bridge_stuck_at);  // wired-OR of a, !a is constant 1
  // A generic bridge is NOT stuck-at-like.
  const NetId bb = *rig.circuit.find_net("b");
  const FaultAnalysis generic =
      rig.dp.analyze(BridgingFault{aa, bb, BridgeType::And});
  EXPECT_FALSE(generic.bridge_stuck_at);
}

TEST(DpEngineTest, SelectiveTraceSkipsCleanGates) {
  Rig rig(netlist::make_c95_analog());
  // A fault near the POs leaves most of the multiplier untouched.
  const NetId po = rig.circuit.outputs()[7];
  const FaultAnalysis a =
      rig.dp.analyze(StuckAtFault{po, std::nullopt, true});
  EXPECT_GT(a.stats.gates_skipped, 0u);
  EXPECT_LT(a.stats.gates_evaluated,
            rig.circuit.num_gates());

  // Without selective trace every gate is evaluated.
  DifferencePropagator full(rig.good, rig.structure, {/*selective_trace=*/false});
  const FaultAnalysis b = full.analyze(StuckAtFault{po, std::nullopt, true});
  EXPECT_EQ(b.stats.gates_skipped, 0u);
  EXPECT_EQ(b.stats.gates_evaluated, rig.circuit.num_gates());
  EXPECT_EQ(b.test_set, a.test_set);  // identical result either way
}

TEST(DpEngineTest, PoObservabilityMatchesDiffSupport) {
  Rig rig(netlist::make_c17());
  const NetId n10 = *rig.circuit.find_net("10");
  const FaultAnalysis a =
      rig.dp.analyze(StuckAtFault{n10, std::nullopt, true});
  // Net 10 feeds only PO 22 (index 0).
  ASSERT_EQ(a.po_observable.size(), 2u);
  EXPECT_TRUE(a.po_observable[0]);
  EXPECT_FALSE(a.po_observable[1]);
  EXPECT_EQ(a.pos_fed, 1u);
  EXPECT_EQ(a.pos_observable, 1u);
}

TEST(DpEngineTest, XorExpansionPreservesFaultFreeFunctionButNotProfile) {
  // c499_analog vs c1355_analog: POs compute identical functions...
  bdd::Manager m1(0), m2(0);
  Circuit c499 = netlist::make_c499_analog();
  Circuit c1355 = netlist::make_c1355_analog();
  GoodFunctions g499(m1, c499);
  GoodFunctions g1355(m2, c1355);
  for (std::size_t i = 0; i < c499.num_outputs(); ++i) {
    // Same manager-independent check: equal satcounts and equal evaluation
    // on probe vectors (cheap proxy for function equality across managers).
    EXPECT_DOUBLE_EQ(g499.at(c499.outputs()[i]).sat_count(41),
                     g1355.at(c1355.outputs()[i]).sat_count(41))
        << "PO " << i;
  }
  // ...while the netlist sizes (and hence fault populations) differ.
  EXPECT_GT(c1355.num_gates(), c499.num_gates());
}

}  // namespace
}  // namespace dp::core
