// Variable-ordering heuristics and order-parameterized good functions.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "dp/good_functions.hpp"
#include "dp/ordering.hpp"
#include "netlist/generators.hpp"

namespace dp::core {
namespace {

using netlist::Circuit;

void expect_permutation(const std::vector<std::size_t>& order, std::size_t n) {
  ASSERT_EQ(order.size(), n);
  std::vector<bool> seen(n, false);
  for (std::size_t v : order) {
    ASSERT_LT(v, n);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

class OrderKindTest : public ::testing::TestWithParam<VarOrderKind> {};

TEST_P(OrderKindTest, ProducesAPermutationOnEveryBenchmark) {
  for (const std::string& name : netlist::benchmark_names()) {
    const Circuit c = netlist::make_benchmark(name);
    expect_permutation(compute_variable_order(c, GetParam()),
                       c.num_inputs());
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, OrderKindTest,
                         ::testing::Values(VarOrderKind::PiOrder,
                                           VarOrderKind::Reverse,
                                           VarOrderKind::FaninDfs,
                                           VarOrderKind::Random));

TEST(OrderingTest, PiOrderIsIdentityAndReverseReverses) {
  const Circuit c = netlist::make_alu181();
  const auto id = compute_variable_order(c, VarOrderKind::PiOrder);
  for (std::size_t i = 0; i < id.size(); ++i) EXPECT_EQ(id[i], i);
  const auto rev = compute_variable_order(c, VarOrderKind::Reverse);
  for (std::size_t i = 0; i < rev.size(); ++i) {
    EXPECT_EQ(rev[i], rev.size() - 1 - i);
  }
}

TEST(OrderingTest, RandomIsSeedDeterministic) {
  const Circuit c = netlist::make_c432_analog();
  EXPECT_EQ(compute_variable_order(c, VarOrderKind::Random, 5),
            compute_variable_order(c, VarOrderKind::Random, 5));
  EXPECT_NE(compute_variable_order(c, VarOrderKind::Random, 5),
            compute_variable_order(c, VarOrderKind::Random, 6));
}

TEST(OrderingTest, OrderChangesSizesNotSemantics) {
  const Circuit c = netlist::make_c95_analog();
  bdd::Manager m1(0), m2(0);
  GoodFunctions g1(m1, c);  // identity
  GoodFunctionOptions opt;
  opt.variable_order = compute_variable_order(c, VarOrderKind::Reverse);
  GoodFunctions g2(m2, c, opt);
  // Semantics: satcounts (order-independent) agree on every net.
  for (netlist::NetId id = 0; id < c.num_nets(); ++id) {
    EXPECT_DOUBLE_EQ(g1.at(id).sat_count(g1.num_vars()),
                     g2.at(id).sat_count(g2.num_vars()))
        << c.net_name(id);
  }
}

TEST(OrderingTest, VarOfInputMapsThroughTheOrder) {
  const Circuit c = netlist::make_full_adder();
  GoodFunctionOptions opt;
  opt.variable_order = {2, 0, 1};
  bdd::Manager m(0);
  GoodFunctions g(m, c, opt);
  EXPECT_EQ(g.var_of_input(0), 2u);
  EXPECT_EQ(g.var_of_input(1), 0u);
  // PI 1 ("b") must literally be variable 0.
  EXPECT_EQ(g.at(c.inputs()[1]), m.var(0));
}

TEST(OrderingTest, InvalidOrdersRejected) {
  const Circuit c = netlist::make_full_adder();
  for (std::vector<std::size_t> bad :
       {std::vector<std::size_t>{0, 1},        // wrong size
        std::vector<std::size_t>{0, 1, 3},     // out of range
        std::vector<std::size_t>{0, 1, 1}}) {  // duplicate
    bdd::Manager m(0);
    GoodFunctionOptions opt;
    opt.variable_order = bad;
    EXPECT_THROW(GoodFunctions(m, c, opt), bdd::BddError);
  }
}

TEST(OrderingTest, FaninDfsKeepsRelatedInputsTogether) {
  // For the parity chain, fanin DFS visits inputs along the chain; the
  // resulting order must give the linear-size parity BDD, like PI order.
  const Circuit c = netlist::make_parity_tree(12, /*balanced=*/false);
  GoodFunctionOptions opt;
  opt.variable_order = compute_variable_order(c, VarOrderKind::FaninDfs);
  bdd::Manager m(0);
  GoodFunctions g(m, c, opt);
  // Parity of n variables: n decision nodes plus the terminal under
  // complement edges (the even/odd chains share slots).
  EXPECT_EQ(g.at(c.outputs()[0]).dag_size(), 12u + 1);
}

}  // namespace
}  // namespace dp::core
