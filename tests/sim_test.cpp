// Simulator tests: lane packing, stuck-at and bridging injection semantics,
// exhaustive sweeps, vector grading, ragged-block lane masking.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <random>

#include "fault/bridging.hpp"
#include "fault/stuck_at.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"
#include "sim/fault_sim.hpp"
#include "sim/wide_sim.hpp"

namespace dp::sim {
namespace {

using fault::BridgingFault;
using fault::StuckAtFault;
using netlist::Circuit;
using netlist::GateType;
using netlist::NetId;

TEST(PatternSimTest, ExhaustiveInputWordsEnumerateAllVectors) {
  // Block 0, 6 PIs: lane L must encode vector number L.
  for (std::size_t pi = 0; pi < 6; ++pi) {
    const Word w = PatternSimulator::exhaustive_input_word(pi, 0);
    for (std::uint64_t lane = 0; lane < 64; ++lane) {
      EXPECT_EQ((w >> lane) & 1, (lane >> pi) & 1);
    }
  }
  // PI >= 6 is constant per block, driven by the block number.
  EXPECT_EQ(PatternSimulator::exhaustive_input_word(6, 0), 0u);
  EXPECT_EQ(PatternSimulator::exhaustive_input_word(6, 1), ~Word{0});
  EXPECT_EQ(PatternSimulator::exhaustive_input_word(7, 2), ~Word{0});
  EXPECT_EQ(PatternSimulator::exhaustive_input_word(7, 1), 0u);
}

TEST(PatternSimTest, BlockMaskCoversSmallCircuits) {
  EXPECT_EQ(PatternSimulator::block_mask(0, 3), 0xffu);
  EXPECT_EQ(PatternSimulator::block_mask(0, 6), ~Word{0});
  EXPECT_EQ(PatternSimulator::block_mask(5, 20), ~Word{0});
}

TEST(PatternSimTest, GateEvaluationMatchesTruthTables) {
  Circuit c("gates");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  std::vector<std::pair<GateType, Word>> expect = {
      {GateType::And, 0x8}, {GateType::Nand, 0x7}, {GateType::Or, 0xe},
      {GateType::Nor, 0x1}, {GateType::Xor, 0x6},  {GateType::Xnor, 0x9}};
  std::vector<NetId> outs;
  for (auto& [t, tt] : expect) {
    outs.push_back(c.add_gate(t, {a, b}, std::string(netlist::to_string(t))));
    c.mark_output(outs.back());
  }
  c.finalize();
  PatternSimulator ps(c);
  std::vector<Word> values(c.num_nets());
  values[a] = PatternSimulator::exhaustive_input_word(0, 0);
  values[b] = PatternSimulator::exhaustive_input_word(1, 0);
  ps.eval(values);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(values[outs[i]] & 0xf, expect[i].second)
        << netlist::to_string(expect[i].first);
  }
}

TEST(FaultSimTest, StemStuckAtForcesNet) {
  Circuit c = netlist::make_c17();
  FaultSimulator fs(c);
  const NetId n16 = *c.find_net("16");
  StuckAtFault f{n16, std::nullopt, true};
  std::vector<Word> values(c.num_nets());
  for (std::size_t i = 0; i < c.num_inputs(); ++i) {
    values[c.inputs()[i]] = PatternSimulator::exhaustive_input_word(i, 0);
  }
  fs.faulty_values(values, f);
  EXPECT_EQ(values[n16], ~Word{0});
}

TEST(FaultSimTest, BranchStuckAtLeavesStemClean) {
  Circuit c = netlist::make_c17();
  FaultSimulator fs(c);
  const NetId n11 = *c.find_net("11");
  const NetId n16 = *c.find_net("16");
  // Branch 11->16 stuck at 1: net 11 keeps its good value, gate 16 sees 1.
  StuckAtFault f{n11, netlist::PinRef{n16, 1}, true};
  std::vector<Word> good(c.num_nets()), bad(c.num_nets());
  for (std::size_t i = 0; i < c.num_inputs(); ++i) {
    good[c.inputs()[i]] = bad[c.inputs()[i]] =
        PatternSimulator::exhaustive_input_word(i, 0);
  }
  fs.good_values(good);
  fs.faulty_values(bad, f);
  EXPECT_EQ(bad[n11], good[n11]);  // stem unaffected
  // Gate 19 also reads net 11 and must be unaffected.
  EXPECT_EQ(bad[*c.find_net("19")], good[*c.find_net("19")]);
  // Gate 16 = NAND(2, forced 1) == NOT(2).
  const Word i2 = good[*c.find_net("2")];
  EXPECT_EQ(bad[n16], ~i2);
}

TEST(FaultSimTest, AndBridgeWiresBothNets) {
  Circuit c = netlist::make_c17();
  FaultSimulator fs(c);
  const NetId n10 = *c.find_net("10");
  const NetId n19 = *c.find_net("19");
  BridgingFault f{std::min(n10, n19), std::max(n10, n19),
                  fault::BridgeType::And};
  std::vector<Word> good(c.num_nets()), bad(c.num_nets());
  for (std::size_t i = 0; i < c.num_inputs(); ++i) {
    good[c.inputs()[i]] = bad[c.inputs()[i]] =
        PatternSimulator::exhaustive_input_word(i, 0);
  }
  fs.good_values(good);
  fs.faulty_values(bad, f);
  EXPECT_EQ(bad[n10], good[n10] & good[n19]);
  EXPECT_EQ(bad[n19], good[n10] & good[n19]);
}

TEST(FaultSimTest, BridgeConsumersSeeWiredValue) {
  // a -> g = NOT(a); b independent. Bridge (a, b): g must compute
  // NOT(wired) even though b comes later in the original topo order.
  Circuit c("order");
  NetId a = c.add_input("a");
  NetId g = c.add_gate(GateType::Not, {a}, "g");
  NetId b = c.add_input("b");
  NetId h = c.add_gate(GateType::Not, {b}, "h");
  c.mark_output(g);
  c.mark_output(h);
  c.finalize();
  FaultSimulator fs(c);
  BridgingFault f{a, b, fault::BridgeType::Or};
  std::vector<Word> values(c.num_nets());
  values[a] = 0b0011;  // lanes: a = 1 on lanes 0,1
  values[b] = 0b0101;
  fs.faulty_values(values, f);
  const Word wired = 0b0111;
  EXPECT_EQ(values[g] & 0xf, static_cast<Word>(~wired) & 0xf);
  EXPECT_EQ(values[h] & 0xf, static_cast<Word>(~wired) & 0xf);
}

TEST(FaultSimTest, ExhaustiveDetectabilityKnownValues) {
  // Full adder, sum output chain: sa0 on PI "a" (stem).
  // a is XORed into sum: every vector flips sum when a = 1 -> all 4
  // vectors with a = 1 detect via sum. Detectability = 1/2.
  Circuit c = netlist::make_full_adder();
  FaultSimulator fs(c);
  StuckAtFault f{c.inputs()[0], std::nullopt, false};
  EXPECT_DOUBLE_EQ(fs.exhaustive_detectability(f), 0.5);
  // sa1 on "a": detected whenever a = 0 -> also 1/2.
  StuckAtFault f1{c.inputs()[0], std::nullopt, true};
  EXPECT_DOUBLE_EQ(fs.exhaustive_detectability(f1), 0.5);
}

TEST(FaultSimTest, ExhaustiveSyndromeKnownValues) {
  Circuit c = netlist::make_full_adder();
  FaultSimulator fs(c);
  // sum = a ^ b ^ cin has syndrome 1/2; cout = majority has 1/2.
  EXPECT_DOUBLE_EQ(fs.exhaustive_syndrome(*c.find_net("sum")), 0.5);
  EXPECT_DOUBLE_EQ(fs.exhaustive_syndrome(*c.find_net("cout")), 0.5);
  // ab = a & b has syndrome 1/4.
  EXPECT_DOUBLE_EQ(fs.exhaustive_syndrome(*c.find_net("ab")), 0.25);
}

TEST(FaultSimTest, ExhaustiveTestSetMatchesDetectability) {
  Circuit c = netlist::make_c17();
  FaultSimulator fs(c);
  for (const auto& f : fault::checkpoint_faults(c)) {
    const auto tests = fs.exhaustive_test_set(f);
    std::size_t count = 0;
    for (bool t : tests) count += t;
    EXPECT_DOUBLE_EQ(static_cast<double>(count) / 32.0,
                     fs.exhaustive_detectability(f))
        << describe(f, c);
  }
}

TEST(FaultSimTest, InputLimitEnforced) {
  Circuit c = netlist::make_c499_analog();  // 41 PIs
  FaultSimulator fs(c);
  StuckAtFault f{c.inputs()[0], std::nullopt, false};
  EXPECT_THROW((void)fs.exhaustive_detectability(f), std::invalid_argument);
}

TEST(FaultSimTest, RandomGradingDetectsEverythingOnC17) {
  Circuit c = netlist::make_c17();
  FaultSimulator fs(c);
  const auto faults = fault::checkpoint_faults(c);
  const auto cov = fs.grade_random(faults, 256, 99);
  // All C17 checkpoint faults are detectable and easy to hit randomly.
  EXPECT_EQ(cov.detected, cov.total);
  EXPECT_DOUBLE_EQ(cov.fraction(), 1.0);
}

TEST(FaultSimTest, VectorGradingCountsDetections) {
  Circuit c = netlist::make_c17();
  FaultSimulator fs(c);
  const auto faults = fault::checkpoint_faults(c);
  // One all-zeros vector detects some but not all faults.
  const auto cov1 =
      fs.grade_vectors(faults, {std::vector<bool>(c.num_inputs(), false)});
  EXPECT_GT(cov1.detected, 0u);
  EXPECT_LT(cov1.detected, cov1.total);
  // Exhaustive vector list detects everything.
  std::vector<std::vector<bool>> all;
  for (std::uint64_t v = 0; v < 32; ++v) {
    std::vector<bool> in(5);
    for (int i = 0; i < 5; ++i) in[i] = (v >> i) & 1;
    all.push_back(in);
  }
  const auto cov = fs.grade_vectors(faults, all);
  EXPECT_EQ(cov.detected, cov.total);
  // Width mismatch rejected.
  EXPECT_THROW(fs.grade_vectors(faults, {std::vector<bool>(3, false)}),
               std::invalid_argument);
}

// ---- ragged-block lane masking ------------------------------------------
// Pattern counts that are not a multiple of 64 leave a partial word whose
// upper lanes hold garbage (replicated vectors in the exhaustive sweeps,
// zero-filled inputs in the graders). These tests pin the masking contract.

TEST(FaultSimRaggedTest, BlockMaskPopcountsSumToVectorCount) {
  for (std::size_t n = 1; n <= 8; ++n) {
    const std::uint64_t blocks = n > 6 ? (1ull << (n - 6)) : 1;
    std::uint64_t lanes = 0;
    for (std::uint64_t b = 0; b < blocks; ++b) {
      lanes += static_cast<std::uint64_t>(
          std::popcount(PatternSimulator::block_mask(b, n)));
    }
    EXPECT_EQ(lanes, 1ull << n) << "n = " << n;
  }
}

TEST(FaultSimRaggedTest, DetectLanesIsUnmaskedByContract) {
  // detect_lanes reports the raw XOR of the PO words; the *callers* apply
  // block_mask (or the graders' tail masks). Garbage lanes must show
  // through here, otherwise the masked sweeps would be double-masking.
  Circuit c("buf");
  NetId a = c.add_input("a");
  NetId o = c.add_gate(GateType::Buf, {a}, "o");
  c.mark_output(o);
  c.finalize();
  FaultSimulator fs(c);
  std::vector<Word> good(c.num_nets(), 0), faulty(c.num_nets(), 0);
  good[o] = 0xf0f0f0f0f0f0f0f0ull;
  faulty[o] = 0x00f0f0f0f0f0f0f0ull;
  EXPECT_EQ(fs.detect_lanes(good, faulty), 0xf000000000000000ull);
}

TEST(FaultSimRaggedTest, PartialBlockSweepsIgnoreGarbageLanes) {
  // 3 inputs: only 8 of the 64 lanes are valid, and lanes 8..63 replicate
  // vectors 0..7 under the striped input words. An unmasked sweep would
  // count each detection 8x (detectability 1.0 instead of 1/8).
  Circuit c("and3");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId d = c.add_input("d");
  NetId o = c.add_gate(GateType::And, {a, b, d}, "o");
  c.mark_output(o);
  c.finalize();
  FaultSimulator fs(c);
  StuckAtFault f{o, std::nullopt, false};  // sa0: detected only by 111
  EXPECT_DOUBLE_EQ(fs.exhaustive_detectability(f), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(fs.exhaustive_syndrome(o), 1.0 / 8.0);
  const auto tests = fs.exhaustive_test_set(f);
  ASSERT_EQ(tests.size(), 8u);  // 2^n entries, not 64
  for (std::size_t v = 0; v < tests.size(); ++v) {
    EXPECT_EQ(tests[v], v == 7u) << "vector " << v;
  }
}

TEST(FaultSimRaggedTest, RaggedVectorGradingMasksTailLanes) {
  // o = OR(a, b); sa1 on o is detected only by the all-zero vector --
  // which is exactly what the zero-filled unused tail lanes fake. 63
  // non-detecting vectors must grade as zero detections; a real all-zero
  // vector in a 1-lane tail block (65 total) must be honoured.
  Circuit c("or2");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId o = c.add_gate(GateType::Or, {a, b}, "o");
  c.mark_output(o);
  c.finalize();
  FaultSimulator fs(c);
  const std::vector<StuckAtFault> faults = {{o, std::nullopt, true}};

  const std::vector<bool> ones(2, true), zeros(2, false);
  std::vector<std::vector<bool>> vectors(63, ones);
  EXPECT_EQ(fs.grade_vectors(faults, vectors).detected, 0u);

  vectors.assign(64, ones);
  vectors.push_back(zeros);  // lane 0 of the second (1-lane) block
  EXPECT_EQ(fs.grade_vectors(faults, vectors).detected, 1u);
}

TEST(FaultSimRaggedTest, RandomGradingHonorsExactPatternCount) {
  // One random pattern must grade exactly lane 0 of the seeded word
  // stream; cross-check against grade_vectors on that reconstructed
  // vector so a mask regression shows up as a count mismatch.
  Circuit c = netlist::make_c17();
  FaultSimulator fs(c);
  const auto faults = fault::checkpoint_faults(c);
  const std::uint64_t seed = 123;
  std::mt19937_64 rng(seed);
  std::vector<bool> lane0(c.num_inputs());
  for (std::size_t i = 0; i < c.num_inputs(); ++i) lane0[i] = rng() & 1;
  const auto one_random = fs.grade_random(faults, 1, seed);
  const auto one_vector = fs.grade_vectors(faults, {lane0});
  EXPECT_EQ(one_random.detected, one_vector.detected);
  EXPECT_EQ(one_random.total, one_vector.total);
}

// ---- Levelized 256-lane engine -----------------------------------------

TEST(WideSimTest, RandomGradingMatchesVectorGradingAtRaggedCounts) {
  // The random path packs lanes straight from the RNG word stream; the
  // vector path packs bool vectors lane by lane. Grading the materialized
  // stream must reproduce the random grade exactly -- per fault, not just
  // in aggregate -- at counts straddling every masking boundary (partial
  // word, full word, partial block, full 256-lane block).
  const Circuit c = netlist::make_c17();
  const WideFaultSimulator wide(c);
  const auto faults = fault::checkpoint_faults(c);
  const std::uint64_t seed = 0xfeedface;
  for (const std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                              std::size_t{65}, std::size_t{100},
                              std::size_t{250}, std::size_t{256},
                              std::size_t{300}}) {
    const auto random_grade = wide.grade_random(faults, n, seed);
    const auto vector_grade =
        wide.grade_vectors(faults, wide.random_patterns(n, seed));
    EXPECT_EQ(random_grade.detected(), vector_grade.detected()) << "n=" << n;
    EXPECT_EQ(random_grade.num_patterns, n) << "n=" << n;
    for (std::size_t i = 0; i < faults.size(); ++i) {
      EXPECT_EQ(random_grade.detection_counts[i],
                vector_grade.detection_counts[i])
          << "n=" << n << " fault " << i;
      EXPECT_EQ(random_grade.first_detection[i],
                vector_grade.first_detection[i])
          << "n=" << n << " fault " << i;
    }
  }
}

TEST(WideSimTest, ExactCountsMatchSerialRecountAcrossEngines) {
  // Cross-engine identity for the n-detect contract: with fault dropping
  // off, the wide engine's per-fault detection_counts and first_detection
  // must equal a naive serial recount (one FaultSimulator grade per
  // pattern per fault) at counts straddling every lane-masking boundary.
  // The n-detect analytics layer leans on exactly this equality when it
  // cross-checks BDD satcounts against simulator recounts.
  const Circuit c = netlist::make_c17();
  const WideFaultSimulator wide(c);
  FaultSimulator fs(c);
  const auto faults = fault::checkpoint_faults(c);
  const std::uint64_t seed = 0xc0de;
  WideSimOptions keep;
  keep.drop_detected = false;
  for (const std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                              std::size_t{65}, std::size_t{256},
                              std::size_t{300}}) {
    const auto stream = wide.random_patterns(n, seed);
    ASSERT_EQ(stream.size(), n);
    const auto grade = wide.grade_vectors(faults, stream, keep);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      std::uint64_t count = 0;
      std::uint64_t first = WideFaultSimulator::kNotDetected;
      for (std::size_t p = 0; p < n; ++p) {
        if (fs.grade_vectors({faults[i]}, {stream[p]}).detected == 1) {
          if (count == 0) first = p;
          ++count;
        }
      }
      EXPECT_EQ(grade.detection_counts[i], count)
          << "n=" << n << " fault " << i;
      EXPECT_EQ(grade.first_detection[i], first)
          << "n=" << n << " fault " << i;
    }
  }
}

TEST(WideSimTest, FirstDetectionIsEarliestDetectingPattern) {
  // Cross-check first_detection against the slow truth: grade each
  // reconstructed vector on its own and record the first detecting index.
  const Circuit c = netlist::make_c17();
  const WideFaultSimulator wide(c);
  FaultSimulator fs(c);
  const auto faults = fault::checkpoint_faults(c);
  const std::size_t n = 40;
  const std::uint64_t seed = 99;
  const auto stream = wide.random_patterns(n, seed);
  const auto grade = wide.grade_random(faults, n, seed);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    std::uint64_t expected = WideFaultSimulator::kNotDetected;
    for (std::size_t p = 0; p < n; ++p) {
      if (fs.grade_vectors({faults[i]}, {stream[p]}).detected == 1) {
        expected = p;
        break;
      }
    }
    EXPECT_EQ(grade.first_detection[i], expected) << "fault " << i;
  }
}

TEST(WideSimTest, FaultDroppingPreservesDetectedSetAndFirstDetection) {
  // Dropping stops counting after the first detecting block, but it must
  // never change which faults are detected or where they were first seen.
  const Circuit c = netlist::make_benchmark("alu181");
  const WideFaultSimulator wide(c);
  const auto faults = fault::checkpoint_faults(c);
  WideSimOptions drop, keep;
  drop.drop_detected = true;
  keep.drop_detected = false;
  const auto dropped = wide.grade_random(faults, 300, 5, drop);
  const auto kept = wide.grade_random(faults, 300, 5, keep);
  EXPECT_EQ(dropped.detected(), kept.detected());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(dropped.first_detection[i], kept.first_detection[i])
        << "fault " << i;
    EXPECT_EQ(dropped.detection_counts[i] > 0, kept.detection_counts[i] > 0)
        << "fault " << i;
  }
}

TEST(WideSimTest, BranchFaultOnZeroFaninGateThrows) {
  // A branch fault names a fanin pin; an Input (or Const) gate has none,
  // so injection must fail loudly instead of indexing pins[0].
  Circuit c("guard");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId o = c.add_gate(GateType::And, {a, b}, "o");
  c.mark_output(o);
  c.finalize();
  const WideFaultSimulator wide(c);
  const std::vector<StuckAtFault> bad = {{a, netlist::PinRef{a, 0}, true}};
  EXPECT_THROW(wide.grade_random(bad, 64, 1), netlist::NetlistError);
  FaultSimulator fs(c);
  std::vector<Word> values(c.num_nets());
  EXPECT_THROW(fs.faulty_values(values, bad[0]), netlist::NetlistError);
}

TEST(FaultSimTest, BridgeOrderIsDeterministicAndReusable) {
  // The 2^n bridge sweeps now compute the affected topological order once
  // per fault and reuse it across blocks; repeated queries must agree
  // with each other, and grading through the cached order must match the
  // per-call recompute path (the 3-arg faulty_values overload).
  const Circuit c = netlist::make_c17();
  const netlist::Structure structure(c);
  FaultSimulator fs(c);
  PatternSimulator ps(c);
  std::vector<Word> base(c.num_nets());
  for (std::size_t i = 0; i < c.inputs().size(); ++i) {
    base[c.inputs()[i]] = PatternSimulator::exhaustive_input_word(i, 0);
  }
  ps.eval(base);
  auto bridges = fault::enumerate_nfbfs(c, structure, fault::BridgeType::And);
  ASSERT_FALSE(bridges.empty());
  bridges.resize(std::min<std::size_t>(4, bridges.size()));
  for (const BridgingFault& f : bridges) {
    const auto order1 = fs.bridge_order(f);
    const auto order2 = fs.bridge_order(f);
    EXPECT_EQ(order1, order2);
    std::vector<Word> via_cached = base;
    fs.faulty_values(via_cached, f, order1);
    std::vector<Word> via_fresh = base;
    fs.faulty_values(via_fresh, f);
    EXPECT_EQ(via_cached, via_fresh);
  }
}

TEST(PatternSimTest, EvalGateWithOverridesGuardsAndOverrides) {
  // The override evaluator is the single branch-injection path; it must
  // reject gates with no fanin pins and honour the override on the
  // addressed pin only.
  Circuit c("ov");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId o = c.add_gate(GateType::And, {a, b}, "o");
  c.mark_output(o);
  c.finalize();
  PatternSimulator ps(c);
  std::vector<Word> values(c.num_nets());
  values[a] = ~Word{0};
  values[b] = 0;
  const PatternSimulator::PinOverride force_b1{1, ~Word{0}};
  EXPECT_EQ(ps.eval_gate_with_overrides(o, values, &force_b1, 1), ~Word{0});
  const PatternSimulator::PinOverride force_a0{0, Word{0}};
  EXPECT_EQ(ps.eval_gate_with_overrides(o, values, &force_a0, 1), Word{0});
  EXPECT_THROW(ps.eval_gate_with_overrides(a, values, &force_b1, 1),
               netlist::NetlistError);
}

}  // namespace
}  // namespace dp::sim
