// Cut-point functional decomposition (the paper's speed-up for C499 and
// larger, with its documented accuracy caveat).
#include <gtest/gtest.h>

#include "dp/engine.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"

namespace dp::core {
namespace {

using netlist::Circuit;

TEST(DecompositionTest, ZeroThresholdIsExact) {
  const Circuit c = netlist::make_c95_analog();
  bdd::Manager m(0);
  GoodFunctions g(m, c, GoodFunctionOptions{});
  EXPECT_TRUE(g.exact());
  EXPECT_TRUE(g.cut_nets().empty());
  EXPECT_EQ(g.num_vars(), c.num_inputs());
}

TEST(DecompositionTest, CutsIntroduceVariablesAndShrinkFunctions) {
  const Circuit c = netlist::make_c499_analog();
  bdd::Manager exact_mgr(0), cut_mgr(0);
  GoodFunctions exact(exact_mgr, c);
  GoodFunctionOptions opt;
  opt.cut_threshold = 64;
  GoodFunctions cut(cut_mgr, c, opt);

  EXPECT_FALSE(cut.exact());
  EXPECT_GT(cut.cut_nets().size(), 0u);
  EXPECT_EQ(cut.num_vars(), c.num_inputs() + cut.cut_nets().size());
  EXPECT_LT(cut.total_nodes(), exact.total_nodes());
  // Every cut net is literally a single fresh variable now.
  for (netlist::NetId id : cut.cut_nets()) {
    EXPECT_EQ(cut.at(id).dag_size(), 2u);  // one node + the terminal
    EXPECT_EQ(cut.at(id).support().size(), 1u);
  }
}

TEST(DecompositionTest, DpStillRunsAndBoundsHold) {
  const Circuit c = netlist::make_c499_analog();
  netlist::Structure st(c);
  bdd::Manager m(0);
  GoodFunctionOptions opt;
  opt.cut_threshold = 64;
  GoodFunctions good(m, c, opt);
  DifferencePropagator dp(good, st);

  const auto faults = fault::collapse_checkpoint_faults(c);
  std::size_t checked = 0;
  for (const auto& f : faults) {
    const FaultAnalysis a = dp.analyze(f);
    // The analysis is approximate but must stay a probability with the
    // adherence invariant intact.
    ASSERT_GE(a.detectability, 0.0);
    ASSERT_LE(a.detectability, 1.0);
    ASSERT_LE(a.detectability, a.upper_bound + 1e-12);
    if (++checked == 50) break;
  }
}

/// Disjoint union of an 8-bit ripple adder (whose deep carries exceed the
/// cut threshold) and an independent full adder (never cut): faults in the
/// small block have cut-free cones.
Circuit make_two_block_circuit() {
  Circuit c("twoblock");
  // Block 1: ripple adder over its own inputs.
  std::vector<netlist::NetId> a(8), b(8);
  for (int i = 0; i < 8; ++i) a[i] = c.add_input("a" + std::to_string(i));
  for (int i = 0; i < 8; ++i) b[i] = c.add_input("b" + std::to_string(i));
  netlist::NetId carry = c.add_input("cin");
  for (int i = 0; i < 8; ++i) {
    const std::string s = std::to_string(i);
    auto axb = c.add_gate(netlist::GateType::Xor, {a[i], b[i]}, "p" + s);
    auto sum = c.add_gate(netlist::GateType::Xor, {axb, carry}, "s" + s);
    auto g = c.add_gate(netlist::GateType::And, {a[i], b[i]}, "g" + s);
    auto pc = c.add_gate(netlist::GateType::And, {axb, carry}, "pc" + s);
    carry = c.add_gate(netlist::GateType::Or, {g, pc}, "c" + std::to_string(i + 1));
    c.mark_output(sum);
  }
  c.mark_output(carry);
  // Block 2: disjoint full adder.
  auto x = c.add_input("x");
  auto y = c.add_input("y");
  auto z = c.add_input("z");
  auto xy = c.add_gate(netlist::GateType::Xor, {x, y}, "xy");
  auto fs = c.add_gate(netlist::GateType::Xor, {xy, z}, "fs");
  auto m1 = c.add_gate(netlist::GateType::And, {x, y}, "m1");
  auto m2 = c.add_gate(netlist::GateType::And, {xy, z}, "m2");
  auto fc = c.add_gate(netlist::GateType::Or, {m1, m2}, "fc");
  c.mark_output(fs);
  c.mark_output(fc);
  c.finalize();
  return c;
}

TEST(DecompositionTest, ApproximationIsExactWhenCutsAreUnreachable) {
  // A fault whose cone never touches a cut-carrying function is analyzed
  // exactly. The two-block circuit guarantees such faults exist.
  const Circuit c = make_two_block_circuit();
  netlist::Structure st(c);
  bdd::Manager exact_mgr(0), cut_mgr(0);
  GoodFunctions exact(exact_mgr, c);
  GoodFunctionOptions opt;
  opt.cut_threshold = 12;
  GoodFunctions cut(cut_mgr, c, opt);
  ASSERT_FALSE(cut.exact());
  DifferencePropagator dpe(exact, st);
  DifferencePropagator dpc(cut, st);

  // Sufficient condition for exactness: no net in the fault's fanout cone
  // (nor any side input feeding that cone) carries a cut variable in its
  // good function -- then the propagation only ever sees exact functions.
  auto cut_free_cone = [&](netlist::NetId site) {
    for (netlist::NetId id = 0; id < c.num_nets(); ++id) {
      if (!st.reaches(site, id)) continue;
      for (netlist::NetId fanin : c.fanins(id)) {
        for (bdd::Var v : cut.at(fanin).support()) {
          if (v >= c.num_inputs()) return false;
        }
      }
    }
    return true;
  };

  std::size_t compared = 0;
  for (const auto& f : fault::collapse_checkpoint_faults(c)) {
    const netlist::NetId site = f.branch ? f.branch->gate : f.net;
    if (!cut_free_cone(site)) continue;
    const FaultAnalysis ac = dpc.analyze(f);
    const FaultAnalysis ae = dpe.analyze(f);
    // Densities normalize over different variable counts, but the cut
    // variables are absent from the function, so averaging over them
    // changes nothing.
    EXPECT_NEAR(ac.detectability, ae.detectability, 1e-12);
    if (++compared == 10) break;
  }
  EXPECT_GT(compared, 0u);
}

}  // namespace
}  // namespace dp::core
