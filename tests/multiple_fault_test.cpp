// Multiple stuck-at faults: generation, engine semantics, and the central
// cross-validation against exhaustive simulation.
#include <gtest/gtest.h>

#include "dp/engine.hpp"
#include "fault/multiple.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"
#include "sim/fault_sim.hpp"

namespace dp {
namespace {

using fault::MultipleStuckAtFault;
using fault::StuckAtFault;
using netlist::Circuit;

TEST(MultipleFaultModelTest, SamplerProducesDistinctWellFormedFaults) {
  const Circuit c = netlist::make_c95_analog();
  const auto faults = fault::sample_multiple_faults(c, 2, 100, 7);
  EXPECT_EQ(faults.size(), 100u);
  for (const auto& mf : faults) {
    ASSERT_EQ(mf.components.size(), 2u);
    EXPECT_FALSE(fault::same_line(mf.components[0], mf.components[1]));
  }
  // Deterministic in the seed.
  EXPECT_EQ(fault::sample_multiple_faults(c, 2, 100, 7), faults);
  EXPECT_NE(fault::sample_multiple_faults(c, 2, 100, 8), faults);
  // Higher multiplicities work too.
  for (const auto& mf : fault::sample_multiple_faults(c, 4, 20, 9)) {
    EXPECT_EQ(mf.components.size(), 4u);
  }
  EXPECT_THROW(fault::sample_multiple_faults(c, 1, 5, 1),
               netlist::NetlistError);
}

TEST(MultipleFaultModelTest, DescribeListsAllComponents) {
  const Circuit c = netlist::make_c17();
  const auto faults = fault::sample_multiple_faults(c, 3, 1, 2);
  ASSERT_EQ(faults.size(), 1u);
  const std::string d = describe(faults[0], c);
  EXPECT_EQ(std::count(d.begin(), d.end(), ','), 2);
  EXPECT_NE(d.find("sa"), std::string::npos);
}

class MultipleFaultDpTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MultipleFaultDpTest, DpMatchesExhaustiveSimulation) {
  const Circuit c = netlist::make_benchmark(GetParam());
  netlist::Structure st(c);
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c);
  core::DifferencePropagator dp(good, st);
  sim::FaultSimulator fs(c);

  for (std::size_t multiplicity : {2u, 3u}) {
    const auto faults =
        fault::sample_multiple_faults(c, multiplicity, 60, 1990);
    for (const auto& mf : faults) {
      const core::FaultAnalysis a = dp.analyze(mf);
      const double sim_det = fs.exhaustive_detectability(mf);
      ASSERT_DOUBLE_EQ(a.detectability, sim_det) << describe(mf, c);
      ASSERT_LE(a.detectability, a.upper_bound + 1e-12) << describe(mf, c);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSuite, MultipleFaultDpTest,
                         ::testing::Values("c17", "fulladder", "c95",
                                           "alu181"));

TEST(MultipleFaultDpTest, MaskingPairExists) {
  // Classic multiple-fault phenomenon: two faults can partially mask each
  // other, so the double fault's test set differs from the union of the
  // single test sets. Verify we can find such a pair on the ALU.
  const Circuit c = netlist::make_alu181();
  netlist::Structure st(c);
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c);
  core::DifferencePropagator dp(good, st);

  const auto singles = fault::collapse_checkpoint_faults(c);
  bool masking_found = false;
  const auto doubles = fault::sample_multiple_faults(c, 2, 150, 3);
  for (const auto& mf : doubles) {
    const bdd::Bdd t0 = dp.analyze(mf.components[0]).test_set;
    const bdd::Bdd t1 = dp.analyze(mf.components[1]).test_set;
    const bdd::Bdd td = dp.analyze(mf).test_set;
    if (td != (t0 | t1)) {
      masking_found = true;
      break;
    }
  }
  EXPECT_TRUE(masking_found);
  (void)singles;
}

TEST(MultipleFaultDpTest, DominantComponentAloneStillDetected) {
  // A double fault where one component is a PO stem is always detectable:
  // the PO line itself is pinned.
  const Circuit c = netlist::make_c95_analog();
  netlist::Structure st(c);
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c);
  core::DifferencePropagator dp(good, st);

  MultipleStuckAtFault mf;
  mf.components.push_back(StuckAtFault{c.outputs()[0], std::nullopt, true});
  mf.components.push_back(StuckAtFault{c.inputs()[0], std::nullopt, false});
  const core::FaultAnalysis a = dp.analyze(mf);
  EXPECT_TRUE(a.detectable);
  // The PO stem's own excitation already reaches the output.
  EXPECT_GE(a.detectability,
            dp.analyze(mf.components[0]).detectability * 0.5);
}

TEST(MultipleFaultDpTest, IllFormedFaultsRejected) {
  const Circuit c = netlist::make_c17();
  netlist::Structure st(c);
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c);
  core::DifferencePropagator dp(good, st);

  MultipleStuckAtFault empty;
  EXPECT_THROW((void)dp.analyze(empty), netlist::NetlistError);

  MultipleStuckAtFault clash;
  clash.components.push_back(StuckAtFault{c.inputs()[0], std::nullopt, true});
  clash.components.push_back(StuckAtFault{c.inputs()[0], std::nullopt, false});
  EXPECT_THROW((void)dp.analyze(clash), netlist::NetlistError);
}

TEST(MultipleFaultDpTest, SingletonMultipleEqualsSingleAnalysis) {
  const Circuit c = netlist::make_c95_analog();
  netlist::Structure st(c);
  bdd::Manager mgr(0);
  core::GoodFunctions good(mgr, c);
  core::DifferencePropagator dp(good, st);

  for (const StuckAtFault& f : fault::collapse_checkpoint_faults(c)) {
    MultipleStuckAtFault mf;
    mf.components.push_back(f);
    const core::FaultAnalysis single = dp.analyze(f);
    const core::FaultAnalysis multi = dp.analyze(mf);
    ASSERT_EQ(single.test_set, multi.test_set) << describe(f, c);
    ASSERT_DOUBLE_EQ(single.upper_bound, multi.upper_bound);
  }
}

}  // namespace
}  // namespace dp
