// DFT test-point edits: function preservation and testability effect.
#include <gtest/gtest.h>

#include "analysis/profiles.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"
#include "netlist/testpoints.hpp"
#include "sim/pattern_sim.hpp"

namespace dp::netlist {
namespace {

std::vector<bool> run(const Circuit& c, const std::vector<bool>& in) {
  sim::PatternSimulator ps(c);
  std::vector<sim::Word> values(c.num_nets(), 0);
  for (std::size_t i = 0; i < in.size(); ++i) {
    values[c.inputs()[i]] = in[i] ? ~sim::Word{0} : 0;
  }
  ps.eval(values);
  std::vector<bool> out;
  for (NetId po : c.outputs()) out.push_back(values[po] & 1);
  return out;
}

TEST(ObservationPointsTest, AddsPosWithoutChangingFunctions) {
  Circuit base = make_c17();
  const NetId tap = *base.find_net("11");
  Circuit obs = add_observation_points(base, {tap});
  EXPECT_EQ(obs.num_outputs(), base.num_outputs() + 1);
  EXPECT_EQ(obs.num_inputs(), base.num_inputs());
  EXPECT_EQ(obs.num_gates(), base.num_gates());

  for (std::uint64_t v = 0; v < 32; ++v) {
    std::vector<bool> in(5);
    for (int i = 0; i < 5; ++i) in[i] = (v >> i) & 1;
    const auto a = run(base, in);
    const auto b = run(obs, in);
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k], b[k]) << "original PO " << k << " changed";
    }
  }
}

TEST(ObservationPointsTest, TappingAnExistingPoIsIdempotent) {
  Circuit base = make_c17();
  Circuit obs = add_observation_points(base, {base.outputs()[0]});
  EXPECT_EQ(obs.num_outputs(), base.num_outputs());
}

TEST(ObservationPointsTest, ImprovesMeanDetectability) {
  // Observing a buried fanout stem can only help (monotone: every old
  // test still works, new detections possible).
  Circuit base = make_c95_analog();
  Structure s(base);
  // Deepest-from-PO internal net.
  NetId best = kInvalidNet;
  int depth = -1;
  for (NetId id = 0; id < base.num_nets(); ++id) {
    if (base.type(id) == GateType::Input) continue;
    if (s.max_levels_to_po(id) > depth) {
      depth = s.max_levels_to_po(id);
      best = id;
    }
  }
  const auto before = analysis::analyze_stuck_at(base);
  const auto after =
      analysis::analyze_stuck_at(add_observation_points(base, {best}));
  EXPECT_GE(after.mean_detectability_detectable(),
            before.mean_detectability_detectable());
  EXPECT_LE(after.faults.size() - after.detectable_count(),
            before.faults.size() - before.detectable_count());
}

TEST(ControlPointsTest, NormalModeKeepsFunctions) {
  Circuit base = make_c17();
  const NetId tap = *base.find_net("16");
  Circuit ctl = add_control_points(base, {tap});
  EXPECT_EQ(ctl.num_inputs(), base.num_inputs() + 1);
  EXPECT_EQ(ctl.num_outputs(), base.num_outputs());

  for (std::uint64_t v = 0; v < 32; ++v) {
    std::vector<bool> in(5);
    for (int i = 0; i < 5; ++i) in[i] = (v >> i) & 1;
    auto extended = in;
    extended.push_back(false);  // cp0 = 0: normal operation
    EXPECT_EQ(run(base, in), run(ctl, extended)) << v;
  }
}

TEST(ControlPointsTest, AssertedControlFlipsTheNet) {
  Circuit base = make_c17();
  const NetId tap = *base.find_net("16");
  Circuit ctl = add_control_points(base, {tap});
  // With cp0 = 1 the tapped net inverts; gate 22 = NAND(10, 16) must see
  // the flip for at least one vector.
  bool any_changed = false;
  for (std::uint64_t v = 0; v < 32 && !any_changed; ++v) {
    std::vector<bool> in(5);
    for (int i = 0; i < 5; ++i) in[i] = (v >> i) & 1;
    auto extended = in;
    extended.push_back(true);
    any_changed = run(base, in) != run(ctl, extended);
  }
  EXPECT_TRUE(any_changed);
}

TEST(ControlPointsTest, TappedPoIsRedirectedThroughTheXor) {
  Circuit base = make_c17();
  const NetId po = base.outputs()[0];
  Circuit ctl = add_control_points(base, {po});
  // The PO must now be the XOR-ed net so the control point is observable.
  const NetId new_po = ctl.outputs()[0];
  EXPECT_EQ(ctl.type(new_po), GateType::Xor);
}

TEST(TestPointErrorsTest, BadTapsRejected) {
  Circuit base = make_c17();
  EXPECT_THROW(add_observation_points(base, {9999}), NetlistError);
  EXPECT_THROW(add_control_points(base, {9999}), NetlistError);

  Circuit with_const("k");
  NetId a = with_const.add_input("a");
  NetId k = with_const.add_const(true, "k1");
  NetId g = with_const.add_gate(GateType::And, {a, k}, "g");
  with_const.mark_output(g);
  with_const.finalize();
  EXPECT_THROW(add_observation_points(with_const, {k}), NetlistError);
}

}  // namespace
}  // namespace dp::netlist
