// The frozen-forest contract: Manager::freeze() packs an immutable,
// canonically reduced snapshot; adopting managers splice it in as a
// read-only prefix without duplicating structure; any number of threads
// read it lock-free; and the store layer serializes a frozen forest
// byte-identically to a save of the live manager it came from.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/frozen_forest.hpp"
#include "bdd/manager.hpp"
#include "dp/good_functions.hpp"
#include "netlist/generators.hpp"
#include "store/bdd_io.hpp"

namespace dp::bdd {
namespace {

/// A small but non-trivial universe: three functions over four variables
/// with shared subgraphs and complemented roots.
struct SampleUniverse {
  Manager manager{4};
  std::vector<Bdd> funcs;

  SampleUniverse() {
    const Bdd a = manager.var(0), b = manager.var(1);
    const Bdd c = manager.var(2), d = manager.var(3);
    funcs.push_back((a & b) | (c & d));
    funcs.push_back(!(a ^ d) | (b & c));
    funcs.push_back(a | !b);
  }

  std::vector<NodeIndex> roots() const {
    std::vector<NodeIndex> r;
    for (const Bdd& f : funcs) r.push_back(f.index());
    return r;
  }
};

TEST(FrozenForestTest, FreezePreservesSemanticsAndCanonicity) {
  SampleUniverse u;
  std::vector<NodeIndex> remapped;
  const auto forest = u.manager.freeze(u.roots(), &remapped);
  ASSERT_EQ(remapped.size(), u.funcs.size());
  ASSERT_GT(forest->size(), 1u);
  EXPECT_EQ(forest->num_vars(), 4u);
  EXPECT_NO_THROW(forest->check_canonical());

  for (std::size_t i = 0; i < u.funcs.size(); ++i) {
    EXPECT_DOUBLE_EQ(forest->sat_count(remapped[i], 4),
                     u.funcs[i].sat_count(4));
    EXPECT_EQ(forest->support(remapped[i]), u.funcs[i].support());
    EXPECT_EQ(forest->dag_size(remapped[i]), u.funcs[i].dag_size());
    // Exhaustive evaluation: the frozen reading of every edge must match
    // the live manager on all 16 assignments.
    for (unsigned v = 0; v < 16; ++v) {
      std::vector<bool> point{(v & 1) != 0, (v & 2) != 0, (v & 4) != 0,
                              (v & 8) != 0};
      EXPECT_EQ(forest->eval(remapped[i], point), u.funcs[i].eval(point))
          << "function " << i << " at vector " << v;
    }
  }
}

TEST(FrozenForestTest, AdoptionReusesFrozenStructure) {
  SampleUniverse u;
  std::vector<NodeIndex> remapped;
  const auto forest = u.manager.freeze(u.roots(), &remapped);

  Manager adopter(forest);
  EXPECT_EQ(adopter.frozen_nodes(), forest->size());
  EXPECT_TRUE(adopter.has_frozen_base());
  EXPECT_EQ(adopter.num_vars(), 4u);

  // Rebuilding a frozen function from scratch must resolve to the frozen
  // edge itself -- mk() probes the frozen unique index, so no private
  // node duplicates a frozen triple. Apply intermediates (and plain var
  // nodes absent from the frozen DAG) may allocate privately, but nothing
  // the result retains: once the handles drop, a sweep empties the
  // private pool because everything reachable is frozen.
  {
    const Bdd a = adopter.var(0), b = adopter.var(1);
    const Bdd c = adopter.var(2), d = adopter.var(3);
    const Bdd rebuilt = (a & b) | (c & d);
    EXPECT_EQ(rebuilt.index(), remapped[0]);
  }
  adopter.gc();
  EXPECT_EQ(adopter.live_nodes(), 0u)
      << "rebuilding frozen functions must not retain private nodes";

  // Private growth above the prefix stays canonical as a combined space.
  const Bdd a = adopter.var(0), b = adopter.var(1);
  const Bdd c = adopter.var(2), d = adopter.var(3);
  const Bdd priv = (a ^ b) & (c ^ d);
  EXPECT_GT(adopter.live_nodes(), 0u);
  EXPECT_NO_THROW(adopter.check_canonical());
  EXPECT_DOUBLE_EQ(priv.sat_count(4), 4.0);
}

TEST(FrozenForestTest, FrozenNodesSurvivePrivateGarbageCollection) {
  SampleUniverse u;
  std::vector<NodeIndex> remapped;
  const auto forest = u.manager.freeze(u.roots(), &remapped);

  Manager adopter(forest);
  adopter.set_gc_floor(1);
  const Bdd a = adopter.var(0), b = adopter.var(1);
  {
    // Churn: private garbage that GC will reclaim in full.
    const Bdd c = adopter.var(2), d = adopter.var(3);
    for (int i = 0; i < 8; ++i) {
      Bdd junk = (a ^ b) & (c ^ d) & (i % 2 ? a : !d);
      (void)junk;
    }
  }
  const std::size_t reclaimed = adopter.gc();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(adopter.frozen_nodes(), forest->size());
  // The frozen prefix is immortal: its handles still denote the same
  // functions after a full private sweep.
  for (std::size_t i = 0; i < u.funcs.size(); ++i) {
    EXPECT_DOUBLE_EQ(forest->sat_count(remapped[i], 4),
                     u.funcs[i].sat_count(4));
    Bdd wrapped(adopter, remapped[i]);
    EXPECT_DOUBLE_EQ(wrapped.sat_count(4), u.funcs[i].sat_count(4));
  }
  EXPECT_NO_THROW(adopter.check_canonical());
}

TEST(FrozenForestTest, ReorderingAnAdoptingManagerThrows) {
  SampleUniverse u;
  const auto forest = u.manager.freeze(u.roots());
  Manager adopter(forest);
  EXPECT_THROW(adopter.sift_reorder(), BddError);
  EXPECT_THROW(adopter.swap_adjacent_levels(0), BddError);
}

TEST(FrozenForestTest, FreezingAnAdoptingManagerThrows) {
  SampleUniverse u;
  const auto forest = u.manager.freeze(u.roots());
  Manager adopter(forest);
  const Bdd f = adopter.var(0) & adopter.var(1);
  EXPECT_THROW(adopter.freeze({f.index()}), BddError);
}

TEST(FrozenForestTest, ConcurrentReadersSeeIdenticalFunctions) {
  const netlist::Circuit circuit = netlist::make_benchmark("c17");
  core::SharedGoodFunctions shared(circuit);

  // Reference syndromes from a private (unshared) build.
  Manager ref_manager(0);
  core::GoodFunctions ref(ref_manager, circuit);
  std::vector<double> expected;
  for (netlist::NetId n = 0; n < circuit.num_nets(); ++n) {
    expected.push_back(ref.syndrome(n));
  }

  constexpr std::size_t kReaders = 4;
  std::vector<std::vector<double>> got(kReaders);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      // Each reader adopts the one forest through its own manager -- the
      // production sharing pattern -- and also queries the forest
      // directly, manager-free.
      Manager m(shared.forest());
      core::GoodFunctions good(m, circuit, shared);
      for (netlist::NetId n = 0; n < circuit.num_nets(); ++n) {
        got[t].push_back(good.syndrome(n));
        EXPECT_DOUBLE_EQ(
            shared.forest()->sat_count(shared.roots()[n], shared.num_vars()),
            good.at(n).sat_count(shared.num_vars()));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t t = 0; t < kReaders; ++t) EXPECT_EQ(got[t], expected);
}

TEST(FrozenForestTest, FrozenSaveIsByteIdenticalToManagerSave) {
  SampleUniverse u;
  std::vector<NodeIndex> remapped;
  const auto forest = u.manager.freeze(u.roots(), &remapped);

  std::ostringstream from_manager, from_forest;
  store::save_forest(from_manager, u.manager, u.funcs);
  store::save_forest(from_forest, *forest, remapped);
  EXPECT_EQ(from_manager.str(), from_forest.str());

  // And the file round-trips into a fresh manager with semantics intact.
  std::istringstream in(from_forest.str());
  Manager fresh(0);
  const std::vector<Bdd> loaded = store::load_forest(in, fresh);
  ASSERT_EQ(loaded.size(), u.funcs.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].sat_count(4), u.funcs[i].sat_count(4));
  }
}

TEST(FrozenForestTest, SharedGoodFunctionsMatchesPrivateBuildOnAlu) {
  const netlist::Circuit circuit = netlist::make_alu181();
  core::SharedGoodFunctions shared(circuit);
  EXPECT_GT(shared.frozen_nodes(), 1u);
  EXPECT_NO_THROW(shared.forest()->check_canonical());

  Manager priv_manager(0);
  core::GoodFunctions priv(priv_manager, circuit);
  Manager adopt_manager(shared.forest());
  core::GoodFunctions adopted(adopt_manager, circuit, shared);
  ASSERT_EQ(adopted.num_vars(), priv.num_vars());
  for (netlist::NetId n = 0; n < circuit.num_nets(); ++n) {
    EXPECT_DOUBLE_EQ(adopted.syndrome(n), priv.syndrome(n)) << "net " << n;
  }
}

}  // namespace
}  // namespace dp::bdd
