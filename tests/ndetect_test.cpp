// The n-detection analytics suite (`ndetect_smoke` ctest label; also
// rerun under ASan and TSan by bench/smoke.cmake): exact detection
// counts against brute-force enumeration, top-up quota completion,
// jobs-invariance, and the degenerate inputs (empty vector set, n = 0).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/ndetect.hpp"
#include "fault/stuck_at.hpp"
#include "netlist/generators.hpp"
#include "sim/fault_sim.hpp"
#include "sim/wide_sim.hpp"

namespace dp {
namespace {

/// All 2^n input vectors, index = packed PI assignment (PI 0 = LSB) --
/// the same packing FaultSimulator::exhaustive_test_set uses.
std::vector<std::vector<bool>> all_vectors(std::size_t num_inputs) {
  std::vector<std::vector<bool>> out;
  const std::uint64_t limit = 1ull << num_inputs;
  for (std::uint64_t v = 0; v < limit; ++v) {
    std::vector<bool> point(num_inputs);
    for (std::size_t i = 0; i < num_inputs; ++i) point[i] = (v >> i) & 1;
    out.push_back(std::move(point));
  }
  return out;
}

std::uint64_t pack(const std::vector<bool>& v) {
  std::uint64_t x = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i]) x |= 1ull << i;
  }
  return x;
}

/// Brute-force detection count: distinct vectors of `vectors` whose
/// packed index the exhaustive simulator's test-set bitmap accepts.
std::uint64_t brute_force_count(const std::vector<bool>& bitmap,
                                const std::vector<std::vector<bool>>& vectors) {
  std::vector<bool> used(bitmap.size(), false);
  std::uint64_t count = 0;
  for (const auto& v : vectors) {
    const std::uint64_t idx = pack(v);
    if (bitmap[idx] && !used[idx]) {
      used[idx] = true;
      ++count;
    }
  }
  return count;
}

/// Deterministic pseudo-random vector sample (with deliberate duplicates
/// via the small modulus) -- splitmix64 over the seed.
std::vector<std::vector<bool>> sample_vectors(std::size_t num_inputs,
                                              std::size_t count,
                                              std::uint64_t seed) {
  std::vector<std::vector<bool>> out;
  std::uint64_t x = seed;
  for (std::size_t k = 0; k < count; ++k) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    std::vector<bool> v(num_inputs);
    for (std::size_t i = 0; i < num_inputs; ++i) v[i] = (z >> i) & 1;
    out.push_back(std::move(v));
  }
  return out;
}

void expect_counts_match_brute_force(const netlist::Circuit& circuit,
                                     const std::vector<std::vector<bool>>& vectors) {
  const auto faults = fault::collapse_checkpoint_faults(circuit);
  analysis::NDetectAnalyzer analyzer(circuit, faults);
  const auto counts = analyzer.detection_counts(vectors);
  const sim::FaultSimulator fs(circuit);
  ASSERT_EQ(counts.size(), faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const auto bitmap = fs.exhaustive_test_set(faults[i]);
    EXPECT_EQ(counts[i], brute_force_count(bitmap, vectors))
        << fault::describe(faults[i], circuit);
    // CTS size cross-check: the bitmap's popcount is the satcount.
    std::uint64_t cts = 0;
    for (const bool b : bitmap) cts += b ? 1 : 0;
    EXPECT_EQ(analyzer.cts_size(i), static_cast<double>(cts))
        << fault::describe(faults[i], circuit);
  }
}

TEST(NDetectTest, CountsMatchBruteForceOnC17) {
  const netlist::Circuit c = netlist::make_c17();
  expect_counts_match_brute_force(c, sample_vectors(c.num_inputs(), 24, 17));
}

TEST(NDetectTest, CountsMatchBruteForceOnAlu181) {
  const netlist::Circuit c = netlist::make_alu181();
  expect_counts_match_brute_force(c, sample_vectors(c.num_inputs(), 96, 181));
}

TEST(NDetectTest, CountsMatchBruteForceOnRandomShapes) {
  for (const netlist::CircuitShape shape : netlist::all_circuit_shapes()) {
    const netlist::Circuit c = netlist::make_random_circuit(
        0xdec0de + static_cast<std::uint64_t>(shape), 8, 24, 3, shape);
    expect_counts_match_brute_force(c, sample_vectors(c.num_inputs(), 40, 7));
  }
}

TEST(NDetectTest, FullVectorSpaceCoversEveryCompleteTestSet) {
  const netlist::Circuit c = netlist::make_c17();
  const auto faults = fault::collapse_checkpoint_faults(c);
  analysis::NDetectAnalyzer analyzer(c, faults);
  const auto counts = analyzer.detection_counts(all_vectors(c.num_inputs()));
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(static_cast<double>(counts[i]), analyzer.cts_size(i));
  }
  const auto report = analyzer.report(all_vectors(c.num_inputs()), 1);
  for (const analysis::NDetectFaultRecord& r : report.faults) {
    if (r.detectable) {
      EXPECT_EQ(r.cts_coverage, 1.0) << r.name;
    }
  }
}

TEST(NDetectTest, TopUpReachesQuotaForEveryDetectableFault) {
  for (const char* name : {"c17", "alu181"}) {
    const netlist::Circuit c = netlist::make_benchmark(name);
    const auto faults = fault::collapse_checkpoint_faults(c);
    analysis::NDetectAnalyzer analyzer(c, faults);
    for (const std::size_t n : {1u, 3u, 5u}) {
      std::vector<std::vector<bool>> vectors;
      analyzer.top_up(vectors, n);
      const auto counts = analyzer.detection_counts(vectors);
      const sim::FaultSimulator fs(c);
      for (std::size_t i = 0; i < faults.size(); ++i) {
        // >= not ==: a vector minted for one fault legitimately detects
        // others too (that sharing is why greedy top-up stays compact).
        EXPECT_GE(counts[i], analyzer.quota(i, n))
            << name << " n=" << n << " " << fault::describe(faults[i], c);
        // Independent recount of the minted set.
        EXPECT_EQ(counts[i],
                  brute_force_count(fs.exhaustive_test_set(faults[i]),
                                    vectors))
            << name << " n=" << n;
      }
    }
  }
}

TEST(NDetectTest, TopUpOnlyMintsMissingVectors) {
  // Starting from an already-complete set, top_up mints nothing.
  const netlist::Circuit c = netlist::make_c17();
  const auto faults = fault::collapse_checkpoint_faults(c);
  analysis::NDetectAnalyzer analyzer(c, faults);
  std::vector<std::vector<bool>> vectors;
  const std::size_t minted = analyzer.top_up(vectors, 2);
  EXPECT_GT(minted, 0u);
  EXPECT_EQ(vectors.size(), minted);
  std::vector<std::vector<bool>> again = vectors;
  EXPECT_EQ(analyzer.top_up(again, 2), 0u);
  EXPECT_EQ(again.size(), vectors.size());
}

TEST(NDetectTest, DeterministicAcrossWorkerCounts) {
  const netlist::Circuit c = netlist::make_alu181();
  const auto faults = fault::collapse_checkpoint_faults(c);
  analysis::NDetectOptions serial;
  serial.jobs = 1;
  analysis::NDetectOptions wide;
  wide.jobs = 4;
  analysis::NDetectAnalyzer a1(c, faults, serial);
  analysis::NDetectAnalyzer a4(c, faults, wide);

  std::vector<std::vector<bool>> v1 = sample_vectors(c.num_inputs(), 8, 42);
  std::vector<std::vector<bool>> v4 = v1;
  EXPECT_EQ(a1.top_up(v1, 3), a4.top_up(v4, 3));
  EXPECT_EQ(v1, v4);  // identical minted vectors, identical order

  const auto r1 = a1.report(v1, 3);
  const auto r4 = a4.report(v4, 3);
  ASSERT_EQ(r1.faults.size(), r4.faults.size());
  for (std::size_t i = 0; i < r1.faults.size(); ++i) {
    EXPECT_EQ(r1.faults[i].detections, r4.faults[i].detections);
    EXPECT_EQ(r1.faults[i].cts_size, r4.faults[i].cts_size);
    EXPECT_EQ(r1.faults[i].target, r4.faults[i].target);
    EXPECT_EQ(r1.faults[i].cts_coverage, r4.faults[i].cts_coverage);
  }
  // Serialized documents are byte-identical (the serving contract).
  EXPECT_EQ(analysis::ndetect_report_to_json(r1).dump(0),
            analysis::ndetect_report_to_json(r4).dump(0));
}

TEST(NDetectTest, ZeroVectorsCountNothing) {
  const netlist::Circuit c = netlist::make_c17();
  const auto faults = fault::collapse_checkpoint_faults(c);
  analysis::NDetectAnalyzer analyzer(c, faults);
  const std::vector<std::vector<bool>> none;
  for (const std::uint64_t count : analyzer.detection_counts(none)) {
    EXPECT_EQ(count, 0u);
  }
  const auto report = analyzer.report(none, 1);
  EXPECT_EQ(report.num_vectors, 0u);
  EXPECT_EQ(report.total_detections(), 0u);
  EXPECT_FALSE(report.complete());  // c17 has detectable faults
  EXPECT_EQ(report.mean_cts_coverage(), 0.0);
}

TEST(NDetectTest, TargetZeroIsTriviallyComplete) {
  const netlist::Circuit c = netlist::make_c17();
  const auto faults = fault::collapse_checkpoint_faults(c);
  analysis::NDetectAnalyzer analyzer(c, faults);
  std::vector<std::vector<bool>> vectors;
  EXPECT_EQ(analyzer.top_up(vectors, 0), 0u);
  EXPECT_TRUE(vectors.empty());
  const auto report = analyzer.report(vectors, 0);
  EXPECT_TRUE(report.complete());
  for (const analysis::NDetectFaultRecord& r : report.faults) {
    EXPECT_EQ(r.target, 0u);
  }
}

TEST(NDetectTest, DuplicateVectorsCountOnce) {
  const netlist::Circuit c = netlist::make_c17();
  const auto faults = fault::collapse_checkpoint_faults(c);
  analysis::NDetectAnalyzer analyzer(c, faults);
  std::vector<std::vector<bool>> vectors = sample_vectors(c.num_inputs(), 4, 9);
  const auto once = analyzer.detection_counts(vectors);
  const std::vector<std::vector<bool>> copy = vectors;
  vectors.insert(vectors.end(), copy.begin(), copy.end());  // 2x dupes
  EXPECT_EQ(analyzer.detection_counts(vectors), once);
}

TEST(NDetectTest, QuotaClampsToCtsSize) {
  // Asking for more detections than a fault's CTS holds clamps the quota
  // to |CTS|; top_up must still terminate and reach it.
  const netlist::Circuit c = netlist::make_c17();
  const auto faults = fault::collapse_checkpoint_faults(c);
  analysis::NDetectAnalyzer analyzer(c, faults);
  const std::size_t huge = 1u << c.num_inputs();  // >= any CTS
  std::vector<std::vector<bool>> vectors;
  analyzer.top_up(vectors, huge);
  const auto counts = analyzer.detection_counts(vectors);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_EQ(static_cast<double>(analyzer.quota(i, huge)),
              analyzer.cts_size(i));
    EXPECT_EQ(static_cast<double>(counts[i]), analyzer.cts_size(i));
  }
}

}  // namespace
}  // namespace dp
