// Fault-model tests: checkpoint enumeration, equivalence collapsing,
// bridging-fault screening, distance-weighted sampling.
#include <gtest/gtest.h>

#include <set>

#include "fault/bridging.hpp"
#include "fault/sampling.hpp"
#include "fault/stuck_at.hpp"
#include "netlist/generators.hpp"

namespace dp::fault {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NetId;
using netlist::Structure;

TEST(CheckpointTest, C17CountsMatchTheory) {
  // Checkpoints: 5 PIs + fanout branches. In C17, nets 3, 11 and 16 each
  // drive two pins -> 6 branches. 11 checkpoints x 2 polarities = 22.
  Circuit c = netlist::make_c17();
  const auto faults = checkpoint_faults(c);
  EXPECT_EQ(faults.size(), 22u);
  std::size_t stems = 0, branches = 0;
  for (const auto& f : faults) (f.is_branch() ? branches : stems)++;
  EXPECT_EQ(stems, 10u);
  EXPECT_EQ(branches, 12u);
}

TEST(CheckpointTest, BranchesOnlyOnFanoutStems) {
  Circuit c = netlist::make_alu181();
  for (const auto& f : checkpoint_faults(c)) {
    if (f.is_branch()) {
      EXPECT_GT(c.fanout_count(f.net), 1u) << describe(f, c);
    } else {
      EXPECT_EQ(c.type(f.net), GateType::Input) << describe(f, c);
    }
  }
}

TEST(CheckpointTest, CollapsingShrinksAndKeepsRepresentatives) {
  Circuit c = netlist::make_c17();
  const auto all = checkpoint_faults(c);
  const auto collapsed = collapse_checkpoint_faults(c);
  EXPECT_LT(collapsed.size(), all.size());
  // Every fault appears in exactly one equivalence class.
  const auto classes = checkpoint_equivalence_classes(c);
  std::size_t covered = 0;
  for (const auto& cls : classes) covered += 1 + cls.collapsed.size();
  EXPECT_EQ(covered, all.size());
  EXPECT_EQ(classes.size(), collapsed.size());
}

TEST(CheckpointTest, C17CollapsedClasses) {
  // Both PIs 1,2,7 feed NAND gates singly -> their sa0 faults group with
  // the co-input branch sa0 faults.
  Circuit c = netlist::make_c17();
  const auto classes = checkpoint_equivalence_classes(c);
  std::size_t multi = 0;
  for (const auto& cls : classes) {
    if (!cls.collapsed.empty()) {
      ++multi;
      // All members share the stuck value and feed the same gate.
      EXPECT_FALSE(cls.representative.stuck_value);  // NAND: sa0 controls
    }
  }
  EXPECT_GT(multi, 0u);
}

TEST(CheckpointTest, DescribeMentionsPolarityAndBranch) {
  Circuit c = netlist::make_c17();
  const auto faults = checkpoint_faults(c);
  bool saw_branch = false;
  for (const auto& f : faults) {
    const std::string d = describe(f, c);
    EXPECT_NE(d.find(f.stuck_value ? "sa1" : "sa0"), std::string::npos);
    if (f.is_branch()) {
      saw_branch = true;
      EXPECT_NE(d.find("->"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_branch);
}

TEST(BridgingTest, FeedbackPairsScreened) {
  Circuit c = netlist::make_c17();
  Structure s(c);
  const NetId n3 = *c.find_net("3");
  const NetId n22 = *c.find_net("22");
  EXPECT_TRUE(is_feedback_bridge(s, n3, n22));
  const NetId n10 = *c.find_net("10");
  const NetId n19 = *c.find_net("19");
  EXPECT_FALSE(is_feedback_bridge(s, n10, n19));

  for (BridgeType type : {BridgeType::And, BridgeType::Or}) {
    for (const auto& f : enumerate_nfbfs(c, s, type)) {
      EXPECT_FALSE(is_feedback_bridge(s, f.a, f.b)) << describe(f, c);
      EXPECT_NE(f.a, f.b);
    }
  }
}

TEST(BridgingTest, TriviallyUndetectableScreened) {
  // Two inputs driving only one common AND gate: the AND bridge changes
  // nothing. Construct directly.
  Circuit c("triv");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId g = c.add_gate(GateType::And, {a, b}, "g");
  c.mark_output(g);
  c.finalize();
  Structure s(c);
  EXPECT_TRUE(is_trivially_undetectable(c, {a, b, BridgeType::And}));
  EXPECT_FALSE(is_trivially_undetectable(c, {a, b, BridgeType::Or}));
  const auto and_faults = enumerate_nfbfs(c, s, BridgeType::And);
  for (const auto& f : and_faults) {
    EXPECT_FALSE(f.a == a && f.b == b);
  }
}

TEST(BridgingTest, NorGateAbsorbsOrBridge) {
  Circuit c("nor");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId g = c.add_gate(GateType::Nor, {a, b}, "g");
  c.mark_output(g);
  c.finalize();
  EXPECT_TRUE(is_trivially_undetectable(c, {a, b, BridgeType::Or}));
  EXPECT_FALSE(is_trivially_undetectable(c, {a, b, BridgeType::And}));
}

TEST(BridgingTest, FanoutDefeatsTrivialScreen) {
  // Same AND gate, but wire a also feeds a second gate: detectable.
  Circuit c("fanout");
  NetId a = c.add_input("a");
  NetId b = c.add_input("b");
  NetId g = c.add_gate(GateType::And, {a, b}, "g");
  NetId h = c.add_gate(GateType::Not, {a}, "h");
  c.mark_output(g);
  c.mark_output(h);
  c.finalize();
  EXPECT_FALSE(is_trivially_undetectable(c, {a, b, BridgeType::And}));
}

TEST(BridgingTest, EnumerationIsSymmetricallyOrdered) {
  Circuit c = netlist::make_c95_analog();
  Structure s(c);
  std::set<std::pair<NetId, NetId>> seen;
  for (const auto& f : enumerate_nfbfs(c, s, BridgeType::And)) {
    EXPECT_LT(f.a, f.b);
    EXPECT_TRUE(seen.insert({f.a, f.b}).second) << "duplicate pair";
  }
  EXPECT_GT(seen.size(), 100u);
}

TEST(SamplingTest, SmallSetsPassThroughUnsampled) {
  Circuit c = netlist::make_c17();
  Structure s(c);
  netlist::LayoutEstimate layout(c, s);
  const auto all = enumerate_nfbfs(c, s, BridgeType::And);
  SamplingOptions opt;
  opt.target_count = 10000;  // larger than the population
  const auto sample = nfbf_fault_set(c, s, layout, BridgeType::And, opt);
  EXPECT_EQ(sample.size(), all.size());
}

TEST(SamplingTest, DeterministicForFixedSeed) {
  Circuit c = netlist::make_c432_analog();
  Structure s(c);
  netlist::LayoutEstimate layout(c, s);
  SamplingOptions opt;
  opt.target_count = 200;
  opt.seed = 42;
  const auto s1 = nfbf_fault_set(c, s, layout, BridgeType::Or, opt);
  const auto s2 = nfbf_fault_set(c, s, layout, BridgeType::Or, opt);
  ASSERT_EQ(s1.size(), 200u);
  EXPECT_EQ(s1, s2);
  opt.seed = 43;
  const auto s3 = nfbf_fault_set(c, s, layout, BridgeType::Or, opt);
  EXPECT_NE(s1, s3);
}

TEST(SamplingTest, ShortDistancesAreFavored) {
  Circuit c = netlist::make_c432_analog();
  Structure s(c);
  netlist::LayoutEstimate layout(c, s);
  const auto all = enumerate_nfbfs(c, s, BridgeType::And);
  SamplingOptions opt;
  opt.target_count = 300;
  opt.theta = 0.05;  // strong bias
  const auto sample = sample_bridging_faults(c, layout, all, opt);

  auto mean_dist = [&](const std::vector<BridgingFault>& v) {
    double sum = 0;
    for (const auto& f : v) sum += layout.distance(f.a, f.b);
    return sum / static_cast<double>(v.size());
  };
  EXPECT_LT(mean_dist(sample), mean_dist(all));
}

TEST(SamplingTest, InvalidThetaThrows) {
  Circuit c = netlist::make_c432_analog();
  Structure s(c);
  netlist::LayoutEstimate layout(c, s);
  const auto all = enumerate_nfbfs(c, s, BridgeType::And);
  SamplingOptions opt;
  opt.target_count = 10;
  opt.theta = 0.0;
  EXPECT_THROW(sample_bridging_faults(c, layout, all, opt),
               netlist::NetlistError);
}

}  // namespace
}  // namespace dp::fault
