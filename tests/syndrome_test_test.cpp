// Syndrome testing (Savir, the paper's ref [11]): exact faulty syndromes
// from the symbolic engine, and their relationship to detectability.
#include <gtest/gtest.h>

#include <bit>

#include "dp/symbolic_sim.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"
#include "sim/fault_sim.hpp"

namespace dp::core {
namespace {

using fault::StuckAtFault;
using netlist::Circuit;

struct Rig {
  explicit Rig(Circuit&& c)
      : circuit(std::move(c)),
        structure(circuit),
        manager(0),
        good(manager, circuit),
        sym(good, structure) {}
  Circuit circuit;
  netlist::Structure structure;
  bdd::Manager manager;
  GoodFunctions good;
  SymbolicFaultSimulator sym;
};

TEST(SyndromeTestTest, SyndromeDetectableImpliesDetectable) {
  Rig rig(netlist::make_alu181());
  std::size_t syndrome_detectable = 0, detectable = 0;
  for (const StuckAtFault& f : fault::checkpoint_faults(rig.circuit)) {
    const auto st = rig.sym.syndrome_test(f);
    const auto an = rig.sym.analyze(f);
    if (st.syndrome_detectable) {
      ++syndrome_detectable;
      EXPECT_TRUE(an.detectable) << describe(f, rig.circuit);
    }
    if (an.detectable) ++detectable;
    // Per-PO: a changed syndrome requires an observable difference there.
    for (std::size_t p = 0; p < st.good_syndromes.size(); ++p) {
      if (st.good_syndromes[p] != st.faulty_syndromes[p]) {
        EXPECT_TRUE(an.po_observable[p]);
      }
    }
  }
  // Syndrome testing catches many -- typically most -- but not all faults.
  EXPECT_GT(syndrome_detectable, detectable / 2);
  EXPECT_LE(syndrome_detectable, detectable);
}

TEST(SyndromeTestTest, UndetectableFaultKeepsAllSyndromes) {
  Circuit c("redundant");
  auto a = c.add_input("a");
  auto na = c.add_gate(netlist::GateType::Not, {a}, "na");
  auto y = c.add_gate(netlist::GateType::Or, {a, na}, "y");
  c.mark_output(y);
  c.finalize();
  Rig rig(std::move(c));
  const auto st = rig.sym.syndrome_test(
      StuckAtFault{*rig.circuit.find_net("y"), std::nullopt, true});
  EXPECT_FALSE(st.syndrome_detectable);
  EXPECT_EQ(st.good_syndromes, st.faulty_syndromes);
}

TEST(SyndromeTestTest, BalancedFlipEscapesSyndromeTesting) {
  // An XOR output under an input stem fault flips EVERY vector's response
  // pair-wise: as many 0->1 as 1->0 transitions, so the syndrome is
  // unchanged although the fault is trivially detectable. The classic
  // blind spot of count-based testing.
  Circuit c("xorblind");
  auto a = c.add_input("a");
  auto b = c.add_input("b");
  auto y = c.add_gate(netlist::GateType::Xor, {a, b}, "y");
  c.mark_output(y);
  c.finalize();
  Rig rig(std::move(c));
  const StuckAtFault f{*rig.circuit.find_net("a"), std::nullopt, false};
  EXPECT_TRUE(rig.sym.analyze(f).detectable);
  const auto st = rig.sym.syndrome_test(f);
  EXPECT_FALSE(st.syndrome_detectable);
  EXPECT_DOUBLE_EQ(st.good_syndromes[0], 0.5);
  EXPECT_DOUBLE_EQ(st.faulty_syndromes[0], 0.5);
}

TEST(SyndromeTestTest, FaultySyndromesMatchExhaustiveSimulation) {
  Rig rig(netlist::make_c95_analog());
  sim::FaultSimulator fs(rig.circuit);
  const auto faults = fault::collapse_checkpoint_faults(rig.circuit);
  std::size_t checked = 0;
  for (const StuckAtFault& f : faults) {
    const auto st = rig.sym.syndrome_test(f);
    // Brute-force the faulty syndrome of each PO.
    std::vector<sim::Word> good(rig.circuit.num_nets());
    std::vector<sim::Word> bad(rig.circuit.num_nets());
    std::vector<std::size_t> ones(rig.circuit.num_outputs(), 0);
    const std::size_t n = rig.circuit.num_inputs();
    for (std::uint64_t blk = 0; blk < (1ull << (n - 6)); ++blk) {
      for (std::size_t i = 0; i < n; ++i) {
        bad[rig.circuit.inputs()[i]] =
            sim::PatternSimulator::exhaustive_input_word(i, blk);
      }
      fs.faulty_values(bad, f);
      for (std::size_t p = 0; p < rig.circuit.num_outputs(); ++p) {
        ones[p] += std::popcount(bad[rig.circuit.outputs()[p]]);
      }
    }
    for (std::size_t p = 0; p < rig.circuit.num_outputs(); ++p) {
      ASSERT_DOUBLE_EQ(st.faulty_syndromes[p],
                       static_cast<double>(ones[p]) /
                           static_cast<double>(1ull << n))
          << describe(f, rig.circuit) << " PO " << p;
    }
    (void)good;
    if (++checked == 30) break;
  }
}

}  // namespace
}  // namespace dp::core
