// Verifies the Table-1 difference algebra symbolically: for random good
// and faulty input functions, the formula-computed output difference must
// equal (good output) XOR (faulty output) computed directly.
#include <gtest/gtest.h>

#include <random>

#include "dp/difference.hpp"
#include "dp/good_functions.hpp"

namespace dp::core {
namespace {

using netlist::GateType;

class DifferenceAlgebraTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static constexpr std::size_t kVars = 5;

  bdd::Bdd random_function(bdd::Manager& mgr, std::mt19937_64& rng) {
    // Random function as a random truth table folded from minterms.
    bdd::Bdd f = mgr.zero();
    for (std::uint64_t m = 0; m < (1u << kVars); ++m) {
      if (rng() & 1) {
        bdd::Bdd cube = mgr.one();
        for (bdd::Var v = 0; v < kVars; ++v) {
          cube = cube & (((m >> v) & 1) ? mgr.var(v) : mgr.nvar(v));
        }
        f = f | cube;
      }
    }
    return f;
  }
};

TEST_P(DifferenceAlgebraTest, BinaryGatesMatchDirectXor) {
  bdd::Manager mgr(kVars);
  std::mt19937_64 rng(GetParam());

  for (int round = 0; round < 20; ++round) {
    const bdd::Bdd fa = random_function(mgr, rng);
    const bdd::Bdd fb = random_function(mgr, rng);
    const bdd::Bdd Fa = random_function(mgr, rng);  // faulty versions
    const bdd::Bdd Fb = random_function(mgr, rng);
    const bdd::Bdd da = fa ^ Fa;
    const bdd::Bdd db = fb ^ Fb;

    struct Case {
      GateType base;
      bdd::Bdd good_out, faulty_out;
    };
    const std::vector<Case> cases = {
        {GateType::And, fa & fb, Fa & Fb},
        {GateType::Or, fa | fb, Fa | Fb},
        {GateType::Xor, fa ^ fb, Fa ^ Fb},
    };
    for (const Case& c : cases) {
      const bdd::Bdd expected = c.good_out ^ c.faulty_out;
      const bdd::Bdd got = gate_difference2(c.base, fa, fb, da, db);
      EXPECT_EQ(got, expected)
          << netlist::to_string(c.base) << " round " << round;
    }
    // NOT/BUF: difference passes through unchanged.
    EXPECT_EQ(gate_difference2(GateType::Buf, fa, fb, da, db), da);
    EXPECT_EQ((!fa) ^ (!Fa), da);  // inversion cancels in the ring sum
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferenceAlgebraTest,
                         ::testing::Values(1, 7, 42, 1990, 31337));

TEST_P(DifferenceAlgebraTest, NaryFoldMatchesDirectXor) {
  bdd::Manager mgr(kVars);
  std::mt19937_64 rng(GetParam() ^ 0xabcdefull);

  for (GateType type :
       {GateType::And, GateType::Nand, GateType::Or, GateType::Nor,
        GateType::Xor, GateType::Xnor}) {
    for (std::size_t arity : {2u, 3u, 4u}) {
      std::vector<bdd::Bdd> goods, faultys, diffs;
      for (std::size_t i = 0; i < arity; ++i) {
        goods.push_back(random_function(mgr, rng));
        faultys.push_back(random_function(mgr, rng));
        diffs.push_back(goods.back() ^ faultys.back());
      }
      const bdd::Bdd good_out = build_gate_function(mgr, type, goods);
      const bdd::Bdd faulty_out = build_gate_function(mgr, type, faultys);
      const bdd::Bdd got = gate_difference(mgr, type, goods, diffs);
      EXPECT_EQ(got, good_out ^ faulty_out)
          << netlist::to_string(type) << " arity " << arity;
    }
  }
}

TEST(DifferenceAlgebraTest, InvalidDiffHandleMeansZero) {
  bdd::Manager mgr(3);
  const bdd::Bdd fa = mgr.var(0);
  const bdd::Bdd fb = mgr.var(1);
  std::vector<bdd::Bdd> goods{fa, fb};
  std::vector<bdd::Bdd> diffs{bdd::Bdd{}, mgr.var(2)};  // da == 0
  const bdd::Bdd got = gate_difference(mgr, GateType::And, goods, diffs);
  EXPECT_EQ(got, fa & mgr.var(2));
  // All-zero differences produce a zero output difference.
  std::vector<bdd::Bdd> zeros{bdd::Bdd{}, bdd::Bdd{}};
  EXPECT_TRUE(gate_difference(mgr, GateType::And, goods, zeros).is_zero());
}

TEST(DifferenceAlgebraTest, MismatchedVectorsThrow) {
  bdd::Manager mgr(2);
  std::vector<bdd::Bdd> goods{mgr.var(0)};
  std::vector<bdd::Bdd> diffs{mgr.zero(), mgr.zero()};
  EXPECT_THROW(gate_difference(mgr, GateType::And, goods, diffs),
               bdd::BddError);
  EXPECT_THROW(gate_difference(mgr, GateType::And, {}, {}), bdd::BddError);
}

TEST(DifferenceAlgebraTest, NonBaseTypeRejectedByBinaryForm) {
  bdd::Manager mgr(2);
  EXPECT_THROW(gate_difference2(GateType::Nand, mgr.var(0), mgr.var(1),
                                mgr.zero(), mgr.zero()),
               bdd::BddError);
}

TEST_P(DifferenceAlgebraTest, GeneralFormMatchesChainForm) {
  bdd::Manager mgr(kVars);
  std::mt19937_64 rng(GetParam() ^ 0x777);

  for (GateType type :
       {GateType::And, GateType::Nand, GateType::Or, GateType::Nor,
        GateType::Xor}) {
    for (std::size_t arity : {2u, 3u, 4u, 5u}) {
      std::vector<bdd::Bdd> goods, diffs;
      for (std::size_t i = 0; i < arity; ++i) {
        goods.push_back(random_function(mgr, rng));
        diffs.push_back(random_function(mgr, rng));
      }
      std::uint64_t ops = 0;
      const bdd::Bdd general =
          gate_difference_general(mgr, type, goods, diffs, &ops);
      const bdd::Bdd chain = gate_difference(mgr, type, goods, diffs);
      EXPECT_EQ(general, chain)
          << netlist::to_string(type) << " arity " << arity;
      // The general form's term count is exponential for AND/OR.
      if (netlist::base_of(type) == GateType::And ||
          netlist::base_of(type) == GateType::Or) {
        EXPECT_EQ(ops, (1ull << arity) - 1);
      }
    }
  }
}

TEST(DifferenceAlgebraTest, GeneralFormGuardsAgainstExplosion) {
  bdd::Manager mgr(4);
  std::vector<bdd::Bdd> goods(21, mgr.var(0));
  std::vector<bdd::Bdd> diffs(21, mgr.var(1));
  EXPECT_THROW(gate_difference_general(mgr, GateType::And, goods, diffs),
               bdd::BddError);
}

}  // namespace
}  // namespace dp::core
