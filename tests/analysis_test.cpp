// Analysis-layer tests: histogram mechanics, profile statistics, report
// formatting.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/profiles.hpp"
#include "analysis/report.hpp"
#include "netlist/generators.hpp"

namespace dp::analysis {
namespace {

TEST(HistogramTest, BinningAndProportions) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);   // bin 0
  h.add(0.30);  // bin 1
  h.add(0.95);  // bin 3
  h.add(0.95);  // bin 3
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_DOUBLE_EQ(h.proportion(3), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 0.75);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.125);
}

TEST(HistogramTest, OutOfRangeValuesClampToEndBins) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(5.0);
  h.add(1.0);  // exactly hi lands in the last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
}

TEST(HistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(ProfilesTest, StuckAtProfileOnC17) {
  const CircuitProfile p = analyze_stuck_at(netlist::make_c17());
  EXPECT_EQ(p.circuit, "c17");
  EXPECT_EQ(p.netlist_size, 6u);
  EXPECT_EQ(p.num_outputs, 2u);
  EXPECT_FALSE(p.faults.empty());
  // All C17 checkpoint faults are detectable (classic result).
  EXPECT_EQ(p.detectable_count(), p.faults.size());
  EXPECT_GT(p.mean_detectability_detectable(), 0.0);
  EXPECT_LE(p.mean_detectability_detectable(), 1.0);
  EXPECT_DOUBLE_EQ(p.mean_detectability_per_po(),
                   p.mean_detectability_detectable() / 2.0);
  // Adherence never exceeds one; detectability never exceeds its bound.
  for (const FaultRecord& f : p.faults) {
    EXPECT_LE(f.detectability, f.upper_bound + 1e-12);
    EXPECT_LE(f.adherence, 1.0);
    EXPECT_GE(f.max_levels_to_po, 0);
  }
}

TEST(ProfilesTest, UncollapsedProfileIsLarger) {
  AnalysisOptions collapsed;
  AnalysisOptions full;
  full.collapse = false;
  const auto pc = analyze_stuck_at(netlist::make_c17(), collapsed);
  const auto pf = analyze_stuck_at(netlist::make_c17(), full);
  EXPECT_LT(pc.faults.size(), pf.faults.size());
  EXPECT_EQ(pf.faults.size(), 22u);
}

TEST(ProfilesTest, BathtubSeriesHasEntries) {
  const CircuitProfile p = analyze_stuck_at(netlist::make_c95_analog());
  const auto series = p.detectability_by_po_distance();
  EXPECT_GT(series.size(), 2u);
  for (const auto& [dist, det] : series) {
    EXPECT_GE(dist, 0);
    EXPECT_GT(det, 0.0);
    EXPECT_LE(det, 1.0);
  }
  EXPECT_FALSE(p.detectability_by_pi_distance().empty());
}

TEST(ProfilesTest, PoFedVsObservedMostlyEqual) {
  const CircuitProfile p = analyze_stuck_at(netlist::make_c95_analog());
  // "These numbers are almost always the same" (§4.1).
  EXPECT_GT(p.po_fed_equals_observed_fraction(), 0.5);
}

TEST(ProfilesTest, BridgingProfileOnC17) {
  AnalysisOptions opt;
  const CircuitProfile p =
      analyze_bridging(netlist::make_c17(), fault::BridgeType::And, opt);
  EXPECT_FALSE(p.faults.empty());
  for (const FaultRecord& f : p.faults) {
    EXPECT_LE(f.detectability, f.upper_bound + 1e-12);
  }
  const double frac = p.bridge_stuck_at_fraction();
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
}

TEST(ProfilesTest, BridgingSamplingCapsPopulation) {
  AnalysisOptions opt;
  opt.sampling.target_count = 25;
  const CircuitProfile p =
      analyze_bridging(netlist::make_alu181(), fault::BridgeType::Or, opt);
  EXPECT_EQ(p.faults.size(), 25u);
}

TEST(ReportTest, TextTableAlignsAndRejectsBadRows) {
  TextTable t({"circuit", "value"});
  t.add_row({"c17", TextTable::num(0.5, 2)});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("circuit"), std::string::npos);
  EXPECT_NE(s.find("0.50"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(ReportTest, HistogramRendering) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.9);
  h.add(0.95);
  std::ostringstream os;
  print_histogram(os, h, "Demo", "detectability");
  const std::string s = os.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("#"), std::string::npos);
  EXPECT_NE(s.find("n = 3"), std::string::npos);
}

TEST(ReportTest, SeriesRendering) {
  std::map<int, double> series{{0, 0.5}, {1, 0.25}, {5, 1.0}};
  std::ostringstream os;
  print_series(os, series, "Curve", "levels", "mean det");
  const std::string s = os.str();
  EXPECT_NE(s.find("Curve"), std::string::npos);
  EXPECT_NE(s.find("5"), std::string::npos);
}

TEST(ReportTest, CsvEmission) {
  std::ostringstream os;
  write_csv_header(os, {"a", "b"});
  write_csv_row(os, {"1", "2"});
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace dp::analysis
