// Stress and failure-injection tests: node-budget exhaustion on the
// C6288-class multiplier, decomposition as the escape hatch, GC under
// engine load, and robustness of the sweep drivers.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/random_pattern.hpp"
#include "dp/engine.hpp"
#include "netlist/generators.hpp"
#include "netlist/structure.hpp"
#include "sim/fault_sim.hpp"

namespace dp {
namespace {

TEST(MultiplierStressTest, ParametricMultiplierIsCorrect) {
  for (int bits : {2, 3, 5, 6}) {
    netlist::Circuit c = netlist::make_multiplier(bits);
    ASSERT_EQ(c.num_inputs(), static_cast<std::size_t>(2 * bits));
    ASSERT_EQ(c.num_outputs(), static_cast<std::size_t>(2 * bits));
    sim::PatternSimulator ps(c);
    const std::uint64_t limit = 1ull << (2 * bits);
    for (std::uint64_t v = 0; v < limit; ++v) {
      std::vector<sim::Word> values(c.num_nets(), 0);
      for (std::size_t i = 0; i < c.num_inputs(); ++i) {
        values[c.inputs()[i]] = ((v >> i) & 1) ? ~sim::Word{0} : 0;
      }
      ps.eval(values);
      const std::uint64_t a = v & ((1ull << bits) - 1);
      const std::uint64_t b = v >> bits;
      std::uint64_t got = 0;
      for (std::size_t i = 0; i < c.num_outputs(); ++i) {
        got |= (values[c.outputs()[i]] & 1) << i;
      }
      ASSERT_EQ(got, a * b) << bits << "-bit " << a << "*" << b;
    }
  }
  EXPECT_THROW(netlist::make_multiplier(1), netlist::NetlistError);
}

TEST(MultiplierStressTest, BigMultiplierExhaustsNodeBudget) {
  // C6288-class: the 16x16 multiplier's product BDDs are exponential in
  // any order; a small node budget must fail loudly via OutOfNodes.
  netlist::Circuit c = netlist::make_multiplier(16);
  bdd::Manager mgr(0, /*max_nodes=*/1000000);
  EXPECT_THROW(core::GoodFunctions(mgr, c), bdd::OutOfNodes);
}

TEST(MultiplierStressTest, DecompositionTamesTheBuildAndFailsCleanly) {
  // The paper's escape hatch tames the GOOD-FUNCTION build: with cut
  // points the same budget suffices where the exact build blew up. Fault
  // analysis on the multiplier remains out of reach -- the difference
  // functions themselves are multiplier-shaped (the classic C6288
  // pathology) -- and must fail cleanly per fault, leaving the manager
  // usable.
  netlist::Circuit c = netlist::make_multiplier(16);
  netlist::Structure st(c);
  bdd::Manager mgr(0, /*max_nodes=*/1000000);
  core::GoodFunctionOptions opt;
  opt.cut_threshold = 500;
  core::GoodFunctions good(mgr, c, opt);
  EXPECT_FALSE(good.exact());
  EXPECT_GT(good.cut_nets().size(), 0u);

  core::DifferencePropagator dp(good, st);
  // A deep PI fault exceeds any practical budget...
  const fault::StuckAtFault deep{c.inputs()[0], std::nullopt, false};
  EXPECT_THROW((void)dp.analyze(deep), bdd::OutOfNodes);
  // ...but the failure is recoverable: collect and analyze a shallow
  // fault (a PO stem: single-net cone) on the same manager.
  mgr.gc();
  const fault::StuckAtFault shallow{c.outputs()[0], std::nullopt, true};
  const core::FaultAnalysis a = dp.analyze(shallow);
  EXPECT_TRUE(a.detectable);
  EXPECT_GT(a.detectability, 0.0);
}

TEST(GcStressTest, RepeatedAnalysisIsStableAcrossCollections) {
  // Force frequent GC with a tiny threshold stand-in: run many faults on
  // one manager and verify results stay identical to a fresh manager.
  netlist::Circuit c = netlist::make_alu181();
  netlist::Structure st(c);
  const auto faults = fault::collapse_checkpoint_faults(c);

  bdd::Manager shared(0);
  core::GoodFunctions good(shared, c);
  core::DifferencePropagator dp(good, st);
  std::vector<double> first;
  for (const auto& f : faults) first.push_back(dp.analyze(f).detectability);
  shared.gc();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    EXPECT_DOUBLE_EQ(dp.analyze(faults[i]).detectability, first[i]);
  }
  // Explicit GC between every fault changes nothing either.
  for (std::size_t i = 0; i < 25; ++i) {
    shared.gc();
    EXPECT_DOUBLE_EQ(dp.analyze(faults[i]).detectability, first[i]);
  }
}

TEST(RandomPatternTest, CoverageCurveIsMonotoneAndCalibrated) {
  const analysis::CircuitProfile p =
      analysis::analyze_stuck_at(netlist::make_c95_analog());
  double prev = 0.0;
  for (std::size_t n : {1u, 4u, 16u, 64u, 256u, 1024u}) {
    const double cov = analysis::expected_random_coverage(p, n);
    EXPECT_GE(cov, prev);
    EXPECT_LE(cov, 1.0);
    prev = cov;
  }
  // One pattern covers exactly the mean detectability (per definition).
  double mean = 0.0;
  std::size_t det = 0;
  for (const auto& f : p.faults) {
    if (f.detectable) {
      mean += f.detectability;
      ++det;
    }
  }
  mean /= static_cast<double>(det);
  EXPECT_NEAR(analysis::expected_random_coverage(p, 1), mean, 1e-12);

  const std::size_t n95 = analysis::patterns_for_coverage(p, 0.95);
  EXPECT_GE(analysis::expected_random_coverage(p, n95), 0.95);
  EXPECT_LT(analysis::expected_random_coverage(p, n95 - 1), 0.95);
  EXPECT_THROW(analysis::patterns_for_coverage(p, 1.5),
               std::invalid_argument);
  EXPECT_THROW(analysis::patterns_for_coverage(p, 0.0),
               std::invalid_argument);
}

TEST(RandomPatternTest, PredictionMatchesSimulatedGrading) {
  const netlist::Circuit c = netlist::make_c95_analog();
  const analysis::CircuitProfile p = analysis::analyze_stuck_at(c);
  sim::FaultSimulator fs(c);
  const auto faults = fault::collapse_checkpoint_faults(c);

  const double predicted = analysis::expected_random_coverage(p, 128);
  double simulated = 0.0;
  for (int seed = 0; seed < 8; ++seed) {
    simulated += fs.grade_random(faults, 128, 31 + seed).fraction();
  }
  simulated /= 8.0;
  EXPECT_NEAR(predicted, simulated, 0.03);
}

}  // namespace
}  // namespace dp
