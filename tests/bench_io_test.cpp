// ISCAS-85 .bench reader/writer tests: roundtrips, forward references,
// error reporting.
#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "netlist/generators.hpp"

namespace dp::netlist {
namespace {

TEST(BenchIoTest, ParsesC17Text) {
  const std::string text = R"(
# c17 iscas example
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
  Circuit c = read_bench_string(text, "c17");
  EXPECT_EQ(c.num_inputs(), 5u);
  EXPECT_EQ(c.num_outputs(), 2u);
  EXPECT_EQ(c.num_gates(), 6u);
  EXPECT_EQ(c.type(*c.find_net("16")), GateType::Nand);
  EXPECT_TRUE(c.finalized());
}

TEST(BenchIoTest, ForwardReferencesAllowed) {
  const std::string text = R"(
INPUT(a)
OUTPUT(y)
y = NOT(x)      # x defined later
x = BUF(a)
)";
  Circuit c = read_bench_string(text);
  EXPECT_EQ(c.num_gates(), 2u);
}

TEST(BenchIoTest, PiOrderPreserved) {
  Circuit c = read_bench_string(
      "INPUT(z)\nINPUT(a)\nINPUT(m)\nOUTPUT(o)\no = AND(z, a, m)\n");
  EXPECT_EQ(c.net_name(c.inputs()[0]), "z");
  EXPECT_EQ(c.net_name(c.inputs()[1]), "a");
  EXPECT_EQ(c.net_name(c.inputs()[2]), "m");
}

TEST(BenchIoTest, CaseInsensitiveKeywordsAndAliases) {
  Circuit c = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(o)\nx = buff(a)\ny = inv(b)\no = "
      "nand(x, y)\n");
  EXPECT_EQ(c.type(*c.find_net("x")), GateType::Buf);
  EXPECT_EQ(c.type(*c.find_net("y")), GateType::Not);
}

class BenchRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchRoundTripTest, WriteThenReadReproducesNetlist) {
  Circuit original = make_benchmark(GetParam());
  Circuit reread =
      read_bench_string(write_bench_string(original), original.name());
  ASSERT_EQ(reread.num_nets(), original.num_nets());
  ASSERT_EQ(reread.num_inputs(), original.num_inputs());
  ASSERT_EQ(reread.num_outputs(), original.num_outputs());
  for (NetId id = 0; id < original.num_nets(); ++id) {
    const NetId rid = *reread.find_net(original.net_name(id));
    EXPECT_EQ(reread.type(rid), original.type(id));
    ASSERT_EQ(reread.fanins(rid).size(), original.fanins(id).size());
    for (std::size_t k = 0; k < original.fanins(id).size(); ++k) {
      EXPECT_EQ(reread.net_name(reread.fanins(rid)[k]),
                original.net_name(original.fanins(id)[k]));
    }
  }
  // PO order preserved.
  for (std::size_t i = 0; i < original.num_outputs(); ++i) {
    EXPECT_EQ(reread.net_name(reread.outputs()[i]),
              original.net_name(original.outputs()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, BenchRoundTripTest,
                         ::testing::Values("c17", "fulladder", "c95",
                                           "alu181", "c432", "c499", "c1355",
                                           "c1908"));

// ---- line-ending / whitespace tolerance --------------------------------
// .bench files travel through Windows editors and zip archives; the
// parser must accept CRLF and classic-Mac CR terminators and trailing
// whitespace, and must NOT let a \r byte leak into a net name.

TEST(BenchIoTest, CrlfLineEndingsParseIdentically) {
  const std::string unix_text =
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
  std::string crlf_text = unix_text;
  std::string with_crlf;
  for (const char c : crlf_text) {
    if (c == '\n') with_crlf += '\r';
    with_crlf += c;
  }
  const Circuit u = read_bench_string(unix_text, "t");
  const Circuit d = read_bench_string(with_crlf, "t");
  EXPECT_EQ(write_bench_string(u), write_bench_string(d));
  EXPECT_TRUE(d.find_net("y").has_value());
  EXPECT_FALSE(d.find_net("y\r").has_value());
}

TEST(BenchIoTest, CrOnlyLineEndingsParse) {
  // Before getline_any_ending, this entire file arrived as one line and
  // the parser silently declared a garbage net named
  // "INPUT(a)\rINPUT(b)\r..." -- then failed finalize with a confusing
  // "net referenced but never defined".
  const Circuit c = read_bench_string(
      "INPUT(a)\rINPUT(b)\rOUTPUT(y)\ry = AND(a, b)\r", "t");
  EXPECT_EQ(c.num_inputs(), 2u);
  EXPECT_EQ(c.num_gates(), 1u);
  EXPECT_TRUE(c.find_net("y").has_value());
}

TEST(BenchIoTest, TrailingWhitespaceAndTabsTolerated) {
  const Circuit c = read_bench_string(
      "INPUT(a)   \t\nINPUT(b)\t\r\nOUTPUT(y)  \n"
      "y = AND( a ,\tb )\t \r\n\r\n", "t");
  EXPECT_EQ(c.num_inputs(), 2u);
  EXPECT_EQ(c.num_gates(), 1u);
}

TEST(BenchIoTest, Utf8BomTolerated) {
  const Circuit c = read_bench_string(
      "\xEF\xBB\xBFINPUT(a)\r\nOUTPUT(y)\r\ny = BUF(a)\r\n", "t");
  EXPECT_EQ(c.num_inputs(), 1u);
  EXPECT_EQ(c.num_gates(), 1u);
}

TEST(BenchIoErrorTest, CrlfErrorKeepsLineNumbers) {
  // Line accounting must treat \r\n as ONE terminator.
  try {
    read_bench_string(
        "INPUT(a)\r\nOUTPUT(o)\r\no = BUF(a)\r\no = NOT(a)\r\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(BenchIoErrorTest, MalformedCrlfInputStillRejected) {
  EXPECT_THROW(read_bench_string("INPUT(a\r\n"), BenchParseError);
  EXPECT_THROW(read_bench_string("INPUT(a)\r\nOUTPUT(o)\r\no = AND(a,)\r\n"),
               BenchParseError);
  EXPECT_THROW(read_bench_string("\r\n\r\n# only comments\r\n"),
               NetlistError);
}

TEST(BenchIoErrorTest, UnknownGateType) {
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nOUTPUT(o)\no = FROB(a)\n"),
      BenchParseError);
}

TEST(BenchIoErrorTest, MalformedCall) {
  EXPECT_THROW(read_bench_string("INPUT a\n"), BenchParseError);
  EXPECT_THROW(read_bench_string("INPUT(a\n"), BenchParseError);
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(o)\no = AND(a,)\n"),
               BenchParseError);
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(o)\n = AND(a)\n"),
               BenchParseError);
}

TEST(BenchIoErrorTest, UnknownDirective) {
  EXPECT_THROW(read_bench_string("WIBBLE(a)\n"), BenchParseError);
}

TEST(BenchIoErrorTest, UndefinedNetReported) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(o)\no = AND(a, ghost)\n"),
               NetlistError);
}

TEST(BenchIoErrorTest, DuplicateDefinitionReportedWithLine) {
  try {
    read_bench_string("INPUT(a)\nOUTPUT(o)\no = BUF(a)\no = NOT(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(BenchIoErrorTest, MissingFileThrows) {
  EXPECT_THROW(read_bench_file("/nonexistent/path.bench"), NetlistError);
}

TEST(BenchIoErrorTest, UndrivenOutputReported) {
  // OUTPUT names a net no line ever defines: finalize must flag it.
  try {
    read_bench_string("INPUT(a)\nOUTPUT(o)\nx = NOT(a)\n");
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("never defined"), std::string::npos)
        << e.what();
  }
}

TEST(BenchIoErrorTest, DuplicateInputReportedWithLine) {
  try {
    read_bench_string("INPUT(a)\nINPUT(a)\nOUTPUT(o)\no = BUF(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(BenchIoErrorTest, WrongArityReported) {
  // NOT takes exactly one fanin.
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = NOT(a, b)\n"),
      BenchParseError);
}

TEST(BenchIoErrorTest, EmptyOrCommentOnlyInputRejected) {
  EXPECT_THROW(read_bench_string(""), NetlistError);
  EXPECT_THROW(read_bench_string("# just a comment\n"), NetlistError);
}

}  // namespace
}  // namespace dp::netlist

// File-based roundtrip appended here to keep all .bench I/O tests together.
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace dp::netlist {
namespace {

TEST(BenchIoFileTest, WriteAndReadBackThroughTheFilesystem) {
  const Circuit original = make_alu181();
  const auto path =
      std::filesystem::temp_directory_path() / "dp_bench_io_test.bench";
  {
    std::ofstream os(path);
    ASSERT_TRUE(os.good());
    write_bench(os, original);
  }
  const Circuit reread = read_bench_file(path.string());
  EXPECT_EQ(reread.name(), "dp_bench_io_test");  // stem of the filename
  EXPECT_EQ(reread.num_nets(), original.num_nets());
  EXPECT_EQ(reread.num_inputs(), original.num_inputs());
  EXPECT_EQ(reread.num_gates(), original.num_gates());
  std::filesystem::remove(path);
}

TEST(BenchIoFileTest, TruncatedFileReportsParseError) {
  // A .bench cut off mid-expression (interrupted download / partial
  // write) must surface as a parse error, not a valid smaller circuit.
  const auto path =
      std::filesystem::temp_directory_path() / "dp_bench_io_truncated.bench";
  {
    std::ofstream os(path);
    ASSERT_TRUE(os.good());
    os << "INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = NAND(a,";  // no newline
  }
  EXPECT_THROW(read_bench_file(path.string()), BenchParseError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace dp::netlist
